(* Figures 1-6: each figure of the paper is a geometric construction;
   we regenerate it at scale and verify its defining invariant. *)

open Geom

(* ---- Figure 1: the duality transform --------------------------------- *)

let figure1 () =
  Util.section "F1" "Figure 1 — the duality transform (Lemma 2.1)";
  let rng = Workload.rng 1001 in
  let trials = 100_000 in
  let above = ref 0 and below = ref 0 and agree = ref 0 in
  for _ = 1 to trials do
    let p =
      Point2.make
        (Random.State.float rng 40. -. 20.)
        (Random.State.float rng 40. -. 20.)
    in
    let h =
      Line2.make
        ~slope:(Random.State.float rng 10. -. 5.)
        ~icept:(Random.State.float rng 40. -. 20.)
    in
    let p_star = Dual2.line_of_point p and h_star = Dual2.point_of_line h in
    (* p above h <=> the line h is below p; p* above h* <=> the line
       p* is above the point h* *)
    let primal_above = Line2.below_point h p in
    let dual_above = Line2.above_point p_star h_star in
    if primal_above then incr above else incr below;
    if primal_above = dual_above then incr agree
  done;
  Printf.printf
    "%d random (point, line) pairs: %d above, %d below/on;\n\
     above/below preserved by duality in %d/%d cases.\n"
    trials !above !below !agree trials

(* ---- Figure 2: an arrangement and its k-level ------------------------ *)

let figure2 () =
  Util.section "F2" "Figure 2 — the k-level of an arrangement of lines";
  let rng = Workload.rng 1002 in
  Printf.printf "%8s %6s %12s %14s %12s\n" "N" "k" "level size"
    "Dey bound Nk^1/3" "exact (check)";
  List.iter
    (fun (n, k) ->
      let lines =
        Array.init n (fun _ ->
            Line2.make
              ~slope:(Random.State.float rng 4. -. 2.)
              ~icept:(Random.State.float rng 20. -. 10.))
      in
      let level = Arrangement.Level_walk.walk ~lines ~k () in
      let size = Arrangement.Level_walk.complexity level in
      let dey = float_of_int n *. Float.pow (float_of_int (max 1 k)) (1. /. 3.) in
      let ok =
        if n <= 512 then
          if Arrangement.Level_walk.check_level ~lines ~k level then "yes"
          else "NO!"
        else "-"
      in
      Printf.printf "%8d %6d %12d %14.0f %12s\n" n k size dey ok)
    [ (256, 2); (256, 64); (1024, 16); (4096, 64); (8192, 256) ]

(* ---- Figure 3: a cluster induced by two level vertices ---------------- *)

let figure3 () =
  Util.section "F3" "Figure 3 — clusters of a level";
  let rng = Workload.rng 1003 in
  let n = 2048 and k = 32 in
  let lines =
    Array.init n (fun _ ->
        Line2.make
          ~slope:(Random.State.float rng 4. -. 2.)
          ~icept:(Random.State.float rng 20. -. 10.))
  in
  let c = Arrangement.Clustering.greedy ~lines ~k in
  Printf.printf
    "N=%d lines, k=%d: %d clusters over a level with %d vertices\n" n k
    (Arrangement.Clustering.size c)
    c.Arrangement.Clustering.level_complexity;
  Printf.printf "first clusters (size, x-span):\n";
  Array.iteri
    (fun i (cl : Arrangement.Clustering.cluster) ->
      if i < 6 then
        Printf.printf "  C_%d: %3d lines, [%s, %s)\n" (i + 1)
          (Array.length cl.lines)
          (if cl.left_x = neg_infinity then "-inf"
           else Printf.sprintf "%.2f" cl.left_x)
          (if cl.right_x = infinity then "+inf"
           else Printf.sprintf "%.2f" cl.right_x))
    c.Arrangement.Clustering.clusters

(* ---- Figure 4: the greedy 3k-clustering invariants (Lemma 3.2) ------- *)

let figure4 () =
  Util.section "F4" "Figure 4 — greedy 3k-clustering (Lemma 3.2 invariants)";
  let rng = Workload.rng 1004 in
  Printf.printf "%8s %6s %10s %10s %10s %12s\n" "N" "k" "clusters" "N/k bound"
    "max size" "3k bound";
  List.iter
    (fun (n, k) ->
      let lines =
        Array.init n (fun _ ->
            Line2.make
              ~slope:(Random.State.float rng 4. -. 2.)
              ~icept:(Random.State.float rng 20. -. 10.))
      in
      let c = Arrangement.Clustering.greedy ~lines ~k in
      Printf.printf "%8d %6d %10d %10d %10d %12d\n" n k
        (Arrangement.Clustering.size c)
        ((n / k) + 1)
        (Arrangement.Clustering.max_cluster_size c)
        (3 * k))
    [ (1024, 16); (2048, 32); (4096, 64); (8192, 128) ]

(* ---- Figure 5: the query walk over clusters (Lemma 3.4) -------------- *)

let figure5 () =
  Util.section "F5" "Figure 5 — cluster walk during queries (Lemma 3.4)";
  let rng = Workload.rng 1005 in
  let n_pts = 16384 and block_size = 64 in
  let points = Workload.uniform2 rng ~n:n_pts ~range:100. in
  let stats = Emio.Io_stats.create () in
  let t = Core.Halfspace2d.build ~stats ~block_size points in
  Printf.printf "%10s %8s %10s %10s %10s\n" "fraction" "T" "clusters"
    "layers" "T/lambda+10";
  List.iter
    (fun fraction ->
      let slope, icept =
        Workload.halfplane_with_selectivity rng points ~fraction
      in
      let reported = Core.Halfspace2d.query_count t ~slope ~icept in
      let lambda_min =
        Array.fold_left
          (fun acc l -> if l > 0 then min acc l else acc)
          max_int
          (Core.Halfspace2d.lambdas t)
      in
      Printf.printf "%10.3f %8d %10d %10d %10d\n" fraction reported
        (Core.Halfspace2d.last_clusters_visited t)
        (Core.Halfspace2d.last_layers_visited t)
        ((reported / max 1 lambda_min) + 10))
    [ 0.002; 0.01; 0.05; 0.2; 0.5 ]

(* ---- Figure 6: a balanced simplicial partition ------------------------ *)

let figure6 () =
  Util.section "F6"
    "Figure 6 — balanced simplicial partitions and their crossing numbers";
  let rng = Workload.rng 1006 in
  let dim = 2 in
  let points = Workload.uniform_d rng ~n:4096 ~dim ~range:50. in
  Printf.printf "%6s %14s %14s %16s\n" "r" "kd crossing" "simplicial"
    "alpha r^{1/2}";
  List.iter
    (fun r ->
      let measure parts =
        let cells = Array.map fst parts in
        let worst = ref 0 in
        for _ = 1 to 60 do
          let a0, a =
            Workload.halfspace_d_with_selectivity rng points
              ~fraction:(Random.State.float rng 1.)
          in
          let c = Partition.Cells.constr_of_halfspace ~dim ~a0 ~a in
          worst := max !worst (Partition.Cells.crossing_number cells c)
        done;
        !worst
      in
      let kd = measure (Partition.Partitioner.kd ~points ~r) in
      let simp = measure (Partition.Partitioner.simplicial ~points ~r) in
      Printf.printf "%6d %14d %14d %16.1f\n" r kd simp
        (4. *. sqrt (float_of_int r)))
    [ 7; 16; 64; 256 ];
  Printf.printf
    "(the paper's figure shows a balanced partition of size 7; both\n\
    \ constructions stay within the alpha r^{1-1/d} crossing bound)\n"

let all () =
  figure1 ();
  figure2 ();
  figure3 ();
  figure4 ();
  figure5 ();
  figure6 ()
