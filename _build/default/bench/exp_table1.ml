(* Table 1: one experiment per row, regenerating the paper's
   space/query-I/O claims on the simulator (shape, not absolute
   constants — see EXPERIMENTS.md). *)

let block_size = 64

(* ---- row 1: d=2, O(log_B n + t) query, O(n) space (§3) -------------- *)

let row1 () =
  Util.section "T1.1" "Table 1 row 1 — 2-D: O(log_B n + t) I/Os, O(n) space";
  Printf.printf
    "%8s %6s %8s %8s %8s %8s %10s\n"
    "N" "n" "log_B n" "avg t" "avg IO" "max IO" "space/n";
  List.iter
    (fun n_pts ->
      let rng = Workload.rng (100 + n_pts) in
      let points = Workload.uniform2 rng ~n:n_pts ~range:100. in
      let stats = Emio.Io_stats.create () in
      let t = Core.Halfspace2d.build ~stats ~block_size points in
      let n = Util.blocks ~block_size n_pts in
      let queries =
        List.init 40 (fun _ ->
            let slope, icept =
              Workload.halfplane_with_selectivity rng points ~fraction:0.02
            in
            fun () -> Core.Halfspace2d.query_count t ~slope ~icept)
      in
      let avg_io, max_io, avg_t =
        Util.measure_queries ~stats ~block_size queries
      in
      Printf.printf "%8d %6d %8.2f %8.1f %8.1f %8d %10.2f\n" n_pts n
        (Util.log_base (float_of_int block_size) (float_of_int n))
        avg_t avg_io max_io
        (float_of_int (Core.Halfspace2d.space_blocks t) /. float_of_int n))
    [ 4096; 8192; 16384; 32768 ];
  (* output sensitivity: t sweep at fixed N *)
  let n_pts = 16384 in
  let rng = Workload.rng 4242 in
  let points = Workload.uniform2 rng ~n:n_pts ~range:100. in
  let stats = Emio.Io_stats.create () in
  let t = Core.Halfspace2d.build ~stats ~block_size points in
  Printf.printf "\noutput sensitivity at N=%d:\n%10s %8s %8s %10s\n" n_pts
    "fraction" "avg t" "avg IO" "IO per t";
  List.iter
    (fun fraction ->
      let queries =
        List.init 25 (fun _ ->
            let slope, icept =
              Workload.halfplane_with_selectivity rng points ~fraction
            in
            fun () -> Core.Halfspace2d.query_count t ~slope ~icept)
      in
      let avg_io, _, avg_t = Util.measure_queries ~stats ~block_size queries in
      Printf.printf "%10.3f %8.1f %8.1f %10.2f\n" fraction avg_t avg_io
        (avg_io /. max 1. avg_t))
    [ 0.005; 0.02; 0.08; 0.3 ]

(* ---- row 2: d=3, O(log_B n + t) expected, O(n log2 n) space (§4) ---- *)

let row2 () =
  Util.section "T1.2"
    "Table 1 row 2 — 3-D: O(log_B n + t) expected I/Os, O(n log2 n) space";
  Printf.printf "%8s %6s %8s %8s %8s %13s %10s\n" "N" "n" "avg t" "avg IO"
    "max IO" "space/nlog2n" "fallbacks";
  List.iter
    (fun n_pts ->
      let rng = Workload.rng (200 + n_pts) in
      let points = Workload.uniform3 rng ~n:n_pts ~range:50. in
      let stats = Emio.Io_stats.create () in
      let t =
        Core.Halfspace3d.build ~stats ~block_size ~clip:(-10., -10., 10., 10.)
          points
      in
      let n = Util.blocks ~block_size n_pts in
      let queries =
        List.init 40 (fun _ ->
            let a, b, c =
              Workload.halfspace3_with_selectivity rng points ~fraction:0.02
            in
            (* keep the dual query point inside the clip box *)
            let a = max (-9.9) (min 9.9 a) and b = max (-9.9) (min 9.9 b) in
            fun () -> Core.Halfspace3d.query_count t ~a ~b ~c)
      in
      let avg_io, max_io, avg_t =
        Util.measure_queries ~stats ~block_size queries
      in
      Printf.printf "%8d %6d %8.1f %8.1f %8d %13.2f %10d\n" n_pts n avg_t
        avg_io max_io
        (float_of_int (Core.Halfspace3d.space_blocks t)
        /. (float_of_int n *. Util.log_base 2. (float_of_int n)))
        (Core.Halfspace3d.fallbacks t))
    [ 2048; 4096; 8192; 16384 ]

(* ---- row 3: d=3, O(n^eps + t), O(n log_B n) space (§6, Thm 6.3) ----- *)

let row3 () =
  Util.section "T1.3"
    "Table 1 row 3 — 3-D shallow tree: O(n^eps + t) I/Os, O(n log_B n) space";
  Printf.printf "%8s %6s %8s %8s %8s %12s %10s\n" "N" "n" "avg t" "avg IO"
    "max IO" "space/nlogBn" "secondary";
  let series = ref [] in
  List.iter
    (fun n_pts ->
      let rng = Workload.rng (300 + n_pts) in
      let points = Workload.uniform_d rng ~n:n_pts ~dim:3 ~range:50. in
      let stats = Emio.Io_stats.create () in
      let t = Core.Shallow_tree.build ~stats ~block_size ~dim:3 points in
      let n = Util.blocks ~block_size n_pts in
      let secondary = ref 0 in
      let queries =
        List.init 30 (fun _ ->
            let a0, a =
              Workload.halfspace_d_with_selectivity rng points ~fraction:0.01
            in
            fun () ->
              let r = List.length (Core.Shallow_tree.query_halfspace t ~a0 ~a) in
              secondary := !secondary + Core.Shallow_tree.last_secondary_uses t;
              r)
      in
      let avg_io, max_io, avg_t =
        Util.measure_queries ~stats ~block_size queries
      in
      series := (float_of_int n, avg_io) :: !series;
      Printf.printf "%8d %6d %8.1f %8.1f %8d %12.2f %10d\n" n_pts n avg_t
        avg_io max_io
        (float_of_int (Core.Shallow_tree.space_blocks t)
        /. (float_of_int n
           *. Util.log_base (float_of_int block_size) (float_of_int n)))
        !secondary)
    [ 8192; 16384; 32768; 65536 ];
  Printf.printf "empirical I/O exponent vs n: %.2f   (paper: eps, i.e. ~0)\n"
    (Util.scaling_exponent !series)

(* ---- row 4: d=3 tradeoff (§6, Thm 6.1) ------------------------------ *)

let row4 () =
  Util.section "T1.4"
    "Table 1 row 4 — 3-D tradeoff: O((n/B^{a-1})^{2/3+eps} + t), O(n log2 B)";
  let n_pts = 16384 in
  let rng = Workload.rng 440 in
  let points = Workload.uniform3 rng ~n:n_pts ~range:50. in
  let n = Util.blocks ~block_size n_pts in
  Printf.printf "%6s %10s %10s %8s %8s %10s\n" "a" "leaf cap" "space" "avg t"
    "avg IO" "leaves hit";
  List.iter
    (fun a_param ->
      let stats = Emio.Io_stats.create () in
      let t =
        Core.Tradeoff3d.build ~stats ~block_size ~a:a_param
          ~clip:(-10., -10., 10., 10.) points
      in
      let leaves_hit = ref 0 in
      let queries =
        List.init 25 (fun _ ->
            let a, b, c =
              Workload.halfspace3_with_selectivity rng points ~fraction:0.02
            in
            let a = max (-9.9) (min 9.9 a) and b = max (-9.9) (min 9.9 b) in
            fun () ->
              let r = Core.Tradeoff3d.query_count t ~a ~b ~c in
              leaves_hit := !leaves_hit + Core.Tradeoff3d.last_secondary_queries t;
              r)
      in
      let avg_io, _, avg_t = Util.measure_queries ~stats ~block_size queries in
      Printf.printf "%6.2f %10d %10d %8.1f %8.1f %10d\n" a_param
        (Core.Tradeoff3d.leaf_capacity t)
        (Core.Tradeoff3d.space_blocks t)
        avg_t avg_io !leaves_hit)
    [ 1.3; 1.6; 2.0 ];
  Printf.printf "(n = %d blocks; larger a => bigger §4 leaves: more space, fewer I/Os)\n" n

(* ---- rows 5 and 7: §5 partition tree, d = 2, 3, 4 ------------------- *)

let rows5_7 () =
  Util.section "T1.5/T1.7"
    "Table 1 rows 5,7 — partition tree: O(n^{1-1/d+eps} + t) I/Os, O(n) space";
  List.iter
    (fun dim ->
      Printf.printf "\nd = %d (paper exponent %.2f):\n" dim
        (1. -. (1. /. float_of_int dim));
      Printf.printf "%8s %6s %8s %8s %8s %8s %9s\n" "N" "n" "avg t" "avg IO"
        "max IO" "visited" "space/n";
      let io_series = ref [] and visit_series = ref [] in
      List.iter
        (fun n_pts ->
          let rng = Workload.rng (500 + (10 * dim) + n_pts) in
          let points = Workload.uniform_d rng ~n:n_pts ~dim ~range:50. in
          let stats = Emio.Io_stats.create () in
          let t = Core.Partition_tree.build ~stats ~block_size ~dim points in
          let n = Util.blocks ~block_size n_pts in
          let visited = ref 0 in
          let queries =
            List.init 25 (fun _ ->
                let a0, a =
                  Workload.halfspace_d_with_selectivity rng points
                    ~fraction:0.005
                in
                fun () ->
                  let r =
                    List.length (Core.Partition_tree.query_halfspace t ~a0 ~a)
                  in
                  visited := !visited + Core.Partition_tree.last_visited_nodes t;
                  r)
          in
          let avg_io, max_io, avg_t =
            Util.measure_queries ~stats ~block_size queries
          in
          let avg_visited = float_of_int !visited /. 25. in
          io_series := (float_of_int n, avg_io) :: !io_series;
          visit_series := (float_of_int n, avg_visited) :: !visit_series;
          Printf.printf "%8d %6d %8.1f %8.1f %8d %8.1f %9.2f\n" n_pts n avg_t
            avg_io max_io avg_visited
            (float_of_int (Core.Partition_tree.space_blocks t) /. float_of_int n))
        [ 8192; 16384; 32768; 65536 ];
      Printf.printf
        "empirical exponents vs n: I/O %.2f, visited nodes %.2f (paper: %.2f + eps)\n"
        (Util.scaling_exponent !io_series)
        (Util.scaling_exponent !visit_series)
        (1. -. (1. /. float_of_int dim)))
    [ 2; 3; 4 ]

(* ---- row 6: d-dim shallow tree (§6 remark) --------------------------- *)

let row6 () =
  Util.section "T1.6"
    "Table 1 row 6 — d-dim shallow tree: O(n^{1-1/(d/2)+eps} + t), O(n log_B n)";
  let dim = 4 in
  Printf.printf "d = %d (paper exponent %.2f):\n" dim
    (1. -. (1. /. float_of_int (dim / 2)));
  Printf.printf "%8s %6s %8s %8s %10s\n" "N" "n" "avg t" "avg IO" "secondary";
  let series = ref [] in
  List.iter
    (fun n_pts ->
      let rng = Workload.rng (600 + n_pts) in
      let points = Workload.uniform_d rng ~n:n_pts ~dim ~range:50. in
      let stats = Emio.Io_stats.create () in
      let t = Core.Shallow_tree.build ~stats ~block_size ~dim points in
      let n = Util.blocks ~block_size n_pts in
      let secondary = ref 0 in
      let queries =
        List.init 20 (fun _ ->
            let a0, a =
              Workload.halfspace_d_with_selectivity rng points ~fraction:0.01
            in
            fun () ->
              let r = List.length (Core.Shallow_tree.query_halfspace t ~a0 ~a) in
              secondary := !secondary + Core.Shallow_tree.last_secondary_uses t;
              r)
      in
      let avg_io, _, avg_t = Util.measure_queries ~stats ~block_size queries in
      series := (float_of_int n, avg_io) :: !series;
      Printf.printf "%8d %6d %8.1f %8.1f %10d\n" n_pts n avg_t avg_io !secondary)
    [ 8192; 16384; 32768 ];
  Printf.printf "empirical I/O exponent vs n: %.2f (paper: %.2f + eps)\n"
    (Util.scaling_exponent !series)
    (1. -. (1. /. float_of_int (dim / 2)))

let all () =
  row1 ();
  row2 ();
  row3 ();
  row4 ();
  rows5_7 ();
  row6 ()
