(* Shared helpers for the experiment harness. *)

let line = String.make 78 '-'

let section id title =
  Printf.printf "\n%s\n[%s] %s\n%s\n" line id title line

let log_base b x = log x /. log b

let blocks ~block_size n = (n + block_size - 1) / block_size

(* Average and max of an integer sample. *)
let summarize xs =
  let n = max 1 (List.length xs) in
  let sum = List.fold_left ( + ) 0 xs in
  let mx = List.fold_left max 0 xs in
  (float_of_int sum /. float_of_int n, mx)

(* Least-squares slope of log(y) against log(x): the empirical scaling
   exponent of a series. *)
let scaling_exponent pts =
  let pts =
    List.filter (fun (x, y) -> x > 0. && y > 0.) pts
    |> List.map (fun (x, y) -> (log x, log y))
  in
  let n = float_of_int (List.length pts) in
  if n < 2. then nan
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
    ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))
  end

(* Run [queries] and report (avg I/Os, max I/Os, avg t in blocks). *)
let measure_queries ~stats ~block_size queries =
  let ios = ref [] and ts = ref [] in
  List.iter
    (fun q ->
      Emio.Io_stats.reset stats;
      let t = q () in
      ios := Emio.Io_stats.reads stats :: !ios;
      ts := blocks ~block_size t :: !ts)
    queries;
  let avg_io, max_io = summarize !ios in
  let avg_t, _ = summarize !ts in
  (avg_io, max_io, avg_t)
