bench/util.ml: Emio List Printf String
