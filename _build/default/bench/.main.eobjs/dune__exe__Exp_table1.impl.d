bench/exp_table1.ml: Core Emio List Printf Util Workload
