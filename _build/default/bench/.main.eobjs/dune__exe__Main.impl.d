bench/main.ml: Array Bench_time Exp_extra Exp_figures Exp_table1 List Printf Sys
