bench/exp_figures.ml: Arrangement Array Core Dual2 Emio Float Geom Line2 List Partition Point2 Printf Random Util Workload
