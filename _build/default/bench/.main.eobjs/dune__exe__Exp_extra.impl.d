bench/exp_extra.ml: Array Baselines Core Emio Float Geom List Plane3 Point2 Printf Random Util Workload
