bench/bench_time.ml: Analyze Bechamel Benchmark Core Emio Hashtbl Instance Measure Printf Staged Test Time Toolkit Util Workload
