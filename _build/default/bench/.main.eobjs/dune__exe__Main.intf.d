bench/main.mli:
