lib/baselines/rect.mli: Geom
