lib/baselines/quadtree.mli: Emio Geom
