lib/baselines/linear_scan.ml: Array Emio Eps Geom Point2
