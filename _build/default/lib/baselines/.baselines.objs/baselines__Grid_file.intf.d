lib/baselines/grid_file.mli: Emio Geom Rect
