lib/baselines/grid_file.ml: Array Emio Eps Float Geom List Point2 Rect
