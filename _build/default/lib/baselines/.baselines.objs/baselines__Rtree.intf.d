lib/baselines/rtree.mli: Emio Geom Rect
