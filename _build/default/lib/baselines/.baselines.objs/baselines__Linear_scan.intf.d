lib/baselines/linear_scan.mli: Emio Geom
