lib/baselines/rtree.ml: Array Emio Eps Float Geom List Point2 Rect
