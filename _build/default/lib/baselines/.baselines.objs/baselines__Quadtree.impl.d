lib/baselines/quadtree.ml: Array Emio Eps Geom List Point2 Rect
