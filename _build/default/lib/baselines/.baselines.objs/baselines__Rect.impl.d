lib/baselines/rect.ml: Array Eps Geom Point2
