lib/pointloc/grid.mli: Emio Geom
