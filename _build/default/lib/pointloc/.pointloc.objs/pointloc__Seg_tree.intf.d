lib/pointloc/seg_tree.mli: Emio Geom
