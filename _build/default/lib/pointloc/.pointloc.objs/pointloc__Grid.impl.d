lib/pointloc/grid.ml: Array Emio Geom List Point2
