lib/pointloc/seg_tree.ml: Array Emio Eps Float Geom List Option Point2
