(** Balanced simplicial partitions (Theorem 5.1 / Theorem 6.2).

    A partition of a point set S into r pairs (S_i, cell_i) with
    |S_i| between |S|/r and 2|S|/r and every S_i inside its cell.
    Three constructions:

    - [kd]: recursive median splits; the cells are tight boxes.  A
      classical fact gives the same worst-case O(r^{1-1/d}) crossing
      bound Theorem 5.1 promises for simplices (DESIGN.md
      substitution 5) — this is the default for the §5 trees.
    - [simplicial]: the kd groups wrapped in bounding simplices — a
      literal "balanced simplicial partition" as in Fig. 6, used by the
      Figure 6 reproduction and the partitioner ablation.
    - [shallow]: depth bands (along the last coordinate) refined by kd
      in the remaining coordinates — the heuristic stand-in for
      Matoušek's shallow partition theorem (Theorem 6.2, DESIGN.md
      substitution 6) used by the §6 shallow trees.

    Every constructor returns groups as arrays of indices into the
    input array, so payloads can follow the points. *)

type t = (Cells.cell * int array) array

val kd : points:Cells.point array -> r:int -> t
val simplicial : points:Cells.point array -> r:int -> t
val shallow : points:Cells.point array -> r:int -> t

val is_balanced : t -> n:int -> r:int -> bool
(** Every part has between n/r and 2·⌈n/r⌉ points (Theorem 5.1's
    balance condition, with rounding slack). *)
