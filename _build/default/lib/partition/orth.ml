(* Small dense linear algebra: the null-space vector needed to build a
   simplex facet's supporting hyperplane in d dimensions. *)

(* Given m row vectors of length d (m < d expected), return a nonzero
   vector orthogonal to all of them (a null-space vector of the m x d
   matrix), by Gaussian elimination with partial pivoting.  If the rows
   are degenerate the result may be orthogonal to a subset only; the
   caller treats such simplices conservatively. *)
let normal_orthogonal_to rows d =
  let m = Array.length rows in
  let a = Array.map Array.copy rows in
  let pivot_col = Array.make m (-1) in
  let row = ref 0 in
  let col = ref 0 in
  while !row < m && !col < d do
    (* find pivot *)
    let best = ref !row and bestv = ref (Float.abs a.(!row).(!col)) in
    for r = !row + 1 to m - 1 do
      let v = Float.abs a.(r).(!col) in
      if v > !bestv then begin
        best := r;
        bestv := v
      end
    done;
    if !bestv < 1e-12 then incr col
    else begin
      let tmp = a.(!row) in
      a.(!row) <- a.(!best);
      a.(!best) <- tmp;
      pivot_col.(!row) <- !col;
      let p = a.(!row).(!col) in
      for r = 0 to m - 1 do
        if r <> !row then begin
          let f = a.(r).(!col) /. p in
          for c = !col to d - 1 do
            a.(r).(c) <- a.(r).(c) -. (f *. a.(!row).(c))
          done
        end
      done;
      incr row;
      incr col
    end
  done;
  (* choose a free column *)
  let is_pivot = Array.make d false in
  Array.iter (fun c -> if c >= 0 then is_pivot.(c) <- true) pivot_col;
  let free =
    let rec find c = if c >= d then d - 1 else if is_pivot.(c) then find (c + 1) else c in
    find 0
  in
  let n = Array.make d 0. in
  n.(free) <- 1.;
  (* back-substitute pivots *)
  for r = 0 to m - 1 do
    let c = pivot_col.(r) in
    if c >= 0 then n.(c) <- -.(a.(r).(free) /. a.(r).(c))
  done;
  n
