(** Small dense linear algebra for simplex facets. *)

val normal_orthogonal_to : float array array -> int -> float array
(** [normal_orthogonal_to rows d]: a nonzero vector of length [d]
    orthogonal to each of the given row vectors (a null-space vector of
    the row matrix), computed by Gaussian elimination with partial
    pivoting.  With degenerate rows the result may be orthogonal to a
    subset only; callers treat such simplices conservatively. *)
