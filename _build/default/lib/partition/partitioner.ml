type t = (Cells.cell * int array) array

(* Split [idx] into [parts] groups of near-equal size by recursive
   median cuts, choosing the dimension of widest spread at every step
   (a balanced kd partition).  [dims] restricts the split dimensions
   (the shallow partitioner uses this). *)
let rec kd_split points idx parts ~dims acc =
  if parts <= 1 || Array.length idx <= 1 then idx :: acc
  else begin
    let spread dim =
      let lo = ref infinity and hi = ref neg_infinity in
      Array.iter
        (fun i ->
          let v = points.(i).(dim) in
          if v < !lo then lo := v;
          if v > !hi then hi := v)
        idx;
      !hi -. !lo
    in
    let dim =
      List.fold_left
        (fun best d -> if spread d > spread best then d else best)
        (List.hd dims) dims
    in
    let sorted = Array.copy idx in
    Array.sort
      (fun i j -> Float.compare points.(i).(dim) points.(j).(dim))
      sorted;
    let left_parts = parts / 2 in
    let cut = Array.length idx * left_parts / parts in
    let left = Array.sub sorted 0 cut
    and right = Array.sub sorted cut (Array.length idx - cut) in
    let acc = kd_split points left left_parts ~dims acc in
    kd_split points right (parts - left_parts) ~dims acc
  end

let group_points points idx = Array.map (fun i -> points.(i)) idx

let kd ~points ~r =
  if Array.length points = 0 then [||]
  else begin
    let dims = List.init (Array.length points.(0)) Fun.id in
    let idx = Array.init (Array.length points) Fun.id in
    let groups = kd_split points idx r ~dims [] in
    Array.of_list
      (List.filter_map
         (fun g ->
           if Array.length g = 0 then None
           else Some (Cells.bounding_box (group_points points g), g))
         groups)
  end

let simplicial ~points ~r =
  if Array.length points = 0 then [||]
  else begin
    let dim = Array.length points.(0) in
    Array.map
      (fun (_, g) -> (Cells.bounding_simplex ~dim (group_points points g), g))
      (kd ~points ~r)
  end

let shallow ~points ~r =
  if Array.length points = 0 then [||]
  else begin
    let d = Array.length points.(0) in
    if d < 2 || r <= 3 then kd ~points ~r
    else begin
      (* depth bands along the last coordinate, each refined by kd in
         the remaining coordinates: a shallow constraint stays inside
         the bottom bands and crosses few refined cells *)
      let bands = max 2 (int_of_float (sqrt (float_of_int r))) in
      let per_band = max 1 (r / bands) in
      let idx = Array.init (Array.length points) Fun.id in
      let band_groups =
        kd_split points idx bands ~dims:[ d - 1 ] []
      in
      let sub_dims = List.init (d - 1) Fun.id in
      let groups =
        List.concat_map
          (fun band ->
            if Array.length band = 0 then []
            else kd_split points band per_band ~dims:sub_dims [])
          band_groups
      in
      Array.of_list
        (List.filter_map
           (fun g ->
             if Array.length g = 0 then None
             else Some (Cells.bounding_box (group_points points g), g))
           groups)
    end
  end

let is_balanced (t : t) ~n ~r =
  let lo = n / r and hi = 2 * ((n + r - 1) / r) in
  Array.for_all
    (fun (_, g) ->
      let s = Array.length g in
      s >= min lo 1 && s <= max hi 2)
    t
