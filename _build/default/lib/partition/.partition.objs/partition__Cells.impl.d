lib/partition/cells.ml: Array List Orth
