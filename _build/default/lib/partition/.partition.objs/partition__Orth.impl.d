lib/partition/orth.ml: Array Float
