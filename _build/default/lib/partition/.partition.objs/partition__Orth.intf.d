lib/partition/orth.mli:
