lib/partition/cells.mli:
