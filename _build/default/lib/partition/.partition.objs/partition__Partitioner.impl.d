lib/partition/partitioner.ml: Array Cells Float Fun List
