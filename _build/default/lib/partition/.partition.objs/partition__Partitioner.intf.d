lib/partition/partitioner.mli: Cells
