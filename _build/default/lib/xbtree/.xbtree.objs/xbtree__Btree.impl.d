lib/xbtree/btree.ml: Array Emio List
