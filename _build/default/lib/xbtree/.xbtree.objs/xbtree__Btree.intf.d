lib/xbtree/btree.mli: Emio
