(** Traversal of the k-level of an arrangement of lines (§2.3).

    The k-level A_k(L) is the closure of the edges of the arrangement
    whose points have exactly [k] lines strictly below them; it is an
    x-monotone polygonal chain.  We walk it from x = -infinity to
    x = +infinity, maintaining the sets L^-(x) (lines strictly below
    the current edge), as in the Edelsbrunner–Welzl algorithm.  The
    Overmars–van Leeuwen structure is replaced by an exact linear scan
    per vertex (see DESIGN.md substitution 2); the traversal itself —
    and hence the resulting polyline — is exact.

    Lines are identified by their index in the input array.  Input
    lines must be pairwise distinct (duplicates are the caller's
    responsibility; the 2-D halfspace structure deduplicates points
    before dualizing). *)

type vertex_kind =
  | Convex  (** a ∨ vertex: the slope increases; the incoming line
                continues {e below} the level (paper Fig. 4) *)
  | Concave  (** a ∧ vertex: the slope decreases; the incoming line
                 continues above the level *)

type event = {
  vertex : Geom.Point2.t;
  kind : vertex_kind;
  incoming : int;  (** line forming the edge ending at this vertex *)
  outgoing : int;  (** line forming the edge starting here *)
}

type level = {
  edge_lines : int array;
      (** lines supporting the edges, left to right;
          [Array.length edge_lines = Array.length vertices + 1] *)
  vertices : Geom.Point2.t array;
}

val walk :
  ?on_event:(event -> below_after:(unit -> int list) -> unit) ->
  lines:Geom.Line2.t array ->
  k:int ->
  unit ->
  level
(** [walk ~lines ~k ()] traverses A_k(lines).  Requires
    [0 <= k < Array.length lines].  [on_event] fires at every vertex,
    left to right; [below_after ()] lists the lines strictly below the
    level edge that starts at this vertex (cost O(k) per call). *)

val complexity : level -> int
(** Number of vertices of the level. *)

val check_level : lines:Geom.Line2.t array -> k:int -> level -> bool
(** Debug/test oracle: samples every edge of the level and verifies by
    brute force that exactly [k] lines lie strictly below it, and that
    consecutive edges meet at the recorded vertices. *)
