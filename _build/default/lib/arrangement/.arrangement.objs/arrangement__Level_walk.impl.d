lib/arrangement/level_walk.ml: Array Float Fun Geom Hashtbl Line2 Point2
