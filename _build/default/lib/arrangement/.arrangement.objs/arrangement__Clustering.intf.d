lib/arrangement/clustering.mli: Geom
