lib/arrangement/clustering.ml: Array Float Fun Geom Hashtbl Level_walk Line2 List Point2
