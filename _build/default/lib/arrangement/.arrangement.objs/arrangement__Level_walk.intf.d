lib/arrangement/level_walk.mli: Geom
