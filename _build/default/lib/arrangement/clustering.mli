(** The greedy 3k-clustering of a level (§3.1, Lemma 3.2).

    A clustering of A_k(L) is induced by a left-to-right subsequence
    w_0, ..., w_u of level vertices (plus the points at x = ±infinity):
    cluster C_i is the set of lines passing strictly below some point
    of the level between w_{i-1} and w_i.  The greedy clustering makes
    every cluster have at most 3k lines while guaranteeing that at
    least k lines of each cluster never reappear in a later cluster —
    hence at most N/k clusters (Lemma 3.2) — and that a line reappearing
    to the right of C_i also appears in C_{i+1} (Corollary 3.3).

    Lemma 3.1 is what queries rely on: if a query point p, whose
    relevant cluster is C, lies above fewer than k lines of C, then
    every line of L below p belongs to C. *)

type cluster = {
  lines : int array;
      (** ids of the member lines, sorted by (slope, intercept) — the
          order §3.3 uses to merge/diff neighbouring clusters *)
  left_x : float;  (** abscissa of the left boundary point w_{i-1} *)
  right_x : float;  (** abscissa of the right boundary point w_i *)
}

type t = {
  clusters : cluster array;
  boundaries : float array;
      (** abscissas of w_1 .. w_{u-1}: the internal boundary points;
          cluster [i] is relevant for points with
          boundaries.(i-1) <= x < boundaries.(i) *)
  level_complexity : int;  (** number of vertices of the walked level *)
}

val greedy : lines:Geom.Line2.t array -> k:int -> t
(** Walks A_k(lines) and builds the greedy 3k-clustering.  Requires
    [1 <= k < Array.length lines] and pairwise distinct lines. *)

val relevant : t -> float -> int
(** Index of the cluster relevant for a point with abscissa [x]
    (exactly one cluster is relevant for every x). *)

val size : t -> int
(** Number of clusters. *)

val max_cluster_size : t -> int

val member_union : t -> int list
(** Sorted ids of all lines appearing in at least one cluster: the
    subset L_i that this layer of the §3 structure is responsible
    for. *)
