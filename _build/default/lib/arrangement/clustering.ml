open Geom

type cluster = { lines : int array; left_x : float; right_x : float }

type t = {
  clusters : cluster array;
  boundaries : float array;
  level_complexity : int;
}

let cmp_lines (all : Line2.t array) i j =
  let c = Float.compare (Line2.slope all.(i)) (Line2.slope all.(j)) in
  if c <> 0 then c
  else Float.compare (Line2.icept all.(i)) (Line2.icept all.(j))

let greedy ~lines ~k =
  let n = Array.length lines in
  if k < 1 || k >= n then invalid_arg "Clustering.greedy: need 1 <= k < n";
  let cap = 3 * k in
  (* L_{w_0}: the k lines lowest at x = -infinity (largest slope,
     ties broken towards smaller intercept). *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      let c = Float.compare (Line2.slope lines.(j)) (Line2.slope lines.(i)) in
      if c <> 0 then c
      else Float.compare (Line2.icept lines.(i)) (Line2.icept lines.(j)))
    order;
  let members = Hashtbl.create (2 * cap) in
  for i = 0 to k - 1 do
    Hashtbl.replace members order.(i) ()
  done;
  let cluster_start = ref neg_infinity in
  let finished_clusters = ref [] in
  let close_cluster right_x =
    let ids = Hashtbl.fold (fun id () acc -> id :: acc) members [] in
    let ids = Array.of_list ids in
    Array.sort (cmp_lines lines) ids;
    finished_clusters :=
      { lines = ids; left_x = !cluster_start; right_x } :: !finished_clusters;
    cluster_start := right_x
  in
  let on_event (ev : Level_walk.event) ~below_after =
    match ev.kind with
    | Level_walk.Concave -> ()
    | Level_walk.Convex ->
        (* the line through the vertex with minimum slope is the
           incoming edge line; it continues below the level *)
        let l = ev.incoming in
        if not (Hashtbl.mem members l) then begin
          if Hashtbl.length members < cap then Hashtbl.replace members l ()
          else begin
            (* close C_i at w_i = this vertex; the next cluster starts
               from the lines strictly below w_i plus l itself, which
               is exactly L^- after the vertex *)
            close_cluster (Point2.x ev.vertex);
            Hashtbl.reset members;
            List.iter (fun id -> Hashtbl.replace members id ()) (below_after ())
          end
        end
  in
  let level = Level_walk.walk ~on_event ~lines ~k () in
  close_cluster infinity;
  let clusters = Array.of_list (List.rev !finished_clusters) in
  let boundaries =
    Array.init
      (max 0 (Array.length clusters - 1))
      (fun i -> clusters.(i).right_x)
  in
  { clusters; boundaries; level_complexity = Level_walk.complexity level }

let relevant t x =
  (* number of boundaries <= x *)
  let lo = ref 0 and hi = ref (Array.length t.boundaries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.boundaries.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let size t = Array.length t.clusters

let max_cluster_size t =
  Array.fold_left (fun m c -> max m (Array.length c.lines)) 0 t.clusters

let member_union t =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun c -> Array.iter (fun id -> Hashtbl.replace seen id ()) c.lines)
    t.clusters;
  List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) seen [])
