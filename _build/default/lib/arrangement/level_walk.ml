open Geom

type vertex_kind = Convex | Concave

type event = {
  vertex : Point2.t;
  kind : vertex_kind;
  incoming : int;
  outgoing : int;
}

type level = { edge_lines : int array; vertices : Point2.t array }

(* Growable vectors, to collect the level. *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let cap = max 8 (2 * Array.length v.data) in
      let bigger = Array.make cap x in
      Array.blit v.data 0 bigger 0 v.len;
      v.data <- bigger
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let to_array v = Array.sub v.data 0 v.len
end

(* The walk crosses, at each vertex, the line whose intersection with
   the current edge line has the smallest abscissa strictly beyond the
   current position.  Every line of the arrangement either crosses the
   current line ahead (and is a candidate) or behind (and is excluded
   by the [> x] test), so one pass over the lines finds the next vertex
   exactly — no dynamic envelope is needed (DESIGN.md substitution 2).
   The expected total cost over the §3 construction is O(sum_i nu_i
   N_i) with nu_i the level complexity, which Corollary 2.3 keeps
   near-linear per layer for the random levels the paper picks. *)
let next_crossing lines ~current ~after =
  let cur = lines.(current) in
  let s0 = Line2.slope cur and c0 = Line2.icept cur in
  let best_x = ref infinity and best_id = ref (-1) in
  for m = 0 to Array.length lines - 1 do
    if m <> current then begin
      let sm = Line2.slope lines.(m) in
      if sm <> s0 then begin
        let x = (Line2.icept lines.(m) -. c0) /. (s0 -. sm) in
        if x > after && x < !best_x then begin
          best_x := x;
          best_id := m
        end
      end
    end
  done;
  if !best_id < 0 then None else Some (!best_x, !best_id)

let walk ?(on_event = fun _ ~below_after:_ -> ()) ~lines ~k () =
  let n = Array.length lines in
  if k < 0 || k >= n then invalid_arg "Level_walk.walk: need 0 <= k < n";
  (* Order at x = -infinity: larger slope is lower; break slope ties by
     intercept (lower intercept is lower everywhere). *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      let c = Float.compare (Line2.slope lines.(j)) (Line2.slope lines.(i)) in
      if c <> 0 then c
      else Float.compare (Line2.icept lines.(i)) (Line2.icept lines.(j)))
    order;
  (* L^-: ids of the k lines strictly below the current edge. *)
  let minus = Hashtbl.create (2 * (k + 1)) in
  for i = 0 to k - 1 do
    Hashtbl.replace minus order.(i) ()
  done;
  let current = ref order.(k) in
  let edge_lines = Vec.create () and vertices = Vec.create () in
  Vec.push edge_lines !current;
  let x = ref neg_infinity in
  let finished = ref false in
  while not !finished do
    match next_crossing lines ~current:!current ~after:!x with
    | None -> finished := true
    | Some (vx, g) ->
        let incoming = !current in
        let vertex = Point2.make vx (Line2.eval lines.(incoming) vx) in
        let kind =
          if Hashtbl.mem minus g then begin
            (* g rises through the level: the incoming line dives below
               it, so the vertex is convex (a ∨) *)
            Hashtbl.remove minus g;
            Hashtbl.replace minus incoming ();
            Convex
          end
          else Concave
        in
        current := g;
        x := vx;
        Vec.push vertices vertex;
        Vec.push edge_lines g;
        let below_after () =
          Hashtbl.fold (fun id () acc -> id :: acc) minus []
        in
        on_event { vertex; kind; incoming; outgoing = g } ~below_after
  done;
  { edge_lines = Vec.to_array edge_lines; vertices = Vec.to_array vertices }

let complexity level = Array.length level.vertices

let check_level ~lines ~k level =
  let n_edges = Array.length level.edge_lines in
  let n_vertices = Array.length level.vertices in
  if n_edges <> n_vertices + 1 then false
  else begin
    let ok = ref true in
    (* vertices strictly increase in x and lie on both incident lines *)
    for i = 0 to n_vertices - 1 do
      let v = level.vertices.(i) in
      if i > 0 && Point2.x level.vertices.(i - 1) >= Point2.x v then
        ok := false;
      let a = lines.(level.edge_lines.(i))
      and b = lines.(level.edge_lines.(i + 1)) in
      if not (Line2.through_point a v && Line2.through_point b v) then
        ok := false
    done;
    (* sample a point in the interior of each edge and count lines
       strictly below it *)
    let sample i =
      let lo =
        if i = 0 then
          if n_vertices = 0 then 0. else Point2.x level.vertices.(0) -. 10.
        else Point2.x level.vertices.(i - 1)
      and hi =
        if i = n_vertices then
          if n_vertices = 0 then 1.
          else Point2.x level.vertices.(n_vertices - 1) +. 10.
        else Point2.x level.vertices.(i)
      in
      (lo +. hi) /. 2.
    in
    for i = 0 to n_edges - 1 do
      let sx = sample i in
      let p = Point2.make sx (Line2.eval lines.(level.edge_lines.(i)) sx) in
      let below =
        Array.fold_left
          (fun acc l -> if Line2.below_point l p then acc + 1 else acc)
          0 lines
      in
      if below <> k then ok := false
    done;
    !ok
  end
