(** Triangulated lower envelopes of planes with conflict lists: the
    Δ(R_i) + K(Δ) layers of the §4.1 structure.

    [build] computes, for the sample R = the first [sample_size] planes
    of a permutation, the lower envelope of R restricted to a clip box
    in the xy-plane, fan-triangulates each envelope face, and attaches
    to every triangle Δ its conflict list K(Δ): the planes NOT in the
    sample that pass strictly below some point of Δ.  Because the gap
    between a plane and a face is affine, a plane conflicts with Δ iff
    it is below one of Δ's three corners, so:

    - corners that are envelope vertices take their conflict set from
      the corresponding hull facet of the dual lower hull ({!Hull3});
    - corners on the clip walls are resolved with 2-D wall envelopes
      ({!Envelope2.outer_interval});
    - rare numerically unresolved corners fall back to an exact scan.

    Queries against the envelope must stay strictly inside the clip
    box. *)

type triangle = {
  plane : int;  (** the sample plane forming the envelope here *)
  corners : Point2.t array;  (** the 3 plan-view corners *)
  corner_z : float array;  (** envelope height at each corner *)
  conflicts : int array;  (** K(Δ): non-sample planes below some point *)
}

type t = {
  triangles : triangle array;
  sample : int array;  (** ids of the planes in R *)
  clip : float * float * float * float;  (** xmin, ymin, xmax, ymax *)
}

val build :
  planes:Plane3.t array ->
  order:int array ->
  sample_size:int ->
  clip:float * float * float * float ->
  t
(** Raises [Invalid_argument] when the sample's dual points are
    affinely degenerate (fewer than 4 independent). *)

val locate_brute : t -> float -> float -> int option
(** Index of a triangle containing (x, y), by linear scan — the test
    oracle and the fallback when grid location misses. *)

val envelope_height : t -> int -> float -> float -> float
(** [envelope_height t tri x y] evaluates the triangle's plane at
    (x, y): the height of the envelope there. *)

val total_conflict_size : t -> int
(** Σ_Δ |K(Δ)| — Lemma 4.1(a) promises O(N) in expectation. *)
