lib/geom/eps.ml: Float
