lib/geom/vec.ml: Array
