lib/geom/point2.mli: Format
