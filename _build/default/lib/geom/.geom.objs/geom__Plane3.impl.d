lib/geom/plane3.ml: Eps Format Line2 Point2 Point3
