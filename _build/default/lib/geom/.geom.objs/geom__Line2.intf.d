lib/geom/line2.mli: Format Point2
