lib/geom/eps.mli:
