lib/geom/polygon2.mli: Point2
