lib/geom/line2.ml: Eps Float Format Point2
