lib/geom/vec.mli:
