lib/geom/dual2.mli: Line2 Point2
