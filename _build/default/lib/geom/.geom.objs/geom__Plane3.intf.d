lib/geom/plane3.mli: Format Line2 Point2 Point3
