lib/geom/envelope2.mli: Line2
