lib/geom/point2.ml: Eps Float Format
