lib/geom/envelope3.ml: Array Envelope2 Eps Float Hashtbl Hull3 List Option Plane3 Point2 Point3 Polygon2
