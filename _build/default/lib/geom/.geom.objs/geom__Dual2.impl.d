lib/geom/dual2.ml: Line2 Point2
