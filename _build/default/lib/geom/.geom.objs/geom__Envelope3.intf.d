lib/geom/envelope3.mli: Plane3 Point2
