lib/geom/hull3.mli: Point3
