lib/geom/hull3.ml: Array Float Fun Hashtbl List Point3 Vec
