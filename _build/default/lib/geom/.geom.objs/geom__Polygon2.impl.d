lib/geom/polygon2.ml: Array Eps List Point2
