lib/geom/envelope2.ml: Array Eps Float Line2
