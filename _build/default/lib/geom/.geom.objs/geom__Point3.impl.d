lib/geom/point3.ml: Eps Format
