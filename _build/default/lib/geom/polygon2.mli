(** Convex polygons in the plane with halfplane clipping.

    Used to build the faces of the projected 3-D lower envelope: the
    face of plane h is the clip box intersected with the halfplanes
    {h ≤ h_j} over the envelope neighbours j of h (§4.1). *)

type t = Point2.t array
(** Vertices in counterclockwise order; empty means the empty
    polygon. *)

val of_box : xmin:float -> ymin:float -> xmax:float -> ymax:float -> t
val vertices : t -> Point2.t array
val is_empty : t -> bool
val area : t -> float
val centroid : t -> Point2.t

val clip_halfplane : t -> fa:float -> fb:float -> fc:float -> t
(** Intersection with the halfplane {(x, y) | fa·x + fb·y + fc ≤ 0};
    results with fewer than three vertices collapse to the empty
    polygon. *)

val contains : t -> Point2.t -> bool
(** Closed containment (tolerant). *)
