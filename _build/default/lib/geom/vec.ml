(** A growable array (amortized O(1) push), shared by the incremental
    geometric constructions. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let push v x =
  if v.len = Array.length v.data then begin
    let cap = max 8 (2 * Array.length v.data) in
    let bigger = Array.make cap x in
    Array.blit v.data 0 bigger 0 v.len;
    v.data <- bigger
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let push_idx v x =
  push v x;
  v.len - 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: out of bounds";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set: out of bounds";
  v.data.(i) <- x

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let to_array v = Array.sub v.data 0 v.len
