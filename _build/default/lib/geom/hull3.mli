(** Randomized incremental 3-D convex hull with conflict lists.

    This is the engine behind the §4 structure: the lower envelope of a
    set of planes is, in the dual, the lower convex hull of their dual
    points, and the Clarkson–Shor conflict lists (Lemma 4.1) are
    exactly the point–facet visibility lists that the randomized
    incremental construction maintains.  We insert the first
    [sample_size] points of a permutation while tracking, for every
    facet, which of the NOT yet inserted points see it — precisely the
    conflict sets K(Δ) of §4.1 (DESIGN.md substitution 3).

    Facets are oriented triangles with outward normals; a point
    "sees" (conflicts with) a facet when it lies strictly outside the
    facet's supporting plane. *)

type facet = {
  a : int;
  b : int;
  c : int;  (** vertex ids, counterclockwise seen from outside *)
  normal : Point3.t;  (** outward normal (not normalized) *)
  conflicts : int array;
      (** ids of uninserted points strictly outside this facet *)
}

type t

val build : points:Point3.t array -> order:int array -> sample_size:int -> t
(** Builds the hull of the first [sample_size] points of [order]
    (a permutation of 0..N-1), tracking conflicts of the remaining
    points.  Raises [Invalid_argument] if the sample is degenerate
    (fewer than 4 affinely independent points). *)

val facets : t -> facet array
(** The alive facets of the hull of the sample. *)

val lower_facets : t -> facet array
(** Facets whose outward normal points downward (negative z):
    in the dual these are the vertices of the lower envelope. *)

val vertex_ids : t -> int list
(** Ids of the sample points that are hull vertices. *)

val check : points:Point3.t array -> t -> bool
(** Test oracle: every facet has all sample points on its inner side
    and its conflict list equal to the brute-force visibility set. *)
