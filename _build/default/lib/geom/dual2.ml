(** The duality transform of §2.1, in the plane.

    The dual of a point (a, b) is the line y = -a x + b, and the dual of
    the line y = s x + c is the point (s, c).  Lemma 2.1: a point p is
    above/below/on a line l iff the dual line p* is above/below/on the
    dual point l*. *)

let line_of_point (p : Point2.t) =
  Line2.make ~slope:(-.Point2.x p) ~icept:(Point2.y p)

let point_of_line (l : Line2.t) = Point2.make (Line2.slope l) (Line2.icept l)

(* Round trips, used by tests: point -> line -> point is an involution
   up to the sign flip of the first coordinate. *)
let point_of_dual_line (l : Line2.t) =
  Point2.make (-.Line2.slope l) (Line2.icept l)

let line_of_dual_point (p : Point2.t) =
  Line2.make ~slope:(Point2.x p) ~icept:(Point2.y p)
