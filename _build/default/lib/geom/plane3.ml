(** Non-vertical planes in R^3, in the form [z = a x + b y + c].

    All planes arising in the §4 structure are duals of points and
    therefore non-vertical.  The duality (§2.1) maps the point
    (p1, p2, p3) to the plane z = -p1 x - p2 y + p3 and the plane
    z = a x + b y + c to the point (a, b, c); above/below is
    preserved (Lemma 2.1). *)

type t = { a : float; b : float; c : float }

let make ~a ~b ~c = { a; b; c }
let a p = p.a
let b p = p.b
let c p = p.c

let eval h x y = (h.a *. x) +. (h.b *. y) +. h.c

let equal h g = Eps.equal h.a g.a && Eps.equal h.b g.b && Eps.equal h.c g.c

let below_point h (p : Point3.t) =
  Eps.lt (eval h (Point3.x p) (Point3.y p)) (Point3.z p)

let above_point h (p : Point3.t) =
  Eps.lt (Point3.z p) (eval h (Point3.x p) (Point3.y p))

(* The dual point of the plane, and the dual plane of a point. *)
let dual_point h = Point3.make h.a h.b h.c

let of_dual_point (p : Point3.t) =
  { a = Point3.x p; b = Point3.y p; c = Point3.z p }

let dual_plane_of_point (p : Point3.t) =
  { a = -.Point3.x p; b = -.Point3.y p; c = Point3.z p }

(* Restriction of the plane to a vertical "wall".  On the wall
   x = x0 the plane induces the line z = b * y + (a x0 + c); on the
   wall y = y0 the line z = a * x + (b y0 + c).  Used to compute
   conflicts of clip-boundary corners in the 3-D structure. *)
let restrict_x h x0 = Line2.make ~slope:h.b ~icept:((h.a *. x0) +. h.c)
let restrict_y h y0 = Line2.make ~slope:h.a ~icept:((h.b *. y0) +. h.c)

(* Lifting map (Theorem 4.3): the planar point (a, b) lifts to the
   plane z = a^2 + b^2 - 2 a x - 2 b y, so that the vertical distance
   at (p, q) between the lift and the paraboloid orders points by
   distance to (p, q). *)
let lift (p : Point2.t) =
  let a = Point2.x p and b = Point2.y p in
  { a = -2. *. a; b = -2. *. b; c = (a *. a) +. (b *. b) }

let pp ppf h = Format.fprintf ppf "z = %g x + %g y + %g" h.a h.b h.c
