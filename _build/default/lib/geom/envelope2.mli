(** Static lower/upper envelopes of a set of non-vertical lines.

    The lower envelope is the pointwise minimum (a concave piecewise
    linear function); the upper envelope the pointwise maximum (convex).
    These stand in for the Overmars–van Leeuwen structure of §2.3: the
    level-walk of the arrangement queries, for a ray travelling right
    along a line from the envelope's outer side, the first point where
    the ray meets the envelope (see DESIGN.md substitution 2). *)

type kind = Lower | Upper

type t

val build : kind -> Line2.t array -> t
(** O(m log m).  Duplicate and dominated lines are dropped. *)

val kind : t -> kind

val size : t -> int
(** Number of segments of the envelope. *)

val is_empty : t -> bool

val eval : t -> float -> float
(** Height of the envelope at [x].  Raises [Invalid_argument] on an
    empty envelope. *)

val line_at : t -> float -> Line2.t
(** The envelope line at abscissa [x] (at a breakpoint, the segment to
    the right). *)

val first_crossing : t -> Line2.t -> after:float -> (float * Line2.t) option
(** [first_crossing t probe ~after] is the smallest [x > after] at
    which [probe] meets the envelope, together with the envelope line
    there, assuming the probe is strictly on the envelope's outer side
    at [after] (above an upper envelope / below it for Lower — i.e. the
    side from which the envelope is the first obstacle).  [None] if the
    ray never meets the envelope. *)

val outer_interval : t -> Line2.t -> (float * float) option
(** The open x-interval on which [probe] is strictly on the envelope's
    outer side (below a lower envelope, above an upper one), or [None]
    if there is no such region.  Because the gap function is concave,
    this region is always a single interval, possibly with
    [neg_infinity] / [infinity] ends.  Used to compute which
    clip-boundary corners a plane conflicts with in the 3-D structure
    (§4.1). *)

val breakpoints : t -> float array
val lines : t -> Line2.t array
