(** Tolerance policy for floating-point geometry.

    The library works on IEEE doubles.  Inputs are assumed to be in
    "generic position up to eps": no three lines within [eps] of a
    common point, no two slopes within [eps], and so on.  The workload
    generators produce such inputs with probability 1; unit tests use
    integer-valued coordinates where exactness matters.  See DESIGN.md
    substitution 7. *)

val eps : float

val sign : float -> int
(** -1, 0 or +1, with a dead zone of ±{!eps}. *)

val equal : float -> float -> bool
val lt : float -> float -> bool
val leq : float -> float -> bool
