(** A growable array (amortized O(1) push), shared by the incremental
    geometric constructions. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val push_idx : 'a t -> 'a -> int
(** Push and return the element's index. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val to_array : 'a t -> 'a array
