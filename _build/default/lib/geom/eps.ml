(* Tolerance policy for floating-point geometry.

   The library works on IEEE doubles.  Inputs are assumed to be in
   "generic position up to eps": no three lines within [eps] of a common
   point, no two slopes within [eps], etc.  Workload generators
   (lib/workload) produce such inputs with probability 1; unit tests use
   integer-valued coordinates where exactness matters.  See DESIGN.md
   substitution 7. *)

let eps = 1e-9

let sign x = if x > eps then 1 else if x < -.eps then -1 else 0
let equal x y = Float.abs (x -. y) <= eps
let lt x y = x < y -. eps
let leq x y = x <= y +. eps
