(** Non-vertical lines in the plane, in slope–intercept form
    [y = slope * x + icept].

    All lines arising in the paper's 2-D structure are duals of points
    (§2.1) and therefore non-vertical.  Parallel lines (equal slopes)
    are supported; they simply never intersect. *)

type t

val make : slope:float -> icept:float -> t
val slope : t -> float
val icept : t -> float

val eval : t -> float -> float
(** Height of the line at the given abscissa. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order by (slope, intercept); the §3 clusters are stored in
    this order so neighbouring clusters can be merged and diffed by a
    linear pass. *)

val parallel : t -> t -> bool

val meet_x : t -> t -> float
(** Abscissa of the intersection of two non-parallel lines (division by
    ~0 if parallel — check {!parallel} first). *)

val meet : t -> t -> Point2.t option
(** [None] for parallel lines. *)

val below_point : t -> Point2.t -> bool
(** The line passes strictly below the point (within tolerance). *)

val above_point : t -> Point2.t -> bool
val through_point : t -> Point2.t -> bool

val compare_at : float -> t -> t -> int
(** Order of two lines along the vertical line at [x]: negative when
    the first is strictly lower there. *)

val pp : Format.formatter -> t -> unit
