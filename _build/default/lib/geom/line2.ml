(** Non-vertical lines in the plane, in slope–intercept form
    [y = slope * x + icept].

    All lines arising in the paper's 2-D structure are duals of points
    (§2.1) and therefore non-vertical.  Parallel lines (equal slopes)
    are supported; they simply never intersect. *)

type t = { slope : float; icept : float }

let make ~slope ~icept = { slope; icept }
let slope l = l.slope
let icept l = l.icept

let eval l x = (l.slope *. x) +. l.icept

let equal l m = Eps.equal l.slope m.slope && Eps.equal l.icept m.icept

(* Total order by (slope, intercept); the §3 clusters are stored in this
   order so that set difference C_k \ C_{k+1} is a linear merge. *)
let compare l m =
  let c = Float.compare l.slope m.slope in
  if c <> 0 then c else Float.compare l.icept m.icept

let parallel l m = Eps.equal l.slope m.slope

(* x-coordinate of the intersection of two non-parallel lines. *)
let meet_x l m = (m.icept -. l.icept) /. (l.slope -. m.slope)

let meet l m =
  if parallel l m then None
  else
    let x = meet_x l m in
    Some (Point2.make x (eval l x))

(* Strict comparisons of a line against a point, with tolerance. *)
let below_point l (p : Point2.t) = Eps.lt (eval l (Point2.x p)) (Point2.y p)
let above_point l (p : Point2.t) = Eps.lt (Point2.y p) (eval l (Point2.x p))
let through_point l (p : Point2.t) = Eps.equal (eval l (Point2.x p)) (Point2.y p)

(* Order of two lines along the vertical line at [x]: negative when [l]
   is strictly lower there. *)
let compare_at x l m = Eps.sign (eval l x -. eval m x)

let pp ppf l = Format.fprintf ppf "y = %g x + %g" l.slope l.icept
