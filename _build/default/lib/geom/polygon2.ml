(** Convex polygons in the plane, with halfplane clipping
    (Sutherland–Hodgman restricted to convex input).

    Used to build the faces of the projected 3-D lower envelope: the
    face of plane h is the clip box intersected with the halfplanes
    {h <= h_j} over the envelope neighbours j of h (§4.1). *)

type t = Point2.t array
(** Vertices in counterclockwise order; empty means the empty polygon. *)

let of_box ~xmin ~ymin ~xmax ~ymax : t =
  [|
    Point2.make xmin ymin;
    Point2.make xmax ymin;
    Point2.make xmax ymax;
    Point2.make xmin ymax;
  |]

let vertices (t : t) = t
let is_empty (t : t) = Array.length t = 0

let area (t : t) =
  let n = Array.length t in
  let s = ref 0. in
  for i = 0 to n - 1 do
    let p = t.(i) and q = t.((i + 1) mod n) in
    s := !s +. ((Point2.x p *. Point2.y q) -. (Point2.x q *. Point2.y p))
  done;
  !s /. 2.

let centroid (t : t) =
  let n = Array.length t in
  if n = 0 then invalid_arg "Polygon2.centroid: empty polygon";
  let sx = ref 0. and sy = ref 0. in
  Array.iter
    (fun p ->
      sx := !sx +. Point2.x p;
      sy := !sy +. Point2.y p)
    t;
  Point2.make (!sx /. float_of_int n) (!sy /. float_of_int n)

(* Clip by the halfplane {(x,y) | f(x,y) <= 0} where f is affine,
   given as f(x,y) = fa*x + fb*y + fc. *)
let clip_halfplane (t : t) ~fa ~fb ~fc : t =
  let n = Array.length t in
  if n = 0 then [||]
  else begin
    let value p = (fa *. Point2.x p) +. (fb *. Point2.y p) +. fc in
    let out = ref [] in
    for i = 0 to n - 1 do
      let p = t.(i) and q = t.((i + 1) mod n) in
      let vp = value p and vq = value q in
      let crossing () =
        (* intersection of segment pq with {f = 0} *)
        let s = vp /. (vp -. vq) in
        Point2.make
          (Point2.x p +. (s *. (Point2.x q -. Point2.x p)))
          (Point2.y p +. (s *. (Point2.y q -. Point2.y p)))
      in
      if vp <= Eps.eps then begin
        out := p :: !out;
        if vq > Eps.eps && vp < -.Eps.eps then out := crossing () :: !out
      end
      else if vq < -.Eps.eps then out := crossing () :: !out
    done;
    let result = Array.of_list (List.rev !out) in
    if Array.length result < 3 then [||] else result
  end

let contains (t : t) p =
  let n = Array.length t in
  if n < 3 then false
  else begin
    let inside = ref true in
    for i = 0 to n - 1 do
      if Point2.orient t.(i) t.((i + 1) mod n) p < 0 then inside := false
    done;
    !inside
  end
