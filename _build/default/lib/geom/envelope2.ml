type kind = Lower | Upper

type t = {
  kind : kind;
  lines : Line2.t array; (* envelope segments, left to right *)
  bps : float array; (* bps.(i) separates lines.(i) and lines.(i+1) *)
}

let kind t = t.kind
let size t = Array.length t.lines
let is_empty t = size t = 0
let breakpoints t = t.bps
let lines t = t.lines

(* Along a lower envelope slopes strictly decrease left to right; along
   an upper envelope they strictly increase.  We therefore process
   candidate lines from the leftmost-segment slope onwards and maintain
   a stack of (segment line, segment start x). *)
let build k input =
  let lines = Array.copy input in
  (match k with
  | Lower ->
      (* leftmost segment has the largest slope; ties keep the lowest *)
      Array.sort
        (fun (a : Line2.t) b ->
          let c = Float.compare (Line2.slope b) (Line2.slope a) in
          if c <> 0 then c else Float.compare (Line2.icept a) (Line2.icept b))
        lines
  | Upper ->
      Array.sort
        (fun (a : Line2.t) b ->
          let c = Float.compare (Line2.slope a) (Line2.slope b) in
          if c <> 0 then c else Float.compare (Line2.icept b) (Line2.icept a))
        lines);
  let n = Array.length lines in
  if n = 0 then { kind = k; lines = [||]; bps = [||] }
  else begin
    let stack_lines = Array.make n lines.(0) in
    let stack_start = Array.make n neg_infinity in
    let top = ref (-1) in
    let push l x =
      incr top;
      stack_lines.(!top) <- l;
      stack_start.(!top) <- x
    in
    for i = 0 to n - 1 do
      let l = lines.(i) in
      if !top < 0 then push l neg_infinity
      else if Line2.parallel l stack_lines.(!top) then
        (* dominated duplicate slope: the sort put the better one first *)
        ()
      else begin
        (* [l] has strictly smaller (Lower) / larger (Upper) slope than
           everything on the stack, so it owns the envelope after the
           meet point; pop segments it fully covers. *)
        let rec settle () =
          if !top < 0 then push l neg_infinity
          else
            let x = Line2.meet_x l stack_lines.(!top) in
            if x <= stack_start.(!top) then begin
              decr top;
              settle ()
            end
            else push l x
        in
        settle ()
      end
    done;
    let m = !top + 1 in
    {
      kind = k;
      lines = Array.sub stack_lines 0 m;
      bps = Array.init (max 0 (m - 1)) (fun i -> stack_start.(i + 1));
    }
  end

(* Index of the segment containing abscissa [x]: number of breakpoints
   strictly below [x]. *)
let segment_index t x =
  let lo = ref 0 and hi = ref (Array.length t.bps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.bps.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let line_at t x =
  if is_empty t then invalid_arg "Envelope2.line_at: empty envelope";
  t.lines.(segment_index t x)

let eval t x =
  if is_empty t then invalid_arg "Envelope2.eval: empty envelope";
  Line2.eval (line_at t x) x

(* Signed gap between the probe and the envelope, positive when the
   probe is on the envelope's outer side.  In both kinds the gap is a
   concave piecewise-linear function of x, which is what makes the
   binary searches below sound. *)
let gap t (probe : Line2.t) x =
  match t.kind with
  | Upper -> Line2.eval probe x -. eval t x
  | Lower -> eval t x -. Line2.eval probe x

let gap_slope t probe i =
  match t.kind with
  | Upper -> Line2.slope probe -. Line2.slope t.lines.(i)
  | Lower -> Line2.slope t.lines.(i) -. Line2.slope probe

let first_crossing t probe ~after =
  if is_empty t then None
  else begin
    let nb = Array.length t.bps in
    (* Smallest breakpoint index whose abscissa is > after. *)
    let first_bp =
      let lo = ref 0 and hi = ref nb in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if t.bps.(mid) <= after then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    (* The gap is concave and >= 0 just right of [after]; once it drops
       below zero it stays below, so "gap at breakpoint j < 0" is a
       monotone predicate over j >= first_bp. *)
    let neg j = gap t probe t.bps.(j) < -.Eps.eps in
    let crossing_in_segment i lo_bound =
      (* gap changes sign inside segment i *)
      let l = t.lines.(i) in
      if Line2.parallel probe l then None
      else
        let x = Line2.meet_x probe l in
        if x > lo_bound then Some (x, l) else None
    in
    let exception Found of (float * Line2.t) option in
    try
      if first_bp < nb && neg first_bp then begin
        (* crossing before the first candidate breakpoint: it lies in
           segment [first_bp] (which starts before that breakpoint). *)
        raise (Found (crossing_in_segment first_bp after))
      end;
      (* binary search for the first negative breakpoint beyond. *)
      let lo = ref first_bp and hi = ref nb in
      (* invariant: all breakpoints in [first_bp, lo) are non-negative *)
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if neg mid then hi := mid else lo := mid + 1
      done;
      if !lo < nb then
        (* sign change between breakpoint lo-1 (or after) and lo:
           inside segment lo. *)
        raise (Found (crossing_in_segment !lo after));
      (* no breakpoint is negative: the only possible crossing is on the
         last (unbounded) segment, provided the gap is shrinking. *)
      let last = size t - 1 in
      if gap_slope t probe last < 0. then
        raise (Found (crossing_in_segment last after));
      None
    with Found r -> r
  end

let outer_interval t probe =
  if is_empty t then None
  else begin
    let m = size t in
    let slope i = gap_slope t probe i in
    if slope (m - 1) > 0. then begin
      (* gap increases to +infinity: outer region is a right ray *)
      if slope 0 > 0. then
        (* increasing everywhere: gap negative at -inf; left crossing is
           the single sign change *)
        let j =
          (* first segment index where gap at its right end (or +inf)
             is positive; find via binary search on breakpoints *)
          let lo = ref 0 and hi = ref (Array.length t.bps) in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if gap t probe t.bps.(mid) > Eps.eps then hi := mid
            else lo := mid + 1
          done;
          !lo
        in
        let l = t.lines.(j) in
        if Line2.parallel probe l then Some (neg_infinity, infinity)
        else Some (Line2.meet_x probe l, infinity)
      else
        (* decreasing then increasing is impossible for a concave gap;
           slope 0 <= 0 < slope (m-1) cannot happen *)
        Some (neg_infinity, infinity)
    end
    else if slope 0 < 0. then begin
      (* gap decreases from +infinity: outer region is a left ray *)
      let j =
        (* last segment whose right-end gap is still positive: find the
           first breakpoint where the gap is <= 0 *)
        let lo = ref 0 and hi = ref (Array.length t.bps) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if gap t probe t.bps.(mid) < -.Eps.eps then hi := mid
          else lo := mid + 1
        done;
        !lo
      in
      let l = t.lines.(min j (m - 1)) in
      if Line2.parallel probe l then Some (neg_infinity, infinity)
      else Some (neg_infinity, Line2.meet_x probe l)
    end
    else begin
      (* concave with nonnegative left slope and nonpositive right
         slope: bounded peak.  Find the peak breakpoint: the last
         segment with positive gap slope. *)
      let lo = ref 0 and hi = ref (m - 1) in
      (* find smallest i with slope i <= 0; peak is at bps.(i-1) if i>0 *)
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if slope mid <= 0. then hi := mid else lo := mid + 1
      done;
      let peak_x = if !lo = 0 then 0. else t.bps.(!lo - 1) in
      let peak_x =
        if Array.length t.bps = 0 then 0.
        else if !lo = 0 then t.bps.(0)
        else peak_x
      in
      if gap t probe peak_x <= Eps.eps then None
      else begin
        (* left crossing: gap goes negative -> positive moving right *)
        let left =
          let l = ref 0 and h = ref !lo in
          (* breakpoints [0, lo): find first with positive gap *)
          while !l < !h do
            let mid = (!l + !h) / 2 in
            if gap t probe t.bps.(mid) > Eps.eps then h := mid
            else l := mid + 1
          done;
          let seg = t.lines.(!l) in
          if Line2.parallel probe seg then neg_infinity
          else Line2.meet_x probe seg
        in
        let right =
          let nb = Array.length t.bps in
          let l = ref !lo and h = ref nb in
          (* breakpoints [lo, nb): find first with negative gap *)
          while !l < !h do
            let mid = (!l + !h) / 2 in
            if gap t probe t.bps.(mid) < -.Eps.eps then h := mid
            else l := mid + 1
          done;
          let seg = t.lines.(min !l (m - 1)) in
          if Line2.parallel probe seg then infinity
          else Line2.meet_x probe seg
        in
        if left >= right then None else Some (left, right)
      end
    end
  end
