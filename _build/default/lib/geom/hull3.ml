type facet = {
  a : int;
  b : int;
  c : int;
  normal : Point3.t;
  conflicts : int array;
}

(* Internal mutable facet record. *)
type fc = {
  fa : int;
  fb : int;
  fc_ : int;
  mutable alive : bool;
  mutable confl : int list;
}

type t = {
  all_facets : fc Vec.t;
  points : Point3.t array;
  inserted : bool array;
  sample_size : int;
}

(* Visibility epsilon: volumes below this are treated as coplanar.
   Inputs are assumed scaled to moderate coordinates (workload
   generators produce O(1)..O(10^3) ranges). *)
let vol_eps = 1e-9

let sees points q (f : fc) =
  Point3.orient3 points.(f.fa) points.(f.fb) points.(f.fc_) points.(q)
  > vol_eps

let facet_normal points (f : fc) =
  Point3.cross
    (Point3.sub points.(f.fb) points.(f.fa))
    (Point3.sub points.(f.fc_) points.(f.fa))

let build ~points ~order ~sample_size =
  let n = Array.length points in
  if sample_size < 4 || sample_size > n then
    invalid_arg "Hull3.build: need 4 <= sample_size <= n";
  let inserted = Array.make n false in
  (* --- initial tetrahedron: first four affinely independent sample
     points in permutation order ----------------------------------- *)
  let tetra =
    let found = ref [] in
    (try
       for idx = 0 to sample_size - 1 do
         let p = order.(idx) in
         let ok =
           match !found with
           | [] -> true
           | [ a ] -> Point3.equal points.(a) points.(p) |> not
           | [ a; b ] ->
               let cr =
                 Point3.cross
                   (Point3.sub points.(b) points.(a))
                   (Point3.sub points.(p) points.(a))
               in
               Point3.dot cr cr > vol_eps
           | [ a; b; c ] ->
               Float.abs (Point3.orient3 points.(a) points.(b) points.(c) points.(p))
               > vol_eps
           | _ -> false
         in
         if ok then begin
           found := !found @ [ p ];
           if List.length !found = 4 then raise Exit
         end
       done
     with Exit -> ());
    match !found with
    | [ a; b; c; d ] -> (a, b, c, d)
    | _ -> invalid_arg "Hull3.build: degenerate sample (coplanar points)"
  in
  let t0, t1, t2, t3 = tetra in
  List.iter (fun i -> inserted.(i) <- true) [ t0; t1; t2; t3 ];
  let interior =
    let avg f =
      (f points.(t0) +. f points.(t1) +. f points.(t2) +. f points.(t3)) /. 4.
    in
    Point3.make (avg Point3.x) (avg Point3.y) (avg Point3.z)
  in
  let all_facets : fc Vec.t = Vec.create () in
  (* directed edge (u,v) -> id of the alive facet containing it *)
  let edge_tbl : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  (* point id -> facet ids it has been in conflict with (may contain
     dead facets; filtered on use) *)
  let point_confl : int list array = Array.make n [] in
  let new_facet a b c candidates =
    (* orient so that the interior is on the inner side *)
    let a, b, c =
      let v =
        Point3.orient3 points.(a) points.(b) points.(c) interior
      in
      if v < 0. then (a, b, c) else (a, c, b)
    in
    let f = { fa = a; fb = b; fc_ = c; alive = true; confl = [] } in
    let id = Vec.push_idx all_facets f in
    Hashtbl.replace edge_tbl (a, b) id;
    Hashtbl.replace edge_tbl (b, c) id;
    Hashtbl.replace edge_tbl (c, a) id;
    let seen = Hashtbl.create 16 in
    List.iter
      (fun q ->
        if (not inserted.(q)) && not (Hashtbl.mem seen q) then begin
          Hashtbl.add seen q ();
          if sees points q f then begin
            f.confl <- q :: f.confl;
            point_confl.(q) <- id :: point_confl.(q)
          end
        end)
      candidates;
    id
  in
  (* initial four facets conflict-tested against every other point *)
  let everyone = List.init n Fun.id in
  ignore (new_facet t0 t1 t2 everyone);
  ignore (new_facet t0 t1 t3 everyone);
  ignore (new_facet t0 t2 t3 everyone);
  ignore (new_facet t1 t2 t3 everyone);
  (* --- incremental insertion ------------------------------------- *)
  for idx = 0 to sample_size - 1 do
    let p = order.(idx) in
    if not inserted.(p) then begin
      inserted.(p) <- true;
      let visible =
        List.filter
          (fun fid -> (Vec.get all_facets fid).alive)
          point_confl.(p)
      in
      (* p inside the current hull: not a vertex *)
      if visible <> [] then begin
        let visible_set = Hashtbl.create 16 in
        List.iter (fun fid -> Hashtbl.replace visible_set fid ()) visible;
        List.iter (fun fid -> (Vec.get all_facets fid).alive <- false) visible;
        (* find horizon edges and attach new facets *)
        List.iter
          (fun fid ->
            let f = Vec.get all_facets fid in
            let try_edge u v =
              match Hashtbl.find_opt edge_tbl (v, u) with
              | Some gid when not (Hashtbl.mem visible_set gid) ->
                  let g = Vec.get all_facets gid in
                  if g.alive then
                    (* (u,v) is a horizon edge: new facet (u,v,p) *)
                    ignore (new_facet u v p (f.confl @ g.confl))
              | _ -> ()
            in
            try_edge f.fa f.fb;
            try_edge f.fb f.fc_;
            try_edge f.fc_ f.fa)
          visible
      end
    end
  done;
  { all_facets; points; inserted; sample_size }

let export t (f : fc) =
  {
    a = f.fa;
    b = f.fb;
    c = f.fc_;
    normal = facet_normal t.points f;
    conflicts =
      Array.of_list (List.filter (fun q -> not t.inserted.(q)) f.confl);
  }

let facets t =
  let out = ref [] in
  Vec.iter (fun f -> if f.alive then out := export t f :: !out) t.all_facets;
  Array.of_list (List.rev !out)

let lower_facets t =
  Array.of_list
    (List.filter
       (fun f -> Point3.z f.normal < -.vol_eps)
       (Array.to_list (facets t)))

let vertex_ids t =
  let seen = Hashtbl.create 64 in
  Vec.iter
    (fun f ->
      if f.alive then
        List.iter
          (fun v -> Hashtbl.replace seen v ())
          [ f.fa; f.fb; f.fc_ ])
    t.all_facets;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) seen [])

let check ~points t =
  let ok = ref true in
  let sample =
    List.filter (fun i -> t.inserted.(i)) (List.init (Array.length points) Fun.id)
  in
  Vec.iter
    (fun f ->
      if f.alive then begin
        (* convexity: no sample point strictly outside *)
        List.iter (fun q -> if sees points q f then ok := false) sample;
        (* conflicts: exactly the uninserted points strictly outside *)
        let recorded = Hashtbl.create 16 in
        List.iter
          (fun q -> if not t.inserted.(q) then Hashtbl.replace recorded q ())
          f.confl;
        Array.iteri
          (fun q _ ->
            if not t.inserted.(q) then begin
              let visible = sees points q f in
              if visible <> Hashtbl.mem recorded q then ok := false
            end)
          points
      end)
    t.all_facets;
  !ok
