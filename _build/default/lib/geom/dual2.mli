(** The duality transform of §2.1 in the plane.

    The dual of the point (a, b) is the line y = -a x + b; the dual of
    the line y = s x + c is the point (s, c).  Lemma 2.1: a point p is
    above (below, on) a line l iff the dual line p* is above (below,
    on) the dual point l*.  In particular, reporting the points below a
    query line becomes reporting the dual lines below a query point —
    the form in which §3 solves the problem. *)

val line_of_point : Point2.t -> Line2.t
(** p ↦ p*. *)

val point_of_line : Line2.t -> Point2.t
(** l ↦ l*. *)

val point_of_dual_line : Line2.t -> Point2.t
(** Inverse of {!line_of_point}. *)

val line_of_dual_point : Point2.t -> Line2.t
(** Inverse of {!point_of_line}. *)
