(** Non-vertical planes in R³, in the form [z = a x + b y + c], with
    the §2.1 duality and the Theorem 4.3 lifting map. *)

type t

val make : a:float -> b:float -> c:float -> t
val a : t -> float
val b : t -> float
val c : t -> float

val eval : t -> float -> float -> float
(** Height of the plane above (x, y). *)

val equal : t -> t -> bool

val below_point : t -> Point3.t -> bool
(** The plane passes strictly below the point (within tolerance). *)

val above_point : t -> Point3.t -> bool

val dual_point : t -> Point3.t
(** The plane z = a x + b y + c ↦ the point (a, b, c). *)

val of_dual_point : Point3.t -> t

val dual_plane_of_point : Point3.t -> t
(** The point (p₁, p₂, p₃) ↦ the plane z = -p₁ x - p₂ y + p₃
    (Lemma 2.1 preserves above/below). *)

val restrict_x : t -> float -> Line2.t
(** Restriction of the plane to the vertical wall x = x₀, as a line in
    (y, z): used for the clip-boundary conflicts of §4.1. *)

val restrict_y : t -> float -> Line2.t

val lift : Point2.t -> t
(** The lifting map of Theorem 4.3: (a, b) ↦ z = a² + b² - 2a x - 2b y.
    The vertical order of lifted planes at (x, y) is the order of
    distance from (x, y). *)

val pp : Format.formatter -> t -> unit
