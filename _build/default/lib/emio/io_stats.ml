type t = {
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
}

let create () = { reads = 0; writes = 0; hits = 0 }

let reads t = t.reads
let writes t = t.writes
let total t = t.reads + t.writes
let cache_hits t = t.hits

let record_read t = t.reads <- t.reads + 1
let record_write t = t.writes <- t.writes + 1
let record_hit t = t.hits <- t.hits + 1

let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.hits <- 0

let checkpoint t = total t

let pp ppf t =
  Format.fprintf ppf "reads=%d writes=%d hits=%d" t.reads t.writes t.hits
