(** I/O accounting for the simulated external-memory machine.

    Every block transferred between "disk" (the {!Store}) and "memory"
    counts as one I/O, exactly as in the standard external-memory model
    used by the paper: a read transfers one block of B items into
    memory, a write transfers one block out.  Cache hits (see
    {!Store.create}) are counted separately and are free. *)

type t

val create : unit -> t

val reads : t -> int
(** Number of block reads charged so far. *)

val writes : t -> int
(** Number of block writes charged so far. *)

val total : t -> int
(** [reads + writes]. *)

val cache_hits : t -> int
(** Block accesses served by the LRU cache (not charged). *)

val record_read : t -> unit
val record_write : t -> unit
val record_hit : t -> unit

val reset : t -> unit
(** Zero all counters.  Used between the build phase and the query
    phase of an experiment. *)

val checkpoint : t -> int
(** Snapshot of [total t]; [total t - checkpoint] measures a span. *)

val pp : Format.formatter -> t -> unit
