lib/emio/store.ml: Array Io_stats Lru
