lib/emio/lru.mli:
