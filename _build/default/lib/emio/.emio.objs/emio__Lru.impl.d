lib/emio/lru.ml: Hashtbl
