lib/emio/ext_sort.ml: Array List Run Store
