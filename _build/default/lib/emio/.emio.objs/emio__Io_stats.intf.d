lib/emio/io_stats.mli: Format
