lib/emio/store.mli: Io_stats
