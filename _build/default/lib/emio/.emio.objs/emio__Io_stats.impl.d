lib/emio/io_stats.ml: Format
