lib/emio/run.mli: Store
