lib/emio/run.ml: Array List Store
