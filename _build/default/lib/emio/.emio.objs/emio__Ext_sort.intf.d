lib/emio/ext_sort.mli: Run Store
