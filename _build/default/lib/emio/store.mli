(** A simulated disk holding blocks of ['a].

    Each block stores at most [block_size] items.  Reading or writing a
    block charges one I/O to the attached {!Io_stats}, unless the block
    is resident in the store's LRU cache (see [cache_blocks]), in which
    case the access is a free cache hit — this models a main memory of
    [cache_blocks * block_size] items.

    All of the paper's structures are laid out in stores like this one,
    so the I/O counts our benchmarks report are exactly the quantity
    Table 1 bounds. *)

type 'a t

val create :
  stats:Io_stats.t -> block_size:int -> ?cache_blocks:int -> unit -> 'a t
(** [cache_blocks] defaults to [0] (cold cache: every access charged). *)

val block_size : 'a t -> int
val stats : 'a t -> Io_stats.t

val alloc : 'a t -> 'a array -> int
(** Store a fresh block (length ≤ [block_size]); charges one write and
    returns the new block id. *)

val read : 'a t -> int -> 'a array
(** Fetch a block; charges one read on a cache miss.  The returned
    array is the store's own copy and must not be mutated. *)

val write : 'a t -> int -> 'a array -> unit
(** Overwrite an existing block; charges one write. *)

val blocks_used : 'a t -> int
(** Number of allocated blocks: the structure's space in disk blocks. *)

val drop_cache : 'a t -> unit
(** Empty the LRU cache (e.g. between build and query phases). *)
