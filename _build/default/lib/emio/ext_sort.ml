(* Classic two-phase external merge sort.  Phase 1 forms sorted runs of
   M items; phase 2 merges k = M/B - 1 runs at a time until one run
   remains.  All block traffic goes through Run/Store and is charged. *)

type 'a cursor = {
  run : 'a Run.t;
  mutable block : 'a array;
  mutable block_idx : int; (* index of the block currently loaded *)
  mutable item_idx : int; (* next item within [block] *)
}

let cursor_of_run run =
  if Run.length run = 0 then None
  else Some { run; block = Run.read_block run 0; block_idx = 0; item_idx = 0 }

let cursor_peek c = c.block.(c.item_idx)

(* Advance; returns false when the cursor is exhausted. *)
let cursor_next c =
  c.item_idx <- c.item_idx + 1;
  if c.item_idx < Array.length c.block then true
  else if c.block_idx + 1 < Run.block_count c.run then begin
    c.block_idx <- c.block_idx + 1;
    c.block <- Run.read_block c.run c.block_idx;
    c.item_idx <- 0;
    true
  end
  else false

(* Minimal binary min-heap over cursors keyed by their head item. *)
module Heap = struct
  type 'a t = {
    mutable data : 'a cursor array;
    mutable size : int;
    cmp : 'a -> 'a -> int;
  }

  let create cmp capacity dummy =
    { data = Array.make (max 1 capacity) dummy; size = 0; cmp }

  let less h a b = h.cmp (cursor_peek a) (cursor_peek b) < 0

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less h h.data.(i) h.data.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && less h h.data.(l) h.data.(!smallest) then smallest := l;
    if r < h.size && less h h.data.(r) h.data.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let push h c =
    h.data.(h.size) <- c;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let pop_min h =
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    sift_down h 0;
    top

  let is_empty h = h.size = 0
end

let form_initial_runs ~cmp ~memory_items store input =
  let n_blocks = Run.block_count input in
  let runs = ref [] in
  let buffer = ref [] in
  let buffered = ref 0 in
  let flush () =
    if !buffered > 0 then begin
      let items = Array.concat (List.rev !buffer) in
      Array.sort cmp items;
      runs := Run.of_array store items :: !runs;
      buffer := [];
      buffered := 0
    end
  in
  for i = 0 to n_blocks - 1 do
    let block = Run.read_block input i in
    buffer := block :: !buffer;
    buffered := !buffered + Array.length block;
    if !buffered >= memory_items then flush ()
  done;
  flush ();
  List.rev !runs

let merge ~cmp store runs =
  let cursors = List.filter_map cursor_of_run runs in
  match cursors with
  | [] -> Run.empty store
  | first :: _ ->
      let heap = Heap.create cmp (List.length cursors) first in
      List.iter (Heap.push heap) cursors;
      let b = Store.block_size store in
      let total = List.fold_left (fun acc r -> acc + Run.length r) 0 runs in
      let out_blocks = ref [] in
      let out = Array.make (min b total) (cursor_peek first) in
      let out_len = ref 0 in
      let flush () =
        if !out_len > 0 then begin
          out_blocks := Store.alloc store (Array.sub out 0 !out_len) :: !out_blocks;
          out_len := 0
        end
      in
      while not (Heap.is_empty heap) do
        let c = Heap.pop_min heap in
        out.(!out_len) <- cursor_peek c;
        incr out_len;
        if !out_len = b then flush ();
        if cursor_next c then Heap.push heap c
      done;
      flush ();
      (* Assemble the output run from the blocks we just wrote. *)
      let ids = Array.of_list (List.rev !out_blocks) in
      Run.of_block_ids store ids total

let sort ~cmp ~memory_items store input =
  let b = Store.block_size store in
  if memory_items < 2 * b then
    invalid_arg "Ext_sort.sort: memory must hold at least two blocks";
  let fan_in = max 2 ((memory_items / b) - 1) in
  let initial = form_initial_runs ~cmp ~memory_items store input in
  let rec merge_level = function
    | [] -> Run.empty store
    | [ single ] -> single
    | runs ->
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | r :: rest -> take (k - 1) (r :: acc) rest
        in
        let rec pass acc = function
          | [] -> List.rev acc
          | runs ->
              let group, rest = take fan_in [] runs in
              pass (merge ~cmp store group :: acc) rest
        in
        merge_level (pass [] runs)
  in
  merge_level initial
