(** External merge sort: the standard O(n log_{M/B} n)-I/O sort used to
    bulk-load the B-tree and to prepare sorted inputs during
    preprocessing.  [memory_items] models M, the number of items that
    fit in main memory at once. *)

val sort :
  cmp:('a -> 'a -> int) -> memory_items:int -> 'a Store.t -> 'a Run.t -> 'a Run.t
(** Returns a new sorted run in the same store.  Raises [Invalid_argument]
    if [memory_items < 2 * block size] (need at least two blocks of
    memory to merge). *)
