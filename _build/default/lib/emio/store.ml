type 'a t = {
  stats : Io_stats.t;
  block_size : int;
  mutable blocks : 'a array array;
  mutable used : int;
  cache : Lru.t;
}

let create ~stats ~block_size ?(cache_blocks = 0) () =
  if block_size <= 0 then invalid_arg "Store.create: block_size must be > 0";
  {
    stats;
    block_size;
    blocks = Array.make 16 [||];
    used = 0;
    cache = Lru.create ~capacity:cache_blocks;
  }

let block_size t = t.block_size
let stats t = t.stats
let blocks_used t = t.used

let grow t =
  let capacity = Array.length t.blocks in
  if t.used >= capacity then begin
    let bigger = Array.make (2 * capacity) [||] in
    Array.blit t.blocks 0 bigger 0 capacity;
    t.blocks <- bigger
  end

let check_block t data =
  if Array.length data > t.block_size then
    invalid_arg "Store: block larger than block_size"

let alloc t data =
  check_block t data;
  grow t;
  let id = t.used in
  t.blocks.(id) <- data;
  t.used <- t.used + 1;
  if Lru.touch t.cache id then Io_stats.record_hit t.stats
  else Io_stats.record_write t.stats;
  id

let read t id =
  if id < 0 || id >= t.used then invalid_arg "Store.read: bad block id";
  if Lru.touch t.cache id then Io_stats.record_hit t.stats
  else Io_stats.record_read t.stats;
  t.blocks.(id)

let write t id data =
  if id < 0 || id >= t.used then invalid_arg "Store.write: bad block id";
  check_block t data;
  t.blocks.(id) <- data;
  if Lru.touch t.cache id then Io_stats.record_hit t.stats
  else Io_stats.record_write t.stats

let drop_cache t = Lru.clear t.cache
