open Geom

type t = {
  lp : Lowest_planes.t;
  points : Point2.t array;
  beta : int;
}

let length t = Array.length t.points
let space_blocks t = Lowest_planes.space_blocks t.lp

let log_base b x = log x /. log b

let compute_beta ~block_size n_points =
  let n = float_of_int (max 1 ((n_points + block_size - 1) / block_size)) in
  let b = float_of_int block_size in
  max 1 (int_of_float (ceil (b *. max 1. (log_base b n))))

let build ~stats ~block_size ?(cache_blocks = 0) ?(seed = 0) ?(copies = 3)
    ?clip points =
  let planes = Array.map Plane3.lift points in
  let lp =
    Lowest_planes.build ~stats ~block_size ~cache_blocks ~seed ~copies ?clip
      planes
  in
  { lp; points; beta = compute_beta ~block_size (Array.length points) }

(* Same doubling protocol as §4.2: fetch the k lowest lifted planes
   along the vertical line at the center until one of them exceeds the
   lifted threshold r^2 - |c|^2. *)
let query_ids t ~center ~radius =
  let n = Array.length t.points in
  if n = 0 then []
  else begin
    let x = Point2.x center and y = Point2.y center in
    let threshold = (radius *. radius) -. (x *. x) -. (y *. y) in
    let rec go k =
      let k = min k n in
      let lowest = Lowest_planes.k_lowest t.lp ~x ~y ~k in
      let inside =
        List.filter (fun (_, h) -> h <= threshold +. Eps.eps) lowest
      in
      if List.length inside < List.length lowest || k >= n then
        List.map fst inside
      else go (2 * k)
    in
    go t.beta
  end

let query t ~center ~radius =
  List.map (fun id -> t.points.(id)) (query_ids t ~center ~radius)

let query_count t ~center ~radius = List.length (query_ids t ~center ~radius)
