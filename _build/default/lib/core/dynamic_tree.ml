open Partition

type bucket = {
  tree : Partition_tree.t;
  handles : int array; (* tree point index -> handle *)
  pts : Cells.point array;
}

type t = {
  stats : Emio.Io_stats.t;
  block_size : int;
  cache_blocks : int;
  dim : int;
  mutable slots : bucket option array; (* slot i holds <= 2^i points *)
  live : (int, Cells.point) Hashtbl.t;
  mutable next_handle : int;
  mutable dead : int;
  mutable rebuild_count : int;
}

let create ~stats ~block_size ?(cache_blocks = 0) ~dim () =
  {
    stats;
    block_size;
    cache_blocks;
    dim;
    slots = Array.make 4 None;
    live = Hashtbl.create 64;
    next_handle = 0;
    dead = 0;
    rebuild_count = 0;
  }

let length t = Hashtbl.length t.live

let buckets t =
  Array.fold_left
    (fun acc -> function Some _ -> acc + 1 | None -> acc)
    0 t.slots

let rebuilds t = t.rebuild_count

let space_blocks t =
  Array.fold_left
    (fun acc -> function
      | Some b -> acc + Partition_tree.space_blocks b.tree
      | None -> acc)
    0 t.slots

(* live (handle, point) pairs of a bucket *)
let live_contents t b =
  let out = ref [] in
  Array.iteri
    (fun i h -> if Hashtbl.mem t.live h then out := (h, b.pts.(i)) :: !out)
    b.handles;
  !out

let build_bucket t contents =
  t.rebuild_count <- t.rebuild_count + 1;
  let arr = Array.of_list contents in
  let pts = Array.map snd arr in
  let handles = Array.map fst arr in
  let tree =
    Partition_tree.build ~stats:t.stats ~block_size:t.block_size
      ~cache_blocks:t.cache_blocks ~dim:t.dim pts
  in
  { tree; handles; pts }

let ensure_slot t i =
  if i >= Array.length t.slots then begin
    let bigger = Array.make (2 * (i + 1)) None in
    Array.blit t.slots 0 bigger 0 (Array.length t.slots);
    t.slots <- bigger
  end

(* place [contents] (|contents| <= 2^i) into slot i, assumed free *)
let place t i contents =
  ensure_slot t i;
  assert (t.slots.(i) = None);
  t.slots.(i) <- Some (build_bucket t contents)

let insert t p =
  if Array.length p <> t.dim then
    invalid_arg "Dynamic_tree.insert: wrong point dimension";
  let handle = t.next_handle in
  t.next_handle <- handle + 1;
  Hashtbl.replace t.live handle (Array.copy p);
  (* binary-counter carry: gather occupied low slots until a free one *)
  let carry = ref [ (handle, Array.copy p) ] in
  let i = ref 0 in
  let continue_carry = ref true in
  while !continue_carry do
    ensure_slot t !i;
    match t.slots.(!i) with
    | None -> continue_carry := false
    | Some b ->
        carry := List.rev_append (live_contents t b) !carry;
        t.slots.(!i) <- None;
        incr i
  done;
  place t !i !carry;
  handle

let global_rebuild t =
  let all =
    Array.fold_left
      (fun acc -> function
        | None -> acc
        | Some b -> List.rev_append (live_contents t b) acc)
      [] t.slots
  in
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.dead <- 0;
  let n = List.length all in
  if n > 0 then begin
    let slot =
      let rec go i = if 1 lsl i >= n then i else go (i + 1) in
      go 0
    in
    place t slot all
  end

let delete t handle =
  if not (Hashtbl.mem t.live handle) then false
  else begin
    Hashtbl.remove t.live handle;
    t.dead <- t.dead + 1;
    (* once half the stored points are tombstones, compact *)
    if t.dead > max 8 (Hashtbl.length t.live) then global_rebuild t;
    true
  end

let query_simplex t constrs =
  Array.fold_left
    (fun acc -> function
      | None -> acc
      | Some b ->
          List.fold_left
            (fun acc i ->
              let h = b.handles.(i) in
              if Hashtbl.mem t.live h then (h, b.pts.(i)) :: acc else acc)
            acc
            (Partition_tree.query_simplex b.tree constrs))
    [] t.slots

let query_halfspace t ~a0 ~a =
  query_simplex t [ Cells.constr_of_halfspace ~dim:t.dim ~a0 ~a ]
