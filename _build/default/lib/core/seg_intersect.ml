open Geom
open Partition

(* A stored segment: endpoints ordered lexicographically, plus the dual
   point of its supporting line. *)
type seg = {
  sid : int;
  p1 : Point2.t;
  p2 : Point2.t;
  dual : Cells.point; (* (slope, icept) of the supporting line *)
}

(* Level 3: a partition tree over the dual points of supporting lines,
   answering double-wedge (two-constraint simplex) queries.  Reported
   candidates are verified against the exact intersection predicate
   (collinear/touching cases) using the in-memory segment table. *)
type level3 = { tree : Partition_tree.t; segs3 : seg array }

(* Levels 1 and 2 share one node shape: a kd split of segments by an
   endpoint, where every node carries the next level's structure over
   its whole canonical subset. *)
type node = {
  cell : Cells.cell;
  next_level : next;
  children : node array; (* empty at leaves *)
  cells_block : int; (* children's cells, on disk: descents pay for it *)
  leaf : seg Emio.Run.t option; (* segments, at leaves only *)
}

and next = L2 of node | L3 of level3 | L_none (* leaves: the run itself answers *)

type t = {
  root : node option; (* level-1 root (splitting by p1) *)
  verticals : seg Emio.Run.t;
  length : int;
  store : seg Emio.Store.t;
  cell_store : Cells.cell Emio.Store.t;
  block_size : int;
}

let length t = t.length

let rec node_space n =
  (match n.leaf with Some run -> Emio.Run.block_count run | None -> 0)
  + (match n.next_level with
    | L2 m -> node_space m
    | L3 l3 -> Partition_tree.space_blocks l3.tree
    | L_none -> 0)
  + Array.fold_left (fun acc c -> acc + node_space c) 0 n.children
  + if Array.length n.children > 0 then 1 else 0

let space_blocks t =
  Emio.Run.block_count t.verticals
  + match t.root with None -> 0 | Some r -> node_space r

let coords (p : Point2.t) = [| Point2.x p; Point2.y p |]

let build_level3 ~stats ~block_size ~cache_blocks segs =
  let duals = Array.map (fun s -> s.dual) segs in
  {
    tree = Partition_tree.build ~stats ~block_size ~cache_blocks ~dim:2 duals;
    segs3 = segs;
  }

(* Build a level (1 or 2): kd-split on the selected endpoint; every
   node carries the next level over its subtree. *)
let rec build_level ~stats ~block_size ~cache_blocks ~store ~cell_store ~level
    segs =
  let key = if level = 1 then fun s -> s.p1 else fun s -> s.p2 in
  let next_of subset =
    if level = 1 then
      L2
        (build_level ~stats ~block_size ~cache_blocks ~store ~cell_store
           ~level:2 subset)
    else L3 (build_level3 ~stats ~block_size ~cache_blocks subset)
  in
  let points = Array.map (fun s -> coords (key s)) segs in
  let nv = Array.length segs in
  if nv <= block_size then
    (* a leaf answers by scanning its one block: no secondary levels *)
    {
      cell = Cells.bounding_box points;
      next_level = L_none;
      children = [||];
      cells_block = -1;
      leaf = Some (Emio.Run.of_array store segs);
    }
  else begin
    let n_blocks = (nv + block_size - 1) / block_size in
    let r = max 2 (min block_size (2 * n_blocks)) in
    let parts = Partitioner.kd ~points ~r in
    let children =
      Array.map
        (fun (cell, idxs) ->
          let subset = Array.map (fun i -> segs.(i)) idxs in
          let child =
            build_level ~stats ~block_size ~cache_blocks ~store ~cell_store
              ~level subset
          in
          { child with cell })
        parts
    in
    let cells_block =
      Emio.Store.alloc cell_store (Array.map (fun c -> c.cell) children)
    in
    {
      cell = Cells.bounding_box points;
      next_level = next_of segs;
      children;
      cells_block;
      leaf = None;
    }
  end

let slope_limit = 1e7

let build ~stats ~block_size ?(cache_blocks = 0) segments =
  let store = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let cell_store = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let verticals = ref [] and regular = ref [] in
  Array.iteri
    (fun sid (a, b) ->
      let a, b = if Point2.compare a b <= 0 then (a, b) else (b, a) in
      let dx = Point2.x b -. Point2.x a in
      if Float.abs dx *. slope_limit <= Float.abs (Point2.y b -. Point2.y a)
      then
        verticals :=
          { sid; p1 = a; p2 = b; dual = [| 0.; 0. |] } :: !verticals
      else begin
        let slope = (Point2.y b -. Point2.y a) /. dx in
        let icept = Point2.y a -. (slope *. Point2.x a) in
        regular := { sid; p1 = a; p2 = b; dual = [| slope; icept |] } :: !regular
      end)
    segments;
  let regular = Array.of_list (List.rev !regular) in
  let root =
    if Array.length regular = 0 then None
    else
      Some
        (build_level ~stats ~block_size ~cache_blocks ~store ~cell_store
           ~level:1 regular)
  in
  {
    root;
    verticals = Emio.Run.of_list store (List.rev !verticals);
    length = Array.length segments;
    store;
    cell_store;
    block_size;
  }

(* --- query ------------------------------------------------------------ *)

(* side of point p relative to the segment (a, b): sign of the cross
   product, with tolerance *)
let side a b p = Point2.orient a b p

let segments_intersect (a, b) (c, d) =
  let o1 = side a b c and o2 = side a b d in
  let o3 = side c d a and o4 = side c d b in
  if o1 = 0 && o2 = 0 && o3 = 0 && o4 = 0 then begin
    (* all four points collinear: intersect iff the 1-D spans overlap *)
    let overlap f =
      let lo1 = min (f a) (f b) and hi1 = max (f a) (f b) in
      let lo2 = min (f c) (f d) and hi2 = max (f c) (f d) in
      lo1 <= hi2 +. Eps.eps && lo2 <= hi1 +. Eps.eps
    in
    overlap Point2.x && overlap Point2.y
  end
  else o1 * o2 <= 0 && o3 * o4 <= 0

(* halfplane constraints on an endpoint being on the closed side of the
   query line y = s x + c *)
let below_line ~s ~c = { Cells.w = [| -.s; 1. |]; b = -.c }
let above_line ~s ~c = { Cells.w = [| s; -1. |]; b = c }

(* wedge constraints on the dual (slope, icept) of a stored line:
   [point_above q] selects lines strictly-or-touching below q *)
let point_above (q : Point2.t) =
  (* q above line(s): q.y >= slope * q.x + icept *)
  { Cells.w = [| Point2.x q; 1. |]; b = -.Point2.y q }

let point_below (q : Point2.t) =
  { Cells.w = [| -.Point2.x q; -1. |]; b = Point2.y q }

let query t qa qb =
  let qa, qb = if Point2.compare qa qb <= 0 then (qa, qb) else (qb, qa) in
  let out = Hashtbl.create 32 in
  let report sid = Hashtbl.replace out sid () in
  let brute run =
    Emio.Run.iter
      (fun s -> if segments_intersect (s.p1, s.p2) (qa, qb) then report s.sid)
      run
  in
  brute t.verticals;
  let dx = Point2.x qb -. Point2.x qa in
  if
    Float.abs dx *. slope_limit <= Float.abs (Point2.y qb -. Point2.y qa)
    || t.root = None
  then begin
    (* vertical query: exact scan fallback *)
    let rec scan_all n =
      (match n.leaf with Some run -> brute run | None -> ());
      Array.iter scan_all n.children
    in
    Option.iter scan_all t.root
  end
  else begin
    let s = (Point2.y qb -. Point2.y qa) /. dx in
    let c = Point2.y qa -. (s *. Point2.x qa) in
    (* level 3: the double wedge, as two 2-constraint queries *)
    let query_l3 (l3 : level3) =
      List.iter
        (fun wedge ->
          List.iter
            (fun i ->
              let sg = l3.segs3.(i) in
              if segments_intersect (sg.p1, sg.p2) (qa, qb) then
                report sg.sid)
            (Partition_tree.query_simplex l3.tree wedge))
        [ [ point_above qa; point_below qb ]; [ point_below qa; point_above qb ] ]
    in
    (* levels 1 and 2: canonical decomposition against a halfplane;
       reading a node's child-cell directory costs one I/O *)
    let rec descend node constr k_inside k_leaf =
      match node.leaf with
      | Some run -> k_leaf run
      | None ->
          let cells = Emio.Store.read t.cell_store node.cells_block in
          Array.iteri
            (fun i cell ->
              let child = node.children.(i) in
              match Cells.classify cell constr with
              | Cells.Inside -> k_inside child
              | Cells.Outside -> ()
              | Cells.Crossing -> descend child constr k_inside k_leaf)
            cells
    in
    let leaf_check run =
      Emio.Run.iter
        (fun sg -> if segments_intersect (sg.p1, sg.p2) (qa, qb) then report sg.sid)
        run
    in
    let query_l2 node constr2 =
      descend node constr2
        (fun child ->
          match (child.next_level, child.leaf) with
          | L3 l3, _ -> query_l3 l3
          | L_none, Some run -> leaf_check run
          | _ -> assert false)
        leaf_check
    in
    let run_case c1 c2 =
      match t.root with
      | None -> ()
      | Some root ->
          descend root c1
            (fun child ->
              match (child.next_level, child.leaf) with
              | L2 l2root, _ -> query_l2 l2root c2
              | L_none, Some run -> leaf_check run
              | _ -> assert false)
            leaf_check
    in
    (* p1 below & p2 above, and the mirrored case *)
    run_case (below_line ~s ~c) (above_line ~s ~c);
    run_case (above_line ~s ~c) (below_line ~s ~c)
  end;
  List.sort compare (Hashtbl.fold (fun sid () acc -> sid :: acc) out [])
