open Geom

type t = {
  lp : Lowest_planes.t;
  points : Point3.t array; (* id -> original point, for reporting *)
  beta : int;
}

let length t = Array.length t.points
let space_blocks t = Lowest_planes.space_blocks t.lp
let fallbacks t = Lowest_planes.fallbacks t.lp

let log_base b x = log x /. log b

let compute_beta ~block_size n_points =
  let n = float_of_int (max 1 ((n_points + block_size - 1) / block_size)) in
  let b = float_of_int block_size in
  max 1 (int_of_float (ceil (b *. max 1. (log_base b n))))

let build ~stats ~block_size ?(cache_blocks = 0) ?(seed = 0) ?(copies = 3)
    ?clip points =
  let planes = Array.map Plane3.dual_plane_of_point points in
  let lp =
    Lowest_planes.build ~stats ~block_size ~cache_blocks ~seed ~copies ?clip
      planes
  in
  { lp; points; beta = compute_beta ~block_size (Array.length points) }

(* §4.2: probe k = beta, 2 beta, 4 beta, ... until one of the k lowest
   dual planes along the vertical line through the dual query point
   lies strictly above it. *)
let query_ids t ~a ~b ~c =
  let n = Array.length t.points in
  if n = 0 then []
  else begin
    let rec go k =
      let k = min k n in
      let lowest = Lowest_planes.k_lowest t.lp ~x:a ~y:b ~k in
      let below =
        List.filter (fun (_, h) -> h <= c +. Eps.eps) lowest
      in
      if List.length below < List.length lowest || k >= n then
        List.map fst below
      else go (2 * k)
    in
    go t.beta
  end

let query t ~a ~b ~c =
  List.map (fun id -> t.points.(id)) (query_ids t ~a ~b ~c)

let query_count t ~a ~b ~c = List.length (query_ids t ~a ~b ~c)
