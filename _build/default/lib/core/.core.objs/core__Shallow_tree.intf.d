lib/core/shallow_tree.mli: Emio Partition
