lib/core/tradeoff3d.mli: Emio Geom
