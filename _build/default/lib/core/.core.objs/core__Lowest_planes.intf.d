lib/core/lowest_planes.mli: Emio Geom
