lib/core/disk_range.mli: Emio Geom
