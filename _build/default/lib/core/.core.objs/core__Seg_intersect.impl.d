lib/core/seg_intersect.ml: Array Cells Emio Eps Float Geom Hashtbl List Option Partition Partition_tree Partitioner Point2
