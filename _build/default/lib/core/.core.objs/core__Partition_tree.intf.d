lib/core/partition_tree.mli: Emio Partition
