lib/core/halfspace2d.ml: Arrangement Array Dual2 Emio Eps Geom Hashtbl Line2 List Point2 Random Xbtree
