lib/core/knn.ml: Array Geom List Lowest_planes Plane3 Point2
