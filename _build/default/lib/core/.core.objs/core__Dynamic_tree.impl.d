lib/core/dynamic_tree.ml: Array Cells Emio Hashtbl List Partition Partition_tree
