lib/core/seg_intersect.mli: Emio Geom
