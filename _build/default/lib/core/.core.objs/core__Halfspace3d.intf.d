lib/core/halfspace3d.mli: Emio Geom
