lib/core/halfspace2d.mli: Emio Geom
