lib/core/cert_tree.ml: Array Cells Emio Eps Fun Geom Hashtbl Hull3 List Option Partition Partitioner Point3
