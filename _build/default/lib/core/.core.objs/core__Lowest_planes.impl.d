lib/core/lowest_planes.ml: Array Emio Envelope3 Float Fun Geom List Plane3 Pointloc Random
