lib/core/halfspace3d.ml: Array Eps Geom List Lowest_planes Plane3 Point3
