lib/core/partition_tree.ml: Array Cells Emio List Partition Partitioner
