lib/core/shallow_tree.ml: Array Cells Emio Hashtbl List Partition Partition_tree Partitioner
