lib/core/dynamic_tree.mli: Emio Partition
