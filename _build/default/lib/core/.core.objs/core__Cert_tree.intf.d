lib/core/cert_tree.mli: Emio Geom
