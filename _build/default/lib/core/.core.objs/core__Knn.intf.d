lib/core/knn.mli: Emio Geom
