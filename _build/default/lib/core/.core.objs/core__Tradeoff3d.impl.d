lib/core/tradeoff3d.ml: Array Cells Emio Float Geom Halfspace3d List Partition Partitioner Point3 Vec
