lib/core/disk_range.ml: Array Eps Geom List Lowest_planes Plane3 Point2
