(** A dynamized partition tree: §5 remark (iii) / §7 open problem 1.

    The paper notes that the standard partial-reconstruction method
    [Mehlhorn, ref. 39] dynamizes the §5 structure at O((log₂ n) log_B n)
    amortized I/Os per update.  Halfspace reporting is a decomposable
    query, so we keep the classic logarithmic method: O(log N) static
    partition trees of geometrically growing sizes, rebuilt by merging
    on insertion; deletions tombstone points and trigger a global
    rebuild once half the structure is dead.  Queries ask every bucket
    and filter tombstones, adding an O(log₂ n) factor to the query
    bound, exactly as the remark trades. *)

type t

val create :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  dim:int ->
  unit ->
  t

val insert : t -> Partition.Cells.point -> int
(** Returns a fresh handle for the point (usable with {!delete}).
    Amortized O((log₂ n) · n/B-rebuild) charged to the store. *)

val delete : t -> int -> bool
(** [false] if the handle is unknown or already deleted. *)

val query_halfspace : t -> a0:float -> a:float array -> (int * Partition.Cells.point) list
(** Live points satisfying [x_d <= a0 + Σ a_i x_i], as
    (handle, point). *)

val query_simplex :
  t -> Partition.Cells.constr list -> (int * Partition.Cells.point) list

val length : t -> int
(** Number of live points. *)

val buckets : t -> int
(** Number of static buckets currently alive (≤ log₂ N + 1). *)

val space_blocks : t -> int

val rebuilds : t -> int
(** Total bucket (re)builds so far — the amortized-cost ledger the
    tests check. *)
