(** Segment intersection searching: §7 open problem 2.

    Preprocess N segments so that all segments intersecting a query
    segment can be reported.  Two (non-collinear, non-vertical)
    segments s and q intersect iff

    - the endpoints of s lie on opposite closed sides of line(q), and
    - the endpoints of q lie on opposite closed sides of line(s);

    the first condition is two halfplane conditions on s's endpoints
    and the second is a double-wedge condition on the dual point of
    line(s) (§2.1).  We answer the conjunction with a three-level
    partition tree: level 1 partitions first endpoints, level 2 second
    endpoints, level 3 the dual points of the supporting lines, where
    every node of a level carries the next level's structure over its
    canonical subset — the classical multi-level partition tree the
    paper's machinery enables.  Space O(n log² n) blocks; queries
    O(n^{1/2+ε} polylog + t) I/Os.

    Vertical segments are stored aside and scanned per query; vertical
    query segments fall back to a scan (their supporting line has no
    dual).  All side tests are closed with the {!Geom.Eps} tolerance,
    so touching segments count as intersecting. *)

type t

val build :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  (Geom.Point2.t * Geom.Point2.t) array ->
  t

val query : t -> Geom.Point2.t -> Geom.Point2.t -> int list
(** Indices (into the build array) of the segments intersecting the
    closed query segment. *)

val length : t -> int
val space_blocks : t -> int
