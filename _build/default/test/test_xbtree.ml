(* Tests for the external B+-tree: correctness against a sorted-array
   oracle, plus the O(log_B n) / O(log_B n + t) I/O bounds. *)

let build ?(block_size = 4) keys =
  let stats = Emio.Io_stats.create () in
  let entries = Array.map (fun k -> (k, k * 10)) keys in
  (Xbtree.Btree.bulk_load ~stats ~block_size ~cmp:compare entries, stats)

let sorted n = Array.init n (fun i -> i * 2) (* even keys 0,2,...,2n-2 *)

let test_find () =
  let t, _ = build (sorted 100) in
  Alcotest.(check (option int)) "hit" (Some 420) (Xbtree.Btree.find t 42);
  Alcotest.(check (option int)) "miss odd" None (Xbtree.Btree.find t 43);
  Alcotest.(check (option int)) "below range" None (Xbtree.Btree.find t (-5));
  Alcotest.(check (option int)) "above range" None (Xbtree.Btree.find t 500);
  Alcotest.(check (option int)) "first" (Some 0) (Xbtree.Btree.find t 0);
  Alcotest.(check (option int)) "last" (Some 1980) (Xbtree.Btree.find t 198)

let test_predecessor () =
  let t, _ = build (sorted 100) in
  let pred x = Option.map fst (Xbtree.Btree.predecessor t x) in
  Alcotest.(check (option int)) "exact" (Some 42) (pred 42);
  Alcotest.(check (option int)) "between" (Some 42) (pred 43);
  Alcotest.(check (option int)) "below all" None (pred (-1));
  Alcotest.(check (option int)) "above all" (Some 198) (pred 1000)

let test_range () =
  let t, _ = build (sorted 50) in
  let got = List.map fst (Xbtree.Btree.range t ~lo:10 ~hi:20) in
  Alcotest.(check (list int)) "inclusive range" [ 10; 12; 14; 16; 18; 20 ] got;
  Alcotest.(check (list int)) "empty range" []
    (List.map fst (Xbtree.Btree.range t ~lo:21 ~hi:21));
  Alcotest.(check (list int)) "inverted range" []
    (List.map fst (Xbtree.Btree.range t ~lo:20 ~hi:10))

let test_duplicates () =
  let keys = Array.make 20 7 in
  let t, _ = build ~block_size:3 keys in
  Alcotest.(check int) "all duplicates reported" 20
    (List.length (Xbtree.Btree.range t ~lo:7 ~hi:7));
  Alcotest.(check (option int)) "find dup" (Some 70) (Xbtree.Btree.find t 7)

let test_empty_and_tiny () =
  let t, _ = build [||] in
  Alcotest.(check (option int)) "empty find" None (Xbtree.Btree.find t 1);
  Alcotest.(check bool) "empty pred" true (Xbtree.Btree.predecessor t 1 = None);
  Alcotest.(check (list int)) "empty range" []
    (List.map fst (Xbtree.Btree.range t ~lo:0 ~hi:9));
  let t1, _ = build [| 5 |] in
  Alcotest.(check (option int)) "singleton" (Some 50) (Xbtree.Btree.find t1 5);
  Alcotest.(check int) "height 1" 1 (Xbtree.Btree.height t1)

let test_rejects_unsorted () =
  let stats = Emio.Io_stats.create () in
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Btree.bulk_load: entries not sorted") (fun () ->
      ignore
        (Xbtree.Btree.bulk_load ~stats ~block_size:4 ~cmp:compare
           [| (2, ()); (1, ()) |]))

let test_io_bounds () =
  (* B = 16, n = 4096 entries => 256 leaves, height 3.  A search must
     touch exactly [height] blocks. *)
  let t, stats = build ~block_size:16 (sorted 4096) in
  Alcotest.(check int) "height" 3 (Xbtree.Btree.height t);
  Emio.Io_stats.reset stats;
  ignore (Xbtree.Btree.find t 1234);
  Alcotest.(check int) "search costs height I/Os" 3
    (Emio.Io_stats.reads stats);
  (* range of T entries costs height + ceil(T/B) +- 1 *)
  Emio.Io_stats.reset stats;
  let got = Xbtree.Btree.range t ~lo:0 ~hi:1000 in
  Alcotest.(check int) "T entries" 501 (List.length got);
  let reads = Emio.Io_stats.reads stats in
  Alcotest.(check bool)
    (Printf.sprintf "range reads %d <= height + T/B + 2" reads)
    true
    (reads <= 3 + (501 / 16) + 2)

let test_space_linear () =
  let t, _ = build ~block_size:16 (sorted 4096) in
  (* leaves = 256, internals = 16 + 1 *)
  Alcotest.(check int) "space" 273 (Xbtree.Btree.space_blocks t)

let prop_matches_oracle =
  QCheck.Test.make ~count:300 ~name:"btree matches sorted-array oracle"
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 200) (int_range 0 100))
        (list_of_size Gen.(1 -- 30) (int_range (-5) 105)))
    (fun (keys, probes) ->
      let arr = Array.of_list (List.sort compare keys) in
      let entries = Array.map (fun k -> (k, k)) arr in
      let stats = Emio.Io_stats.create () in
      let t =
        Xbtree.Btree.bulk_load ~stats ~block_size:3 ~cmp:compare entries
      in
      List.for_all
        (fun x ->
          let oracle_pred =
            Array.fold_left
              (fun acc (k, _) -> if k <= x then Some k else acc)
              None entries
          in
          let got_pred = Option.map fst (Xbtree.Btree.predecessor t x) in
          let oracle_mem = Array.exists (fun (k, _) -> k = x) entries in
          let got_mem = Xbtree.Btree.find t x <> None in
          oracle_pred = got_pred && oracle_mem = got_mem)
        probes)

let prop_range_matches_oracle =
  QCheck.Test.make ~count:300 ~name:"range matches filter oracle"
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 150) (int_range 0 60))
        (int_range (-5) 65) (int_range (-5) 65))
    (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let sorted_keys = List.sort compare keys in
      let entries = Array.of_list (List.map (fun k -> (k, k)) sorted_keys) in
      let stats = Emio.Io_stats.create () in
      let t =
        Xbtree.Btree.bulk_load ~stats ~block_size:4 ~cmp:compare entries
      in
      let oracle = List.filter (fun k -> lo <= k && k <= hi) sorted_keys in
      List.map fst (Xbtree.Btree.range t ~lo ~hi) = oracle)

let () =
  Alcotest.run "xbtree"
    [
      ( "btree",
        [
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "predecessor" `Quick test_predecessor;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "empty and tiny" `Quick test_empty_and_tiny;
          Alcotest.test_case "rejects unsorted" `Quick test_rejects_unsorted;
          Alcotest.test_case "io bounds" `Quick test_io_bounds;
          Alcotest.test_case "linear space" `Quick test_space_linear;
          QCheck_alcotest.to_alcotest prop_matches_oracle;
          QCheck_alcotest.to_alcotest prop_range_matches_oracle;
        ] );
    ]
