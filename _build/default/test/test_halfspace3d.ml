(* Tests for the §4 structures: Lowest_planes (Thm 4.2), Halfspace3d
   (Thm 4.4) and Knn (Thm 4.3), each against brute-force oracles, plus
   measured expected I/O bounds on the simulator. *)

open Geom

let clip = (-50., -50., 50., 50.)

let rand_planes rng n =
  Array.init n (fun _ ->
      Plane3.make
        ~a:(Random.State.float rng 4. -. 2.)
        ~b:(Random.State.float rng 4. -. 2.)
        ~c:(Random.State.float rng 40. -. 20.))

(* --- Lowest_planes ---------------------------------------------------- *)

let brute_k_lowest planes ~x ~y ~k =
  let withh =
    Array.mapi (fun i p -> (i, Plane3.eval p x y)) planes
  in
  Array.sort (fun (_, a) (_, b) -> Float.compare a b) withh;
  Array.to_list (Array.sub withh 0 (min k (Array.length withh)))

let test_k_lowest_oracle () =
  let rng = Random.State.make [| 11 |] in
  let planes = rand_planes rng 300 in
  let stats = Emio.Io_stats.create () in
  let t =
    Core.Lowest_planes.build ~stats ~block_size:8 ~clip planes
  in
  for trial = 1 to 60 do
    let x = Random.State.float rng 80. -. 40.
    and y = Random.State.float rng 80. -. 40. in
    let k = 1 + Random.State.int rng 40 in
    let got = Core.Lowest_planes.k_lowest t ~x ~y ~k in
    let want = brute_k_lowest planes ~x ~y ~k in
    if List.length got <> List.length want then
      Alcotest.failf "trial %d: got %d planes, want %d" trial
        (List.length got) (List.length want);
    List.iter2
      (fun (gi, gh) (wi, wh) ->
        (* ids must agree unless heights are (near) ties *)
        if gi <> wi && Float.abs (gh -. wh) > 1e-9 then
          Alcotest.failf "trial %d: plane %d (h=%g) vs %d (h=%g)" trial gi gh
            wi wh)
      got want
  done

let test_k_lowest_edge_cases () =
  let rng = Random.State.make [| 12 |] in
  let planes = rand_planes rng 64 in
  let stats = Emio.Io_stats.create () in
  let t = Core.Lowest_planes.build ~stats ~block_size:8 ~clip planes in
  Alcotest.(check (list (pair int (float 1.)))) "k=0" []
    (Core.Lowest_planes.k_lowest t ~x:0. ~y:0. ~k:0);
  Alcotest.(check int) "k > N clamps" 64
    (List.length (Core.Lowest_planes.k_lowest t ~x:0. ~y:0. ~k:1000));
  (* outside the clip box: exact fallback *)
  let got = Core.Lowest_planes.k_lowest t ~x:500. ~y:0. ~k:3 in
  let want = brute_k_lowest planes ~x:500. ~y:0. ~k:3 in
  Alcotest.(check (list int)) "outside clip still exact" (List.map fst want)
    (List.map fst got);
  Alcotest.(check bool) "fallback was used" true
    (Core.Lowest_planes.fallbacks t > 0)

let test_k_lowest_io_bound () =
  let rng = Random.State.make [| 13 |] in
  let n = 4096 and block_size = 32 in
  let planes = rand_planes rng n in
  let stats = Emio.Io_stats.create () in
  let t = Core.Lowest_planes.build ~stats ~block_size ~clip planes in
  (* average I/Os over random queries must be O(log_B n + k/B) *)
  let trials = 100 in
  let total = ref 0 in
  let k = 64 in
  Emio.Io_stats.reset stats;
  for _ = 1 to trials do
    let x = Random.State.float rng 80. -. 40.
    and y = Random.State.float rng 80. -. 40. in
    ignore (Core.Lowest_planes.k_lowest t ~x ~y ~k)
  done;
  total := Emio.Io_stats.reads stats;
  let avg = float_of_int !total /. float_of_int trials in
  (* TryLowestPlanes fails with probability ~delta by design and
     retries across three copies, so the constant in front of
     O(log_B n + k/B) is substantial; the budget checks the shape, the
     benches check the scaling across N. *)
  let budget = 90. +. (10. *. float_of_int (k / block_size)) in
  if avg > budget then
    Alcotest.failf "avg %g I/Os per k-lowest query (budget %g)" avg budget;
  Alcotest.(check int) "no fallbacks on in-clip queries" 0
    (Core.Lowest_planes.fallbacks t)

(* --- Halfspace3d ------------------------------------------------------ *)

let rand_points3 rng n =
  Array.init n (fun _ ->
      Point3.make
        (Random.State.float rng 20. -. 10.)
        (Random.State.float rng 20. -. 10.)
        (Random.State.float rng 20. -. 10.))

let oracle3 points ~a ~b ~c =
  List.filter
    (fun p ->
      Point3.z p <= (a *. Point3.x p) +. (b *. Point3.y p) +. c +. Eps.eps)
    (Array.to_list points)

let test_halfspace3d_oracle () =
  let rng = Random.State.make [| 21 |] in
  let points = rand_points3 rng 400 in
  let stats = Emio.Io_stats.create () in
  let t = Core.Halfspace3d.build ~stats ~block_size:8 ~clip points in
  for _ = 1 to 40 do
    let a = Random.State.float rng 4. -. 2.
    and b = Random.State.float rng 4. -. 2.
    and c = Random.State.float rng 60. -. 30. in
    let got = Core.Halfspace3d.query_count t ~a ~b ~c in
    let want = List.length (oracle3 points ~a ~b ~c) in
    if got <> want then
      Alcotest.failf "halfspace (%g,%g,%g): got %d want %d" a b c got want
  done

let test_halfspace3d_extremes () =
  let rng = Random.State.make [| 22 |] in
  let points = rand_points3 rng 100 in
  let stats = Emio.Io_stats.create () in
  let t = Core.Halfspace3d.build ~stats ~block_size:8 ~clip points in
  Alcotest.(check int) "all" 100
    (Core.Halfspace3d.query_count t ~a:0. ~b:0. ~c:1e6);
  Alcotest.(check int) "none" 0
    (Core.Halfspace3d.query_count t ~a:0. ~b:0. ~c:(-1e6))

(* --- Knn -------------------------------------------------------------- *)

let test_knn_oracle () =
  let rng = Random.State.make [| 31 |] in
  let points =
    Array.init 300 (fun _ ->
        Point2.make
          (Random.State.float rng 20. -. 10.)
          (Random.State.float rng 20. -. 10.))
  in
  let stats = Emio.Io_stats.create () in
  let t = Core.Knn.build ~stats ~block_size:8 ~clip points in
  for _ = 1 to 40 do
    let q =
      Point2.make
        (Random.State.float rng 24. -. 12.)
        (Random.State.float rng 24. -. 12.)
    in
    let k = 1 + Random.State.int rng 20 in
    let got = Core.Knn.nearest t q ~k in
    let want =
      let ds = Array.map (fun p -> Point2.dist q p) points in
      Array.sort Float.compare ds;
      Array.to_list (Array.sub ds 0 k)
    in
    List.iter2
      (fun (gp, gd) wd ->
        if Float.abs (gd -. wd) > 1e-6 then
          Alcotest.failf "knn: got %s at distance %g, want %g"
            (Format.asprintf "%a" Point2.pp gp)
            gd wd)
      got want
  done

let test_knn_exact_hit () =
  let points = [| Point2.make 1. 1.; Point2.make 5. 5.; Point2.make 9. 1. |] in
  let stats = Emio.Io_stats.create () in
  let t = Core.Knn.build ~stats ~block_size:4 ~clip points in
  match Core.Knn.nearest t (Point2.make 5. 5.) ~k:1 with
  | [ (p, d) ] ->
      Alcotest.(check bool) "self" true (Point2.equal p (Point2.make 5. 5.));
      Alcotest.(check (float 1e-9)) "distance zero" 0. d
  | l -> Alcotest.failf "expected 1 neighbor, got %d" (List.length l)

(* --- Disk_range ------------------------------------------------------- *)

let test_disk_oracle () =
  let rng = Random.State.make [| 41 |] in
  let points =
    Array.init 400 (fun _ ->
        Point2.make
          (Random.State.float rng 20. -. 10.)
          (Random.State.float rng 20. -. 10.))
  in
  let stats = Emio.Io_stats.create () in
  let t = Core.Disk_range.build ~stats ~block_size:8 ~clip points in
  for _ = 1 to 40 do
    let center =
      Point2.make
        (Random.State.float rng 24. -. 12.)
        (Random.State.float rng 24. -. 12.)
    in
    let radius = Random.State.float rng 8. in
    let got = Core.Disk_range.query_count t ~center ~radius in
    let want =
      Array.fold_left
        (fun acc p ->
          if Point2.dist center p <= radius +. 1e-9 then acc + 1 else acc)
        0 points
    in
    if got <> want then
      Alcotest.failf "disk (%g,%g r=%g): got %d want %d" (Point2.x center)
        (Point2.y center) radius got want
  done

let test_disk_extremes () =
  let points = Array.init 50 (fun i -> Point2.make (float_of_int i) 0.) in
  let stats = Emio.Io_stats.create () in
  let t =
    Core.Disk_range.build ~stats ~block_size:8 ~clip:(-100., -100., 100., 100.)
      points
  in
  Alcotest.(check int) "radius 0 hits the center point" 1
    (Core.Disk_range.query_count t ~center:(Point2.make 10. 0.) ~radius:0.);
  Alcotest.(check int) "everything" 50
    (Core.Disk_range.query_count t ~center:(Point2.make 25. 0.) ~radius:100.);
  Alcotest.(check int) "nothing" 0
    (Core.Disk_range.query_count t ~center:(Point2.make 25. 30.) ~radius:1.)

let () =
  Alcotest.run "halfspace3d"
    [
      ( "lowest_planes",
        [
          Alcotest.test_case "oracle" `Quick test_k_lowest_oracle;
          Alcotest.test_case "edge cases" `Quick test_k_lowest_edge_cases;
          Alcotest.test_case "io bound (Thm 4.2)" `Slow test_k_lowest_io_bound;
        ] );
      ( "halfspace3d",
        [
          Alcotest.test_case "oracle" `Quick test_halfspace3d_oracle;
          Alcotest.test_case "extremes" `Quick test_halfspace3d_extremes;
        ] );
      ( "knn",
        [
          Alcotest.test_case "oracle" `Quick test_knn_oracle;
          Alcotest.test_case "exact hit" `Quick test_knn_exact_hit;
        ] );
      ( "disk_range",
        [
          Alcotest.test_case "oracle" `Quick test_disk_oracle;
          Alcotest.test_case "extremes" `Quick test_disk_extremes;
        ] );
    ]
