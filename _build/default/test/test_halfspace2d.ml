(* Tests for the §3 structure (Theorem 3.5): exactness against a brute
   force oracle, duplicate handling, and the O(log_B n + t) query I/O
   bound measured on the simulator. *)

open Geom

(* The oracle uses the exact same floating-point expression as the
   structure's dual-side test, so classification agrees bit-for-bit. *)
let oracle points ~slope ~icept =
  List.filter
    (fun p -> ((-.Point2.x p) *. slope) +. Point2.y p <= icept +. Eps.eps)
    (Array.to_list points)

let sort_points =
  List.sort (fun p q ->
      compare (Point2.x p, Point2.y p) (Point2.x q, Point2.y q))

let build ?(block_size = 8) points =
  let stats = Emio.Io_stats.create () in
  (Core.Halfspace2d.build ~stats ~block_size points, stats)

let test_small_example () =
  (* the paper's SQL example shape: points below y = 10x *)
  let points =
    [|
      Point2.make 1. 5.;
      Point2.make 1. 15.;
      Point2.make 2. 19.;
      Point2.make 2. 21.;
      Point2.make 0.5 6.;
    |]
  in
  let t, _ = build points in
  let got = Core.Halfspace2d.query t ~slope:10. ~icept:0. in
  Alcotest.(check int) "two companies pass the P/E screen" 2
    (List.length got);
  Alcotest.(check int) "count agrees" 2
    (Core.Halfspace2d.query_count t ~slope:10. ~icept:0.)

let test_extremes () =
  let points = Array.init 50 (fun i -> Point2.make (float i) (float (i * i))) in
  let t, _ = build points in
  Alcotest.(check int) "everything below a very high line" 50
    (Core.Halfspace2d.query_count t ~slope:0. ~icept:1e9);
  Alcotest.(check int) "nothing below a very low line" 0
    (Core.Halfspace2d.query_count t ~slope:0. ~icept:(-1e9))

let test_duplicates_reported_with_multiplicity () =
  let p = Point2.make 1. 1. in
  let points = Array.append (Array.make 7 p) [| Point2.make 2. 100. |] in
  let t, _ = build points in
  Alcotest.(check int) "7 duplicates" 7
    (Core.Halfspace2d.query_count t ~slope:0. ~icept:2.)

let test_empty_and_singleton () =
  let t, _ = build [||] in
  Alcotest.(check int) "empty" 0
    (Core.Halfspace2d.query_count t ~slope:1. ~icept:0.);
  let t1, _ = build [| Point2.make 3. 4. |] in
  Alcotest.(check int) "hit" 1
    (Core.Halfspace2d.query_count t1 ~slope:0. ~icept:5.);
  Alcotest.(check int) "miss" 0
    (Core.Halfspace2d.query_count t1 ~slope:0. ~icept:3.)

let gen_points =
  QCheck.Gen.(
    list_size (1 -- 250)
      (map2
         (fun x y -> Point2.make x y)
         (float_range (-100.) 100.) (float_range (-100.) 100.)))

let gen_query = QCheck.Gen.(pair (float_range (-5.) 5.) (float_range (-150.) 150.))

let prop_matches_oracle =
  QCheck.Test.make ~count:100 ~name:"query = brute-force oracle"
    (QCheck.make QCheck.Gen.(pair gen_points (list_size (1 -- 10) gen_query)))
    (fun (points, queries) ->
      let points = Array.of_list points in
      let t, _ = build ~block_size:4 points in
      List.for_all
        (fun (slope, icept) ->
          let got = sort_points (Core.Halfspace2d.query t ~slope ~icept) in
          let want = sort_points (oracle points ~slope ~icept) in
          List.length got = List.length want
          && List.for_all2 Point2.equal got want)
        queries)

let prop_monotone_in_icept =
  QCheck.Test.make ~count:100 ~name:"raising the line reports more"
    (QCheck.make QCheck.Gen.(triple gen_points gen_query (float_range 0. 50.)))
    (fun (points, (slope, icept), lift) ->
      let t, _ = build ~block_size:4 (Array.of_list points) in
      Core.Halfspace2d.query_count t ~slope ~icept
      <= Core.Halfspace2d.query_count t ~slope ~icept:(icept +. lift))

(* Theorem 3.5 measured: queries on a 8192-point set must cost
   O(log_B n + t) I/Os.  We allow a generous constant and check both a
   small-output and a large-output query. *)
let test_io_bound () =
  let n_points = 8192 and block_size = 32 in
  let rng = Random.State.make [| 42 |] in
  let points =
    Array.init n_points (fun _ ->
        Point2.make
          (Random.State.float rng 200. -. 100.)
          (Random.State.float rng 200. -. 100.))
  in
  let stats = Emio.Io_stats.create () in
  let t = Core.Halfspace2d.build ~stats ~block_size points in
  let n = (n_points + block_size - 1) / block_size in
  let log_b_n =
    max 1. (log (float_of_int n) /. log (float_of_int block_size))
  in
  let check_query ~slope ~icept =
    Emio.Io_stats.reset stats;
    let reported = Core.Halfspace2d.query_count t ~slope ~icept in
    let ios = Emio.Io_stats.reads stats in
    let t_blocks = (reported + block_size - 1) / block_size in
    let budget = int_of_float (60. *. (log_b_n +. 1.)) + (8 * t_blocks) in
    if ios > budget then
      Alcotest.failf "query cost %d I/Os for t=%d blocks (budget %d)" ios
        t_blocks budget
  in
  check_query ~slope:0.3 ~icept:(-95.);
  check_query ~slope:0.0 ~icept:(-60.);
  check_query ~slope:(-1.2) ~icept:0.;
  check_query ~slope:0.1 ~icept:95.;
  (* space must be linear: O(n) blocks *)
  let space = Core.Halfspace2d.space_blocks t in
  if space > 6 * n then
    Alcotest.failf "space %d blocks exceeds 6n = %d" space (6 * n)

let test_layer_shape () =
  let rng = Random.State.make [| 7 |] in
  let points =
    Array.init 4096 (fun _ ->
        Point2.make
          (Random.State.float rng 2. -. 1.)
          (Random.State.float rng 2. -. 1.))
  in
  let t, _ = build ~block_size:16 points in
  let lambdas = Core.Halfspace2d.lambdas t in
  Alcotest.(check bool) "has layers" true (Core.Halfspace2d.layers t >= 1);
  (* every clustered layer's lambda is within [beta, 2 beta] for a
     common beta *)
  Array.iter
    (fun l ->
      if l <> 0 then begin
        let beta_lo = 16 in
        if l < beta_lo then Alcotest.failf "lambda %d below beta" l
      end)
    lambdas

let () =
  Alcotest.run "halfspace2d"
    [
      ( "correctness",
        [
          Alcotest.test_case "small example" `Quick test_small_example;
          Alcotest.test_case "extremes" `Quick test_extremes;
          Alcotest.test_case "duplicates" `Quick
            test_duplicates_reported_with_multiplicity;
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
          QCheck_alcotest.to_alcotest prop_matches_oracle;
          QCheck_alcotest.to_alcotest prop_monotone_in_icept;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "query I/O bound (Thm 3.5)" `Slow test_io_bound;
          Alcotest.test_case "layer shape" `Quick test_layer_shape;
        ] );
    ]
