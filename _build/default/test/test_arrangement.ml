(* Tests for the k-level walk (§2.3) and the greedy 3k-clustering
   (§3.1): Lemma 3.1, Lemma 3.2 and Corollary 3.3 invariants. *)

open Geom

let line s i = Line2.make ~slope:s ~icept:i

(* Random pairwise-distinct lines in generic position. *)
let gen_lines =
  QCheck.Gen.(
    let* n = 3 -- 25 in
    let* slopes = list_repeat n (float_range (-10.) 10.) in
    let* icepts = list_repeat n (float_range (-10.) 10.) in
    let lines = List.map2 (fun s i -> line s i) slopes icepts in
    (* drop duplicates (vanishingly rare, but the walk requires
       distinct lines) *)
    let tbl = Hashtbl.create 16 in
    let lines =
      List.filter
        (fun l ->
          let k = (Line2.slope l, Line2.icept l) in
          if Hashtbl.mem tbl k then false
          else begin
            Hashtbl.add tbl k ();
            true
          end)
        lines
    in
    return (Array.of_list lines))

let gen_lines_and_k =
  QCheck.Gen.(
    let* lines = gen_lines in
    let* k = 0 -- (Array.length lines - 1) in
    return (lines, k))

let arb_lines_and_k =
  QCheck.make gen_lines_and_k
    ~print:(fun (lines, k) ->
      Printf.sprintf "k=%d lines=[%s]" k
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun l ->
                   Printf.sprintf "(%g,%g)" (Line2.slope l) (Line2.icept l))
                 lines))))

(* --- level walk ------------------------------------------------------- *)

let test_level_triangle () =
  (* Lines y=x, y=-x, y=-2: the 1-level runs along y=-2, climbs onto
     y=x at (-2,-2), switches to y=-x at the apex (0,0) and returns to
     y=-2 at (2,-2): three vertices. *)
  let lines = [| line 1. 0.; line (-1.) 0.; line 0. (-2.) |] in
  let level = Arrangement.Level_walk.walk ~lines ~k:1 () in
  Alcotest.(check int) "complexity" 3
    (Arrangement.Level_walk.complexity level);
  Alcotest.(check (array int)) "edge lines" [| 2; 0; 1; 2 |] level.edge_lines;
  Alcotest.(check bool) "valid" true
    (Arrangement.Level_walk.check_level ~lines ~k:1 level)

let test_level_zero_is_lower_envelope () =
  let lines = [| line 1. 0.; line 0. 1.; line (-1.) 4. |] in
  let level = Arrangement.Level_walk.walk ~lines ~k:0 () in
  (* must follow the lower envelope: segments of lines 0, 1, 2 *)
  Alcotest.(check (array int)) "edges" [| 0; 1; 2 |] level.edge_lines;
  Alcotest.(check bool) "valid" true
    (Arrangement.Level_walk.check_level ~lines ~k:0 level)

let test_level_parallel_lines () =
  (* Parallel lines never cross: every level is a single full line. *)
  let lines = [| line 1. 0.; line 1. 1.; line 1. 2. |] in
  for k = 0 to 2 do
    let level = Arrangement.Level_walk.walk ~lines ~k () in
    Alcotest.(check int) "no vertices" 0
      (Arrangement.Level_walk.complexity level);
    Alcotest.(check int) "edge is the k-th lowest" k level.edge_lines.(0)
  done

let prop_level_walk_valid =
  QCheck.Test.make ~count:300 ~name:"level walk is exact (brute check)"
    arb_lines_and_k (fun (lines, k) ->
      let level = Arrangement.Level_walk.walk ~lines ~k () in
      Arrangement.Level_walk.check_level ~lines ~k level)

let prop_level_events_alternate_consistently =
  QCheck.Test.make ~count:200 ~name:"event stream matches level edges"
    arb_lines_and_k (fun (lines, k) ->
      let events = ref [] in
      let level =
        Arrangement.Level_walk.walk
          ~on_event:(fun ev ~below_after:_ -> events := ev :: !events)
          ~lines ~k ()
      in
      let events = Array.of_list (List.rev !events) in
      Array.length events = Array.length level.vertices
      && Array.for_all2
           (fun (ev : Arrangement.Level_walk.event) v ->
             Point2.equal ev.vertex v)
           events level.vertices)

let prop_below_after_has_k_lines =
  QCheck.Test.make ~count:200 ~name:"|L^-| = k after every vertex"
    arb_lines_and_k (fun (lines, k) ->
      let ok = ref true in
      ignore
        (Arrangement.Level_walk.walk
           ~on_event:(fun _ ~below_after ->
             if List.length (below_after ()) <> k then ok := false)
           ~lines ~k ());
      !ok)

(* --- clustering ------------------------------------------------------- *)

let gen_cluster_input =
  QCheck.Gen.(
    let* lines = gen_lines in
    let n = Array.length lines in
    let* k = 1 -- max 1 (n / 3) in
    return (lines, min k (n - 1)))

let arb_cluster_input = QCheck.make gen_cluster_input

let prop_cluster_sizes =
  QCheck.Test.make ~count:300 ~name:"every cluster has <= 3k lines"
    arb_cluster_input (fun (lines, k) ->
      let c = Arrangement.Clustering.greedy ~lines ~k in
      Arrangement.Clustering.max_cluster_size c <= 3 * k)

let prop_cluster_count =
  QCheck.Test.make ~count:300 ~name:"at most N/k + 1 clusters (Lemma 3.2)"
    arb_cluster_input (fun (lines, k) ->
      let c = Arrangement.Clustering.greedy ~lines ~k in
      Arrangement.Clustering.size c <= (Array.length lines / k) + 1)

(* Lemma 3.1: if p is above fewer than k lines of its relevant cluster,
   then every line below p is in the cluster. *)
let prop_lemma_3_1 =
  QCheck.Test.make ~count:300 ~name:"Lemma 3.1 (cluster captures output)"
    (QCheck.make
       QCheck.Gen.(
         pair gen_cluster_input
           (list_size (1 -- 15)
              (pair (float_range (-30.) 30.) (float_range (-30.) 30.)))))
    (fun ((lines, k), queries) ->
      let c = Arrangement.Clustering.greedy ~lines ~k in
      List.for_all
        (fun (px, py) ->
          let p = Point2.make px py in
          let idx = Arrangement.Clustering.relevant c px in
          let cluster = c.Arrangement.Clustering.clusters.(idx) in
          let in_cluster = Hashtbl.create 16 in
          Array.iter
            (fun id -> Hashtbl.replace in_cluster id ())
            cluster.Arrangement.Clustering.lines;
          let below_in_cluster =
            Array.fold_left
              (fun acc id ->
                if Line2.below_point lines.(id) p then acc + 1 else acc)
              0 cluster.Arrangement.Clustering.lines
          in
          if below_in_cluster < k then begin
            (* every line of the whole set below p must be a member *)
            let ok = ref true in
            Array.iteri
              (fun id l ->
                if Line2.below_point l p && not (Hashtbl.mem in_cluster id)
                then ok := false)
              lines;
            !ok
          end
          else true)
        queries)

(* Corollary 3.3: the clusters containing any given line are contiguous. *)
let prop_corollary_3_3 =
  QCheck.Test.make ~count:300 ~name:"Corollary 3.3 (contiguous appearances)"
    arb_cluster_input (fun (lines, k) ->
      let c = Arrangement.Clustering.greedy ~lines ~k in
      let n = Array.length lines in
      let ok = ref true in
      for id = 0 to n - 1 do
        let appearances =
          Array.to_list
            (Array.mapi
               (fun i (cl : Arrangement.Clustering.cluster) ->
                 if Array.exists (fun x -> x = id) cl.lines then Some i
                 else None)
               c.Arrangement.Clustering.clusters)
          |> List.filter_map Fun.id
        in
        match appearances with
        | [] -> ()
        | first :: rest ->
            let expected = List.mapi (fun i _ -> first + i) (first :: rest) in
            if first :: rest <> expected then ok := false
      done;
      !ok)

(* Relevance partitions the x axis. *)
let prop_relevant_partition =
  QCheck.Test.make ~count:200 ~name:"exactly one relevant cluster per x"
    (QCheck.make
       QCheck.Gen.(pair gen_cluster_input (float_range (-100.) 100.)))
    (fun ((lines, k), x) ->
      let c = Arrangement.Clustering.greedy ~lines ~k in
      let idx = Arrangement.Clustering.relevant c x in
      let cl = c.Arrangement.Clustering.clusters.(idx) in
      cl.Arrangement.Clustering.left_x <= x
      && x < cl.Arrangement.Clustering.right_x
      || (cl.left_x = neg_infinity && x < cl.right_x)
      || (cl.right_x = infinity && cl.left_x <= x))

let test_cluster_small_example () =
  (* k=1 over five lines; the clustering must cover the whole axis. *)
  let lines =
    [| line 2. 0.; line 1. 1.; line 0. (-1.); line (-1.) 2.; line (-2.) (-3.) |]
  in
  let c = Arrangement.Clustering.greedy ~lines ~k:1 in
  Alcotest.(check bool) "at least one cluster" true
    (Arrangement.Clustering.size c >= 1);
  Alcotest.(check bool) "sizes within 3k" true
    (Arrangement.Clustering.max_cluster_size c <= 3);
  let union = Arrangement.Clustering.member_union c in
  Alcotest.(check bool) "union nonempty" true (union <> [])

let () =
  Alcotest.run "arrangement"
    [
      ( "level_walk",
        [
          Alcotest.test_case "triangle" `Quick test_level_triangle;
          Alcotest.test_case "0-level = lower envelope" `Quick
            test_level_zero_is_lower_envelope;
          Alcotest.test_case "parallel lines" `Quick test_level_parallel_lines;
          QCheck_alcotest.to_alcotest prop_level_walk_valid;
          QCheck_alcotest.to_alcotest prop_level_events_alternate_consistently;
          QCheck_alcotest.to_alcotest prop_below_after_has_k_lines;
        ] );
      ( "clustering",
        [
          Alcotest.test_case "small example" `Quick test_cluster_small_example;
          QCheck_alcotest.to_alcotest prop_cluster_sizes;
          QCheck_alcotest.to_alcotest prop_cluster_count;
          QCheck_alcotest.to_alcotest prop_lemma_3_1;
          QCheck_alcotest.to_alcotest prop_corollary_3_3;
          QCheck_alcotest.to_alcotest prop_relevant_partition;
        ] );
    ]
