(* Tests for the triangulated lower envelope with conflict lists
   (§4.1): location, height, and — critically — conflict completeness,
   the invariant TryLowestPlanes relies on. *)

open Geom

let clip = (-10., -10., 10., 10.)

let gen_planes =
  QCheck.Gen.(
    list_size (5 -- 40)
      (map3
         (fun a b c -> Plane3.make ~a ~b ~c)
         (float_range (-3.) 3.) (float_range (-3.) 3.)
         (float_range (-20.) 20.)))

let shuffled_order rng n =
  let order = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  order

let build_random (planes, seed) =
  let planes = Array.of_list planes in
  let n = Array.length planes in
  let rng = Random.State.make [| seed |] in
  let order = shuffled_order rng n in
  let sample_size = 4 + Random.State.int rng (n - 3) in
  match Envelope3.build ~planes ~order ~sample_size ~clip with
  | t -> Some (planes, t, rng)
  | exception Invalid_argument _ -> None

let min_sample_height planes (t : Envelope3.t) x y =
  Array.fold_left
    (fun acc i -> min acc (Plane3.eval planes.(i) x y))
    infinity t.Envelope3.sample

let arb = QCheck.make QCheck.Gen.(pair gen_planes (0 -- 10_000))

let rand_xy rng =
  ( Random.State.float rng 19.8 -. 9.9,
    Random.State.float rng 19.8 -. 9.9 )

let prop_locate_and_height =
  QCheck.Test.make ~count:150
    ~name:"located triangle's plane is the lowest sample plane" arb
    (fun input ->
      match build_random input with
      | None -> true
      | Some (planes, t, rng) ->
          let ok = ref true in
          for _ = 1 to 20 do
            let x, y = rand_xy rng in
            match Envelope3.locate_brute t x y with
            | None -> ok := false (* triangles must cover the clip box *)
            | Some tri ->
                let h = Envelope3.envelope_height t tri x y in
                let want = min_sample_height planes t x y in
                if Float.abs (h -. want) > 1e-5 *. (1. +. Float.abs want) then
                  ok := false
          done;
          !ok)

(* Every non-sample plane strictly below the envelope at (x,y) must be
   in the conflict list of the triangle containing (x,y). *)
let prop_conflict_completeness =
  QCheck.Test.make ~count:150 ~name:"conflict lists are complete" arb
    (fun input ->
      match build_random input with
      | None -> true
      | Some (planes, t, rng) ->
          let in_sample = Array.make (Array.length planes) false in
          Array.iter (fun i -> in_sample.(i) <- true) t.Envelope3.sample;
          let ok = ref true in
          for _ = 1 to 20 do
            let x, y = rand_xy rng in
            match Envelope3.locate_brute t x y with
            | None -> ok := false
            | Some tri ->
                let tr = t.Envelope3.triangles.(tri) in
                let env_z = Envelope3.envelope_height t tri x y in
                Array.iteri
                  (fun g plane ->
                    if
                      (not in_sample.(g))
                      && Plane3.eval plane x y < env_z -. 1e-6
                      && not (Array.exists (fun q -> q = g) tr.conflicts)
                    then ok := false)
                  planes
          done;
          !ok)

(* Soundness: a conflicting plane really is below the envelope at one
   of its triangle's corners. *)
let prop_conflict_soundness =
  QCheck.Test.make ~count:150 ~name:"conflict lists are sound" arb
    (fun input ->
      match build_random input with
      | None -> true
      | Some (planes, t, _) ->
          Array.for_all
            (fun (tr : Envelope3.triangle) ->
              Array.for_all
                (fun g ->
                  let below_some_corner = ref false in
                  Array.iteri
                    (fun i p ->
                      let gz =
                        Plane3.eval planes.(g) (Point2.x p) (Point2.y p)
                      in
                      if gz < tr.corner_z.(i) +. 1e-6 then
                        below_some_corner := true)
                    tr.corners;
                  !below_some_corner)
                tr.conflicts)
            t.Envelope3.triangles)

let prop_conflict_size_linear =
  QCheck.Test.make ~count:100 ~name:"sum of conflicts = O(N) (Lemma 4.1a)"
    arb (fun input ->
      match build_random input with
      | None -> true
      | Some (planes, t, _) ->
          Envelope3.total_conflict_size t <= 60 * Array.length planes)

let test_single_layer_deterministic () =
  (* four tilted planes + one high plane: the high plane never appears *)
  let planes =
    [|
      Plane3.make ~a:1. ~b:0. ~c:0.;
      Plane3.make ~a:(-1.) ~b:0. ~c:0.;
      Plane3.make ~a:0. ~b:1. ~c:0.;
      Plane3.make ~a:0. ~b:(-1.) ~c:0.;
      Plane3.make ~a:0. ~b:0. ~c:100.;
    |]
  in
  let order = [| 0; 1; 2; 3; 4 |] in
  let t = Envelope3.build ~planes ~order ~sample_size:5 ~clip in
  Alcotest.(check bool) "has triangles" true
    (Array.length t.Envelope3.triangles > 0);
  (* at the origin the envelope is at z = min(0,...) approx -? all four
     tilted planes pass through origin: envelope height 0 at (0,0)
     minus... below: at (2,0): min(2, -2, 0, 0, 100) = -2 *)
  (match Envelope3.locate_brute t 2. 0. with
  | None -> Alcotest.fail "no triangle at (2,0)"
  | Some tri ->
      Alcotest.(check int) "plane with slope -1 wins at (2,0)" 1
        t.Envelope3.triangles.(tri).Envelope3.plane);
  (* plane 4 (z=100) conflicts nowhere as part of the sample *)
  Alcotest.(check int) "no conflicts when sample = all" 0
    (Envelope3.total_conflict_size t)

let test_conflicts_of_low_plane () =
  (* sample: a slightly perturbed bowl (perturbations keep the dual
     points affinely independent); non-sample: one very low plane
     conflicting with every triangle *)
  let planes =
    [|
      Plane3.make ~a:1. ~b:0. ~c:0.05;
      Plane3.make ~a:(-1.) ~b:0. ~c:0.31;
      Plane3.make ~a:0. ~b:1. ~c:0.17;
      Plane3.make ~a:0. ~b:(-1.) ~c:(-0.23);
      Plane3.make ~a:0. ~b:0. ~c:(-1000.);
    |]
  in
  let order = [| 0; 1; 2; 3; 4 |] in
  let t = Envelope3.build ~planes ~order ~sample_size:4 ~clip in
  Array.iter
    (fun (tr : Envelope3.triangle) ->
      Alcotest.(check (array int)) "low plane conflicts everywhere" [| 4 |]
        tr.Envelope3.conflicts)
    t.Envelope3.triangles

let () =
  Alcotest.run "envelope3"
    [
      ( "envelope3",
        [
          Alcotest.test_case "deterministic bowl" `Quick
            test_single_layer_deterministic;
          Alcotest.test_case "low plane conflicts" `Quick
            test_conflicts_of_low_plane;
          QCheck_alcotest.to_alcotest prop_locate_and_height;
          QCheck_alcotest.to_alcotest prop_conflict_completeness;
          QCheck_alcotest.to_alcotest prop_conflict_soundness;
          QCheck_alcotest.to_alcotest prop_conflict_size_linear;
        ] );
    ]
