(* Tests for 2-D primitives, duality (Lemma 2.1) and envelopes. *)

open Geom

let line s i = Line2.make ~slope:s ~icept:i

(* --- primitives ------------------------------------------------------ *)

let test_line_ops () =
  let l = line 2. 1. in
  Alcotest.(check (float 1e-9)) "eval" 7. (Line2.eval l 3.);
  let m = line (-1.) 4. in
  Alcotest.(check (float 1e-9)) "meet_x" 1. (Line2.meet_x l m);
  (match Line2.meet l m with
  | Some p ->
      Alcotest.(check (float 1e-9)) "meet y" 3. (Point2.y p);
      Alcotest.(check (float 1e-9)) "meet x" 1. (Point2.x p)
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "parallel none" true
    (Line2.meet l (line 2. 5.) = None);
  Alcotest.(check bool) "below" true
    (Line2.below_point l (Point2.make 0. 2.));
  Alcotest.(check bool) "above" true
    (Line2.above_point l (Point2.make 0. 0.));
  Alcotest.(check bool) "through" true
    (Line2.through_point l (Point2.make 1. 3.))

let test_orient () =
  let p = Point2.make 0. 0. and q = Point2.make 1. 0. in
  Alcotest.(check int) "left" 1 (Point2.orient p q (Point2.make 0. 1.));
  Alcotest.(check int) "right" (-1) (Point2.orient p q (Point2.make 0. (-1.)));
  Alcotest.(check int) "collinear" 0 (Point2.orient p q (Point2.make 2. 0.))

(* Lemma 2.1: p above h iff p* above h*. *)
let prop_duality_preserves_above_below =
  let gen =
    QCheck.Gen.(
      let coord = float_range (-50.) 50. in
      quad coord coord coord coord)
  in
  QCheck.Test.make ~count:500
    ~name:"duality preserves above/below (Lemma 2.1)"
    (QCheck.make gen) (fun (px, py, hs, hc) ->
      let p = Point2.make px py in
      let h = line hs hc in
      let p_star = Dual2.line_of_point p in
      let h_star = Dual2.point_of_line h in
      let primal =
        if Line2.below_point h p then `Above (* p above h *)
        else if Line2.above_point h p then `Below
        else `On
      in
      let dual =
        if Line2.below_point p_star h_star then `Below (* p* below h* *)
        else if Line2.above_point p_star h_star then `Above
        else `On
      in
      (* p above h <-> dual line p* above dual point h* *)
      match (primal, dual) with
      | `Above, `Above | `Below, `Below | `On, `On -> true
      | _ -> false)

(* --- envelopes -------------------------------------------------------- *)

let gen_lines n =
  QCheck.Gen.(
    list_size (2 -- n)
      (map2
         (fun s i -> line s i)
         (float_range (-10.) 10.) (float_range (-10.) 10.)))

let brute_eval kind lines x =
  let vals = List.map (fun l -> Line2.eval l x) lines in
  match kind with
  | Envelope2.Lower -> List.fold_left min infinity vals
  | Envelope2.Upper -> List.fold_left max neg_infinity vals

let close a b = Float.abs (a -. b) <= 1e-6 *. (1. +. Float.abs a)

let prop_envelope_matches_brute kind name =
  QCheck.Test.make ~count:300 ~name
    (QCheck.make QCheck.Gen.(pair (gen_lines 15) (list_size (1 -- 20) (float_range (-40.) 40.))))
    (fun (lines, xs) ->
      let env = Envelope2.build kind (Array.of_list lines) in
      List.for_all
        (fun x -> close (Envelope2.eval env x) (brute_eval kind lines x))
        xs)

(* Brute-force first crossing: intersect the probe with every line and
   keep the smallest x > after that actually lies on the envelope. *)
let brute_first_crossing kind lines probe ~after =
  let on_env x =
    close (brute_eval kind lines x) (Line2.eval probe x)
  in
  List.filter_map
    (fun l ->
      if Line2.parallel probe l then None
      else
        let x = Line2.meet_x probe l in
        if x > after +. 1e-7 && on_env x then Some x else None)
    lines
  |> List.fold_left min infinity

let prop_first_crossing kind name =
  QCheck.Test.make ~count:500 ~name
    (QCheck.make
       QCheck.Gen.(
         triple (gen_lines 12) (float_range (-5.) 5.) (float_range (-8.) 8.)))
    (fun (lines, probe_slope, after) ->
      let env = Envelope2.build kind (Array.of_list lines) in
      (* pick a probe that is strictly on the outer side at [after] *)
      let margin = 1.0 in
      let icept_at_after =
        match kind with
        | Envelope2.Upper -> Envelope2.eval env after +. margin
        | Envelope2.Lower -> Envelope2.eval env after -. margin
      in
      let probe =
        line probe_slope (icept_at_after -. (probe_slope *. after))
      in
      let brute = brute_first_crossing kind lines probe ~after in
      match Envelope2.first_crossing env probe ~after with
      | None -> brute = infinity
      | Some (x, l) ->
          close x brute
          && close (Line2.eval l x) (Line2.eval probe x))

(* outer_interval against a dense scan. *)
let prop_outer_interval kind name =
  QCheck.Test.make ~count:300 ~name
    (QCheck.make
       QCheck.Gen.(
         triple (gen_lines 12) (float_range (-5.) 5.) (float_range (-12.) 12.)))
    (fun (lines, probe_slope, probe_icept) ->
      let env = Envelope2.build kind (Array.of_list lines) in
      let probe = line probe_slope probe_icept in
      let outer x =
        match kind with
        | Envelope2.Lower ->
            Line2.eval probe x < Envelope2.eval env x -. 1e-6
        | Envelope2.Upper ->
            Line2.eval probe x > Envelope2.eval env x +. 1e-6
      in
      let interval = Envelope2.outer_interval env probe in
      (* check agreement on a grid, skipping points near the boundary *)
      let ok = ref true in
      for i = -60 to 60 do
        let x = float_of_int i /. 2. in
        let inside =
          match interval with
          | None -> false
          | Some (lo, hi) -> x > lo +. 1e-4 && x < hi -. 1e-4
        in
        let outside =
          match interval with
          | None -> true
          | Some (lo, hi) -> x < lo -. 1e-4 || x > hi +. 1e-4
        in
        if inside && not (outer x) then ok := false;
        if outside && outer x then ok := false
      done;
      !ok)

let test_envelope_shapes () =
  (* three lines forming a lower envelope with two breakpoints *)
  let lines = [| line 1. 0.; line 0. 1.; line (-1.) 4. |] in
  let env = Envelope2.build Envelope2.Lower lines in
  Alcotest.(check int) "three segments" 3 (Envelope2.size env);
  Alcotest.(check (float 1e-9)) "bp1" 1. (Envelope2.breakpoints env).(0);
  Alcotest.(check (float 1e-9)) "bp2" 3. (Envelope2.breakpoints env).(1);
  Alcotest.(check (float 1e-9)) "left part" (-2.) (Envelope2.eval env (-2.));
  Alcotest.(check (float 1e-9)) "middle" 1. (Envelope2.eval env 2.);
  Alcotest.(check (float 1e-9)) "right" (-1.) (Envelope2.eval env 5.)

let test_envelope_dominated_line_dropped () =
  (* the flat line y = 10 never appears on the lower envelope *)
  let lines = [| line 1. 0.; line (-1.) 0.; line 0. 10. |] in
  let env = Envelope2.build Envelope2.Lower lines in
  Alcotest.(check int) "two segments" 2 (Envelope2.size env)

let test_envelope_duplicate_slopes () =
  let lines = [| line 1. 5.; line 1. 0.; line (-1.) 0. |] in
  let env = Envelope2.build Envelope2.Lower lines in
  Alcotest.(check int) "two segments" 2 (Envelope2.size env);
  Alcotest.(check (float 1e-9)) "keeps lower parallel" (-10.)
    (Envelope2.eval env (-10.))

let test_envelope_single_line () =
  let env = Envelope2.build Envelope2.Upper [| line 2. 3. |] in
  Alcotest.(check int) "one segment" 1 (Envelope2.size env);
  Alcotest.(check (float 1e-9)) "eval" 7. (Envelope2.eval env 2.);
  (* probe above, converging: crossing exists *)
  (match Envelope2.first_crossing env (line 0. 10.) ~after:0. with
  | Some (x, _) -> Alcotest.(check (float 1e-9)) "crossing" 3.5 x
  | None -> Alcotest.fail "expected crossing");
  (* probe above, diverging: none *)
  Alcotest.(check bool) "no crossing" true
    (Envelope2.first_crossing env (line 3. 10.) ~after:0. = None)

let test_envelope_empty () =
  let env = Envelope2.build Envelope2.Lower [||] in
  Alcotest.(check bool) "empty" true (Envelope2.is_empty env);
  Alcotest.(check bool) "no crossing" true
    (Envelope2.first_crossing env (line 0. 0.) ~after:0. = None)

let () =
  Alcotest.run "geom"
    [
      ( "primitives",
        [
          Alcotest.test_case "line ops" `Quick test_line_ops;
          Alcotest.test_case "orient" `Quick test_orient;
          QCheck_alcotest.to_alcotest prop_duality_preserves_above_below;
        ] );
      ( "envelope2",
        [
          Alcotest.test_case "shapes" `Quick test_envelope_shapes;
          Alcotest.test_case "dominated dropped" `Quick
            test_envelope_dominated_line_dropped;
          Alcotest.test_case "duplicate slopes" `Quick
            test_envelope_duplicate_slopes;
          Alcotest.test_case "single line" `Quick test_envelope_single_line;
          Alcotest.test_case "empty" `Quick test_envelope_empty;
          QCheck_alcotest.to_alcotest
            (prop_envelope_matches_brute Envelope2.Lower
               "lower envelope = brute min");
          QCheck_alcotest.to_alcotest
            (prop_envelope_matches_brute Envelope2.Upper
               "upper envelope = brute max");
          QCheck_alcotest.to_alcotest
            (prop_first_crossing Envelope2.Lower "first_crossing (lower)");
          QCheck_alcotest.to_alcotest
            (prop_first_crossing Envelope2.Upper "first_crossing (upper)");
          QCheck_alcotest.to_alcotest
            (prop_outer_interval Envelope2.Lower "outer_interval (lower)");
          QCheck_alcotest.to_alcotest
            (prop_outer_interval Envelope2.Upper "outer_interval (upper)");
        ] );
    ]
