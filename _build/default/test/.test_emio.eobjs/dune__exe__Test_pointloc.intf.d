test/test_pointloc.mli:
