test/test_arrangement.mli:
