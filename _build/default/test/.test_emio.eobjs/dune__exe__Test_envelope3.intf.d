test/test_envelope3.mli:
