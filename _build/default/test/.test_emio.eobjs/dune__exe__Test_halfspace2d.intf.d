test/test_halfspace2d.mli:
