test/test_arrangement.ml: Alcotest Arrangement Array Fun Geom Hashtbl Line2 List Point2 Printf QCheck QCheck_alcotest String
