test/test_extensions.ml: Alcotest Array Core Emio Geom Hashtbl List Partition Point2 Printf QCheck QCheck_alcotest Random
