test/test_envelope3.ml: Alcotest Array Envelope3 Float Fun Geom Plane3 Point2 QCheck QCheck_alcotest Random
