test/test_hull3.ml: Alcotest Array Fun Geom Hull3 List Point3 QCheck QCheck_alcotest Random
