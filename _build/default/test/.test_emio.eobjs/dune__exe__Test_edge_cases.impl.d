test/test_edge_cases.ml: Alcotest Array Core Emio Envelope2 Eps Geom Line2 List Point2 Printf Random Workload Xbtree
