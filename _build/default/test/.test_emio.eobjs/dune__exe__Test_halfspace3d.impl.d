test/test_halfspace3d.ml: Alcotest Array Core Emio Eps Float Format Geom List Plane3 Point2 Point3 Random
