test/test_hull3.mli:
