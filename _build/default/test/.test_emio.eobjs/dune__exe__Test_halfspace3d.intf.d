test/test_halfspace3d.mli:
