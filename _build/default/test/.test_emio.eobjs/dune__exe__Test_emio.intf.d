test/test_emio.mli:
