test/test_halfspace2d.ml: Alcotest Array Core Emio Eps Geom List Point2 QCheck QCheck_alcotest Random
