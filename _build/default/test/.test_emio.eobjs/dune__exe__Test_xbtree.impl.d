test/test_xbtree.ml: Alcotest Array Emio Gen List Option Printf QCheck QCheck_alcotest Xbtree
