test/test_xbtree.mli:
