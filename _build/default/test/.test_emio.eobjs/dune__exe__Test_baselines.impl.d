test/test_baselines.ml: Alcotest Array Baselines Core Emio Eps Float Geom List Option Point2 Random Workload
