test/test_partition.ml: Alcotest Array Cells Core Emio Float Fun Gen Geom Hashtbl List Partition Partitioner QCheck QCheck_alcotest Random
