test/test_pointloc.ml: Alcotest Array Core Emio Eps Float Geom List Option Plane3 Point2 Pointloc QCheck QCheck_alcotest Random
