test/test_emio.ml: Alcotest Array Emio Fun Gen List QCheck QCheck_alcotest
