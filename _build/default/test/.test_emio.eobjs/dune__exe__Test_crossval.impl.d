test/test_crossval.ml: Alcotest Array Baselines Core Emio Fun Geom List Plane3 Point2 QCheck QCheck_alcotest Random Workload
