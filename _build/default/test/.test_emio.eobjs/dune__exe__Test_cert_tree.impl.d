test/test_cert_tree.ml: Alcotest Array Core Emio Eps Float Fun Geom List Point3 QCheck QCheck_alcotest Random
