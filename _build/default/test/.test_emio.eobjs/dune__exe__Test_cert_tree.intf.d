test/test_cert_tree.mli:
