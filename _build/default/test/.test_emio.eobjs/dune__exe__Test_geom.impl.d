test/test_geom.ml: Alcotest Array Dual2 Envelope2 Float Geom Line2 List Point2 QCheck QCheck_alcotest
