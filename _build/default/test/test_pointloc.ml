(* Tests for the two point-location substrates: the expected-case grid
   and the worst-case segment tree, plus their agreement inside the §4
   structure. *)

open Geom

(* --- Seg_tree ---------------------------------------------------------- *)

(* brute oracle: lowest segment at or above (x, y) among those whose
   x-span contains x *)
let brute_locate segs x y =
  List.fold_left
    (fun best (a, b, payload) ->
      let x0 = min (Point2.x a) (Point2.x b)
      and x1 = max (Point2.x a) (Point2.x b) in
      if x < x0 || x > x1 then best
      else begin
        let slope = (Point2.y b -. Point2.y a) /. (Point2.x b -. Point2.x a) in
        let h = Point2.y a +. (slope *. (x -. Point2.x a)) in
        if h >= y -. Eps.eps then
          match best with
          | Some (bh, _) when bh <= h -> best
          | _ -> Some (h, payload)
        else best
      end)
    None segs

let test_segtree_basic () =
  let stats = Emio.Io_stats.create () in
  let segments =
    [|
      (Point2.make 0. 0., Point2.make 10. 0., "low");
      (Point2.make 0. 5., Point2.make 10. 5., "mid");
      (Point2.make 2. 10., Point2.make 8. 10., "high");
    |]
  in
  let t = Pointloc.Seg_tree.create ~stats ~block_size:4 ~segments () in
  Alcotest.(check (option string)) "below everything" (Some "low")
    (Pointloc.Seg_tree.locate_above t 5. (-3.));
  Alcotest.(check (option string)) "between low and mid" (Some "mid")
    (Pointloc.Seg_tree.locate_above t 5. 2.);
  Alcotest.(check (option string)) "between mid and high" (Some "high")
    (Pointloc.Seg_tree.locate_above t 5. 7.);
  Alcotest.(check (option string)) "x outside the short segment" None
    (Pointloc.Seg_tree.locate_above t 1. 7.);
  Alcotest.(check (option string)) "above everything" None
    (Pointloc.Seg_tree.locate_above t 5. 99.)

(* random horizontal segments never cross: a clean oracle workload *)
let prop_segtree_horizontal_oracle =
  QCheck.Test.make ~count:200 ~name:"seg_tree = oracle (horizontal segments)"
    QCheck.(pair (int_range 0 5000) (int_range 1 60))
    (fun (seed, n) ->
      let rng = Random.State.make [| seed |] in
      let segments =
        Array.init n (fun i ->
            let x0 = Random.State.float rng 80. -. 40. in
            let len = 1. +. Random.State.float rng 30. in
            let y = Random.State.float rng 60. -. 30. in
            (Point2.make x0 y, Point2.make (x0 +. len) y, i))
      in
      let stats = Emio.Io_stats.create () in
      let t = Pointloc.Seg_tree.create ~stats ~block_size:4 ~segments () in
      let ok = ref true in
      for _ = 1 to 25 do
        let x = Random.State.float rng 100. -. 50.
        and y = Random.State.float rng 80. -. 40. in
        let got = Pointloc.Seg_tree.locate_above t x y in
        let want =
          Option.map snd (brute_locate (Array.to_list segments) x y)
        in
        if got <> want then ok := false
      done;
      !ok)

(* a triangle fan: segments sharing endpoints, mixed slopes *)
let test_segtree_fan () =
  let apex = Point2.make 0. 10. in
  let segments =
    Array.init 8 (fun i ->
        let x = -8. +. (2. *. float_of_int i) in
        (apex, Point2.make x 0., i))
  in
  (* drop the two near-vertical spokes *)
  let segments =
    Array.of_list
      (List.filter
         (fun (a, b, _) ->
           Float.abs (Point2.x a -. Point2.x b) > 0.5)
         (Array.to_list segments))
  in
  let stats = Emio.Io_stats.create () in
  let t = Pointloc.Seg_tree.create ~stats ~block_size:4 ~segments () in
  let rng = Random.State.make [| 9 |] in
  for _ = 1 to 100 do
    let x = Random.State.float rng 16. -. 8.
    and y = Random.State.float rng 12. -. 1. in
    let got = Pointloc.Seg_tree.locate_above t x y in
    let want = Option.map snd (brute_locate (Array.to_list segments) x y) in
    if got <> want then
      Alcotest.failf "fan mismatch at (%g, %g)" x y
  done

let test_segtree_rejects_vertical () =
  let stats = Emio.Io_stats.create () in
  Alcotest.check_raises "vertical"
    (Invalid_argument "Seg_tree.create: near-vertical segment") (fun () ->
      ignore
        (Pointloc.Seg_tree.create ~stats ~block_size:4
           ~segments:[| (Point2.make 0. 0., Point2.make 0. 5., ()) |]
           ()))

let test_segtree_empty () =
  let stats = Emio.Io_stats.create () in
  let t = Pointloc.Seg_tree.create ~stats ~block_size:4 ~segments:[||] () in
  Alcotest.(check bool) "empty" true
    (Pointloc.Seg_tree.locate_above t 0. 0. = None)

(* --- Grid -------------------------------------------------------------- *)

let test_grid_basic () =
  let stats = Emio.Io_stats.create () in
  let tri a b c =
    [| Point2.make (fst a) (snd a); Point2.make (fst b) (snd b);
       Point2.make (fst c) (snd c) |]
  in
  let items =
    [|
      (tri (0., 0.) (4., 0.) (0., 4.), "left");
      (tri (4., 0.) (4., 4.) (0., 4.), "right");
    |]
  in
  let t =
    Pointloc.Grid.create ~stats ~block_size:4 ~clip:(0., 0., 4., 4.) ~items ()
  in
  Alcotest.(check (option string)) "left triangle" (Some "left")
    (Pointloc.Grid.locate t 1. 1.);
  Alcotest.(check (option string)) "right triangle" (Some "right")
    (Pointloc.Grid.locate t 3. 3.);
  Alcotest.(check (option string)) "outside clip" None
    (Pointloc.Grid.locate t 9. 9.)

(* --- agreement inside the §4 structure (grid vs segtree) -------------- *)

let test_locators_agree_in_lowest_planes () =
  let rng = Random.State.make [| 31337 |] in
  let planes =
    Array.init 1024 (fun _ ->
        Plane3.make
          ~a:(Random.State.float rng 4. -. 2.)
          ~b:(Random.State.float rng 4. -. 2.)
          ~c:(Random.State.float rng 40. -. 20.))
  in
  let clip = (-50., -50., 50., 50.) in
  let build use_segtree =
    let stats = Emio.Io_stats.create () in
    Core.Lowest_planes.build ~stats ~block_size:16 ~clip ~use_segtree planes
  in
  let g = build false and s = build true in
  for _ = 1 to 50 do
    let x = Random.State.float rng 80. -. 40.
    and y = Random.State.float rng 80. -. 40. in
    let k = 1 + Random.State.int rng 64 in
    let ids l = List.map fst (Core.Lowest_planes.k_lowest l ~x ~y ~k) in
    Alcotest.(check (list int)) "same k-lowest" (ids g) (ids s)
  done

let () =
  Alcotest.run "pointloc"
    [
      ( "seg_tree",
        [
          Alcotest.test_case "basic" `Quick test_segtree_basic;
          QCheck_alcotest.to_alcotest prop_segtree_horizontal_oracle;
          Alcotest.test_case "triangle fan" `Quick test_segtree_fan;
          Alcotest.test_case "rejects vertical" `Quick
            test_segtree_rejects_vertical;
          Alcotest.test_case "empty" `Quick test_segtree_empty;
        ] );
      ( "grid",
        [ Alcotest.test_case "basic" `Quick test_grid_basic ] );
      ( "integration",
        [
          Alcotest.test_case "grid and segtree agree in §4" `Quick
            test_locators_agree_in_lowest_planes;
        ] );
    ]
