(* Tests for the randomized incremental 3-D convex hull and its
   conflict lists (the engine of §4.1). *)

open Geom

let pt = Point3.make

let cube =
  [|
    pt 0. 0. 0.; pt 1. 0. 0.; pt 0. 1. 0.; pt 1. 1. 0.;
    pt 0. 0. 1.; pt 1. 0. 1.; pt 0. 1. 1.; pt 1. 1. 1.;
  |]

let identity_order n = Array.init n Fun.id

let test_cube () =
  let t =
    Hull3.build ~points:cube ~order:(identity_order 8) ~sample_size:8
  in
  Alcotest.(check int) "12 triangles" 12 (Array.length (Hull3.facets t));
  Alcotest.(check (list int)) "all 8 vertices" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (Hull3.vertex_ids t);
  Alcotest.(check bool) "oracle" true (Hull3.check ~points:cube t);
  (* exactly two lower facets (the bottom face, triangulated) *)
  Alcotest.(check int) "2 lower facets" 2 (Array.length (Hull3.lower_facets t))

let test_interior_point_not_vertex () =
  let points = Array.append cube [| pt 0.5 0.5 0.5 |] in
  let t =
    Hull3.build ~points ~order:(identity_order 9) ~sample_size:9
  in
  Alcotest.(check bool) "interior point excluded" false
    (List.mem 8 (Hull3.vertex_ids t));
  Alcotest.(check bool) "oracle" true (Hull3.check ~points t)

let test_conflicts_partial_sample () =
  (* sample = cube corners; extra points: one inside (no conflicts),
     one far outside (conflicts with some facet) *)
  let points = Array.append cube [| pt 0.5 0.5 0.5; pt 5. 5. 5. |] in
  let t =
    Hull3.build ~points ~order:(identity_order 10) ~sample_size:8
  in
  Alcotest.(check bool) "oracle validates conflicts" true
    (Hull3.check ~points t);
  let facets = Hull3.facets t in
  let conflict_ids =
    Array.fold_left
      (fun acc (f : Hull3.facet) ->
        Array.fold_left (fun acc q -> q :: acc) acc f.conflicts)
      [] facets
  in
  Alcotest.(check bool) "inside point conflicts nowhere" false
    (List.mem 8 conflict_ids);
  Alcotest.(check bool) "outside point conflicts somewhere" true
    (List.mem 9 conflict_ids)

let test_degenerate_rejected () =
  let flat = Array.init 6 (fun i -> pt (float i) (float (i * i)) 0.) in
  Alcotest.check_raises "coplanar input"
    (Invalid_argument "Hull3.build: degenerate sample (coplanar points)")
    (fun () ->
      ignore (Hull3.build ~points:flat ~order:(identity_order 6) ~sample_size:6))

let gen_points3 =
  QCheck.Gen.(
    list_size (4 -- 60)
      (map3
         (fun x y z -> pt x y z)
         (float_range (-10.) 10.) (float_range (-10.) 10.)
         (float_range (-10.) 10.)))

let prop_hull_oracle =
  QCheck.Test.make ~count:150 ~name:"hull + conflicts match brute force"
    (QCheck.make QCheck.Gen.(pair gen_points3 (0 -- 1000)))
    (fun (pts, seed) ->
      let points = Array.of_list pts in
      let n = Array.length points in
      let rng = Random.State.make [| seed |] in
      let order = identity_order n in
      (* random permutation *)
      for i = n - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let tmp = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- tmp
      done;
      let sample_size = 4 + Random.State.int rng (n - 3) in
      match Hull3.build ~points ~order ~sample_size with
      | t -> Hull3.check ~points t
      | exception Invalid_argument _ -> true (* degenerate random sample *))

let prop_euler_formula =
  QCheck.Test.make ~count:100 ~name:"triangulated hull satisfies F = 2V - 4"
    (QCheck.make gen_points3) (fun pts ->
      let points = Array.of_list pts in
      let n = Array.length points in
      match
        Hull3.build ~points ~order:(identity_order n) ~sample_size:n
      with
      | t ->
          let f = Array.length (Hull3.facets t) in
          let v = List.length (Hull3.vertex_ids t) in
          f = (2 * v) - 4
      | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "hull3"
    [
      ( "hull3",
        [
          Alcotest.test_case "cube" `Quick test_cube;
          Alcotest.test_case "interior point" `Quick
            test_interior_point_not_vertex;
          Alcotest.test_case "partial sample conflicts" `Quick
            test_conflicts_partial_sample;
          Alcotest.test_case "degenerate rejected" `Quick
            test_degenerate_rejected;
          QCheck_alcotest.to_alcotest prop_hull_oracle;
          QCheck_alcotest.to_alcotest prop_euler_formula;
        ] );
    ]
