(* Tests for the certificate-enhanced 3-D partition tree (Cert_tree):
   correctness against the brute oracle, agreement with the plain §5
   tree, and the output-sensitive visit bound. *)

open Geom

let rand_points3 rng n =
  Array.init n (fun _ ->
      Point3.make
        (Random.State.float rng 20. -. 10.)
        (Random.State.float rng 20. -. 10.)
        (Random.State.float rng 20. -. 10.))

let oracle points ~a0 ~a =
  let below p =
    Point3.z p
    <= (a.(0) *. Point3.x p) +. (a.(1) *. Point3.y p) +. a0 +. Eps.eps
  in
  List.filter (fun i -> below points.(i))
    (List.init (Array.length points) Fun.id)

let test_oracle () =
  let rng = Random.State.make [| 61 |] in
  let points = rand_points3 rng 800 in
  let stats = Emio.Io_stats.create () in
  let t = Core.Cert_tree.build ~stats ~block_size:8 points in
  for _ = 1 to 40 do
    let a =
      [| Random.State.float rng 2. -. 1.; Random.State.float rng 2. -. 1. |]
    in
    let a0 = Random.State.float rng 30. -. 15. in
    let got = List.sort compare (Core.Cert_tree.query_ids t ~a0 ~a) in
    let want = oracle points ~a0 ~a in
    if got <> want then
      Alcotest.failf "cert tree: got %d want %d" (List.length got)
        (List.length want)
  done

let prop_agrees_with_partition_tree =
  QCheck.Test.make ~count:40 ~name:"Cert_tree = Partition_tree"
    QCheck.(pair (int_range 0 10_000) (int_range 30 400))
    (fun (seed, n) ->
      let rng = Random.State.make [| seed |] in
      let points = rand_points3 rng n in
      let coords =
        Array.map (fun p -> [| Point3.x p; Point3.y p; Point3.z p |]) points
      in
      let stats () = Emio.Io_stats.create () in
      let ct = Core.Cert_tree.build ~stats:(stats ()) ~block_size:8 points in
      let pt =
        Core.Partition_tree.build ~stats:(stats ()) ~block_size:8 ~dim:3 coords
      in
      List.for_all
        (fun _ ->
          let a =
            [| Random.State.float rng 2. -. 1.; Random.State.float rng 2. -. 1. |]
          in
          let a0 = Random.State.float rng 40. -. 20. in
          List.sort compare (Core.Cert_tree.query_ids ct ~a0 ~a)
          = List.sort compare (Core.Partition_tree.query_halfspace pt ~a0 ~a))
        (List.init 8 Fun.id))

let test_output_sensitive_visits () =
  (* near-empty queries must visit O(depth) nodes, far below the plain
     tree's Θ(n^{2/3}) recursion *)
  let rng = Random.State.make [| 62 |] in
  let n = 32768 and block_size = 64 in
  let points = rand_points3 rng n in
  let stats = Emio.Io_stats.create () in
  let t = Core.Cert_tree.build ~stats ~block_size points in
  (* a plane below everything: T = 0 *)
  Emio.Io_stats.reset stats;
  let c = Core.Cert_tree.query_count t ~a0:(-100.) ~a:[| 0.; 0. |] in
  Alcotest.(check int) "empty answer" 0 c;
  let visited = Core.Cert_tree.last_visited_nodes t in
  if visited > 12 then
    Alcotest.failf "T=0 query visited %d nodes (want O(depth))" visited;
  (* a shallow plane with a small output *)
  let a = [| 0.3; -0.2 |] in
  let residuals =
    Array.map
      (fun p -> Point3.z p -. (a.(0) *. Point3.x p) -. (a.(1) *. Point3.y p))
      points
  in
  Array.sort Float.compare residuals;
  let a0 = residuals.(63) in
  (* T = 64 *)
  Emio.Io_stats.reset stats;
  let c = Core.Cert_tree.query_count t ~a0 ~a in
  Alcotest.(check bool) "small output" true (c >= 60 && c <= 70);
  let visited = Core.Cert_tree.last_visited_nodes t in
  let ios = Emio.Io_stats.reads stats in
  if visited > 80 then
    Alcotest.failf "T=64 query visited %d nodes" visited;
  if ios > 200 then Alcotest.failf "T=64 query used %d I/Os" ios

let test_space_overhead_bounded () =
  let rng = Random.State.make [| 63 |] in
  let n = 16384 and block_size = 64 in
  let points = rand_points3 rng n in
  let stats = Emio.Io_stats.create () in
  let t = Core.Cert_tree.build ~stats ~block_size points in
  let nb = n / block_size in
  let space = Core.Cert_tree.space_blocks t in
  if space > 6 * nb then
    Alcotest.failf "space %d blocks exceeds 6n = %d (certs: %d items)" space
      (6 * nb)
      (Core.Cert_tree.certificate_items t)

let test_tiny_inputs () =
  let stats = Emio.Io_stats.create () in
  let t = Core.Cert_tree.build ~stats ~block_size:4 [||] in
  Alcotest.(check int) "empty" 0 (Core.Cert_tree.query_count t ~a0:0. ~a:[| 0.; 0. |]);
  let t1 =
    Core.Cert_tree.build ~stats ~block_size:4 [| Point3.make 1. 2. 3. |]
  in
  Alcotest.(check int) "singleton hit" 1
    (Core.Cert_tree.query_count t1 ~a0:5. ~a:[| 0.; 0. |]);
  Alcotest.(check int) "singleton miss" 0
    (Core.Cert_tree.query_count t1 ~a0:0. ~a:[| 0.; 0. |])

let () =
  Alcotest.run "cert_tree"
    [
      ( "cert_tree",
        [
          Alcotest.test_case "oracle" `Quick test_oracle;
          QCheck_alcotest.to_alcotest prop_agrees_with_partition_tree;
          Alcotest.test_case "output-sensitive visits" `Slow
            test_output_sensitive_visits;
          Alcotest.test_case "space overhead" `Slow test_space_overhead_bounded;
          Alcotest.test_case "tiny inputs" `Quick test_tiny_inputs;
        ] );
    ]
