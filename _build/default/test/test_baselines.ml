(* Tests for the §1.2 baseline structures (linear scan, STR R-tree,
   grid file, quadtree) against the same oracle, the workload
   generators, and the §1.2 degradation claim itself. *)

open Geom

let oracle points ~slope ~icept =
  Array.fold_left
    (fun acc p ->
      if Point2.y p <= (slope *. Point2.x p) +. icept +. Eps.eps then acc + 1
      else acc)
    0 points

type impl = {
  name : string;
  build : Emio.Io_stats.t -> Point2.t array -> unit;
  count : slope:float -> icept:float -> int;
}

let make_impls block_size =
  let scan = ref None and rt = ref None and hrt = ref None and gf = ref None
  and qt = ref None in
  [
    {
      name = "linear_scan";
      build =
        (fun stats pts ->
          scan := Some (Baselines.Linear_scan.build ~stats ~block_size pts));
      count =
        (fun ~slope ~icept ->
          Baselines.Linear_scan.query_count (Option.get !scan) ~slope ~icept);
    };
    {
      name = "rtree";
      build =
        (fun stats pts -> rt := Some (Baselines.Rtree.build ~stats ~block_size pts));
      count =
        (fun ~slope ~icept ->
          Baselines.Rtree.query_count (Option.get !rt) ~slope ~icept);
    };
    {
      name = "hilbert-rtree";
      build =
        (fun stats pts ->
          hrt :=
            Some
              (Baselines.Rtree.build ~stats ~block_size
                 ~packing:Baselines.Rtree.Hilbert pts));
      count =
        (fun ~slope ~icept ->
          Baselines.Rtree.query_count (Option.get !hrt) ~slope ~icept);
    };
    {
      name = "grid_file";
      build =
        (fun stats pts ->
          gf := Some (Baselines.Grid_file.build ~stats ~block_size pts));
      count =
        (fun ~slope ~icept ->
          Baselines.Grid_file.query_count (Option.get !gf) ~slope ~icept);
    };
    {
      name = "quadtree";
      build =
        (fun stats pts ->
          qt := Some (Baselines.Quadtree.build ~stats ~block_size pts));
      count =
        (fun ~slope ~icept ->
          Baselines.Quadtree.query_count (Option.get !qt) ~slope ~icept);
    };
  ]

let test_all_match_oracle () =
  let rng = Workload.rng 1 in
  List.iter
    (fun points ->
      List.iter
        (fun impl ->
          let stats = Emio.Io_stats.create () in
          impl.build stats points;
          for _ = 1 to 20 do
            let slope, icept =
              Workload.halfplane_with_selectivity rng points
                ~fraction:(Random.State.float rng 1.)
            in
            let got = impl.count ~slope ~icept in
            let want = oracle points ~slope ~icept in
            if got <> want then
              Alcotest.failf "%s: got %d want %d" impl.name got want
          done)
        (make_impls 8))
    [
      Workload.uniform2 rng ~n:300 ~range:50.;
      Workload.clusters2 rng ~n:300 ~clusters:5 ~sigma:2. ~range:50.;
      Workload.diagonal2 rng ~n:300 ~jitter:0.1 ~range:50.;
      [||];
      [| Point2.make 1. 1. |];
    ]

let test_rtree_window () =
  let rng = Workload.rng 2 in
  let points = Workload.uniform2 rng ~n:500 ~range:10. in
  let stats = Emio.Io_stats.create () in
  let t = Baselines.Rtree.build ~stats ~block_size:8 points in
  for _ = 1 to 20 do
    let x0 = Random.State.float rng 16. -. 8. in
    let y0 = Random.State.float rng 16. -. 8. in
    let w =
      { Baselines.Rect.x0; y0; x1 = x0 +. 4.; y1 = y0 +. 4. }
    in
    let got = List.length (Baselines.Rtree.query_window t w) in
    let want =
      Array.fold_left
        (fun acc p -> if Baselines.Rect.contains w p then acc + 1 else acc)
        0 points
    in
    Alcotest.(check int) "window count" want got
  done

(* §1.2: on the diagonal adversary, the quadtree and R-tree degrade to
   Θ(n) I/Os even for tiny outputs, while the §3 structure stays at
   O(log_B n + t). *)
let test_sec12_degradation () =
  let rng = Workload.rng 3 in
  let n = 8192 and block_size = 32 in
  let points = Workload.diagonal2 rng ~n ~jitter:0.01 ~range:100. in
  let n_blocks = n / block_size in
  (* query: slightly rotated diagonal through the origin -> half the
     points below, but the boundary hugs the whole diagonal... use a
     slightly LOWERED parallel diagonal for a near-empty answer *)
  let slope = 1.0 and icept = -0.02 in
  let stats_qt = Emio.Io_stats.create () in
  let qt = Baselines.Quadtree.build ~stats:stats_qt ~block_size points in
  Emio.Io_stats.reset stats_qt;
  let t_qt = Baselines.Quadtree.query_count qt ~slope ~icept in
  let ios_qt = Emio.Io_stats.reads stats_qt in
  let stats_h2 = Emio.Io_stats.create () in
  let h2 = Core.Halfspace2d.build ~stats:stats_h2 ~block_size points in
  Emio.Io_stats.reset stats_h2;
  let t_h2 = Core.Halfspace2d.query_count h2 ~slope ~icept in
  let ios_h2 = Emio.Io_stats.reads stats_h2 in
  Alcotest.(check int) "same answer" t_qt t_h2;
  (* quadtree must visit a constant fraction of its blocks; the §3
     structure a polylog number *)
  if ios_qt < n_blocks / 8 then
    Alcotest.failf "quadtree got away with %d I/Os (n=%d blocks)" ios_qt
      n_blocks;
  if ios_h2 > 60 + (8 * (t_h2 / block_size)) then
    Alcotest.failf "halfspace2d used %d I/Os for t=%d" ios_h2 t_h2;
  if ios_h2 * 4 > ios_qt then
    Alcotest.failf "expected clear separation: h2=%d qt=%d" ios_h2 ios_qt

(* workload selectivity control *)
let test_selectivity_targets () =
  let rng = Workload.rng 4 in
  let points = Workload.uniform2 rng ~n:2000 ~range:10. in
  List.iter
    (fun f ->
      let slope, icept =
        Workload.halfplane_with_selectivity rng points ~fraction:f
      in
      let got = float_of_int (oracle points ~slope ~icept) /. 2000. in
      if Float.abs (got -. f) > 0.02 then
        Alcotest.failf "fraction %g produced %g" f got)
    [ 0.01; 0.1; 0.5; 0.9 ]

let () =
  Alcotest.run "baselines"
    [
      ( "baselines",
        [
          Alcotest.test_case "all match oracle" `Quick test_all_match_oracle;
          Alcotest.test_case "rtree window" `Quick test_rtree_window;
          Alcotest.test_case "sec 1.2 degradation" `Slow test_sec12_degradation;
        ] );
      ( "workload",
        [
          Alcotest.test_case "selectivity targets" `Quick
            test_selectivity_targets;
        ] );
    ]
