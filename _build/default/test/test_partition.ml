(* Tests for the d-dimensional cells, the balanced partitioners
   (Theorem 5.1 role), the §5 partition tree (Theorem 5.2), the §6
   shallow tree (Theorem 6.3) and tradeoff structure (Theorem 6.1). *)

open Partition

let rand_points rng ~dim ~n ~range =
  Array.init n (fun _ ->
      Array.init dim (fun _ -> Random.State.float rng (2. *. range) -. range))

(* --- cells ------------------------------------------------------------ *)

let test_constr_halfspace () =
  (* y <= 1 + 2x in the plane *)
  let c = Cells.constr_of_halfspace ~dim:2 ~a0:1. ~a:[| 2. |] in
  Alcotest.(check bool) "inside" true (Cells.satisfies c [| 0.; 0.5 |]);
  Alcotest.(check bool) "boundary" true (Cells.satisfies c [| 1.; 3. |]);
  Alcotest.(check bool) "outside" false (Cells.satisfies c [| 0.; 2. |])

let test_classify_box () =
  let c = Cells.constr_of_halfspace ~dim:2 ~a0:0. ~a:[| 0. |] in
  (* y <= 0 *)
  let box lo hi = Cells.Box { lo; hi } in
  Alcotest.(check bool) "below" true
    (Cells.classify (box [| 0.; -2. |] [| 1.; -1. |]) c = Cells.Inside);
  Alcotest.(check bool) "above" true
    (Cells.classify (box [| 0.; 1. |] [| 1.; 2. |]) c = Cells.Outside);
  Alcotest.(check bool) "crossing" true
    (Cells.classify (box [| 0.; -1. |] [| 1.; 1. |]) c = Cells.Crossing)

let test_classify_simplex () =
  let c = Cells.constr_of_halfspace ~dim:2 ~a0:0. ~a:[| 0. |] in
  let tri a b d = Cells.Simplex [| a; b; d |] in
  Alcotest.(check bool) "below" true
    (Cells.classify (tri [| 0.; -3. |] [| 1.; -1. |] [| 2.; -2. |]) c
    = Cells.Inside);
  Alcotest.(check bool) "crossing" true
    (Cells.classify (tri [| 0.; -1. |] [| 1.; 1. |] [| 2.; -1. |]) c
    = Cells.Crossing)

let test_simplex_contains () =
  let tri = Cells.Simplex [| [| 0.; 0. |]; [| 4.; 0. |]; [| 0.; 4. |] |] in
  Alcotest.(check bool) "inside" true (Cells.cell_contains tri [| 1.; 1. |]);
  Alcotest.(check bool) "outside" false (Cells.cell_contains tri [| 3.; 3. |]);
  Alcotest.(check bool) "vertex" true (Cells.cell_contains tri [| 0.; 0. |])

let prop_bounding_simplex_contains =
  QCheck.Test.make ~count:200 ~name:"bounding simplex contains its points"
    QCheck.(
      pair (int_range 2 4)
        (pair small_int (list_of_size Gen.(1 -- 40) (float_range (-10.) 10.))))
    (fun (dim, (seed, _)) ->
      let rng = Random.State.make [| seed |] in
      let pts = rand_points rng ~dim ~n:(5 + Random.State.int rng 30) ~range:8. in
      let s = Cells.bounding_simplex ~dim pts in
      Array.for_all (fun p -> Cells.cell_contains s p) pts)

(* --- partitioners ----------------------------------------------------- *)

let check_partition name parts n r =
  (* disjoint cover *)
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun (_, g) ->
      Array.iter
        (fun i ->
          if Hashtbl.mem seen i then Alcotest.failf "%s: %d twice" name i;
          Hashtbl.add seen i ())
        g)
    parts;
  Alcotest.(check int) (name ^ ": covers all") n (Hashtbl.length seen);
  Alcotest.(check bool)
    (name ^ ": balanced")
    true
    (Partitioner.is_balanced parts ~n ~r)

let test_partitioners_cover_and_balance () =
  let rng = Random.State.make [| 5 |] in
  List.iter
    (fun dim ->
      let n = 500 in
      let points = rand_points rng ~dim ~n ~range:10. in
      List.iter
        (fun r ->
          check_partition "kd" (Partitioner.kd ~points ~r) n r;
          check_partition "simplicial" (Partitioner.simplicial ~points ~r) n r;
          let sh = Partitioner.shallow ~points ~r in
          (* the shallow partitioner trades balance for depth bands:
             only require disjoint cover *)
          let seen = Hashtbl.create 64 in
          Array.iter
            (fun (_, g) -> Array.iter (fun i -> Hashtbl.add seen i ()) g)
            sh;
          Alcotest.(check int) "shallow covers" n (Hashtbl.length seen))
        [ 4; 16; 64 ])
    [ 2; 3; 4 ]

let test_points_inside_their_cells () =
  let rng = Random.State.make [| 6 |] in
  let points = rand_points rng ~dim:3 ~n:300 ~range:10. in
  List.iter
    (fun parts ->
      Array.iter
        (fun (cell, g) ->
          Array.iter
            (fun i ->
              if not (Cells.cell_contains cell points.(i)) then
                Alcotest.fail "point outside its cell")
            g)
        parts)
    [
      Partitioner.kd ~points ~r:16;
      Partitioner.simplicial ~points ~r:16;
      Partitioner.shallow ~points ~r:16;
    ]

(* Theorem 5.1's crossing bound for the kd partitioner, measured. *)
let test_kd_crossing_bound () =
  let rng = Random.State.make [| 7 |] in
  List.iter
    (fun dim ->
      let points = rand_points rng ~dim ~n:2048 ~range:10. in
      let r = 64 in
      let parts = Partitioner.kd ~points ~r in
      let cells = Array.map fst parts in
      let worst = ref 0 in
      for _ = 1 to 50 do
        let a = Array.init (dim - 1) (fun _ -> Random.State.float rng 2. -. 1.) in
        let a0 = Random.State.float rng 10. -. 5. in
        let c = Cells.constr_of_halfspace ~dim ~a0 ~a in
        worst := max !worst (Cells.crossing_number cells c)
      done;
      let bound =
        (* alpha r^{1-1/d} with a generous alpha = 4 *)
        int_of_float
          (4. *. Float.pow (float_of_int r) (1. -. (1. /. float_of_int dim)))
      in
      if !worst > bound then
        Alcotest.failf "dim %d: worst crossing %d > %d" dim !worst bound)
    [ 2; 3; 4 ]

(* --- partition tree (§5) ---------------------------------------------- *)

let brute_halfspace points ~a0 ~a =
  let dim = Array.length points.(0) in
  let c = Cells.constr_of_halfspace ~dim ~a0 ~a in
  List.filter (fun i -> Cells.satisfies c points.(i))
    (List.init (Array.length points) Fun.id)

let test_partition_tree_oracle () =
  let rng = Random.State.make [| 8 |] in
  List.iter
    (fun dim ->
      List.iter
        (fun kind ->
          let points = rand_points rng ~dim ~n:700 ~range:10. in
          let stats = Emio.Io_stats.create () in
          let t =
            Core.Partition_tree.build ~stats ~block_size:8 ~partitioner:kind
              ~dim points
          in
          for _ = 1 to 25 do
            let a =
              Array.init (dim - 1) (fun _ -> Random.State.float rng 2. -. 1.)
            in
            let a0 = Random.State.float rng 16. -. 8. in
            let got =
              List.sort compare (Core.Partition_tree.query_halfspace t ~a0 ~a)
            in
            let want = brute_halfspace points ~a0 ~a in
            if got <> want then
              Alcotest.failf "dim %d: %d vs %d results" dim (List.length got)
                (List.length want)
          done)
        [ Core.Partition_tree.Kd; Core.Partition_tree.Simplicial ])
    [ 2; 3; 4 ]

let test_partition_tree_simplex_query () =
  let rng = Random.State.make [| 9 |] in
  let points = rand_points rng ~dim:2 ~n:600 ~range:10. in
  let stats = Emio.Io_stats.create () in
  let t = Core.Partition_tree.build ~stats ~block_size:8 ~dim:2 points in
  for _ = 1 to 25 do
    (* a random triangle as three halfplane constraints *)
    let cx = Random.State.float rng 10. -. 5.
    and cy = Random.State.float rng 10. -. 5. in
    let verts =
      Array.init 3 (fun i ->
          let ang =
            (float_of_int i *. 2.1)
            +. Random.State.float rng 1.
          in
          let rad = 1. +. Random.State.float rng 6. in
          [| cx +. (rad *. cos ang); cy +. (rad *. sin ang) |])
    in
    (* constraint for edge (i, i+1) keeping the third vertex inside *)
    let constrs =
      List.init 3 (fun i ->
          let p = verts.(i) and q = verts.((i + 1) mod 3) in
          let o = verts.((i + 2) mod 3) in
          let w = [| q.(1) -. p.(1); p.(0) -. q.(0) |] in
          let b = -.((w.(0) *. p.(0)) +. (w.(1) *. p.(1))) in
          let v = (w.(0) *. o.(0)) +. (w.(1) *. o.(1)) +. b in
          if v <= 0. then { Cells.w; b }
          else { Cells.w = [| -.w.(0); -.w.(1) |]; b = -.b })
    in
    let got = List.sort compare (Core.Partition_tree.query_simplex t constrs) in
    let want =
      List.filter
        (fun i -> List.for_all (fun c -> Cells.satisfies c points.(i)) constrs)
        (List.init (Array.length points) Fun.id)
    in
    if got <> want then
      Alcotest.failf "simplex: got %d want %d" (List.length got)
        (List.length want)
  done

let test_partition_tree_space_linear () =
  let rng = Random.State.make [| 10 |] in
  let points = rand_points rng ~dim:3 ~n:8192 ~range:10. in
  let stats = Emio.Io_stats.create () in
  let block_size = 32 in
  let t = Core.Partition_tree.build ~stats ~block_size ~dim:3 points in
  let n = (8192 + block_size - 1) / block_size in
  Alcotest.(check bool) "O(n) blocks" true
    (Core.Partition_tree.space_blocks t <= 4 * n)

let test_partition_tree_visit_bound () =
  (* Theorem 5.2: the recursion visits O(n^{1-1/d}) nodes. *)
  let rng = Random.State.make [| 14 |] in
  let dim = 2 in
  let points = rand_points rng ~dim ~n:16384 ~range:10. in
  let stats = Emio.Io_stats.create () in
  let block_size = 32 in
  let t = Core.Partition_tree.build ~stats ~block_size ~dim points in
  let n = 16384 / block_size in
  let worst = ref 0 in
  for _ = 1 to 30 do
    let a = [| Random.State.float rng 2. -. 1. |] in
    let a0 = Random.State.float rng 16. -. 8. in
    ignore (Core.Partition_tree.query_halfspace t ~a0 ~a);
    worst := max !worst (Core.Partition_tree.last_visited_nodes t)
  done;
  let bound = int_of_float (12. *. sqrt (float_of_int n)) in
  if !worst > bound then Alcotest.failf "visited %d > %d" !worst bound

(* --- shallow tree (§6) ------------------------------------------------ *)

let test_shallow_tree_oracle () =
  let rng = Random.State.make [| 15 |] in
  List.iter
    (fun dim ->
      let points = rand_points rng ~dim ~n:700 ~range:10. in
      let stats = Emio.Io_stats.create () in
      let t = Core.Shallow_tree.build ~stats ~block_size:8 ~dim points in
      for _ = 1 to 25 do
        let a = Array.init (dim - 1) (fun _ -> Random.State.float rng 2. -. 1.) in
        let a0 = Random.State.float rng 16. -. 8. in
        let got =
          List.sort compare (Core.Shallow_tree.query_halfspace t ~a0 ~a)
        in
        let want = brute_halfspace points ~a0 ~a in
        if got <> want then
          Alcotest.failf "shallow dim %d: got %d want %d" dim
            (List.length got) (List.length want)
      done)
    [ 2; 3 ]

let test_shallow_tree_shallow_queries_stay_shallow () =
  let rng = Random.State.make [| 16 |] in
  let points = rand_points rng ~dim:3 ~n:4096 ~range:10. in
  let stats = Emio.Io_stats.create () in
  let t = Core.Shallow_tree.build ~stats ~block_size:16 ~dim:3 points in
  (* a very shallow horizontal query: z <= -9.8 (few points below) *)
  let res = Core.Shallow_tree.query_halfspace t ~a0:(-9.8) ~a:[| 0.; 0. |] in
  Alcotest.(check bool) "small output" true (List.length res < 256);
  Alcotest.(check bool) "no secondary bailout for shallow query" true
    (Core.Shallow_tree.last_secondary_uses t <= 1)

(* --- tradeoff structure (§6.1) ---------------------------------------- *)

let test_tradeoff3d_oracle () =
  let rng = Random.State.make [| 17 |] in
  let points =
    Array.init 600 (fun _ ->
        Geom.Point3.make
          (Random.State.float rng 20. -. 10.)
          (Random.State.float rng 20. -. 10.)
          (Random.State.float rng 20. -. 10.))
  in
  let stats = Emio.Io_stats.create () in
  let t =
    Core.Tradeoff3d.build ~stats ~block_size:8 ~a:1.5
      ~clip:(-50., -50., 50., 50.) points
  in
  for _ = 1 to 25 do
    let a = Random.State.float rng 2. -. 1.
    and b = Random.State.float rng 2. -. 1.
    and c = Random.State.float rng 30. -. 15. in
    let got = List.sort compare (Core.Tradeoff3d.query_ids t ~a ~b ~c) in
    let want =
      List.filter
        (fun i ->
          let p = points.(i) in
          Geom.Point3.z p
          <= (a *. Geom.Point3.x p) +. (b *. Geom.Point3.y p) +. c
             +. Geom.Eps.eps)
        (List.init (Array.length points) Fun.id)
    in
    if got <> want then
      Alcotest.failf "tradeoff: got %d want %d" (List.length got)
        (List.length want)
  done

let () =
  Alcotest.run "partition"
    [
      ( "cells",
        [
          Alcotest.test_case "halfspace constr" `Quick test_constr_halfspace;
          Alcotest.test_case "classify box" `Quick test_classify_box;
          Alcotest.test_case "classify simplex" `Quick test_classify_simplex;
          Alcotest.test_case "simplex contains" `Quick test_simplex_contains;
          QCheck_alcotest.to_alcotest prop_bounding_simplex_contains;
        ] );
      ( "partitioner",
        [
          Alcotest.test_case "cover and balance" `Quick
            test_partitioners_cover_and_balance;
          Alcotest.test_case "points inside cells" `Quick
            test_points_inside_their_cells;
          Alcotest.test_case "kd crossing bound (Thm 5.1)" `Quick
            test_kd_crossing_bound;
        ] );
      ( "partition_tree",
        [
          Alcotest.test_case "halfspace oracle" `Quick
            test_partition_tree_oracle;
          Alcotest.test_case "simplex oracle" `Quick
            test_partition_tree_simplex_query;
          Alcotest.test_case "linear space" `Quick
            test_partition_tree_space_linear;
          Alcotest.test_case "visit bound (Thm 5.2)" `Slow
            test_partition_tree_visit_bound;
        ] );
      ( "shallow_tree",
        [
          Alcotest.test_case "halfspace oracle" `Quick test_shallow_tree_oracle;
          Alcotest.test_case "shallow stays shallow" `Quick
            test_shallow_tree_shallow_queries_stay_shallow;
        ] );
      ( "tradeoff3d",
        [ Alcotest.test_case "halfspace oracle" `Quick test_tradeoff3d_oracle ]
      );
    ]
