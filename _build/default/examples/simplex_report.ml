(* Polygonal region reporting via simplex queries (§5 remark (i)):
   "several complex queries can be viewed as reporting all points lying
   within a given convex query region ... the intersection of a number
   of halfspace range queries" (§1.1).

   The d-dimensional partition tree answers each simplex query in
   O(n^{1-1/d+eps} + t) I/Os with linear space.  Here: customers inside
   a triangular delivery zone, and a 4-dimensional feature-space screen
   (the SQL WHERE clause as four linear constraints).

   Run with:  dune exec examples/simplex_report.exe *)

open Partition

let () =
  let rng = Workload.rng 5 in
  let block_size = 64 in

  (* --- 2-D: a triangular delivery zone ---------------------------- *)
  let n = 50_000 in
  let customers = Workload.uniform_d rng ~n ~dim:2 ~range:50. in
  let stats = Emio.Io_stats.create () in
  let tree =
    Core.Partition_tree.build ~stats ~block_size ~dim:2 customers
  in
  Printf.printf "partition tree over %d customers: %d blocks (linear space)\n"
    n
    (Core.Partition_tree.space_blocks tree);
  (* triangle with corners (0,0), (40,5), (10,35) as three constraints
     w·p + b <= 0 *)
  let edge (px, py) (qx, qy) (ox, oy) =
    let w = [| qy -. py; px -. qx |] in
    let b = -.((w.(0) *. px) +. (w.(1) *. py)) in
    let v = (w.(0) *. ox) +. (w.(1) *. oy) +. b in
    if v <= 0. then { Cells.w; b } else { Cells.w = [| -.w.(0); -.w.(1) |]; b = -.b }
  in
  let a = (0., 0.) and bb = (40., 5.) and c = (10., 35.) in
  let zone = [ edge a bb c; edge bb c a; edge c a bb ] in
  Emio.Io_stats.reset stats;
  let inside = Core.Partition_tree.query_simplex tree zone in
  Printf.printf
    "delivery zone triangle: %d customers inside, %d I/Os, %d nodes visited\n"
    (List.length inside) (Emio.Io_stats.reads stats)
    (Core.Partition_tree.last_visited_nodes tree);

  (* --- 4-D: a conjunctive linear screen ---------------------------- *)
  let n4 = 20_000 in
  let rows = Workload.uniform_d rng ~n:n4 ~dim:4 ~range:10. in
  let stats4 = Emio.Io_stats.create () in
  let tree4 = Core.Partition_tree.build ~stats:stats4 ~block_size ~dim:4 rows in
  (* WHERE x4 <= 0.5*x1 + x2 - x3 + 2  AND  x4 >= x1 - 3  AND x2 <= 5 *)
  let screen =
    [
      Cells.constr_of_halfspace ~dim:4 ~a0:2. ~a:[| 0.5; 1.; -1. |];
      { Cells.w = [| 1.; 0.; 0.; -1. |]; b = -3. };
      { Cells.w = [| 0.; 1.; 0.; 0. |]; b = -5. };
    ]
  in
  Emio.Io_stats.reset stats4;
  let hits = Core.Partition_tree.query_simplex tree4 screen in
  Printf.printf
    "4-D linear screen: %d of %d rows match, %d I/Os (n = %d blocks)\n"
    (List.length hits) n4
    (Emio.Io_stats.reads stats4)
    ((n4 + block_size - 1) / block_size);
  (* verify against a scan *)
  let expected =
    Array.fold_left
      (fun acc p ->
        if List.for_all (fun cn -> Cells.satisfies cn p) screen then acc + 1
        else acc)
      0 rows
  in
  assert (List.length hits = expected)
