(* The paper's §7 open problems, exercised on a road-network scenario:

   1. (open problem 2) Which existing roads would a proposed new route
      cross?  — segment intersection searching, answered by the
      three-level partition tree (Core.Seg_intersect).
   2. (open problem 1 / §5 remark (iii)) Incident reports arrive and
      get resolved continuously; dispatch wants all active incidents
      inside a triangular coverage zone.  — a dynamized partition tree
      (Core.Dynamic_tree) with inserts, deletes, and simplex queries.

   Run with:  dune exec examples/road_network.exe *)

open Geom

let () =
  let rng = Workload.rng 314 in
  let block_size = 32 in

  (* --- a synthetic road network: 20k short segments --------------- *)
  let n_roads = 20_000 in
  let roads =
    Array.init n_roads (fun _ ->
        let cx = Random.State.float rng 200. -. 100.
        and cy = Random.State.float rng 200. -. 100. in
        let len = 0.5 +. Random.State.float rng 3. in
        let ang = Random.State.float rng (2. *. Float.pi) in
        ( Point2.make cx cy,
          Point2.make (cx +. (len *. cos ang)) (cy +. (len *. sin ang)) ))
  in
  let stats = Emio.Io_stats.create () in
  let net = Core.Seg_intersect.build ~stats ~block_size roads in
  Printf.printf
    "road network: %d segments, %d blocks (multi-level partition tree)\n"
    n_roads
    (Core.Seg_intersect.space_blocks net);

  let proposals =
    [
      (Point2.make (-80.) (-80.), Point2.make 80. 80.);
      (Point2.make (-50.) 60., Point2.make 70. (-30.));
      (Point2.make 0. 0., Point2.make 5. 2.);
    ]
  in
  List.iter
    (fun (a, b) ->
      Emio.Io_stats.reset stats;
      let crossed = Core.Seg_intersect.query net a b in
      Printf.printf
        "route %s -> %s crosses %4d roads  (%5d I/Os; scan = %d blocks)\n"
        (Format.asprintf "%a" Point2.pp a)
        (Format.asprintf "%a" Point2.pp b)
        (List.length crossed)
        (Emio.Io_stats.reads stats)
        ((n_roads + block_size - 1) / block_size))
    proposals;

  (* --- live incidents: insert/delete + zone queries ----------------- *)
  let stats2 = Emio.Io_stats.create () in
  let incidents =
    Core.Dynamic_tree.create ~stats:stats2 ~block_size ~dim:2 ()
  in
  let open_incident () =
    Core.Dynamic_tree.insert incidents
      [| Random.State.float rng 200. -. 100.; Random.State.float rng 200. -. 100. |]
  in
  let live = ref [] in
  for _ = 1 to 2000 do
    live := open_incident () :: !live;
    (* resolve a random older incident half the time *)
    if Random.State.bool rng then begin
      match !live with
      | h :: rest when List.length rest > 0 ->
          ignore (Core.Dynamic_tree.delete incidents h);
          live := rest
      | _ -> ()
    end
  done;
  Printf.printf
    "\nincident store: %d live after 2000 opens + resolutions; %d buckets, %d rebuilds\n"
    (Core.Dynamic_tree.length incidents)
    (Core.Dynamic_tree.buckets incidents)
    (Core.Dynamic_tree.rebuilds incidents);
  (* dispatch zone: triangle (-60,-60) (60,-60) (0,80) *)
  let edge (px, py) (qx, qy) (ox, oy) =
    let w = [| qy -. py; px -. qx |] in
    let b = -.((w.(0) *. px) +. (w.(1) *. py)) in
    let v = (w.(0) *. ox) +. (w.(1) *. oy) +. b in
    if v <= 0. then { Partition.Cells.w; b }
    else { Partition.Cells.w = [| -.w.(0); -.w.(1) |]; b = -.b }
  in
  let a = (-60., -60.) and b = (60., -60.) and c = (0., 80.) in
  let zone = [ edge a b c; edge b c a; edge c a b ] in
  Emio.Io_stats.reset stats2;
  let in_zone = Core.Dynamic_tree.query_simplex incidents zone in
  Printf.printf "dispatch zone holds %d live incidents (%d I/Os)\n"
    (List.length in_zone)
    (Emio.Io_stats.reads stats2)
