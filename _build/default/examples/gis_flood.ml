(* GIS scenario (the intro's motivating domain): N sensor stations with
   coordinates (x, y) and elevation z.  A flood model predicts an
   inundation surface z = a x + b y + c; every station below the
   surface must be alerted.

   That is a 3-dimensional linear-constraint query, answered by the §4
   structure (Theorem 4.4) in O(log_B n + t) expected I/Os instead of
   the Θ(n) a full scan needs.

   Run with:  dune exec examples/gis_flood.exe *)

open Geom

let () =
  let n = 20_000 and block_size = 64 in
  let rng = Workload.rng 2024 in
  (* gently sloped terrain with hills *)
  let stations =
    Array.init n (fun _ ->
        let x = Random.State.float rng 100. -. 50.
        and y = Random.State.float rng 100. -. 50. in
        let z =
          (0.02 *. x) -. (0.01 *. y)
          +. (3. *. sin (x /. 9.)) +. (2. *. cos (y /. 7.))
          +. Random.State.float rng 1.
        in
        Point3.make x y z)
  in
  let stats = Emio.Io_stats.create () in
  let index =
    Core.Halfspace3d.build ~stats ~block_size ~clip:(-10., -10., 10., 10.)
      stations
  in
  Printf.printf
    "Indexed %d stations in the §4 structure: %d blocks (n = %d data blocks)\n"
    n
    (Core.Halfspace3d.space_blocks index)
    ((n + block_size - 1) / block_size);

  let surfaces =
    [
      ("flash flood (low plain)", 0.02, -0.01, -4.0);
      ("moderate flood", 0.02, -0.01, -2.0);
      ("major flood", 0.02, -0.01, 0.5);
    ]
  in
  List.iter
    (fun (name, a, b, c) ->
      Emio.Io_stats.reset stats;
      let alerted = Core.Halfspace3d.query_count index ~a ~b ~c in
      let ios = Emio.Io_stats.reads stats in
      Printf.printf
        "%-26s z <= %.2fx %+.2fy %+.1f : %5d stations alerted, %4d I/Os (scan: %d)\n"
        name a b c alerted ios
        ((n + block_size - 1) / block_size))
    surfaces
