(* k-nearest-neighbor search via the lifting map (Theorem 4.3): find
   the k stores closest to a customer in O(log_B n + k/B) expected
   I/Os.  The lift z = a² + b² - 2ax - 2by turns "k nearest in the
   plane" into "k lowest planes along a vertical line", which the §4.1
   structure answers directly.

   Run with:  dune exec examples/nearest_stores.exe *)

open Geom

let () =
  let n = 10_000 and block_size = 64 in
  let rng = Workload.rng 7 in
  let stores = Workload.clusters2 rng ~n ~clusters:12 ~sigma:3. ~range:40. in
  let stats = Emio.Io_stats.create () in
  let index =
    Core.Knn.build ~stats ~block_size ~clip:(-60., -60., 60., 60.) stores
  in
  Printf.printf "Indexed %d stores (%d blocks, Theorem 4.3 structure)\n" n
    (Core.Knn.space_blocks index);
  let customers =
    [ Point2.make 0. 0.; Point2.make 25. (-12.); Point2.make (-38.) 31. ]
  in
  List.iter
    (fun customer ->
      Emio.Io_stats.reset stats;
      let nearest = Core.Knn.nearest index customer ~k:5 in
      let ios = Emio.Io_stats.reads stats in
      Printf.printf "\ncustomer at %s  (5-NN in %d I/Os):\n"
        (Format.asprintf "%a" Point2.pp customer)
        ios;
      List.iter
        (fun (store, dist) ->
          Printf.printf "  store %-22s at distance %6.3f\n"
            (Format.asprintf "%a" Point2.pp store)
            dist)
        nearest;
      (* sanity: distances are sorted *)
      let ds = List.map snd nearest in
      assert (ds = List.sort Float.compare ds))
    customers
