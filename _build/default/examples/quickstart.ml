(* Quickstart: the paper's own motivating query (§1.1).

   Given a relation Companies(Name, PricePerShare, EarningsPerShare),
   find all companies whose price/earnings ratio is below 10:

     SELECT Name FROM Companies
     WHERE (PricePerShare - 10 * EarningsPerShare < 0)

   Interpreting (EarningsPerShare, PricePerShare) as planar points,
   this is the halfspace query  y <= 10 x  answered by the optimal §3
   structure in O(log_B n + t) I/Os.

   Run with:  dune exec examples/quickstart.exe *)

open Geom

let companies =
  [|
    ("DukeSoft", 4.2, 0.90);
    ("ArrangeCo", 18.0, 1.20);
    ("LevelWorks", 55.0, 7.10);
    ("ClusterIO", 12.0, 1.10);
    ("EnvelopeInc", 31.0, 2.80);
    ("DualPoint", 9.0, 1.50);
    ("HorizonLtd", 80.0, 6.20);
    ("SampleNet", 6.5, 0.70);
  |]

let () =
  let points =
    Array.map (fun (_, price, earnings) -> Point2.make earnings price) companies
  in
  let stats = Emio.Io_stats.create () in
  let index = Core.Halfspace2d.build ~stats ~block_size:4 points in
  Printf.printf "Built the §3 structure over %d companies (%d blocks, %d write I/Os)\n"
    (Array.length companies)
    (Core.Halfspace2d.space_blocks index)
    (Emio.Io_stats.writes stats);
  Emio.Io_stats.reset stats;
  (* PricePerShare <= 10 * EarningsPerShare, i.e. y <= 10 x *)
  let hits = Core.Halfspace2d.query index ~slope:10. ~icept:0. in
  Printf.printf "\nCompanies with P/E < 10  (query: y <= 10x, %d read I/Os):\n"
    (Emio.Io_stats.reads stats);
  List.iter
    (fun p ->
      Array.iter
        (fun (name, price, earnings) ->
          if Point2.equal p (Point2.make earnings price) then
            Printf.printf "  %-12s price=%5.2f earnings=%4.2f  P/E=%5.2f\n"
              name price earnings (price /. earnings))
        companies)
    hits;
  (* cross-check against the obvious scan *)
  let expected =
    Array.fold_left
      (fun acc (_, price, earnings) ->
        if price <= 10. *. earnings then acc + 1 else acc)
      0 companies
  in
  assert (List.length hits = expected);
  Printf.printf "\n%d of %d companies pass the screen.\n" expected
    (Array.length companies)
