(* The §1.2 story, live: heuristic spatial indexes answer halfplane
   queries well on uniform data but degrade to Θ(n) I/Os when N points
   hug a diagonal line and the query line is a slight perturbation of
   it.  The §3 structure keeps its O(log_B n + t) guarantee on both.

   Run with:  dune exec examples/adversarial_showdown.exe *)

let run_workload name points ~slope ~icept ~block_size =
  let n_blocks = (Array.length points + block_size - 1) / block_size in
  Printf.printf "\n== %s (N=%d points, n=%d blocks) ==\n" name
    (Array.length points) n_blocks;
  Printf.printf "query: y <= %gx %+g\n" slope icept;
  let row name ios t =
    Printf.printf "  %-14s %6d I/Os   (t = %d reported)\n" name ios t
  in
  let stats = Emio.Io_stats.create () in
  let scan = Baselines.Linear_scan.build ~stats ~block_size points in
  Emio.Io_stats.reset stats;
  let t = Baselines.Linear_scan.query_count scan ~slope ~icept in
  row "linear scan" (Emio.Io_stats.reads stats) t;
  let stats = Emio.Io_stats.create () in
  let rt = Baselines.Rtree.build ~stats ~block_size points in
  Emio.Io_stats.reset stats;
  let t = Baselines.Rtree.query_count rt ~slope ~icept in
  row "R-tree (STR)" (Emio.Io_stats.reads stats) t;
  let stats = Emio.Io_stats.create () in
  let qt = Baselines.Quadtree.build ~stats ~block_size points in
  Emio.Io_stats.reset stats;
  let t = Baselines.Quadtree.query_count qt ~slope ~icept in
  row "quadtree" (Emio.Io_stats.reads stats) t;
  let stats = Emio.Io_stats.create () in
  let gf = Baselines.Grid_file.build ~stats ~block_size points in
  Emio.Io_stats.reset stats;
  let t = Baselines.Grid_file.query_count gf ~slope ~icept in
  row "grid file" (Emio.Io_stats.reads stats) t;
  let stats = Emio.Io_stats.create () in
  let h2 = Core.Halfspace2d.build ~stats ~block_size points in
  Emio.Io_stats.reset stats;
  let t = Core.Halfspace2d.query_count h2 ~slope ~icept in
  row "§3 structure" (Emio.Io_stats.reads stats) t

let () =
  let n = 16_384 and block_size = 64 in
  let rng = Workload.rng 99 in
  (* friendly case: uniform points, shallow query *)
  let uniform = Workload.uniform2 rng ~n ~range:100. in
  let slope, icept =
    Workload.halfplane_with_selectivity rng uniform ~fraction:0.01
  in
  run_workload "uniform points" uniform ~slope ~icept ~block_size;
  (* adversarial case: §1.2's diagonal construction *)
  let diagonal = Workload.diagonal2 rng ~n ~jitter:0.01 ~range:100. in
  run_workload "diagonal adversary (§1.2)" diagonal ~slope:1.0 ~icept:(-0.02)
    ~block_size;
  print_newline ()
