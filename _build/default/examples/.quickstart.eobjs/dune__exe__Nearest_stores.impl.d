examples/nearest_stores.ml: Core Emio Float Format Geom List Point2 Printf Workload
