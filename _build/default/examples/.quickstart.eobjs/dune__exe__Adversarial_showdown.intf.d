examples/adversarial_showdown.mli:
