examples/nearest_stores.mli:
