examples/quickstart.ml: Array Core Emio Geom List Point2 Printf
