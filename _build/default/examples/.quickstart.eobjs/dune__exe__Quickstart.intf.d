examples/quickstart.mli:
