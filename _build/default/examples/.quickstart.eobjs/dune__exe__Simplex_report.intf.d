examples/simplex_report.mli:
