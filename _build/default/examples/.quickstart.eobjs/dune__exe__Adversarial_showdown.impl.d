examples/adversarial_showdown.ml: Array Baselines Core Emio Printf Workload
