examples/road_network.ml: Array Core Emio Float Format Geom List Partition Point2 Printf Random Workload
