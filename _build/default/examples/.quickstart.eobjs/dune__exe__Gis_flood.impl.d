examples/gis_flood.ml: Array Core Emio Geom List Point3 Printf Random Workload
