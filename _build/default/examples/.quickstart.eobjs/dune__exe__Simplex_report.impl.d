examples/simplex_report.ml: Array Cells Core Emio List Partition Printf Workload
