examples/gis_flood.mli:
