(* lcsearch: command-line front end for the library.

   Every structure subcommand goes through the Lcsearch_index registry:
   `-s/--structure` accepts any registered name, and snapshots reopen
   by looking their header kind up in the registry — no per-structure
   dispatch lives here.

   Subcommands:
     info    — the paper's Table 1 and what this repo implements
     list    — the structure registry (names, dims, Table-1 bounds)
     run     — build a structure over a generated workload, run queries,
               and report I/O statistics
     sweep   — sweep N and print scaling rows for one structure
     build   — build a structure and persist it to a snapshot file
     query   — reopen a snapshot in this (fresh) process and query it
     inspect — print a snapshot file's header
     insert  — add points to a dynamic (--dynamic) snapshot in place
     delete  — tombstone points in a dynamic snapshot in place
     churn   — apply a mixed update stream, optionally oracle-checked *)

open Cmdliner
module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads
module Query_engine = Lcsearch_index.Query_engine
module Par = Lcsearch_index.Par
module Shard = Lcsearch_index.Shard
module Lsm = Lcsearch_index.Lsm

let structure_conv =
  let parse name =
    match Registry.find name with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown structure %S (known: %s)" name
                (String.concat ", " (Registry.names ()))))
  in
  let print ppf (module M : Index.S) = Format.pp_print_string ppf M.name in
  Arg.conv (parse, print)

let workload_conv =
  Arg.enum
    [
      ("uniform", Workloads.Uniform);
      ("clusters", Workloads.Clusters);
      ("diagonal", Workloads.Diagonal);
    ]

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

(* SIGINT/SIGTERM during a bench must still run the at_exit hooks
   (Par.shutdown joins the domain pool), so an interrupted run leaves
   no stuck worker domains behind: exit with the conventional
   128+signal status instead of dying on the default handler. *)
let install_clean_exit () =
  let handle code = Sys.Signal_handle (fun _ -> exit code) in
  (try Sys.set_signal Sys.sigint (handle 130) with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigterm (handle 143) with Invalid_argument _ -> ()

(* The dimension to run a structure at: --dim if given, else the
   structure's first supported dimension. *)
let pick_dim (module M : Index.S) = function
  | None -> List.hd M.dims
  | Some d ->
      if List.mem d M.dims then d
      else
        die "%s supports dimensions %s, not %d" M.name
          (String.concat ", " (List.map string_of_int M.dims))
          d

let params_of ~block_size = { Index.default_params with block_size }

(* ---------- list ---------- *)

let list_structures () =
  Printf.printf "%-14s %-7s %-10s %-6s %-8s %-26s %-30s %s\n" "name" "dims"
    "queries" "batch" "updates" "space" "query I/Os" "snapshot";
  List.iter
    (fun (module M : Index.S) ->
      let cap = Registry.capabilities (module M : Index.S) in
      Printf.printf "%-14s %-7s %-10s %-6s %-8s %-26s %-30s %s\n" M.name
        (String.concat "," (List.map string_of_int M.dims))
        (String.concat ","
           (List.map Index.query_kind_name M.kinds))
        (if cap.Registry.cap_batch_sorted then "sorted" else "-")
        (* Structures without a native update capability still take
           updates once wrapped: build --dynamic dynamizes any
           snapshot-capable kind through the LSM layer. *)
        (if cap.Registry.cap_updatable then "native"
         else if cap.Registry.cap_snapshot <> None then "via-lsm"
         else "-")
        M.space_bound M.query_bound
        (match cap.Registry.cap_snapshot with Some k -> k | None -> "-");
      Printf.printf "%-14s   %s\n" "" M.description)
    (Registry.all ())

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List the structure registry and Table-1 bounds")
    Term.(const list_structures $ const ())

(* ---------- run / sweep ---------- *)

let run_once (module M : Index.S) n block_size fraction queries kind seed dim
    domains =
  install_clean_exit ();
  let dim = pick_dim (module M) dim in
  let rng = Workload.rng seed in
  let ds = Workloads.dataset rng ~kind ~dim ~n (module M : Index.S) in
  let qs = Workloads.queries rng ds ~fraction ~count:queries in
  let stats = Emio.Io_stats.create () in
  let bctx = Emio.Cost_ctx.create () in
  let inst =
    Emio.Cost_ctx.with_ctx bctx (fun () ->
        Index.build (module M : Index.S) ~params:(params_of ~block_size) ~stats
          ds)
  in
  Printf.printf "%s  N=%d  B=%d  n=%d blocks  space=%d blocks  build=%d I/Os\n"
    M.name n block_size
    ((n + block_size - 1) / block_size)
    (Index.space_blocks inst)
    (Emio.Cost_ctx.total bctx);
  let costs = Query_engine.run_batch ~domains inst qs in
  let reads = List.map (fun c -> c.Query_engine.reads) costs in
  let total_io = List.fold_left ( + ) 0 reads in
  let total_t =
    List.fold_left (fun acc c -> acc + c.Query_engine.result) 0 costs
  in
  Printf.printf
    "%d queries at selectivity %.3f: avg %.1f I/Os (p95 %d, max %d), avg t=%d \
     points\n"
    queries fraction
    (float_of_int total_io /. float_of_int (max 1 queries))
    (Query_engine.percentile 0.95 reads)
    (List.fold_left max 0 reads)
    (total_t / max 1 queries);
  List.iter
    (fun (k, v) -> Printf.printf "  %-24s %d\n" k v)
    (Index.counters inst)

(* Parallel fan-out for query batches.  Defaults to the Par pool's
   recommendation (cores - 1, clamped; 1 on OCaml < 5.0, where the
   pool is a sequential fallback). *)
let domains_arg =
  Arg.(
    value
    & opt int (Par.default_domains ())
    & info [ "domains" ]
        ~doc:
          "Domains to run query batches over (default: recommended count \
           minus one; 1 = sequential).")

let structure_arg =
  Arg.(
    value
    & opt structure_conv (Registry.find_exn "h2")
    & info [ "s"; "structure" ]
        ~doc:"Structure name from the registry (see $(b,lcsearch list)).")

let dim_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "d"; "dim" ] ~doc:"Dimension (default: structure's first).")

let run_cmd =
  let n = Arg.(value & opt int 16384 & info [ "n" ] ~doc:"Number of points.") in
  let b = Arg.(value & opt int 64 & info [ "b"; "block-size" ] ~doc:"Block size B.") in
  let fraction =
    Arg.(value & opt float 0.02 & info [ "f"; "fraction" ] ~doc:"Query selectivity.")
  in
  let queries = Arg.(value & opt int 20 & info [ "q"; "queries" ] ~doc:"Query count.") in
  let kind =
    Arg.(
      value
      & opt workload_conv Workloads.Uniform
      & info [ "w"; "workload" ] ~doc:"Workload: uniform, clusters, diagonal.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "run" ~doc:"Build a structure and measure query I/Os")
    Term.(
      const run_once $ structure_arg $ n $ b $ fraction $ queries $ kind $ seed
      $ dim_arg $ domains_arg)

let sweep_once (module M : Index.S) block_size fraction kind seed dim domains
    ns =
  install_clean_exit ();
  let dim = pick_dim (module M) dim in
  Printf.printf "%10s %8s %10s %10s\n" "N" "n" "avg IO" "space";
  List.iter
    (fun n ->
      let rng = Workload.rng (seed + n) in
      let ds = Workloads.dataset rng ~kind ~dim ~n (module M : Index.S) in
      let qs = Workloads.queries rng ds ~fraction ~count:15 in
      let stats = Emio.Io_stats.create () in
      let inst =
        Index.build (module M : Index.S) ~params:(params_of ~block_size) ~stats
          ds
      in
      let costs = Query_engine.run_batch ~domains inst qs in
      let total =
        List.fold_left (fun acc c -> acc + c.Query_engine.reads) 0 costs
      in
      Printf.printf "%10d %8d %10.1f %10d\n" n
        ((n + block_size - 1) / block_size)
        (float_of_int total /. 15.)
        (Index.space_blocks inst))
    ns

let sweep_cmd =
  let b = Arg.(value & opt int 64 & info [ "b"; "block-size" ] ~doc:"Block size B.") in
  let fraction =
    Arg.(value & opt float 0.02 & info [ "f"; "fraction" ] ~doc:"Query selectivity.")
  in
  let kind =
    Arg.(
      value
      & opt workload_conv Workloads.Uniform
      & info [ "w"; "workload" ] ~doc:"Workload.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let n_list =
    Arg.(
      value
      & opt (list int) [ 4096; 8192; 16384; 32768 ]
      & info [ "n-list" ] ~docv:"N1,N2,..."
          ~doc:
            "Comma-separated N schedule to sweep (default \
             4096,8192,16384,32768) — out-of-core sweeps are drivable \
             without recompiling.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep N and print I/O scaling")
    Term.(
      const sweep_once $ structure_arg $ b $ fraction $ kind $ seed $ dim_arg
      $ domains_arg $ n_list)

(* ---------- knn / segments (structure-specific extensions) ---------- *)

let knn_once n block_size k qx qy seed =
  let rng = Workload.rng seed in
  let points = Workload.clusters2 rng ~n ~clusters:12 ~sigma:5. ~range:100. in
  let stats = Emio.Io_stats.create () in
  let t =
    Core.Knn.build ~stats ~block_size ~clip:(-200., -200., 200., 200.) points
  in
  Emio.Io_stats.reset stats;
  let nearest = Core.Knn.nearest t (Geom.Point2.make qx qy) ~k in
  Printf.printf "%d-NN of (%g, %g) over %d points (%d I/Os):\n" k qx qy n
    (Emio.Io_stats.reads stats);
  List.iter
    (fun (p, d) ->
      Printf.printf "  (%10.4f, %10.4f)  distance %.4f\n" (Geom.Point2.x p)
        (Geom.Point2.y p) d)
    nearest

let knn_cmd =
  let n = Arg.(value & opt int 10000 & info [ "n" ] ~doc:"Number of points.") in
  let b = Arg.(value & opt int 64 & info [ "b"; "block-size" ] ~doc:"Block size B.") in
  let k = Arg.(value & opt int 5 & info [ "k" ] ~doc:"Neighbors to report.") in
  let qx = Arg.(value & opt float 0. & info [ "x" ] ~doc:"Query x.") in
  let qy = Arg.(value & opt float 0. & info [ "y" ] ~doc:"Query y.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "knn" ~doc:"k-nearest-neighbor search via lifting (Thm 4.3)")
    Term.(const knn_once $ n $ b $ k $ qx $ qy $ seed)

let segments_once n block_size seed =
  let rng = Workload.rng seed in
  let segments =
    Array.init n (fun _ ->
        let cx = Random.State.float rng 200. -. 100.
        and cy = Random.State.float rng 200. -. 100. in
        let len = 0.5 +. Random.State.float rng 3. in
        let ang = Random.State.float rng (2. *. Float.pi) in
        ( Geom.Point2.make cx cy,
          Geom.Point2.make (cx +. (len *. cos ang)) (cy +. (len *. sin ang)) ))
  in
  let stats = Emio.Io_stats.create () in
  let t = Core.Seg_intersect.build ~stats ~block_size segments in
  Printf.printf "built over %d segments: %d blocks\n" n
    (Core.Seg_intersect.space_blocks t);
  for _ = 1 to 5 do
    let cx = Random.State.float rng 150. -. 75.
    and cy = Random.State.float rng 150. -. 75. in
    let qa = Geom.Point2.make cx cy
    and qb = Geom.Point2.make (cx +. 20.) (cy +. 12.) in
    Emio.Io_stats.reset stats;
    let hits = Core.Seg_intersect.query t qa qb in
    Printf.printf "query (%g,%g)-(%g,%g): %d crossings, %d I/Os (scan %d)\n"
      cx cy (cx +. 20.) (cy +. 12.) (List.length hits)
      (Emio.Io_stats.reads stats)
      ((n + block_size - 1) / block_size)
  done

let segments_cmd =
  let n = Arg.(value & opt int 16384 & info [ "n" ] ~doc:"Number of segments.") in
  let b = Arg.(value & opt int 64 & info [ "b"; "block-size" ] ~doc:"Block size B.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "segments"
       ~doc:"segment intersection searching (§7 open problem 2)")
    Term.(const segments_once $ n $ b $ seed)

(* ---------- persistence: build / query / inspect ---------- *)

let workload_name = function
  | Workloads.Uniform -> "uniform"
  | Workloads.Clusters -> "clusters"
  | Workloads.Diagonal -> "diagonal"

(* The snapshot's meta string records the workload parameters, so
   [query] can regenerate the exact point and query streams of the
   process that built the file (same seed -> same Workload.rng). *)
let meta_string ~name ~n ~block_size ~kind ~seed ~dim =
  Printf.sprintf "s=%s;n=%d;b=%d;w=%s;seed=%d;d=%d" name n block_size
    (workload_name kind) seed dim

let meta_field meta key =
  List.find_map
    (fun kv ->
      match String.index_opt kv '=' with
      | Some i when String.sub kv 0 i = key ->
          Some (String.sub kv (i + 1) (String.length kv - i - 1))
      | _ -> None)
    (String.split_on_char ';' meta)

let build_once (module M0 : Index.S) n block_size kind seed out page_size dim
    shards partition dynamic memtable =
  install_clean_exit ();
  (match page_size with
  | Some p when p < Diskstore.Block_file.min_page_size ->
      die "--page-size must be at least %d bytes"
        Diskstore.Block_file.min_page_size
  | _ -> ());
  if shards < 1 then die "--shards must be at least 1";
  if memtable < 1 then die "--memtable must be at least 1";
  (* [--shards K] for K > 1 swaps in the scatter-gather wrapper: same
     Index.S surface, directory snapshot instead of a single file. *)
  let (module M : Index.S) =
    if shards = 1 then (module M0)
    else Shard.make ~inner:(module M0 : Index.S) ~shards ~partition ()
  in
  (* [--dynamic] wraps the (possibly sharded) structure in the LSM
     dynamization layer: the snapshot becomes a directory that the
     insert/delete/churn verbs update in place. *)
  let (module M : Index.S) =
    if not dynamic then (module M)
    else Lsm.make ~memtable_cap:memtable ~inner:(module M : Index.S) ()
  in
  let ops =
    match M.snapshot with
    | Some ops -> ops
    | None ->
        die "structure %s does not support snapshots (capable: %s)" M.name
          (String.concat ", "
             (List.filter_map
                (fun (module S : Index.S) ->
                  Option.map (fun _ -> S.name) S.snapshot)
                (Registry.all ())))
  in
  let dim = pick_dim (module M) dim in
  let rng = Workload.rng seed in
  let ds = Workloads.dataset rng ~kind ~dim ~n (module M : Index.S) in
  let stats = Emio.Io_stats.create () in
  let bctx = Emio.Cost_ctx.create () in
  let t =
    Emio.Cost_ctx.with_ctx bctx (fun () ->
        M.build ~params:(params_of ~block_size) ~stats ds)
  in
  let meta =
    let base = meta_string ~name:M0.name ~n ~block_size ~kind ~seed ~dim in
    if shards = 1 then base
    else
      Printf.sprintf "%s;shards=%d;partition=%s" base shards
        (Shard.partition_name partition)
  in
  (try ops.Index.save t ~path:out ~meta ~page_size
   with Invalid_argument msg -> die "cannot write %s: %s" out msg);
  if dynamic then begin
    match Lsm.read_manifest out with
    | Error e ->
        die "wrote %s but cannot read it back: %s" out
          (Diskstore.Snapshot.error_to_string e)
    | Ok m ->
        Printf.printf
          "%s: %s over %s  N=%d  B=%d  memtable %d/%d  levels %d  build=%d \
           model I/Os\n"
          out Lsm.lsm_kind m.Lsm.inner_kind n block_size
          (Array.length m.Lsm.mem) m.Lsm.cap
          (Array.length m.Lsm.levels)
          (Emio.Cost_ctx.total bctx)
  end
  else if shards > 1 then begin
    match Shard.read_manifest out with
    | Error e ->
        die "wrote %s but cannot read it back: %s" out
          (Diskstore.Snapshot.error_to_string e)
    | Ok m ->
        Printf.printf
          "%s: %s  %d %s shards of %s  N=%d  B=%d  build=%d model I/Os\n" out
          Shard.sharded_kind m.Shard.shards
          (Shard.partition_name m.Shard.partition)
          m.Shard.inner_kind n block_size
          (Emio.Cost_ctx.total bctx)
  end
  else
    match Diskstore.Snapshot.read_info out with
    | Error e ->
        die "wrote %s but cannot read it back: %s" out
          (Diskstore.Snapshot.error_to_string e)
    | Ok info ->
        Printf.printf
          "%s: %s  N=%d  B=%d  build=%d model I/Os  %d pages of %d bytes\n" out
          info.Diskstore.Snapshot.kind n block_size
          (Emio.Cost_ctx.total bctx)
          info.Diskstore.Snapshot.total_pages info.Diskstore.Snapshot.page_size

let build_cmd =
  let n = Arg.(value & opt int 16384 & info [ "n" ] ~doc:"Number of points.") in
  let b = Arg.(value & opt int 64 & info [ "b"; "block-size" ] ~doc:"Block size B.") in
  let kind =
    Arg.(
      value
      & opt workload_conv Workloads.Uniform
      & info [ "w"; "workload" ] ~doc:"Workload: uniform, clusters, diagonal.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Snapshot file to write.")
  in
  let page_size =
    Arg.(
      value
      & opt (some int) None
      & info [ "page-size" ] ~doc:"Snapshot page size in bytes (default 4096).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Split the dataset into K shards (K > 1 writes a sharded \
             snapshot directory: one inner-format file per shard plus a \
             CRC-checked MANIFEST).")
  in
  let partition =
    Arg.(
      value
      & opt (enum [ ("str", Shard.Str); ("hash", Shard.Hash) ]) Shard.Str
      & info [ "partition" ]
          ~doc:
            "Shard partitioner: str (spatial sort-tile-recursive tiles, \
             prunable at query time) or hash (index hash).")
  in
  let dynamic =
    Arg.(
      value & flag
      & info [ "dynamic" ]
          ~doc:
            "Wrap the structure in the LSM dynamization layer: the snapshot \
             becomes a versioned directory that $(b,lcsearch insert), \
             $(b,lcsearch delete) and $(b,lcsearch churn) update in place.")
  in
  let memtable =
    Arg.(
      value
      & opt int Lsm.default_memtable_cap
      & info [ "memtable" ] ~docv:"K"
          ~doc:
            "LSM memtable capacity (with $(b,--dynamic)); level i holds at \
             most K*2^i points.")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build a structure and persist it to a snapshot")
    Term.(
      const build_once $ structure_arg $ n $ b $ kind $ seed $ out $ page_size
      $ dim_arg $ shards $ partition $ dynamic $ memtable)

let policy_conv =
  Arg.enum
    [ ("lru", Diskstore.Buffer_pool.Lru); ("clock", Diskstore.Buffer_pool.Clock) ]

let sorted_rows l = List.sort compare (List.map Array.to_list l)

(* Decode the builder meta string (see [meta_string]) so a fresh
   process can replay the exact workload streams. *)
let parse_meta path meta =
  let field key =
    match meta_field meta key with
    | Some v -> v
    | None -> die "%s: snapshot meta %S lacks %S" path meta key
  in
  let int_field key =
    match int_of_string_opt (field key) with
    | Some v -> v
    | None -> die "%s: bad %S in snapshot meta" path key
  in
  let kind =
    match field "w" with
    | "uniform" -> Workloads.Uniform
    | "clusters" -> Workloads.Clusters
    | "diagonal" -> Workloads.Diagonal
    | w -> die "%s: unknown workload %S in snapshot meta" path w
  in
  ( int_field "n",
    int_field "b",
    int_field "seed",
    int_field "d",
    kind )

let dataset_of_rows (module M : Index.S) ~dim rows =
  match M.preferred ~dim with
  | `Pts2 -> Index.Pts2 (Array.map (fun r -> Geom.Point2.make r.(0) r.(1)) rows)
  | `Pts3 ->
      Index.Pts3 (Array.map (fun r -> Geom.Point3.make r.(0) r.(1) r.(2)) rows)
  | `PtsD -> Index.PtsD (Array.map Array.copy rows)

(* The base registry module behind an Lsm manifest: the inner kind
   itself, or — when the inner is the sharded wrapper — the kind its
   shard manifests record.  Drives oracle rebuilds and workload
   replay; the wrapper's [preferred] is a passthrough, so the base
   module regenerates the exact dataset stream the builder consumed. *)
let lsm_base_module path (m : Lsm.manifest) =
  match Lsm.base_kind path m with
  | Error e -> die "%s: %s" path (Diskstore.Snapshot.error_to_string e)
  | Ok kind -> (
      match Registry.find_by_snapshot_kind kind with
      | Some base -> base
      | None ->
          die "%s: no registered structure owns snapshot kind %S" path kind)

(* Reopen a dynamic (LSM) snapshot directory and query it.  [--check]
   rebuilds the inner *static* structure in memory from the manifest's
   live rows — the rebuild-from-live oracle — so the check gates
   bit-equality of memtable + level fan-out + tombstone filtering
   against a from-scratch build over exactly the surviving points. *)
let lsm_query_once path fraction queries cache_pages policy check =
  let stats = Emio.Io_stats.create () in
  let inst, info, m =
    match Lsm.open_snapshot ~policy ~cache_pages ~stats path with
    | Ok v -> v
    | Error e -> die "%s: %s" path (Diskstore.Snapshot.error_to_string e)
  in
  let meta = m.Lsm.meta in
  let n, _block_size, seed, dim, kind = parse_meta path meta in
  let (module M : Index.S) = lsm_base_module path m in
  let rng = Workload.rng seed in
  let ds = Workloads.dataset rng ~kind ~dim ~n (module M : Index.S) in
  let live = Lsm.manifest_live_rows m in
  let reference =
    if not check then None
    else begin
      let rstats = Emio.Io_stats.create () in
      let ods = dataset_of_rows (module M : Index.S) ~dim (Array.map snd live) in
      Some
        (Index.build (module M : Index.S) ~params:m.Lsm.params ~stats:rstats
           ods)
    end
  in
  Printf.printf
    "%s: %s over %s  meta %s  %d levels, %d in memtable, %d live\n" path
    info.Diskstore.Snapshot.kind m.Lsm.inner_kind meta
    (Array.length m.Lsm.levels)
    (Array.length m.Lsm.mem) (Array.length live);
  Emio.Io_stats.reset stats (* drop the load-time verification sweep *);
  let total_t = ref 0 and mismatches = ref 0 in
  for _ = 1 to queries do
    let q = Workloads.query rng ds ~fraction in
    let result = Index.query inst q in
    total_t := !total_t + List.length result;
    match reference with
    | Some r ->
        if sorted_rows (Index.query r q) <> sorted_rows result then
          incr mismatches
    | None -> ()
  done;
  Printf.printf
    "%d queries at selectivity %.3f: avg t=%d points, %d page faults, %d \
     pool hits, %d evictions, %.1f KiB read\n"
    queries fraction
    (!total_t / max 1 queries)
    (Emio.Io_stats.reads stats)
    (Emio.Io_stats.cache_hits stats)
    (Emio.Io_stats.evictions stats)
    (float_of_int (Emio.Io_stats.bytes_read stats) /. 1024.);
  if check then
    if !mismatches = 0 then
      Printf.printf
        "check: all %d dynamized result sets identical to a static rebuild \
         over the live points\n"
        queries
    else
      die "check FAILED: %d of %d result sets differ from the static \
           rebuild-from-live oracle"
        !mismatches queries

(* Reopen a sharded snapshot directory and scatter-gather queries over
   its shards.  [--check] rebuilds the *unsharded* structure in memory
   from the recorded workload, so the check gates bit-equality of the
   sharded results against the unsharded oracle. *)
let sharded_query_once path fraction queries cache_pages policy check =
  let stats = Emio.Io_stats.create () in
  let inst, info, m =
    match Shard.open_snapshot ~policy ~cache_pages ~stats path with
    | Ok v -> v
    | Error e -> die "%s: %s" path (Diskstore.Snapshot.error_to_string e)
  in
  let meta = m.Shard.meta in
  let n, block_size, seed, _dim, kind = parse_meta path meta in
  let (module M : Index.S) =
    match Registry.find_by_snapshot_kind m.Shard.inner_kind with
    | Some m -> m
    | None ->
        die "%s: no registered structure owns snapshot kind %S" path
          m.Shard.inner_kind
  in
  let rng = Workload.rng seed in
  let ds = Workloads.dataset rng ~kind ~dim:m.Shard.dim ~n (module M : Index.S) in
  let reference =
    if not check then None
    else begin
      let rstats = Emio.Io_stats.create () in
      Some
        (Index.build
           (module M : Index.S)
           ~params:(params_of ~block_size) ~stats:rstats ds)
    end
  in
  Printf.printf "%s: %s (%d %s shards of %s)  meta %s  %d pages of %d bytes\n"
    path info.Diskstore.Snapshot.kind m.Shard.shards
    (Shard.partition_name m.Shard.partition)
    m.Shard.inner_kind meta info.Diskstore.Snapshot.total_pages
    info.Diskstore.Snapshot.page_size;
  Emio.Io_stats.reset stats (* drop the load-time verification sweep *);
  let total_t = ref 0 and mismatches = ref 0 in
  for _ = 1 to queries do
    let q = Workloads.query rng ds ~fraction in
    let result = Index.query inst q in
    total_t := !total_t + List.length result;
    match reference with
    | Some r ->
        if sorted_rows (Index.query r q) <> sorted_rows result then
          incr mismatches
    | None -> ()
  done;
  Printf.printf
    "%d queries at selectivity %.3f: avg t=%d points, %d page faults, %d \
     pool hits, %d evictions, %.1f KiB read\n"
    queries fraction
    (!total_t / max 1 queries)
    (Emio.Io_stats.reads stats)
    (Emio.Io_stats.cache_hits stats)
    (Emio.Io_stats.evictions stats)
    (float_of_int (Emio.Io_stats.bytes_read stats) /. 1024.);
  if check then
    if !mismatches = 0 then
      Printf.printf
        "check: all %d sharded result sets identical to the unsharded \
         in-memory oracle\n"
        queries
    else
      die "check FAILED: %d of %d result sets differ from unsharded oracle"
        !mismatches queries

let query_once path fraction queries cache_pages policy check =
  if Lsm.is_lsm_path path then
    lsm_query_once path fraction queries cache_pages policy check
  else if Shard.is_sharded_path path then
    sharded_query_once path fraction queries cache_pages policy check
  else
  let info =
    match Diskstore.Snapshot.read_info path with
    | Ok info -> info
    | Error e -> die "%s: %s" path (Diskstore.Snapshot.error_to_string e)
  in
  let meta = info.Diskstore.Snapshot.meta in
  let n, block_size, seed, dim, kind = parse_meta path meta in
  (* generic dispatch: the header's kind tag names the module *)
  let (module M : Index.S) =
    match Registry.find_by_snapshot_kind info.Diskstore.Snapshot.kind with
    | Some m -> m
    | None ->
        die "%s: no registered structure owns snapshot kind %S" path
          info.Diskstore.Snapshot.kind
  in
  let ops = Option.get M.snapshot in
  (* replay the builder's stream: points first, then queries *)
  let rng = Workload.rng seed in
  let ds = Workloads.dataset rng ~kind ~dim ~n (module M : Index.S) in
  let stats = Emio.Io_stats.create () in
  let t =
    match ops.Index.load ~stats ~policy ~cache_pages path with
    | Ok (t, _) -> t
    | Error e -> die "%s: %s" path (Diskstore.Snapshot.error_to_string e)
  in
  let reference =
    if not check then None
    else begin
      let rstats = Emio.Io_stats.create () in
      Some (M.build ~params:(params_of ~block_size) ~stats:rstats ds)
    end
  in
  Printf.printf "%s: %s  meta %s  %d pages of %d bytes\n" path
    info.Diskstore.Snapshot.kind meta info.Diskstore.Snapshot.total_pages
    info.Diskstore.Snapshot.page_size;
  Emio.Io_stats.reset stats (* drop the load-time verification sweep *);
  let total_t = ref 0 and mismatches = ref 0 in
  for _ = 1 to queries do
    let q = Workloads.query rng ds ~fraction in
    let result = M.query t q in
    total_t := !total_t + List.length result;
    match reference with
    | Some r ->
        if sorted_rows (M.query r q) <> sorted_rows result then incr mismatches
    | None -> ()
  done;
  Printf.printf
    "%d queries at selectivity %.3f: avg t=%d points, %d page faults, %d \
     pool hits, %d evictions, %.1f KiB read\n"
    queries fraction
    (!total_t / max 1 queries)
    (Emio.Io_stats.reads stats)
    (Emio.Io_stats.cache_hits stats)
    (Emio.Io_stats.evictions stats)
    (float_of_int (Emio.Io_stats.bytes_read stats) /. 1024.);
  if check then
    if !mismatches = 0 then
      Printf.printf
        "check: all %d result sets identical to an in-memory rebuild\n" queries
    else
      die "check FAILED: %d of %d result sets differ from in-memory rebuild"
        !mismatches queries

let query_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PATH" ~doc:"Snapshot file written by $(b,lcsearch build).")
  in
  let fraction =
    Arg.(value & opt float 0.02 & info [ "f"; "fraction" ] ~doc:"Query selectivity.")
  in
  let queries = Arg.(value & opt int 20 & info [ "q"; "queries" ] ~doc:"Query count.") in
  let cache_pages =
    Arg.(
      value & opt int 64
      & info [ "cache-pages" ] ~doc:"Buffer-pool capacity in pages.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Diskstore.Buffer_pool.Lru
      & info [ "policy" ] ~doc:"Buffer-pool eviction policy: lru or clock.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Rebuild the structure in memory from the recorded workload and \
             verify every result set matches the snapshot's.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Reopen a persisted snapshot and query it")
    Term.(
      const query_once $ path $ fraction $ queries $ cache_pages $ policy
      $ check)

let pp_corner a =
  String.concat ", "
    (List.map (Printf.sprintf "%g") (Array.to_list a))

let inspect_once path =
  if Lsm.is_lsm_path path then begin
    match Lsm.read_manifest path with
    | Error e -> die "%s: %s" path (Diskstore.Snapshot.error_to_string e)
    | Ok m ->
        Printf.printf
          "%s:\n  kind        %s\n  inner kind  %s\n  dim         %d\n\
          \  memtable    %d/%d entries\n  levels      %d\n  live        %d\n\
          \  merges      %d\n  next handle %d\n  meta        %s\n"
          path Lsm.lsm_kind m.Lsm.inner_kind m.Lsm.dim
          (Array.length m.Lsm.mem)
          m.Lsm.cap
          (Array.length m.Lsm.levels)
          (Array.length (Lsm.manifest_live_rows m))
          m.Lsm.merges m.Lsm.next_handle m.Lsm.meta;
        Array.iter
          (fun (e : Lsm.level_entry) ->
            Printf.printf
              "  level %-16s slot %-2d crc %08x  %-8d points, %d dead\n"
              e.Lsm.file e.Lsm.slot e.Lsm.crc
              (Array.length e.Lsm.handles)
              (Array.length e.Lsm.dead))
          m.Lsm.levels
  end
  else if Shard.is_sharded_path path then begin
    match Shard.read_manifest path with
    | Error e -> die "%s: %s" path (Diskstore.Snapshot.error_to_string e)
    | Ok m ->
        Printf.printf
          "%s:\n  kind        %s\n  inner kind  %s\n  partition   %s\n\
          \  shards      %d\n  dim         %d\n  points      %d\n\
          \  meta        %s\n"
          path Shard.sharded_kind m.Shard.inner_kind
          (Shard.partition_name m.Shard.partition)
          m.Shard.shards m.Shard.dim m.Shard.total m.Shard.meta;
        Array.iter
          (fun (e : Shard.entry) ->
            Printf.printf
              "  shard %-16s crc %08x  ids %-8d tile [%s] .. [%s]\n"
              e.Shard.file e.Shard.crc
              (Array.length e.Shard.gids)
              (pp_corner e.Shard.lo) (pp_corner e.Shard.hi))
          m.Shard.entries
  end
  else
  match Diskstore.Snapshot.read_info path with
  | Error e -> die "%s: %s" path (Diskstore.Snapshot.error_to_string e)
  | Ok i ->
      Printf.printf
        "%s:\n  kind        %s\n  meta        %s\n  version     %d\n\
        \  page size   %d bytes\n  block size  %d items\n  blocks      %d\n\
        \  pages       %d (%d bytes)\n"
        path i.Diskstore.Snapshot.kind i.Diskstore.Snapshot.meta
        i.Diskstore.Snapshot.version i.Diskstore.Snapshot.page_size
        i.Diskstore.Snapshot.block_size i.Diskstore.Snapshot.n_blocks
        i.Diskstore.Snapshot.total_pages
        (i.Diskstore.Snapshot.total_pages * i.Diskstore.Snapshot.page_size)

let inspect_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PATH" ~doc:"Snapshot file.")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print a snapshot file's header")
    Term.(const inspect_once $ path)

(* ---------- dynamic updates: insert / delete / churn ---------- *)

let open_lsm_for_update path =
  if not (Lsm.is_lsm_path path) then
    die "%s: not a dynamic (lsm) snapshot — write one with lcsearch build \
         --dynamic"
      path;
  let stats = Emio.Io_stats.create () in
  match Lsm.open_snapshot ~stats path with
  | Error e -> die "%s: %s" path (Diskstore.Snapshot.error_to_string e)
  | Ok (inst, info, m) -> (
      match Index.updater inst with
      | None -> die "%s: reopened snapshot is not updatable" path
      | Some u -> (inst, info, m, u))

(* The page size updated levels are rewritten at: keep the snapshot's
   own, falling back to the default when the manifest carries no level
   yet (its synthesized info has no meaningful page size). *)
let save_page_size (info : Diskstore.Snapshot.info) =
  if info.Diskstore.Snapshot.page_size >= Diskstore.Block_file.min_page_size
  then Some info.Diskstore.Snapshot.page_size
  else None

(* Fresh points are drawn from the live points' bounding box so churn
   stays inside the workload's region (selectivity targets keep
   meaning something); an empty or degenerate box falls back to the
   generators' default [0, 100] range. *)
let live_bbox ~dim rows =
  let lo = Array.make dim infinity and hi = Array.make dim neg_infinity in
  Array.iter
    (fun r ->
      for j = 0 to dim - 1 do
        if r.(j) < lo.(j) then lo.(j) <- r.(j);
        if r.(j) > hi.(j) then hi.(j) <- r.(j)
      done)
    rows;
  for j = 0 to dim - 1 do
    if not (lo.(j) <= hi.(j)) then begin
      lo.(j) <- 0.;
      hi.(j) <- 100.
    end
    else if hi.(j) -. lo.(j) < 1e-6 then hi.(j) <- lo.(j) +. 1e-6
  done;
  (lo, hi)

(* Explicit loops: rng consumption order is part of the reproducibility
   contract, and Array.init applies its function in unspecified order. *)
let fresh_row rng ~dim ~lo ~hi =
  let r = Array.make dim 0. in
  for j = 0 to dim - 1 do
    r.(j) <- lo.(j) +. Random.State.float rng (hi.(j) -. lo.(j))
  done;
  r

let insert_once path count seed =
  install_clean_exit ();
  if count < 1 then die "--count must be at least 1";
  let inst, info, m, u = open_lsm_for_update path in
  let dim = m.Lsm.dim in
  let live = Lsm.manifest_live_rows m in
  let lo, hi = live_bbox ~dim (Array.map snd live) in
  let rng = Workload.rng seed in
  let first = ref (-1) and last = ref (-1) in
  for _ = 1 to count do
    let h = u.Index.u_insert (fresh_row rng ~dim ~lo ~hi) in
    if !first < 0 then first := h;
    last := h
  done;
  Index.snapshot_save inst ~path ~meta:m.Lsm.meta
    ~page_size:(save_page_size info);
  Printf.printf "%s: inserted %d point%s (handles %d..%d), %d live\n" path
    count
    (if count > 1 then "s" else "")
    !first !last
    (u.Index.u_live ())

let insert_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PATH"
          ~doc:"Dynamic snapshot written by $(b,lcsearch build --dynamic).")
  in
  let count =
    Arg.(value & opt int 1 & info [ "count" ] ~doc:"Points to insert.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"Random seed for the generated points.")
  in
  Cmd.v
    (Cmd.info "insert"
       ~doc:"Insert random points into a dynamic snapshot, in place")
    Term.(const insert_once $ path $ count $ seed)

let delete_once path handles count seed =
  install_clean_exit ();
  let inst, info, m, u = open_lsm_for_update path in
  let live = Lsm.manifest_live_rows m in
  let targets =
    match handles with
    | _ :: _ -> handles
    | [] ->
        if count < 1 then die "--count must be at least 1 (or pass --handles)";
        let n_live = Array.length live in
        if n_live = 0 then die "%s: no live points to delete" path;
        let rng = Workload.rng seed in
        let picked = Hashtbl.create 16 in
        let out = ref [] in
        for _ = 1 to min count n_live do
          let i = ref (Random.State.int rng n_live) in
          while Hashtbl.mem picked !i do
            i := (!i + 1) mod n_live
          done;
          Hashtbl.add picked !i ();
          out := fst live.(!i) :: !out
        done;
        List.rev !out
  in
  let unknown =
    List.filter (fun h -> not (u.Index.u_delete h)) targets
  in
  (match unknown with
  | [] -> ()
  | hs ->
      die "%s: unknown or already-deleted handle%s %s; nothing saved" path
        (if List.length hs > 1 then "s" else "")
        (String.concat ", " (List.map string_of_int hs)));
  Index.snapshot_save inst ~path ~meta:m.Lsm.meta
    ~page_size:(save_page_size info);
  let n_deleted = List.length targets in
  Printf.printf "%s: deleted %d point%s, %d live\n" path n_deleted
    (if n_deleted > 1 then "s" else "")
    (u.Index.u_live ())

let delete_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PATH"
          ~doc:"Dynamic snapshot written by $(b,lcsearch build --dynamic).")
  in
  let handles =
    Arg.(
      value
      & opt (list int) []
      & info [ "handles" ] ~docv:"H1,H2,..."
          ~doc:
            "Handles to delete (as reported by $(b,lcsearch insert) or the \
             original build order 0..N-1).")
  in
  let count =
    Arg.(
      value & opt int 1
      & info [ "count" ]
          ~doc:"Random live points to delete when --handles is not given.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "delete"
       ~doc:"Tombstone points in a dynamic snapshot, in place")
    Term.(const delete_once $ path $ handles $ count $ seed)

(* Apply a mixed insert/delete stream while maintaining an exact
   (handle -> row) model, then — under [--check] — gate the dynamized
   instance against a static rebuild over the model's live rows, save,
   reopen, and gate again.  This is the CI churn-smoke loop in one
   verb. *)
let churn_once path ops insert_frac fraction queries seed check =
  install_clean_exit ();
  if ops < 1 then die "--ops must be at least 1";
  if insert_frac < 0. || insert_frac > 1. then
    die "--insert-frac must be in [0,1]";
  let inst, info, m, u = open_lsm_for_update path in
  let dim = m.Lsm.dim in
  let (module M : Index.S) = lsm_base_module path m in
  let live0 = Lsm.manifest_live_rows m in
  let lo, hi = live_bbox ~dim (Array.map snd live0) in
  let rng = Workload.rng seed in
  let model = Hashtbl.create (max 16 (2 * Array.length live0)) in
  let vec = ref (Array.map fst live0) in
  let len = ref (Array.length !vec) in
  Array.iter (fun (h, r) -> Hashtbl.replace model h r) live0;
  let push h =
    if !len = Array.length !vec then begin
      let bigger = Array.make (max 8 (2 * !len)) 0 in
      Array.blit !vec 0 bigger 0 !len;
      vec := bigger
    end;
    !vec.(!len) <- h;
    incr len
  in
  let inserted = ref 0 and deleted = ref 0 in
  for _ = 1 to ops do
    if !len = 0 || Random.State.float rng 1. < insert_frac then begin
      let r = fresh_row rng ~dim ~lo ~hi in
      let h = u.Index.u_insert r in
      Hashtbl.replace model h r;
      push h;
      incr inserted
    end
    else begin
      let i = Random.State.int rng !len in
      let h = !vec.(i) in
      if not (u.Index.u_delete h) then
        die "%s: delete of live handle %d refused" path h;
      Hashtbl.remove model h;
      !vec.(i) <- !vec.(!len - 1);
      decr len;
      incr deleted
    end
  done;
  if u.Index.u_live () <> !len then
    die "%s: instance reports %d live, model has %d" path (u.Index.u_live ())
      !len;
  let live_rows = Array.init !len (fun i -> Hashtbl.find model !vec.(i)) in
  let ods = dataset_of_rows (module M : Index.S) ~dim live_rows in
  let qs = ref [] in
  for _ = 1 to queries do
    qs := Workloads.query rng ods ~fraction :: !qs
  done;
  let qs = List.rev !qs in
  let mismatches = ref 0 in
  let gate inst' =
    let rstats = Emio.Io_stats.create () in
    let oracle =
      Index.build (module M : Index.S) ~params:m.Lsm.params ~stats:rstats ods
    in
    List.iter
      (fun q ->
        if sorted_rows (Index.query inst' q) <> sorted_rows (Index.query oracle q)
        then incr mismatches)
      qs
  in
  if check then gate inst;
  Index.snapshot_save inst ~path ~meta:m.Lsm.meta
    ~page_size:(save_page_size info);
  if check then begin
    let stats2 = Emio.Io_stats.create () in
    match Lsm.open_snapshot ~stats:stats2 path with
    | Error e ->
        die "%s: reopen after churn failed: %s" path
          (Diskstore.Snapshot.error_to_string e)
    | Ok (inst2, _, m2) ->
        if Array.length (Lsm.manifest_live_rows m2) <> !len then
          die "%s: reopened manifest has %d live rows, model has %d" path
            (Array.length (Lsm.manifest_live_rows m2))
            !len;
        gate inst2
  end;
  (match Lsm.read_manifest path with
  | Error e ->
      die "wrote %s but cannot read it back: %s" path
        (Diskstore.Snapshot.error_to_string e)
  | Ok m' ->
      Printf.printf
        "%s: %d ops (%d inserts, %d deletes), %d live, %d levels, memtable \
         %d/%d\n"
        path ops !inserted !deleted !len
        (Array.length m'.Lsm.levels)
        (Array.length m'.Lsm.mem)
        m'.Lsm.cap);
  if check then
    if !mismatches = 0 then
      Printf.printf
        "check: all %d result sets identical to the static rebuild-from-live \
         oracle, before and after reopen\n"
        queries
    else
      die "check FAILED: %d of %d result sets differ from the static \
           rebuild-from-live oracle"
        !mismatches (2 * queries)

let churn_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PATH"
          ~doc:"Dynamic snapshot written by $(b,lcsearch build --dynamic).")
  in
  let ops =
    Arg.(
      value & opt int 256 & info [ "ops" ] ~doc:"Update operations to apply.")
  in
  let insert_frac =
    Arg.(
      value & opt float 0.5
      & info [ "insert-frac" ]
          ~doc:"Fraction of operations that insert (the rest delete).")
  in
  let fraction =
    Arg.(
      value & opt float 0.02
      & info [ "f"; "fraction" ] ~doc:"Query selectivity for --check.")
  in
  let queries =
    Arg.(
      value & opt int 20
      & info [ "q"; "queries" ] ~doc:"Query count for --check.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Verify every query result against a static in-memory rebuild \
             over the live points, save, reopen the snapshot, and verify \
             again; exit nonzero on any mismatch.")
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:"Apply a random update stream to a dynamic snapshot")
    Term.(
      const churn_once $ path $ ops $ insert_frac $ fraction $ queries $ seed
      $ check)

(* ---------- serve / loadgen ---------- *)

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~doc:"Address to bind or connect to.")

let snapshots_arg =
  Arg.(
    non_empty
    & pos_all file []
    & info [] ~docv:"SNAPSHOT"
        ~doc:"Snapshot files written by $(b,lcsearch build), one per structure.")

let serve_once host port snapshots queue batch dispatchers readers coalesce_us
    domains deadline_ms read_timeout cache_pages policy no_resident verbose =
  let cfg =
    {
      Serve.Server.default_config with
      host;
      port;
      snapshots;
      queue_capacity = queue;
      batch_max = batch;
      dispatchers;
      readers;
      coalesce_us;
      domains;
      default_deadline_ms = deadline_ms;
      read_timeout_s = read_timeout;
      cache_pages;
      policy;
      resident = not no_resident;
      verbose;
    }
  in
  let srv = try Serve.Server.start cfg with Failure m -> die "%s" m in
  let eff = Serve.Server.effective_domains srv in
  let eff_disp = Serve.Server.effective_dispatchers srv in
  let eff_readers = Serve.Server.effective_readers srv in
  let plural n = if n > 1 then "s" else "" in
  Printf.printf
    "serving on %s:%d (%s mode, %d dispatcher shard%s, %d reader%s, %d \
     effective domain%s%s):\n"
    host
    (Serve.Server.port srv)
    (if no_resident then "file-backed" else "resident")
    eff_disp (plural eff_disp) eff_readers (plural eff_readers) eff
    (plural eff)
    (if coalesce_us > 0 then Printf.sprintf ", %dus coalescing" coalesce_us
     else "");
  List.iter
    (fun (name, dim) -> Printf.printf "  %-14s d=%d\n" name dim)
    (Serve.Server.structures srv);
  print_string "SIGINT/SIGTERM drains and exits.\n";
  flush stdout;
  let stop_requested = ref false in
  let request_stop = Sys.Signal_handle (fun _ -> stop_requested := true) in
  (try Sys.set_signal Sys.sigint request_stop with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm request_stop with Invalid_argument _ -> ());
  while not !stop_requested do
    Thread.delay 0.2
  done;
  prerr_endline "draining...";
  Serve.Server.stop srv;
  let s = Serve.Server.stats srv in
  Printf.printf
    "served %d of %d accepted; shed %d queue-full, %d deadline, %d draining; \
     %d errors\n\
     %d batches; %d coalesced requests; max batch %d\n"
    s.Serve.Server.served s.Serve.Server.accepted s.Serve.Server.shed_full
    s.Serve.Server.shed_deadline s.Serve.Server.shed_drain s.Serve.Server.errors
    s.Serve.Server.batches s.Serve.Server.coalesced s.Serve.Server.max_batch

let serve_cmd =
  let port =
    Arg.(value & opt int 7227 & info [ "p"; "port" ] ~doc:"TCP port (0 = ephemeral).")
  in
  let queue =
    Arg.(
      value & opt int 1024
      & info [ "queue" ] ~doc:"Admission queue capacity (requests).")
  in
  let batch =
    Arg.(value & opt int 64 & info [ "batch" ] ~doc:"Dispatcher batch size.")
  in
  let dispatchers =
    Arg.(
      value & opt int 1
      & info [ "dispatchers" ]
          ~doc:
            "Dispatcher shards, each draining its own admission ring \
             (structures are hashed onto shards by name).  Clamped to 1 \
             with $(b,--no-resident) or on OCaml < 5.0 builds.")
  in
  let readers =
    Arg.(
      value & opt int 2
      & info [ "readers" ]
          ~doc:
            "Reader event-loop threads multiplexing the accepted \
             connections (no thread-per-connection).")
  in
  let coalesce =
    Arg.(
      value & opt int 0
      & info [ "coalesce-us" ]
          ~doc:
            "Cross-request coalescing window in microseconds: after popping \
             a batch, a dispatcher lingers up to this long — never past the \
             earliest queued deadline — to gather more same-ring requests \
             into one batched engine call.  0 disables lingering.")
  in
  let deadline =
    Arg.(
      value & opt int 200
      & info [ "deadline-ms" ]
          ~doc:"Default queueing deadline for requests that set none.")
  in
  let read_timeout =
    Arg.(
      value & opt float 30.
      & info [ "read-timeout" ] ~doc:"Per-connection idle timeout in seconds.")
  in
  let cache_pages =
    Arg.(
      value & opt int 64
      & info [ "cache-pages" ] ~doc:"Buffer-pool capacity in pages.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Diskstore.Buffer_pool.Lru
      & info [ "policy" ] ~doc:"Buffer-pool eviction policy: lru or clock.")
  in
  let no_resident =
    Arg.(
      value & flag
      & info [ "no-resident" ]
          ~doc:
            "Serve payload blocks from the file through the buffer pool \
             instead of preloading them (forces sequential dispatch: the \
             pool is not safe under domain fan-out).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log connections.") in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve snapshots over TCP with admission control")
    Term.(
      const serve_once $ host_arg $ port $ snapshots_arg $ queue $ batch
      $ dispatchers $ readers $ coalesce $ domains_arg $ deadline
      $ read_timeout $ cache_pages $ policy $ no_resident $ verbose)

let loadgen_once host port snapshots mode_name concurrency qps duration warmup
    mix_name zipf_s pool fraction want_ids deadline_ms check seed writers
    server_domains out verbose =
  let mode =
    match mode_name with
    | "closed" -> Serve.Loadgen.Closed concurrency
    | "open" -> Serve.Loadgen.Open qps
    | m -> die "unknown mode %S (closed or open)" m
  in
  let mix =
    match mix_name with
    | "uniform" -> Serve.Loadgen.Uniform_mix
    | "zipf" -> Serve.Loadgen.Zipf zipf_s
    | m -> die "unknown mix %S (uniform or zipf)" m
  in
  let cfg =
    {
      Serve.Loadgen.host;
      port;
      snapshots;
      mode;
      mix;
      duration_s = duration;
      warmup_s = warmup;
      pool;
      fraction;
      want_ids;
      deadline_ms;
      check;
      seed;
      writers;
      server_domains;
      verbose;
    }
  in
  let summary = try Serve.Loadgen.run cfg with Failure m -> die "%s" m in
  Format.printf "%a@?" Serve.Loadgen.pp_summary summary;
  (match out with
  | Some path ->
      Serve.Loadgen.write_json ~path summary;
      Printf.printf "wrote %s\n" path
  | None -> ());
  if check && summary.Serve.Loadgen.mismatches > 0 then
    die "check FAILED: %d responses disagree with the sequential oracle"
      summary.Serve.Loadgen.mismatches

let loadgen_cmd =
  let port =
    Arg.(value & opt int 7227 & info [ "p"; "port" ] ~doc:"Server TCP port.")
  in
  let mode =
    Arg.(
      value
      & opt string "closed"
      & info [ "mode" ] ~doc:"closed (concurrency-bound) or open (rate-bound).")
  in
  let concurrency =
    Arg.(
      value & opt int 4
      & info [ "c"; "concurrency" ] ~doc:"Closed-loop worker threads.")
  in
  let qps =
    Arg.(
      value & opt float 500.
      & info [ "qps" ] ~doc:"Open-loop target arrival rate.")
  in
  let duration =
    Arg.(value & opt float 10. & info [ "duration" ] ~doc:"Run length in seconds.")
  in
  let warmup =
    Arg.(
      value & opt float 1.
      & info [ "warmup" ] ~doc:"Seconds excluded from latency accounting.")
  in
  let mix =
    Arg.(
      value
      & opt string "uniform"
      & info [ "mix" ] ~doc:"Query popularity: uniform or zipf.")
  in
  let zipf_s =
    Arg.(value & opt float 1.1 & info [ "zipf-s" ] ~doc:"Zipf skew exponent.")
  in
  let pool =
    Arg.(
      value & opt int 64
      & info [ "pool" ] ~doc:"Pregenerated queries per structure.")
  in
  let fraction =
    Arg.(value & opt float 0.02 & info [ "f"; "fraction" ] ~doc:"Query selectivity.")
  in
  let want_ids =
    Arg.(
      value & flag
      & info [ "ids" ] ~doc:"Request answer ids (id-reporting structures).")
  in
  let deadline =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~doc:"Per-request deadline (0 = server default).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Reopen each snapshot in-process and verify every response's \
             count, I/O cost words, and ids against the sequential \
             single-query engine; exit nonzero on any mismatch.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let writers =
    Arg.(
      value & opt int 1
      & info [ "writers" ]
          ~doc:
            "Open-loop writer connections; each paces its share of --qps.  \
             One writer tops out around tens of kQPS — raise this to reach \
             higher arrival rates.  Ignored in closed-loop mode.")
  in
  let server_domains =
    Arg.(
      value & opt int 0
      & info [ "server-domains" ]
          ~doc:
            "The server's effective domain count (from its startup banner), \
             recorded in the summary JSON meta; 0 = unknown.")
  in
  let out =
    Arg.(
      value
      & opt (some string) (Some "BENCH_SERVE.json")
      & info [ "json" ] ~docv:"PATH" ~doc:"Summary JSON output path.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chatty output.") in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a running lcsearch serve and measure tail latency")
    Term.(
      const loadgen_once $ host_arg $ port $ snapshots_arg $ mode $ concurrency
      $ qps $ duration $ warmup $ mix $ zipf_s $ pool $ fraction $ want_ids
      $ deadline $ check $ seed $ writers $ server_domains $ out $ verbose)

let info_text () =
  print_string
    "Efficient Searching with Linear Constraints — OCaml reproduction\n\
     Agarwal, Arge, Erickson, Franciosa, Vitter (PODS'98 / JCSS 2000)\n\n\
     Table 1 (query I/Os, space in blocks; n = N/B, t = T/B):\n\
    \  d=2  O(log_B n + t)            O(n)           Core.Halfspace2d  (§3)\n\
    \  d=3  O(log_B n + t) expected   O(n log2 n)    Core.Halfspace3d  (§4)\n\
    \  d=3  O(n^eps + t)              O(n log_B n)   Core.Shallow_tree (§6)\n\
    \  d=3  O((n/B^a)^{2/3+eps} + t)  O(n log2 B)    Core.Tradeoff3d   (§6)\n\
    \  d=3  O(n^{2/3+eps} + t)        O(n)           Core.Partition_tree (§5)\n\
    \  d    O(n^{1-1/(d/2)+eps} + t)  O(n log_B n)   Core.Shallow_tree (§6)\n\
    \  d    O(n^{1-1/d+eps} + t)      O(n)           Core.Partition_tree (§5)\n\n\
     Also: Core.Knn (Theorem 4.3), Core.Lowest_planes (Theorem 4.2),\n\
     baselines (R-tree, quadtree, grid file, linear scan), and a full\n\
     experiment harness (dune exec bench/main.exe).\n\
     Run `lcsearch list` for the registry with per-structure bounds.\n"

let info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Show the paper's results and the implementation map")
    Term.(const info_text $ const ())

let () =
  let doc = "external-memory halfspace range searching (PODS'98 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "lcsearch" ~version:"1.0.0" ~doc)
          [
            list_cmd;
            run_cmd;
            sweep_cmd;
            build_cmd;
            query_cmd;
            inspect_cmd;
            insert_cmd;
            delete_cmd;
            churn_cmd;
            serve_cmd;
            loadgen_cmd;
            knn_cmd;
            segments_cmd;
            info_cmd;
          ]))
