(* lcsearch: command-line front end for the library.

   Subcommands:
     info    — the paper's Table 1 and what this repo implements
     run     — build a structure over a generated workload, run queries,
               and report I/O statistics
     sweep   — sweep N and print scaling rows for one structure
     build   — build a structure and persist it to a snapshot file
     query   — reopen a snapshot in this (fresh) process and query it
     inspect — print a snapshot file's header *)

open Cmdliner

type structure = H2 | H3 | Ptree | Shallow | Tradeoff | Rtree | Quad | Grid | Scan

let structure_conv =
  let parse = function
    | "h2" -> Ok H2
    | "h3" -> Ok H3
    | "ptree" -> Ok Ptree
    | "shallow" -> Ok Shallow
    | "tradeoff" -> Ok Tradeoff
    | "rtree" -> Ok Rtree
    | "quadtree" -> Ok Quad
    | "gridfile" -> Ok Grid
    | "scan" -> Ok Scan
    | s -> Error (`Msg (Printf.sprintf "unknown structure %S" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
      | H2 -> "h2"
      | H3 -> "h3"
      | Ptree -> "ptree"
      | Shallow -> "shallow"
      | Tradeoff -> "tradeoff"
      | Rtree -> "rtree"
      | Quad -> "quadtree"
      | Grid -> "gridfile"
      | Scan -> "scan")
  in
  Arg.conv (parse, print)

type workload_kind = Uniform | Clusters | Diagonal

let workload_conv =
  let parse = function
    | "uniform" -> Ok Uniform
    | "clusters" -> Ok Clusters
    | "diagonal" -> Ok Diagonal
    | s -> Error (`Msg (Printf.sprintf "unknown workload %S" s))
  in
  let print ppf w =
    Format.pp_print_string ppf
      (match w with
      | Uniform -> "uniform"
      | Clusters -> "clusters"
      | Diagonal -> "diagonal")
  in
  Arg.conv (parse, print)

let is_3d = function H3 | Tradeoff -> true | _ -> false

let gen2 kind rng n =
  match kind with
  | Uniform -> Workload.uniform2 rng ~n ~range:100.
  | Clusters -> Workload.clusters2 rng ~n ~clusters:10 ~sigma:3. ~range:100.
  | Diagonal -> Workload.diagonal2 rng ~n ~jitter:0.01 ~range:100.

(* Build the chosen structure; returns (space in blocks, query runner
   where the query reports the count for a halfplane/halfspace of the
   requested selectivity). *)
let build_structure s ~stats ~block_size ~kind ~rng n =
  if is_3d s then begin
    let points = Workload.uniform3 rng ~n ~range:100. in
    let query fraction =
      let a, b, c = Workload.halfspace3_with_selectivity rng points ~fraction in
      let a = max (-9.9) (min 9.9 a) and b = max (-9.9) (min 9.9 b) in
      (a, b, c)
    in
    match s with
    | H3 ->
        let t =
          Core.Halfspace3d.build ~stats ~block_size ~clip:(-10., -10., 10., 10.)
            points
        in
        ( Core.Halfspace3d.space_blocks t,
          fun fraction ->
            let a, b, c = query fraction in
            Core.Halfspace3d.query_count t ~a ~b ~c )
    | Tradeoff ->
        let t =
          Core.Tradeoff3d.build ~stats ~block_size ~a:1.5
            ~clip:(-10., -10., 10., 10.) points
        in
        ( Core.Tradeoff3d.space_blocks t,
          fun fraction ->
            let a, b, c = query fraction in
            Core.Tradeoff3d.query_count t ~a ~b ~c )
    | _ -> assert false
  end
  else begin
    match s with
    | Ptree | Shallow ->
        let points =
          Array.map
            (fun p -> [| Geom.Point2.x p; Geom.Point2.y p |])
            (gen2 kind rng n)
        in
        let query fraction =
          Workload.halfspace_d_with_selectivity rng points ~fraction
        in
        if s = Ptree then begin
          let t = Core.Partition_tree.build ~stats ~block_size ~dim:2 points in
          ( Core.Partition_tree.space_blocks t,
            fun fraction ->
              let a0, a = query fraction in
              List.length (Core.Partition_tree.query_halfspace t ~a0 ~a) )
        end
        else begin
          let t = Core.Shallow_tree.build ~stats ~block_size ~dim:2 points in
          ( Core.Shallow_tree.space_blocks t,
            fun fraction ->
              let a0, a = query fraction in
              List.length (Core.Shallow_tree.query_halfspace t ~a0 ~a) )
        end
    | _ ->
        let points = gen2 kind rng n in
        let query fraction =
          Workload.halfplane_with_selectivity rng points ~fraction
        in
        (match s with
        | H2 ->
            let t = Core.Halfspace2d.build ~stats ~block_size points in
            ( Core.Halfspace2d.space_blocks t,
              fun fraction ->
                let slope, icept = query fraction in
                Core.Halfspace2d.query_count t ~slope ~icept )
        | Rtree ->
            let t = Baselines.Rtree.build ~stats ~block_size points in
            ( Baselines.Rtree.space_blocks t,
              fun fraction ->
                let slope, icept = query fraction in
                Baselines.Rtree.query_count t ~slope ~icept )
        | Quad ->
            let t = Baselines.Quadtree.build ~stats ~block_size points in
            ( Baselines.Quadtree.space_blocks t,
              fun fraction ->
                let slope, icept = query fraction in
                Baselines.Quadtree.query_count t ~slope ~icept )
        | Grid ->
            let t = Baselines.Grid_file.build ~stats ~block_size points in
            ( Baselines.Grid_file.space_blocks t,
              fun fraction ->
                let slope, icept = query fraction in
                Baselines.Grid_file.query_count t ~slope ~icept )
        | Scan ->
            let t = Baselines.Linear_scan.build ~stats ~block_size points in
            ( Baselines.Linear_scan.space_blocks t,
              fun fraction ->
                let slope, icept = query fraction in
                Baselines.Linear_scan.query_count t ~slope ~icept )
        | H3 | Tradeoff | Ptree | Shallow -> assert false)
  end

let run_once s n block_size fraction queries kind seed =
  let rng = Workload.rng seed in
  let stats = Emio.Io_stats.create () in
  let space, run_query = build_structure s ~stats ~block_size ~kind ~rng n in
  let build_ios = Emio.Io_stats.total stats in
  Printf.printf "N=%d  B=%d  n=%d blocks  space=%d blocks  build=%d I/Os\n" n
    block_size
    ((n + block_size - 1) / block_size)
    space build_ios;
  let total_io = ref 0 and total_t = ref 0 and max_io = ref 0 in
  for _ = 1 to queries do
    Emio.Io_stats.reset stats;
    let t = run_query fraction in
    let io = Emio.Io_stats.reads stats in
    total_io := !total_io + io;
    max_io := max !max_io io;
    total_t := !total_t + t
  done;
  Printf.printf
    "%d queries at selectivity %.3f: avg %.1f I/Os (max %d), avg t=%d points\n"
    queries fraction
    (float_of_int !total_io /. float_of_int queries)
    !max_io
    (!total_t / queries)

let run_cmd =
  let s =
    Arg.(
      value
      & opt structure_conv H2
      & info [ "s"; "structure" ]
          ~doc:
            "Structure: h2 (§3), h3 (§4), ptree (§5), shallow (§6), tradeoff \
             (§6.1), rtree, quadtree, gridfile, scan.")
  in
  let n = Arg.(value & opt int 16384 & info [ "n" ] ~doc:"Number of points.") in
  let b = Arg.(value & opt int 64 & info [ "b"; "block-size" ] ~doc:"Block size B.") in
  let fraction =
    Arg.(value & opt float 0.02 & info [ "f"; "fraction" ] ~doc:"Query selectivity.")
  in
  let queries = Arg.(value & opt int 20 & info [ "q"; "queries" ] ~doc:"Query count.") in
  let kind =
    Arg.(
      value
      & opt workload_conv Uniform
      & info [ "w"; "workload" ] ~doc:"Workload: uniform, clusters, diagonal.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "run" ~doc:"Build a structure and measure query I/Os")
    Term.(const run_once $ s $ n $ b $ fraction $ queries $ kind $ seed)

let sweep_once s block_size fraction kind seed =
  Printf.printf "%10s %8s %10s %10s\n" "N" "n" "avg IO" "space";
  List.iter
    (fun n ->
      let rng = Workload.rng (seed + n) in
      let stats = Emio.Io_stats.create () in
      let space, run_query = build_structure s ~stats ~block_size ~kind ~rng n in
      let total = ref 0 in
      let queries = 15 in
      for _ = 1 to queries do
        Emio.Io_stats.reset stats;
        ignore (run_query fraction);
        total := !total + Emio.Io_stats.reads stats
      done;
      Printf.printf "%10d %8d %10.1f %10d\n" n
        ((n + block_size - 1) / block_size)
        (float_of_int !total /. float_of_int queries)
        space)
    [ 4096; 8192; 16384; 32768 ]

let sweep_cmd =
  let s =
    Arg.(value & opt structure_conv H2 & info [ "s"; "structure" ] ~doc:"Structure.")
  in
  let b = Arg.(value & opt int 64 & info [ "b"; "block-size" ] ~doc:"Block size B.") in
  let fraction =
    Arg.(value & opt float 0.02 & info [ "f"; "fraction" ] ~doc:"Query selectivity.")
  in
  let kind =
    Arg.(value & opt workload_conv Uniform & info [ "w"; "workload" ] ~doc:"Workload.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep N and print I/O scaling")
    Term.(const sweep_once $ s $ b $ fraction $ kind $ seed)

let knn_once n block_size k qx qy seed =
  let rng = Workload.rng seed in
  let points = Workload.clusters2 rng ~n ~clusters:12 ~sigma:5. ~range:100. in
  let stats = Emio.Io_stats.create () in
  let t =
    Core.Knn.build ~stats ~block_size ~clip:(-200., -200., 200., 200.) points
  in
  Emio.Io_stats.reset stats;
  let nearest = Core.Knn.nearest t (Geom.Point2.make qx qy) ~k in
  Printf.printf "%d-NN of (%g, %g) over %d points (%d I/Os):\n" k qx qy n
    (Emio.Io_stats.reads stats);
  List.iter
    (fun (p, d) ->
      Printf.printf "  (%10.4f, %10.4f)  distance %.4f\n" (Geom.Point2.x p)
        (Geom.Point2.y p) d)
    nearest

let knn_cmd =
  let n = Arg.(value & opt int 10000 & info [ "n" ] ~doc:"Number of points.") in
  let b = Arg.(value & opt int 64 & info [ "b"; "block-size" ] ~doc:"Block size B.") in
  let k = Arg.(value & opt int 5 & info [ "k" ] ~doc:"Neighbors to report.") in
  let qx = Arg.(value & opt float 0. & info [ "x" ] ~doc:"Query x.") in
  let qy = Arg.(value & opt float 0. & info [ "y" ] ~doc:"Query y.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "knn" ~doc:"k-nearest-neighbor search via lifting (Thm 4.3)")
    Term.(const knn_once $ n $ b $ k $ qx $ qy $ seed)

let segments_once n block_size seed =
  let rng = Workload.rng seed in
  let segments =
    Array.init n (fun _ ->
        let cx = Random.State.float rng 200. -. 100.
        and cy = Random.State.float rng 200. -. 100. in
        let len = 0.5 +. Random.State.float rng 3. in
        let ang = Random.State.float rng (2. *. Float.pi) in
        ( Geom.Point2.make cx cy,
          Geom.Point2.make (cx +. (len *. cos ang)) (cy +. (len *. sin ang)) ))
  in
  let stats = Emio.Io_stats.create () in
  let t = Core.Seg_intersect.build ~stats ~block_size segments in
  Printf.printf "built over %d segments: %d blocks\n" n
    (Core.Seg_intersect.space_blocks t);
  for _ = 1 to 5 do
    let cx = Random.State.float rng 150. -. 75.
    and cy = Random.State.float rng 150. -. 75. in
    let qa = Geom.Point2.make cx cy
    and qb = Geom.Point2.make (cx +. 20.) (cy +. 12.) in
    Emio.Io_stats.reset stats;
    let hits = Core.Seg_intersect.query t qa qb in
    Printf.printf "query (%g,%g)-(%g,%g): %d crossings, %d I/Os (scan %d)\n"
      cx cy (cx +. 20.) (cy +. 12.) (List.length hits)
      (Emio.Io_stats.reads stats)
      ((n + block_size - 1) / block_size)
  done

let segments_cmd =
  let n = Arg.(value & opt int 16384 & info [ "n" ] ~doc:"Number of segments.") in
  let b = Arg.(value & opt int 64 & info [ "b"; "block-size" ] ~doc:"Block size B.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "segments"
       ~doc:"segment intersection searching (§7 open problem 2)")
    Term.(const segments_once $ n $ b $ seed)

(* ---------- persistence: build / query / inspect ---------- *)

let structure_name = function
  | H2 -> "h2"
  | H3 -> "h3"
  | Ptree -> "ptree"
  | Shallow -> "shallow"
  | Tradeoff -> "tradeoff"
  | Rtree -> "rtree"
  | Quad -> "quadtree"
  | Grid -> "gridfile"
  | Scan -> "scan"

let workload_name = function
  | Uniform -> "uniform"
  | Clusters -> "clusters"
  | Diagonal -> "diagonal"

(* The snapshot's meta string records the workload parameters, so
   [query] can regenerate the exact point and query streams of the
   process that built the file (same seed -> same Workload.rng). *)
let meta_string ~s ~n ~block_size ~kind ~seed =
  Printf.sprintf "s=%s;n=%d;b=%d;w=%s;seed=%d" (structure_name s) n block_size
    (workload_name kind) seed

let meta_field meta key =
  List.find_map
    (fun kv ->
      match String.index_opt kv '=' with
      | Some i when String.sub kv 0 i = key ->
          Some (String.sub kv (i + 1) (String.length kv - i - 1))
      | _ -> None)
    (String.split_on_char ';' meta)

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let build_once s n block_size kind seed out page_size =
  (match page_size with
  | Some p when p < Diskstore.Block_file.min_page_size ->
      die "--page-size must be at least %d bytes"
        Diskstore.Block_file.min_page_size
  | _ -> ());
  let rng = Workload.rng seed in
  let points = gen2 kind rng n in
  let stats = Emio.Io_stats.create () in
  let meta = meta_string ~s ~n ~block_size ~kind ~seed in
  (try
     match s with
  | H2 ->
      let t = Core.Halfspace2d.build ~stats ~block_size points in
      Core.Halfspace2d.save_snapshot t ~path:out ~meta ?page_size ()
  | Rtree ->
      let t = Baselines.Rtree.build ~stats ~block_size points in
      Baselines.Rtree.save_snapshot t ~path:out ~meta ?page_size ()
  | Scan ->
      let t = Baselines.Linear_scan.build ~stats ~block_size points in
      Baselines.Linear_scan.save_snapshot t ~path:out ~meta ?page_size ()
     | other ->
         die "structure %s does not support snapshots (use h2, rtree or scan)"
           (structure_name other)
   with Invalid_argument msg -> die "cannot write %s: %s" out msg);
  match Diskstore.Snapshot.read_info out with
  | Error e -> die "wrote %s but cannot read it back: %s" out
                 (Diskstore.Snapshot.error_to_string e)
  | Ok info ->
      Printf.printf
        "%s: %s  N=%d  B=%d  build=%d model I/Os  %d pages of %d bytes\n" out
        info.Diskstore.Snapshot.kind n block_size
        (Emio.Io_stats.total stats)
        info.Diskstore.Snapshot.total_pages info.Diskstore.Snapshot.page_size

let build_cmd =
  let s =
    Arg.(
      value
      & opt structure_conv H2
      & info [ "s"; "structure" ]
          ~doc:"Structure to persist: h2, rtree, or scan.")
  in
  let n = Arg.(value & opt int 16384 & info [ "n" ] ~doc:"Number of points.") in
  let b = Arg.(value & opt int 64 & info [ "b"; "block-size" ] ~doc:"Block size B.") in
  let kind =
    Arg.(
      value
      & opt workload_conv Uniform
      & info [ "w"; "workload" ] ~doc:"Workload: uniform, clusters, diagonal.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Snapshot file to write.")
  in
  let page_size =
    Arg.(
      value
      & opt (some int) None
      & info [ "page-size" ] ~doc:"Snapshot page size in bytes (default 4096).")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build a structure and persist it to a snapshot")
    Term.(const build_once $ s $ n $ b $ kind $ seed $ out $ page_size)

let policy_conv =
  Arg.enum
    [ ("lru", Diskstore.Buffer_pool.Lru); ("clock", Diskstore.Buffer_pool.Clock) ]

let sorted_pts l =
  List.sort compare
    (List.map (fun p -> (Geom.Point2.x p, Geom.Point2.y p)) l)

(* Reopen [path] and return a halfplane query closure over it,
   dispatching on the header's kind tag. *)
let open_snapshot path ~stats ~policy ~cache_pages info =
  let kind = info.Diskstore.Snapshot.kind in
  let wrap = function
    | Error e ->
        die "%s: %s" path (Diskstore.Snapshot.error_to_string e)
    | Ok q -> q
  in
  if kind = Core.Halfspace2d.snapshot_kind then
    wrap
      (match Core.Halfspace2d.of_snapshot ~stats ~policy ~cache_pages path with
      | Error _ as e -> e
      | Ok (t, _) ->
          Ok (fun ~slope ~icept -> Core.Halfspace2d.query t ~slope ~icept))
  else if kind = Baselines.Rtree.snapshot_kind then
    wrap
      (match Baselines.Rtree.of_snapshot ~stats ~policy ~cache_pages path with
      | Error _ as e -> e
      | Ok (t, _) ->
          Ok (fun ~slope ~icept -> Baselines.Rtree.query_halfplane t ~slope ~icept))
  else if kind = Baselines.Linear_scan.snapshot_kind then
    wrap
      (match Baselines.Linear_scan.of_snapshot ~stats ~policy ~cache_pages path with
      | Error _ as e -> e
      | Ok (t, _) ->
          Ok
            (fun ~slope ~icept ->
              Baselines.Linear_scan.query_halfplane t ~slope ~icept))
  else die "%s: unknown snapshot kind %S" path kind

(* In-memory rebuild over the same points, for --check. *)
let reference_query s ~block_size points =
  let stats = Emio.Io_stats.create () in
  match s with
  | "h2" ->
      let t = Core.Halfspace2d.build ~stats ~block_size points in
      fun ~slope ~icept -> Core.Halfspace2d.query t ~slope ~icept
  | "rtree" ->
      let t = Baselines.Rtree.build ~stats ~block_size points in
      fun ~slope ~icept -> Baselines.Rtree.query_halfplane t ~slope ~icept
  | "scan" ->
      let t = Baselines.Linear_scan.build ~stats ~block_size points in
      fun ~slope ~icept -> Baselines.Linear_scan.query_halfplane t ~slope ~icept
  | other -> die "unknown structure %S in snapshot meta" other

let query_once path fraction queries cache_pages policy check =
  let info =
    match Diskstore.Snapshot.read_info path with
    | Ok info -> info
    | Error e -> die "%s: %s" path (Diskstore.Snapshot.error_to_string e)
  in
  let meta = info.Diskstore.Snapshot.meta in
  let field key =
    match meta_field meta key with
    | Some v -> v
    | None -> die "%s: snapshot meta %S lacks %S" path meta key
  in
  let int_field key =
    match int_of_string_opt (field key) with
    | Some v -> v
    | None -> die "%s: bad %S in snapshot meta" path key
  in
  let n = int_field "n"
  and block_size = int_field "b"
  and seed = int_field "seed" in
  let kind =
    match field "w" with
    | "uniform" -> Uniform
    | "clusters" -> Clusters
    | "diagonal" -> Diagonal
    | w -> die "%s: unknown workload %S in snapshot meta" path w
  in
  (* replay the builder's stream: points first, then queries *)
  let rng = Workload.rng seed in
  let points = gen2 kind rng n in
  let stats = Emio.Io_stats.create () in
  let run_query = open_snapshot path ~stats ~policy ~cache_pages info in
  let reference =
    if check then Some (reference_query (field "s") ~block_size points)
    else None
  in
  Printf.printf "%s: %s  meta %s  %d pages of %d bytes\n" path
    info.Diskstore.Snapshot.kind meta info.Diskstore.Snapshot.total_pages
    info.Diskstore.Snapshot.page_size;
  Emio.Io_stats.reset stats (* drop the load-time verification sweep *);
  let total_t = ref 0 and mismatches = ref 0 in
  for _ = 1 to queries do
    let slope, icept =
      Workload.halfplane_with_selectivity rng points ~fraction
    in
    let result = run_query ~slope ~icept in
    total_t := !total_t + List.length result;
    match reference with
    | Some ref_query ->
        if sorted_pts (ref_query ~slope ~icept) <> sorted_pts result then
          incr mismatches
    | None -> ()
  done;
  Printf.printf
    "%d queries at selectivity %.3f: avg t=%d points, %d page faults, %d \
     pool hits, %d evictions, %.1f KiB read\n"
    queries fraction
    (!total_t / max 1 queries)
    (Emio.Io_stats.reads stats)
    (Emio.Io_stats.cache_hits stats)
    (Emio.Io_stats.evictions stats)
    (float_of_int (Emio.Io_stats.bytes_read stats) /. 1024.);
  if check then
    if !mismatches = 0 then
      Printf.printf
        "check: all %d result sets identical to an in-memory rebuild\n" queries
    else
      die "check FAILED: %d of %d result sets differ from in-memory rebuild"
        !mismatches queries

let query_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PATH" ~doc:"Snapshot file written by $(b,lcsearch build).")
  in
  let fraction =
    Arg.(value & opt float 0.02 & info [ "f"; "fraction" ] ~doc:"Query selectivity.")
  in
  let queries = Arg.(value & opt int 20 & info [ "q"; "queries" ] ~doc:"Query count.") in
  let cache_pages =
    Arg.(
      value & opt int 64
      & info [ "cache-pages" ] ~doc:"Buffer-pool capacity in pages.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Diskstore.Buffer_pool.Lru
      & info [ "policy" ] ~doc:"Buffer-pool eviction policy: lru or clock.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Rebuild the structure in memory from the recorded workload and \
             verify every result set matches the snapshot's.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Reopen a persisted snapshot and query it")
    Term.(
      const query_once $ path $ fraction $ queries $ cache_pages $ policy
      $ check)

let inspect_once path =
  match Diskstore.Snapshot.read_info path with
  | Error e -> die "%s: %s" path (Diskstore.Snapshot.error_to_string e)
  | Ok i ->
      Printf.printf
        "%s:\n  kind        %s\n  meta        %s\n  version     %d\n\
        \  page size   %d bytes\n  block size  %d items\n  blocks      %d\n\
        \  pages       %d (%d bytes)\n"
        path i.Diskstore.Snapshot.kind i.Diskstore.Snapshot.meta
        i.Diskstore.Snapshot.version i.Diskstore.Snapshot.page_size
        i.Diskstore.Snapshot.block_size i.Diskstore.Snapshot.n_blocks
        i.Diskstore.Snapshot.total_pages
        (i.Diskstore.Snapshot.total_pages * i.Diskstore.Snapshot.page_size)

let inspect_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PATH" ~doc:"Snapshot file.")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Print a snapshot file's header")
    Term.(const inspect_once $ path)

let info_text () =
  print_string
    "Efficient Searching with Linear Constraints — OCaml reproduction\n\
     Agarwal, Arge, Erickson, Franciosa, Vitter (PODS'98 / JCSS 2000)\n\n\
     Table 1 (query I/Os, space in blocks; n = N/B, t = T/B):\n\
    \  d=2  O(log_B n + t)            O(n)           Core.Halfspace2d  (§3)\n\
    \  d=3  O(log_B n + t) expected   O(n log2 n)    Core.Halfspace3d  (§4)\n\
    \  d=3  O(n^eps + t)              O(n log_B n)   Core.Shallow_tree (§6)\n\
    \  d=3  O((n/B^a)^{2/3+eps} + t)  O(n log2 B)    Core.Tradeoff3d   (§6)\n\
    \  d=3  O(n^{2/3+eps} + t)        O(n)           Core.Partition_tree (§5)\n\
    \  d    O(n^{1-1/(d/2)+eps} + t)  O(n log_B n)   Core.Shallow_tree (§6)\n\
    \  d    O(n^{1-1/d+eps} + t)      O(n)           Core.Partition_tree (§5)\n\n\
     Also: Core.Knn (Theorem 4.3), Core.Lowest_planes (Theorem 4.2),\n\
     baselines (R-tree, quadtree, grid file, linear scan), and a full\n\
     experiment harness (dune exec bench/main.exe).\n"

let info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Show the paper's results and the implementation map")
    Term.(const info_text $ const ())

let () =
  let doc = "external-memory halfspace range searching (PODS'98 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "lcsearch" ~version:"1.0.0" ~doc)
          [
            run_cmd;
            sweep_cmd;
            build_cmd;
            query_cmd;
            inspect_cmd;
            knn_cmd;
            segments_cmd;
            info_cmd;
          ]))
