(** Axis-aligned rectangles and their classification against a
    halfplane [y <= slope x + icept] — shared by the R-tree, grid file
    and quadtree baselines. *)

open Geom

type t = { x0 : float; y0 : float; x1 : float; y1 : float }

type side = Inside | Outside | Crossing

let of_points points =
  Array.fold_left
    (fun r p ->
      {
        x0 = min r.x0 (Point2.x p);
        y0 = min r.y0 (Point2.y p);
        x1 = max r.x1 (Point2.x p);
        y1 = max r.y1 (Point2.y p);
      })
    { x0 = infinity; y0 = infinity; x1 = neg_infinity; y1 = neg_infinity }
    points

let union a b =
  {
    x0 = min a.x0 b.x0;
    y0 = min a.y0 b.y0;
    x1 = max a.x1 b.x1;
    y1 = max a.y1 b.y1;
  }

let contains r p =
  Point2.x p >= r.x0 -. Eps.eps
  && Point2.x p <= r.x1 +. Eps.eps
  && Point2.y p >= r.y0 -. Eps.eps
  && Point2.y p <= r.y1 +. Eps.eps

(* Extrema of f(x,y) = y - slope*x - icept over the rectangle. *)
let classify r ~slope ~icept =
  let fmin =
    r.y0 -. (slope *. if slope >= 0. then r.x1 else r.x0) -. icept
  in
  let fmax =
    r.y1 -. (slope *. if slope >= 0. then r.x0 else r.x1) -. icept
  in
  (* Inside/Outside must be consistent with the point predicate
     f <= eps: Inside when every point passes, Outside when none can *)
  if fmax <= Eps.eps then Inside
  else if fmin > Eps.eps then Outside
  else Crossing

let intersects a b =
  a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1

let codec =
  Emio.Codec.map
    ~decode:(fun (x0, y0, x1, y1) -> { x0; y0; x1; y1 })
    ~encode:(fun r -> (r.x0, r.y0, r.x1, r.y1))
    Emio.Codec.(quad float float float float)
