(** A grid file [Nievergelt–Hinterberger–Sevcik, §1.2 ref 41]: a
    uniform bucket grid over the bounding box.  Good on uniform data,
    degenerate when the data (or the query boundary) concentrates in
    few cells — e.g. the §1.2 diagonal construction, where the query
    boundary crosses every occupied cell. *)

type t

val build :
  stats:Emio.Io_stats.t -> block_size:int -> ?cache_blocks:int ->
  ?backend:Emio.Store_intf.backend ->
  Geom.Point2.t array -> t

val query_halfplane : t -> slope:float -> icept:float -> Geom.Point2.t list
val query_count : t -> slope:float -> icept:float -> int

val query_iter :
  t -> slope:float -> icept:float -> (Geom.Point2.t -> unit) -> unit
(** Visitor form of {!query_halfplane}: same scan (I/O-identical), one
    callback per answering point, no list. *)

val query_window : t -> Rect.t -> Geom.Point2.t list

val space_blocks : t -> int
val length : t -> int
val side : t -> int

(** {2 Persistence} *)

val snapshot_kind : string
(** ["lcsearch.gridfile"]. *)

val save_snapshot :
  t -> path:string -> ?meta:string -> ?page_size:int -> unit -> unit

val of_snapshot :
  stats:Emio.Io_stats.t ->
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  string ->
  (t * Diskstore.Snapshot.info, Diskstore.Snapshot.error) result
