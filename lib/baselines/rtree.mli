(** An R-tree bulk-loaded with Sort-Tile-Recursive packing — the
    classical practical spatial index the paper's §1.2 compares against
    (Guttman's R-tree and variants [29, 9]).

    Supports halfplane and window queries.  Worst-case query cost is
    Θ(n) I/Os: §1.2's diagonal construction makes every leaf MBR
    straddle the query boundary (the [sec12_adversarial] bench
    reproduces this degradation). *)

type t

type packing =
  | Str  (** Sort-Tile-Recursive packing (the default) *)
  | Hilbert
      (** Hilbert-curve packing, the Hilbert R-tree of Kamel–Faloutsos
          (§1.2 ref [33]) *)

val build :
  stats:Emio.Io_stats.t -> block_size:int -> ?cache_blocks:int ->
  ?backend:Emio.Store_intf.backend ->
  ?packing:packing -> Geom.Point2.t array -> t

val query_halfplane : t -> slope:float -> icept:float -> Geom.Point2.t list
val query_count : t -> slope:float -> icept:float -> int

val query_iter :
  t -> slope:float -> icept:float -> (Geom.Point2.t -> unit) -> unit
(** Visitor form of {!query_halfplane}: same traversal (I/O-identical),
    one callback per answering point, no list. *)

val query_window : t -> Rect.t -> Geom.Point2.t list
(** Classical isothetic (window) range query. *)

val space_blocks : t -> int
val length : t -> int
val height : t -> int

val snapshot_kind : string
(** ["lcsearch.rtree"], the default [kind] below. *)

val save_snapshot :
  t ->
  path:string ->
  ?kind:string ->
  ?meta:string ->
  ?page_size:int ->
  unit ->
  unit
(** Leaf blocks become payload pages; internal levels ride in the
    skeleton (pinned in memory when reopened).  [kind] lets packing
    variants stamp their own snapshot kind (e.g.
    ["lcsearch.rtree-hilbert"]). *)

val of_snapshot :
  stats:Emio.Io_stats.t ->
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  ?kind:string ->
  string ->
  (t * Diskstore.Snapshot.info, Diskstore.Snapshot.error) result
(** See {!Core.Halfspace2d.of_snapshot}; same snapshot contract.
    [kind] must match the kind the file was saved with. *)
