open Geom

type node_ref = Leaf of int | Node of int

type entry = { mbr : Rect.t; sub : node_ref }

type t = {
  leaves : Point2.t Emio.Store.t;
  internals : entry Emio.Store.t;
  root : node_ref option;
  root_mbr : Rect.t;
  length : int;
  height : int;
}

let length t = t.length
let height t = t.height

let space_blocks t =
  Emio.Store.blocks_used t.leaves + Emio.Store.blocks_used t.internals

type packing = Str | Hilbert

(* Hilbert index of a cell (x, y) of the 2^order x 2^order grid;
   the classical bit-by-bit rotation construction. *)
let hilbert_index ~order x y =
  let x = ref x and y = ref y and d = ref 0 in
  let s = ref (1 lsl (order - 1)) in
  while !s > 0 do
    let rx = if !x land !s > 0 then 1 else 0 in
    let ry = if !y land !s > 0 then 1 else 0 in
    d := !d + (!s * !s * ((3 * rx) lxor ry));
    (* rotate the quadrant *)
    if ry = 0 then begin
      if rx = 1 then begin
        x := !s - 1 - !x;
        y := !s - 1 - !y
      end;
      let tmp = !x in
      x := !y;
      y := tmp
    end;
    s := !s / 2
  done;
  !d

(* Hilbert packing: sort by the Hilbert index of the quantized
   coordinates and chop into blocks of B. *)
let hilbert_pack ~block_size points =
  let n = Array.length points in
  let bbox = Rect.of_points points in
  let order = 16 in
  let side = float_of_int ((1 lsl order) - 1) in
  let quantize v lo hi =
    if hi <= lo then 0
    else int_of_float ((v -. lo) /. (hi -. lo) *. side)
  in
  let keyed =
    Array.map
      (fun p ->
        ( hilbert_index ~order
            (quantize (Point2.x p) bbox.Rect.x0 bbox.Rect.x1)
            (quantize (Point2.y p) bbox.Rect.y0 bbox.Rect.y1),
          p ))
      points
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) keyed;
  let n_leaves = (n + block_size - 1) / block_size in
  Array.init n_leaves (fun i ->
      let lo = i * block_size in
      let len = min block_size (n - lo) in
      Array.init len (fun j -> snd keyed.(lo + j)))

(* Sort-Tile-Recursive packing: sort by x, cut into vertical slices of
   ~sqrt(N/B) * B points, sort each slice by y, pack runs of B. *)
let str_pack ~block_size points =
  let n = Array.length points in
  let pts = Array.copy points in
  Array.sort (fun p q -> Float.compare (Point2.x p) (Point2.x q)) pts;
  let n_leaves = (n + block_size - 1) / block_size in
  let slices = max 1 (int_of_float (ceil (sqrt (float_of_int n_leaves)))) in
  let slice_size = ((n_leaves + slices - 1) / slices) * block_size in
  let groups = ref [] in
  let i = ref 0 in
  while !i < n do
    let len = min slice_size (n - !i) in
    let slice = Array.sub pts !i len in
    Array.sort (fun p q -> Float.compare (Point2.y p) (Point2.y q)) slice;
    let j = ref 0 in
    while !j < len do
      let blen = min block_size (len - !j) in
      groups := Array.sub slice !j blen :: !groups;
      j := !j + blen
    done;
    i := !i + len
  done;
  Array.of_list (List.rev !groups)

let build ~stats ~block_size ?(cache_blocks = 0) ?backend ?(packing = Str)
    points =
  let leaves =
    Emio.Store.create ~stats ~block_size ~cache_blocks ~codec:Point2.codec
      ?backend ()
  in
  let internals = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  if Array.length points = 0 then
    {
      leaves;
      internals;
      root = None;
      root_mbr = { Rect.x0 = 0.; y0 = 0.; x1 = 0.; y1 = 0. };
      length = 0;
      height = 0;
    }
  else begin
    let leaf_groups =
      match packing with
      | Str -> str_pack ~block_size points
      | Hilbert -> hilbert_pack ~block_size points
    in
    let level =
      ref
        (Array.map
           (fun group ->
             { mbr = Rect.of_points group; sub = Leaf (Emio.Store.alloc leaves group) })
           leaf_groups)
    in
    let height = ref 1 in
    while Array.length !level > 1 do
      (* pack parent entries STR-style on MBR centers *)
      let entries = !level in
      Array.sort
        (fun a b -> Float.compare (a.mbr.Rect.x0 +. a.mbr.Rect.x1) (b.mbr.Rect.x0 +. b.mbr.Rect.x1))
        entries;
      let n_nodes = (Array.length entries + block_size - 1) / block_size in
      let slices = max 1 (int_of_float (ceil (sqrt (float_of_int n_nodes)))) in
      let slice_size = ((n_nodes + slices - 1) / slices) * block_size in
      let parents = ref [] in
      let i = ref 0 in
      while !i < Array.length entries do
        let len = min slice_size (Array.length entries - !i) in
        let slice = Array.sub entries !i len in
        Array.sort
          (fun a b ->
            Float.compare (a.mbr.Rect.y0 +. a.mbr.Rect.y1) (b.mbr.Rect.y0 +. b.mbr.Rect.y1))
          slice;
        let j = ref 0 in
        while !j < len do
          let blen = min block_size (len - !j) in
          let group = Array.sub slice !j blen in
          let mbr =
            Array.fold_left
              (fun acc e -> Rect.union acc e.mbr)
              group.(0).mbr group
          in
          parents := { mbr; sub = Node (Emio.Store.alloc internals group) } :: !parents;
          j := !j + blen
        done;
        i := !i + len
      done;
      level := Array.of_list (List.rev !parents);
      incr height
    done;
    let root_entry = (!level).(0) in
    {
      leaves;
      internals;
      root = Some root_entry.sub;
      root_mbr = root_entry.mbr;
      length = Array.length points;
      height = !height;
    }
  end

let rec report_all t f = function
  | Leaf id -> Array.iter f (Emio.Store.read t.leaves id)
  | Node id ->
      Array.iter
        (fun e -> report_all t f e.sub)
        (Emio.Store.read t.internals id)

(* The shared traversal: list, visitor and counting callers all run
   the identical (I/O-identical) walk. *)
let query_visit t ~classify ~keep f =
  let rec go = function
    | Leaf id ->
        Array.iter (fun p -> if keep p then f p) (Emio.Store.read t.leaves id)
    | Node id ->
        Array.iter
          (fun e ->
            match classify e.mbr with
            | Rect.Inside -> report_all t f e.sub
            | Rect.Outside -> ()
            | Rect.Crossing -> go e.sub)
          (Emio.Store.read t.internals id)
  in
  match t.root with
  | None -> ()
  | Some root -> (
      match classify t.root_mbr with
      | Rect.Outside -> ()
      | Rect.Inside -> report_all t f root
      | Rect.Crossing -> go root)

let query_fold t ~classify ~keep acc0 =
  let acc = ref acc0 in
  query_visit t ~classify ~keep (fun p -> acc := p :: !acc);
  !acc

let halfplane_classify ~slope ~icept r = Rect.classify r ~slope ~icept

let halfplane_keep ~slope ~icept (p : Point2.t) =
  p.Point2.y <= (slope *. p.Point2.x) +. icept +. Eps.eps

let query_iter t ~slope ~icept f =
  query_visit t
    ~classify:(halfplane_classify ~slope ~icept)
    ~keep:(halfplane_keep ~slope ~icept) f

let query_halfplane t ~slope ~icept =
  query_fold t
    ~classify:(halfplane_classify ~slope ~icept)
    ~keep:(halfplane_keep ~slope ~icept) []

(* Counting fast path: the same traversal (identical Store.read
   sequence) as [query_visit] with the classify/keep closures unrolled
   into direct float comparisons, [Inside] subtrees counted by leaf
   lengths instead of per-point visits, and no per-entry closure
   calls.  Keep the classification arithmetic in sync with
   [Rect.classify] and [halfplane_keep]. *)
let query_count t ~slope ~icept =
  let open Rect in
  let rec count_all nr =
    match nr with
    | Leaf id -> Array.length (Emio.Store.read t.leaves id)
    | Node id ->
        let es = Emio.Store.read t.internals id in
        let n = ref 0 in
        for i = 0 to Array.length es - 1 do
          n := !n + count_all es.(i).sub
        done;
        !n
  in
  let rec go nr =
    match nr with
    | Leaf id ->
        let pts = Emio.Store.read t.leaves id in
        let n = ref 0 in
        for i = 0 to Array.length pts - 1 do
          let p = pts.(i) in
          if p.Point2.y <= (slope *. p.Point2.x) +. icept +. Eps.eps then
            incr n
        done;
        !n
    | Node id ->
        let es = Emio.Store.read t.internals id in
        let n = ref 0 in
        for i = 0 to Array.length es - 1 do
          let e = es.(i) in
          let r = e.mbr in
          let fmax =
            r.y1 -. (slope *. if slope >= 0. then r.x0 else r.x1) -. icept
          in
          if fmax <= Eps.eps then n := !n + count_all e.sub
          else begin
            let fmin =
              r.y0 -. (slope *. if slope >= 0. then r.x1 else r.x0) -. icept
            in
            if fmin <= Eps.eps then n := !n + go e.sub
          end
        done;
        !n
  in
  match t.root with
  | None -> 0
  | Some root -> (
      match Rect.classify t.root_mbr ~slope ~icept with
      | Rect.Outside -> 0
      | Rect.Inside -> count_all root
      | Rect.Crossing -> go root)

let query_window t w =
  query_fold t
    ~classify:(fun r ->
      if w.Rect.x0 <= r.Rect.x0 && r.Rect.x1 <= w.Rect.x1
         && w.Rect.y0 <= r.Rect.y0 && r.Rect.y1 <= w.Rect.y1
      then Rect.Inside
      else if Rect.intersects r w then Rect.Crossing
      else Rect.Outside)
    ~keep:(fun p -> Rect.contains w p)
    []

(* Persistence: the leaf store is the snapshot payload; the internal
   levels (O(n/B) entries) ride in the skeleton and stay in memory,
   like a real system pinning index nodes.  [kind] is a parameter so
   the Hilbert-packed variant can stamp its own snapshot kind (the
   registry requires kinds to be injective across structures). *)

let node_ref_codec =
  Emio.Codec.map
    ~decode:(fun (tag, id) ->
      match tag with
      | 0 -> Leaf id
      | 1 -> Node id
      | t -> raise (Emio.Codec.Decode (Printf.sprintf "bad node_ref tag %d" t)))
    ~encode:(function Leaf id -> (0, id) | Node id -> (1, id))
    Emio.Codec.(pair u8 int)

let entry_codec =
  Emio.Codec.map
    ~decode:(fun (mbr, sub) -> { mbr; sub })
    ~encode:(fun e -> (e.mbr, e.sub))
    Emio.Codec.(pair Rect.codec node_ref_codec)

type portable = {
  rp_internal_blocks : entry array array;
  rp_root : node_ref option;
  rp_root_mbr : Rect.t;
  rp_length : int;
  rp_height : int;
  rp_block_size : int;
  rp_cache_blocks : int;
}

let to_portable t =
  {
    rp_internal_blocks = Emio.Store.to_blocks t.internals;
    rp_root = t.root;
    rp_root_mbr = t.root_mbr;
    rp_length = t.length;
    rp_height = t.height;
    rp_block_size = Emio.Store.block_size t.leaves;
    rp_cache_blocks = Emio.Store.cache_blocks t.leaves;
  }

let of_portable ~stats ~backend p =
  let block_size = p.rp_block_size and cache_blocks = p.rp_cache_blocks in
  {
    leaves =
      Emio.Store.of_backend ~stats ~block_size ~cache_blocks
        ~codec:Point2.codec backend;
    internals =
      Emio.Store.of_blocks ~stats ~block_size ~cache_blocks
        p.rp_internal_blocks;
    root = p.rp_root;
    root_mbr = p.rp_root_mbr;
    length = p.rp_length;
    height = p.rp_height;
  }

let portable_codec =
  let open Emio.Codec in
  map
    ~decode:(fun ((ib, root, mbr), (len, h), (bs, cb)) ->
      { rp_internal_blocks = ib; rp_root = root; rp_root_mbr = mbr;
        rp_length = len; rp_height = h; rp_block_size = bs;
        rp_cache_blocks = cb })
    ~encode:(fun p ->
      ( (p.rp_internal_blocks, p.rp_root, p.rp_root_mbr),
        (p.rp_length, p.rp_height),
        (p.rp_block_size, p.rp_cache_blocks) ))
    (triple
       (triple (array (array entry_codec)) (option node_ref_codec) Rect.codec)
       (pair int int) (pair int int))

let snapshot_kind = "lcsearch.rtree"

let skeleton_codec ~kind =
  Emio.Codec.versioned ~magic:kind ~version:1 portable_codec

let save_snapshot t ~path ?(kind = snapshot_kind) ?meta ?page_size () =
  Diskstore.Snapshot.save ~path ~kind ?meta ?page_size
    ~block_size:(Emio.Store.block_size t.leaves)
    ~payload:(Emio.Store.export_bytes t.leaves)
    ~skeleton:(Emio.Codec.encode (skeleton_codec ~kind) (to_portable t))
    ()

let of_snapshot ~stats ?policy ?cache_pages ?(kind = snapshot_kind) path =
  match
    Diskstore.Snapshot.load ~path ~stats ?policy ?cache_pages
      ~expect_kind:kind ()
  with
  | Error _ as e -> e
  | Ok opened ->
      let result =
        match
          Diskstore.Snapshot.decode_skeleton (skeleton_codec ~kind)
            opened.Diskstore.Snapshot.skeleton
        with
        | Error _ as e -> e
        | Ok p ->
            Diskstore.Snapshot.reconstruct (fun () ->
                ( of_portable ~stats
                    ~backend:opened.Diskstore.Snapshot.backend p,
                  opened.Diskstore.Snapshot.info ))
      in
      (match result with
      | Error _ -> Diskstore.Snapshot.close opened
      | Ok _ -> ());
      result
