(** Axis-aligned rectangles and their classification against a
    halfplane [y ≤ slope·x + icept] — shared by the R-tree, grid file
    and quadtree baselines. *)

type t = { x0 : float; y0 : float; x1 : float; y1 : float }

type side =
  | Inside  (** every point of the rectangle satisfies the halfplane *)
  | Outside  (** no point can satisfy it (beyond tolerance) *)
  | Crossing

val of_points : Geom.Point2.t array -> t
(** Bounding box; degenerate (infinite) on an empty array. *)

val union : t -> t -> t
val contains : t -> Geom.Point2.t -> bool

val classify : t -> slope:float -> icept:float -> side
(** Exact, via the per-corner extrema of the affine gap function;
    consistent with the point predicate [y ≤ slope·x + icept + eps]. *)

val intersects : t -> t -> bool

val codec : t Emio.Codec.t
(** Four IEEE-754 floats (x0, y0, x1, y1). *)
