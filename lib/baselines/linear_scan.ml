open Geom

type t = { run : Point2.t Emio.Run.t; length : int }

let build ~stats ~block_size ?(cache_blocks = 0) ?backend points =
  let store =
    Emio.Store.create ~stats ~block_size ~cache_blocks ~codec:Point2.codec
      ?backend ()
  in
  { run = Emio.Run.of_array store points; length = Array.length points }

(* Direct field access, not the Point2.x/y accessors: under dune's dev
   profile (-opaque) the accessor calls are not inlined and box their
   float result — two allocations per scanned point. *)
let below ~slope ~icept (p : Point2.t) =
  p.Point2.y <= (slope *. p.Point2.x) +. icept +. Eps.eps

let query_iter t ~slope ~icept f =
  Emio.Run.iter (fun p -> if below ~slope ~icept p then f p) t.run

let query_halfplane t ~slope ~icept =
  Emio.Run.fold
    (fun acc p -> if below ~slope ~icept p then p :: acc else acc)
    [] t.run

let query_count t ~slope ~icept =
  Emio.Run.fold
    (fun acc p -> if below ~slope ~icept p then acc + 1 else acc)
    0 t.run

let space_blocks t = Emio.Run.block_count t.run
let length t = t.length

(* The d-dimensional variant: the same Θ(n)-I/O scan over coordinate
   rows.  It is the conformance oracle for every structure the 2-D
   point type cannot feed, and uses the same Partition.Cells predicate
   as the partition trees so boundary tolerance is bit-identical. *)

type d = {
  drun : Partition.Cells.point Emio.Run.t;
  ddim : int;
  dlength : int;
}

let build_d ~stats ~block_size ?(cache_blocks = 0) ?backend ~dim points =
  if dim < 2 then invalid_arg "Linear_scan.build_d: need dim >= 2";
  Array.iter
    (fun p ->
      if Array.length p <> dim then
        invalid_arg "Linear_scan.build_d: wrong point dimension")
    points;
  let store =
    Emio.Store.create ~stats ~block_size ~cache_blocks
      ~codec:Partition.Cells.point_codec ?backend ()
  in
  {
    drun = Emio.Run.of_array store points;
    ddim = dim;
    dlength = Array.length points;
  }

let query_iter_d t ~a0 ~a f =
  let c = Partition.Cells.constr_of_halfspace ~dim:t.ddim ~a0 ~a in
  Emio.Run.iter (fun p -> if Partition.Cells.satisfies c p then f p) t.drun

let query_halfspace_d t ~a0 ~a =
  let c = Partition.Cells.constr_of_halfspace ~dim:t.ddim ~a0 ~a in
  List.rev
    (Emio.Run.fold
       (fun acc p -> if Partition.Cells.satisfies c p then p :: acc else acc)
       [] t.drun)

let query_count_d t ~a0 ~a =
  let c = Partition.Cells.constr_of_halfspace ~dim:t.ddim ~a0 ~a in
  Emio.Run.fold
    (fun acc p -> if Partition.Cells.satisfies c p then acc + 1 else acc)
    0 t.drun

let dim_d t = t.ddim
let length_d t = t.dlength
let space_blocks_d t = Emio.Run.block_count t.drun

(* -- persistence: one snapshot kind covers both the 2-D and the
   d-dimensional scan; a skeleton tag picks the payload codec before
   the store is rebuilt from the backend ----------------------------- *)

type any = T2 of t | Td of d

type portable =
  | Scan2_p of { run : int array * int; len : int; bs : int; cb : int }
  | Scand_p of {
      run : int array * int;
      dim : int;
      len : int;
      bs : int;
      cb : int;
    }

let portable_codec =
  let open Emio.Codec in
  map
    ~decode:(fun (tag, run, (dim, len, bs, cb)) ->
      match tag with
      | 0 -> Scan2_p { run; len; bs; cb }
      | 1 -> Scand_p { run; dim; len; bs; cb }
      | t -> raise (Decode (Printf.sprintf "bad scan tag %d" t)))
    ~encode:(function
      | Scan2_p { run; len; bs; cb } -> (0, run, (2, len, bs, cb))
      | Scand_p { run; dim; len; bs; cb } -> (1, run, (dim, len, bs, cb)))
    (triple u8 Emio.Run.portable_codec (quad int int int int))

let snapshot_kind = "lcsearch.scan"

let skeleton_codec =
  Emio.Codec.versioned ~magic:snapshot_kind ~version:1 portable_codec

let save_with ~path ?meta ?page_size ~store ~portable () =
  Diskstore.Snapshot.save ~path ~kind:snapshot_kind ?meta ?page_size
    ~block_size:(Emio.Store.block_size store)
    ~payload:(Emio.Store.export_bytes store)
    ~skeleton:(Emio.Codec.encode skeleton_codec portable)
    ()

let save_snapshot t ~path ?meta ?page_size () =
  let store = Emio.Run.store t.run in
  save_with ~path ?meta ?page_size ~store
    ~portable:
      (Scan2_p
         {
           run = Emio.Run.to_portable t.run;
           len = t.length;
           bs = Emio.Store.block_size store;
           cb = Emio.Store.cache_blocks store;
         })
    ()

let save_snapshot_d t ~path ?meta ?page_size () =
  let store = Emio.Run.store t.drun in
  save_with ~path ?meta ?page_size ~store
    ~portable:
      (Scand_p
         {
           run = Emio.Run.to_portable t.drun;
           dim = t.ddim;
           len = t.dlength;
           bs = Emio.Store.block_size store;
           cb = Emio.Store.cache_blocks store;
         })
    ()

let of_portable ~stats ~backend = function
  | Scan2_p { run; len; bs; cb } ->
      let store =
        Emio.Store.of_backend ~stats ~block_size:bs ~cache_blocks:cb
          ~codec:Point2.codec backend
      in
      T2 { run = Emio.Run.of_portable store run; length = len }
  | Scand_p { run; dim; len; bs; cb } ->
      let store =
        Emio.Store.of_backend ~stats ~block_size:bs ~cache_blocks:cb
          ~codec:Partition.Cells.point_codec backend
      in
      Td { drun = Emio.Run.of_portable store run; ddim = dim; dlength = len }

let of_snapshot ~stats ?policy ?cache_pages path =
  match
    Diskstore.Snapshot.load ~path ~stats ?policy ?cache_pages
      ~expect_kind:snapshot_kind ()
  with
  | Error _ as e -> e
  | Ok opened ->
      let result =
        match
          Diskstore.Snapshot.decode_skeleton skeleton_codec
            opened.Diskstore.Snapshot.skeleton
        with
        | Error _ as e -> e
        | Ok p ->
            Diskstore.Snapshot.reconstruct (fun () ->
                ( of_portable ~stats
                    ~backend:opened.Diskstore.Snapshot.backend p,
                  opened.Diskstore.Snapshot.info ))
      in
      (match result with
      | Error _ -> Diskstore.Snapshot.close opened
      | Ok _ -> ());
      result
