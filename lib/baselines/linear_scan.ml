open Geom

type t = { run : Point2.t Emio.Run.t; length : int }

let build ~stats ~block_size ?(cache_blocks = 0) ?backend points =
  let store = Emio.Store.create ~stats ~block_size ~cache_blocks ?backend () in
  { run = Emio.Run.of_array store points; length = Array.length points }

let below ~slope ~icept p =
  Point2.y p <= (slope *. Point2.x p) +. icept +. Eps.eps

let query_halfplane t ~slope ~icept =
  Emio.Run.fold
    (fun acc p -> if below ~slope ~icept p then p :: acc else acc)
    [] t.run

let query_count t ~slope ~icept =
  Emio.Run.fold
    (fun acc p -> if below ~slope ~icept p then acc + 1 else acc)
    0 t.run

let space_blocks t = Emio.Run.block_count t.run
let length t = t.length

let snapshot_kind = "lcsearch.scan"

let save_snapshot t ~path ?meta ?page_size () =
  Diskstore.Snapshot.save ~path ~kind:snapshot_kind ?meta ?page_size
    ~store:(Emio.Run.store t.run) ~value:t ()

let of_snapshot ~stats ?policy ?cache_pages path =
  match
    Diskstore.Snapshot.load ~path ~stats ?policy ?cache_pages
      ~expect_kind:snapshot_kind ()
  with
  | Error _ as e -> e
  | Ok opened ->
      let t : t = opened.Diskstore.Snapshot.value in
      Emio.Store.attach (Emio.Run.store t.run) ~stats
        opened.Diskstore.Snapshot.backend;
      Ok (t, opened.Diskstore.Snapshot.info)
