open Geom

type t = { run : Point2.t Emio.Run.t; length : int }

let build ~stats ~block_size ?(cache_blocks = 0) ?backend points =
  let store = Emio.Store.create ~stats ~block_size ~cache_blocks ?backend () in
  { run = Emio.Run.of_array store points; length = Array.length points }

(* Direct field access, not the Point2.x/y accessors: under dune's dev
   profile (-opaque) the accessor calls are not inlined and box their
   float result — two allocations per scanned point. *)
let below ~slope ~icept (p : Point2.t) =
  p.Point2.y <= (slope *. p.Point2.x) +. icept +. Eps.eps

let query_iter t ~slope ~icept f =
  Emio.Run.iter (fun p -> if below ~slope ~icept p then f p) t.run

let query_halfplane t ~slope ~icept =
  Emio.Run.fold
    (fun acc p -> if below ~slope ~icept p then p :: acc else acc)
    [] t.run

let query_count t ~slope ~icept =
  Emio.Run.fold
    (fun acc p -> if below ~slope ~icept p then acc + 1 else acc)
    0 t.run

let space_blocks t = Emio.Run.block_count t.run
let length t = t.length

(* The d-dimensional variant: the same Θ(n)-I/O scan over coordinate
   rows.  It is the conformance oracle for every structure the 2-D
   point type cannot feed, and uses the same Partition.Cells predicate
   as the partition trees so boundary tolerance is bit-identical. *)

type d = {
  drun : Partition.Cells.point Emio.Run.t;
  ddim : int;
  dlength : int;
}

let build_d ~stats ~block_size ?(cache_blocks = 0) ?backend ~dim points =
  if dim < 2 then invalid_arg "Linear_scan.build_d: need dim >= 2";
  Array.iter
    (fun p ->
      if Array.length p <> dim then
        invalid_arg "Linear_scan.build_d: wrong point dimension")
    points;
  let store = Emio.Store.create ~stats ~block_size ~cache_blocks ?backend () in
  {
    drun = Emio.Run.of_array store points;
    ddim = dim;
    dlength = Array.length points;
  }

let query_iter_d t ~a0 ~a f =
  let c = Partition.Cells.constr_of_halfspace ~dim:t.ddim ~a0 ~a in
  Emio.Run.iter (fun p -> if Partition.Cells.satisfies c p then f p) t.drun

let query_halfspace_d t ~a0 ~a =
  let c = Partition.Cells.constr_of_halfspace ~dim:t.ddim ~a0 ~a in
  List.rev
    (Emio.Run.fold
       (fun acc p -> if Partition.Cells.satisfies c p then p :: acc else acc)
       [] t.drun)

let query_count_d t ~a0 ~a =
  let c = Partition.Cells.constr_of_halfspace ~dim:t.ddim ~a0 ~a in
  Emio.Run.fold
    (fun acc p -> if Partition.Cells.satisfies c p then acc + 1 else acc)
    0 t.drun

let dim_d t = t.ddim
let length_d t = t.dlength
let space_blocks_d t = Emio.Run.block_count t.drun

let snapshot_kind = "lcsearch.scan"

let save_snapshot t ~path ?meta ?page_size () =
  Diskstore.Snapshot.save ~path ~kind:snapshot_kind ?meta ?page_size
    ~store:(Emio.Run.store t.run) ~value:t ()

let of_snapshot ~stats ?policy ?cache_pages path =
  match
    Diskstore.Snapshot.load ~path ~stats ?policy ?cache_pages
      ~expect_kind:snapshot_kind ()
  with
  | Error _ as e -> e
  | Ok opened ->
      let t : t = opened.Diskstore.Snapshot.value in
      Emio.Store.attach (Emio.Run.store t.run) ~stats
        opened.Diskstore.Snapshot.backend;
      Ok (t, opened.Diskstore.Snapshot.info)
