(** A bucket PR quadtree [Samet, §1.2 refs 46, 47]: recursive quadrant
    splits until every bucket holds at most B points.

    §1.2's centrepiece example: on uniform points a halfplane query
    costs O(√n + t) I/Os, but on N points hugging a diagonal line with
    a query line slightly perturbed from it, Ω(n) nodes straddle the
    boundary — the [sec12_adversarial] bench reproduces both. *)

type t

val build :
  stats:Emio.Io_stats.t -> block_size:int -> ?cache_blocks:int ->
  ?backend:Emio.Store_intf.backend ->
  ?max_depth:int -> Geom.Point2.t array -> t

val query_halfplane : t -> slope:float -> icept:float -> Geom.Point2.t list
val query_count : t -> slope:float -> icept:float -> int

val query_iter :
  t -> slope:float -> icept:float -> (Geom.Point2.t -> unit) -> unit
(** Visitor form of {!query_halfplane}: same traversal (I/O-identical),
    one callback per answering point, no list. *)

val space_blocks : t -> int
val length : t -> int
val depth : t -> int

(** {2 Persistence} *)

val snapshot_kind : string
(** ["lcsearch.quadtree"]. *)

val save_snapshot :
  t -> path:string -> ?meta:string -> ?page_size:int -> unit -> unit

val of_snapshot :
  stats:Emio.Io_stats.t ->
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  string ->
  (t * Diskstore.Snapshot.info, Diskstore.Snapshot.error) result
