open Geom

type node_ref = Leaf of int | Node of int

(* an internal node block stores its four children: NW NE SW SE *)
type child = { quadrant : Rect.t; sub : node_ref option }

type t = {
  leaves : Point2.t Emio.Store.t;
  internals : child Emio.Store.t;
  root : node_ref option;
  bbox : Rect.t;
  length : int;
  mutable max_depth_seen : int;
}

let length t = t.length
let depth t = t.max_depth_seen

let space_blocks t =
  Emio.Store.blocks_used t.leaves + Emio.Store.blocks_used t.internals

let quadrants (r : Rect.t) =
  let mx = (r.Rect.x0 +. r.Rect.x1) /. 2. and my = (r.Rect.y0 +. r.Rect.y1) /. 2. in
  [|
    { Rect.x0 = r.Rect.x0; y0 = my; x1 = mx; y1 = r.Rect.y1 };
    { Rect.x0 = mx; y0 = my; x1 = r.Rect.x1; y1 = r.Rect.y1 };
    { Rect.x0 = r.Rect.x0; y0 = r.Rect.y0; x1 = mx; y1 = my };
    { Rect.x0 = mx; y0 = r.Rect.y0; x1 = r.Rect.x1; y1 = my };
  |]

let build ~stats ~block_size ?(cache_blocks = 0) ?backend ?(max_depth = 40)
    points =
  if max_depth < 1 then invalid_arg "Quadtree.build: need max_depth >= 1";
  let leaves = Emio.Store.create ~stats ~block_size ~cache_blocks ?backend () in
  let internals = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let n = Array.length points in
  let bbox =
    if n = 0 then { Rect.x0 = 0.; y0 = 0.; x1 = 1.; y1 = 1. }
    else Rect.of_points points
  in
  let t =
    { leaves; internals; root = None; bbox; length = n; max_depth_seen = 0 }
  in
  let rec build_node pts rect d =
    if d > t.max_depth_seen then t.max_depth_seen <- d;
    if Array.length pts = 0 then None
    else if Array.length pts <= block_size || d >= max_depth then
      Some (Leaf (Emio.Store.alloc leaves pts))
    else begin
      let qs = quadrants rect in
      let mx = (rect.Rect.x0 +. rect.Rect.x1) /. 2.
      and my = (rect.Rect.y0 +. rect.Rect.y1) /. 2. in
      let pick p =
        let east = Point2.x p >= mx and north = Point2.y p >= my in
        match (north, east) with
        | true, false -> 0
        | true, true -> 1
        | false, false -> 2
        | false, true -> 3
      in
      let parts = [| []; []; []; [] |] in
      Array.iter (fun p -> parts.(pick p) <- p :: parts.(pick p)) pts;
      let children =
        Array.init 4 (fun i ->
            {
              quadrant = qs.(i);
              sub = build_node (Array.of_list parts.(i)) qs.(i) (d + 1);
            })
      in
      Some (Node (Emio.Store.alloc internals children))
    end
  in
  let root = build_node points bbox 0 in
  { t with root }

let rec report_all t f = function
  | Leaf id -> Array.iter f (Emio.Store.read t.leaves id)
  | Node id ->
      Array.iter
        (fun ch -> match ch.sub with None -> () | Some s -> report_all t f s)
        (Emio.Store.read t.internals id)

(* The shared traversal: list and counting callers run the identical
   (I/O-identical) walk through this visitor. *)
let query_iter t ~slope ~icept f =
  let keep (p : Point2.t) =
    p.Point2.y <= (slope *. p.Point2.x) +. icept +. Eps.eps
  in
  let rec go = function
    | Leaf id ->
        Array.iter (fun p -> if keep p then f p) (Emio.Store.read t.leaves id)
    | Node id ->
        Array.iter
          (fun ch ->
            match ch.sub with
            | None -> ()
            | Some s -> (
                match Rect.classify ch.quadrant ~slope ~icept with
                | Rect.Inside -> report_all t f s
                | Rect.Outside -> ()
                | Rect.Crossing -> go s))
          (Emio.Store.read t.internals id)
  in
  match t.root with
  | None -> ()
  | Some root -> (
      match Rect.classify t.bbox ~slope ~icept with
      | Rect.Inside -> report_all t f root
      | Rect.Outside -> ()
      | Rect.Crossing -> go root)

let query_halfplane t ~slope ~icept =
  let acc = ref [] in
  query_iter t ~slope ~icept (fun p -> acc := p :: !acc);
  !acc

let query_count t ~slope ~icept =
  let n = ref 0 in
  query_iter t ~slope ~icept (fun _ -> incr n);
  !n
