open Geom

type node_ref = Leaf of int | Node of int

(* an internal node block stores its four children: NW NE SW SE *)
type child = { quadrant : Rect.t; sub : node_ref option }

type t = {
  leaves : Point2.t Emio.Store.t;
  internals : child Emio.Store.t;
  root : node_ref option;
  bbox : Rect.t;
  length : int;
  mutable max_depth_seen : int;
}

let length t = t.length
let depth t = t.max_depth_seen

let space_blocks t =
  Emio.Store.blocks_used t.leaves + Emio.Store.blocks_used t.internals

let quadrants (r : Rect.t) =
  let mx = (r.Rect.x0 +. r.Rect.x1) /. 2. and my = (r.Rect.y0 +. r.Rect.y1) /. 2. in
  [|
    { Rect.x0 = r.Rect.x0; y0 = my; x1 = mx; y1 = r.Rect.y1 };
    { Rect.x0 = mx; y0 = my; x1 = r.Rect.x1; y1 = r.Rect.y1 };
    { Rect.x0 = r.Rect.x0; y0 = r.Rect.y0; x1 = mx; y1 = my };
    { Rect.x0 = mx; y0 = r.Rect.y0; x1 = r.Rect.x1; y1 = my };
  |]

let build ~stats ~block_size ?(cache_blocks = 0) ?backend ?(max_depth = 40)
    points =
  if max_depth < 1 then invalid_arg "Quadtree.build: need max_depth >= 1";
  let leaves =
    Emio.Store.create ~stats ~block_size ~cache_blocks ~codec:Point2.codec
      ?backend ()
  in
  let internals = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let n = Array.length points in
  let bbox =
    if n = 0 then { Rect.x0 = 0.; y0 = 0.; x1 = 1.; y1 = 1. }
    else Rect.of_points points
  in
  let t =
    { leaves; internals; root = None; bbox; length = n; max_depth_seen = 0 }
  in
  let rec build_node pts rect d =
    if d > t.max_depth_seen then t.max_depth_seen <- d;
    if Array.length pts = 0 then None
    else if Array.length pts <= block_size || d >= max_depth then
      Some (Leaf (Emio.Store.alloc leaves pts))
    else begin
      let qs = quadrants rect in
      let mx = (rect.Rect.x0 +. rect.Rect.x1) /. 2.
      and my = (rect.Rect.y0 +. rect.Rect.y1) /. 2. in
      let pick p =
        let east = Point2.x p >= mx and north = Point2.y p >= my in
        match (north, east) with
        | true, false -> 0
        | true, true -> 1
        | false, false -> 2
        | false, true -> 3
      in
      let parts = [| []; []; []; [] |] in
      Array.iter (fun p -> parts.(pick p) <- p :: parts.(pick p)) pts;
      let children =
        Array.init 4 (fun i ->
            {
              quadrant = qs.(i);
              sub = build_node (Array.of_list parts.(i)) qs.(i) (d + 1);
            })
      in
      Some (Node (Emio.Store.alloc internals children))
    end
  in
  let root = build_node points bbox 0 in
  { t with root }

let rec report_all t f = function
  | Leaf id -> Array.iter f (Emio.Store.read t.leaves id)
  | Node id ->
      Array.iter
        (fun ch -> match ch.sub with None -> () | Some s -> report_all t f s)
        (Emio.Store.read t.internals id)

(* The shared traversal: list and counting callers run the identical
   (I/O-identical) walk through this visitor. *)
let query_iter t ~slope ~icept f =
  let keep (p : Point2.t) =
    p.Point2.y <= (slope *. p.Point2.x) +. icept +. Eps.eps
  in
  let rec go = function
    | Leaf id ->
        Array.iter (fun p -> if keep p then f p) (Emio.Store.read t.leaves id)
    | Node id ->
        Array.iter
          (fun ch ->
            match ch.sub with
            | None -> ()
            | Some s -> (
                match Rect.classify ch.quadrant ~slope ~icept with
                | Rect.Inside -> report_all t f s
                | Rect.Outside -> ()
                | Rect.Crossing -> go s))
          (Emio.Store.read t.internals id)
  in
  match t.root with
  | None -> ()
  | Some root -> (
      match Rect.classify t.bbox ~slope ~icept with
      | Rect.Inside -> report_all t f root
      | Rect.Outside -> ()
      | Rect.Crossing -> go root)

let query_halfplane t ~slope ~icept =
  let acc = ref [] in
  query_iter t ~slope ~icept (fun p -> acc := p :: !acc);
  !acc

let query_count t ~slope ~icept =
  let n = ref 0 in
  query_iter t ~slope ~icept (fun _ -> incr n);
  !n

(* -- persistence: leaves are the payload; the quadrant blocks ride in
   the skeleton ------------------------------------------------------ *)

let node_ref_codec =
  Emio.Codec.map
    ~decode:(fun (tag, id) ->
      match tag with
      | 0 -> Leaf id
      | 1 -> Node id
      | t -> raise (Emio.Codec.Decode (Printf.sprintf "bad node_ref tag %d" t)))
    ~encode:(function Leaf id -> (0, id) | Node id -> (1, id))
    Emio.Codec.(pair u8 int)

let child_codec =
  Emio.Codec.map
    ~decode:(fun (quadrant, sub) -> { quadrant; sub })
    ~encode:(fun c -> (c.quadrant, c.sub))
    Emio.Codec.(pair Rect.codec (option node_ref_codec))

type portable = {
  qp_internal_blocks : child array array;
  qp_root : node_ref option;
  qp_bbox : Rect.t;
  qp_length : int;
  qp_max_depth_seen : int;
  qp_block_size : int;
  qp_cache_blocks : int;
}

let to_portable t =
  {
    qp_internal_blocks = Emio.Store.to_blocks t.internals;
    qp_root = t.root;
    qp_bbox = t.bbox;
    qp_length = t.length;
    qp_max_depth_seen = t.max_depth_seen;
    qp_block_size = Emio.Store.block_size t.leaves;
    qp_cache_blocks = Emio.Store.cache_blocks t.leaves;
  }

let of_portable ~stats ~backend p =
  let block_size = p.qp_block_size and cache_blocks = p.qp_cache_blocks in
  {
    leaves =
      Emio.Store.of_backend ~stats ~block_size ~cache_blocks
        ~codec:Point2.codec backend;
    internals =
      Emio.Store.of_blocks ~stats ~block_size ~cache_blocks
        p.qp_internal_blocks;
    root = p.qp_root;
    bbox = p.qp_bbox;
    length = p.qp_length;
    max_depth_seen = p.qp_max_depth_seen;
  }

let portable_codec =
  let open Emio.Codec in
  map
    ~decode:(fun ((ib, root, bbox), (len, d), (bs, cb)) ->
      { qp_internal_blocks = ib; qp_root = root; qp_bbox = bbox;
        qp_length = len; qp_max_depth_seen = d; qp_block_size = bs;
        qp_cache_blocks = cb })
    ~encode:(fun p ->
      ( (p.qp_internal_blocks, p.qp_root, p.qp_bbox),
        (p.qp_length, p.qp_max_depth_seen),
        (p.qp_block_size, p.qp_cache_blocks) ))
    (triple
       (triple (array (array child_codec)) (option node_ref_codec) Rect.codec)
       (pair int int) (pair int int))

let snapshot_kind = "lcsearch.quadtree"

let skeleton_codec =
  Emio.Codec.versioned ~magic:snapshot_kind ~version:1 portable_codec

let save_snapshot t ~path ?meta ?page_size () =
  Diskstore.Snapshot.save ~path ~kind:snapshot_kind ?meta ?page_size
    ~block_size:(Emio.Store.block_size t.leaves)
    ~payload:(Emio.Store.export_bytes t.leaves)
    ~skeleton:(Emio.Codec.encode skeleton_codec (to_portable t))
    ()

let of_snapshot ~stats ?policy ?cache_pages path =
  match
    Diskstore.Snapshot.load ~path ~stats ?policy ?cache_pages
      ~expect_kind:snapshot_kind ()
  with
  | Error _ as e -> e
  | Ok opened ->
      let result =
        match
          Diskstore.Snapshot.decode_skeleton skeleton_codec
            opened.Diskstore.Snapshot.skeleton
        with
        | Error _ as e -> e
        | Ok p ->
            Diskstore.Snapshot.reconstruct (fun () ->
                ( of_portable ~stats
                    ~backend:opened.Diskstore.Snapshot.backend p,
                  opened.Diskstore.Snapshot.info ))
      in
      (match result with
      | Error _ -> Diskstore.Snapshot.close opened
      | Ok _ -> ());
      result
