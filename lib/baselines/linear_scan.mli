(** The trivial baseline: points in ⌈N/B⌉ blocks, every query a full
    scan of Θ(n) I/Os.  Both the floor every structure must beat on
    small outputs and the (unbeatable) comparison point at t = Θ(n). *)

type t

val build :
  stats:Emio.Io_stats.t -> block_size:int -> ?cache_blocks:int ->
  ?backend:Emio.Store_intf.backend ->
  Geom.Point2.t array -> t

val query_halfplane : t -> slope:float -> icept:float -> Geom.Point2.t list
(** Points with [y <= slope x + icept]. *)

val query_count : t -> slope:float -> icept:float -> int

val space_blocks : t -> int
val length : t -> int

val snapshot_kind : string

val save_snapshot :
  t -> path:string -> ?meta:string -> ?page_size:int -> unit -> unit

val of_snapshot :
  stats:Emio.Io_stats.t ->
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  string ->
  (t * Diskstore.Snapshot.info, Diskstore.Snapshot.error) result
(** See {!Core.Halfspace2d.of_snapshot}; same snapshot contract. *)
