(** The trivial baseline: points in ⌈N/B⌉ blocks, every query a full
    scan of Θ(n) I/Os.  Both the floor every structure must beat on
    small outputs and the (unbeatable) comparison point at t = Θ(n). *)

type t

val build :
  stats:Emio.Io_stats.t -> block_size:int -> ?cache_blocks:int ->
  ?backend:Emio.Store_intf.backend ->
  Geom.Point2.t array -> t

val query_halfplane : t -> slope:float -> icept:float -> Geom.Point2.t list
(** Points with [y <= slope x + icept]. *)

val query_count : t -> slope:float -> icept:float -> int

val query_iter :
  t -> slope:float -> icept:float -> (Geom.Point2.t -> unit) -> unit
(** Visitor form of {!query_halfplane}: same scan, no list. *)

val space_blocks : t -> int
val length : t -> int

(** {1 The d-dimensional scan}

    Same Θ(n) scan over coordinate rows (points are float arrays of
    length [dim]).  It answers the paper's query form
    [x_d <= a0 + Σ a_i x_i] with the exact {!Partition.Cells}
    tolerance the partition trees use, which makes it the conformance
    oracle for every dimension. *)

type d

val build_d :
  stats:Emio.Io_stats.t -> block_size:int -> ?cache_blocks:int ->
  ?backend:Emio.Store_intf.backend ->
  dim:int -> Partition.Cells.point array -> d
(** Raises [Invalid_argument] if [dim < 2] or any row has a different
    length. *)

val query_halfspace_d :
  d -> a0:float -> a:float array -> Partition.Cells.point list

val query_count_d : d -> a0:float -> a:float array -> int

val query_iter_d :
  d -> a0:float -> a:float array -> (Partition.Cells.point -> unit) -> unit
(** Visitor form of {!query_halfspace_d}: same scan, no list. *)

val dim_d : d -> int
val length_d : d -> int
val space_blocks_d : d -> int

(** {1 Persistence}

    One snapshot kind, ["lcsearch.scan"], covers both variants: the
    skeleton records which one was saved and {!of_snapshot} returns the
    corresponding arm of {!any}. *)

type any = T2 of t | Td of d

val snapshot_kind : string

val save_snapshot :
  t -> path:string -> ?meta:string -> ?page_size:int -> unit -> unit

val save_snapshot_d :
  d -> path:string -> ?meta:string -> ?page_size:int -> unit -> unit

val of_snapshot :
  stats:Emio.Io_stats.t ->
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  string ->
  (any * Diskstore.Snapshot.info, Diskstore.Snapshot.error) result
(** See {!Core.Halfspace2d.of_snapshot}; same snapshot contract. *)
