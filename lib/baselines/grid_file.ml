open Geom

type t = {
  directory : (int * int) Emio.Run.t; (* cell -> (start, len) *)
  buckets : Point2.t Emio.Run.t;
  bbox : Rect.t;
  side : int;
  dir_block : int;
  length : int;
}

let side t = t.side
let length t = t.length

let space_blocks t =
  Emio.Run.block_count t.directory + Emio.Run.block_count t.buckets

let build ~stats ~block_size ?(cache_blocks = 0) ?backend points =
  let n = Array.length points in
  let bbox =
    if n = 0 then { Rect.x0 = 0.; y0 = 0.; x1 = 1.; y1 = 1. }
    else Rect.of_points points
  in
  (* pad so boundary points fall strictly inside *)
  let pad v = if v = 0. then 1e-9 else Float.abs v *. 1e-9 in
  let bbox =
    {
      Rect.x0 = bbox.Rect.x0 -. pad bbox.Rect.x0;
      y0 = bbox.Rect.y0 -. pad bbox.Rect.y0;
      x1 = bbox.Rect.x1 +. pad bbox.Rect.x1;
      y1 = bbox.Rect.y1 +. pad bbox.Rect.y1;
    }
  in
  let n_blocks = max 1 ((n + block_size - 1) / block_size) in
  let side = max 1 (int_of_float (ceil (sqrt (float_of_int n_blocks)))) in
  let cells = Array.make (side * side) [] in
  let cell_of p =
    let fx =
      (Point2.x p -. bbox.Rect.x0) /. (bbox.Rect.x1 -. bbox.Rect.x0)
    and fy =
      (Point2.y p -. bbox.Rect.y0) /. (bbox.Rect.y1 -. bbox.Rect.y0)
    in
    let cx = min (side - 1) (max 0 (int_of_float (fx *. float_of_int side)))
    and cy = min (side - 1) (max 0 (int_of_float (fy *. float_of_int side))) in
    (cy * side) + cx
  in
  Array.iter (fun p -> cells.(cell_of p) <- p :: cells.(cell_of p)) points;
  let dir = Array.make (side * side) (0, 0) in
  let flat = ref [] in
  let pos = ref 0 in
  Array.iteri
    (fun c ps ->
      let ps = List.rev ps in
      dir.(c) <- (!pos, List.length ps);
      List.iter
        (fun p ->
          flat := p :: !flat;
          incr pos)
        ps)
    cells;
  let store_dir = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let store_b = Emio.Store.create ~stats ~block_size ~cache_blocks ?backend () in
  {
    directory = Emio.Run.of_array store_dir dir;
    buckets = Emio.Run.of_array store_b (Array.of_list (List.rev !flat));
    bbox;
    side;
    dir_block = block_size;
    length = n;
  }

let cell_rect t c =
  let cx = c mod t.side and cy = c / t.side in
  let w = (t.bbox.Rect.x1 -. t.bbox.Rect.x0) /. float_of_int t.side
  and h = (t.bbox.Rect.y1 -. t.bbox.Rect.y0) /. float_of_int t.side in
  {
    Rect.x0 = t.bbox.Rect.x0 +. (float_of_int cx *. w);
    y0 = t.bbox.Rect.y0 +. (float_of_int cy *. h);
    x1 = t.bbox.Rect.x0 +. (float_of_int (cx + 1) *. w);
    y1 = t.bbox.Rect.y0 +. (float_of_int (cy + 1) *. h);
  }

let read_bucket t c f =
  let start, len =
    (Emio.Run.read_block t.directory (c / t.dir_block)).(c mod t.dir_block)
  in
  if len > 0 then
    Array.iter f (Emio.Run.read_range t.buckets ~pos:start ~len)

(* The shared traversal: list and counting callers run the identical
   (I/O-identical) directory-and-bucket scan through this visitor. *)
let query_visit t ~classify ~keep f =
  for c = 0 to (t.side * t.side) - 1 do
    match classify (cell_rect t c) with
    | Rect.Outside -> ()
    | Rect.Inside -> read_bucket t c f
    | Rect.Crossing -> read_bucket t c (fun p -> if keep p then f p)
  done

let query_fold t ~classify ~keep =
  let acc = ref [] in
  query_visit t ~classify ~keep (fun p -> acc := p :: !acc);
  !acc

let halfplane_classify ~slope ~icept r = Rect.classify r ~slope ~icept

let halfplane_keep ~slope ~icept p =
  p.Point2.y <= (slope *. p.Point2.x) +. icept +. Eps.eps

let query_iter t ~slope ~icept f =
  query_visit t
    ~classify:(halfplane_classify ~slope ~icept)
    ~keep:(halfplane_keep ~slope ~icept) f

let query_halfplane t ~slope ~icept =
  query_fold t
    ~classify:(halfplane_classify ~slope ~icept)
    ~keep:(halfplane_keep ~slope ~icept)

let query_count t ~slope ~icept =
  let n = ref 0 in
  query_iter t ~slope ~icept (fun _ -> incr n);
  !n

let query_window t w =
  query_fold t
    ~classify:(fun r ->
      if w.Rect.x0 <= r.Rect.x0 && r.Rect.x1 <= w.Rect.x1
         && w.Rect.y0 <= r.Rect.y0 && r.Rect.y1 <= w.Rect.y1
      then Rect.Inside
      else if Rect.intersects r w then Rect.Crossing
      else Rect.Outside)
    ~keep:(fun p -> Rect.contains w p)
