open Geom

type t = {
  directory : (int * int) Emio.Run.t; (* cell -> (start, len) *)
  buckets : Point2.t Emio.Run.t;
  bbox : Rect.t;
  side : int;
  dir_block : int;
  length : int;
}

let side t = t.side
let length t = t.length

let space_blocks t =
  Emio.Run.block_count t.directory + Emio.Run.block_count t.buckets

let build ~stats ~block_size ?(cache_blocks = 0) ?backend points =
  let n = Array.length points in
  let bbox =
    if n = 0 then { Rect.x0 = 0.; y0 = 0.; x1 = 1.; y1 = 1. }
    else Rect.of_points points
  in
  (* pad so boundary points fall strictly inside *)
  let pad v = if v = 0. then 1e-9 else Float.abs v *. 1e-9 in
  let bbox =
    {
      Rect.x0 = bbox.Rect.x0 -. pad bbox.Rect.x0;
      y0 = bbox.Rect.y0 -. pad bbox.Rect.y0;
      x1 = bbox.Rect.x1 +. pad bbox.Rect.x1;
      y1 = bbox.Rect.y1 +. pad bbox.Rect.y1;
    }
  in
  let n_blocks = max 1 ((n + block_size - 1) / block_size) in
  let side = max 1 (int_of_float (ceil (sqrt (float_of_int n_blocks)))) in
  let cells = Array.make (side * side) [] in
  let cell_of p =
    let fx =
      (Point2.x p -. bbox.Rect.x0) /. (bbox.Rect.x1 -. bbox.Rect.x0)
    and fy =
      (Point2.y p -. bbox.Rect.y0) /. (bbox.Rect.y1 -. bbox.Rect.y0)
    in
    let cx = min (side - 1) (max 0 (int_of_float (fx *. float_of_int side)))
    and cy = min (side - 1) (max 0 (int_of_float (fy *. float_of_int side))) in
    (cy * side) + cx
  in
  Array.iter (fun p -> cells.(cell_of p) <- p :: cells.(cell_of p)) points;
  let dir = Array.make (side * side) (0, 0) in
  let flat = ref [] in
  let pos = ref 0 in
  Array.iteri
    (fun c ps ->
      let ps = List.rev ps in
      dir.(c) <- (!pos, List.length ps);
      List.iter
        (fun p ->
          flat := p :: !flat;
          incr pos)
        ps)
    cells;
  let store_dir = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let store_b =
    Emio.Store.create ~stats ~block_size ~cache_blocks ~codec:Point2.codec
      ?backend ()
  in
  {
    directory = Emio.Run.of_array store_dir dir;
    buckets = Emio.Run.of_array store_b (Array.of_list (List.rev !flat));
    bbox;
    side;
    dir_block = block_size;
    length = n;
  }

let cell_rect t c =
  let cx = c mod t.side and cy = c / t.side in
  let w = (t.bbox.Rect.x1 -. t.bbox.Rect.x0) /. float_of_int t.side
  and h = (t.bbox.Rect.y1 -. t.bbox.Rect.y0) /. float_of_int t.side in
  {
    Rect.x0 = t.bbox.Rect.x0 +. (float_of_int cx *. w);
    y0 = t.bbox.Rect.y0 +. (float_of_int cy *. h);
    x1 = t.bbox.Rect.x0 +. (float_of_int (cx + 1) *. w);
    y1 = t.bbox.Rect.y0 +. (float_of_int (cy + 1) *. h);
  }

let read_bucket t c f =
  let start, len =
    (Emio.Run.read_block t.directory (c / t.dir_block)).(c mod t.dir_block)
  in
  (* in-place range scan: the same bucket blocks are charged as the old
     materializing read_range, but no per-bucket copy is built *)
  if len > 0 then Emio.Run.iter_range f t.buckets ~pos:start ~len

(* The shared traversal: list and counting callers run the identical
   (I/O-identical) directory-and-bucket scan through this visitor. *)
let query_visit t ~classify ~keep f =
  (* one filtering closure for the whole sweep, not one per crossing
     cell *)
  let filtered p = if keep p then f p in
  for c = 0 to (t.side * t.side) - 1 do
    match classify (cell_rect t c) with
    | Rect.Outside -> ()
    | Rect.Inside -> read_bucket t c f
    | Rect.Crossing -> read_bucket t c filtered
  done

let query_fold t ~classify ~keep =
  let acc = ref [] in
  query_visit t ~classify ~keep (fun p -> acc := p :: !acc);
  !acc

let halfplane_classify ~slope ~icept r = Rect.classify r ~slope ~icept

let halfplane_keep ~slope ~icept p =
  p.Point2.y <= (slope *. p.Point2.x) +. icept +. Eps.eps

let query_iter t ~slope ~icept f =
  query_visit t
    ~classify:(halfplane_classify ~slope ~icept)
    ~keep:(halfplane_keep ~slope ~icept) f

let query_halfplane t ~slope ~icept =
  query_fold t
    ~classify:(halfplane_classify ~slope ~icept)
    ~keep:(halfplane_keep ~slope ~icept)

let query_count t ~slope ~icept =
  let n = ref 0 in
  query_iter t ~slope ~icept (fun _ -> incr n);
  !n

let query_window t w =
  query_fold t
    ~classify:(fun r ->
      if w.Rect.x0 <= r.Rect.x0 && r.Rect.x1 <= w.Rect.x1
         && w.Rect.y0 <= r.Rect.y0 && r.Rect.y1 <= w.Rect.y1
      then Rect.Inside
      else if Rect.intersects r w then Rect.Crossing
      else Rect.Outside)
    ~keep:(fun p -> Rect.contains w p)

(* -- persistence: the bucket store is the payload; the directory run
   (O(n/B) cells, private store) is embedded in the skeleton --------- *)

type portable = {
  gp_directory : (int * int) Emio.Run.stored;
  gp_buckets : int array * int;
  gp_bbox : Rect.t;
  gp_side : int;
  gp_dir_block : int;
  gp_length : int;
  gp_block_size : int;
  gp_cache_blocks : int;
}

let to_portable t =
  let bstore = Emio.Run.store t.buckets in
  {
    gp_directory = Emio.Run.to_stored t.directory;
    gp_buckets = Emio.Run.to_portable t.buckets;
    gp_bbox = t.bbox;
    gp_side = t.side;
    gp_dir_block = t.dir_block;
    gp_length = t.length;
    gp_block_size = Emio.Store.block_size bstore;
    gp_cache_blocks = Emio.Store.cache_blocks bstore;
  }

let of_portable ~stats ~backend p =
  let bstore =
    Emio.Store.of_backend ~stats ~block_size:p.gp_block_size
      ~cache_blocks:p.gp_cache_blocks ~codec:Point2.codec backend
  in
  {
    directory = Emio.Run.of_stored ~stats p.gp_directory;
    buckets = Emio.Run.of_portable bstore p.gp_buckets;
    bbox = p.gp_bbox;
    side = p.gp_side;
    dir_block = p.gp_dir_block;
    length = p.gp_length;
  }

let portable_codec =
  let open Emio.Codec in
  map
    ~decode:(fun ((dir, bkts, bbox), (side, db), (len, bs, cb)) ->
      { gp_directory = dir; gp_buckets = bkts; gp_bbox = bbox;
        gp_side = side; gp_dir_block = db; gp_length = len;
        gp_block_size = bs; gp_cache_blocks = cb })
    ~encode:(fun p ->
      ( (p.gp_directory, p.gp_buckets, p.gp_bbox),
        (p.gp_side, p.gp_dir_block),
        (p.gp_length, p.gp_block_size, p.gp_cache_blocks) ))
    (triple
       (triple
          (Emio.Run.stored_codec (pair int int))
          Emio.Run.portable_codec Rect.codec)
       (pair int int)
       (triple int int int))

let snapshot_kind = "lcsearch.gridfile"

let skeleton_codec =
  Emio.Codec.versioned ~magic:snapshot_kind ~version:1 portable_codec

let save_snapshot t ~path ?meta ?page_size () =
  let bstore = Emio.Run.store t.buckets in
  Diskstore.Snapshot.save ~path ~kind:snapshot_kind ?meta ?page_size
    ~block_size:(Emio.Store.block_size bstore)
    ~payload:(Emio.Store.export_bytes bstore)
    ~skeleton:(Emio.Codec.encode skeleton_codec (to_portable t))
    ()

let of_snapshot ~stats ?policy ?cache_pages path =
  match
    Diskstore.Snapshot.load ~path ~stats ?policy ?cache_pages
      ~expect_kind:snapshot_kind ()
  with
  | Error _ as e -> e
  | Ok opened ->
      let result =
        match
          Diskstore.Snapshot.decode_skeleton skeleton_codec
            opened.Diskstore.Snapshot.skeleton
        with
        | Error _ as e -> e
        | Ok p ->
            Diskstore.Snapshot.reconstruct (fun () ->
                ( of_portable ~stats
                    ~backend:opened.Diskstore.Snapshot.backend p,
                  opened.Diskstore.Snapshot.info ))
      in
      (match result with
      | Error _ -> Diskstore.Snapshot.close opened
      | Ok _ -> ());
      result
