(* Wire messages for `lcsearch serve`.  The encoding reuses the
   snapshot codec conventions (Emio.Codec: fixed-width little-endian,
   u32 counts, IEEE-754 float bit patterns) so a frame is
   architecture- and compiler-version-independent, and wraps the body
   in Codec.versioned so decoding a frame from a different protocol
   version fails loudly with a message naming both versions. *)

module Codec = Emio.Codec

type request = {
  id : int;
  structure : string;
  want_ids : bool;
  deadline_ms : int;
  a0 : float;
  a : float array;
}

type shed_reason = Queue_full | Deadline_exceeded | Draining
type error_code = Unknown_structure | Bad_dimension | Bad_request

type server_stats = {
  dispatchers : int;
  readers : int;
  domains : int;
  accepted : int;
  served : int;
  shed_full : int;
  shed_deadline : int;
  shed_drain : int;
  errors : int;
  batches : int;
  coalesced : int;
  max_batch : int;
}

type msg =
  | Query of request
  | Result of {
      id : int;
      count : int;
      reads : int;
      writes : int;
      hits : int;
      elapsed_ns : int;
      ids : int array;
    }
  | Shed of { id : int; reason : shed_reason }
  | Error of { id : int; code : error_code; message : string }
  | Stats_query of { id : int }
  | Stats of { id : int; stats : server_stats }

let shed_reason_name = function
  | Queue_full -> "queue-full"
  | Deadline_exceeded -> "deadline-exceeded"
  | Draining -> "draining"

let error_code_name = function
  | Unknown_structure -> "unknown-structure"
  | Bad_dimension -> "bad-dimension"
  | Bad_request -> "bad-request"

(* Tags are part of the wire format: never renumber, only append. *)
let tag_query = 0
and tag_result = 1
and tag_shed = 2
and tag_error = 3
and tag_stats_query = 4
and tag_stats = 5

let shed_tag = function Queue_full -> 0 | Deadline_exceeded -> 1 | Draining -> 2

let shed_of_tag = function
  | 0 -> Queue_full
  | 1 -> Deadline_exceeded
  | 2 -> Draining
  | t -> raise (Codec.Decode (Printf.sprintf "protocol: bad shed reason %d" t))

let code_tag = function
  | Unknown_structure -> 0
  | Bad_dimension -> 1
  | Bad_request -> 2

let code_of_tag = function
  | 0 -> Unknown_structure
  | 1 -> Bad_dimension
  | 2 -> Bad_request
  | t -> raise (Codec.Decode (Printf.sprintf "protocol: bad error code %d" t))

let body =
  Codec.custom
    ~write:(fun buf m ->
      match m with
      | Query q ->
          Codec.write_u8 buf tag_query;
          Codec.write_u32 buf q.id;
          Codec.write Codec.string buf q.structure;
          Codec.write Codec.bool buf q.want_ids;
          Codec.write_u32 buf q.deadline_ms;
          Codec.write Codec.float buf q.a0;
          Codec.write (Codec.array Codec.float) buf q.a
      | Result r ->
          Codec.write_u8 buf tag_result;
          Codec.write_u32 buf r.id;
          Codec.write_u32 buf r.count;
          Codec.write_u32 buf r.reads;
          Codec.write_u32 buf r.writes;
          Codec.write_u32 buf r.hits;
          Codec.write Codec.int buf r.elapsed_ns;
          Codec.write (Codec.array Codec.int) buf r.ids
      | Shed s ->
          Codec.write_u8 buf tag_shed;
          Codec.write_u32 buf s.id;
          Codec.write_u8 buf (shed_tag s.reason)
      | Error e ->
          Codec.write_u8 buf tag_error;
          Codec.write_u32 buf e.id;
          Codec.write_u8 buf (code_tag e.code);
          Codec.write Codec.string buf e.message
      | Stats_query s ->
          Codec.write_u8 buf tag_stats_query;
          Codec.write_u32 buf s.id
      | Stats { id; stats = s } ->
          Codec.write_u8 buf tag_stats;
          Codec.write_u32 buf id;
          Codec.write_u32 buf s.dispatchers;
          Codec.write_u32 buf s.readers;
          Codec.write_u32 buf s.domains;
          Codec.write Codec.int buf s.accepted;
          Codec.write Codec.int buf s.served;
          Codec.write Codec.int buf s.shed_full;
          Codec.write Codec.int buf s.shed_deadline;
          Codec.write Codec.int buf s.shed_drain;
          Codec.write Codec.int buf s.errors;
          Codec.write Codec.int buf s.batches;
          Codec.write Codec.int buf s.coalesced;
          Codec.write Codec.int buf s.max_batch)
    ~read:(fun b pos ->
      (* field order is the wire contract: sequence reads with lets,
         never inside a record literal *)
      let tag = Codec.read_u8 b pos in
      if tag = tag_query then begin
        let id = Codec.read_u32 b pos in
        let structure = Codec.read Codec.string b pos in
        let want_ids = Codec.read Codec.bool b pos in
        let deadline_ms = Codec.read_u32 b pos in
        let a0 = Codec.read Codec.float b pos in
        let a = Codec.read (Codec.array Codec.float) b pos in
        Query { id; structure; want_ids; deadline_ms; a0; a }
      end
      else if tag = tag_result then begin
        let id = Codec.read_u32 b pos in
        let count = Codec.read_u32 b pos in
        let reads = Codec.read_u32 b pos in
        let writes = Codec.read_u32 b pos in
        let hits = Codec.read_u32 b pos in
        let elapsed_ns = Codec.read Codec.int b pos in
        let ids = Codec.read (Codec.array Codec.int) b pos in
        Result { id; count; reads; writes; hits; elapsed_ns; ids }
      end
      else if tag = tag_shed then begin
        let id = Codec.read_u32 b pos in
        let reason = shed_of_tag (Codec.read_u8 b pos) in
        Shed { id; reason }
      end
      else if tag = tag_error then begin
        let id = Codec.read_u32 b pos in
        let code = code_of_tag (Codec.read_u8 b pos) in
        let message = Codec.read Codec.string b pos in
        Error { id; code; message }
      end
      else if tag = tag_stats_query then begin
        let id = Codec.read_u32 b pos in
        Stats_query { id }
      end
      else if tag = tag_stats then begin
        let id = Codec.read_u32 b pos in
        let dispatchers = Codec.read_u32 b pos in
        let readers = Codec.read_u32 b pos in
        let domains = Codec.read_u32 b pos in
        let accepted = Codec.read Codec.int b pos in
        let served = Codec.read Codec.int b pos in
        let shed_full = Codec.read Codec.int b pos in
        let shed_deadline = Codec.read Codec.int b pos in
        let shed_drain = Codec.read Codec.int b pos in
        let errors = Codec.read Codec.int b pos in
        let batches = Codec.read Codec.int b pos in
        let coalesced = Codec.read Codec.int b pos in
        let max_batch = Codec.read Codec.int b pos in
        Stats
          {
            id;
            stats =
              {
                dispatchers;
                readers;
                domains;
                accepted;
                served;
                shed_full;
                shed_deadline;
                shed_drain;
                errors;
                batches;
                coalesced;
                max_batch;
              };
          }
      end
      else
        raise (Codec.Decode (Printf.sprintf "protocol: bad message tag %d" tag)))

let codec = Codec.versioned ~magic:"LCSV" ~version:1 body

let pp ppf = function
  | Query q ->
      Format.fprintf ppf "Query{id=%d; s=%s; ids=%b; deadline=%dms; d=%d}" q.id
        q.structure q.want_ids q.deadline_ms
        (Array.length q.a + 1)
  | Result r ->
      Format.fprintf ppf
        "Result{id=%d; count=%d; reads=%d; writes=%d; hits=%d; %dns; %d ids}"
        r.id r.count r.reads r.writes r.hits r.elapsed_ns (Array.length r.ids)
  | Shed s -> Format.fprintf ppf "Shed{id=%d; %s}" s.id (shed_reason_name s.reason)
  | Error e ->
      Format.fprintf ppf "Error{id=%d; %s; %s}" e.id (error_code_name e.code)
        e.message
  | Stats_query s -> Format.fprintf ppf "Stats_query{id=%d}" s.id
  | Stats { id; stats = s } ->
      Format.fprintf ppf
        "Stats{id=%d; dispatchers=%d; readers=%d; domains=%d; served=%d; \
         batches=%d; coalesced=%d; max_batch=%d}"
        id s.dispatchers s.readers s.domains s.served s.batches s.coalesced
        s.max_batch
