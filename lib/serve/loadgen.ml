module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads
module Query_engine = Lcsearch_index.Query_engine
module Histogram = Lcsearch_index.Histogram

type mix = Uniform_mix | Zipf of float
type mode = Closed of int | Open of float

type config = {
  host : string;
  port : int;
  snapshots : string list;
  mode : mode;
  mix : mix;
  duration_s : float;
  warmup_s : float;
  pool : int;
  fraction : float;
  want_ids : bool;
  deadline_ms : int;
  check : bool;
  seed : int;
  writers : int;
  server_domains : int;
  verbose : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7227;
    snapshots = [];
    mode = Closed 4;
    mix = Uniform_mix;
    duration_s = 10.;
    warmup_s = 1.;
    pool = 64;
    fraction = 0.02;
    want_ids = false;
    deadline_ms = 0;
    check = false;
    seed = 42;
    writers = 1;
    server_domains = 0;
    verbose = false;
  }

(* ---------- targets: replayed query pools + optional oracle ---------- *)

type expected = {
  e_count : int;
  e_reads : int;
  e_writes : int;
  e_hits : int;
  e_ids : int array option;  (* sorted; None for point-reporting structures *)
}

type target = {
  t_name : string;
  t_reports_ids : bool;
  t_queries : Index.query array;
  t_expected : expected array option;
}

let sorted_ids r =
  let a = Emio.Reporter.to_array r in
  Array.sort Int.compare a;
  a

(* The sequential golden oracle: reopen the same snapshot resident in
   this process and run every pool query once on the single-query
   engine path.  Resident reads make the cost words independent of
   cache state, so these numbers are exactly what the (resident)
   server must report for the same query — regardless of concurrency,
   batching, or arrival order. *)
let oracle_of path (module M : Index.S) queries =
  Diskstore.File_backend.set_resident_on_reopen true;
  let l =
    Fun.protect
      ~finally:(fun () -> Diskstore.File_backend.set_resident_on_reopen false)
      (fun () ->
        match Meta.load path with Ok l -> l | Error m -> failwith m)
  in
  let reporter = Query_engine.domain_reporter () in
  Array.map
    (fun q ->
      Emio.Reporter.clear reporter;
      let c = Query_engine.run_one ~reporter:reporter l.Meta.inst q in
      {
        e_count = c.Query_engine.result;
        e_reads = c.Query_engine.reads;
        e_writes = c.Query_engine.writes;
        e_hits = c.Query_engine.hits;
        e_ids = (if M.reports_ids then Some (sorted_ids reporter) else None);
      })
    queries

module Lshard = Lcsearch_index.Shard

module Llsm = Lcsearch_index.Lsm

let target_of cfg path =
  (* For sharded and dynamic (LSM) directories the workload meta lives
     in the MANIFEST and the query pool is typed by the *base*
     structure (the wrappers share its name/dims, so the server-side
     lookup agrees). *)
  let meta, kind =
    if Llsm.is_lsm_path path then
      match Llsm.read_manifest path with
      | Ok m -> (
          match Llsm.base_kind path m with
          | Ok kind -> (m.Llsm.meta, kind)
          | Error e ->
              failwith (path ^ ": " ^ Diskstore.Snapshot.error_to_string e))
      | Error e -> failwith (path ^ ": " ^ Diskstore.Snapshot.error_to_string e)
    else if Lshard.is_sharded_path path then
      match Lshard.read_manifest path with
      | Ok m -> (m.Lshard.meta, m.Lshard.inner_kind)
      | Error e -> failwith (path ^ ": " ^ Diskstore.Snapshot.error_to_string e)
    else
      match Diskstore.Snapshot.read_info path with
      | Ok info -> (info.Diskstore.Snapshot.meta, info.Diskstore.Snapshot.kind)
      | Error e -> failwith (path ^ ": " ^ Diskstore.Snapshot.error_to_string e)
  in
  let w =
    match Meta.workload_of_meta meta with
    | Ok w -> w
    | Error m -> failwith (path ^ ": " ^ m)
  in
  let (module M : Index.S) =
    match Registry.find_by_snapshot_kind kind with
    | Some m -> m
    | None ->
        failwith
          (Printf.sprintf "%s: no registered structure owns snapshot kind %S"
             path kind)
  in
  let rng = Workload.rng w.Meta.seed in
  let ds =
    Workloads.dataset rng ~kind:w.Meta.kind ~dim:w.Meta.dim ~n:w.Meta.n
      (module M : Index.S)
  in
  let queries =
    Array.of_list (Workloads.queries rng ds ~fraction:cfg.fraction ~count:cfg.pool)
  in
  {
    t_name = M.name;
    t_reports_ids = M.reports_ids;
    t_queries = queries;
    t_expected = (if cfg.check then Some (oracle_of path (module M) queries) else None);
  }

(* ---------- item sampling: uniform or Zipf over (target, query) ---------- *)

let make_sampler mix ~n_items =
  match mix with
  | Uniform_mix -> fun rng -> Random.State.int rng n_items
  | Zipf s ->
      let cdf = Array.make n_items 0. in
      let acc = ref 0. in
      for i = 0 to n_items - 1 do
        acc := !acc +. (1. /. (float_of_int (i + 1) ** s));
        cdf.(i) <- !acc
      done;
      fun rng ->
        let u = Random.State.float rng cdf.(n_items - 1) in
        let lo = ref 0 and hi = ref (n_items - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if cdf.(mid) >= u then hi := mid else lo := mid + 1
        done;
        !lo

(* ---------- shared accounting ---------- *)

type agg = {
  m : Mutex.t;
  hists : Histogram.t array; (* per target, post-warmup client RTTs in ns *)
  reqs : int array; (* per target, whole run *)
  oks : int array;
  mutable sent : int;
  mutable ok : int;
  mutable ok_measured : int;
  mutable shed_full : int;
  mutable shed_deadline : int;
  mutable shed_drain : int;
  mutable errors : int;
  mutable mismatches : int;
}

let verify cfg (tgt : target) qidx ~count ~reads ~writes ~hits ~(ids : int array) =
  match tgt.t_expected with
  | None -> true
  | Some exp ->
      let e = exp.(qidx) in
      e.e_count = count && e.e_reads = reads && e.e_writes = writes
      && e.e_hits = hits
      &&
      match e.e_ids with
      | Some want when cfg.want_ids ->
          let got = Array.copy ids in
          Array.sort Int.compare got;
          got = want
      | _ -> true

let note_response cfg agg targets ~tidx ~qidx ~lat_ns ~measured msg =
  Mutex.lock agg.m;
  (match (msg : Protocol.msg) with
  | Protocol.Result r ->
      agg.ok <- agg.ok + 1;
      agg.oks.(tidx) <- agg.oks.(tidx) + 1;
      if measured then begin
        agg.ok_measured <- agg.ok_measured + 1;
        Histogram.record agg.hists.(tidx) lat_ns
      end;
      if
        not
          (verify cfg targets.(tidx) qidx ~count:r.count ~reads:r.reads
             ~writes:r.writes ~hits:r.hits ~ids:r.ids)
      then agg.mismatches <- agg.mismatches + 1
  | Protocol.Shed { reason = Protocol.Queue_full; _ } ->
      agg.shed_full <- agg.shed_full + 1
  | Protocol.Shed { reason = Protocol.Deadline_exceeded; _ } ->
      agg.shed_deadline <- agg.shed_deadline + 1
  | Protocol.Shed { reason = Protocol.Draining; _ } ->
      agg.shed_drain <- agg.shed_drain + 1
  | Protocol.Error _ | Protocol.Query _ | Protocol.Stats _
  | Protocol.Stats_query _ ->
      agg.errors <- agg.errors + 1);
  Mutex.unlock agg.m

let note_sent agg ~tidx =
  Mutex.lock agg.m;
  agg.sent <- agg.sent + 1;
  agg.reqs.(tidx) <- agg.reqs.(tidx) + 1;
  Mutex.unlock agg.m

let note_error agg =
  Mutex.lock agg.m;
  agg.errors <- agg.errors + 1;
  Mutex.unlock agg.m

(* ---------- the wire ---------- *)

let connect cfg =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO 10.;
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
    fd
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    failwith
      (Printf.sprintf "cannot connect to %s:%d: %s" cfg.host cfg.port
         (Unix.error_message e))

let query_msg cfg (tgt : target) qidx ~id =
  let q = tgt.t_queries.(qidx) in
  Protocol.Query
    {
      id;
      structure = tgt.t_name;
      want_ids = cfg.want_ids;
      deadline_ms = cfg.deadline_ms;
      a0 = q.Index.a0;
      a = q.Index.a;
    }

(* ---------- closed loop: one outstanding request per worker ---------- *)

let closed_worker cfg targets agg sample ~stop_at ~warmup_until widx =
  let fd = connect cfg in
  let rng = Workload.rng (cfg.seed + (7919 * (widx + 1))) in
  let nt = Array.length targets in
  let seq = ref 0 in
  (try
     while Unix.gettimeofday () < stop_at do
       let item = sample rng in
       let tidx = item mod nt and qidx = item / nt in
       let id = !seq land 0xffffffff in
       incr seq;
       note_sent agg ~tidx;
       let t0 = Unix.gettimeofday () in
       match Frame.write fd (query_msg cfg targets.(tidx) qidx ~id) with
       | Error _ -> raise Exit
       | Ok () -> (
           (* window = 1: the next frame answers this request *)
           match Frame.read fd with
           | Ok msg ->
               let lat_ns =
                 int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
               in
               note_response cfg agg targets ~tidx ~qidx ~lat_ns
                 ~measured:(t0 >= warmup_until) msg
           | Error Frame.Timeout -> note_error agg
           | Error _ -> raise Exit)
     done
   with Exit -> note_error agg);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---------- open loop: paced arrivals, matched by id ---------- *)

let msg_id = function
  | Protocol.Query q -> q.Protocol.id
  | Protocol.Result r -> r.id
  | Protocol.Shed s -> s.id
  | Protocol.Error e -> e.id
  | Protocol.Stats_query s -> s.id
  | Protocol.Stats s -> s.id

(* One open-loop writer: its own connection, its own paced arrival
   process at [qps], its own id-matched pending table.  The run spawns
   [cfg.writers] of these so the generator itself stops being the
   bottleneck — a single pacing thread tops out long before a
   multi-shard server does. *)
let open_writer cfg targets agg sample ~qps ~stop_at ~warmup_until widx =
  let fd = connect cfg in
  let nt = Array.length targets in
  let pending : (int, float * int * int) Hashtbl.t = Hashtbl.create 4096 in
  let plock = Mutex.create () in
  let writer_done = ref false in
  let reader =
    Thread.create
      (fun () ->
        let rec go () =
          let finished =
            Mutex.lock plock;
            let f = !writer_done && Hashtbl.length pending = 0 in
            Mutex.unlock plock;
            f
          in
          if not finished then
            match Frame.read fd with
            | Ok msg -> (
                let id = msg_id msg in
                Mutex.lock plock;
                let found = Hashtbl.find_opt pending id in
                if found <> None then Hashtbl.remove pending id;
                Mutex.unlock plock;
                match found with
                | None ->
                    note_error agg;
                    go ()
                | Some (t0, tidx, qidx) ->
                    let lat_ns =
                      int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
                    in
                    note_response cfg agg targets ~tidx ~qidx ~lat_ns
                      ~measured:(t0 >= warmup_until) msg;
                    go ())
            | Error Frame.Timeout -> if not !writer_done then go ()
            | Error _ -> ()
        in
        go ())
      ()
  in
  let rng = Workload.rng (cfg.seed + (104729 * (widx + 1))) in
  let interval = 1. /. Float.max 1e-6 qps in
  let start = Unix.gettimeofday () in
  let seq = ref 0 in
  (try
     let rec go k =
       let due = start +. (float_of_int k *. interval) in
       let now = Unix.gettimeofday () in
       if due >= stop_at then ()
       else begin
         if due > now then Thread.delay (due -. now);
         let item = sample rng in
         let tidx = item mod nt and qidx = item / nt in
         let id = !seq land 0xffffffff in
         incr seq;
         note_sent agg ~tidx;
         Mutex.lock plock;
         Hashtbl.replace pending id (Unix.gettimeofday (), tidx, qidx);
         Mutex.unlock plock;
         match Frame.write fd (query_msg cfg targets.(tidx) qidx ~id) with
         | Error _ -> raise Exit
         | Ok () -> go (k + 1)
       end
     in
     go 0
   with Exit -> note_error agg);
  (* let in-flight responses land, then release the reader *)
  let grace = Unix.gettimeofday () +. 2. in
  let rec wait () =
    Mutex.lock plock;
    let n = Hashtbl.length pending in
    Mutex.unlock plock;
    if n > 0 && Unix.gettimeofday () < grace then begin
      Thread.delay 0.05;
      wait ()
    end
  in
  wait ();
  writer_done := true;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  Thread.join reader;
  try Unix.close fd with Unix.Unix_error _ -> ()

let open_loop cfg targets agg sample ~qps ~stop_at ~warmup_until =
  let writers = max 1 cfg.writers in
  let per_writer = qps /. float_of_int writers in
  let threads =
    List.init writers (fun widx ->
        Thread.create
          (fun () ->
            open_writer cfg targets agg sample ~qps:per_writer ~stop_at
              ~warmup_until widx)
          ())
  in
  List.iter Thread.join threads

(* ---------- server-side counters (Stats_query) ---------- *)

(* Fetched on a fresh connection after the run, so BENCH_SERVE.json
   carries the server's own dispatcher/coalescing story, not a copy of
   whatever flags the operator believed they passed.  None when the
   server predates the stats verb or is already gone. *)
let fetch_server_stats cfg =
  match connect cfg with
  | exception Failure _ -> None
  | fd ->
      let close () = try Unix.close fd with Unix.Unix_error _ -> () in
      Fun.protect ~finally:close (fun () ->
          match Frame.write fd (Protocol.Stats_query { id = 0 }) with
          | Error _ -> None
          | Ok () -> (
              match Frame.read fd with
              | Ok (Protocol.Stats { stats; _ }) -> Some stats
              | Ok _ | Error _ -> None))

(* ---------- the run ---------- *)

type structure_summary = {
  s_name : string;
  s_requests : int;
  s_ok : int;
  s_p50_us : float;
  s_p90_us : float;
  s_p99_us : float;
  s_p999_us : float;
  s_max_us : float;
  s_mean_us : float;
}

type summary = {
  mode_name : string;
  concurrency : int;
  target_qps : float;
  mix_name : string;
  measured_s : float;
  sent : int;
  ok : int;
  shed_full : int;
  shed_deadline : int;
  shed_drain : int;
  errors : int;
  mismatches : int;
  checked : bool;
  throughput_rps : float;
  server_domains : int;
  writers : int;
  server : Protocol.server_stats option;
  per_structure : structure_summary list;
}

let mix_name = function
  | Uniform_mix -> "uniform"
  | Zipf s -> Printf.sprintf "zipf-%.2f" s

let us ns = float_of_int ns /. 1000.

let structure_summary agg targets i =
  let h = agg.hists.(i) in
  let pct p = if Histogram.count h = 0 then 0. else us (Histogram.percentile h p) in
  {
    s_name = targets.(i).t_name;
    s_requests = agg.reqs.(i);
    s_ok = agg.oks.(i);
    s_p50_us = pct 0.5;
    s_p90_us = pct 0.9;
    s_p99_us = pct 0.99;
    s_p999_us = pct 0.999;
    s_max_us = us (Histogram.max_recorded h);
    s_mean_us = (if Histogram.count h = 0 then 0. else Histogram.mean h /. 1000.);
  }

let run cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if cfg.snapshots = [] then failwith "loadgen: no snapshots given";
  if cfg.pool <= 0 then failwith "loadgen: pool must be positive";
  let targets = Array.of_list (List.map (target_of cfg) cfg.snapshots) in
  let n_items = Array.length targets * cfg.pool in
  let sample = make_sampler cfg.mix ~n_items in
  let agg =
    {
      m = Mutex.create ();
      hists = Array.map (fun _ -> Histogram.create ()) targets;
      reqs = Array.make (Array.length targets) 0;
      oks = Array.make (Array.length targets) 0;
      sent = 0;
      ok = 0;
      ok_measured = 0;
      shed_full = 0;
      shed_deadline = 0;
      shed_drain = 0;
      errors = 0;
      mismatches = 0;
    }
  in
  let start = Unix.gettimeofday () in
  let warmup_until = start +. cfg.warmup_s in
  let stop_at = start +. cfg.duration_s in
  (match cfg.mode with
  | Closed c ->
      let c = max 1 c in
      let workers =
        List.init c (fun widx ->
            Thread.create
              (fun () ->
                closed_worker cfg targets agg sample ~stop_at ~warmup_until widx)
              ())
      in
      List.iter Thread.join workers
  | Open qps -> open_loop cfg targets agg sample ~qps ~stop_at ~warmup_until);
  let measured_s = Float.max 1e-9 (Unix.gettimeofday () -. warmup_until) in
  let server = fetch_server_stats cfg in
  {
    mode_name = (match cfg.mode with Closed _ -> "closed" | Open _ -> "open");
    concurrency =
      (match cfg.mode with Closed c -> max 1 c | Open _ -> max 1 cfg.writers);
    target_qps = (match cfg.mode with Closed _ -> 0. | Open q -> q);
    mix_name = mix_name cfg.mix;
    measured_s;
    sent = agg.sent;
    ok = agg.ok;
    shed_full = agg.shed_full;
    shed_deadline = agg.shed_deadline;
    shed_drain = agg.shed_drain;
    errors = agg.errors;
    mismatches = agg.mismatches;
    checked = cfg.check;
    throughput_rps = float_of_int agg.ok_measured /. measured_s;
    server_domains =
      (match server with
      | Some s -> s.Protocol.domains
      | None -> cfg.server_domains);
    writers = max 1 cfg.writers;
    server;
    per_structure =
      List.init (Array.length targets) (structure_summary agg targets);
  }

(* ---------- reporting (hand-rolled JSON, like Bench_kit) ---------- *)

let json_of_summary s =
  let structure st =
    Printf.sprintf
      "{\"structure\": \"%s\", \"requests\": %d, \"ok\": %d, \"p50_us\": %.1f, \
       \"p90_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, \"max_us\": \
       %.1f, \"mean_us\": %.1f}"
      st.s_name st.s_requests st.s_ok st.s_p50_us st.s_p90_us st.s_p99_us
      st.s_p999_us st.s_max_us st.s_mean_us
  in
  String.concat ""
    [
      "{\n";
      Printf.sprintf "  \"mode\": \"%s\",\n" s.mode_name;
      Printf.sprintf "  \"concurrency\": %d,\n" s.concurrency;
      Printf.sprintf "  \"target_qps\": %.1f,\n" s.target_qps;
      Printf.sprintf "  \"mix\": \"%s\",\n" s.mix_name;
      Printf.sprintf "  \"measured_s\": %.3f,\n" s.measured_s;
      Printf.sprintf "  \"sent\": %d,\n" s.sent;
      Printf.sprintf "  \"ok\": %d,\n" s.ok;
      Printf.sprintf
        "  \"shed\": {\"queue_full\": %d, \"deadline\": %d, \"draining\": %d},\n"
        s.shed_full s.shed_deadline s.shed_drain;
      Printf.sprintf "  \"errors\": %d,\n" s.errors;
      Printf.sprintf "  \"check\": {\"enabled\": %b, \"mismatches\": %d},\n"
        s.checked s.mismatches;
      Printf.sprintf "  \"throughput_rps\": %.1f,\n" s.throughput_rps;
      (match s.server with
      | Some sv ->
          Printf.sprintf
            "  \"meta\": {\"server_domains\": %d, \"server_dispatchers\": %d, \
             \"server_readers\": %d, \"writers\": %d, \"server_batches\": %d, \
             \"server_coalesced\": %d, \"server_max_batch\": %d},\n"
            sv.Protocol.domains sv.Protocol.dispatchers sv.Protocol.readers
            s.writers sv.Protocol.batches sv.Protocol.coalesced
            sv.Protocol.max_batch
      | None ->
          Printf.sprintf
            "  \"meta\": {\"server_domains\": %d, \"writers\": %d},\n"
            s.server_domains s.writers);
      "  \"structures\": [\n    ";
      String.concat ",\n    " (List.map structure s.per_structure);
      "\n  ]\n}\n";
    ]

let write_json ~path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json_of_summary s))

let pp_summary ppf s =
  Format.fprintf ppf
    "%s loop (%s mix): %d sent, %d ok, %.1f req/s over %.1fs@\n\
     shed: %d queue-full, %d deadline, %d draining; %d errors%s@\n"
    s.mode_name s.mix_name s.sent s.ok s.throughput_rps s.measured_s s.shed_full
    s.shed_deadline s.shed_drain s.errors
    (if s.checked then Printf.sprintf "; %d oracle mismatches" s.mismatches
     else "");
  (match s.server with
  | Some sv ->
      Format.fprintf ppf
        "server: %d dispatcher%s, %d reader%s, %d domain%s; %d batches (%d \
         coalesced requests, max batch %d)@\n"
        sv.Protocol.dispatchers
        (if sv.Protocol.dispatchers = 1 then "" else "s")
        sv.Protocol.readers
        (if sv.Protocol.readers = 1 then "" else "s")
        sv.Protocol.domains
        (if sv.Protocol.domains = 1 then "" else "s")
        sv.Protocol.batches sv.Protocol.coalesced sv.Protocol.max_batch
  | None -> ());
  List.iter
    (fun st ->
      Format.fprintf ppf
        "  %-14s %7d ok  p50 %8.1fus  p90 %8.1fus  p99 %8.1fus  p999 %8.1fus  \
         max %8.1fus@\n"
        st.s_name st.s_ok st.s_p50_us st.s_p90_us st.s_p99_us st.s_p999_us
        st.s_max_us)
    s.per_structure
