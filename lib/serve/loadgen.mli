(** The load generator behind [lcsearch loadgen].

    Regenerates each target snapshot's workload from its meta string
    (same rng contract as [lcsearch query]), pregenerates a pool of
    halfspace queries per structure, and drives a running server in
    one of two shapes:

    - {b closed loop} ([Closed c]): [c] worker threads, one connection
      and one outstanding request each — throughput is latency-bound,
      the classic "think-time zero" closed system;
    - {b open loop} ([Open qps]): [writers] connections, each with a
      writer pacing its share of the target arrival rate regardless of
      completions and a reader matching responses by id — the shape
      that actually exposes queueing collapse, where a closed loop
      would politely slow down with the server.  One pacing thread
      tops out around tens of kQPS; multi-writer open loop is what
      reaches the 10⁵ range against a sharded server.

    After the run the generator asks the server for its own counters
    ({!Protocol.Stats_query}) and stamps the effective dispatcher,
    reader, and domain counts plus batch/coalescing totals into the
    summary meta — BENCH_SERVE.json records what the server actually
    ran, not what the operator passed on the command line.

    Requests pick a (structure, query) item uniformly or Zipfian
    ([Zipf s], popularity by item rank).  Client-observed latencies go
    into per-structure log-bucketed {!Lcsearch_index.Bench_kit.Histogram}s
    (recorded after [warmup_s]); the summary carries p50/p99/p999 per
    structure plus shed/error counts, and {!write_json} emits the
    BENCH_SERVE.json consumed by the CI gate.

    With [check = true] every target snapshot is also reopened
    in-process (resident) and each pool query run once through
    {!Lcsearch_index.Query_engine.run_one} before load starts; every
    server [Result] is then compared against this sequential golden
    oracle — count, reads/writes/hits cost words, and (when ids flow)
    the sorted id set.  [mismatches > 0] means the server's concurrent
    path diverged from the sequential one. *)

type mix = Uniform_mix | Zipf of float
type mode = Closed of int  (** worker count *) | Open of float  (** target qps *)

type config = {
  host : string;
  port : int;
  snapshots : string list;
  mode : mode;
  mix : mix;
  duration_s : float;
  warmup_s : float;
  pool : int;  (** pregenerated queries per structure *)
  fraction : float;  (** query selectivity for the regenerated pool *)
  want_ids : bool;
  deadline_ms : int;  (** 0 = server default *)
  check : bool;
  seed : int;
  writers : int;  (** open-loop writer connections (ignored closed-loop) *)
  server_domains : int;
      (** fallback for the summary meta when the server cannot answer
          a {!Protocol.Stats_query} (it normally can).  0 = unknown. *)
  verbose : bool;
}

val default_config : config

type structure_summary = {
  s_name : string;
  s_requests : int;
  s_ok : int;
  s_p50_us : float;
  s_p90_us : float;
  s_p99_us : float;
  s_p999_us : float;
  s_max_us : float;
  s_mean_us : float;
}

type summary = {
  mode_name : string;
  concurrency : int;  (** closed-loop workers; open-loop writers *)
  target_qps : float;  (** 0 for closed loop *)
  mix_name : string;
  measured_s : float;  (** post-warmup window *)
  sent : int;
  ok : int;
  shed_full : int;
  shed_deadline : int;
  shed_drain : int;
  errors : int;
  mismatches : int;  (** oracle disagreements; 0 unless [check] *)
  checked : bool;
  throughput_rps : float;  (** ok responses per measured second *)
  server_domains : int;
      (** server-reported when the stats fetch succeeded, else
          [config.server_domains]; 0 = unknown *)
  writers : int;
  server : Protocol.server_stats option;
      (** the server's own counters, fetched after the run *)
  per_structure : structure_summary list;
}

val run : config -> summary
(** Raises [Failure] if a snapshot cannot be read or the server is
    unreachable. *)

val write_json : path:string -> summary -> unit
val pp_summary : Format.formatter -> summary -> unit
