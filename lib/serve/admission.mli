(** The admission queue: a bounded MPSC ring between the reactor
    threads and a dispatcher shard (one ring per shard).

    Boundedness {e is} the admission control — a [push] against a full
    ring returns {!constructor:Full} immediately (the reader turns that
    into an explicit [Shed Queue_full] response) instead of blocking or
    growing, so a client burst can delay service but never exhaust
    memory or wedge a reader thread.

    Wakeups use a self-pipe: the dispatcher parks in [Unix.select] on
    the pipe's read end, so a timed wait needs no timed condition
    variable (the stdlib has none) and close can interrupt a parked
    dispatcher from any thread. *)

type 'a t

val create : int -> 'a t
(** [create capacity] (clamped to at least 1). *)

type push_result = Accepted | Full | Closed

val push : 'a t -> 'a -> push_result
(** Never blocks. *)

type 'a pop_result =
  | Items of 'a list  (** at least one item, FIFO order *)
  | Timeout  (** nothing arrived within the window *)
  | Drained  (** closed and empty: no item will ever arrive again *)

val pop_batch : 'a t -> max:int -> timeout:float -> 'a pop_result
(** Up to [max] items, waiting up to [timeout] seconds for the first.
    Safe under concurrent consumers: every pop takes a contiguous FIFO
    run under the lock, so each item is delivered exactly once and any
    single consumer sees items in enqueue order (the server runs one
    consumer per ring anyway — concurrency here is a safety property,
    pinned by test_serve, not a throughput feature).  After {!close},
    keeps returning the backlog until the ring is empty — drain, then
    [Drained]. *)

val length : 'a t -> int

val close : 'a t -> unit
(** Stop admitting ([push] returns [Closed] from now on) and wake the
    dispatcher; queued items remain poppable. *)

val dispose : 'a t -> unit
(** [close] and release the self-pipe fds.  Call once the consumer has
    exited. *)
