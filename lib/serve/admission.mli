(** The admission queue: a bounded MPSC ring between the per-connection
    reader threads and the single dispatcher.

    Boundedness {e is} the admission control — a [push] against a full
    ring returns {!constructor:Full} immediately (the reader turns that
    into an explicit [Shed Queue_full] response) instead of blocking or
    growing, so a client burst can delay service but never exhaust
    memory or wedge a reader thread.

    Wakeups use a self-pipe: the dispatcher parks in [Unix.select] on
    the pipe's read end, so a timed wait needs no timed condition
    variable (the stdlib has none) and close can interrupt a parked
    dispatcher from any thread. *)

type 'a t

val create : int -> 'a t
(** [create capacity] (clamped to at least 1). *)

type push_result = Accepted | Full | Closed

val push : 'a t -> 'a -> push_result
(** Never blocks. *)

type 'a pop_result =
  | Items of 'a list  (** at least one item, FIFO order *)
  | Timeout  (** nothing arrived within the window *)
  | Drained  (** closed and empty: no item will ever arrive again *)

val pop_batch : 'a t -> max:int -> timeout:float -> 'a pop_result
(** Single-consumer: up to [max] items, waiting up to [timeout]
    seconds for the first.  After {!close}, keeps returning the
    backlog until the ring is empty — drain, then [Drained]. *)

val length : 'a t -> int

val close : 'a t -> unit
(** Stop admitting ([push] returns [Closed] from now on) and wake the
    dispatcher; queued items remain poppable. *)

val dispose : 'a t -> unit
(** [close] and release the self-pipe fds.  Call once the consumer has
    exited. *)
