(* One accepted client connection under the reactor model: a
   non-blocking socket, a read accumulator owned by the connection's
   reactor thread, and a locked write outbox that any thread — the
   reactor, a dispatcher shard answering a query, a reader rejecting a
   frame — can append encoded frames to.  A send flushes
   opportunistically: in the common case the socket buffer has room
   and the response leaves on the sender's own thread; only the
   residue of a partial write waits for the reactor's writability
   notification. *)

let default_max_outbox = 8 * 1024 * 1024

type t = {
  fd : Unix.file_descr;
  peer : string;
  m : Mutex.t; (* outbox, offsets, flags *)
  outbox : Bytes.t Queue.t; (* whole encoded frames awaiting the wire *)
  mutable out_off : int; (* bytes of the queue head already written *)
  mutable out_bytes : int; (* total unwritten bytes across the queue *)
  max_outbox : int;
  mutable alive : bool; (* false: peer gone, sends are no-ops *)
  mutable closing : bool; (* stop reading; hang up once flushed *)
  mutable wake : unit -> unit; (* reactor wakeup, set on registration *)
  mutable last_rx : float; (* for the reactor's idle scan *)
  (* read side: touched only by the owning reactor thread, no lock *)
  mutable acc : Bytes.t;
  mutable acc_len : int;
}

let create ?(max_outbox = default_max_outbox) fd =
  let peer =
    match Unix.getpeername fd with
    | Unix.ADDR_INET (a, p) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
    | Unix.ADDR_UNIX s -> s
    | exception Unix.Unix_error _ -> "?"
  in
  {
    fd;
    peer;
    m = Mutex.create ();
    outbox = Queue.create ();
    out_off = 0;
    out_bytes = 0;
    max_outbox;
    alive = true;
    closing = false;
    wake = (fun () -> ());
    last_rx = Unix.gettimeofday ();
    acc = Bytes.create 4096;
    acc_len = 0;
  }

let fd t = t.fd
let peer t = t.peer
let alive t = t.alive
let closing t = t.closing
let on_wake t f = t.wake <- f
let touch t now = t.last_rx <- now
let last_rx t = t.last_rx

(* Called with [t.m] held. *)
let die_locked t =
  t.alive <- false;
  Queue.clear t.outbox;
  t.out_off <- 0;
  t.out_bytes <- 0;
  try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* Write queued frames until the socket blocks or the queue empties.
   Called with [t.m] held.  A partial write leaves [out_off] mid-frame
   and returns — the reactor watches the fd for writability and calls
   {!flush} to resume. *)
let rec flush_locked t =
  if t.alive && not (Queue.is_empty t.outbox) then begin
    let head = Queue.peek t.outbox in
    let len = Bytes.length head - t.out_off in
    match Frame.write_some t.fd head t.out_off len with
    | `Wrote n when n = len ->
        ignore (Queue.pop t.outbox);
        t.out_off <- 0;
        t.out_bytes <- t.out_bytes - n;
        flush_locked t
    | `Wrote 0 -> () (* EINTR: the next select round retries *)
    | `Wrote n ->
        (* partial write: the socket buffer filled mid-frame *)
        t.out_off <- t.out_off + n;
        t.out_bytes <- t.out_bytes - n
    | `Blocked -> ()
    | `Closed -> die_locked t
  end

let send t msg =
  let buf = Frame.encode msg in
  Mutex.lock t.m;
  let ok =
    if not t.alive then false
    else if t.out_bytes + Bytes.length buf > t.max_outbox then begin
      (* the peer is not reading its responses: drop it rather than
         buffer without bound *)
      die_locked t;
      false
    end
    else begin
      Queue.push buf t.outbox;
      t.out_bytes <- t.out_bytes + Bytes.length buf;
      flush_locked t;
      t.alive
    end
  in
  let residue = t.out_bytes > 0 in
  Mutex.unlock t.m;
  if residue then t.wake ();
  ok

let flush t =
  Mutex.lock t.m;
  flush_locked t;
  Mutex.unlock t.m

let wants_write t =
  Mutex.lock t.m;
  let w = t.alive && t.out_bytes > 0 in
  Mutex.unlock t.m;
  w

let request_close t =
  t.closing <- true;
  t.wake ()

let close t =
  Mutex.lock t.m;
  if t.alive then die_locked t;
  Mutex.unlock t.m

let close_fd t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ---------- read side (reactor thread only) ---------- *)

let refill t =
  let free = Bytes.length t.acc - t.acc_len in
  if free < 4096 then begin
    let grown = Bytes.create (2 * Bytes.length t.acc) in
    Bytes.blit t.acc 0 grown 0 t.acc_len;
    t.acc <- grown
  end;
  match Unix.read t.fd t.acc t.acc_len (Bytes.length t.acc - t.acc_len) with
  | 0 -> `Eof
  | n ->
      t.acc_len <- t.acc_len + n;
      `Data
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      `Blocked
  | exception
      Unix.Unix_error
        ( ( Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF | Unix.ENOTCONN
          | Unix.ESHUTDOWN ),
          _,
          _ ) ->
      `Eof

let next_frame t ~max_frame =
  match Frame.parse ~max_frame t.acc t.acc_len with
  | Frame.Parsed (msg, used) ->
      let rest = t.acc_len - used in
      if rest > 0 then Bytes.blit t.acc used t.acc 0 rest;
      t.acc_len <- rest;
      `Msg msg
  | Frame.Need _ -> `More
  | Frame.Broken e -> `Broken e

let has_partial t = t.acc_len > 0
