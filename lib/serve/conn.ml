type t = {
  fd : Unix.file_descr;
  peer : string;
  wlock : Mutex.t;
  mutable alive : bool;
}

let create fd =
  let peer =
    match Unix.getpeername fd with
    | Unix.ADDR_INET (a, p) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
    | Unix.ADDR_UNIX s -> s
    | exception Unix.Unix_error _ -> "?"
  in
  { fd; peer; wlock = Mutex.create (); alive = true }

let fd t = t.fd
let peer t = t.peer
let alive t = t.alive

let send t msg =
  Mutex.lock t.wlock;
  let ok =
    t.alive
    &&
    match Frame.write t.fd msg with
    | Ok () -> true
    | Error (`Closed | `Timeout) ->
        t.alive <- false;
        false
  in
  Mutex.unlock t.wlock;
  ok

let close t =
  Mutex.lock t.wlock;
  if t.alive then begin
    t.alive <- false;
    try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock t.wlock

let close_fd t = try Unix.close t.fd with Unix.Unix_error _ -> ()
