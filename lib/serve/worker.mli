(** Build-time-selected execution units for dispatcher shards.

    On OCaml >= 5.0 a dispatcher is a {!Domain}: the query engine's
    scratch state ({!Emio.Tls} — [Domain.DLS] there) is per-domain, so
    two dispatcher domains can execute queries concurrently without
    sharing a cost context.  Systhreads would not do: threads of one
    domain share its DLS {e and} its runtime lock, so K dispatcher
    threads would race on the engine scratch and never run in
    parallel anyway.

    On 4.14 (no domains, [Tls] is one global ref) a dispatcher is a
    {!Thread} and {!parallel} is [false] — {!Serve.Server} clamps the
    effective dispatcher count to 1 there, exactly like the domain
    fan-out clamp. *)

val parallel : bool
(** [true] iff spawned workers run on their own domains (own runtime
    lock, own [Emio.Tls] slots) and may execute queries concurrently. *)

type t

val spawn : (unit -> unit) -> t
val join : t -> unit
