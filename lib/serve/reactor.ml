(* One event-loop thread multiplexing many connections over
   Unix.select: the replacement for thread-per-connection readers.
   The server runs a small fixed pool of these and assigns accepted
   connections round-robin; each reactor owns its connections' read
   side outright (accumulators need no locks) and shares their write
   side with the dispatcher shards through the Conn outbox.

   The loop parks in select over its connections plus a self-pipe.
   Any byte on the pipe means "state changed, recompute the fd sets":
   a new connection was registered, a dispatcher's send left residue
   that needs a writability watch, a close was requested, or stop was
   called.  Like the Admission pipe, byte accounting is sloppy on
   purpose — the loop re-derives everything from shared state each
   round, so lost or extra wakeups are harmless.

   Note the select cap: fds number >= FD_SETSIZE (1024) cannot be
   watched.  A few thousand concurrent connections therefore need
   several reactors *and* an ulimit below the cap per process; see
   DESIGN.md §3j for the ceiling discussion. *)

type t = {
  mutable conns : Conn.t list; (* guarded by m *)
  m : Mutex.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  mutable stopping : bool; (* guarded by m *)
  mutable stop_at : float; (* grace deadline, set by stop *)
  mutable thread : Thread.t option;
  max_frame : int;
  idle_timeout_s : float;
  drain_grace_s : float;
  on_msg : Conn.t -> Protocol.msg -> unit;
  on_broken : Conn.t -> Frame.read_error -> unit;
  log : string -> unit;
}

let wake_byte = Bytes.make 1 '!'

let wake t =
  try ignore (Unix.single_write t.pipe_w wake_byte 0 1)
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> ()

let drain_pipe t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.pipe_r b 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
  in
  go ()

(* Drain complete frames out of the accumulator, then try to read
   more; bounded refills per readiness event so one firehose client
   cannot starve the rest of the loop. *)
let service_read t conn =
  let rec frames () =
    if Conn.alive conn && not (Conn.closing conn) then
      match Conn.next_frame conn ~max_frame:t.max_frame with
      | `Msg msg ->
          t.on_msg conn msg;
          frames ()
      | `More -> ()
      | `Broken e -> t.on_broken conn e
  in
  let rec refills budget =
    if budget > 0 && Conn.alive conn && not (Conn.closing conn) then
      match Conn.refill conn with
      | `Data ->
          Conn.touch conn (Unix.gettimeofday ());
          frames ();
          refills (budget - 1)
      | `Blocked -> ()
      | `Eof ->
          if Conn.has_partial conn then
            t.log
              (Printf.sprintf "closing %s: EOF mid-frame (truncated stream)"
                 (Conn.peer conn));
          Conn.close conn
  in
  refills 8

let loop t =
  let rec go () =
    Mutex.lock t.m;
    let stopping = t.stopping and stop_at = t.stop_at in
    let conns = t.conns in
    Mutex.unlock t.m;
    let now = Unix.gettimeofday () in
    (* cull: dead connections; closing connections whose outbox
       flushed; idle connections past the read timeout *)
    let dead, live =
      List.partition
        (fun c ->
          (not (Conn.alive c))
          || (Conn.closing c && not (Conn.wants_write c))
          || ((not stopping)
             && t.idle_timeout_s > 0.
             && now -. Conn.last_rx c > t.idle_timeout_s))
        conns
    in
    List.iter
      (fun c ->
        if Conn.alive c && not (Conn.closing c) then
          t.log
            (Printf.sprintf "closing %s: idle for %.0fs" (Conn.peer c)
               t.idle_timeout_s);
        Conn.close c;
        Conn.close_fd c)
      dead;
    if dead <> [] then begin
      Mutex.lock t.m;
      t.conns <- List.filter (fun c -> not (List.memq c dead)) t.conns;
      Mutex.unlock t.m
    end;
    let finished =
      stopping
      && (List.for_all (fun c -> not (Conn.wants_write c)) live
         || now > stop_at)
    in
    if finished then begin
      (* flushed (or grace expired): hang up and exit *)
      Mutex.lock t.m;
      let remaining = t.conns in
      t.conns <- [];
      Mutex.unlock t.m;
      List.iter
        (fun c ->
          Conn.close c;
          Conn.close_fd c)
        remaining
    end
    else begin
      let rfds =
        t.pipe_r
        ::
        (if stopping then []
         else
           List.filter_map
             (fun c ->
               if Conn.alive c && not (Conn.closing c) then Some (Conn.fd c)
               else None)
             live)
      in
      let wfds =
        List.filter_map
          (fun c -> if Conn.wants_write c then Some (Conn.fd c) else None)
          live
      in
      let tick = if stopping then 0.05 else 0.2 in
      let readable, writable =
        match Unix.select rfds wfds [] tick with
        | r, w, _ -> (r, w)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
        | exception Unix.Unix_error (Unix.EBADF, _, _) ->
            (* a conn died between snapshot and select: rescan *)
            ([], [])
      in
      if List.memq t.pipe_r readable then drain_pipe t;
      List.iter
        (fun c -> if List.memq (Conn.fd c) writable then Conn.flush c)
        live;
      if not stopping then
        List.iter
          (fun c -> if List.memq (Conn.fd c) readable then service_read t c)
          live;
      go ()
    end
  in
  go ()

let start ~max_frame ~idle_timeout_s ~drain_grace_s ~on_msg ~on_broken ~log ()
    =
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  let t =
    {
      conns = [];
      m = Mutex.create ();
      pipe_r;
      pipe_w;
      stopping = false;
      stop_at = infinity;
      thread = None;
      max_frame;
      idle_timeout_s;
      drain_grace_s;
      on_msg;
      on_broken;
      log;
    }
  in
  t.thread <- Some (Thread.create loop t);
  t

let add t conn =
  Conn.on_wake conn (fun () -> wake t);
  Mutex.lock t.m;
  t.conns <- conn :: t.conns;
  Mutex.unlock t.m;
  wake t

let conn_count t =
  Mutex.lock t.m;
  let n = List.length t.conns in
  Mutex.unlock t.m;
  n

let stop t =
  Mutex.lock t.m;
  if not t.stopping then begin
    t.stopping <- true;
    t.stop_at <- Unix.gettimeofday () +. t.drain_grace_s
  end;
  Mutex.unlock t.m;
  wake t

let join t =
  (match t.thread with Some th -> Thread.join th | None -> ());
  t.thread <- None;
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
  try Unix.close t.pipe_r with Unix.Unix_error _ -> ()
