(** Length-prefixed framing of {!Protocol} messages over a stream.

    Every frame is a 4-byte little-endian payload length followed by
    the {!Protocol.codec} bytes.  The length is validated against a cap
    {e before} the payload is read — a hostile or corrupt length can
    cost at most one rejected frame, never an unbounded allocation.

    Every way a read can go wrong is a constructor of {!read_error},
    never an escaping exception: clean EOF at a frame boundary is
    [Closed], EOF mid-frame is [Truncated], a blown [SO_RCVTIMEO] is
    [Timeout], a length over the cap is [Oversized], and payload bytes
    the codec rejects are [Malformed]. *)

val default_max_frame : int
(** 4 MiB. *)

type read_error =
  | Closed  (** orderly EOF between frames *)
  | Timeout  (** the fd's receive timeout expired *)
  | Oversized of { length : int; max : int }
  | Truncated of { expected : int; got : int }  (** EOF mid-frame *)
  | Malformed of string  (** codec rejection, message from {!Emio.Codec.Decode} *)

val read_error_to_string : read_error -> string

type write_error = [ `Closed | `Timeout ]

(** {2 Pure paths (unit-testable without sockets)} *)

val encode : Protocol.msg -> bytes
(** One complete frame: length prefix + payload. *)

val decode : ?max_frame:int -> bytes -> (Protocol.msg, read_error) result
(** Decode a buffer holding exactly one frame; extra trailing bytes are
    [Malformed], a short buffer is [Truncated]. *)

type parsed =
  | Parsed of Protocol.msg * int
      (** one complete frame occupying the first [n] buffered bytes *)
  | Need of int
      (** incomplete: re-parse once at least [n] bytes are buffered *)
  | Broken of read_error
      (** oversized length or codec garbage — a torn length-prefixed
          stream cannot resync, so the connection must hang up *)

val parse : ?max_frame:int -> bytes -> int -> parsed
(** [parse buf len] examines the first [len] bytes of a read
    accumulator.  Incremental: a frame may arrive over any number of
    socket reads, and the length is validated against the cap as soon
    as the 4-byte prefix is in, before any payload accumulates. *)

(** {2 File-descriptor paths} *)

val read : ?max_frame:int -> Unix.file_descr -> (Protocol.msg, read_error) result
(** Blocking read of one frame (honors [SO_RCVTIMEO] if set). *)

val write : Unix.file_descr -> Protocol.msg -> (unit, write_error) result
(** Blocking write of one frame (honors [SO_SNDTIMEO] if set); EPIPE
    and connection resets map to [`Closed] — callers must have SIGPIPE
    ignored, which {!Server.start} and {!Loadgen.run} do. *)

val write_some :
  Unix.file_descr -> bytes -> int -> int -> [ `Wrote of int | `Blocked | `Closed ]
(** One write attempt for non-blocking outbox flushing: partial writes
    return the byte count ([`Wrote 0] on EINTR), a full socket buffer
    is [`Blocked] (park in select until writable), and EPIPE or a
    reset is [`Closed]. *)
