(* Bounded ring + mutex + self-pipe.  Pushers are the reactor threads
   (many); the popper is normally one dispatcher shard per ring,
   though concurrent poppers are safe too (each pop takes a contiguous
   FIFO run under the lock).  The pipe carries no data — any byte
   means "state changed, re-check the ring" — so byte accounting can
   be sloppy: poppers drain it opportunistically and re-check under
   the lock, which makes lost or extra wakeups harmless even with
   several waiters parked in select at once. *)

type 'a t = {
  capacity : int;
  buf : 'a option array;
  mutable head : int; (* next slot to pop *)
  mutable len : int;
  mutable closed : bool;
  m : Mutex.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  mutable disposed : bool;
}

type push_result = Accepted | Full | Closed
type 'a pop_result = Items of 'a list | Timeout | Drained

let create capacity =
  let capacity = max 1 capacity in
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  {
    capacity;
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    closed = false;
    m = Mutex.create ();
    pipe_r;
    pipe_w;
    disposed = false;
  }

let wake_byte = Bytes.make 1 '!'

let wake t =
  try ignore (Unix.single_write t.pipe_w wake_byte 0 1)
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      () (* pipe full: a wakeup is already pending *)
  | Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> () (* disposed *)

let push t x =
  Mutex.lock t.m;
  let r =
    if t.closed then Closed
    else if t.len = t.capacity then Full
    else begin
      t.buf.((t.head + t.len) mod t.capacity) <- Some x;
      t.len <- t.len + 1;
      Accepted
    end
  in
  Mutex.unlock t.m;
  if r = Accepted then wake t;
  r

let length t =
  Mutex.lock t.m;
  let n = t.len in
  Mutex.unlock t.m;
  n

let drain_pipe t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.pipe_r b 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
  in
  go ()

let pop_batch t ~max ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    Mutex.lock t.m;
    let n = min max t.len in
    let items = ref [] in
    for _ = 1 to n do
      (match t.buf.(t.head) with
      | Some x -> items := x :: !items
      | None -> assert false);
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod t.capacity;
      t.len <- t.len - 1
    done;
    let finished = t.closed && t.len = 0 in
    Mutex.unlock t.m;
    if n > 0 then begin
      drain_pipe t;
      Items (List.rev !items)
    end
    else if finished then Drained
    else begin
      let wait = deadline -. Unix.gettimeofday () in
      if wait <= 0. then Timeout
      else begin
        (match Unix.select [ t.pipe_r ] [] [] wait with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> ());
        drain_pipe t;
        go ()
      end
    end
  in
  go ()

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  Mutex.unlock t.m;
  wake t

let dispose t =
  close t;
  Mutex.lock t.m;
  let already = t.disposed in
  t.disposed <- true;
  Mutex.unlock t.m;
  if not already then begin
    (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
    try Unix.close t.pipe_r with Unix.Unix_error _ -> ()
  end
