(** Snapshot-meta plumbing shared by {!Server} and {!Loadgen}: parse
    the [s=...;n=...;b=...;w=...;seed=...;d=...] meta string written by
    [lcsearch build], reopen a snapshot through the registry by its
    header kind, and replay the builder's workload stream (the same
    seed positions the same {!Workload.rng}, so the dataset — and any
    query stream drawn after it — reproduces the build process's). *)

type workload = {
  structure : string;
  n : int;
  block_size : int;
  kind : Lcsearch_index.Workloads.kind;
  seed : int;
  dim : int;
}

val workload_of_meta : string -> (workload, string) result

type loaded = {
  name : string;  (** serving name = the structure's registry name *)
  dim : int;
  reports_ids : bool;
  inst : Lcsearch_index.Index.instance;
  info : Diskstore.Snapshot.info;
  meta_workload : workload;
}

val load :
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  string ->
  (loaded, string) result
(** Reopen [path], dispatching on the snapshot kind through
    {!Lcsearch_index.Registry.find_by_snapshot_kind}.  Load-time
    verification I/O is charged to a throwaway stats sink.  Honors
    {!Diskstore.File_backend.set_resident_on_reopen}. *)

val replay_queries :
  loaded -> fraction:float -> count:int -> Lcsearch_index.Index.query array
(** Regenerate the dataset from the snapshot meta and draw [count]
    fresh halfspace queries of ~[fraction] selectivity, consuming the
    rng in the same order as [lcsearch query]. *)
