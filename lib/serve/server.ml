module Index = Lcsearch_index.Index
module Query_engine = Lcsearch_index.Query_engine

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type config = {
  host : string;
  port : int;
  snapshots : string list;
  queue_capacity : int;
  batch_max : int;
  domains : int;
  default_deadline_ms : int;
  read_timeout_s : float;
  write_timeout_s : float;
  cache_pages : int;
  policy : Diskstore.Buffer_pool.policy;
  resident : bool;
  max_frame : int;
  dispatch_delay_s : float;
  verbose : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7227;
    snapshots = [];
    queue_capacity = 1024;
    batch_max = 64;
    domains = 1;
    default_deadline_ms = 200;
    read_timeout_s = 30.;
    write_timeout_s = 10.;
    cache_pages = 64;
    policy = Diskstore.Buffer_pool.Lru;
    resident = true;
    max_frame = Frame.default_max_frame;
    dispatch_delay_s = 0.;
    verbose = false;
  }

type stats = {
  accepted : int;
  served : int;
  shed_full : int;
  shed_deadline : int;
  shed_drain : int;
  errors : int;
}

type entry = { dim : int; reports_ids : bool; inst : Index.instance }

type job = {
  conn : Conn.t;
  req : Protocol.request;
  enq_ns : int;
  deadline_ns : int;
}

type t = {
  cfg : config;
  domains : int;
  listen_fd : Unix.file_descr;
  port : int;
  entries : (string * entry) list;
  queue : job Admission.t;
  lock : Mutex.t; (* stats, conns, threads, draining, stopped *)
  mutable accepted : int;
  mutable served : int;
  mutable shed_full : int;
  mutable shed_deadline : int;
  mutable shed_drain : int;
  mutable errors : int;
  mutable draining : bool;
  mutable stopped : bool;
  mutable conns : Conn.t list;
  mutable readers : Thread.t list;
  mutable acceptor : Thread.t option;
  mutable dispatcher : Thread.t option;
}

let locked t f =
  Mutex.lock t.lock;
  let r = f () in
  Mutex.unlock t.lock;
  r

let log t fmt =
  if t.cfg.verbose then Printf.eprintf ("serve: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* ---------- request handling (reader threads) ---------- *)

let shed t conn ~id reason =
  locked t (fun () ->
      match (reason : Protocol.shed_reason) with
      | Queue_full -> t.shed_full <- t.shed_full + 1
      | Deadline_exceeded -> t.shed_deadline <- t.shed_deadline + 1
      | Draining -> t.shed_drain <- t.shed_drain + 1);
  ignore (Conn.send conn (Protocol.Shed { id; reason }))

let reject t conn ~id code message =
  locked t (fun () -> t.errors <- t.errors + 1);
  ignore (Conn.send conn (Protocol.Error { id; code; message }))

let handle_query t conn (q : Protocol.request) =
  match List.assoc_opt q.structure t.entries with
  | None ->
      reject t conn ~id:q.id Protocol.Unknown_structure
        (Printf.sprintf "unknown structure %S (serving: %s)" q.structure
           (String.concat ", " (List.map fst t.entries)))
  | Some entry ->
      if Array.length q.a + 1 <> entry.dim then
        reject t conn ~id:q.id Protocol.Bad_dimension
          (Printf.sprintf "%s queries have dimension %d, got %d" q.structure
             entry.dim
             (Array.length q.a + 1))
      else if
        (not (Float.is_finite q.a0)) || not (Array.for_all Float.is_finite q.a)
      then
        reject t conn ~id:q.id Protocol.Bad_request
          "non-finite query coefficient"
      else begin
        let now = now_ns () in
        let ms =
          if q.deadline_ms > 0 then q.deadline_ms else t.cfg.default_deadline_ms
        in
        let job =
          { conn; req = q; enq_ns = now; deadline_ns = now + (ms * 1_000_000) }
        in
        if locked t (fun () -> t.draining) then shed t conn ~id:q.id Draining
        else
          match Admission.push t.queue job with
          | Admission.Accepted -> locked t (fun () -> t.accepted <- t.accepted + 1)
          | Admission.Full -> shed t conn ~id:q.id Queue_full
          | Admission.Closed -> shed t conn ~id:q.id Draining
      end

let reader_loop t conn =
  let rec go () =
    match Frame.read ~max_frame:t.cfg.max_frame (Conn.fd conn) with
    | Ok (Protocol.Query q) ->
        handle_query t conn q;
        go ()
    | Ok _ ->
        reject t conn ~id:0 Protocol.Bad_request "clients send Query frames";
        go ()
    | Error Frame.Closed -> ()
    | Error Frame.Timeout ->
        log t "closing %s: idle for %.0fs" (Conn.peer conn) t.cfg.read_timeout_s
    | Error (Frame.Truncated _) -> ()
    | Error ((Frame.Oversized _ | Frame.Malformed _) as e) ->
        (* a torn length-prefixed stream cannot be resynced: explain, hang up *)
        reject t conn ~id:0 Protocol.Bad_request (Frame.read_error_to_string e)
  in
  go ();
  Conn.close conn;
  Conn.close_fd conn;
  locked t (fun () -> t.conns <- List.filter (fun c -> c != conn) t.conns)

(* ---------- dispatch (the single query-execution thread) ---------- *)

let respond t job (c : Query_engine.cost) ids =
  locked t (fun () -> t.served <- t.served + 1);
  ignore
    (Conn.send job.conn
       (Protocol.Result
          {
            id = job.req.id;
            count = c.Query_engine.result;
            reads = c.Query_engine.reads;
            writes = c.Query_engine.writes;
            hits = c.Query_engine.hits;
            elapsed_ns = now_ns () - job.enq_ns;
            ids;
          }))

let query_of (j : job) = { Index.a0 = j.req.a0; a = j.req.a }

let execute_group t entry jobs =
  let with_ids, count_only =
    List.partition (fun j -> j.req.want_ids && entry.reports_ids) jobs
  in
  (match count_only with
  | [] -> ()
  | _ ->
      let arr = Array.of_list count_only in
      let qs = Array.map query_of arr in
      let costs =
        Query_engine.run_batch_array ~domains:t.domains entry.inst qs
      in
      Array.iteri (fun i j -> respond t j costs.(i) [||]) arr);
  List.iter
    (fun j ->
      let r = Query_engine.domain_reporter () in
      Emio.Reporter.clear r;
      let c = Query_engine.run_one ~reporter:r entry.inst (query_of j) in
      respond t j c (Emio.Reporter.to_array r))
    with_ids

let execute_batch t jobs =
  if t.cfg.dispatch_delay_s > 0. then Thread.delay t.cfg.dispatch_delay_s;
  let now = now_ns () in
  let live, expired = List.partition (fun j -> j.deadline_ns >= now) jobs in
  List.iter
    (fun j -> shed t j.conn ~id:j.req.id Protocol.Deadline_exceeded)
    expired;
  (* group by structure, preserving arrival order within a group *)
  let groups = ref [] in
  List.iter
    (fun j ->
      match List.assoc_opt j.req.structure !groups with
      | Some cell -> cell := j :: !cell
      | None -> groups := (j.req.structure, ref [ j ]) :: !groups)
    live;
  List.iter
    (fun (name, cell) ->
      let entry = List.assoc name t.entries in
      let jobs = List.rev !cell in
      try execute_group t entry jobs
      with exn ->
        (* a query must never kill the dispatcher: fail the batch's
           requests individually and keep serving *)
        let message =
          Printf.sprintf "query execution failed: %s" (Printexc.to_string exn)
        in
        List.iter
          (fun j -> reject t j.conn ~id:j.req.id Protocol.Bad_request message)
          jobs)
    (List.rev !groups)

let dispatcher_loop t =
  let rec go () =
    match Admission.pop_batch t.queue ~max:t.cfg.batch_max ~timeout:0.1 with
    | Admission.Drained -> ()
    | Admission.Timeout -> go ()
    | Admission.Items jobs ->
        execute_batch t jobs;
        go ()
  in
  go ()

(* ---------- accept ---------- *)

let configure_client_fd t fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.read_timeout_s;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.write_timeout_s

(* Park in select with a short timeout rather than in accept, so drain
   is noticed promptly even on platforms where closing a listening fd
   does not reliably unblock a parked accept. *)
let acceptor_loop t =
  let rec go () =
    if locked t (fun () -> t.draining) then ()
    else begin
      let ready =
        match Unix.select [ t.listen_fd ] [] [] 0.2 with
        | [ _ ], _, _ -> true
        | _ -> false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> false
      in
      if ready then begin
        match Unix.accept t.listen_fd with
        | fd, _ ->
            configure_client_fd t fd;
            let conn = Conn.create fd in
            let admit =
              locked t (fun () ->
                  if t.draining then false
                  else begin
                    t.conns <- conn :: t.conns;
                    true
                  end)
            in
            if admit then begin
              log t "accepted %s" (Conn.peer conn);
              let th = Thread.create (reader_loop t) conn in
              locked t (fun () -> t.readers <- th :: t.readers)
            end
            else begin
              Conn.close conn;
              Conn.close_fd conn
            end
        | exception
            Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR | Unix.EAGAIN), _, _)
          ->
            ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) ->
            () (* listen fd closed under us: stop below *)
      end;
      go ()
    end
  in
  go ()

(* ---------- lifecycle ---------- *)

let load_entries cfg =
  if cfg.resident then Diskstore.File_backend.set_resident_on_reopen true;
  let entries =
    Fun.protect
      ~finally:(fun () -> Diskstore.File_backend.set_resident_on_reopen false)
      (fun () ->
        List.map
          (fun path ->
            match
              Meta.load ~policy:cfg.policy ~cache_pages:cfg.cache_pages path
            with
            | Error m -> failwith m
            | Ok l ->
                ( l.Meta.name,
                  {
                    dim = l.Meta.dim;
                    reports_ids = l.Meta.reports_ids;
                    inst = l.Meta.inst;
                  } ))
          cfg.snapshots)
  in
  let rec dup_check = function
    | [] -> ()
    | (name, _) :: rest ->
        if List.mem_assoc name rest then
          failwith
            (Printf.sprintf "two snapshots serve structure %S: names must be unique"
               name);
        dup_check rest
  in
  dup_check entries;
  if entries = [] then failwith "no snapshots to serve";
  entries

let start cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* Not a silent clamp: without resident payloads the shared buffer
     pool forces sequential dispatch, and the user who asked for
     fan-out should hear about it once, at startup. *)
  if (not cfg.resident) && cfg.domains > 1 then
    Printf.eprintf
      "serve: --no-resident forces sequential dispatch; requested %d \
       domains, using 1\n\
       %!"
      cfg.domains;
  let entries = load_entries cfg in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port) in
      Unix.bind listen_fd addr;
      Unix.listen listen_fd 128;
      let port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> cfg.port
      in
      {
        cfg;
        (* domain fan-out over a shared buffer pool is unsafe; without
           resident payloads the server serves sequentially *)
        domains = (if cfg.resident then max 1 cfg.domains else 1);
        listen_fd;
        port;
        entries;
        queue = Admission.create cfg.queue_capacity;
        lock = Mutex.create ();
        accepted = 0;
        served = 0;
        shed_full = 0;
        shed_deadline = 0;
        shed_drain = 0;
        errors = 0;
        draining = false;
        stopped = false;
        conns = [];
        readers = [];
        acceptor = None;
        dispatcher = None;
      }
    with exn ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise exn
  in
  t.dispatcher <- Some (Thread.create dispatcher_loop t);
  t.acceptor <- Some (Thread.create acceptor_loop t);
  t

let port t = t.port
let effective_domains t = t.domains
let structures t = List.map (fun (name, e) -> (name, e.dim)) t.entries

let stats t =
  locked t (fun () ->
      {
        accepted = t.accepted;
        served = t.served;
        shed_full = t.shed_full;
        shed_deadline = t.shed_deadline;
        shed_drain = t.shed_drain;
        errors = t.errors;
      })

let stop t =
  let first =
    locked t (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          t.draining <- true;
          true
        end)
  in
  if first then begin
    (* 1. no new requests: readers shed Draining, pushes return Closed *)
    Admission.close t.queue;
    (* 2. the dispatcher finishes the queued backlog, then sees Drained *)
    (match t.dispatcher with Some th -> Thread.join th | None -> ());
    (* 3. tear down the edges *)
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    let conns, readers = locked t (fun () -> (t.conns, t.readers)) in
    List.iter Conn.close conns;
    List.iter (fun th -> try Thread.join th with _ -> ()) readers;
    Admission.dispose t.queue
  end
