module Index = Lcsearch_index.Index
module Query_engine = Lcsearch_index.Query_engine
module Par = Lcsearch_index.Par

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type config = {
  host : string;
  port : int;
  snapshots : string list;
  queue_capacity : int;
  batch_max : int;
  dispatchers : int;
  readers : int;
  coalesce_us : int;
  domains : int;
  default_deadline_ms : int;
  read_timeout_s : float;
  write_timeout_s : float;
  cache_pages : int;
  policy : Diskstore.Buffer_pool.policy;
  resident : bool;
  max_frame : int;
  dispatch_delay_s : float;
  verbose : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7227;
    snapshots = [];
    queue_capacity = 1024;
    batch_max = 64;
    dispatchers = 1;
    readers = 2;
    coalesce_us = 0;
    domains = 1;
    default_deadline_ms = 200;
    read_timeout_s = 30.;
    write_timeout_s = 10.;
    cache_pages = 64;
    policy = Diskstore.Buffer_pool.Lru;
    resident = true;
    max_frame = Frame.default_max_frame;
    dispatch_delay_s = 0.;
    verbose = false;
  }

type stats = {
  accepted : int;
  served : int;
  shed_full : int;
  shed_deadline : int;
  shed_drain : int;
  errors : int;
  batches : int;
  coalesced : int;
  max_batch : int;
}

type entry = {
  dim : int;
  reports_ids : bool;
  inst : Index.instance;
  ring : int; (* which dispatcher shard owns this structure *)
}

type job = {
  conn : Conn.t;
  req : Protocol.request;
  enq_ns : int;
  deadline_ns : int;
}

type t = {
  cfg : config;
  domains : int;
  dispatchers : int;
  readers : int;
  listen_fd : Unix.file_descr;
  port : int;
  entries : (string * entry) list;
  rings : job Admission.t array; (* one bounded ring per dispatcher *)
  lock : Mutex.t; (* stats, draining, stopped *)
  mutable accepted : int;
  mutable served : int;
  mutable shed_full : int;
  mutable shed_deadline : int;
  mutable shed_drain : int;
  mutable errors : int;
  d_batches : int array; (* per dispatcher, under lock *)
  d_coalesced : int array;
  d_max_batch : int array;
  mutable draining : bool;
  mutable stopped : bool;
  mutable reactors : Reactor.t array;
  mutable acceptor : Thread.t option;
  mutable workers : Worker.t array; (* the dispatcher shards *)
}

let locked t f =
  Mutex.lock t.lock;
  let r = f () in
  Mutex.unlock t.lock;
  r

let log t fmt =
  if t.cfg.verbose then Printf.eprintf ("serve: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* ---------- request handling (reactor threads) ---------- *)

let shed t conn ~id reason =
  locked t (fun () ->
      match (reason : Protocol.shed_reason) with
      | Queue_full -> t.shed_full <- t.shed_full + 1
      | Deadline_exceeded -> t.shed_deadline <- t.shed_deadline + 1
      | Draining -> t.shed_drain <- t.shed_drain + 1);
  ignore (Conn.send conn (Protocol.Shed { id; reason }))

let reject t conn ~id code message =
  locked t (fun () -> t.errors <- t.errors + 1);
  ignore (Conn.send conn (Protocol.Error { id; code; message }))

let stats t =
  locked t (fun () ->
      let sum a = Array.fold_left ( + ) 0 a in
      let maxi a = Array.fold_left max 0 a in
      {
        accepted = t.accepted;
        served = t.served;
        shed_full = t.shed_full;
        shed_deadline = t.shed_deadline;
        shed_drain = t.shed_drain;
        errors = t.errors;
        batches = sum t.d_batches;
        coalesced = sum t.d_coalesced;
        max_batch = maxi t.d_max_batch;
      })

let server_stats t : Protocol.server_stats =
  let s = stats t in
  {
    dispatchers = t.dispatchers;
    readers = t.readers;
    domains = t.domains;
    accepted = s.accepted;
    served = s.served;
    shed_full = s.shed_full;
    shed_deadline = s.shed_deadline;
    shed_drain = s.shed_drain;
    errors = s.errors;
    batches = s.batches;
    coalesced = s.coalesced;
    max_batch = s.max_batch;
  }

let handle_query t conn (q : Protocol.request) =
  match List.assoc_opt q.structure t.entries with
  | None ->
      reject t conn ~id:q.id Protocol.Unknown_structure
        (Printf.sprintf "unknown structure %S (serving: %s)" q.structure
           (String.concat ", " (List.map fst t.entries)))
  | Some entry ->
      if Array.length q.a + 1 <> entry.dim then
        reject t conn ~id:q.id Protocol.Bad_dimension
          (Printf.sprintf "%s queries have dimension %d, got %d" q.structure
             entry.dim
             (Array.length q.a + 1))
      else if
        (not (Float.is_finite q.a0)) || not (Array.for_all Float.is_finite q.a)
      then
        reject t conn ~id:q.id Protocol.Bad_request
          "non-finite query coefficient"
      else begin
        let now = now_ns () in
        let ms =
          if q.deadline_ms > 0 then q.deadline_ms else t.cfg.default_deadline_ms
        in
        let job =
          { conn; req = q; enq_ns = now; deadline_ns = now + (ms * 1_000_000) }
        in
        if locked t (fun () -> t.draining) then shed t conn ~id:q.id Draining
        else
          match Admission.push t.rings.(entry.ring) job with
          | Admission.Accepted ->
              locked t (fun () -> t.accepted <- t.accepted + 1)
          | Admission.Full -> shed t conn ~id:q.id Queue_full
          | Admission.Closed -> shed t conn ~id:q.id Draining
      end

let on_msg t conn (msg : Protocol.msg) =
  match msg with
  | Protocol.Query q -> handle_query t conn q
  | Protocol.Stats_query { id } ->
      ignore (Conn.send conn (Protocol.Stats { id; stats = server_stats t }))
  | Protocol.Result _ | Protocol.Shed _ | Protocol.Error _ | Protocol.Stats _
    ->
      reject t conn ~id:0 Protocol.Bad_request
        "clients send Query or Stats_query frames"

let on_broken t conn err =
  (* a torn length-prefixed stream cannot be resynced: explain, hang up *)
  reject t conn ~id:0 Protocol.Bad_request (Frame.read_error_to_string err);
  Conn.request_close conn

(* ---------- dispatch (one shard per ring) ---------- *)

let respond t job (c : Query_engine.cost) ids =
  locked t (fun () -> t.served <- t.served + 1);
  ignore
    (Conn.send job.conn
       (Protocol.Result
          {
            id = job.req.id;
            count = c.Query_engine.result;
            reads = c.Query_engine.reads;
            writes = c.Query_engine.writes;
            hits = c.Query_engine.hits;
            elapsed_ns = now_ns () - job.enq_ns;
            ids;
          }))

let query_of (j : job) = { Index.a0 = j.req.a0; a = j.req.a }

(* Fan a count-only batch over the domain pool when this shard wins
   the pool lease; otherwise run it inline.  Either way the costs are
   bit-identical (the parallel-equivalence suites pin that), so
   losing the lease is a throughput event, never a correctness one.
   run_batch_sorted shares one traversal per group of identical query
   planes on the structures that support it (h3/tradeoff/cert) and
   falls back to the plain batch path everywhere else. *)
let run_counts t entry qs =
  if t.domains > 1 && Par.try_acquire () then
    Fun.protect
      ~finally:(fun () -> Par.release ())
      (fun () -> Query_engine.run_batch_sorted ~domains:t.domains entry.inst qs)
  else Query_engine.run_batch_sorted entry.inst qs

let execute_group t entry jobs =
  let with_ids, count_only =
    List.partition (fun j -> j.req.want_ids && entry.reports_ids) jobs
  in
  (match count_only with
  | [] -> ()
  | _ ->
      let arr = Array.of_list count_only in
      let qs = Array.map query_of arr in
      let costs = run_counts t entry qs in
      Array.iteri (fun i j -> respond t j costs.(i) [||]) arr);
  List.iter
    (fun j ->
      let r = Query_engine.domain_reporter () in
      Emio.Reporter.clear r;
      let c = Query_engine.run_one ~reporter:r entry.inst (query_of j) in
      respond t j c (Emio.Reporter.to_array r))
    with_ids

let execute_batch t d jobs =
  (* Unix.sleepf, not Thread.delay: dispatcher shards are domains on
     OCaml 5 and need no thread machinery for the test-hook sleep *)
  if t.cfg.dispatch_delay_s > 0. then Unix.sleepf t.cfg.dispatch_delay_s;
  let now = now_ns () in
  let live, expired = List.partition (fun j -> j.deadline_ns >= now) jobs in
  List.iter
    (fun j -> shed t j.conn ~id:j.req.id Protocol.Deadline_exceeded)
    expired;
  let n_live = List.length live in
  locked t (fun () ->
      t.d_batches.(d) <- t.d_batches.(d) + 1;
      if n_live > 1 then t.d_coalesced.(d) <- t.d_coalesced.(d) + n_live;
      if n_live > t.d_max_batch.(d) then t.d_max_batch.(d) <- n_live);
  (* group by structure, preserving arrival order within a group *)
  let groups = ref [] in
  List.iter
    (fun j ->
      match List.assoc_opt j.req.structure !groups with
      | Some cell -> cell := j :: !cell
      | None -> groups := (j.req.structure, ref [ j ]) :: !groups)
    live;
  List.iter
    (fun (name, cell) ->
      let entry = List.assoc name t.entries in
      let jobs = List.rev !cell in
      try execute_group t entry jobs
      with exn ->
        (* a query must never kill the dispatcher: fail the batch's
           requests individually and keep serving *)
        let message =
          Printf.sprintf "query execution failed: %s" (Printexc.to_string exn)
        in
        List.iter
          (fun j -> reject t j.conn ~id:j.req.id Protocol.Bad_request message)
          jobs)
    (List.rev !groups)

(* After the first pop, optionally linger for more arrivals on the
   same ring so cross-request batches form — bounded by the coalescing
   window *and* the earliest queued deadline, so a request is never
   held past a budget it could still meet.  With [coalesce_us = 0]
   (the default) a batch is exactly whatever one pop returned, the
   pre-coalescing behaviour. *)
let coalesce t ring first =
  let bmax = t.cfg.batch_max in
  let n0 = List.length first in
  if t.cfg.coalesce_us <= 0 || n0 >= bmax then first
  else begin
    let window_end = now_ns () + (t.cfg.coalesce_us * 1000) in
    let rec fill acc n =
      if n >= bmax then acc
      else begin
        let earliest =
          List.fold_left (fun m j -> min m j.deadline_ns) max_int acc
        in
        let wait_s =
          float_of_int (min window_end earliest - now_ns ()) /. 1e9
        in
        if wait_s <= 0. then acc
        else
          match Admission.pop_batch ring ~max:(bmax - n) ~timeout:wait_s with
          | Admission.Items more -> fill (acc @ more) (n + List.length more)
          | Admission.Timeout | Admission.Drained -> acc
      end
    in
    fill first n0
  end

let dispatcher_loop t d =
  let ring = t.rings.(d) in
  let rec go () =
    match Admission.pop_batch ring ~max:t.cfg.batch_max ~timeout:0.1 with
    | Admission.Drained -> ()
    | Admission.Timeout -> go ()
    | Admission.Items jobs ->
        execute_batch t d (coalesce t ring jobs);
        go ()
  in
  go ()

(* ---------- accept ---------- *)

let configure_client_fd fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  Unix.set_nonblock fd

(* Park in select with a short timeout rather than in accept, so drain
   is noticed promptly even on platforms where closing a listening fd
   does not reliably unblock a parked accept. *)
let acceptor_loop t =
  let next = ref 0 in
  let rec go () =
    if locked t (fun () -> t.draining) then ()
    else begin
      let ready =
        match Unix.select [ t.listen_fd ] [] [] 0.2 with
        | [ _ ], _, _ -> true
        | _ -> false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> false
      in
      if ready then begin
        match Unix.accept t.listen_fd with
        | fd, _ ->
            if locked t (fun () -> t.draining) then (
              try Unix.close fd with Unix.Unix_error _ -> ())
            else begin
              configure_client_fd fd;
              let conn = Conn.create fd in
              log t "accepted %s" (Conn.peer conn);
              (* round-robin across the reactor pool *)
              let r = t.reactors.(!next mod Array.length t.reactors) in
              incr next;
              Reactor.add r conn
            end
        | exception
            Unix.Unix_error
              ((Unix.ECONNABORTED | Unix.EINTR | Unix.EAGAIN), _, _) ->
            ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) ->
            () (* listen fd closed under us: stop below *)
      end;
      go ()
    end
  in
  go ()

(* ---------- lifecycle ---------- *)

let load_entries cfg ~dispatchers =
  if cfg.resident then Diskstore.File_backend.set_resident_on_reopen true;
  let entries =
    Fun.protect
      ~finally:(fun () -> Diskstore.File_backend.set_resident_on_reopen false)
      (fun () ->
        List.map
          (fun path ->
            match
              Meta.load ~policy:cfg.policy ~cache_pages:cfg.cache_pages path
            with
            | Error m -> failwith m
            | Ok l ->
                ( l.Meta.name,
                  {
                    dim = l.Meta.dim;
                    reports_ids = l.Meta.reports_ids;
                    inst = l.Meta.inst;
                    (* deterministic structure-name hash, so a
                       structure's requests always land on one shard
                       and stay FIFO relative to each other *)
                    ring = Hashtbl.hash l.Meta.name mod dispatchers;
                  } ))
          cfg.snapshots)
  in
  let rec dup_check = function
    | [] -> ()
    | (name, _) :: rest ->
        if List.mem_assoc name rest then
          failwith
            (Printf.sprintf
               "two snapshots serve structure %S: names must be unique" name);
        dup_check rest
  in
  dup_check entries;
  if entries = [] then failwith "no snapshots to serve";
  entries

let start cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* None of these are silent clamps: the user who asked for fan-out
     should hear at startup why they are not getting it. *)
  if (not cfg.resident) && cfg.domains > 1 then
    Printf.eprintf
      "serve: --no-resident forces sequential dispatch; requested %d \
       domains, using 1\n\
       %!"
      cfg.domains;
  let requested_dispatchers = max 1 cfg.dispatchers in
  let dispatchers =
    if not cfg.resident then begin
      if requested_dispatchers > 1 then
        Printf.eprintf
          "serve: --no-resident forces a single dispatcher; requested %d, \
           using 1\n\
           %!"
          requested_dispatchers;
      1
    end
    else if not Worker.parallel then begin
      if requested_dispatchers > 1 then
        Printf.eprintf
          "serve: this build has no domains (OCaml < 5.0); requested %d \
           dispatchers, using 1\n\
           %!"
          requested_dispatchers;
      1
    end
    else requested_dispatchers
  in
  let readers = max 1 cfg.readers in
  let entries = load_entries cfg ~dispatchers in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port) in
      Unix.bind listen_fd addr;
      Unix.listen listen_fd 128;
      let port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> cfg.port
      in
      {
        cfg;
        (* domain fan-out over a shared buffer pool is unsafe; without
           resident payloads the server serves sequentially *)
        domains = (if cfg.resident then max 1 cfg.domains else 1);
        dispatchers;
        readers;
        listen_fd;
        port;
        entries;
        rings = Array.init dispatchers (fun _ -> Admission.create cfg.queue_capacity);
        lock = Mutex.create ();
        accepted = 0;
        served = 0;
        shed_full = 0;
        shed_deadline = 0;
        shed_drain = 0;
        errors = 0;
        d_batches = Array.make dispatchers 0;
        d_coalesced = Array.make dispatchers 0;
        d_max_batch = Array.make dispatchers 0;
        draining = false;
        stopped = false;
        reactors = [||];
        acceptor = None;
        workers = [||];
      }
    with exn ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise exn
  in
  t.reactors <-
    Array.init readers (fun _ ->
        Reactor.start ~max_frame:cfg.max_frame
          ~idle_timeout_s:cfg.read_timeout_s
          ~drain_grace_s:cfg.write_timeout_s ~on_msg:(on_msg t)
          ~on_broken:(on_broken t)
          ~log:(fun m -> log t "%s" m)
          ());
  t.workers <-
    Array.init dispatchers (fun d -> Worker.spawn (fun () -> dispatcher_loop t d));
  t.acceptor <- Some (Thread.create acceptor_loop t);
  t

let port t = t.port
let effective_domains t = t.domains
let effective_dispatchers t = t.dispatchers
let effective_readers t = t.readers
let structures t = List.map (fun (name, e) -> (name, e.dim)) t.entries

let stop t =
  let first =
    locked t (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          t.draining <- true;
          true
        end)
  in
  if first then begin
    (* 1. no new requests: reactors shed Draining, pushes return Closed *)
    Array.iter Admission.close t.rings;
    (* 2. each dispatcher shard finishes its backlog, then sees
       Drained; their responses land in the conn outboxes while the
       reactors are still flushing *)
    Array.iter Worker.join t.workers;
    (* 3. tear down the edges: acceptor, then reactors (which flush
       remaining outboxes bounded by the write grace), then the fds *)
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Array.iter Reactor.stop t.reactors;
    Array.iter Reactor.join t.reactors;
    Array.iter Admission.dispose t.rings
  end
