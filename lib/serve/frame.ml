(* u32-LE length prefix + Protocol.codec payload.  The fd paths map
   every Unix-level failure mode to a typed result; the pure
   encode/decode pair exists so the rejection matrix (truncation,
   oversize, codec garbage) is testable without opening a socket. *)

let default_max_frame = 4 * 1024 * 1024

type read_error =
  | Closed
  | Timeout
  | Oversized of { length : int; max : int }
  | Truncated of { expected : int; got : int }
  | Malformed of string

let read_error_to_string = function
  | Closed -> "connection closed"
  | Timeout -> "read timeout"
  | Oversized { length; max } ->
      Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" length max
  | Truncated { expected; got } ->
      Printf.sprintf "truncated frame: expected %d bytes, got %d" expected got
  | Malformed m -> "malformed frame: " ^ m

type write_error = [ `Closed | `Timeout ]

let encode msg =
  let payload = Emio.Codec.encode Protocol.codec msg in
  let len = Bytes.length payload in
  let out = Bytes.create (4 + len) in
  Bytes.set_int32_le out 0 (Int32.of_int len);
  Bytes.blit payload 0 out 4 len;
  out

let frame_length buf = Int32.to_int (Bytes.get_int32_le buf 0) land 0xffffffff

(* Incremental entry for the reactor's per-connection accumulators: a
   frame may straddle any number of reads, so parse the prefix we have
   and either hand back a complete message plus the bytes it consumed
   or say how many bytes would be needed before trying again. *)
type parsed =
  | Parsed of Protocol.msg * int  (** consumed bytes, prefix of the buffer *)
  | Need of int  (** total buffered bytes required before re-parsing *)
  | Broken of read_error  (** unrecoverable: the stream cannot resync *)

let parse ?(max_frame = default_max_frame) buf len =
  if len < 4 then Need 4
  else begin
    let length = frame_length buf in
    if length > max_frame then Broken (Oversized { length; max = max_frame })
    else if len < 4 + length then Need (4 + length)
    else
      match Emio.Codec.decode Protocol.codec (Bytes.sub buf 4 length) with
      | msg -> Parsed (msg, 4 + length)
      | exception Emio.Codec.Decode m -> Broken (Malformed m)
  end

let decode ?(max_frame = default_max_frame) buf =
  let got = Bytes.length buf in
  if got < 4 then Error (Truncated { expected = 4; got })
  else
    let length = frame_length buf in
    if length > max_frame then Error (Oversized { length; max = max_frame })
    else if got < 4 + length then Error (Truncated { expected = 4 + length; got })
    else if got > 4 + length then
      Error (Malformed "trailing bytes after the frame")
    else
      match Emio.Codec.decode Protocol.codec (Bytes.sub buf 4 length) with
      | msg -> Ok msg
      | exception Emio.Codec.Decode m -> Error (Malformed m)

(* Read exactly [len] bytes.  EOF before the first byte is a clean
   close; EOF after it is a torn frame — the caller can't resync a
   length-prefixed stream, so it reports Truncated and hangs up. *)
let read_exact fd buf len =
  let rec go pos =
    if pos = len then `Ok
    else
      match Unix.read fd buf pos (len - pos) with
      | 0 -> if pos = 0 then `Closed else `Short pos
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          `Timeout
      | exception
          Unix.Unix_error
            ( ( Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF | Unix.ENOTCONN
              | Unix.ESHUTDOWN ),
              _,
              _ ) ->
          if pos = 0 then `Closed else `Short pos
  in
  go 0

let read ?(max_frame = default_max_frame) fd =
  let hdr = Bytes.create 4 in
  match read_exact fd hdr 4 with
  | `Closed -> Error Closed
  | `Timeout -> Error Timeout
  | `Short got -> Error (Truncated { expected = 4; got })
  | `Ok -> (
      let length = frame_length hdr in
      if length > max_frame then Error (Oversized { length; max = max_frame })
      else
        let payload = Bytes.create length in
        match read_exact fd payload length with
        | `Closed -> Error (Truncated { expected = length; got = 0 })
        | `Timeout -> Error Timeout
        | `Short got -> Error (Truncated { expected = length; got })
        | `Ok -> (
            match Emio.Codec.decode Protocol.codec payload with
            | msg -> Ok msg
            | exception Emio.Codec.Decode m -> Error (Malformed m)))

(* One non-blocking write attempt for the reactor's outbox flusher.
   EINTR maps to [`Wrote 0] (the caller's select loop retries), a full
   socket buffer to [`Blocked] (watch for writability), and a gone
   peer to [`Closed]. *)
let write_some fd buf pos len =
  match Unix.write fd buf pos len with
  | n -> `Wrote n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Wrote 0
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Blocked
  | exception
      Unix.Unix_error
        ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN
          | Unix.ESHUTDOWN ),
          _,
          _ ) ->
      `Closed

let write fd msg =
  let buf = encode msg in
  let len = Bytes.length buf in
  let rec go pos =
    if pos = len then Ok ()
    else
      match Unix.write fd buf pos (len - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Error `Timeout
      | exception
          Unix.Unix_error
            ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN
              | Unix.ESHUTDOWN ),
              _,
              _ ) ->
          Error `Closed
  in
  go 0
