module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads
module Shard = Lcsearch_index.Shard
module Lsm = Lcsearch_index.Lsm

type workload = {
  structure : string;
  n : int;
  block_size : int;
  kind : Workloads.kind;
  seed : int;
  dim : int;
}

(* Same key=value;... format as bin/lcsearch.ml's meta_string. *)
let field meta key =
  List.find_map
    (fun kv ->
      match String.index_opt kv '=' with
      | Some i when String.sub kv 0 i = key ->
          Some (String.sub kv (i + 1) (String.length kv - i - 1))
      | _ -> None)
    (String.split_on_char ';' meta)

let workload_of_meta meta =
  let ( let* ) = Result.bind in
  let str key =
    match field meta key with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "snapshot meta %S lacks %S" meta key)
  in
  let int key =
    let* v = str key in
    match int_of_string_opt v with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad %S in snapshot meta %S" key meta)
  in
  let* structure = str "s" in
  let* n = int "n" in
  let* block_size = int "b" in
  let* w = str "w" in
  let* kind =
    match w with
    | "uniform" -> Ok Workloads.Uniform
    | "clusters" -> Ok Workloads.Clusters
    | "diagonal" -> Ok Workloads.Diagonal
    | w -> Error (Printf.sprintf "unknown workload %S in snapshot meta" w)
  in
  let* seed = int "seed" in
  let* dim = int "d" in
  Ok { structure; n; block_size; kind; seed; dim }

type loaded = {
  name : string;
  dim : int;
  reports_ids : bool;
  inst : Index.instance;
  info : Diskstore.Snapshot.info;
  meta_workload : workload;
}

(* A sharded snapshot directory reopens through [Shard.open_snapshot]
   (manifest-driven: inner kind, K, partitioner); queries fan out over
   the shards behind the same [Index.instance] surface, so the server
   needs no further dispatch. *)
let load_sharded ~policy ~cache_pages path =
  let ( let* ) = Result.bind in
  let snap_err e = path ^ ": " ^ Diskstore.Snapshot.error_to_string e in
  let stats = Emio.Io_stats.create () in
  let* inst, info, m =
    Result.map_error snap_err
      (Shard.open_snapshot ~policy ~cache_pages ~stats path)
  in
  let* meta_workload =
    Result.map_error (fun e -> path ^ ": " ^ e) (workload_of_meta m.Shard.meta)
  in
  let (module M : Index.S) = Index.structure inst in
  Ok
    {
      name = M.name;
      dim = meta_workload.dim;
      reports_ids = M.reports_ids;
      inst;
      info;
      meta_workload;
    }

(* A dynamic (LSM) snapshot directory reopens through
   [Lsm.open_snapshot]: each level reloads through the registry, the
   memtable log replays, and the resulting instance answers queries
   behind the same [Index.instance] surface as any static snapshot. *)
let load_lsm ~policy ~cache_pages path =
  let ( let* ) = Result.bind in
  let snap_err e = path ^ ": " ^ Diskstore.Snapshot.error_to_string e in
  let stats = Emio.Io_stats.create () in
  let* inst, info, m =
    Result.map_error snap_err
      (Lsm.open_snapshot ~policy ~cache_pages ~stats path)
  in
  let* meta_workload =
    Result.map_error (fun e -> path ^ ": " ^ e) (workload_of_meta m.Lsm.meta)
  in
  let (module M : Index.S) = Index.structure inst in
  Ok
    {
      name = M.name;
      dim = meta_workload.dim;
      reports_ids = M.reports_ids;
      inst;
      info;
      meta_workload;
    }

let load ?(policy = Diskstore.Buffer_pool.Lru) ?(cache_pages = 64) path =
  if Lsm.is_lsm_path path then load_lsm ~policy ~cache_pages path
  else if Shard.is_sharded_path path then load_sharded ~policy ~cache_pages path
  else
  let ( let* ) = Result.bind in
  let snap_err e = path ^ ": " ^ Diskstore.Snapshot.error_to_string e in
  let* info =
    Result.map_error snap_err (Diskstore.Snapshot.read_info path)
  in
  let* meta_workload =
    Result.map_error (fun m -> path ^ ": " ^ m)
      (workload_of_meta info.Diskstore.Snapshot.meta)
  in
  let* (module M : Index.S) =
    match Registry.find_by_snapshot_kind info.Diskstore.Snapshot.kind with
    | Some m -> Ok m
    | None ->
        Error
          (Printf.sprintf "%s: no registered structure owns snapshot kind %S"
             path info.Diskstore.Snapshot.kind)
  in
  let ops = Option.get M.snapshot in
  let stats = Emio.Io_stats.create () in
  let* t =
    Result.map_error snap_err (ops.Index.load ~stats ~policy ~cache_pages path)
  in
  let t = fst t in
  Ok
    {
      name = M.name;
      dim = meta_workload.dim;
      reports_ids = M.reports_ids;
      inst = Index.Instance ((module M), t);
      info;
      meta_workload;
    }

let replay_queries loaded ~fraction ~count =
  let w = loaded.meta_workload in
  let (module M : Index.S) = Index.structure loaded.inst in
  let rng = Workload.rng w.seed in
  let ds =
    Workloads.dataset rng ~kind:w.kind ~dim:w.dim ~n:w.n (module M : Index.S)
  in
  Array.of_list (Workloads.queries rng ds ~fraction ~count)
