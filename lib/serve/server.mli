(** The long-lived query server behind [lcsearch serve].

    Three layers scale the serve path (DESIGN.md §3j):

    - A small fixed pool of {!Reactor} event-loop threads multiplexes
      every accepted connection over non-blocking sockets — no
      thread-per-connection.  Reactors decode and validate
      {!Protocol.Query} frames and push jobs onto the admission rings;
      response frames written by dispatchers flush opportunistically,
      with partial-write residue resumed on writability.
    - K dispatcher shards (domains on OCaml 5, see {!Worker}) each
      drain their own bounded {!Admission} ring.  Structures are
      hashed onto rings by name, so one structure's requests stay FIFO
      on one shard and query initiation no longer serializes behind a
      single dispatcher.
    - Cross-request coalescing: after popping, a shard may linger up
      to the coalescing window — never past the earliest queued
      deadline — to gather same-ring arrivals into one
      [run_batch_sorted] call, reaching the plane-sorted amortization
      across clients.  Per-request costs stay bit-identical to the
      sequential [run_one] oracle (served snapshots are cache-free and
      resident, so batch order cannot leak into the charges).

    Every request gets exactly one response; overload is an explicit
    [Shed], never a hang (see DESIGN.md §3f for the admission state
    machine).

    Queries execute {e only} on the dispatcher shards (plus the domain
    pool the lease holder drives), which is what makes the engine's
    domain-local scratch state safe.  Concurrent fan-out over a
    reopened snapshot additionally requires resident payloads
    ({!Diskstore.File_backend.preload}); with [resident = false] the
    server forces [domains = 1] {e and} a single dispatcher. *)

type config = {
  host : string;
  port : int;  (** 0 = ephemeral; read the bound port with {!port} *)
  snapshots : string list;  (** snapshot files to serve, one structure each *)
  queue_capacity : int;  (** per-dispatcher admission ring capacity *)
  batch_max : int;  (** dispatcher batch size *)
  dispatchers : int;
      (** dispatcher shards; clamped to 1 without resident payloads or
          on OCaml < 5.0 (no domains), warned at startup *)
  readers : int;  (** reactor event-loop threads, at least 1 *)
  coalesce_us : int;
      (** cross-request coalescing window in microseconds; 0 disables
          lingering (a batch is whatever one ring pop returned) *)
  domains : int;  (** fan-out for count-only batches *)
  default_deadline_ms : int;  (** for requests with [deadline_ms = 0] *)
  read_timeout_s : float;  (** per-connection idle timeout *)
  write_timeout_s : float;
      (** drain grace for flushing response outboxes at stop *)
  cache_pages : int;
  policy : Diskstore.Buffer_pool.policy;
  resident : bool;  (** preload payloads; required for any fan-out *)
  max_frame : int;
  dispatch_delay_s : float;
      (** test hook: sleep this long before executing each batch, to
          deterministically provoke queue-full and deadline sheds *)
  verbose : bool;
}

val default_config : config

type stats = {
  accepted : int;
  served : int;
  shed_full : int;
  shed_deadline : int;
  shed_drain : int;
  errors : int;
  batches : int;  (** dispatcher batches executed, across all shards *)
  coalesced : int;
      (** requests that executed in a batch of more than one *)
  max_batch : int;  (** largest batch any shard executed *)
}

type t

val start : config -> t
(** Load the snapshots, bind, and spawn the acceptor, the reactor
    pool, and the dispatcher shards.  Raises [Failure] with a readable
    message if a snapshot cannot be served (unreadable, unknown kind,
    duplicate structure name). *)

val port : t -> int
(** The actually-bound port (useful with [config.port = 0]). *)

val effective_domains : t -> int
(** The domain count count-only batches actually fan out over — 1
    whenever [resident = false], whatever [config.domains] asked for
    (the clamp is also warned about at startup). *)

val effective_dispatchers : t -> int
(** Dispatcher shards actually running — [config.dispatchers] clamped
    to 1 without resident payloads or on a domain-less build. *)

val effective_readers : t -> int
(** Reactor event-loop threads (at least 1). *)

val structures : t -> (string * int) list
(** Serving names and their dimensions. *)

val stats : t -> stats

val stop : t -> unit
(** Graceful drain: stop accepting connections and requests (new
    arrivals are shed with [Draining]), let every dispatcher shard
    finish its queued backlog — including in-flight coalesced batches
    — answer it, flush the response outboxes, then close every
    connection and join every thread.  Idempotent. *)
