(** The long-lived query server behind [lcsearch serve].

    One reader thread per accepted connection decodes and validates
    {!Protocol.Query} frames and pushes jobs through the bounded
    {!Admission} queue; a single dispatcher thread pops batches, sheds
    anything whose deadline passed while queued, groups the survivors
    by structure, and executes them on the {!Lcsearch_index.Query_engine}
    scratch paths — count-only jobs fan out over the persistent domain
    pool, id-reporting jobs run singly through the zero-allocation
    reporter.  Every request gets exactly one response; overload is an
    explicit [Shed], never a hang (see DESIGN.md §3f for the admission
    state machine).

    Queries execute {e only} on the dispatcher thread (plus the domain
    pool it drives), which is what makes the engine's domain-local
    scratch state safe here.  Concurrent fan-out over a reopened
    snapshot additionally requires resident payloads
    ({!Diskstore.File_backend.preload}); with [resident = false] the
    server forces [domains = 1]. *)

type config = {
  host : string;
  port : int;  (** 0 = ephemeral; read the bound port with {!port} *)
  snapshots : string list;  (** snapshot files to serve, one structure each *)
  queue_capacity : int;
  batch_max : int;  (** dispatcher batch size *)
  domains : int;  (** fan-out for count-only batches *)
  default_deadline_ms : int;  (** for requests with [deadline_ms = 0] *)
  read_timeout_s : float;  (** per-connection idle/read timeout *)
  write_timeout_s : float;
  cache_pages : int;
  policy : Diskstore.Buffer_pool.policy;
  resident : bool;  (** preload payloads; required for [domains > 1] *)
  max_frame : int;
  dispatch_delay_s : float;
      (** test hook: sleep this long before executing each batch, to
          deterministically provoke queue-full and deadline sheds *)
  verbose : bool;
}

val default_config : config

type stats = {
  accepted : int;
  served : int;
  shed_full : int;
  shed_deadline : int;
  shed_drain : int;
  errors : int;
}

type t

val start : config -> t
(** Load the snapshots, bind, and spawn the acceptor + dispatcher.
    Raises [Failure] with a readable message if a snapshot cannot be
    served (unreadable, unknown kind, duplicate structure name). *)

val port : t -> int
(** The actually-bound port (useful with [config.port = 0]). *)

val effective_domains : t -> int
(** The domain count queries actually fan out over — 1 whenever
    [resident = false], whatever [config.domains] asked for (the
    clamp is also warned about at startup). *)

val structures : t -> (string * int) list
(** Serving names and their dimensions. *)

val stats : t -> stats
val stop : t -> unit
(** Graceful drain: stop accepting connections and requests (new
    arrivals are shed with [Draining]), execute the queued backlog,
    answer it, then close every connection and join every thread.
    Idempotent. *)
