(** The lcsearch wire protocol, version 1.

    One message per frame (see {!Frame} for the length prefix), encoded
    with the repo's {!Emio.Codec} fixed-width little-endian conventions
    and framed by [Codec.versioned] under magic ["LCSV"] — a frame
    written under a different magic or version is rejected at decode
    with an error naming both, exactly like a snapshot section.

    Clients send {!constructor:Query}; the server answers every request
    with exactly one of {!constructor:Result}, {!constructor:Shed}, or
    {!constructor:Error} carrying the request's [id].  A request is
    never silently dropped: overload surfaces as an explicit [Shed]
    (admission queue full, deadline passed while queued, or server
    draining), not as a hang. *)

type request = {
  id : int;  (** client-chosen, [0..2^32-1], echoed in the response *)
  structure : string;  (** serving name, e.g. ["h2"] *)
  want_ids : bool;
      (** ask for answer ids; honored only for id-reporting structures *)
  deadline_ms : int;
      (** queueing budget in milliseconds; [0] = server default *)
  a0 : float;
  a : float array;
      (** the paper's query x_d <= a0 + sum a_i x_i; length d-1 *)
}

type shed_reason =
  | Queue_full  (** the admission queue was at capacity on arrival *)
  | Deadline_exceeded  (** queued longer than the request's deadline *)
  | Draining  (** the server is shutting down and accepts no new work *)

type error_code = Unknown_structure | Bad_dimension | Bad_request

type server_stats = {
  dispatchers : int;  (** effective dispatcher-shard count *)
  readers : int;  (** effective reactor-thread count *)
  domains : int;  (** domain fan-out for count-only batches *)
  accepted : int;
  served : int;
  shed_full : int;
  shed_deadline : int;
  shed_drain : int;
  errors : int;
  batches : int;  (** dispatcher batches executed *)
  coalesced : int;
      (** requests that rode in a multi-request coalesced batch *)
  max_batch : int;  (** largest batch any dispatcher executed *)
}

type msg =
  | Query of request
  | Result of {
      id : int;
      count : int;  (** points satisfying the query *)
      reads : int;  (** model I/O reads charged to this query *)
      writes : int;
      hits : int;
      elapsed_ns : int;  (** server-side sojourn: enqueue to response *)
      ids : int array;
          (** answer ids, empty unless [want_ids] and the structure
              reports ids *)
    }
  | Shed of { id : int; reason : shed_reason }
  | Error of { id : int; code : error_code; message : string }
  | Stats_query of { id : int }
      (** introspection: answered inline by the reader, never queued —
          loadgen uses it to stamp server-side counters into
          BENCH_SERVE.json meta *)
  | Stats of { id : int; stats : server_stats }

val codec : msg Emio.Codec.t
(** Raises {!Emio.Codec.Decode} on malformed input, like every codec. *)

val shed_reason_name : shed_reason -> string
val error_code_name : error_code -> string
val pp : Format.formatter -> msg -> unit
