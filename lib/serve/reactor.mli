(** An event-loop reader/writer thread multiplexing non-blocking
    connections over [Unix.select] — the replacement for
    thread-per-connection readers.  The server runs a small fixed pool
    and assigns accepted connections round-robin.

    Each reactor owns its connections' read side (accumulators are
    lock-free because only this thread touches them) and services
    their write side on writability, resuming the partial writes that
    dispatcher sends left behind.  [on_msg] runs on the reactor
    thread: it must not block (the server's handler validates and
    pushes to an {!Admission} ring, both non-blocking).

    Idle connections are culled after [idle_timeout_s] of read
    silence.  {!stop} enters drain: no more reads, outboxes keep
    flushing until empty or the grace expires, then every connection
    is closed and the thread exits. *)

type t

val start :
  max_frame:int ->
  idle_timeout_s:float ->
  drain_grace_s:float ->
  on_msg:(Conn.t -> Protocol.msg -> unit) ->
  on_broken:(Conn.t -> Frame.read_error -> unit) ->
  log:(string -> unit) ->
  unit ->
  t
(** Spawn the loop.  [on_broken] handles unrecoverable stream errors
    (oversized length, codec garbage) — typically answer with an
    [Error] frame and {!Conn.request_close}. *)

val add : t -> Conn.t -> unit
(** Register an accepted connection (fd already non-blocking) and
    wire its wakeup to this reactor. *)

val conn_count : t -> int

val stop : t -> unit
(** Begin drain (idempotent): stop reading, flush remaining responses
    bounded by the grace, then close everything. *)

val join : t -> unit
(** Wait for the loop to exit and release the self-pipe. *)
