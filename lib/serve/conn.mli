(** One accepted client connection in the multiplexed-reader model: a
    non-blocking socket with a read accumulator (owned by the
    connection's reactor thread) and a bounded, locked write outbox
    that any thread may append responses to.

    Writes: {!send} encodes the frame, queues it, and flushes as much
    as the socket accepts right there on the calling thread — a
    dispatcher answering a query usually completes the write inline.
    The residue of a partial write (full socket buffer) stays queued;
    the reactor watches the fd for writability and {!flush}es the
    rest.  A peer that stops reading is dropped once its outbox
    exceeds the bound rather than buffering without limit.

    Reads: the reactor calls {!refill} when the fd is readable and
    drains complete frames with {!next_frame}; a frame may straddle
    any number of reads.

    A failed send or an explicit {!close} marks the connection dead;
    later sends become silent no-ops (the peer is gone — there is
    nobody to tell). *)

type t

val create : ?max_outbox:int -> Unix.file_descr -> t
(** The fd should already be non-blocking (the acceptor's job).
    [max_outbox] bounds queued unwritten response bytes (default
    8 MiB). *)

val fd : t -> Unix.file_descr
val peer : t -> string
val alive : t -> bool

val send : t -> Protocol.msg -> bool
(** Enqueue and opportunistically flush; never blocks.  [false] once
    the peer is gone (including an outbox overflow, which drops the
    connection). *)

val flush : t -> unit
(** Resume a partial write.  Reactor-called on writability; safe from
    any thread. *)

val wants_write : t -> bool
(** Unwritten outbox bytes remain — watch the fd for writability. *)

val on_wake : t -> (unit -> unit) -> unit
(** Set by the reactor at registration: called after a send leaves
    residue, so the event loop re-selects with this fd in its write
    set. *)

val request_close : t -> unit
(** Stop reading from the peer and hang up once the outbox flushes —
    the exit path for protocol errors that must still deliver their
    [Error] response. *)

val closing : t -> bool

val close : t -> unit
(** Mark dead, drop queued output, and [shutdown] both directions.
    Idempotent; does not close the fd. *)

val close_fd : t -> unit
(** Release the descriptor.  Exactly-once, by the reactor's cull. *)

val touch : t -> float -> unit
(** Record read activity (for the idle scan). *)

val last_rx : t -> float

(** {2 Read side — only the owning reactor thread} *)

val refill : t -> [ `Data | `Blocked | `Eof ]
(** One [read] into the accumulator, growing it as needed.  [`Eof]
    covers both orderly EOF and connection resets. *)

val next_frame :
  t ->
  max_frame:int ->
  [ `Msg of Protocol.msg | `More | `Broken of Frame.read_error ]
(** Extract the next complete frame from the accumulator, compacting
    consumed bytes.  [`More]: wait for another {!refill}. *)

val has_partial : t -> bool
(** Buffered bytes short of a complete frame — EOF now means a
    truncated stream, not a clean close. *)
