(** One accepted client connection: the socket plus a write lock, so
    the dispatcher (results, deadline sheds) and the connection's own
    reader thread (admission sheds, protocol errors) can interleave
    responses without tearing frames.  A failed send marks the
    connection dead; later sends become silent no-ops (the peer is
    gone — there is nobody to tell). *)

type t

val create : Unix.file_descr -> t
val fd : t -> Unix.file_descr
val peer : t -> string

val send : t -> Protocol.msg -> bool
(** Whole-frame write under the lock; [false] once the peer is gone. *)

val alive : t -> bool

val close : t -> unit
(** Mark dead and [shutdown] both directions — unblocks a reader
    parked in [Frame.read] immediately.  Idempotent; does not close
    the fd. *)

val close_fd : t -> unit
(** Release the descriptor.  Exactly-once, by whoever owns the reader
    thread's exit path. *)
