open Geom

type 'a t = {
  directory : (int * int) Emio.Run.t; (* cell -> (start, len) *)
  buckets : (Point2.t array * 'a) Emio.Run.t; (* concatenated cell lists *)
  clip : float * float * float * float;
  side : int;
  dir_block : int; (* directory slots per block *)
}

let grid_side t = t.side

let space_blocks t =
  Emio.Run.block_count t.directory + Emio.Run.block_count t.buckets

let cell_of t x y =
  let xmin, ymin, xmax, ymax = t.clip in
  if x < xmin || x > xmax || y < ymin || y > ymax then None
  else begin
    let fx = (x -. xmin) /. (xmax -. xmin) *. float_of_int t.side in
    let fy = (y -. ymin) /. (ymax -. ymin) *. float_of_int t.side in
    let cx = min (t.side - 1) (max 0 (int_of_float fx)) in
    let cy = min (t.side - 1) (max 0 (int_of_float fy)) in
    Some ((cy * t.side) + cx)
  end

let create ~stats ~block_size ?(cache_blocks = 0) ~clip ~items () =
  let xmin, ymin, xmax, ymax = clip in
  if xmin >= xmax || ymin >= ymax then invalid_arg "Grid.create: empty clip";
  let n = Array.length items in
  let side = max 1 (int_of_float (ceil (sqrt (float_of_int (max 1 n))))) in
  let cells = Array.make (side * side) [] in
  let clampi v = min (side - 1) (max 0 v) in
  let cell_x x =
    clampi (int_of_float ((x -. xmin) /. (xmax -. xmin) *. float_of_int side))
  in
  let cell_y y =
    clampi (int_of_float ((y -. ymin) /. (ymax -. ymin) *. float_of_int side))
  in
  (* exact rasterization: a cell stores a triangle only if they really
     overlap (bbox pass + edge separation), so sliver triangles do not
     inflate the buckets *)
  let cell_w = (xmax -. xmin) /. float_of_int side
  and cell_h = (ymax -. ymin) /. float_of_int side in
  let overlaps corners cx cy =
    let rx0 = xmin +. (float_of_int cx *. cell_w)
    and ry0 = ymin +. (float_of_int cy *. cell_h) in
    let rx1 = rx0 +. cell_w and ry1 = ry0 +. cell_h in
    (* separating-axis test on the three triangle edges: the rect and
       triangle overlap iff no edge has all four rect corners strictly
       on its outer side (axis separations are excluded by the caller's
       bbox loop) *)
    let separated = ref false in
    for e = 0 to 2 do
      let p = corners.(e) and q = corners.((e + 1) mod 3) in
      let o = corners.((e + 2) mod 3) in
      let ex = Point2.x q -. Point2.x p and ey = Point2.y q -. Point2.y p in
      let side_of x y =
        (ex *. (y -. Point2.y p)) -. (ey *. (x -. Point2.x p))
      in
      let so = side_of (Point2.x o) (Point2.y o) in
      let sign = if so >= 0. then 1. else -1. in
      if
        sign *. side_of rx0 ry0 < 0.
        && sign *. side_of rx1 ry0 < 0.
        && sign *. side_of rx0 ry1 < 0.
        && sign *. side_of rx1 ry1 < 0.
      then separated := true
    done;
    not !separated
  in
  Array.iteri
    (fun i (corners, _) ->
      let xs = Array.map Point2.x corners and ys = Array.map Point2.y corners in
      let bx0 = Array.fold_left min infinity xs
      and bx1 = Array.fold_left max neg_infinity xs
      and by0 = Array.fold_left min infinity ys
      and by1 = Array.fold_left max neg_infinity ys in
      for cy = cell_y by0 to cell_y by1 do
        for cx = cell_x bx0 to cell_x bx1 do
          if overlaps corners cx cy then begin
            let c = (cy * side) + cx in
            cells.(c) <- i :: cells.(c)
          end
        done
      done)
    items;
  let store_dir = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let store_buckets = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let flat = ref [] in
  let dir = Array.make (side * side) (0, 0) in
  let pos = ref 0 in
  Array.iteri
    (fun c ids ->
      let ids = List.rev ids in
      dir.(c) <- (!pos, List.length ids);
      List.iter
        (fun i ->
          flat := items.(i) :: !flat;
          incr pos)
        ids)
    cells;
  {
    directory = Emio.Run.of_array store_dir dir;
    buckets = Emio.Run.of_array store_buckets (Array.of_list (List.rev !flat));
    clip;
    side;
    dir_block = block_size;
  }

(* -- persistence -------------------------------------------------- *)

type 'a portable = {
  p_directory : (int * int) Emio.Run.stored;
  p_buckets : (Point2.t array * 'a) Emio.Run.stored;
  p_clip : float * float * float * float;
  p_side : int;
  p_dir_block : int;
}

let to_portable t =
  {
    p_directory = Emio.Run.to_stored t.directory;
    p_buckets = Emio.Run.to_stored t.buckets;
    p_clip = t.clip;
    p_side = t.side;
    p_dir_block = t.dir_block;
  }

let of_portable ~stats p =
  {
    directory = Emio.Run.of_stored ~stats p.p_directory;
    buckets = Emio.Run.of_stored ~stats p.p_buckets;
    clip = p.p_clip;
    side = p.p_side;
    dir_block = p.p_dir_block;
  }

let portable_codec payload =
  let open Emio.Codec in
  let bucket = pair (array Point2.codec) payload in
  map
    ~decode:(fun ((d, b), clip, (side, dir_block)) ->
      { p_directory = d; p_buckets = b; p_clip = clip; p_side = side;
        p_dir_block = dir_block })
    ~encode:(fun p ->
      ((p.p_directory, p.p_buckets), p.p_clip, (p.p_side, p.p_dir_block)))
    (triple
       (pair
          (Emio.Run.stored_codec (pair int int))
          (Emio.Run.stored_codec bucket))
       (quad float float float float)
       (pair int int))

let locate t x y =
  match cell_of t x y with
  | None -> None
  | Some c ->
      let start, len =
        (Emio.Run.read_block t.directory (c / t.dir_block)).(c mod t.dir_block)
      in
      if len = 0 then None
      else begin
        let p = Point2.make x y in
        let found = ref None in
        (* explicit loop over the whole bucket range: every block of
           the range is read whether or not a triangle already
           matched, so the charges stay identical to the old
           materializing scan — but matching stops at the first hit
           and no closure is invoked per item *)
        let b = Emio.Store.block_size (Emio.Run.store t.buckets) in
        let first = start / b and last = (start + len - 1) / b in
        for blk = first to last do
          let block = Emio.Run.read_block t.buckets blk in
          (match !found with
          | Some _ -> ()
          | None ->
              let block_lo = blk * b in
              let lo = max 0 (start - block_lo) in
              let hi = min (Array.length block) (start + len - block_lo) in
              let i = ref lo in
              let scanning = ref true in
              while !scanning && !i < hi do
                let corners, payload = block.(!i) in
                if Point2.in_triangle corners.(0) corners.(1) corners.(2) p
                then begin
                  found := Some payload;
                  scanning := false
                end;
                incr i
              done)
        done;
        !found
      end
