(** External-memory planar point location over a set of triangles,
    bucketed on a uniform grid.

    This stands in for the external point-location structures of
    [Goodrich et al. / Arge et al.] that §4.1 cites (DESIGN.md
    substitution 4): locating a point costs one directory I/O plus
    ⌈|cell|/B⌉ I/Os for the bucket's triangles — O(1) expected I/Os on
    the uniform workloads the benchmarks use (the paper's §4 bounds are
    expected-case as well).  Space is O(n + sum of bucket overlaps)
    blocks.

    Triangles may overlap the clip boundary; queries outside the clip
    box return [None]. *)

type 'a t

val create :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  clip:float * float * float * float ->
  items:(Geom.Point2.t array * 'a) array ->
  unit ->
  'a t
(** [items]: each entry is a triangle (3 corners, any orientation) with
    its payload. *)

val locate : 'a t -> float -> float -> 'a option
(** Payload of some triangle containing the query point (closed
    containment; if triangles overlap on boundaries, any match is
    returned). *)

val space_blocks : 'a t -> int

val grid_side : 'a t -> int
(** Number of cells per axis. *)

(** {2 Persistence} *)

type 'a portable

val to_portable : 'a t -> 'a portable
val of_portable : stats:Emio.Io_stats.t -> 'a portable -> 'a t
val portable_codec : 'a Emio.Codec.t -> 'a portable Emio.Codec.t
