open Geom

(* A stored segment: precomputed slope form for O(1) height-at-x. *)
type 'a seg = {
  x0 : float;
  x1 : float;
  slope : float;
  icept : float;
  payload : 'a;
}

let height s x = (s.slope *. x) +. s.icept

(* One tree node: canonical segments span the node's x-interval and are
   therefore totally ordered vertically; they are stored bottom-to-top
   in [run], so a per-node search binary-searches the block heads. *)
type 'a node = {
  lo : float;
  hi : float;
  run : 'a seg Emio.Run.t;
  mid : float;
  left : 'a node option;
  right : 'a node option;
}

type 'a t = {
  root : 'a node option;
  block_size : int;
  n_segments : int;
}

let segment_count t = t.n_segments

let rec node_space n =
  Emio.Run.block_count n.run
  + (match n.left with Some l -> node_space l | None -> 0)
  + (match n.right with Some r -> node_space r | None -> 0)

let space_blocks t = match t.root with None -> 0 | Some r -> node_space r

let slope_limit = 1e7

let create ~stats ~block_size ?(cache_blocks = 0) ~segments () =
  let store = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let segs =
    Array.map
      (fun (a, b, payload) ->
        let a, b = if Point2.x a <= Point2.x b then (a, b) else (b, a) in
        let dx = Point2.x b -. Point2.x a in
        if Float.abs dx *. slope_limit <= Float.abs (Point2.y b -. Point2.y a)
        then invalid_arg "Seg_tree.create: near-vertical segment";
        let slope = (Point2.y b -. Point2.y a) /. dx in
        {
          x0 = Point2.x a;
          x1 = Point2.x b;
          slope;
          icept = Point2.y a -. (slope *. Point2.x a);
          payload;
        })
      segments
  in
  (* elementary intervals from the sorted distinct endpoint abscissas *)
  let xs =
    Array.concat [ Array.map (fun s -> s.x0) segs; Array.map (fun s -> s.x1) segs ]
  in
  Array.sort Float.compare xs;
  let coords =
    let out = ref [] in
    Array.iter
      (fun x -> match !out with y :: _ when y = x -> () | _ -> out := x :: !out)
      xs;
    Array.of_list (List.rev !out)
  in
  let m = Array.length coords in
  if m < 2 then { root = None; block_size; n_segments = Array.length segs }
  else begin
    (* recursive build over coordinate index range [i, j] (interval
       [coords.(i), coords.(j)]), with the candidate segments that span
       at least part of it *)
    let rec build i j (candidates : 'a seg list) =
      if i >= j then None
      else begin
        let lo = coords.(i) and hi = coords.(j) in
        (* canonical here: spans [lo, hi]; push the rest down *)
        let here, rest =
          List.partition (fun s -> s.x0 <= lo && s.x1 >= hi) candidates
        in
        let mid_idx = (i + j) / 2 in
        let xmid = (lo +. hi) /. 2. in
        let here = Array.of_list here in
        Array.sort (fun a b -> Float.compare (height a xmid) (height b xmid)) here;
        let left, right =
          if i + 1 >= j then (None, None)
          else begin
            let lcoord = coords.(mid_idx) in
            let go_left = List.filter (fun s -> s.x0 < lcoord) rest in
            let go_right = List.filter (fun s -> s.x1 > lcoord) rest in
            (build i mid_idx go_left, build mid_idx j go_right)
          end
        in
        let run = Emio.Run.of_array store here in
        Some { lo; hi; run; mid = xmid; left; right }
      end
    in
    let root = build 0 (m - 1) (Array.to_list segs) in
    { root; block_size; n_segments = Array.length segs }
  end

(* Single-field all-float record: mutating it updates the unboxed
   float in place, where a [float ref] would box a float per
   assignment along the root-to-leaf search. *)
type fbox = { mutable fv : float }

(* Scan one candidate block, improving (bh, bp) with the lowest
   segment at or above y - eps.  Strict [<] keeps the earlier
   candidate on exact ties — the same tie-break the old per-node
   fold followed by the strict cross-node comparison produced. *)
let scan_block node x y (bh : fbox) bp b nb =
  if b >= 0 && b < nb then begin
    let block = Emio.Run.read_block node.run b in
    for i = 0 to Array.length block - 1 do
      let s = block.(i) in
      let h = height s x in
      if h >= y -. Eps.eps && h < bh.fv then begin
        bh.fv <- h;
        bp := Some s.payload
      end
    done
  end

(* Lowest canonical segment of [node] at or above y at abscissa x,
   merged into the running best (bh, bp).  Canonical segments span the
   whole node interval and never properly cross, so their vertical
   order is the same at every abscissa of the interval; binary search
   over the block heads costs O(log) block reads per node. *)
let node_candidate node x y (bh : fbox) bp =
  let nb = Emio.Run.block_count node.run in
  if nb > 0 then begin
    let lo = ref 0 and hi = ref nb in
    (* find first block whose head is >= y; the answer segment is in
       that block or the one before *)
    while !lo < !hi do
      let midb = (!lo + !hi) / 2 in
      let hh = height (Emio.Run.read_block node.run midb).(0) x in
      if hh >= y -. Eps.eps then hi := midb else lo := midb + 1
    done;
    scan_block node x y bh bp (!lo - 1) nb;
    scan_block node x y bh bp !lo nb
  end

(* -- persistence -------------------------------------------------- *)

(* The portable tree: every node's run becomes (block ids, length)
   against the one store all runs share, whose blocks ride alongside. *)
type node_p = {
  np_lo : float;
  np_hi : float;
  np_run : int array * int;
  np_mid : float;
  np_left : node_p option;
  np_right : node_p option;
}

type 'a portable = {
  sp_blocks : 'a seg array array;
  sp_cache : int;
  sp_root : node_p option;
  sp_block_size : int;
  sp_n_segments : int;
}

let to_portable t =
  let rec node_p n =
    {
      np_lo = n.lo;
      np_hi = n.hi;
      np_run = Emio.Run.to_portable n.run;
      np_mid = n.mid;
      np_left = Option.map node_p n.left;
      np_right = Option.map node_p n.right;
    }
  in
  let blocks, cache =
    match t.root with
    | None -> ([||], 0)
    | Some n ->
        let store = Emio.Run.store n.run in
        (Emio.Store.to_blocks store, Emio.Store.cache_blocks store)
  in
  {
    sp_blocks = blocks;
    sp_cache = cache;
    sp_root = Option.map node_p t.root;
    sp_block_size = t.block_size;
    sp_n_segments = t.n_segments;
  }

let of_portable ~stats p =
  let store =
    Emio.Store.of_blocks ~stats ~block_size:p.sp_block_size
      ~cache_blocks:p.sp_cache p.sp_blocks
  in
  let rec node np =
    {
      lo = np.np_lo;
      hi = np.np_hi;
      run = Emio.Run.of_portable store np.np_run;
      mid = np.np_mid;
      left = Option.map node np.np_left;
      right = Option.map node np.np_right;
    }
  in
  {
    root = Option.map node p.sp_root;
    block_size = p.sp_block_size;
    n_segments = p.sp_n_segments;
  }

let portable_codec payload =
  let open Emio.Codec in
  let seg_codec =
    map
      ~decode:(fun ((x0, x1, slope, icept), payload) ->
        { x0; x1; slope; icept; payload })
      ~encode:(fun s -> ((s.x0, s.x1, s.slope, s.icept), s.payload))
      (pair (quad float float float float) payload)
  in
  let node_codec =
    fix (fun self ->
        map
          ~decode:(fun ((np_lo, np_hi, np_mid), np_run, (np_left, np_right)) ->
            { np_lo; np_hi; np_run; np_mid; np_left; np_right })
          ~encode:(fun n ->
            ((n.np_lo, n.np_hi, n.np_mid), n.np_run, (n.np_left, n.np_right)))
          (triple
             (triple float float float)
             Emio.Run.portable_codec
             (pair (option self) (option self))))
  in
  map
    ~decode:(fun ((blocks, cache), root, (bs, n)) ->
      { sp_blocks = blocks; sp_cache = cache; sp_root = root;
        sp_block_size = bs; sp_n_segments = n })
    ~encode:(fun p ->
      ((p.sp_blocks, p.sp_cache), p.sp_root, (p.sp_block_size, p.sp_n_segments)))
    (triple
       (pair (array (array seg_codec)) int)
       (option node_codec)
       (pair int int))

let locate_above t x y =
  let bh = { fv = infinity } in
  let bp = ref None in
  let rec go = function
    | None -> ()
    | Some n ->
        if x < n.lo -. Eps.eps || x > n.hi +. Eps.eps then ()
        else begin
          node_candidate n x y bh bp;
          let mid_coord =
            match (n.left, n.right) with
            | Some l, _ -> l.hi
            | None, Some r -> r.lo
            | None, None -> n.mid
          in
          if n.left = None && n.right = None then ()
          else if x < mid_coord then go n.left
          else go n.right
        end
  in
  go t.root;
  !bp
