(** Worst-case planar point location over non-crossing segments: a
    segment tree over x with vertically-sorted canonical lists.

    Complements {!Grid}: the grid locator is O(1) expected I/Os on
    benign query distributions but has no worst-case guarantee; this
    structure answers any query in O(log n) I/Os — two per tree level:
    one fence block plus one data block per node on the root-to-leaf
    path — at the price of O(n log n) blocks of space.  The A6
    ablation bench compares the two.

    Segments may share endpoints but must not cross properly.  Each
    segment carries the payload of the region directly {e below} it;
    [locate_above] returns the payload of the lowest segment at or
    above the query point — for a triangulated subdivision, the
    triangle containing the query. *)

type 'a t

val create :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  segments:(Geom.Point2.t * Geom.Point2.t * 'a) array ->
  unit ->
  'a t
(** Near-vertical segments are rejected with [Invalid_argument] (they
    have no "above"); filter them out first. *)

val locate_above : 'a t -> float -> float -> 'a option
(** Payload of the segment with the smallest height >= y - eps at
    abscissa [x], among segments whose x-span contains [x]. *)

val space_blocks : 'a t -> int
val segment_count : 'a t -> int

(** {2 Persistence} *)

type 'a portable

val to_portable : 'a t -> 'a portable
val of_portable : stats:Emio.Io_stats.t -> 'a portable -> 'a t
val portable_codec : 'a Emio.Codec.t -> 'a portable Emio.Codec.t
