(** Points in the plane. *)

type t = { x : float; y : float }
(** Concrete (and all-float, so arrays of points stay unboxed-flat per
    element) on purpose: the baselines' per-point hot loops read
    coordinates with direct field access, which never boxes — the
    {!x}/{!y} accessor calls do box their result under [-opaque]
    (dune's default dev profile disables cross-module inlining). *)

val make : float -> float -> t
val x : t -> float
val y : t -> float

val equal : t -> t -> bool
(** Componentwise equality within {!Eps.eps}. *)

val compare : t -> t -> int
(** Lexicographic (x, then y): the sweep order used everywhere. *)

val dist2 : t -> t -> float
(** Squared Euclidean distance. *)

val dist : t -> t -> float

val orient : t -> t -> t -> int
(** [orient p q r] is the sign (within tolerance) of the signed area of
    the triangle (p, q, r): positive iff [r] lies to the left of the
    directed line p → q. *)

val in_triangle : t -> t -> t -> t -> bool
(** [in_triangle a b c p]: closed containment, accepting either vertex
    orientation. *)

val pp : Format.formatter -> t -> unit

val codec : t Emio.Codec.t
(** Two IEEE-754 floats — the on-disk form of a point. *)
