(** Points in the plane. *)

type t = { x : float; y : float }

let make x y = { x; y }
let x p = p.x
let y p = p.y

let equal p q = Eps.equal p.x q.x && Eps.equal p.y q.y

(* Lexicographic order (x, then y): the sweep order used everywhere. *)
let compare p q =
  let c = Float.compare p.x q.x in
  if c <> 0 then c else Float.compare p.y q.y

let dist2 p q =
  let dx = p.x -. q.x and dy = p.y -. q.y in
  (dx *. dx) +. (dy *. dy)

let dist p q = sqrt (dist2 p q)

(* Sign of the signed area of triangle (p, q, r): > 0 iff r is left of
   the directed line p -> q. *)
let orient p q r =
  (* same dead-zone policy as [Eps.sign], computed locally: the
     cross-module call would box its float argument on every
     orientation test, and this predicate dominates grid point
     location *)
  let d = ((q.x -. p.x) *. (r.y -. p.y)) -. ((q.y -. p.y) *. (r.x -. p.x)) in
  if d > Eps.eps then 1 else if d < -.Eps.eps then -1 else 0

(* Closed triangle containment, orientation-agnostic (the triangle may
   be given clockwise or counterclockwise). *)
let in_triangle a b c p =
  let o1 = orient a b p and o2 = orient b c p and o3 = orient c a p in
  (o1 >= 0 && o2 >= 0 && o3 >= 0) || (o1 <= 0 && o2 <= 0 && o3 <= 0)

let pp ppf p = Format.fprintf ppf "(%g, %g)" p.x p.y

let codec =
  Emio.Codec.map
    ~decode:(fun (x, y) -> { x; y })
    ~encode:(fun p -> (p.x, p.y))
    Emio.Codec.(pair float float)
