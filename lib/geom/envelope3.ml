type triangle = {
  plane : int;
  corners : Point2.t array;
  corner_z : float array;
  conflicts : int array;
}

type t = {
  triangles : triangle array;
  sample : int array;
  clip : float * float * float * float;
}

(* A face-polygon corner, before conflict resolution. *)
type corner_kind =
  | Vertex of int  (* index into the lower-facet array *)
  | Wall of int * float  (* wall id 0..3, parameter along the wall *)
  | Orphan  (* numerically unresolved: exact fallback scan *)

let match_tol = 1e-6

let wall_of ~clip x y =
  let xmin, ymin, xmax, ymax = clip in
  let near a b = Float.abs (a -. b) <= match_tol *. (1. +. Float.abs b) in
  if near x xmin then Some (0, y)
  else if near x xmax then Some (1, y)
  else if near y ymin then Some (2, x)
  else if near y ymax then Some (3, x)
  else None

let restrict_to_wall plane wall ~clip =
  let xmin, ymin, xmax, ymax = clip in
  match wall with
  | 0 -> Plane3.restrict_x plane xmin
  | 1 -> Plane3.restrict_x plane xmax
  | 2 -> Plane3.restrict_y plane ymin
  | 3 -> Plane3.restrict_y plane ymax
  | _ -> invalid_arg "Envelope3: bad wall id"

let build ~planes ~order ~sample_size ~clip =
  let n = Array.length planes in
  let xmin, ymin, xmax, ymax = clip in
  if xmin >= xmax || ymin >= ymax then
    invalid_arg "Envelope3.build: empty clip box";
  let dual = Array.map Plane3.dual_point planes in
  let hull = Hull3.build ~points:dual ~order ~sample_size in
  let lower = Hull3.lower_facets hull in
  let in_sample = Array.make n false in
  let sample = Array.sub order 0 sample_size in
  Array.iter (fun i -> in_sample.(i) <- true) sample;
  (* plan-view position of each envelope vertex (= lower hull facet) *)
  let facet_pos =
    Array.map
      (fun (f : Hull3.facet) ->
        let n = f.normal in
        Point2.make (Point3.x n /. Point3.z n) (Point3.y n /. Point3.z n))
      lower
  in
  (* group the facets around each hull vertex = envelope face *)
  let faces : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun fi (f : Hull3.facet) ->
      List.iter
        (fun v ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt faces v) in
          Hashtbl.replace faces v (fi :: prev))
        [ f.a; f.b; f.c ])
    lower;
  (* --- build the clipped face polygon of each plane ---------------- *)
  let box = Polygon2.of_box ~xmin ~ymin ~xmax ~ymax in
  let face_polys = ref [] in
  Hashtbl.iter
    (fun h facet_idxs ->
      let nbrs = Hashtbl.create 8 in
      List.iter
        (fun fi ->
          let f = lower.(fi) in
          List.iter
            (fun v -> if v <> h then Hashtbl.replace nbrs v ())
            [ f.a; f.b; f.c ])
        facet_idxs;
      let hp = planes.(h) in
      let poly =
        Hashtbl.fold
          (fun j () poly ->
            let jp = planes.(j) in
            (* keep the region where h <= h_j *)
            Polygon2.clip_halfplane poly
              ~fa:(Plane3.a hp -. Plane3.a jp)
              ~fb:(Plane3.b hp -. Plane3.b jp)
              ~fc:(Plane3.c hp -. Plane3.c jp))
          nbrs box
      in
      if not (Polygon2.is_empty poly) then
        face_polys := (h, facet_idxs, poly) :: !face_polys)
    faces;
  (* --- classify polygon corners ------------------------------------ *)
  let classify h facet_idxs (p : Point2.t) =
    ignore h;
    let matched =
      List.find_opt
        (fun fi ->
          let fp = facet_pos.(fi) in
          Float.abs (Point2.x fp -. Point2.x p)
          <= match_tol *. (1. +. Float.abs (Point2.x p))
          && Float.abs (Point2.y fp -. Point2.y p)
             <= match_tol *. (1. +. Float.abs (Point2.y p)))
        facet_idxs
    in
    match matched with
    | Some fi -> Vertex fi
    | None -> (
        match wall_of ~clip (Point2.x p) (Point2.y p) with
        | Some (w, u) -> Wall (w, u)
        | None -> Orphan)
  in
  (* --- conflicts for wall corners via 2-D wall envelopes ----------- *)
  (* collect wall corners first *)
  let wall_corners : (int * float * (int * int)) list ref = ref [] in
  (* (wall, param, (face index in face_polys list, corner index)) *)
  let face_arr = Array.of_list !face_polys in
  let face_corner_kinds =
    Array.mapi
      (fun face_i (h, facet_idxs, poly) ->
        Array.mapi
          (fun ci p ->
            let k = classify h facet_idxs p in
            (match k with
            | Wall (w, u) -> wall_corners := (w, u, (face_i, ci)) :: !wall_corners
            | _ -> ());
            k)
          (Polygon2.vertices poly))
      face_arr
  in
  (* conflict lists per (face, corner) for wall corners *)
  let wall_conflicts : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let sample_ids = Array.to_list (Array.sub order 0 sample_size) in
  for w = 0 to 3 do
    let corners =
      List.filter (fun (w', _, _) -> w' = w) !wall_corners
      |> List.map (fun (_, u, key) -> (u, key))
      |> List.sort compare
    in
    if corners <> [] then begin
      let env =
        Envelope2.build Envelope2.Lower
          (Array.of_list
             (List.map (fun i -> restrict_to_wall planes.(i) w ~clip) sample_ids))
      in
      let corner_arr = Array.of_list corners in
      let params = Array.map fst corner_arr in
      for g = 0 to n - 1 do
        if not in_sample.(g) then begin
          match Envelope2.outer_interval env (restrict_to_wall planes.(g) w ~clip) with
          | None -> ()
          | Some (lo, hi) ->
              (* stab corners with lo < u < hi *)
              let first =
                let l = ref 0 and r = ref (Array.length params) in
                while !l < !r do
                  let m = (!l + !r) / 2 in
                  if params.(m) <= lo then l := m + 1 else r := m
                done;
                !l
              in
              let i = ref first in
              while !i < Array.length params && params.(!i) < hi do
                let _, key = corner_arr.(!i) in
                (match Hashtbl.find_opt wall_conflicts key with
                | Some l -> l := g :: !l
                | None -> Hashtbl.add wall_conflicts key (ref [ g ]));
                incr i
              done
        end
      done
    end
  done;
  (* --- assemble triangles ------------------------------------------ *)
  let orphan_conflicts h (p : Point2.t) =
    (* exact fallback: scan all non-sample planes *)
    let hz = Plane3.eval planes.(h) (Point2.x p) (Point2.y p) in
    let acc = ref [] in
    for g = 0 to n - 1 do
      if
        (not in_sample.(g))
        && Plane3.eval planes.(g) (Point2.x p) (Point2.y p) < hz -. Eps.eps
      then acc := g :: !acc
    done;
    !acc
  in
  let triangles = ref [] in
  Array.iteri
    (fun face_i (h, _, poly) ->
      let verts = Polygon2.vertices poly in
      let kinds = face_corner_kinds.(face_i) in
      let corner_conflicts ci =
        match kinds.(ci) with
        | Vertex fi -> Array.to_list lower.(fi).Hull3.conflicts
        | Wall _ -> (
            match Hashtbl.find_opt wall_conflicts (face_i, ci) with
            | Some l -> !l
            | None -> [])
        | Orphan -> orphan_conflicts h verts.(ci)
      in
      let nv = Array.length verts in
      let lists = Array.init nv corner_conflicts in
      (* fan from the corner with the smallest conflict list: it is the
         one replicated into every triangle of the face, so this keeps
         the stored sum of |K(Δ)| near the Lemma 4.1 optimum.  Lengths
         are precomputed once — comparing with List.length inside the
         loop re-walked both lists on every iteration, quadratic on
         high-degree faces. *)
      let lens = Array.map List.length lists in
      let fan0 = ref 0 in
      for ci = 1 to nv - 1 do
        if lens.(ci) < lens.(!fan0) then fan0 := ci
      done;
      let rot i = (i + !fan0) mod nv in
      for i = 1 to nv - 2 do
        let idxs = [| rot 0; rot i; rot (i + 1) |] in
        let corners = Array.map (fun ci -> verts.(ci)) idxs in
        let seen = Hashtbl.create 16 in
        Array.iter
          (fun ci ->
            List.iter (fun g -> Hashtbl.replace seen g ()) lists.(ci))
          idxs;
        let conflicts =
          Array.of_list (Hashtbl.fold (fun g () acc -> g :: acc) seen [])
        in
        Array.sort compare conflicts;
        triangles :=
          {
            plane = h;
            corners;
            corner_z =
              Array.map
                (fun p -> Plane3.eval planes.(h) (Point2.x p) (Point2.y p))
                corners;
            conflicts;
          }
          :: !triangles
      done)
    face_arr;
  { triangles = Array.of_list !triangles; sample; clip }

let contains_tri (tri : triangle) x y =
  let p = Point2.make x y in
  let c = tri.corners in
  (* accept boundary within tolerance: orientation may be either sign
     order depending on fan direction, so test both *)
  let o1 = Point2.orient c.(0) c.(1) p
  and o2 = Point2.orient c.(1) c.(2) p
  and o3 = Point2.orient c.(2) c.(0) p in
  (o1 >= 0 && o2 >= 0 && o3 >= 0) || (o1 <= 0 && o2 <= 0 && o3 <= 0)

let locate_brute t x y =
  let found = ref None in
  Array.iteri
    (fun i tri ->
      if !found = None && contains_tri tri x y then found := Some i)
    t.triangles;
  !found

let envelope_height t tri x y =
  (* reconstruct z = a x + b y + c of the triangle's plane from its
     three corners and evaluate it at (x, y) *)
  let tr = t.triangles.(tri) in
  let cx i = Point2.x tr.corners.(i) and cy i = Point2.y tr.corners.(i) in
  let z i = tr.corner_z.(i) in
  let d1x = cx 1 -. cx 0 and d1y = cy 1 -. cy 0 and d1z = z 1 -. z 0 in
  let d2x = cx 2 -. cx 0 and d2y = cy 2 -. cy 0 and d2z = z 2 -. z 0 in
  let det = (d1x *. d2y) -. (d1y *. d2x) in
  if Float.abs det < 1e-18 then z 0
  else begin
    let a = ((d1z *. d2y) -. (d1y *. d2z)) /. det in
    let b = ((d1x *. d2z) -. (d1z *. d2x)) /. det in
    z 0 +. (a *. (x -. cx 0)) +. (b *. (y -. cy 0))
  end

let total_conflict_size t =
  Array.fold_left
    (fun acc tri -> acc + Array.length tri.conflicts)
    0 t.triangles
