(** Points in R^3. *)

type t = { x : float; y : float; z : float }

let make x y z = { x; y; z }
let x p = p.x
let y p = p.y
let z p = p.z

let equal p q = Eps.equal p.x q.x && Eps.equal p.y q.y && Eps.equal p.z q.z

let sub p q = { x = p.x -. q.x; y = p.y -. q.y; z = p.z -. q.z }

let cross a b =
  {
    x = (a.y *. b.z) -. (a.z *. b.y);
    y = (a.z *. b.x) -. (a.x *. b.z);
    z = (a.x *. b.y) -. (a.y *. b.x);
  }

let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

(* Signed volume of the tetrahedron (a,b,c,d) times 6: positive when d
   is on the positive side of the plane through (a,b,c) oriented by the
   right-hand rule. *)
let orient3 a b c d = dot (cross (sub b a) (sub c a)) (sub d a)

let pp ppf p = Format.fprintf ppf "(%g, %g, %g)" p.x p.y p.z

let codec =
  Emio.Codec.map
    ~decode:(fun (x, y, z) -> { x; y; z })
    ~encode:(fun p -> (p.x, p.y, p.z))
    Emio.Codec.(triple float float float)
