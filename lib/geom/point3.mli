(** Points (and free vectors) in R³. *)

type t

val make : float -> float -> float -> t
val x : t -> float
val y : t -> float
val z : t -> float

val equal : t -> t -> bool
(** Componentwise within {!Eps.eps}. *)

val sub : t -> t -> t
val cross : t -> t -> t
val dot : t -> t -> float

val orient3 : t -> t -> t -> t -> float
(** Six times the signed volume of the tetrahedron (a, b, c, d):
    positive when [d] is on the positive side of the plane through
    (a, b, c) oriented by the right-hand rule.  The visibility
    predicate of the incremental hull ({!Hull3}). *)

val pp : Format.formatter -> t -> unit

val codec : t Emio.Codec.t
(** Three IEEE-754 floats — the on-disk form of a point. *)
