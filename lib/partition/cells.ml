type point = float array

type constr = { w : float array; b : float }

let eps = 1e-9

let constr_of_halfspace ~dim ~a0 ~a =
  if Array.length a <> dim - 1 then
    invalid_arg "Cells.constr_of_halfspace: need d-1 coefficients";
  (* x_d - a0 - sum a_i x_i <= 0 *)
  let w = Array.make dim 0. in
  for i = 0 to dim - 2 do
    w.(i) <- -.a.(i)
  done;
  w.(dim - 1) <- 1.;
  { w; b = -.a0 }

let eval_constr c p =
  let s = ref c.b in
  for i = 0 to Array.length c.w - 1 do
    s := !s +. (c.w.(i) *. p.(i))
  done;
  !s

(* Not [eval_constr c p <= eps]: returning the float across the
   function boundary boxes it (2 words per candidate point on the
   batch hot path); evaluating inline compares unboxed. *)
let satisfies c p =
  let s = ref c.b in
  for i = 0 to Array.length c.w - 1 do
    s := !s +. (c.w.(i) *. p.(i))
  done;
  !s <= eps

type cell = Box of { lo : float array; hi : float array } | Simplex of point array

type side = Inside | Outside | Crossing

let classify cell c =
  match cell with
  | Box { lo; hi } ->
      (* extrema of the affine function over the box: choose each
         coordinate by the sign of its coefficient.  Local float refs
         only, so the classifier is allocation-free on the batch hot
         path — a tuple-returning helper here cost ~7 words per child
         examined. *)
      let minv = ref c.b and maxv = ref c.b in
      for i = 0 to Array.length c.w - 1 do
        let w = c.w.(i) in
        if w >= 0. then begin
          minv := !minv +. (w *. lo.(i));
          maxv := !maxv +. (w *. hi.(i))
        end
        else begin
          minv := !minv +. (w *. hi.(i));
          maxv := !maxv +. (w *. lo.(i))
        end
      done;
      (* consistent with [satisfies] (eval <= eps): Inside when every
         point passes, Outside when none can *)
      if !maxv <= eps then Inside
      else if !minv > eps then Outside
      else Crossing
  | Simplex vs ->
      let minv = ref infinity and maxv = ref neg_infinity in
      Array.iter
        (fun v ->
          let x = eval_constr c v in
          if x < !minv then minv := x;
          if x > !maxv then maxv := x)
        vs;
      if !maxv <= eps then Inside
      else if !minv > eps then Outside
      else Crossing

type region_side = R_inside | R_disjoint | R_crossing

let classify_region cell constrs =
  let all_inside = ref true and disjoint = ref false in
  List.iter
    (fun c ->
      match classify cell c with
      | Inside -> ()
      | Outside ->
          disjoint := true;
          all_inside := false
      | Crossing -> all_inside := false)
    constrs;
  if !disjoint then R_disjoint
  else if !all_inside then R_inside
  else R_crossing

let cell_contains cell p =
  match cell with
  | Box { lo; hi } ->
      let ok = ref true in
      Array.iteri
        (fun i x -> if x < lo.(i) -. eps || x > hi.(i) +. eps then ok := false)
        p;
      !ok
  | Simplex vs ->
      (* solve barycentric coordinates would be exact; we instead check
         p against each facet's supporting halfspace *)
      let d = Array.length p in
      if Array.length vs <> d + 1 then false
      else begin
        (* facet j omits vertex j; p and vs.(j) must be on the same
           side of that facet.  Use the signed affine form obtained by
           solving a small linear system via Gaussian elimination. *)
        let ok = ref true in
        for j = 0 to d do
          (* build the affine function vanishing on facet j *)
          let base = vs.((j + 1) mod (d + 1)) in
          let rows =
            Array.init (d - 1) (fun i ->
                let v = vs.((j + 2 + i) mod (d + 1)) in
                Array.init d (fun k -> v.(k) -. base.(k)))
          in
          (* normal = any vector orthogonal to the rows: for small d we
             compute it by Gaussian elimination on the system rows.n=0 *)
          let n = Orth.normal_orthogonal_to rows d in
          let off = ref 0. in
          Array.iteri (fun k nk -> off := !off +. (nk *. base.(k))) n;
          let side_p =
            let s = ref 0. in
            Array.iteri (fun k nk -> s := !s +. (nk *. p.(k))) n;
            !s -. !off
          in
          let side_v =
            let s = ref 0. in
            Array.iteri (fun k nk -> s := !s +. (nk *. vs.(j).(k))) n;
            !s -. !off
          in
          if side_v > 0. then begin
            if side_p < -.eps then ok := false
          end
          else if side_p > eps then ok := false
        done;
        !ok
      end

let bounding_box points =
  match points with
  | [||] -> invalid_arg "Cells.bounding_box: empty"
  | _ ->
      let d = Array.length points.(0) in
      let lo = Array.make d infinity and hi = Array.make d neg_infinity in
      Array.iter
        (fun p ->
          Array.iteri
            (fun i x ->
              if x < lo.(i) then lo.(i) <- x;
              if x > hi.(i) then hi.(i) <- x)
            p)
        points;
      Box { lo; hi }

let bounding_simplex ~dim points =
  match bounding_box points with
  | Simplex _ -> assert false
  | Box { lo; hi } ->
      (* the corner simplex {y >= lo, sum (y-lo)/w <= d} contains the
         box [lo, hi]: vertices lo and lo + d * w_i * e_i *)
      let w = Array.init dim (fun i -> max eps (hi.(i) -. lo.(i))) in
      let verts =
        Array.init (dim + 1) (fun j ->
            if j = 0 then Array.copy lo
            else
              Array.init dim (fun i ->
                  if i = j - 1 then lo.(i) +. (float_of_int dim *. w.(i))
                  else lo.(i)))
      in
      Simplex verts

let crossing_number cells c =
  Array.fold_left
    (fun acc cell -> if classify cell c = Crossing then acc + 1 else acc)
    0 cells

let point_codec : point Emio.Codec.t = Emio.Codec.(array float)

let cell_codec =
  let open Emio.Codec in
  let floats = array float in
  let verts = array point_codec in
  custom
    ~write:(fun buf c ->
      match c with
      | Box { lo; hi } ->
          write_u8 buf 0;
          write floats buf lo;
          write floats buf hi
      | Simplex vs ->
          write_u8 buf 1;
          write verts buf vs)
    ~read:(fun b pos ->
      match read_u8 b pos with
      | 0 ->
          let lo = read floats b pos in
          let hi = read floats b pos in
          Box { lo; hi }
      | 1 -> Simplex (read verts b pos)
      | t -> raise (Decode (Printf.sprintf "bad cell tag %d" t)))
