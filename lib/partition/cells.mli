(** d-dimensional points, affine constraints, and partition cells.

    Points are float arrays of length d.  A halfspace query in the
    paper's form [x_d <= a_0 + Σ_{i<d} a_i x_i] is one affine
    constraint; a simplex query (footnote 7: the intersection of d+1
    halfspaces) is a conjunction of several.

    Cells are the regions of a simplicial partition (Theorem 5.1):
    either axis-aligned boxes (the kd partitioner — same O(r^{1-1/d})
    crossing bound, DESIGN.md substitution 5) or genuine simplices
    (the sampled partitioner). *)

type point = float array

(** The constraint [w · p + b <= 0]. *)
type constr = { w : float array; b : float }

val constr_of_halfspace : dim:int -> a0:float -> a:float array -> constr
(** The paper's query form [x_d <= a0 + Σ a_i x_i] (with [a] of length
    d-1) as a constraint. *)

val eval_constr : constr -> point -> float

val satisfies : constr -> point -> bool
(** [eval <= eps]: closed halfspace with tolerance. *)

type cell =
  | Box of { lo : float array; hi : float array }
  | Simplex of point array  (** d+1 affinely independent vertices *)

type side =
  | Inside  (** the cell satisfies the constraint everywhere *)
  | Outside  (** the cell violates it everywhere *)
  | Crossing

val classify : cell -> constr -> side
(** Exact for boxes (per-coordinate extrema of an affine function) and
    for simplices (vertex evaluations). *)

type region_side =
  | R_inside  (** cell contained in the query region *)
  | R_disjoint
  | R_crossing  (** conservative: may also be returned for disjoint
                    cells; correctness never depends on it *)

val classify_region : cell -> constr list -> region_side
(** Cell versus an intersection of constraints (a simplex or general
    convex polytope query). *)

val cell_contains : cell -> point -> bool

val bounding_box : point array -> cell
(** Tight bounding box of a nonempty point set. *)

val bounding_simplex : dim:int -> point array -> cell
(** A simplex containing the point set: the bounding box scaled into a
    corner simplex (used by the sampled "simplicial" partitioner and
    the Figure 6 reproduction). *)

val crossing_number : cell array -> constr -> int
(** How many cells the constraint's boundary hyperplane crosses — the
    quantity Theorem 5.1 bounds by α r^{1-1/d}. *)

val point_codec : point Emio.Codec.t
val cell_codec : cell Emio.Codec.t
