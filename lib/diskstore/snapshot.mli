(** Persistent index snapshots, format v2: build a structure once,
    serialize it, and reopen it for querying in a later process with
    its payload blocks served from disk through a {!Buffer_pool}.

    A snapshot file is a sequence of checksummed {!Block_file} pages:
    a header page (magic, version, page/block size, per-section CRCs,
    kind and free-form meta strings), block-table pages mapping each
    store block to its page span, the payload pages themselves, and
    finally the structure's {e skeleton} — everything except the
    payload blocks (layer lists, auxiliary B-trees, block ids), as a
    closure-free {!Emio.Codec} section.

    Nothing in the file is [Marshal]ed, so a snapshot written by one
    binary (or compiler version, or architecture) reopens in any
    other.  Loading validates the whole file — magic, version,
    per-page CRC-32, a CRC-32 over each section, length bookkeeping —
    before handing anything back; every way a file can be damaged is a
    constructor of {!error}, never an escaping exception.  A v1
    (closure-marshalled) file is rejected with [Unsupported_version 1].

    Structures wrap this module with their own [save_snapshot] /
    [of_snapshot] (e.g. {!Core.Halfspace2d.of_snapshot}): save exports
    the primary store's blocks ({!Emio.Store.export_bytes}) and
    codec-encodes a plain-data skeleton record; load decodes the
    skeleton ({!decode_skeleton}) and rebuilds stores from [backend]
    via {!Emio.Store.of_backend}, reconstructing comparators and
    splitters from the persisted parameters. *)

type error =
  | Bad_magic
  | Unsupported_version of int
  | Bad_header of string
  | Truncated of { expected_bytes : int; actual_bytes : int }
  | Bad_checksum of { page : int }
  | Bad_section_crc of { section : string }
      (** a whole section (block table, payload, or skeleton) fails
          its header CRC even though each page checks out *)
  | Bad_payload of string  (** skeleton or payload bytes fail to decode *)
  | Kind_mismatch of { expected : string; got : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type info = {
  kind : string;  (** structure tag, e.g. ["lcsearch.h2"] *)
  meta : string;  (** free-form builder metadata (workload parameters) *)
  version : int;
  page_size : int;
  block_size : int;
  n_blocks : int;
  total_pages : int;
}

type opened = {
  info : info;
  skeleton : bytes;
      (** the skeleton section, verified but not yet decoded — the
          caller picks the codec from [info.kind] (guarded by
          [expect_kind]) and runs {!decode_skeleton}. *)
  backend : Emio.Store_intf.backend;
  pool : Buffer_pool.t;
}

val default_page_size : int
(** 4096. *)

val save :
  path:string ->
  kind:string ->
  ?meta:string ->
  ?page_size:int ->
  block_size:int ->
  payload:bytes array ->
  skeleton:bytes ->
  unit ->
  unit
(** Write a snapshot: [payload] (one [bytes] per store block, in id
    order — from {!Emio.Store.export_bytes}) becomes the payload
    pages, [skeleton] the skeleton section, and [block_size] is
    recorded in the header for the reopening side.  Fsyncs before
    returning. *)

val read_info : string -> (info, error) result
(** Header-only probe (no CRC sweep of the body, but the header page
    itself is verified) — cheap kind/meta dispatch for the CLI. *)

val load :
  path:string ->
  stats:Emio.Io_stats.t ->
  ?policy:Buffer_pool.policy ->
  ?cache_pages:int ->
  ?expect_kind:string ->
  unit ->
  (opened, error) result
(** Open a snapshot: verify every page and every section CRC, rebuild
    the block table, and return the raw skeleton plus a file backend
    (buffer pool of [cache_pages] pages, default 64, eviction [policy]
    default LRU) ready for {!Emio.Store.of_backend}.  All verification
    I/O is recorded in [stats]; reset it afterwards to measure queries
    alone. *)

(** {2 Structure-side helpers} *)

val close : opened -> unit
(** Close the underlying file — call when skeleton decoding fails
    after a successful {!load} (a loaded structure's lifetime
    otherwise owns the file). *)

val decode_skeleton : 'a Emio.Codec.t -> bytes -> ('a, error) result
(** Decode a verified skeleton section; {!Emio.Codec.Decode} becomes
    [Bad_payload]. *)

val reconstruct : (unit -> 'a) -> ('a, error) result
(** Run structure-reconstruction code, mapping the exceptions it can
    legitimately raise on corrupt-but-checksummed input
    ([Codec.Decode], [Invalid_argument], [Failure]) to [Bad_payload],
    so [of_snapshot] never lets one escape. *)
