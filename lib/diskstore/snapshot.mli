(** Persistent index snapshots: build a structure once, serialize it,
    and reopen it for querying in a later process with its payload
    blocks served from disk through a {!Buffer_pool}.

    A snapshot file is a sequence of checksummed {!Block_file} pages:
    a header page (magic, version, page/block size, kind and free-form
    meta strings), block-table pages mapping each store block to its
    page span, the payload pages themselves, and finally the
    structure's {e skeleton} — everything except the payload blocks
    (layer lists, auxiliary B-trees, block ids), marshalled with
    {!Emio.Store.marshal_flags}.

    Loading validates the whole file (magic, version, per-page CRC-32,
    length bookkeeping) before any value is unmarshalled; every way a
    file can be damaged is a constructor of {!error}, never an escaping
    exception.  Because skeletons may contain closures, a snapshot can
    only be reopened by the binary that wrote it — a mismatch surfaces
    as [Bad_payload].

    Structures wrap this module with their own [save_snapshot] /
    [of_snapshot] (e.g. {!Core.Halfspace2d.of_snapshot}), which pin the
    skeleton's type via the [kind] tag and re-{!Emio.Store.attach} the
    reopened backend. *)

type error =
  | Bad_magic
  | Unsupported_version of int
  | Bad_header of string
  | Truncated of { expected_bytes : int; actual_bytes : int }
  | Bad_checksum of { page : int }
  | Bad_payload of string  (** unmarshalling failed (or wrong binary) *)
  | Kind_mismatch of { expected : string; got : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type info = {
  kind : string;  (** structure tag, e.g. ["lcsearch.h2"] *)
  meta : string;  (** free-form builder metadata (workload parameters) *)
  version : int;
  page_size : int;
  block_size : int;
  n_blocks : int;
  total_pages : int;
}

type 'v opened = {
  info : info;
  value : 'v;
      (** the unmarshalled skeleton.  Its type is pinned by the caller
          (guarded by [expect_kind]); its primary store is empty until
          {!Emio.Store.attach}ed to [backend]. *)
  backend : Emio.Store_intf.backend;
  pool : Buffer_pool.t;
}

val default_page_size : int
(** 4096. *)

val save :
  path:string ->
  kind:string ->
  ?meta:string ->
  ?page_size:int ->
  store:'a Emio.Store.t ->
  value:'v ->
  unit ->
  unit
(** Write [value]'s snapshot: [store]'s blocks become the payload
    pages, and [value] is marshalled with the store ejected (see
    {!Emio.Store.with_ejected}).  [store] must be the primary store
    referenced inside [value].  Fsyncs before returning. *)

val read_info : string -> (info, error) result
(** Header-only probe (no CRC sweep of the body, but the header page
    itself is verified) — cheap kind/meta dispatch for the CLI. *)

val load :
  path:string ->
  stats:Emio.Io_stats.t ->
  ?policy:Buffer_pool.policy ->
  ?cache_pages:int ->
  ?expect_kind:string ->
  unit ->
  ('v opened, error) result
(** Open a snapshot: verify every page, rebuild the block table, and
    return the skeleton plus a file backend (buffer pool of
    [cache_pages] pages, default 64, eviction [policy] default LRU)
    ready to be {!Emio.Store.attach}ed.  All verification I/O is
    recorded in [stats]; reset it afterwards to measure queries alone. *)
