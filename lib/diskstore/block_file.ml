(* Fixed-size page I/O over a Unix file descriptor.

   On-disk page layout (little-endian):
     bytes 0..3   payload length (u32)
     bytes 4..7   CRC-32 over the whole page except this field
                  (length field + payload + zero padding), so any
                  single-byte corruption anywhere in a page is caught
     bytes 8..    payload, zero-padded to [page_size]

   Page [i] lives at byte offset [i * page_size].  Reads validate the
   checksum and report corruption or truncation as a typed error.
   Physical I/O (one page per read/write, plus byte counts) is recorded
   in the attached Io_stats. *)

let header_bytes = 8

type t = {
  fd : Unix.file_descr;
  path : string;
  page_size : int;
  stats : Emio.Io_stats.t;
  mutable pages : int;
  mutable closed : bool;
}

type read_error =
  | Out_of_range of { page : int; pages : int }
  | Short_page of { page : int }
  | Bad_checksum of { page : int }

let pp_read_error ppf = function
  | Out_of_range { page; pages } ->
      Format.fprintf ppf "page %d out of range (file has %d pages)" page pages
  | Short_page { page } -> Format.fprintf ppf "page %d truncated" page
  | Bad_checksum { page } -> Format.fprintf ppf "page %d failed CRC check" page

let min_page_size = 64

let check_page_size page_size =
  if page_size < min_page_size then
    invalid_arg "Block_file: page_size must be >= 64"

let create ~stats ~path ~page_size =
  check_page_size page_size;
  let fd = Unix.openfile path [ O_RDWR; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644 in
  { fd; path; page_size; stats; pages = 0; closed = false }

let open_existing ?(read_only = true) ~stats ~path ~page_size () =
  check_page_size page_size;
  let flags =
    (if read_only then [ Unix.O_RDONLY ] else [ Unix.O_RDWR ])
    @ [ Unix.O_CLOEXEC ]
  in
  let fd = Unix.openfile path flags 0o644 in
  let size = (Unix.fstat fd).st_size in
  (* a trailing partial page is readable territory for the caller to
     reject as Short_page, so round up *)
  let pages = (size + page_size - 1) / page_size in
  { fd; path; page_size; stats; pages; closed = false }

let path t = t.path
let page_size t = t.page_size
let payload_capacity t = t.page_size - header_bytes
let pages t = t.pages
let stats t = t.stats

let check_open t =
  if t.closed then invalid_arg "Block_file: file is closed"

let put_u32 b pos v =
  Bytes.set b pos (Char.chr (v land 0xFF));
  Bytes.set b (pos + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (pos + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (pos + 3) (Char.chr ((v lsr 24) land 0xFF))

let get_u32 b pos =
  Char.code (Bytes.get b pos)
  lor (Char.code (Bytes.get b (pos + 1)) lsl 8)
  lor (Char.code (Bytes.get b (pos + 2)) lsl 16)
  lor (Char.code (Bytes.get b (pos + 3)) lsl 24)

let pwrite_all t buf off =
  ignore (Unix.lseek t.fd off SEEK_SET);
  let len = Bytes.length buf in
  let written = ref 0 in
  while !written < len do
    written :=
      !written + Unix.write t.fd buf !written (len - !written)
  done

(* Returns bytes actually read (may be short at EOF). *)
let pread t buf off =
  ignore (Unix.lseek t.fd off SEEK_SET);
  let len = Bytes.length buf in
  let got = ref 0 and eof = ref false in
  while (not !eof) && !got < len do
    let n = Unix.read t.fd buf !got (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  !got

let write_page t page payload =
  check_open t;
  if page < 0 then invalid_arg "Block_file.write_page: negative page";
  let len = Bytes.length payload in
  if len > payload_capacity t then
    invalid_arg "Block_file.write_page: payload exceeds page capacity";
  let buf = Bytes.make t.page_size '\000' in
  put_u32 buf 0 len;
  Bytes.blit payload 0 buf header_bytes len;
  let crc =
    Crc32.update (Crc32.update 0 buf ~pos:0 ~len:4) buf ~pos:header_bytes
      ~len:(t.page_size - header_bytes)
  in
  put_u32 buf 4 crc;
  pwrite_all t buf (page * t.page_size);
  if page >= t.pages then t.pages <- page + 1;
  Emio.Io_stats.record_write t.stats;
  Emio.Io_stats.record_bytes_written t.stats t.page_size

let read_page t page =
  check_open t;
  if page < 0 || page >= t.pages then
    Error (Out_of_range { page; pages = t.pages })
  else begin
    let buf = Bytes.create t.page_size in
    let got = pread t buf (page * t.page_size) in
    Emio.Io_stats.record_read t.stats;
    Emio.Io_stats.record_bytes_read t.stats got;
    if got < t.page_size then Error (Short_page { page })
    else begin
      let len = get_u32 buf 0 in
      if len > payload_capacity t then Error (Bad_checksum { page })
      else begin
        let crc =
          Crc32.update (Crc32.update 0 buf ~pos:0 ~len:4) buf
            ~pos:header_bytes ~len:(t.page_size - header_bytes)
        in
        if crc <> get_u32 buf 4 then Error (Bad_checksum { page })
        else Ok (Bytes.sub buf header_bytes len)
      end
    end
  end

let flush t =
  check_open t;
  Unix.fsync t.fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end
