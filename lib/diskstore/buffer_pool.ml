(* A write-back page cache over a Block_file with pluggable eviction.

   The pool holds up to [capacity] page payloads.  Reads and writes of
   resident pages are free cache hits; a miss costs one physical page
   read, and evicting a dirty frame costs one physical page write
   (write-back).  Hits and evictions are recorded in the file's
   Io_stats; the physical transfers are recorded by Block_file itself,
   so after a [flush] the stats read like a real device trace:
   reads = page faults, writes = write-backs, hits = saved I/Os. *)

type policy = Lru | Clock

let policy_name = function Lru -> "lru" | Clock -> "clock"

type frame = {
  mutable data : bytes;
  mutable dirty : bool;
  mutable referenced : bool; (* CLOCK second-chance bit *)
}

type t = {
  file : Block_file.t;
  policy : policy;
  capacity : int;
  frames : (int, frame) Hashtbl.t; (* page -> frame *)
  lru : Emio.Lru.t; (* recency order when policy = Lru *)
  slots : int array; (* page per CLOCK slot, -1 = free *)
  mutable hand : int;
}

let create ~file ~policy ~capacity =
  if capacity < 0 then invalid_arg "Buffer_pool.create: negative capacity";
  {
    file;
    policy;
    capacity;
    frames = Hashtbl.create (max 16 capacity);
    lru = Emio.Lru.create ~capacity;
    slots = Array.make (max 1 capacity) (-1);
    hand = 0;
  }

let file t = t.file
let policy t = t.policy
let capacity t = t.capacity
let resident t = Hashtbl.length t.frames
let stats t = Block_file.stats t.file

let write_back t page frame =
  if frame.dirty then begin
    Block_file.write_page t.file page frame.data;
    frame.dirty <- false
  end

let evict t page =
  match Hashtbl.find_opt t.frames page with
  | None -> ()
  | Some frame ->
      write_back t page frame;
      Hashtbl.remove t.frames page;
      Emio.Io_stats.record_eviction (stats t)

(* Claim a CLOCK slot for [page], evicting the victim the hand settles
   on.  Each frame gets a second chance: a set reference bit is cleared
   and the hand moves on. *)
let clock_claim t page =
  let rec sweep () =
    let s = t.hand in
    let occupant = t.slots.(s) in
    if occupant = -1 then begin
      t.slots.(s) <- page;
      t.hand <- (s + 1) mod t.capacity
    end
    else begin
      let frame = Hashtbl.find t.frames occupant in
      if frame.referenced then begin
        frame.referenced <- false;
        t.hand <- (s + 1) mod t.capacity;
        sweep ()
      end
      else begin
        evict t occupant;
        t.slots.(s) <- page;
        t.hand <- (s + 1) mod t.capacity
      end
    end
  in
  sweep ()

let insert t page data dirty =
  let frame = { data; dirty; referenced = true } in
  (match t.policy with
  | Lru ->
      let _hit, evicted = Emio.Lru.touch_report t.lru page in
      (match evicted with Some victim -> evict t victim | None -> ())
  | Clock -> clock_claim t page);
  Hashtbl.replace t.frames page frame

let touch t page frame =
  match t.policy with
  | Lru -> ignore (Emio.Lru.touch t.lru page)
  | Clock -> frame.referenced <- true

let read_page t page =
  if t.capacity = 0 then Block_file.read_page t.file page
  else
    match Hashtbl.find_opt t.frames page with
    | Some frame ->
        touch t page frame;
        Emio.Io_stats.record_hit (stats t);
        Ok frame.data
    | None -> (
        match Block_file.read_page t.file page with
        | Error _ as e -> e
        | Ok data ->
            insert t page data false;
            Ok data)

let write_page t page data =
  if t.capacity = 0 then Block_file.write_page t.file page data
  else
    match Hashtbl.find_opt t.frames page with
    | Some frame ->
        frame.data <- data;
        frame.dirty <- true;
        touch t page frame;
        Emio.Io_stats.record_hit (stats t)
    | None -> insert t page data true

let flush t =
  (* deterministic order: ascending page number *)
  Hashtbl.fold (fun page frame acc -> (page, frame) :: acc) t.frames []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (page, frame) -> write_back t page frame);
  Block_file.flush t.file

let drop t =
  flush t;
  Hashtbl.reset t.frames;
  Emio.Lru.clear t.lru;
  Array.fill t.slots 0 (Array.length t.slots) (-1);
  t.hand <- 0
