(** Fixed-size page I/O over a Unix file descriptor — the physical
    layer of the disk store.

    A file is an array of [page_size]-byte pages; each page carries an
    8-byte header (payload length + CRC-32 over the entire page except
    the CRC field itself, padding included) followed by the zero-padded
    payload, so every read is integrity-checked and a single flipped
    byte anywhere in a page — or corruption/truncation — surfaces as a
    typed {!read_error} instead of garbage data.  Every physical page
    transfer is recorded in the attached {!Emio.Io_stats}, including
    byte counts. *)

type t

type read_error =
  | Out_of_range of { page : int; pages : int }
  | Short_page of { page : int }  (** the file ends mid-page *)
  | Bad_checksum of { page : int }

val pp_read_error : Format.formatter -> read_error -> unit

val header_bytes : int
(** Per-page header overhead (8). *)

val min_page_size : int

val create : stats:Emio.Io_stats.t -> path:string -> page_size:int -> t
(** Create (or truncate) a page file, opened read-write. *)

val open_existing :
  ?read_only:bool ->
  stats:Emio.Io_stats.t ->
  path:string ->
  page_size:int ->
  unit ->
  t
(** Open an existing page file ([read_only] defaults to [true]).
    Raises [Unix.Unix_error] if the path does not exist. *)

val path : t -> string
val page_size : t -> int

val payload_capacity : t -> int
(** [page_size - header_bytes]: usable payload bytes per page. *)

val pages : t -> int
(** Pages present (a trailing partial page counts, and reads of it
    return [Short_page]). *)

val stats : t -> Emio.Io_stats.t

val write_page : t -> int -> bytes -> unit
(** [write_page t i payload] seals [payload] (length ≤
    [payload_capacity]) into page [i].  Writing past the end extends
    the file (skipped pages become holes that read back as
    [Bad_checksum] until written).  One physical write. *)

val read_page : t -> int -> (bytes, read_error) result
(** Fetch and verify page [i]'s payload.  One physical read. *)

val flush : t -> unit
(** [fsync] the descriptor. *)

val close : t -> unit
(** Close the descriptor; idempotent. *)
