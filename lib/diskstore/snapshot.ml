(* Snapshot file layout, format v2 (all pages are Block_file pages, so
   every one carries its own length + CRC-32):

     page 0                      header
     pages 1 .. T                block table, 8 bytes per block
                                 (first payload page u32, byte len u32)
     pages 1+T .. T+P            payload: each store block's
                                 codec-encoded bytes over its span of
                                 pages
     pages 1+T+P ..              skeleton: the structure minus its
                                 payload blocks, as a closure-free
                                 Emio.Codec section

   Header payload:
     magic "LCSNAP01" | version u32 | page_size u32 | block_size u32 |
     n_blocks u32 | table_pages u32 | payload_pages u32 | skel_len u32 |
     table_crc u32 | payload_crc u32 | skel_crc u32 |
     kind_len u32 | kind | meta_len u32 | meta

   The magic sits at file offset 8 (after the page header) and the
   version right after it — both at fixed positions independent of page
   size, so a v1 file (same magic, version field 1) is rejected with
   Unsupported_version rather than misparsed.  Beyond the per-page
   CRCs, the header pins a CRC-32 over each whole section (table bytes,
   concatenated payload block bytes in id order, skeleton bytes), so a
   consistent-but-reshuffled file still fails verification. *)

let magic = "LCSNAP01"
let version = 2
let default_page_size = 4096

type error =
  | Bad_magic
  | Unsupported_version of int
  | Bad_header of string
  | Truncated of { expected_bytes : int; actual_bytes : int }
  | Bad_checksum of { page : int }
  | Bad_section_crc of { section : string }
  | Bad_payload of string
  | Kind_mismatch of { expected : string; got : string }

let pp_error ppf = function
  | Bad_magic -> Format.fprintf ppf "not a snapshot file (bad magic)"
  | Unsupported_version v -> Format.fprintf ppf "unsupported snapshot version %d" v
  | Bad_header msg -> Format.fprintf ppf "malformed snapshot header: %s" msg
  | Truncated { expected_bytes; actual_bytes } ->
      Format.fprintf ppf "truncated snapshot: %d bytes, expected %d"
        actual_bytes expected_bytes
  | Bad_checksum { page } ->
      Format.fprintf ppf "corrupt snapshot: page %d failed CRC check" page
  | Bad_section_crc { section } ->
      Format.fprintf ppf "corrupt snapshot: %s section failed CRC check" section
  | Bad_payload msg -> Format.fprintf ppf "corrupt snapshot payload: %s" msg
  | Kind_mismatch { expected; got } ->
      Format.fprintf ppf "snapshot holds a %S index, expected %S" got expected

let error_to_string e = Format.asprintf "%a" pp_error e

type info = {
  kind : string;
  meta : string;
  version : int;
  page_size : int;
  block_size : int;
  n_blocks : int;
  total_pages : int;
}

type opened = {
  info : info;
  skeleton : bytes;
  backend : Emio.Store_intf.backend;
  pool : Buffer_pool.t;
}

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let get_u32 b pos =
  Char.code (Bytes.get b pos)
  lor (Char.code (Bytes.get b (pos + 1)) lsl 8)
  lor (Char.code (Bytes.get b (pos + 2)) lsl 16)
  lor (Char.code (Bytes.get b (pos + 3)) lsl 24)

let crc_bytes b = Crc32.update 0 b ~pos:0 ~len:(Bytes.length b)

let cap_of ~page_size = page_size - Block_file.header_bytes
let pages_for ~page_size len = max 1 ((len + cap_of ~page_size - 1) / cap_of ~page_size)

let chunked_writes file ~first data =
  let cap = Block_file.payload_capacity file in
  let len = Bytes.length data in
  let np = pages_for ~page_size:(Block_file.page_size file) len in
  for j = 0 to np - 1 do
    Block_file.write_page file (first + j) (Bytes.sub data (j * cap) (min cap (len - j * cap)))
  done;
  np

let save ~path ~kind ?(meta = "") ?(page_size = default_page_size) ~block_size
    ~payload ~skeleton () =
  let blocks = payload in
  let n_blocks = Array.length blocks in
  let cap = cap_of ~page_size in
  let table_bytes = 8 * n_blocks in
  let table_pages = if n_blocks = 0 then 0 else pages_for ~page_size table_bytes in
  (* assign payload spans *)
  let table = Buffer.create (table_bytes + 8) in
  let payload_pages = ref 0 in
  let payload_crc = ref 0 in
  let spans =
    Array.map
      (fun block ->
        let first = !payload_pages in
        let len = Bytes.length block in
        put_u32 table first;
        put_u32 table len;
        payload_crc :=
          Crc32.update !payload_crc block ~pos:0 ~len:(Bytes.length block);
        payload_pages := first + pages_for ~page_size len;
        first)
      blocks
  in
  let table = Buffer.to_bytes table in
  let header = Buffer.create 256 in
  Buffer.add_string header magic;
  put_u32 header version;
  put_u32 header page_size;
  put_u32 header block_size;
  put_u32 header n_blocks;
  put_u32 header table_pages;
  put_u32 header !payload_pages;
  put_u32 header (Bytes.length skeleton);
  put_u32 header (crc_bytes table);
  put_u32 header !payload_crc;
  put_u32 header (crc_bytes skeleton);
  put_u32 header (String.length kind);
  Buffer.add_string header kind;
  put_u32 header (String.length meta);
  Buffer.add_string header meta;
  if Buffer.length header > cap then
    invalid_arg "Snapshot.save: kind/meta too large for one header page";
  let file =
    Block_file.create ~stats:(Emio.Io_stats.create ()) ~path ~page_size
  in
  Fun.protect
    ~finally:(fun () -> Block_file.close file)
    (fun () ->
      Block_file.write_page file 0 (Buffer.to_bytes header);
      if table_pages > 0 then ignore (chunked_writes file ~first:1 table);
      let payload_base = 1 + table_pages in
      Array.iteri
        (fun i block ->
          ignore (chunked_writes file ~first:(payload_base + spans.(i)) block))
        blocks;
      ignore
        (chunked_writes file ~first:(payload_base + !payload_pages) skeleton);
      Block_file.flush file)

(* Read [len] bytes spanning pages [first ..] through [read]; the pages
   were laid out by [chunked_writes]. *)
let read_span ~page_size ~read ~first len =
  let cap = cap_of ~page_size in
  let out = Bytes.create len in
  let np = pages_for ~page_size len in
  let rec go j =
    if j >= np then Ok out
    else
      match read (first + j) with
      | Error e -> Error e
      | Ok (payload : bytes) ->
          let lo = j * cap in
          Bytes.blit payload 0 out lo (min (Bytes.length payload) (len - lo));
          go (j + 1)
  in
  go 0

let map_read_error = function
  | Block_file.Out_of_range { page; _ } | Block_file.Short_page { page } ->
      Bad_checksum { page }
  | Block_file.Bad_checksum { page } -> Bad_checksum { page }

(* Parse the header without page-size knowledge: read the raw page-0
   prefix, validate magic and CRC by hand, then decode the fields. *)
let parse_header path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      if size < 16 then Error (Truncated { expected_bytes = 16; actual_bytes = size })
      else begin
        let prefix = Bytes.create (min size 65536) in
        really_input ic prefix 0 (Bytes.length prefix);
        if Bytes.sub_string prefix 8 8 <> magic then Error Bad_magic
        else begin
          let len = get_u32 prefix 0 in
          if len < 56 || len > Bytes.length prefix - 8 then
            Error (Bad_header "implausible header length")
          else begin
            (* The page CRC covers the whole page including padding, so
               we need the page size before we can verify.  Decode the
               field tentatively — if it was corrupted, the CRC over
               the wrong span fails and we still reject the file. *)
            let psz = get_u32 prefix 20 in
            if psz < Block_file.min_page_size || psz > 1 lsl 24 then
              Error (Bad_header "implausible page size")
            else if size < psz then
              Error (Truncated { expected_bytes = psz; actual_bytes = size })
            else if len > psz - 8 then
              Error (Bad_header "implausible header length")
            else begin
            let page0 =
              if psz <= Bytes.length prefix then Bytes.sub prefix 0 psz
              else begin
                seek_in ic 0;
                let b = Bytes.create psz in
                really_input ic b 0 psz;
                b
              end
            in
            let crc =
              Crc32.update
                (Crc32.update 0 page0 ~pos:0 ~len:4)
                page0 ~pos:8 ~len:(psz - 8)
            in
            if crc <> get_u32 page0 4 then Error (Bad_checksum { page = 0 })
            else begin
              let p = Bytes.sub prefix 8 len in
              let v = get_u32 p 8 in
              if v <> version then Error (Unsupported_version v)
              else begin
                let page_size = get_u32 p 12 in
                let block_size = get_u32 p 16 in
                let n_blocks = get_u32 p 20 in
                let table_pages = get_u32 p 24 in
                let payload_pages = get_u32 p 28 in
                let skel_len = get_u32 p 32 in
                let table_crc = get_u32 p 36 in
                let payload_crc = get_u32 p 40 in
                let skel_crc = get_u32 p 44 in
                let kind_len = get_u32 p 48 in
                if page_size < Block_file.min_page_size || 52 + kind_len + 4 > len
                then Error (Bad_header "inconsistent field lengths")
                else begin
                  let kind = Bytes.sub_string p 52 kind_len in
                  let meta_len = get_u32 p (52 + kind_len) in
                  if 56 + kind_len + meta_len > len then
                    Error (Bad_header "inconsistent field lengths")
                  else begin
                    let meta = Bytes.sub_string p (56 + kind_len) meta_len in
                    let skel_pages = pages_for ~page_size skel_len in
                    let total_pages =
                      1 + table_pages + payload_pages + skel_pages
                    in
                    Ok
                      ( {
                          kind;
                          meta;
                          version = v;
                          page_size;
                          block_size;
                          n_blocks;
                          total_pages;
                        },
                        (table_pages, payload_pages, skel_len),
                        (table_crc, payload_crc, skel_crc),
                        size )
                  end
                end
              end
            end
            end
          end
        end
      end)

let read_info path =
  match parse_header path with
  | Error _ as e -> e
  | Ok (info, _, _, size) ->
      if size < info.total_pages * info.page_size then
        Error
          (Truncated
             {
               expected_bytes = info.total_pages * info.page_size;
               actual_bytes = size;
             })
      else Ok info

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let load ~path ~stats ?(policy = Buffer_pool.Lru) ?(cache_pages = 64)
    ?expect_kind () =
  let* info, (table_pages, payload_pages, skel_len), crcs, size =
    parse_header path
  in
  let table_crc, payload_crc, skel_crc = crcs in
  let expected_bytes = info.total_pages * info.page_size in
  let* () =
    if size < expected_bytes then
      Error (Truncated { expected_bytes; actual_bytes = size })
    else Ok ()
  in
  let* () =
    match expect_kind with
    | Some expected when expected <> info.kind ->
        Error (Kind_mismatch { expected; got = info.kind })
    | _ -> Ok ()
  in
  let file =
    Block_file.open_existing ~stats ~path ~page_size:info.page_size ()
  in
  let result =
    (* integrity sweep: verify every page's checksum up front so
       corruption is a typed load error, not a mid-query exception *)
    let rec sweep page =
      if page >= info.total_pages then Ok ()
      else
        match Block_file.read_page file page with
        | Ok _ -> sweep (page + 1)
        | Error e -> Error (map_read_error e)
    in
    let* () = sweep 1 in
    let read page = Block_file.read_page file page in
    let read_span ~first len =
      match read_span ~page_size:info.page_size ~read ~first len with
      | Error e -> Error (map_read_error e)
      | Ok raw -> Ok raw
    in
    let* table =
      if info.n_blocks = 0 then Ok [||]
      else
        let* raw = read_span ~first:1 (8 * info.n_blocks) in
        let* () =
          if crc_bytes raw <> table_crc then
            Error (Bad_section_crc { section = "block table" })
          else Ok ()
        in
        Ok
          (Array.init info.n_blocks (fun i ->
               (get_u32 raw (8 * i), get_u32 raw ((8 * i) + 4))))
    in
    let payload_base = 1 + table_pages in
    (* section CRC over the payload blocks' bytes, in id order — this
       also proves every block span decodes from its pages *)
    let* got_payload_crc =
      let n = Array.length table in
      let rec go i acc =
        if i >= n then Ok acc
        else
          let first, len = table.(i) in
          let* raw = read_span ~first:(payload_base + first) len in
          go (i + 1) (Crc32.update acc raw ~pos:0 ~len:(Bytes.length raw))
      in
      go 0 0
    in
    let* () =
      if got_payload_crc <> payload_crc then
        Error (Bad_section_crc { section = "payload" })
      else Ok ()
    in
    let* skeleton = read_span ~first:(payload_base + payload_pages) skel_len in
    let* () =
      if crc_bytes skeleton <> skel_crc then
        Error (Bad_section_crc { section = "skeleton" })
      else Ok ()
    in
    let pool = Buffer_pool.create ~file ~policy ~capacity:cache_pages in
    let fb = File_backend.of_table ~base_page:payload_base ~table pool in
    Ok { info; skeleton; backend = File_backend.backend fb; pool }
  in
  (match result with Error _ -> Block_file.close file | Ok _ -> ());
  result

(* -- structure-side helpers --------------------------------------- *)

let close opened = Block_file.close (Buffer_pool.file opened.pool)

let decode_skeleton codec skeleton =
  match Emio.Codec.decode codec skeleton with
  | v -> Ok v
  | exception Emio.Codec.Decode msg -> Error (Bad_payload msg)

let reconstruct f =
  match f () with
  | v -> Ok v
  | exception Emio.Codec.Decode msg -> Error (Bad_payload msg)
  | exception Invalid_argument msg -> Error (Bad_payload msg)
  | exception Failure msg -> Error (Bad_payload msg)
