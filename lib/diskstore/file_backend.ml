(* The byte-level Store backend over a real file: each logical block
   (a marshalled 'a array handed over by Emio.Store) occupies a span of
   consecutive checksummed pages, accessed through the buffer pool.
   The block table (block id -> first page, byte length) lives in
   memory and is persisted by Snapshot alongside the pages. *)

type t = {
  pool : Buffer_pool.t;
  base_page : int; (* pages below this belong to the snapshot envelope *)
  mutable table : (int * int) array; (* id -> (first page - base, bytes) *)
  mutable n_blocks : int;
  mutable next_page : int; (* next free page, relative to base *)
}

let capacity t = Block_file.payload_capacity (Buffer_pool.file t.pool)

let span_pages t len = max 1 ((len + capacity t - 1) / capacity t)

let create ?(base_page = 0) pool =
  {
    pool;
    base_page;
    table = Array.make 16 (0, 0);
    n_blocks = 0;
    next_page = 0;
  }

let of_table ?(base_page = 0) ~table pool =
  let b =
    {
      pool;
      base_page;
      table = (if Array.length table = 0 then Array.make 16 (0, 0) else Array.copy table);
      n_blocks = Array.length table;
      next_page = 0;
    }
  in
  Array.iter
    (fun (first, len) ->
      b.next_page <- max b.next_page (first + span_pages b len))
    table;
  b

let pool t = t.pool
let table t = Array.sub t.table 0 t.n_blocks
let payload_pages t = t.next_page
let name t = "file:" ^ Block_file.path (Buffer_pool.file t.pool)
let blocks_used t = t.n_blocks

let write_span t ~first data =
  let cap = capacity t in
  let len = Bytes.length data in
  let np = span_pages t len in
  for j = 0 to np - 1 do
    let lo = j * cap in
    let chunk = Bytes.sub data lo (min cap (len - lo)) in
    Buffer_pool.write_page t.pool (t.base_page + first + j) chunk
  done

let grow t =
  let cap = Array.length t.table in
  if t.n_blocks >= cap then begin
    let bigger = Array.make (2 * cap) (0, 0) in
    Array.blit t.table 0 bigger 0 cap;
    t.table <- bigger
  end

let alloc t data =
  grow t;
  let id = t.n_blocks in
  let first = t.next_page in
  write_span t ~first data;
  t.table.(id) <- (first, Bytes.length data);
  t.n_blocks <- t.n_blocks + 1;
  t.next_page <- first + span_pages t (Bytes.length data);
  id

let read t id =
  if id < 0 || id >= t.n_blocks then
    invalid_arg "File_backend.read: bad block id";
  let first, len = t.table.(id) in
  let cap = capacity t in
  let out = Bytes.create len in
  let np = span_pages t len in
  for j = 0 to np - 1 do
    match Buffer_pool.read_page t.pool (t.base_page + first + j) with
    | Ok payload ->
        let lo = j * cap in
        Bytes.blit payload 0 out lo (min (Bytes.length payload) (len - lo))
    | Error e ->
        failwith
          (Format.asprintf "File_backend.read (%s): %a" (name t)
             Block_file.pp_read_error e)
  done;
  out

let write t id data =
  if id < 0 || id >= t.n_blocks then
    invalid_arg "File_backend.write: bad block id";
  let first, old_len = t.table.(id) in
  let len = Bytes.length data in
  if span_pages t len <= span_pages t old_len then begin
    (* fits in the existing span: overwrite in place *)
    write_span t ~first data;
    t.table.(id) <- (first, len)
  end
  else begin
    (* relocate to a fresh span at the end (the old pages become
       garbage; snapshots re-pack, so the leak is bounded by updates
       within one session) *)
    let first = t.next_page in
    write_span t ~first data;
    t.table.(id) <- (first, len);
    t.next_page <- first + span_pages t len
  end

let drop_cache t = Buffer_pool.drop t.pool
let flush t = Buffer_pool.flush t.pool

let close t =
  Buffer_pool.flush t.pool;
  Block_file.close (Buffer_pool.file t.pool)

module Backend_impl = struct
  type nonrec t = t

  let name = name
  let alloc = alloc
  let read = read
  let write = write
  let blocks_used = blocks_used
  let drop_cache = drop_cache
  let flush = flush
  let close = close
end

let backend t = Emio.Store_intf.Backend ((module Backend_impl), t)
