(* The byte-level Store backend over a real file: each logical block
   (a marshalled 'a array handed over by Emio.Store) occupies a span of
   consecutive checksummed pages, accessed through the buffer pool.
   The block table (block id -> first page, byte length) lives in
   memory and is persisted by Snapshot alongside the pages. *)

type t = {
  pool : Buffer_pool.t;
  base_page : int; (* pages below this belong to the snapshot envelope *)
  mutable table : (int * int) array; (* id -> (first page - base, bytes) *)
  mutable n_blocks : int;
  mutable next_page : int; (* next free page, relative to base *)
  mutable resident : bytes array option;
      (* preloaded payloads (see [preload]): reads are served from this
         immutable array without touching the pool, charging one model
         read per page of the block's span *)
}

(* When set, [of_table] (the snapshot-reopen path) preloads every
   payload immediately — the switch `lcsearch serve` flips before
   reopening snapshots so queries can fan out across domains. *)
let resident_on_reopen = ref false
let set_resident_on_reopen b = resident_on_reopen := b

let capacity t = Block_file.payload_capacity (Buffer_pool.file t.pool)

let span_pages t len = max 1 ((len + capacity t - 1) / capacity t)

let create ?(base_page = 0) pool =
  {
    pool;
    base_page;
    table = Array.make 16 (0, 0);
    n_blocks = 0;
    next_page = 0;
    resident = None;
  }

let pool t = t.pool
let table t = Array.sub t.table 0 t.n_blocks
let payload_pages t = t.next_page
let name t = "file:" ^ Block_file.path (Buffer_pool.file t.pool)
let blocks_used t = t.n_blocks

let write_span t ~first data =
  let cap = capacity t in
  let len = Bytes.length data in
  let np = span_pages t len in
  for j = 0 to np - 1 do
    let lo = j * cap in
    let chunk = Bytes.sub data lo (min cap (len - lo)) in
    Buffer_pool.write_page t.pool (t.base_page + first + j) chunk
  done

let grow t =
  let cap = Array.length t.table in
  if t.n_blocks >= cap then begin
    let bigger = Array.make (2 * cap) (0, 0) in
    Array.blit t.table 0 bigger 0 cap;
    t.table <- bigger
  end

let alloc t data =
  grow t;
  let id = t.n_blocks in
  let first = t.next_page in
  write_span t ~first data;
  t.table.(id) <- (first, Bytes.length data);
  t.n_blocks <- t.n_blocks + 1;
  t.next_page <- first + span_pages t (Bytes.length data);
  id

let read_via_pool t id =
  let first, len = t.table.(id) in
  let cap = capacity t in
  let out = Bytes.create len in
  let np = span_pages t len in
  for j = 0 to np - 1 do
    match Buffer_pool.read_page t.pool (t.base_page + first + j) with
    | Ok payload ->
        let lo = j * cap in
        Bytes.blit payload 0 out lo (min (Bytes.length payload) (len - lo))
    | Error e ->
        failwith
          (Format.asprintf "File_backend.read (%s): %a" (name t)
             Block_file.pp_read_error e)
  done;
  out

(* Pull every payload span into memory once (through the pool, so the
   sweep is CRC-checked and recorded like any other load-time I/O).
   After this, [read] never touches the pool or the file again: it
   copies out of an array that is immutable while the structure is
   read-only, which is what makes concurrent query fan-out across
   domains safe over a reopened snapshot — the buffer pool and its
   LRU/CLOCK bookkeeping are single-owner mutable state, the resident
   array is not.  Each resident read still charges one read per page
   of the block's span to the backend's Io_stats (exactly what a cold
   pool would fault), so per-query cost words stay meaningful — and,
   because no cache state is involved, deterministic regardless of
   concurrency or arrival order. *)
let preload t =
  match t.resident with
  | Some _ -> ()
  | None -> t.resident <- Some (Array.init t.n_blocks (read_via_pool t))

let is_resident t = t.resident <> None

let read t id =
  if id < 0 || id >= t.n_blocks then
    invalid_arg "File_backend.read: bad block id";
  match t.resident with
  | None -> read_via_pool t id
  | Some payloads ->
      let _, len = t.table.(id) in
      let stats = Buffer_pool.stats t.pool in
      for _ = 1 to span_pages t len do
        Emio.Io_stats.record_read stats
      done;
      Bytes.copy payloads.(id)

let of_table ?(base_page = 0) ~table pool =
  let b =
    {
      pool;
      base_page;
      table = (if Array.length table = 0 then Array.make 16 (0, 0) else Array.copy table);
      n_blocks = Array.length table;
      next_page = 0;
      resident = None;
    }
  in
  Array.iter
    (fun (first, len) ->
      b.next_page <- max b.next_page (first + span_pages b len))
    table;
  if !resident_on_reopen then preload b;
  b

let write t id data =
  if id < 0 || id >= t.n_blocks then
    invalid_arg "File_backend.write: bad block id";
  let first, old_len = t.table.(id) in
  let len = Bytes.length data in
  if span_pages t len <= span_pages t old_len then begin
    (* fits in the existing span: overwrite in place *)
    write_span t ~first data;
    t.table.(id) <- (first, len)
  end
  else begin
    (* relocate to a fresh span at the end (the old pages become
       garbage; snapshots re-pack, so the leak is bounded by updates
       within one session) *)
    let first = t.next_page in
    write_span t ~first data;
    t.table.(id) <- (first, len);
    t.next_page <- first + span_pages t len
  end;
  match t.resident with
  | None -> ()
  | Some payloads -> payloads.(id) <- Bytes.copy data

let drop_cache t = Buffer_pool.drop t.pool
let flush t = Buffer_pool.flush t.pool

let close t =
  Buffer_pool.flush t.pool;
  Block_file.close (Buffer_pool.file t.pool)

module Backend_impl = struct
  type nonrec t = t

  let name = name
  let alloc = alloc
  let read = read
  let write = write
  let blocks_used = blocks_used
  let drop_cache = drop_cache
  let flush = flush
  let close = close
end

let backend t = Emio.Store_intf.Backend ((module Backend_impl), t)
