(** The file-backed implementation of {!Emio.Store_intf.BACKEND}.

    Each logical store block — already codec-encoded to bytes by
    {!Emio.Store} — occupies a span of consecutive checksummed pages in
    a {!Block_file}, read and written through a {!Buffer_pool}.  The
    block table (block id → first page, byte length) is kept in memory
    and persisted by {!Snapshot}.

    Plug it into any structure with
    {[
      let pool = Buffer_pool.create ~file ~policy:Lru ~capacity:64 in
      let be = File_backend.(backend (create pool)) in
      let t = Core.Halfspace2d.build ~stats ~block_size ~backend:be pts
    ]} *)

type t

val create : ?base_page:int -> Buffer_pool.t -> t
(** Fresh backend with an empty block table, allocating pages from
    [base_page] (default 0) upward. *)

val of_table : ?base_page:int -> table:(int * int) array -> Buffer_pool.t -> t
(** Reopen over an existing page layout (used by {!Snapshot.load}).
    Preloads immediately when {!set_resident_on_reopen} is on. *)

val preload : t -> unit
(** Pull every block payload into an in-memory resident array (read
    once through the pool, CRC-checked).  Afterwards [read] copies out
    of the array without touching the pool or the file, charging one
    model read per page of the block's span to the backend's
    {!Emio.Io_stats} — deterministic per-query cost words with no
    cache state, and safe to call from concurrent read-only queries
    across domains.  Idempotent. *)

val is_resident : t -> bool

val set_resident_on_reopen : bool -> unit
(** Process-wide switch: when [true], every subsequent {!of_table}
    (i.e. every snapshot reopen) preloads immediately.  Flipped by
    [lcsearch serve] before loading the structures it will query
    concurrently. *)

val backend : t -> Emio.Store_intf.backend
(** First-class module wrapper to pass to [Emio.Store.create ~backend]
    or [Emio.Store.of_backend]. *)

val alloc : t -> bytes -> int
val read : t -> int -> bytes
val write : t -> int -> bytes -> unit
val blocks_used : t -> int

val table : t -> (int * int) array
(** Copy of the live block table, for persisting. *)

val payload_pages : t -> int
(** Pages allocated so far (relative to [base_page]). *)

val pool : t -> Buffer_pool.t
val name : t -> string
val drop_cache : t -> unit
val flush : t -> unit
val close : t -> unit
