(** The file-backed implementation of {!Emio.Store_intf.BACKEND}.

    Each logical store block — already codec-encoded to bytes by
    {!Emio.Store} — occupies a span of consecutive checksummed pages in
    a {!Block_file}, read and written through a {!Buffer_pool}.  The
    block table (block id → first page, byte length) is kept in memory
    and persisted by {!Snapshot}.

    Plug it into any structure with
    {[
      let pool = Buffer_pool.create ~file ~policy:Lru ~capacity:64 in
      let be = File_backend.(backend (create pool)) in
      let t = Core.Halfspace2d.build ~stats ~block_size ~backend:be pts
    ]} *)

type t

val create : ?base_page:int -> Buffer_pool.t -> t
(** Fresh backend with an empty block table, allocating pages from
    [base_page] (default 0) upward. *)

val of_table : ?base_page:int -> table:(int * int) array -> Buffer_pool.t -> t
(** Reopen over an existing page layout (used by {!Snapshot.load}). *)

val backend : t -> Emio.Store_intf.backend
(** First-class module wrapper to pass to [Emio.Store.create ~backend]
    or [Emio.Store.of_backend]. *)

val alloc : t -> bytes -> int
val read : t -> int -> bytes
val write : t -> int -> bytes -> unit
val blocks_used : t -> int

val table : t -> (int * int) array
(** Copy of the live block table, for persisting. *)

val payload_pages : t -> int
(** Pages allocated so far (relative to [base_page]). *)

val pool : t -> Buffer_pool.t
val name : t -> string
val drop_cache : t -> unit
val flush : t -> unit
val close : t -> unit
