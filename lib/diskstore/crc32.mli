(** CRC-32 (ISO 3309, polynomial 0xEDB88320) — the per-page integrity
    checksum of {!Block_file}.  Pure OCaml, no dependencies. *)

val digest : bytes -> int
(** Checksum of the whole buffer, in [0, 0xFFFFFFFF]. *)

val digest_string : string -> int

val update : int -> bytes -> pos:int -> len:int -> int
(** [update crc b ~pos ~len] extends [crc] over a slice, so multi-part
    payloads can be checksummed without concatenation.  The initial
    value is [0]. *)
