(** A write-back page cache (buffer pool) over a {!Block_file}, with
    pluggable eviction.

    This is the real-machine counterpart of the simulator's LRU model
    cache ({!Emio.Store.create}'s [cache_blocks]): up to [capacity]
    page payloads stay resident; a read miss costs one physical page
    read, a dirty frame costs one physical page write when evicted or
    flushed, and resident accesses are free hits.  Hits and evictions
    are recorded in the underlying file's {!Emio.Io_stats} (physical
    transfers and byte counts are recorded by {!Block_file}), so
    [reads] = page faults, [writes] = write-backs, [hits] = I/Os saved
    by the pool. *)

type policy =
  | Lru  (** evict the least-recently-used frame *)
  | Clock  (** second-chance clock sweep (approximate LRU, O(1) state) *)

val policy_name : policy -> string

type t

val create : file:Block_file.t -> policy:policy -> capacity:int -> t
(** [capacity 0] disables caching: every access goes straight to the
    file (write-through), which is the reference behaviour the
    write-back path must be byte-identical to after a {!flush}. *)

val read_page : t -> int -> (bytes, Block_file.read_error) result
(** Resident: free hit.  Miss: one physical read (checksum-verified),
    then the page is cached.  The returned bytes are the pool's frame —
    do not mutate. *)

val write_page : t -> int -> bytes -> unit
(** Install the payload for a page.  The write is buffered (dirty
    frame) and reaches the file on eviction or {!flush}. *)

val flush : t -> unit
(** Write back every dirty frame (ascending page order) and [fsync].
    Frames stay resident and become clean. *)

val drop : t -> unit
(** {!flush}, then empty the pool — e.g. between build and query
    phases, or to measure cold-cache behaviour. *)

val file : t -> Block_file.t
val policy : t -> policy
val capacity : t -> int

val resident : t -> int
(** Frames currently cached. *)

val stats : t -> Emio.Io_stats.t
