(* CRC-32 (ISO 3309 / ITU-T V.42, polynomial 0xEDB88320), table-driven.
   Implemented here so the file backend needs no external dependency;
   matches the zlib/`cksum -o 3` checksum, e.g.
   digest "123456789" = 0xCBF43926. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc bytes ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length bytes then
    invalid_arg "Crc32.update: out of bounds";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get bytes i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest bytes = update 0 bytes ~pos:0 ~len:(Bytes.length bytes)
let digest_string s = digest (Bytes.unsafe_of_string s)
