type t = {
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
  mutable evictions : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let create () =
  {
    reads = 0;
    writes = 0;
    hits = 0;
    evictions = 0;
    bytes_read = 0;
    bytes_written = 0;
  }

let reads t = t.reads
let writes t = t.writes
let total t = t.reads + t.writes
let cache_hits t = t.hits
let evictions t = t.evictions
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written

(* Every record is mirrored into the installed Cost_ctx stack (if
   any), so per-query scoped accounting never needs to reset these
   ambient counters. *)

let record_read t =
  t.reads <- t.reads + 1;
  Cost_ctx.note_read ()

let record_write t =
  t.writes <- t.writes + 1;
  Cost_ctx.note_write ()

let record_hit t =
  t.hits <- t.hits + 1;
  Cost_ctx.note_hit ()

(* Fused record-and-tracing-test variants for the Store block hot
   paths (see Cost_ctx.note_read_traced). *)

let record_read_traced t =
  t.reads <- t.reads + 1;
  Cost_ctx.note_read_traced ()

let record_write_traced t =
  t.writes <- t.writes + 1;
  Cost_ctx.note_write_traced ()

let record_hit_traced t =
  t.hits <- t.hits + 1;
  Cost_ctx.note_hit_traced ()

let record_eviction t =
  t.evictions <- t.evictions + 1;
  Cost_ctx.note_eviction ()

let record_bytes_read t n =
  t.bytes_read <- t.bytes_read + n;
  Cost_ctx.note_bytes_read n

let record_bytes_written t n =
  t.bytes_written <- t.bytes_written + n;
  Cost_ctx.note_bytes_written n

(* Fold [src]'s counters into [t], mirroring into any installed
   Cost_ctx exactly as the equivalent record_* sequence would. *)
let merge_into ~src t =
  t.reads <- t.reads + src.reads;
  t.writes <- t.writes + src.writes;
  t.hits <- t.hits + src.hits;
  t.evictions <- t.evictions + src.evictions;
  t.bytes_read <- t.bytes_read + src.bytes_read;
  t.bytes_written <- t.bytes_written + src.bytes_written;
  Cost_ctx.note_bulk ~reads:src.reads ~writes:src.writes ~hits:src.hits
    ~evictions:src.evictions ~bytes_read:src.bytes_read
    ~bytes_written:src.bytes_written

let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.hits <- 0;
  t.evictions <- 0;
  t.bytes_read <- 0;
  t.bytes_written <- 0

let checkpoint t = total t

let pp ppf t =
  Format.fprintf ppf
    "reads=%d writes=%d hits=%d evictions=%d bytes_read=%d bytes_written=%d"
    t.reads t.writes t.hits t.evictions t.bytes_read t.bytes_written
