(** I/O accounting for the external-memory machine.

    Every block transferred between "disk" (the {!Store}) and "memory"
    counts as one I/O, exactly as in the standard external-memory model
    used by the paper: a read transfers one block of B items into
    memory, a write transfers one block out.  Cache hits (see
    {!Store.create}) are counted separately and are free.

    The same counters serve the real file-backed store
    ([Diskstore.Block_file] / [Diskstore.Buffer_pool]): there a read or
    write is one physical page transfer, [bytes_read]/[bytes_written]
    record the raw byte traffic, and [evictions] counts buffer-pool
    frame replacements.  The in-memory simulator never records bytes or
    evictions, so those stay zero for model-level experiments. *)

type t

val create : unit -> t

val reads : t -> int
(** Number of block (or page) reads charged so far. *)

val writes : t -> int
(** Number of block (or page) writes charged so far. *)

val total : t -> int
(** [reads + writes]. *)

val cache_hits : t -> int
(** Block accesses served by a cache — the simulator's LRU or the file
    backend's buffer pool — and therefore not charged. *)

val evictions : t -> int
(** Buffer-pool frame evictions (always [0] for the simulator). *)

val bytes_read : t -> int
(** Physical bytes read from disk (always [0] for the simulator). *)

val bytes_written : t -> int
(** Physical bytes written to disk (always [0] for the simulator). *)

(** The [record_*] functions also mirror each count into any installed
    {!Cost_ctx} (see {!Cost_ctx.with_ctx}), leaving these ambient
    counters themselves untouched by the scoping machinery. *)

val record_read : t -> unit
val record_write : t -> unit
val record_hit : t -> unit
val record_eviction : t -> unit
val record_bytes_read : t -> int -> unit
val record_bytes_written : t -> int -> unit

val record_read_traced : t -> bool
(** Like {!record_read} but additionally reports whether some
    installed context is tracing, in one context-stack walk — for the
    per-block hot paths (see {!Cost_ctx.note_read_traced}). *)

val record_write_traced : t -> bool
val record_hit_traced : t -> bool

val merge_into : src:t -> t -> unit
(** Add [src]'s counters into the target, mirroring the totals into any
    installed {!Cost_ctx} exactly as the equivalent [record_*] sequence
    would.  This is how a delegating layer folds per-shard accounting
    (accumulated under a private [t], possibly on a worker domain) back
    into its caller's sink; [src] is left untouched. *)

val reset : t -> unit
(** Zero all counters (including byte and eviction counters).  Used
    between the build phase and the query phase of an experiment. *)

val checkpoint : t -> int
(** Snapshot of [total t]; [total t - checkpoint] measures a span. *)

val pp : Format.formatter -> t -> unit
