(** A run: a sequence of items laid out in consecutive blocks of a
    {!Store}.  This is the external-memory "file" primitive: scanning a
    run of [L] items costs ⌈L/B⌉ I/Os, which is how conflict lists,
    clusters and leaf buckets are paid for throughout the paper. *)

type 'a t

val of_array : 'a Store.t -> 'a array -> 'a t
(** Lay the items out in ⌈length/B⌉ fresh blocks (charged as writes). *)

val of_list : 'a Store.t -> 'a list -> 'a t

val of_block_ids : 'a Store.t -> int array -> int -> 'a t
(** [of_block_ids store ids length] views already-written blocks as a
    run of [length] items; no I/O is charged. *)

val empty : 'a Store.t -> 'a t

val store : 'a t -> 'a Store.t
(** The store the run's blocks live in. *)

val length : 'a t -> int

val block_count : 'a t -> int
(** Space occupied, in blocks. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Full scan; charges ⌈length/B⌉ reads. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array
(** Full scan into memory. *)

val iter_blocks : ('a array -> unit) -> 'a t -> unit
(** Scan block by block (same I/O cost as {!iter}). *)

val read_block : 'a t -> int -> 'a array
(** [read_block r i] fetches the [i]-th block of the run (one read). *)

val read_range : 'a t -> pos:int -> len:int -> 'a array
(** Items [pos, pos+len): costs one read per touched block, i.e.
    O(⌈len/B⌉ + 1). *)

val iter_range : ('a -> unit) -> 'a t -> pos:int -> len:int -> unit
(** Visit items [pos, pos+len) in place: the same blocks (and charges)
    as {!read_range} — one read per touched block — but with no
    intermediate copies, so the query hot paths can scan conflict
    lists and buckets without allocating. *)

val iter_prefix_blocks : ('a array -> bool) -> 'a t -> unit
(** Scan blocks left to right while the callback returns [true]:
    the filtering-search idiom — stop paying I/Os once enough output
    has been found. *)

(** {2 Persistence}

    A run over a {e shared} store (e.g. a snapshot's payload store)
    persists as just its block ids + length ({!to_portable}); a run
    over its own {e private} simulator store persists as a ['a stored]
    that embeds the store's blocks too. *)

val to_portable : 'a t -> int array * int
(** Block ids and length — enough to revive the run against a store
    that is persisted separately. *)

val of_portable : 'a Store.t -> int array * int -> 'a t
(** Inverse of {!to_portable}, given the revived store. *)

val portable_codec : (int array * int) Codec.t

type 'a stored
(** A run plus the blocks of its private simulator store. *)

val to_stored : 'a t -> 'a stored
(** @raise Invalid_argument if the run's store is external. *)

val of_stored : stats:Io_stats.t -> 'a stored -> 'a t

val stored_codec : 'a Codec.t -> 'a stored Codec.t
