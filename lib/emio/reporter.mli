(** A reusable, growable buffer of reported point ids: the
    zero-allocation reporting sink for the query hot paths.

    Every id-reporting structure ([Core.Partition_tree],
    [Core.Cert_tree], [Core.Tradeoff3d], ...) exposes a [*_into]
    query variant that appends its answers to a reporter instead of
    materializing an [int list].  A caller that runs many queries
    reuses one reporter across them ({!clear} between queries), so the
    steady-state reporting cost is a bounds check and an array store
    per id — no per-point consing, no [List.rev], no intermediate
    lists.  The classic list-returning entry points survive as thin
    wrappers ([to_list] of a scratch reporter).

    Reporters also support speculative reporting: {!mark} the current
    length, report optimistically, and {!truncate} back to the mark if
    the attempt must be retried (the §4.2 doubling protocol does
    exactly this).  A reporter is single-owner mutable state: never
    share one across concurrently running queries. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty reporter.  [capacity] (default 256, min 16) is the
    initial backing-array size; the buffer doubles as needed and never
    shrinks, so a long-lived reporter stops allocating once it has
    seen its largest answer. *)

val clear : t -> unit
(** Forget the contents (O(1); keeps the backing array). *)

val length : t -> int
(** Number of ids currently held. *)

val add : t -> int -> unit
(** Append one id (amortized O(1), allocation-free once warm). *)

val get : t -> int -> int
(** [get r i] is the [i]-th id reported (insertion order).  Raises
    [Invalid_argument] out of bounds. *)

val mark : t -> int
(** The current length, to be passed to {!truncate} or
    {!rewrite_from} later. *)

val truncate : t -> int -> unit
(** [truncate r m] drops every id reported after {!mark} returned
    [m] (O(1)).  Raises [Invalid_argument] if [m] exceeds the current
    length. *)

val rewrite_from : t -> int -> (int -> int) -> unit
(** [rewrite_from r m f] maps every id reported since mark [m]
    through [f], in place — how a delegating structure translates a
    secondary structure's local ids to global ones without an
    intermediate list. *)

val filter_from : t -> int -> (int -> bool) -> unit
(** [filter_from r m keep] drops every id reported since mark [m] that
    fails [keep], compacting the survivors in place (order preserved,
    allocation-free) — how a dynamized wrapper censors tombstoned ids
    out of an inner structure's answers. *)

val iter : (int -> unit) -> t -> unit
(** Insertion-order iteration. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val to_list : t -> int list
(** Contents in insertion order (allocates; compatibility path). *)

val to_array : t -> int array
(** Contents in insertion order, as a fresh array. *)
