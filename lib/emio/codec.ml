(* Typed fixed-width binary codecs for snapshot payload blocks and
   skeleton sections.  Everything is little-endian and
   architecture-independent: ints are 8-byte two's-complement, floats
   are IEEE-754 bit patterns, and no closure or in-memory
   representation detail ever reaches the wire — which is what lets a
   snapshot written by one binary (or compiler version) be reopened by
   another. *)

exception Decode of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Decode msg)) fmt

type 'a t = {
  write : Buffer.t -> 'a -> unit;
  read : bytes -> int ref -> 'a;
}

let custom ~write ~read = { write; read }
let write c buf v = c.write buf v
let read c b pos = c.read b pos

let encode c v =
  let buf = Buffer.create 256 in
  c.write buf v;
  Buffer.to_bytes buf

let decode c b =
  let pos = ref 0 in
  let v = c.read b pos in
  if !pos <> Bytes.length b then
    fail "trailing garbage: %d of %d bytes consumed" !pos (Bytes.length b);
  v

(* -- bounds-checked raw readers ---------------------------------- *)

let need b pos n =
  if n < 0 || !pos < 0 || !pos + n > Bytes.length b then
    fail "truncated: need %d bytes at offset %d of %d" n !pos (Bytes.length b)

let read_u8 b pos =
  need b pos 1;
  let v = Char.code (Bytes.get b !pos) in
  incr pos;
  v

let read_u32 b pos =
  need b pos 4;
  let p = !pos in
  let v =
    Char.code (Bytes.get b p)
    lor (Char.code (Bytes.get b (p + 1)) lsl 8)
    lor (Char.code (Bytes.get b (p + 2)) lsl 16)
    lor (Char.code (Bytes.get b (p + 3)) lsl 24)
  in
  pos := p + 4;
  v

let read_i64 b pos =
  need b pos 8;
  let p = !pos in
  let v = ref 0L in
  for i = 7 downto 0 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.get b (p + i))))
  done;
  pos := p + 8;
  !v

let write_u8 buf v =
  if v < 0 || v > 0xFF then fail "u8 out of range: %d" v;
  Buffer.add_char buf (Char.chr v)

let write_u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then fail "u32 out of range: %d" v;
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let write_i64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

(* -- primitives --------------------------------------------------- *)

let unit = { write = (fun _ () -> ()); read = (fun _ _ -> ()) }

let bool =
  {
    write = (fun buf v -> write_u8 buf (if v then 1 else 0));
    read =
      (fun b pos ->
        match read_u8 b pos with
        | 0 -> false
        | 1 -> true
        | v -> fail "bad bool tag %d" v);
  }

let u8 = { write = write_u8; read = read_u8 }
let u32 = { write = write_u32; read = read_u32 }

let int =
  {
    write = (fun buf v -> write_i64 buf (Int64.of_int v));
    read =
      (fun b pos ->
        let v = read_i64 b pos in
        let i = Int64.to_int v in
        if Int64.of_int i <> v then fail "int out of native range";
        i);
  }

let float =
  {
    write = (fun buf v -> write_i64 buf (Int64.bits_of_float v));
    read = (fun b pos -> Int64.float_of_bits (read_i64 b pos));
  }

(* A decoded count must be plausible against the bytes that remain:
   every honest element costs at least one byte for all the codecs the
   repo stores in arrays/strings, so a corrupted length field fails
   here instead of attempting a giant allocation. *)
let read_count b pos =
  let n = read_u32 b pos in
  if n > Bytes.length b - !pos then
    fail "implausible count %d with %d bytes left" n (Bytes.length b - !pos);
  n

let string =
  {
    write =
      (fun buf s ->
        write_u32 buf (String.length s);
        Buffer.add_string buf s);
    read =
      (fun b pos ->
        let n = read_count b pos in
        need b pos n;
        let s = Bytes.sub_string b !pos n in
        pos := !pos + n;
        s);
  }

(* -- combinators -------------------------------------------------- *)

let pair ca cb =
  {
    write =
      (fun buf (a, b) ->
        ca.write buf a;
        cb.write buf b);
    read =
      (fun b pos ->
        let a = ca.read b pos in
        let b' = cb.read b pos in
        (a, b'));
  }

let triple ca cb cc =
  {
    write =
      (fun buf (a, b, c) ->
        ca.write buf a;
        cb.write buf b;
        cc.write buf c);
    read =
      (fun b pos ->
        let a = ca.read b pos in
        let b' = cb.read b pos in
        let c = cc.read b pos in
        (a, b', c));
  }

let quad ca cb cc cd =
  {
    write =
      (fun buf (a, b, c, d) ->
        ca.write buf a;
        cb.write buf b;
        cc.write buf c;
        cd.write buf d);
    read =
      (fun b pos ->
        let a = ca.read b pos in
        let b' = cb.read b pos in
        let c = cc.read b pos in
        let d = cd.read b pos in
        (a, b', c, d));
  }

let option c =
  {
    write =
      (fun buf v ->
        match v with
        | None -> write_u8 buf 0
        | Some x ->
            write_u8 buf 1;
            c.write buf x);
    read =
      (fun b pos ->
        match read_u8 b pos with
        | 0 -> None
        | 1 -> Some (c.read b pos)
        | v -> fail "bad option tag %d" v);
  }

let array c =
  {
    write =
      (fun buf arr ->
        write_u32 buf (Array.length arr);
        Array.iter (fun x -> c.write buf x) arr);
    read =
      (fun b pos ->
        let n = read_count b pos in
        Array.init n (fun _ -> c.read b pos));
  }

let list c =
  {
    write =
      (fun buf l ->
        write_u32 buf (List.length l);
        List.iter (fun x -> c.write buf x) l);
    read =
      (fun b pos ->
        let n = read_count b pos in
        List.init n (fun _ -> c.read b pos));
  }

let map ~decode:of_wire ~encode:to_wire c =
  {
    write = (fun buf v -> c.write buf (to_wire v));
    read = (fun b pos -> of_wire (c.read b pos));
  }

let fix f =
  let rec self =
    {
      write = (fun buf v -> (Lazy.force inner).write buf v);
      read = (fun b pos -> (Lazy.force inner).read b pos);
    }
  and inner = lazy (f self) in
  self

(* -- versioned section framing ------------------------------------ *)

let versioned ~magic ~version c =
  if String.length magic > 0xFF then invalid_arg "Codec.versioned: magic too long";
  {
    write =
      (fun buf v ->
        write_u8 buf (String.length magic);
        Buffer.add_string buf magic;
        write_u32 buf version;
        c.write buf v);
    read =
      (fun b pos ->
        let n = read_u8 b pos in
        need b pos n;
        let got = Bytes.sub_string b !pos n in
        pos := !pos + n;
        if got <> magic then fail "bad section magic %S (expected %S)" got magic;
        let v = read_u32 b pos in
        if v <> version then
          fail "unsupported %s section version %d (expected %d)" magic v version;
        c.read b pos);
  }
