type 'a t = {
  store : 'a Store.t;
  block_ids : int array;
  length : int;
}

let of_array store items =
  let b = Store.block_size store in
  let n = Array.length items in
  let n_blocks = (n + b - 1) / b in
  let block_ids =
    Array.init n_blocks (fun i ->
        let lo = i * b in
        let len = min b (n - lo) in
        Store.alloc store (Array.sub items lo len))
  in
  { store; block_ids; length = n }

let of_list store items = of_array store (Array.of_list items)

let of_block_ids store block_ids length = { store; block_ids; length }
let store t = t.store
let empty store = { store; block_ids = [||]; length = 0 }
let length t = t.length
let block_count t = Array.length t.block_ids

let iter_blocks f t =
  Array.iter (fun id -> f (Store.read t.store id)) t.block_ids

let iter f t = iter_blocks (fun block -> Array.iter f block) t

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_array t =
  match t.block_ids with
  | [||] -> [||]
  | ids ->
      let first = Store.read t.store ids.(0) in
      if t.length = 0 then [||]
      else begin
        let out = Array.make t.length first.(0) in
        let pos = ref 0 in
        iter_blocks
          (fun block ->
            Array.blit block 0 out !pos (Array.length block);
            pos := !pos + Array.length block)
          t;
        out
      end

let read_block t i = Store.read t.store t.block_ids.(i)

let read_range t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.length then
    invalid_arg "Run.read_range: out of bounds";
  if len = 0 then [||]
  else begin
    let b = Store.block_size t.store in
    let first = pos / b and last = (pos + len - 1) / b in
    let pieces =
      List.init
        (last - first + 1)
        (fun i ->
          let block = read_block t (first + i) in
          let block_lo = (first + i) * b in
          let lo = max 0 (pos - block_lo) in
          let hi = min (Array.length block) (pos + len - block_lo) in
          Array.sub block lo (hi - lo))
    in
    Array.concat pieces
  end

let iter_range f t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.length then
    invalid_arg "Run.iter_range: out of bounds";
  if len > 0 then begin
    let b = Store.block_size t.store in
    let first = pos / b and last = (pos + len - 1) / b in
    for i = first to last do
      let block = read_block t i in
      let block_lo = i * b in
      let lo = max 0 (pos - block_lo) in
      let hi = min (Array.length block) (pos + len - block_lo) in
      for j = lo to hi - 1 do
        f block.(j)
      done
    done
  end

let iter_prefix_blocks f t =
  let n = Array.length t.block_ids in
  let rec go i =
    if i < n then
      let continue_scan = f (Store.read t.store t.block_ids.(i)) in
      if continue_scan then go (i + 1)
  in
  go 0

(* -- persistence -------------------------------------------------- *)

let to_portable t = (t.block_ids, t.length)
let of_portable store (block_ids, length) = { store; block_ids; length }

let portable_codec = Codec.pair (Codec.array Codec.int) Codec.int

type 'a stored = {
  s_blocks : 'a array array;
  s_ids : int array;
  s_len : int;
  s_bsize : int;
  s_cache : int;
}

let to_stored t =
  {
    s_blocks = Store.to_blocks t.store;
    s_ids = t.block_ids;
    s_len = t.length;
    s_bsize = Store.block_size t.store;
    s_cache = Store.cache_blocks t.store;
  }

let of_stored ~stats s =
  let store =
    Store.of_blocks ~stats ~block_size:s.s_bsize ~cache_blocks:s.s_cache
      s.s_blocks
  in
  { store; block_ids = s.s_ids; length = s.s_len }

let stored_codec elt =
  let open Codec in
  map
    ~decode:(fun ((s_blocks, s_ids, s_len), (s_bsize, s_cache)) ->
      { s_blocks; s_ids; s_len; s_bsize; s_cache })
    ~encode:(fun s -> ((s.s_blocks, s.s_ids, s.s_len), (s.s_bsize, s.s_cache)))
    (pair
       (triple (array (array elt)) (array int) int)
       (pair int int))
