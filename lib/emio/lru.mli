(** A fixed-capacity LRU set of block ids, used by {!Store} to model a
    main memory holding [capacity] blocks.  Capacity 0 models a cold
    cache where every block access is an I/O. *)

type t

val create : capacity:int -> t

val capacity : t -> int

val mem : t -> int -> bool

val touch : t -> int -> bool
(** [touch t id] records an access to block [id].  Returns [true] if
    the block was already resident (a cache hit); otherwise inserts it,
    evicting the least-recently-used block if full, and returns
    [false]. *)

val touch_report : t -> int -> bool * int option
(** Like {!touch}, but also reports the id evicted to make room (if
    any) so callers managing per-id payloads — e.g. a buffer pool
    writing back dirty pages — can act on the victim. *)

val remove : t -> int -> unit

val clear : t -> unit

val size : t -> int
