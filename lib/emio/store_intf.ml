(* The byte-level backend signature behind Store: a pluggable "disk".

   The simulator keeps blocks as OCaml arrays and charges model I/Os;
   an external backend (Diskstore.File_backend) receives each block
   already marshalled to bytes and is free to lay it out on a real
   device, cache it in a buffer pool, and record physical I/O itself.
   Backends are passed around as first-class modules paired with their
   state (the [backend] GADT), so a single ['a Store.t] type covers
   every structure in the repo without functorizing each one. *)

module type BACKEND = sig
  type t

  val name : t -> string
  (** Human-readable backend identifier (e.g. ["file:/tmp/h2.idx"]). *)

  val alloc : t -> bytes -> int
  (** Store a fresh block payload; returns its block id.  The backend
      records whatever physical I/O the allocation costs. *)

  val read : t -> int -> bytes
  (** Fetch a block payload.  Raises [Failure] on an unreadable or
      corrupt block (snapshot loading verifies checksums up front, so
      this only fires on concurrent file damage). *)

  val write : t -> int -> bytes -> unit
  (** Overwrite an existing block payload (the new payload may have a
      different length). *)

  val blocks_used : t -> int
  (** Number of blocks allocated through this backend. *)

  val drop_cache : t -> unit
  (** Flush and empty any cache (buffer pool) the backend maintains. *)

  val flush : t -> unit
  (** Force dirty state to stable storage (write-back + fsync). *)

  val close : t -> unit
  (** Release file descriptors.  The backend must not be used after. *)
end

type backend = Backend : (module BACKEND with type t = 'b) * 'b -> backend

let backend_name (Backend ((module B), b)) = B.name b
