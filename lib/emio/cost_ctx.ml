(* Scoped I/O accounting.  A Cost_ctx mirrors every Io_stats record
   made while it is installed, so a caller can attribute I/O to one
   query without resetting (or even knowing about) the ambient
   counters hanging off each store.  Contexts nest: all installed
   contexts are charged, so a batch context sees the sum of its
   queries' contexts. *)

type event =
  | Block_read of { id : int; hit : bool }
  | Block_write of { id : int; hit : bool }
  | Node of { label : string; depth : int }
  | Level of { label : string; index : int }

type t = {
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
  mutable evictions : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  trace : (event -> unit) option;
}

let create ?trace () =
  {
    reads = 0;
    writes = 0;
    hits = 0;
    evictions = 0;
    bytes_read = 0;
    bytes_written = 0;
    trace;
  }

let reads t = t.reads
let writes t = t.writes
let total t = t.reads + t.writes
let hits t = t.hits
let evictions t = t.evictions
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written

(* The installed-context stack.  Single-domain by construction (the
   whole simulator is); a Domain-aware version would make this a DLS
   key. *)
let stack : t list ref = ref []

let with_ctx ctx f =
  stack := ctx :: !stack;
  Fun.protect ~finally:(fun () ->
      match !stack with
      | top :: rest when top == ctx -> stack := rest
      | _ -> stack := List.filter (fun c -> c != ctx) !stack)
    f

let active () = match !stack with [] -> false | _ :: _ -> true

let tracing () = List.exists (fun c -> c.trace <> None) !stack

let note_read () =
  List.iter (fun c -> c.reads <- c.reads + 1) !stack

let note_write () =
  List.iter (fun c -> c.writes <- c.writes + 1) !stack

let note_hit () = List.iter (fun c -> c.hits <- c.hits + 1) !stack

let note_eviction () =
  List.iter (fun c -> c.evictions <- c.evictions + 1) !stack

let note_bytes_read n =
  List.iter (fun c -> c.bytes_read <- c.bytes_read + n) !stack

let note_bytes_written n =
  List.iter (fun c -> c.bytes_written <- c.bytes_written + n) !stack

let emit ev =
  List.iter
    (fun c -> match c.trace with None -> () | Some sink -> sink ev)
    !stack

let pp_event ppf = function
  | Block_read { id; hit } ->
      Format.fprintf ppf "read block %d%s" id (if hit then " (hit)" else "")
  | Block_write { id; hit } ->
      Format.fprintf ppf "write block %d%s" id (if hit then " (hit)" else "")
  | Node { label; depth } -> Format.fprintf ppf "node %s depth %d" label depth
  | Level { label; index } ->
      Format.fprintf ppf "level %s index %d" label index
