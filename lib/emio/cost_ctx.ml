(* Scoped I/O accounting.  A Cost_ctx mirrors every Io_stats record
   made while it is installed, so a caller can attribute I/O to one
   query without resetting (or even knowing about) the ambient
   counters hanging off each store.  Contexts nest: all installed
   contexts are charged, so a batch context sees the sum of its
   queries' contexts. *)

type event =
  | Block_read of { id : int; hit : bool }
  | Block_write of { id : int; hit : bool }
  | Node of { label : string; depth : int }
  | Level of { label : string; index : int }

type t = {
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
  mutable evictions : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  trace : (event -> unit) option;
}

let create ?trace () =
  {
    reads = 0;
    writes = 0;
    hits = 0;
    evictions = 0;
    bytes_read = 0;
    bytes_written = 0;
    trace;
  }

(* Reusing one context per domain (reset between queries) is how the
   batch engine keeps per-query accounting allocation-free; the
   counters afterwards are bit-identical to a fresh context's. *)
let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.hits <- 0;
  t.evictions <- 0;
  t.bytes_read <- 0;
  t.bytes_written <- 0

let reads t = t.reads
let writes t = t.writes
let total t = t.reads + t.writes
let hits t = t.hits
let evictions t = t.evictions
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written

(* The installed-context stack lives in thread-local storage (a
   {!Tls} key: Domain.DLS on OCaml 5, a plain ref on 4.14), so each
   domain of a parallel batch charges exactly the contexts its own
   queries installed — no cross-domain bleed, no locking. *)
let stack : t list Tls.key = Tls.new_key (fun () -> [])

let uninstall ctx =
  match Tls.get stack with
  | top :: rest when top == ctx -> Tls.set stack rest
  | l -> Tls.set stack (List.filter (fun c -> c != ctx) l)

let with_ctx ctx f =
  Tls.set stack (ctx :: Tls.get stack);
  match f () with
  | v ->
      uninstall ctx;
      v
  | exception e ->
      uninstall ctx;
      raise e

(* Mask every installed context on the calling domain for the duration
   of [f].  A delegating layer that accounts work under private sinks
   and replays the totals afterwards (Io_stats.merge_into) runs the
   work under this, so the caller's contexts are charged exactly once
   whether the work happened on this domain or on workers (whose
   thread-local stacks are empty anyway). *)
let unscoped f =
  let saved = Tls.get stack in
  Tls.set stack [];
  match f () with
  | v ->
      Tls.set stack saved;
      v
  | exception e ->
      Tls.set stack saved;
      raise e

let active () = match Tls.get stack with [] -> false | _ :: _ -> true

let has_trace c = match c.trace with None -> false | Some _ -> true

let tracing () =
  (* hand-rolled List.exists: the hot callers test this on every block
     access, and an untraced stack must answer without a generic
     -compare call or closure *)
  let rec any = function
    | [] -> false
    | c :: rest -> has_trace c || any rest
  in
  any (Tls.get stack)

let note_read () =
  List.iter (fun c -> c.reads <- c.reads + 1) (Tls.get stack)

let note_write () =
  List.iter (fun c -> c.writes <- c.writes + 1) (Tls.get stack)

let note_hit () =
  List.iter (fun c -> c.hits <- c.hits + 1) (Tls.get stack)

(* Fused note-and-tracing-test variants for the Store block paths: one
   thread-local fetch and one stack walk per block access, instead of a
   note_* walk followed by a separate {!tracing} walk.  Return [true]
   iff some installed context wants {!emit}ted events. *)

let note_read_traced () =
  let rec go traced = function
    | [] -> traced
    | c :: rest ->
        c.reads <- c.reads + 1;
        go (traced || has_trace c) rest
  in
  go false (Tls.get stack)

let note_write_traced () =
  let rec go traced = function
    | [] -> traced
    | c :: rest ->
        c.writes <- c.writes + 1;
        go (traced || has_trace c) rest
  in
  go false (Tls.get stack)

let note_hit_traced () =
  let rec go traced = function
    | [] -> traced
    | c :: rest ->
        c.hits <- c.hits + 1;
        go (traced || has_trace c) rest
  in
  go false (Tls.get stack)

(* Bulk mirror for delegating layers (the shard layer) that run work
   under private stats/contexts — e.g. on worker domains whose Tls
   never saw the caller's stack — and afterwards replay the totals
   into whatever contexts the caller has installed. *)
let note_bulk ~reads ~writes ~hits ~evictions ~bytes_read ~bytes_written =
  List.iter
    (fun c ->
      c.reads <- c.reads + reads;
      c.writes <- c.writes + writes;
      c.hits <- c.hits + hits;
      c.evictions <- c.evictions + evictions;
      c.bytes_read <- c.bytes_read + bytes_read;
      c.bytes_written <- c.bytes_written + bytes_written)
    (Tls.get stack)

let note_eviction () =
  List.iter (fun c -> c.evictions <- c.evictions + 1) (Tls.get stack)

let note_bytes_read n =
  List.iter (fun c -> c.bytes_read <- c.bytes_read + n) (Tls.get stack)

let note_bytes_written n =
  List.iter (fun c -> c.bytes_written <- c.bytes_written + n) (Tls.get stack)

let emit ev =
  List.iter
    (fun c -> match c.trace with None -> () | Some sink -> sink ev)
    (Tls.get stack)

let pp_event ppf = function
  | Block_read { id; hit } ->
      Format.fprintf ppf "read block %d%s" id (if hit then " (hit)" else "")
  | Block_write { id; hit } ->
      Format.fprintf ppf "write block %d%s" id (if hit then " (hit)" else "")
  | Node { label; depth } -> Format.fprintf ppf "node %s depth %d" label depth
  | Level { label; index } ->
      Format.fprintf ppf "level %s index %d" label index
