type 'a mem = { mutable blocks : 'a array array; mutable used : int }

type 'a ext = { backend : Store_intf.backend; mutable allocated : int }

type 'a state = Mem of 'a mem | Ext of 'a ext

(* Block caches are per-domain: each domain of a parallel batch owns a
   private LRU (plus, for external stores, the decoded-payload table
   keyed by the ids resident in that LRU), living behind a {!Tls} key.
   A single-domain process sees exactly the old shared-cache
   behaviour — the main domain's cache IS the store's cache — while
   parallel batches stop serializing (and racing) on one Lru/Hashtbl.
   The configured [cache_blocks] capacity is split across domains when
   the batch engine announces its fan-out ({!with_cache_split}), so a
   parallel run models the same total main memory as a sequential
   one. *)
type 'a cache = { lru : Lru.t; decoded : (int, 'a array) Hashtbl.t }

type 'a t = {
  mutable stats : Io_stats.t;
  block_size : int;
  mutable state : 'a state;
  cache_capacity : int;  (* configured cache_blocks, pre-split *)
  dcache : 'a cache Tls.key;
  (* block codec = Codec.array of the element codec: the wire format of
     one payload block.  Required in external mode; in simulator mode
     it is only consulted by {!export_bytes}. *)
  codec : 'a array Codec.t option;
}

(* How many ways to split a store's [cache_blocks] across domains.
   1 outside parallel batches, so caches created by sequential code
   (in particular the main domain's, created on first touch) always
   get the full configured capacity.  Worker domains first touch a
   store from inside Par.run, under [with_cache_split ~domains]. *)
let cache_split = Atomic.make 1

let with_cache_split ?(shards = 1) ~domains f =
  let prev = Atomic.exchange cache_split (max 1 shards * max 1 domains) in
  Fun.protect ~finally:(fun () -> Atomic.set cache_split prev) f

let domain_cache_key capacity =
  Tls.new_key (fun () ->
      let capacity = max 1 (capacity / Atomic.get cache_split) in
      { lru = Lru.create ~capacity; decoded = Hashtbl.create 16 })

let block_codec t op =
  match t.codec with
  | Some c -> c
  | None -> invalid_arg ("Store." ^ op ^ ": store has no codec")

let create ~stats ~block_size ?(cache_blocks = 0) ?codec ?backend () =
  if block_size <= 0 then invalid_arg "Store.create: block_size must be > 0";
  if cache_blocks < 0 then
    invalid_arg "Store.create: cache_blocks must be >= 0";
  let codec = Option.map Codec.array codec in
  let state =
    match backend with
    | None -> Mem { blocks = Array.make 16 [||]; used = 0 }
    | Some backend ->
        if codec = None then
          invalid_arg "Store.create: an external backend requires a codec";
        Ext { backend; allocated = 0 }
  in
  let dcache =
    if cache_blocks = 0 then
      (* never consulted (every cache probe is guarded by the
         capacity); one shared empty cache keeps the key total down *)
      Tls.new_key (fun () ->
          { lru = Lru.create ~capacity:0; decoded = Hashtbl.create 1 })
    else domain_cache_key cache_blocks
  in
  { stats; block_size; state; cache_capacity = cache_blocks; dcache; codec }

let block_size t = t.block_size
let stats t = t.stats
let cache_blocks t = t.cache_capacity

let blocks_used t =
  match t.state with Mem m -> m.used | Ext e -> e.allocated

let is_external t = match t.state with Mem _ -> false | Ext _ -> true
let backend t = match t.state with Mem _ -> None | Ext e -> Some e.backend

let grow m =
  let capacity = Array.length m.blocks in
  if m.used >= capacity then begin
    let bigger = Array.make (2 * capacity) [||] in
    Array.blit m.blocks 0 bigger 0 capacity;
    m.blocks <- bigger
  end

let check_block t data =
  if Array.length data > t.block_size then
    invalid_arg "Store: block larger than block_size"

(* This domain's LRU-touch: false (a charged miss) when caching is
   disabled, without ever resolving the domain-local slot. *)
let touch_cache t id =
  t.cache_capacity > 0 && Lru.touch (Tls.get t.dcache).lru id

let alloc t data =
  check_block t data;
  match t.state with
  | Mem m ->
      grow m;
      let id = m.used in
      m.blocks.(id) <- data;
      m.used <- m.used + 1;
      let hit = touch_cache t id in
      let traced =
        if hit then Io_stats.record_hit_traced t.stats
        else Io_stats.record_write_traced t.stats
      in
      if traced then Cost_ctx.emit (Block_write { id; hit });
      id
  | Ext ({ backend = Store_intf.Backend ((module B), b); _ } as e) ->
      let id = B.alloc b (Codec.encode (block_codec t "alloc") data) in
      e.allocated <- e.allocated + 1;
      if Cost_ctx.tracing () then Cost_ctx.emit (Block_write { id; hit = false });
      id

let read (t : 'a t) id : 'a array =
  match t.state with
  | Mem m ->
      if id < 0 || id >= m.used then invalid_arg "Store.read: bad block id";
      let hit = touch_cache t id in
      let traced =
        if hit then Io_stats.record_hit_traced t.stats
        else Io_stats.record_read_traced t.stats
      in
      if traced then Cost_ctx.emit (Block_read { id; hit });
      m.blocks.(id)
  | Ext { backend = Store_intf.Backend ((module B), b); _ } ->
      let codec = block_codec t "read" in
      if t.cache_capacity = 0 then begin
        if Cost_ctx.tracing () then
          Cost_ctx.emit (Block_read { id; hit = false });
        Codec.decode codec (B.read b id)
      end
      else begin
        let dc = Tls.get t.dcache in
        let in_lru, evicted = Lru.touch_report dc.lru id in
        (match evicted with
        | Some victim -> Hashtbl.remove dc.decoded victim
        | None -> ());
        match (if in_lru then Hashtbl.find_opt dc.decoded id else None) with
        | Some data ->
            if Cost_ctx.tracing () then
              Cost_ctx.emit (Block_read { id; hit = true });
            data
        | None ->
            if Cost_ctx.tracing () then
              Cost_ctx.emit (Block_read { id; hit = false });
            let data = Codec.decode codec (B.read b id) in
            Hashtbl.replace dc.decoded id data;
            data
      end

let write t id data =
  check_block t data;
  match t.state with
  | Mem m ->
      if id < 0 || id >= m.used then invalid_arg "Store.write: bad block id";
      m.blocks.(id) <- data;
      let hit = touch_cache t id in
      let traced =
        if hit then Io_stats.record_hit_traced t.stats
        else Io_stats.record_write_traced t.stats
      in
      if traced then Cost_ctx.emit (Block_write { id; hit })
  | Ext { backend = Store_intf.Backend ((module B), b); _ } ->
      if Cost_ctx.tracing () then Cost_ctx.emit (Block_write { id; hit = false });
      (* invalidate rather than update: caching the caller's array
         would alias memory the caller may mutate after the write.
         Only this domain's decoded copy is dropped — parallel batches
         are read-only by contract, so cross-domain copies cannot be
         stale while another domain is querying. *)
      if t.cache_capacity > 0 then
        Hashtbl.remove (Tls.get t.dcache).decoded id;
      B.write b id (Codec.encode (block_codec t "write") data)

let drop_cache t =
  (* the calling domain's cache; worker domains drop theirs when they
     next split (their caches die with the pool, not the store) *)
  if t.cache_capacity > 0 then begin
    let dc = Tls.get t.dcache in
    Lru.clear dc.lru;
    Hashtbl.reset dc.decoded
  end;
  match t.state with
  | Mem _ -> ()
  | Ext { backend = Store_intf.Backend ((module B), b); _ } -> B.drop_cache b

let flush t =
  match t.state with
  | Mem _ -> ()
  | Ext { backend = Store_intf.Backend ((module B), b); _ } -> B.flush b

let close t =
  match t.state with
  | Mem _ -> ()
  | Ext { backend = Store_intf.Backend ((module B), b); _ } -> B.close b

let export_bytes t =
  match t.state with
  | Mem m ->
      let codec = block_codec t "export_bytes" in
      Array.init m.used (fun i -> Codec.encode codec m.blocks.(i))
  | Ext { backend = Store_intf.Backend ((module B), b); _ } ->
      Array.init (B.blocks_used b) (fun i -> B.read b i)

let to_blocks t =
  match t.state with
  | Mem m -> Array.sub m.blocks 0 m.used
  | Ext _ -> invalid_arg "Store.to_blocks: external store"

let of_blocks ~stats ~block_size ?(cache_blocks = 0) ?codec blocks =
  let t = create ~stats ~block_size ~cache_blocks ?codec () in
  (match t.state with
  | Mem m ->
      Array.iter
        (fun b ->
          if Array.length b > block_size then
            raise (Codec.Decode "Store.of_blocks: block larger than block_size"))
        blocks;
      m.blocks <- (if Array.length blocks = 0 then Array.make 16 [||] else Array.copy blocks);
      m.used <- Array.length blocks
  | Ext _ -> assert false);
  t

let of_backend ~stats ~block_size ?(cache_blocks = 0) ~codec backend =
  let t = create ~stats ~block_size ~cache_blocks ~codec ~backend () in
  (match t.state with
  | Ext e ->
      let (Store_intf.Backend ((module B), b)) = e.backend in
      e.allocated <- B.blocks_used b
  | Mem _ -> assert false);
  t

let set_stats t stats = t.stats <- stats
