(* Marshal flags for block payloads and snapshot skeletons.  [Closures]
   is required because some structures keep comparison closures (e.g.
   Btree's [cmp]) in their skeletons; it ties snapshots to the binary
   that wrote them, which Snapshot.load surfaces as a typed error. *)
let marshal_flags = [ Marshal.Closures ]

type 'a mem = { mutable blocks : 'a array array; mutable used : int }

(* External state keeps a decoded-payload cache: the backend serves
   raw bytes (with its own physical-page accounting), and [decoded]
   memoizes the unmarshalled ['a array]s for the ids currently resident
   in the store's LRU, so hot blocks skip both the backend read and the
   re-decode.  Capacity 0 (the default) disables it entirely. *)
type 'a ext = {
  backend : Store_intf.backend;
  mutable allocated : int;
  decoded : (int, 'a array) Hashtbl.t;
}

(* [Ejected] replaces the state while {!with_ejected} runs a snapshot
   marshal: a plain counter is marshal-safe and cannot leak payloads
   (or decoded-cache contents) into the skeleton. *)
type 'a state = Mem of 'a mem | Ext of 'a ext | Ejected of { used : int }

type 'a t = {
  mutable stats : Io_stats.t;
  block_size : int;
  mutable state : 'a state;
  cache : Lru.t;
}

let ejected_error op = failwith ("Store: " ^ op ^ " during with_ejected")

let create ~stats ~block_size ?(cache_blocks = 0) ?backend () =
  if block_size <= 0 then invalid_arg "Store.create: block_size must be > 0";
  let state =
    match backend with
    | None -> Mem { blocks = Array.make 16 [||]; used = 0 }
    | Some backend -> Ext { backend; allocated = 0; decoded = Hashtbl.create 64 }
  in
  { stats; block_size; state; cache = Lru.create ~capacity:cache_blocks }

let block_size t = t.block_size
let stats t = t.stats

let blocks_used t =
  match t.state with
  | Mem m -> m.used
  | Ext e -> e.allocated
  | Ejected { used } -> used

let is_external t =
  match t.state with Mem _ | Ejected _ -> false | Ext _ -> true

let backend t =
  match t.state with Mem _ | Ejected _ -> None | Ext e -> Some e.backend

let grow m =
  let capacity = Array.length m.blocks in
  if m.used >= capacity then begin
    let bigger = Array.make (2 * capacity) [||] in
    Array.blit m.blocks 0 bigger 0 capacity;
    m.blocks <- bigger
  end

let check_block t data =
  if Array.length data > t.block_size then
    invalid_arg "Store: block larger than block_size"

let alloc t data =
  check_block t data;
  match t.state with
  | Mem m ->
      grow m;
      let id = m.used in
      m.blocks.(id) <- data;
      m.used <- m.used + 1;
      let hit = Lru.touch t.cache id in
      let traced =
        if hit then Io_stats.record_hit_traced t.stats
        else Io_stats.record_write_traced t.stats
      in
      if traced then Cost_ctx.emit (Block_write { id; hit });
      id
  | Ext ({ backend = Store_intf.Backend ((module B), b); _ } as e) ->
      let id = B.alloc b (Marshal.to_bytes data marshal_flags) in
      e.allocated <- e.allocated + 1;
      if Cost_ctx.tracing () then Cost_ctx.emit (Block_write { id; hit = false });
      id
  | Ejected _ -> ejected_error "alloc"

let read (t : 'a t) id : 'a array =
  match t.state with
  | Mem m ->
      if id < 0 || id >= m.used then invalid_arg "Store.read: bad block id";
      let hit = Lru.touch t.cache id in
      let traced =
        if hit then Io_stats.record_hit_traced t.stats
        else Io_stats.record_read_traced t.stats
      in
      if traced then Cost_ctx.emit (Block_read { id; hit });
      m.blocks.(id)
  | Ext ({ backend = Store_intf.Backend ((module B), b); _ } as e) ->
      if Lru.capacity t.cache = 0 then begin
        if Cost_ctx.tracing () then
          Cost_ctx.emit (Block_read { id; hit = false });
        (Marshal.from_bytes (B.read b id) 0 : 'a array)
      end
      else begin
        let in_lru, evicted = Lru.touch_report t.cache id in
        (match evicted with
        | Some victim -> Hashtbl.remove e.decoded victim
        | None -> ());
        match (if in_lru then Hashtbl.find_opt e.decoded id else None) with
        | Some data ->
            if Cost_ctx.tracing () then
              Cost_ctx.emit (Block_read { id; hit = true });
            data
        | None ->
            if Cost_ctx.tracing () then
              Cost_ctx.emit (Block_read { id; hit = false });
            let data = (Marshal.from_bytes (B.read b id) 0 : 'a array) in
            Hashtbl.replace e.decoded id data;
            data
      end
  | Ejected _ -> ejected_error "read"

let write t id data =
  check_block t data;
  match t.state with
  | Mem m ->
      if id < 0 || id >= m.used then invalid_arg "Store.write: bad block id";
      m.blocks.(id) <- data;
      let hit = Lru.touch t.cache id in
      let traced =
        if hit then Io_stats.record_hit_traced t.stats
        else Io_stats.record_write_traced t.stats
      in
      if traced then Cost_ctx.emit (Block_write { id; hit })
  | Ext ({ backend = Store_intf.Backend ((module B), b); _ } as e) ->
      if Cost_ctx.tracing () then Cost_ctx.emit (Block_write { id; hit = false });
      (* invalidate rather than update: caching the caller's array
         would alias memory the caller may mutate after the write *)
      Hashtbl.remove e.decoded id;
      B.write b id (Marshal.to_bytes data marshal_flags)
  | Ejected _ -> ejected_error "write"

let drop_cache t =
  Lru.clear t.cache;
  match t.state with
  | Mem _ | Ejected _ -> ()
  | Ext ({ backend = Store_intf.Backend ((module B), b); _ } as e) ->
      Hashtbl.reset e.decoded;
      B.drop_cache b

let flush t =
  match t.state with
  | Mem _ | Ejected _ -> ()
  | Ext { backend = Store_intf.Backend ((module B), b); _ } -> B.flush b

let close t =
  match t.state with
  | Mem _ | Ejected _ -> ()
  | Ext { backend = Store_intf.Backend ((module B), b); _ } -> B.close b

let export_bytes t =
  match t.state with
  | Mem m ->
      Array.init m.used (fun i -> Marshal.to_bytes m.blocks.(i) marshal_flags)
  | Ext { backend = Store_intf.Backend ((module B), b); _ } ->
      Array.init (B.blocks_used b) (fun i -> B.read b i)
  | Ejected _ -> ejected_error "export_bytes"

let attach t ~stats backend =
  let allocated =
    let (Store_intf.Backend ((module B), b)) = backend in
    B.blocks_used b
  in
  t.stats <- stats;
  t.state <- Ext { backend; allocated; decoded = Hashtbl.create 64 };
  Lru.clear t.cache

let set_stats t stats = t.stats <- stats

let with_ejected t f =
  let saved = t.state in
  t.state <- Ejected { used = blocks_used t };
  Fun.protect ~finally:(fun () -> t.state <- saved) f
