type 'a mem = { mutable blocks : 'a array array; mutable used : int }

(* External state keeps a decoded-payload cache: the backend serves
   raw bytes (with its own physical-page accounting), and [decoded]
   memoizes the decoded ['a array]s for the ids currently resident
   in the store's LRU, so hot blocks skip both the backend read and the
   re-decode.  Capacity 0 (the default) disables it entirely. *)
type 'a ext = {
  backend : Store_intf.backend;
  mutable allocated : int;
  decoded : (int, 'a array) Hashtbl.t;
}

type 'a state = Mem of 'a mem | Ext of 'a ext

type 'a t = {
  mutable stats : Io_stats.t;
  block_size : int;
  mutable state : 'a state;
  cache : Lru.t;
  (* block codec = Codec.array of the element codec: the wire format of
     one payload block.  Required in external mode; in simulator mode
     it is only consulted by {!export_bytes}. *)
  codec : 'a array Codec.t option;
}

let block_codec t op =
  match t.codec with
  | Some c -> c
  | None -> invalid_arg ("Store." ^ op ^ ": store has no codec")

let create ~stats ~block_size ?(cache_blocks = 0) ?codec ?backend () =
  if block_size <= 0 then invalid_arg "Store.create: block_size must be > 0";
  let codec = Option.map Codec.array codec in
  let state =
    match backend with
    | None -> Mem { blocks = Array.make 16 [||]; used = 0 }
    | Some backend ->
        if codec = None then
          invalid_arg "Store.create: an external backend requires a codec";
        Ext { backend; allocated = 0; decoded = Hashtbl.create 64 }
  in
  { stats; block_size; state; cache = Lru.create ~capacity:cache_blocks; codec }

let block_size t = t.block_size
let stats t = t.stats
let cache_blocks t = Lru.capacity t.cache

let blocks_used t =
  match t.state with Mem m -> m.used | Ext e -> e.allocated

let is_external t = match t.state with Mem _ -> false | Ext _ -> true
let backend t = match t.state with Mem _ -> None | Ext e -> Some e.backend

let grow m =
  let capacity = Array.length m.blocks in
  if m.used >= capacity then begin
    let bigger = Array.make (2 * capacity) [||] in
    Array.blit m.blocks 0 bigger 0 capacity;
    m.blocks <- bigger
  end

let check_block t data =
  if Array.length data > t.block_size then
    invalid_arg "Store: block larger than block_size"

let alloc t data =
  check_block t data;
  match t.state with
  | Mem m ->
      grow m;
      let id = m.used in
      m.blocks.(id) <- data;
      m.used <- m.used + 1;
      let hit = Lru.touch t.cache id in
      let traced =
        if hit then Io_stats.record_hit_traced t.stats
        else Io_stats.record_write_traced t.stats
      in
      if traced then Cost_ctx.emit (Block_write { id; hit });
      id
  | Ext ({ backend = Store_intf.Backend ((module B), b); _ } as e) ->
      let id = B.alloc b (Codec.encode (block_codec t "alloc") data) in
      e.allocated <- e.allocated + 1;
      if Cost_ctx.tracing () then Cost_ctx.emit (Block_write { id; hit = false });
      id

let read (t : 'a t) id : 'a array =
  match t.state with
  | Mem m ->
      if id < 0 || id >= m.used then invalid_arg "Store.read: bad block id";
      let hit = Lru.touch t.cache id in
      let traced =
        if hit then Io_stats.record_hit_traced t.stats
        else Io_stats.record_read_traced t.stats
      in
      if traced then Cost_ctx.emit (Block_read { id; hit });
      m.blocks.(id)
  | Ext ({ backend = Store_intf.Backend ((module B), b); _ } as e) ->
      let codec = block_codec t "read" in
      if Lru.capacity t.cache = 0 then begin
        if Cost_ctx.tracing () then
          Cost_ctx.emit (Block_read { id; hit = false });
        Codec.decode codec (B.read b id)
      end
      else begin
        let in_lru, evicted = Lru.touch_report t.cache id in
        (match evicted with
        | Some victim -> Hashtbl.remove e.decoded victim
        | None -> ());
        match (if in_lru then Hashtbl.find_opt e.decoded id else None) with
        | Some data ->
            if Cost_ctx.tracing () then
              Cost_ctx.emit (Block_read { id; hit = true });
            data
        | None ->
            if Cost_ctx.tracing () then
              Cost_ctx.emit (Block_read { id; hit = false });
            let data = Codec.decode codec (B.read b id) in
            Hashtbl.replace e.decoded id data;
            data
      end

let write t id data =
  check_block t data;
  match t.state with
  | Mem m ->
      if id < 0 || id >= m.used then invalid_arg "Store.write: bad block id";
      m.blocks.(id) <- data;
      let hit = Lru.touch t.cache id in
      let traced =
        if hit then Io_stats.record_hit_traced t.stats
        else Io_stats.record_write_traced t.stats
      in
      if traced then Cost_ctx.emit (Block_write { id; hit })
  | Ext ({ backend = Store_intf.Backend ((module B), b); _ } as e) ->
      if Cost_ctx.tracing () then Cost_ctx.emit (Block_write { id; hit = false });
      (* invalidate rather than update: caching the caller's array
         would alias memory the caller may mutate after the write *)
      Hashtbl.remove e.decoded id;
      B.write b id (Codec.encode (block_codec t "write") data)

let drop_cache t =
  Lru.clear t.cache;
  match t.state with
  | Mem _ -> ()
  | Ext ({ backend = Store_intf.Backend ((module B), b); _ } as e) ->
      Hashtbl.reset e.decoded;
      B.drop_cache b

let flush t =
  match t.state with
  | Mem _ -> ()
  | Ext { backend = Store_intf.Backend ((module B), b); _ } -> B.flush b

let close t =
  match t.state with
  | Mem _ -> ()
  | Ext { backend = Store_intf.Backend ((module B), b); _ } -> B.close b

let export_bytes t =
  match t.state with
  | Mem m ->
      let codec = block_codec t "export_bytes" in
      Array.init m.used (fun i -> Codec.encode codec m.blocks.(i))
  | Ext { backend = Store_intf.Backend ((module B), b); _ } ->
      Array.init (B.blocks_used b) (fun i -> B.read b i)

let to_blocks t =
  match t.state with
  | Mem m -> Array.sub m.blocks 0 m.used
  | Ext _ -> invalid_arg "Store.to_blocks: external store"

let of_blocks ~stats ~block_size ?(cache_blocks = 0) ?codec blocks =
  let t = create ~stats ~block_size ~cache_blocks ?codec () in
  (match t.state with
  | Mem m ->
      Array.iter
        (fun b ->
          if Array.length b > block_size then
            raise (Codec.Decode "Store.of_blocks: block larger than block_size"))
        blocks;
      m.blocks <- (if Array.length blocks = 0 then Array.make 16 [||] else Array.copy blocks);
      m.used <- Array.length blocks
  | Ext _ -> assert false);
  t

let of_backend ~stats ~block_size ?(cache_blocks = 0) ~codec backend =
  let t = create ~stats ~block_size ~cache_blocks ~codec ~backend () in
  (match t.state with
  | Ext e ->
      let (Store_intf.Backend ((module B), b)) = e.backend in
      e.allocated <- B.blocks_used b
  | Mem _ -> assert false);
  t

let set_stats t stats = t.stats <- stats
