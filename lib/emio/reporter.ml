type t = { mutable buf : int array; mutable len : int }

let create ?(capacity = 256) () =
  { buf = Array.make (max 16 capacity) 0; len = 0 }

let clear r = r.len <- 0
let length r = r.len

let grow r =
  let bigger = Array.make (2 * Array.length r.buf) 0 in
  Array.blit r.buf 0 bigger 0 r.len;
  r.buf <- bigger

let add r x =
  if r.len = Array.length r.buf then grow r;
  r.buf.(r.len) <- x;
  r.len <- r.len + 1

let get r i =
  if i < 0 || i >= r.len then invalid_arg "Reporter.get: out of bounds";
  r.buf.(i)

let mark r = r.len

let truncate r m =
  if m < 0 || m > r.len then invalid_arg "Reporter.truncate: bad mark";
  r.len <- m

let rewrite_from r m f =
  if m < 0 || m > r.len then invalid_arg "Reporter.rewrite_from: bad mark";
  for i = m to r.len - 1 do
    r.buf.(i) <- f r.buf.(i)
  done

let filter_from r m keep =
  if m < 0 || m > r.len then invalid_arg "Reporter.filter_from: bad mark";
  let w = ref m in
  for i = m to r.len - 1 do
    let x = r.buf.(i) in
    if keep x then begin
      r.buf.(!w) <- x;
      incr w
    end
  done;
  r.len <- !w

let iter f r =
  for i = 0 to r.len - 1 do
    f r.buf.(i)
  done

let fold f init r =
  let acc = ref init in
  for i = 0 to r.len - 1 do
    acc := f !acc r.buf.(i)
  done;
  !acc

let to_list r =
  let rec go i acc = if i < 0 then acc else go (i - 1) (r.buf.(i) :: acc) in
  go (r.len - 1) []

let to_array r = Array.sub r.buf 0 r.len
