(** Scoped, per-query I/O accounting.

    The simulator's ambient counters ({!Io_stats}) are one mutable sink
    per store, shared by everything that touches the store — fine for a
    whole experiment, fragile for attributing I/O to a single query
    (the historical pattern was [Io_stats.reset] between queries, which
    silently misattributes I/O whenever two measurements interleave).

    A [Cost_ctx.t] fixes that: while installed with {!with_ctx}, every
    {!Io_stats} record — from any store, B-tree, or file backend — is
    mirrored into the context, giving exact scoped counts without
    touching the ambient counters (which therefore stay bit-identical
    to the pre-context behaviour).  Contexts nest; all installed
    contexts are charged, so an outer batch context accumulates the
    totals of the per-query contexts inside it.

    A context may also carry a {e trace sink}: structures and stores
    emit {!event}s (block touches, per-node visits, per-layer/level
    progress) that the sink receives in execution order — the basis for
    query plans, flamegraph-style breakdowns, and regression traces. *)

type event =
  | Block_read of { id : int; hit : bool }
      (** A store block access ([hit] = served by the LRU for free). *)
  | Block_write of { id : int; hit : bool }
  | Node of { label : string; depth : int }
      (** A structure visited an internal node (e.g. ["ptree"]). *)
  | Level of { label : string; index : int }
      (** A structure advanced to layer/level [index] (e.g. ["h2"]). *)

type t

val create : ?trace:(event -> unit) -> unit -> t
(** A fresh context with zeroed counters.  [trace], if given, receives
    every event emitted while the context is installed. *)

val with_ctx : t -> (unit -> 'r) -> 'r
(** Install [ctx] for the duration of the callback (exception-safe).
    Nested installs stack. *)

val unscoped : (unit -> 'r) -> 'r
(** Run the callback with every context installed on the calling
    domain masked (exception-safe).  For delegating layers that do
    work under private {!Io_stats} sinks and replay the totals with
    {!Io_stats.merge_into} afterwards: masking keeps the caller's
    contexts from also being charged directly for the share of the
    work that runs on the calling domain, so they see each I/O exactly
    once — and the same count whatever the fan-out was. *)

val reset : t -> unit
(** Zero every counter, leaving the trace sink in place.  A context
    that is [reset] between measurements reports exactly what a fresh
    one would — the batch engine installs one context per domain and
    resets it between queries instead of allocating per query. *)

val reads : t -> int
val writes : t -> int
val total : t -> int
val hits : t -> int
val evictions : t -> int
val bytes_read : t -> int
val bytes_written : t -> int

val active : unit -> bool
(** Is any context installed?  (Cheap; lets hot paths skip work.) *)

val tracing : unit -> bool
(** Is any installed context tracing?  Guard event construction with
    this to keep untraced queries allocation-free. *)

val emit : event -> unit
(** Deliver an event to every installed tracing context. *)

(** Mirroring hooks — called by {!Io_stats.record_read} etc.; not for
    general use. *)

val note_read : unit -> unit
val note_write : unit -> unit
val note_hit : unit -> unit
val note_eviction : unit -> unit
val note_bytes_read : int -> unit
val note_bytes_written : int -> unit

val note_bulk :
  reads:int ->
  writes:int ->
  hits:int ->
  evictions:int ->
  bytes_read:int ->
  bytes_written:int ->
  unit
(** Charge every installed context with a batch of counts at once —
    how a delegating layer (see [Lcsearch_index.Shard]) replays I/O
    done under private accounting (e.g. on worker domains, whose
    thread-local context stacks never saw the caller's) into the
    caller's contexts. *)

val note_read_traced : unit -> bool
(** Like {!note_read} followed by {!tracing}, in a single stack walk —
    for the per-block hot paths.  Returns [true] iff some installed
    context is tracing (i.e. the caller should {!emit}). *)

val note_write_traced : unit -> bool
val note_hit_traced : unit -> bool

val pp_event : Format.formatter -> event -> unit
