(* Doubly-linked list threaded through a hash table: O(1) touch and
   eviction.  Sentinel nodes avoid option churn at the ends. *)

type node = {
  key : int;
  mutable prev : node;
  mutable next : node;
}

type t = {
  capacity : int;
  table : (int, node) Hashtbl.t;
  head : node; (* sentinel; head.next is most recently used *)
  tail : node; (* sentinel; tail.prev is least recently used *)
}

let make_sentinels () =
  let rec head = { key = min_int; prev = head; next = head } in
  let rec tail = { key = min_int; prev = tail; next = tail } in
  head.next <- tail;
  tail.prev <- head;
  (head, tail)

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  let head, tail = make_sentinels () in
  { capacity; table = Hashtbl.create 64; head; tail }

let capacity t = t.capacity

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev

let push_front t node =
  node.next <- t.head.next;
  node.prev <- t.head;
  t.head.next.prev <- node;
  t.head.next <- node

let mem t id = Hashtbl.mem t.table id

let size t = Hashtbl.length t.table

let evict_lru t =
  let victim = t.tail.prev in
  if victim != t.head then begin
    unlink victim;
    Hashtbl.remove t.table victim.key;
    Some victim.key
  end
  else None

let touch_report t id =
  if t.capacity = 0 then (false, None)
  else
    match Hashtbl.find_opt t.table id with
    | Some node ->
        unlink node;
        push_front t node;
        (true, None)
    | None ->
        let evicted =
          if Hashtbl.length t.table >= t.capacity then evict_lru t else None
        in
        let rec node = { key = id; prev = node; next = node } in
        push_front t node;
        Hashtbl.add t.table id node;
        (false, evicted)

let touch t id = fst (touch_report t id)

let remove t id =
  match Hashtbl.find_opt t.table id with
  | None -> ()
  | Some node ->
      unlink node;
      Hashtbl.remove t.table id

let clear t =
  Hashtbl.reset t.table;
  t.head.next <- t.tail;
  t.tail.prev <- t.head
