(** Typed binary codecs for on-disk payload blocks and snapshot
    skeleton sections.

    A ['a t] pairs a writer with a bounds-checked reader over a
    little-endian, architecture-independent wire format: ints are
    8-byte two's-complement, floats are IEEE-754 bit patterns, counts
    are [u32].  Unlike [Marshal], a codec never captures closures or
    in-memory representation details, so bytes written by one binary
    (or compiler version) decode in any other.

    Every way a buffer can be damaged — truncation, bad tags,
    implausible counts, trailing garbage — raises {!Decode}, which
    {!Diskstore.Snapshot} maps to its typed [Bad_payload] error. *)

type 'a t

exception Decode of string
(** Raised by readers on malformed input (and by writers on
    out-of-range values). *)

val encode : 'a t -> 'a -> bytes

val decode : 'a t -> bytes -> 'a
(** Decodes the whole buffer; trailing bytes raise {!Decode}. *)

val write : 'a t -> Buffer.t -> 'a -> unit
val read : 'a t -> bytes -> int ref -> 'a

(** {2 Primitives} *)

val unit : unit t
val bool : bool t

val u8 : int t
(** One byte, [0..255]. *)

val u32 : int t
(** Four bytes, [0..2^32-1] — lengths, counts, small ids. *)

val int : int t
(** Eight bytes, the full native range — block ids, positions. *)

val float : float t
(** Eight bytes, exact IEEE-754 bit pattern round-trip. *)

val string : string t
(** [u32] length prefix + raw bytes. *)

(** {2 Combinators} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val quad : 'a t -> 'b t -> 'c t -> 'd t -> ('a * 'b * 'c * 'd) t
val option : 'a t -> 'a option t

val array : 'a t -> 'a array t
(** [u32] count prefix; a count exceeding the remaining bytes is
    rejected before any allocation. *)

val list : 'a t -> 'a list t

val map : decode:('a -> 'b) -> encode:('b -> 'a) -> 'a t -> 'b t
(** Codec for ['b] via an isomorphism with an already-codable ['a] —
    the workhorse for records and variants ([decode] may raise
    {!Decode} to reject invalid wire values). *)

val fix : ('a t -> 'a t) -> 'a t
(** Codec for a recursive type: [fix (fun self -> ...)] hands the
    definition a codec for its own recursive occurrences. *)

val custom :
  write:(Buffer.t -> 'a -> unit) -> read:(bytes -> int ref -> 'a) -> 'a t
(** Escape hatch for hand-rolled variant encodings; compose the raw
    helpers below. *)

val versioned : magic:string -> version:int -> 'a t -> 'a t
(** Frame a codec with a magic string and a format version, so every
    structure's skeleton section is self-describing: decoding a
    section written under a different magic or version raises a
    {!Decode} that names both. *)

(** {2 Raw helpers for [custom]} *)

val write_u8 : Buffer.t -> int -> unit
val write_u32 : Buffer.t -> int -> unit
val read_u8 : bytes -> int ref -> int
val read_u32 : bytes -> int ref -> int
