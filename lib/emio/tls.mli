(** Minimal thread-local storage, selected at build time: on OCaml 5
    the implementation is [Domain.DLS] (each domain gets its own slot,
    initialized on first use), on 4.14 it is a plain global ref (there
    is only ever one domain).  {!Cost_ctx} keeps its installed-context
    stack in a key so per-query accounting stays exact when queries
    fan out across domains. *)

type 'a key

val new_key : (unit -> 'a) -> 'a key
(** [new_key init] allocates a slot; [init] produces the initial value
    the first time each domain touches the slot. *)

val get : 'a key -> 'a
val set : 'a key -> 'a -> unit
