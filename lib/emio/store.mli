(** A disk of blocks of ['a], over one of two interchangeable backends.

    The default backend is the purely in-memory {e simulator}: each
    block stores at most [block_size] items, and reading or writing a
    block charges one I/O to the attached {!Io_stats}, unless the block
    is resident in the store's LRU cache (see [cache_blocks]), in which
    case the access is a free cache hit — this models a main memory of
    [cache_blocks * block_size] items.  All of the paper's structures
    are laid out in stores like this one, so the I/O counts our
    benchmarks report are exactly the quantity Table 1 bounds.

    Passing [?backend] instead plugs in an external byte-level backend
    (see {!Store_intf.BACKEND}, implemented by [Diskstore.File_backend]):
    blocks are serialized through the store's {!Codec.t} and handed to
    the backend, which lays them out as fixed-size checksummed pages on
    a real file and records physical page reads/writes, buffer-pool
    hits and evictions, and byte counts through its own {!Io_stats}.
    The store itself charges nothing in that mode, so model-level
    accounting is never mixed with physical accounting.

    Serialization never uses [Marshal]: any store that needs to touch
    bytes (external mode, {!export_bytes}) must be given the element
    codec at creation time, which is what makes the on-disk form
    architecture- and compiler-independent. *)

type 'a t

val create :
  stats:Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  ?codec:'a Codec.t ->
  ?backend:Store_intf.backend ->
  unit ->
  'a t
(** [cache_blocks] defaults to [0] (cold cache: every access charged).
    On the simulator backend it models main memory: resident blocks
    cost nothing.  On an external backend it sizes a decoded-block
    cache: the most recently read [cache_blocks] blocks keep their
    decoded payloads in memory, so re-reading them skips both the
    backend page read and the decode (the backend's physical counters
    simply see fewer reads — model-level accounting is still never
    charged in external mode).  [backend] defaults to the in-memory
    simulator.

    [codec] is the {e element} codec; the store derives the per-block
    wire format from it.  It is required when [backend] is given
    (raises [Invalid_argument] otherwise) and by {!export_bytes};
    a pure simulator store that is only ever embedded in a skeleton
    (via {!to_blocks}) may omit it. *)

val block_size : 'a t -> int
val stats : 'a t -> Io_stats.t

val cache_blocks : 'a t -> int
(** The LRU capacity this store was created with. *)

val with_cache_split : ?shards:int -> domains:int -> (unit -> 'r) -> 'r
(** Run the callback with every store's cache capacity split
    [shards * domains] ways ([shards] defaults to [1]).  The sharded
    layer passes [shards:K] so a K-shard structure queried over
    [domains] domains models the same total main memory as one
    unsharded structure — every per-shard, per-domain cache gets
    [cache_blocks / (shards * domains)] slots.  Block caches are {e per-domain} (each domain owns a private
    LRU, and in external mode a private decoded-payload table), created
    lazily on a domain's first access to the store; a cache created
    while a split is in force gets [max 1 (cache_blocks / domains)]
    slots, so a parallel batch over [domains] domains models the same
    total main memory as a sequential run.  The batch engine wraps its
    fan-out in this; sequential code never needs it (the main domain's
    cache is created at full capacity).  During a parallel run the
    structures must be read-only: {!write} invalidates only the writing
    domain's decoded copy. *)

val alloc : 'a t -> 'a array -> int
(** Store a fresh block (length ≤ [block_size]); charges one write and
    returns the new block id. *)

val read : 'a t -> int -> 'a array
(** Fetch a block; charges one read on a cache miss.  The returned
    array is the store's own copy and must not be mutated.
    @raise Invalid_argument on a bad block id (simulator mode).
    @raise Codec.Decode if an external block's bytes are corrupt. *)

val write : 'a t -> int -> 'a array -> unit
(** Overwrite an existing block; charges one write. *)

val blocks_used : 'a t -> int
(** Number of allocated blocks: the structure's space in disk blocks. *)

val drop_cache : 'a t -> unit
(** Empty the LRU cache or the backend's buffer pool (e.g. between
    build and query phases).  Dirty pages are written back first. *)

val is_external : 'a t -> bool
(** [true] iff the store runs over an external (file) backend. *)

val backend : 'a t -> Store_intf.backend option

val flush : 'a t -> unit
(** Force dirty pages to stable storage (no-op for the simulator). *)

val close : 'a t -> unit
(** Release backend resources (no-op for the simulator). *)

val export_bytes : 'a t -> bytes array
(** Every block, codec-encoded — the payload a [Diskstore.Snapshot]
    persists.  Simulator mode encodes through the codec
    ([Invalid_argument] if the store has none); for external stores
    this returns the backend's raw payloads (only valid when the store
    is the backend's sole user). *)

(** {2 Snapshot reconstruction}

    Reviving a structure from a snapshot builds its stores out of
    persisted parts instead of [alloc] calls: {!of_blocks} rebuilds an
    auxiliary store whose blocks rode inside the skeleton section, and
    {!of_backend} wraps the snapshot's page-file payload backend. *)

val to_blocks : 'a t -> 'a array array
(** The blocks of a simulator-mode store, in id order — the form a
    skeleton embeds.  @raise Invalid_argument in external mode. *)

val of_blocks :
  stats:Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  ?codec:'a Codec.t ->
  'a array array ->
  'a t
(** Simulator-mode store whose blocks are exactly the given array
    (ids [0..n-1]); the inverse of {!to_blocks}.
    @raise Codec.Decode if a block exceeds [block_size]. *)

val of_backend :
  stats:Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  codec:'a Codec.t ->
  Store_intf.backend ->
  'a t
(** External-mode store over an already-populated backend; block ids
    [0 .. blocks_used - 1] are readable immediately. *)

val set_stats : 'a t -> Io_stats.t -> unit
(** Repoint the store's accounting at a fresh sink.  Needed when a
    structure revived from a snapshot skeleton is handed a fresh
    [Io_stats] for the reopened session. *)
