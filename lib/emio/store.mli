(** A disk of blocks of ['a], over one of two interchangeable backends.

    The default backend is the purely in-memory {e simulator}: each
    block stores at most [block_size] items, and reading or writing a
    block charges one I/O to the attached {!Io_stats}, unless the block
    is resident in the store's LRU cache (see [cache_blocks]), in which
    case the access is a free cache hit — this models a main memory of
    [cache_blocks * block_size] items.  All of the paper's structures
    are laid out in stores like this one, so the I/O counts our
    benchmarks report are exactly the quantity Table 1 bounds.

    Passing [?backend] instead plugs in an external byte-level backend
    (see {!Store_intf.BACKEND}, implemented by [Diskstore.File_backend]):
    blocks are marshalled and handed to the backend, which lays them
    out as fixed-size checksummed pages on a real file and records
    physical page reads/writes, buffer-pool hits and evictions, and
    byte counts through its own {!Io_stats}.  The store itself charges
    nothing in that mode, so model-level accounting is never mixed with
    physical accounting. *)

type 'a t

val create :
  stats:Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  ?backend:Store_intf.backend ->
  unit ->
  'a t
(** [cache_blocks] defaults to [0] (cold cache: every access charged).
    On the simulator backend it models main memory: resident blocks
    cost nothing.  On an external backend it sizes a decoded-block
    cache: the most recently read [cache_blocks] blocks keep their
    unmarshalled payloads in memory, so re-reading them skips both the
    backend page read and the decode (the backend's physical counters
    simply see fewer reads — model-level accounting is still never
    charged in external mode).  [backend] defaults to the in-memory
    simulator. *)

val block_size : 'a t -> int
val stats : 'a t -> Io_stats.t

val alloc : 'a t -> 'a array -> int
(** Store a fresh block (length ≤ [block_size]); charges one write and
    returns the new block id. *)

val read : 'a t -> int -> 'a array
(** Fetch a block; charges one read on a cache miss.  The returned
    array is the store's own copy and must not be mutated. *)

val write : 'a t -> int -> 'a array -> unit
(** Overwrite an existing block; charges one write. *)

val blocks_used : 'a t -> int
(** Number of allocated blocks: the structure's space in disk blocks. *)

val drop_cache : 'a t -> unit
(** Empty the LRU cache or the backend's buffer pool (e.g. between
    build and query phases).  Dirty pages are written back first. *)

val is_external : 'a t -> bool
(** [true] iff the store runs over an external (file) backend. *)

val backend : 'a t -> Store_intf.backend option

val flush : 'a t -> unit
(** Force dirty pages to stable storage (no-op for the simulator). *)

val close : 'a t -> unit
(** Release backend resources (no-op for the simulator). *)

val export_bytes : 'a t -> bytes array
(** Every block, marshalled — the payload a [Diskstore.Snapshot]
    persists.  For external stores this returns the backend's raw
    payloads (only valid when the store is the backend's sole user). *)

val attach : 'a t -> stats:Io_stats.t -> Store_intf.backend -> unit
(** Repoint the store at an external backend (and a fresh stats sink).
    Used when reopening a snapshot: the unmarshalled skeleton's store
    is empty, and [attach] gives it the file-backed payload blocks. *)

val set_stats : 'a t -> Io_stats.t -> unit
(** Repoint the store's accounting at a fresh sink.  Needed after
    unmarshalling a snapshot skeleton, whose auxiliary stores still
    reference the stats object of the process that built them. *)

val with_ejected : 'a t -> (unit -> 'r) -> 'r
(** Run [f] with the store's contents temporarily replaced by an empty
    placeholder (restored afterwards, also on exceptions).  This lets a
    snapshot marshal a structure's skeleton — layer lists, block ids,
    auxiliary btrees — without duplicating the payload blocks that are
    written separately as pages.  While ejected, only [blocks_used] is
    answerable; [read]/[write]/[alloc]/[export_bytes] raise [Failure
    "Store: <op> during with_ejected"]. *)

val marshal_flags : Marshal.extern_flags list
(** Flags used for block payloads and snapshot skeletons
    ([Marshal.Closures]: skeletons may contain comparator closures,
    which ties a snapshot to the binary that wrote it). *)
