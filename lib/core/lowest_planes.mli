(** The k-lowest-planes structure of §4.1 (Theorem 4.2).

    Preprocess N planes in R^3 so that, for a vertical line ℓ at (x,y)
    and any k, the k lowest planes along ℓ can be reported in
    O(log_B n + k/B) expected I/Os using O(n log2 n) expected blocks.

    The structure keeps, for each sample size 2^i of a random
    permutation, the triangulated lower envelope Δ(R_i) with conflict
    lists K(Δ), behind a grid point-location structure.  A query runs
    TryLowestPlanes with δ = 1/2, 1/4, ... until success; three
    independent copies (footnote 9) keep the expected retry cost
    geometric.  A query that exhausts its layers falls back to a full
    O(n)-I/O scan, so answers are always exact. *)

type t

val build :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  ?seed:int ->
  ?copies:int ->
  ?clip:float * float * float * float ->
  ?use_segtree:bool ->
  Geom.Plane3.t array ->
  t
(** [copies] defaults to 3 (footnote 9).  [clip] bounds the (x,y)
    region queries may come from; default (-1000, -1000, 1000, 1000).
    Queries outside the clip box use the exact fallback scan.
    [use_segtree] swaps the expected-case grid point locator for the
    worst-case {!Pointloc.Seg_tree} (more space, O(log n) guaranteed
    location — the A6 ablation). *)

val k_lowest : t -> x:float -> y:float -> k:int -> (int * float) list
(** The [min k N] lowest planes along the vertical line at (x, y), as
    (plane id, height at (x,y)) sorted by increasing height. *)

val k_lowest_arr : t -> x:float -> y:float -> k:int -> (int * float) array
(** Array form of {!k_lowest} (same protocol, same I/Os) — avoids the
    per-element list cells on the hot reporting paths. *)

val k_lowest_into :
  t ->
  x:float ->
  y:float ->
  k:int ->
  threshold:float ->
  Emio.Reporter.t ->
  int * int
(** [k_lowest_into t ~x ~y ~k ~threshold r] retrieves the [min k N]
    lowest planes and appends to [r] the ids of those with height at
    most [threshold] (callers fold their epsilon into [threshold]).
    Returns [(pushed, retrieved)]: the §4.2 doubling protocol stops as
    soon as [pushed < retrieved] (some retrieved plane lies above the
    query), doubling [k] otherwise.  Combined with
    {!Emio.Reporter.mark}/{!Emio.Reporter.truncate}, retries need no
    intermediate lists.  Ids arrive in candidate-scan order, not by
    height; in the protocol-terminating case [pushed < retrieved] the
    pushed set is exactly every plane at or below the threshold. *)

val k_lowest_count :
  t -> x:float -> y:float -> k:int -> threshold:float -> int * int
(** Count-only twin of {!k_lowest_into}: [(below, retrieved)] where
    [below] is how many of the [min k N] lowest planes have height at
    most [threshold].  Same probe sequence and I/O charges, no
    reporter, no allocation — the count query paths run the doubling
    protocol on this. *)

val length : t -> int
(** Number of planes N. *)

val layer_count : t -> int
(** Number of envelope layers per copy. *)

val space_blocks : t -> int

val fallbacks : t -> int
(** How many queries have resorted to the full-scan fallback — the
    benches report this to show the retry protocol almost never
    degenerates. *)

(** {2 Persistence}

    A [portable] is the whole structure as plain data: every layer's
    locator, conflict lists, and (optionally) the all-planes run's
    blocks.  When this structure is itself the snapshot's root (the h3
    index), the all-planes store becomes the snapshot payload instead:
    pass [~embed_payload:false] and write {!export_payload} as the
    payload section, then revive with [?backend]. *)

type portable

val to_portable : ?embed_payload:bool -> t -> portable
(** [embed_payload] defaults to [true] (fully self-contained). *)

val of_portable :
  stats:Emio.Io_stats.t ->
  ?backend:Emio.Store_intf.backend ->
  portable ->
  t
(** @raise Invalid_argument if the payload was not embedded and no
    [backend] is given. *)

val portable_codec : portable Emio.Codec.t

val export_payload : t -> bytes array
(** The all-planes store's blocks, codec-encoded — a snapshot payload
    section. *)

val payload_block_size : t -> int
