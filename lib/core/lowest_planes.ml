open Geom

(* Payload stored with each envelope triangle: the plane forming the
   envelope there (inline coefficients, so no extra I/O to evaluate the
   envelope height) and the position of its conflict list K(Δ) in the
   layer's conflict run. *)
type payload = {
  plane_id : int;
  pa : float;
  pb : float;
  pc : float;
  kstart : int;
  klen : int;
}

(* Conflict items carry inline coefficients too: scanning K(Δ) costs
   exactly ⌈|K|/B⌉ reads. *)
type kitem = { kid : int; ka : float; kb : float; kc : float }

type locator =
  | Grid of payload Pointloc.Grid.t
  | Segtree of payload Pointloc.Seg_tree.t

type layer = {
  sample_size : int;
  locator : locator;
  conflicts : kitem Emio.Run.t;
}

type copy = { layers : layer option array (* index i: sample size 2^(i+2) *) }

type t = {
  n : int;
  beta : int; (* B log_B n: the smallest k the layers are tuned for *)
  copies : copy array;
  all_planes : kitem Emio.Run.t; (* exact fallback *)
  clip : float * float * float * float;
  mutable fallback_count : int;
}

let length t = t.n
let fallbacks t = t.fallback_count

let layer_count t =
  if Array.length t.copies = 0 then 0
  else Array.length t.copies.(0).layers

let space_blocks t =
  Emio.Run.block_count t.all_planes
  + Array.fold_left
      (fun acc c ->
        Array.fold_left
          (fun acc -> function
            | None -> acc
            | Some l ->
                acc
                + (match l.locator with
                  | Grid g -> Pointloc.Grid.space_blocks g
                  | Segtree st -> Pointloc.Seg_tree.space_blocks st)
                + Emio.Run.block_count l.conflicts)
          acc c.layers)
      0 t.copies

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let kitem_of planes id =
  {
    kid = id;
    ka = Plane3.a planes.(id);
    kb = Plane3.b planes.(id);
    kc = Plane3.c planes.(id);
  }

(* Triangle top edges, labelled with the triangle's payload: input for
   the worst-case Seg_tree locator. *)
let top_edges items =
  let out = ref [] in
  Array.iter
    (fun ((corners : Geom.Point2.t array), payload) ->
      for e = 0 to 2 do
        let a = corners.(e) and b = corners.((e + 1) mod 3) in
        let o = corners.((e + 2) mod 3) in
        let dx = Geom.Point2.x b -. Geom.Point2.x a in
        if Float.abs dx > 1e-7 then begin
          let slope = (Geom.Point2.y b -. Geom.Point2.y a) /. dx in
          let at_o =
            (slope *. (Geom.Point2.x o -. Geom.Point2.x a)) +. Geom.Point2.y a
          in
          (* keep the edge when the triangle lies strictly below it *)
          if at_o > Geom.Point2.y o +. Geom.Eps.eps then
            out := (a, b, payload) :: !out
        end
      done)
    items;
  Array.of_list !out

let build_layer ~stats ~block_size ~cache_blocks ~clip ~planes ~order
    ~sample_size ~use_segtree =
  match Envelope3.build ~planes ~order ~sample_size ~clip with
  | exception Invalid_argument _ -> None
  | env ->
      let store = Emio.Store.create ~stats ~block_size ~cache_blocks () in
      let kitems = ref [] in
      let pos = ref 0 in
      let items =
        Array.map
          (fun (tr : Envelope3.triangle) ->
            let klen = Array.length tr.conflicts in
            let kstart = !pos in
            Array.iter
              (fun g -> kitems := kitem_of planes g :: !kitems)
              tr.conflicts;
            pos := !pos + klen;
            let p = planes.(tr.plane) in
            ( tr.corners,
              {
                plane_id = tr.plane;
                pa = Plane3.a p;
                pb = Plane3.b p;
                pc = Plane3.c p;
                kstart;
                klen;
              } ))
          env.Envelope3.triangles
      in
      let conflicts =
        Emio.Run.of_array store (Array.of_list (List.rev !kitems))
      in
      let locator =
        if use_segtree then
          Segtree
            (Pointloc.Seg_tree.create ~stats ~block_size ~cache_blocks
               ~segments:(top_edges items) ())
        else
          Grid
            (Pointloc.Grid.create ~stats ~block_size ~cache_blocks ~clip
               ~items ())
      in
      Some { sample_size; locator; conflicts }

let log_base b x = log x /. log b

let compute_beta ~block_size n_points =
  let nb = float_of_int (max 1 ((n_points + block_size - 1) / block_size)) in
  let b = float_of_int block_size in
  max 1 (int_of_float (ceil (b *. max 1. (log_base b nb))))

let kitem_codec =
  Emio.Codec.map
    ~decode:(fun (kid, ka, kb, kc) -> { kid; ka; kb; kc })
    ~encode:(fun k -> (k.kid, k.ka, k.kb, k.kc))
    Emio.Codec.(quad int float float float)

let payload_codec =
  Emio.Codec.map
    ~decode:(fun ((plane_id, kstart, klen), (pa, pb, pc)) ->
      { plane_id; pa; pb; pc; kstart; klen })
    ~encode:(fun p -> ((p.plane_id, p.kstart, p.klen), (p.pa, p.pb, p.pc)))
    Emio.Codec.(pair (triple int int int) (triple float float float))

let build ~stats ~block_size ?(cache_blocks = 0) ?(seed = 0) ?(copies = 3)
    ?(clip = (-1000., -1000., 1000., 1000.)) ?(use_segtree = false) planes =
  if copies < 1 then invalid_arg "Lowest_planes.build: need copies >= 1";
  (let x0, y0, x1, y1 = clip in
   if not (x0 < x1 && y0 < y1) then
     invalid_arg "Lowest_planes.build: empty clip box");
  let n = Array.length planes in
  let store =
    Emio.Store.create ~stats ~block_size ~cache_blocks ~codec:kitem_codec ()
  in
  let all_planes =
    Emio.Run.of_array store (Array.init n (kitem_of planes))
  in
  let beta = compute_beta ~block_size n in
  let max_i =
    (* sample sizes 4·2^i for i < max_i.  Queries clamp k to beta, so
       the largest sample ever requested is ~ N/(2 beta) (§4.1 defines
       R_i only up to i = log2(N/beta)); also never exceed n/2. *)
    let cap = min (n / 2) (max 4 (n / max 1 beta)) in
    let rec go i = if 4 * (1 lsl (i + 1)) <= cap then go (i + 1) else i + 1 in
    if cap < 4 then 0 else go 0
  in
  let copies_arr =
    Array.init copies (fun c ->
        let rng = Random.State.make [| seed; c; n; 0x3d |] in
        let order = Array.init n Fun.id in
        shuffle rng order;
        {
          layers =
            Array.init max_i (fun i ->
                build_layer ~stats ~block_size ~cache_blocks ~clip ~planes
                  ~order ~sample_size:(4 * (1 lsl i)) ~use_segtree);
        })
  in
  { n; beta; copies = copies_arr; all_planes; clip; fallback_count = 0 }

let height item x y = (item.ka *. x) +. (item.kb *. y) +. item.kc

(* Exact fallback: scan every plane and select the k lowest. *)
let full_scan t ~x ~y ~k =
  t.fallback_count <- t.fallback_count + 1;
  let items = Emio.Run.to_array t.all_planes in
  let withh = Array.map (fun it -> (it.kid, height it x y)) items in
  Array.sort (fun (_, a) (_, b) -> Float.compare a b) withh;
  Array.sub withh 0 (min k (Array.length withh))

(* One invocation of TryLowestPlanes (§4.1) against a specific layer. *)
type try_result =
  | Success of (int * float) array
  | Fail_threshold  (** |K| exceeded k/δ² — a smaller δ may help *)
  | Fail_below  (** fewer than k planes of K below the envelope: only a
                    smaller sample (shallower envelope) can help *)

let locate layer x y =
  match layer.locator with
  | Grid g -> Pointloc.Grid.locate g x y
  | Segtree st -> Pointloc.Seg_tree.locate_above st x y

let try_lowest layer ~x ~y ~k ~delta =
  match locate layer x y with
  | None -> Fail_threshold (* locator miss: treat as a generic failure *)
  | Some payload ->
      let threshold = int_of_float (float_of_int k /. (delta *. delta)) in
      if payload.klen > threshold then Fail_threshold
      else begin
        let items =
          Emio.Run.read_range layer.conflicts ~pos:payload.kstart
            ~len:payload.klen
        in
        let envelope_z = (payload.pa *. x) +. (payload.pb *. y) +. payload.pc in
        let below =
          Array.fold_left
            (fun acc it -> if height it x y < envelope_z then acc + 1 else acc)
            0 items
        in
        if below < k then Fail_below
        else begin
          let withh = Array.map (fun it -> (it.kid, height it x y)) items in
          Array.sort (fun (_, a) (_, b) -> Float.compare a b) withh;
          Success (Array.sub withh 0 k)
        end
      end

let inside_clip t x y =
  let xmin, ymin, xmax, ymax = t.clip in
  x > xmin && x < xmax && y > ymin && y < ymax

let k_lowest_arr t ~x ~y ~k =
  if k <= 0 then [||]
  else begin
    let k = min k t.n in
    (* §4.1's layers are tuned for k >= beta; a smaller request is
       answered by retrieving the beta lowest and truncating, which
       stays within O(log_B n + k/B) because beta/B = O(log_B n). *)
    let k_eff = min t.n (max k t.beta) in
    let n_layers = layer_count t in
    (* for k = Ω(N) the full scan is already within the O(k/B) output
       term — and the retry protocol could not beat it anyway *)
    if
      n_layers = 0
      || (not (inside_clip t x y))
      || k_eff >= t.n
      || 4 * k_eff >= t.n
    then full_scan t ~x ~y ~k
    else begin
      (* delta = 2^-attempt; layer index for sample size ~ delta n / k *)
      let rec attempt a =
        let delta = Float.pow 2. (-.float_of_int a) in
        if delta *. float_of_int t.n < 1. then full_scan t ~x ~y ~k
        else begin
          let target = delta *. float_of_int t.n /. float_of_int k_eff in
          let rho =
            (* sample size 2^(i+2): i = round(log2 target) - 2 *)
            let i = int_of_float (Float.round (log target /. log 2.)) - 2 in
            max 0 (min (n_layers - 1) i)
          in
          let result = ref None in
          let all_below_failures = ref true in
          Array.iter
            (fun c ->
              if !result = None then
                match c.layers.(rho) with
                | None -> all_below_failures := false
                | Some layer -> (
                    match try_lowest layer ~x ~y ~k:k_eff ~delta with
                    | Success r -> result := Some r
                    | Fail_below -> ()
                    | Fail_threshold -> all_below_failures := false))
            t.copies;
          match !result with
          | Some r ->
              if k < k_eff then Array.sub r 0 (min k (Array.length r)) else r
          | None ->
              (* at the smallest sample, "fewer than k of K below the
                 envelope" cannot improve with smaller delta: scan *)
              if rho = 0 && !all_below_failures then full_scan t ~x ~y ~k
              else attempt (a + 1)
        end
      in
      attempt 1
    end
  end

let k_lowest t ~x ~y ~k = Array.to_list (k_lowest_arr t ~x ~y ~k)

(* Reporting sink for the §4.2 doubling protocol: push the ids whose
   height is at most [threshold] (the caller folds its epsilon in) and
   tell the caller how many were pushed out of how many retrieved, so
   it can decide whether the answer is complete without rebuilding
   lists.  Heights come back sorted, so the pushed ids are always a
   prefix of the retrieved batch. *)
let k_lowest_into t ~x ~y ~k ~threshold r =
  let arr = k_lowest_arr t ~x ~y ~k in
  let pushed = ref 0 in
  Array.iter
    (fun (id, h) ->
      if h <= threshold then begin
        Emio.Reporter.add r id;
        incr pushed
      end)
    arr;
  (!pushed, Array.length arr)

(* -- persistence -------------------------------------------------- *)

(* The portable form of a layer embeds everything: the locator
   portable and the conflicts run with its private store's blocks. *)
type layer_p = {
  lp_sample_size : int;
  lp_locator : locator_p;
  lp_conflicts : kitem Emio.Run.stored;
}

and locator_p =
  | Grid_p of payload Pointloc.Grid.portable
  | Seg_p of payload Pointloc.Seg_tree.portable

type portable = {
  pt_n : int;
  pt_beta : int;
  pt_clip : float * float * float * float;
  pt_copies : layer_p option array array;
  pt_all : int array * int;
  (* Some: the all-planes store's blocks ride inside this portable
     (the embedded case, e.g. a tradeoff leaf).  None: they are the
     enclosing snapshot's payload, revived from its backend. *)
  pt_all_blocks : kitem array array option;
  pt_all_block_size : int;
  pt_all_cache : int;
}

let to_portable ?(embed_payload = true) t =
  let all_store = Emio.Run.store t.all_planes in
  {
    pt_n = t.n;
    pt_beta = t.beta;
    pt_clip = t.clip;
    pt_copies =
      Array.map
        (fun c ->
          Array.map
            (Option.map (fun l ->
                 {
                   lp_sample_size = l.sample_size;
                   lp_locator =
                     (match l.locator with
                     | Grid g -> Grid_p (Pointloc.Grid.to_portable g)
                     | Segtree st -> Seg_p (Pointloc.Seg_tree.to_portable st));
                   lp_conflicts = Emio.Run.to_stored l.conflicts;
                 }))
            c.layers)
        t.copies;
    pt_all = Emio.Run.to_portable t.all_planes;
    pt_all_blocks =
      (if embed_payload then Some (Emio.Store.to_blocks all_store) else None);
    pt_all_block_size = Emio.Store.block_size all_store;
    pt_all_cache = Emio.Store.cache_blocks all_store;
  }

let of_portable ~stats ?backend p =
  let all_store =
    match (p.pt_all_blocks, backend) with
    | Some blocks, _ ->
        Emio.Store.of_blocks ~stats ~block_size:p.pt_all_block_size
          ~cache_blocks:p.pt_all_cache ~codec:kitem_codec blocks
    | None, Some backend ->
        Emio.Store.of_backend ~stats ~block_size:p.pt_all_block_size
          ~cache_blocks:p.pt_all_cache ~codec:kitem_codec backend
    | None, None ->
        invalid_arg "Lowest_planes.of_portable: payload not embedded, need backend"
  in
  {
    n = p.pt_n;
    beta = p.pt_beta;
    clip = p.pt_clip;
    copies =
      Array.map
        (fun layers ->
          {
            layers =
              Array.map
                (Option.map (fun l ->
                     {
                       sample_size = l.lp_sample_size;
                       locator =
                         (match l.lp_locator with
                         | Grid_p g -> Grid (Pointloc.Grid.of_portable ~stats g)
                         | Seg_p st ->
                             Segtree (Pointloc.Seg_tree.of_portable ~stats st));
                       conflicts = Emio.Run.of_stored ~stats l.lp_conflicts;
                     }))
                layers;
          })
        p.pt_copies;
    all_planes = Emio.Run.of_portable all_store p.pt_all;
    fallback_count = 0;
  }

let portable_codec =
  let open Emio.Codec in
  let locator_codec =
    custom
      ~write:(fun buf -> function
        | Grid_p g ->
            write_u8 buf 0;
            write (Pointloc.Grid.portable_codec payload_codec) buf g
        | Seg_p st ->
            write_u8 buf 1;
            write (Pointloc.Seg_tree.portable_codec payload_codec) buf st)
      ~read:(fun b pos ->
        match read_u8 b pos with
        | 0 -> Grid_p (read (Pointloc.Grid.portable_codec payload_codec) b pos)
        | 1 ->
            Seg_p (read (Pointloc.Seg_tree.portable_codec payload_codec) b pos)
        | t -> raise (Decode (Printf.sprintf "bad locator tag %d" t)))
  in
  let layer_codec =
    map
      ~decode:(fun (lp_sample_size, lp_locator, lp_conflicts) ->
        { lp_sample_size; lp_locator; lp_conflicts })
      ~encode:(fun l -> (l.lp_sample_size, l.lp_locator, l.lp_conflicts))
      (triple int locator_codec (Emio.Run.stored_codec kitem_codec))
  in
  map
    ~decode:(fun ((pt_n, pt_beta, pt_clip), (pt_copies, pt_all),
                  (pt_all_blocks, pt_all_block_size, pt_all_cache)) ->
      { pt_n; pt_beta; pt_clip; pt_copies; pt_all; pt_all_blocks;
        pt_all_block_size; pt_all_cache })
    ~encode:(fun p ->
      ( (p.pt_n, p.pt_beta, p.pt_clip),
        (p.pt_copies, p.pt_all),
        (p.pt_all_blocks, p.pt_all_block_size, p.pt_all_cache) ))
    (triple
       (triple int int (quad float float float float))
       (pair (array (array (option layer_codec))) Emio.Run.portable_codec)
       (triple (option (array (array kitem_codec))) int int))

let export_payload t = Emio.Store.export_bytes (Emio.Run.store t.all_planes)
let payload_block_size t = Emio.Store.block_size (Emio.Run.store t.all_planes)
