open Geom

(* Payload stored with each envelope triangle: the plane forming the
   envelope there (inline coefficients, so no extra I/O to evaluate the
   envelope height) and the position of its conflict list K(Δ) in the
   layer's conflict run. *)
type payload = {
  plane_id : int;
  pa : float;
  pb : float;
  pc : float;
  kstart : int;
  klen : int;
}

(* Conflict items carry inline coefficients too: scanning K(Δ) costs
   exactly ⌈|K|/B⌉ reads.  Items are stored FLAT: a conflict run is a
   [float Emio.Run.t] holding four floats per item — id (exact below
   2^53), a, b, c — in stride-4 slots, and its store's block size is
   4B floats so each block holds exactly B items and every block
   boundary (hence every I/O charge) is identical to the boxed
   one-record-per-item layout this replaces.  A decoded block is then
   one unboxed float array: the hot scan reads coefficients
   sequentially instead of chasing a pointer per item, which is where
   most of the 3-D query time went. *)
let stride = 4

type locator =
  | Grid of payload Pointloc.Grid.t
  | Segtree of payload Pointloc.Seg_tree.t

type layer = {
  sample_size : int;
  locator : locator;
  conflicts : float Emio.Run.t; (* stride-4 flat items *)
}

type copy = { layers : layer option array (* index i: sample size 2^(i+2) *) }

type t = {
  n : int;
  beta : int; (* B log_B n: the smallest k the layers are tuned for *)
  copies : copy array;
  all_planes : float Emio.Run.t; (* exact fallback, stride-4 flat *)
  clip : float * float * float * float;
  mutable fallback_count : int;
}

let length t = t.n
let fallbacks t = t.fallback_count

let layer_count t =
  if Array.length t.copies = 0 then 0
  else Array.length t.copies.(0).layers

let space_blocks t =
  Emio.Run.block_count t.all_planes
  + Array.fold_left
      (fun acc c ->
        Array.fold_left
          (fun acc -> function
            | None -> acc
            | Some l ->
                acc
                + (match l.locator with
                  | Grid g -> Pointloc.Grid.space_blocks g
                  | Segtree st -> Pointloc.Seg_tree.space_blocks st)
                + Emio.Run.block_count l.conflicts)
          acc c.layers)
      0 t.copies

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Write item slot [j] of a flat conflict array: id then the three
   plane coefficients. *)
let put_item flat j planes id =
  let p = planes.(id) in
  flat.((stride * j) + 0) <- float_of_int id;
  flat.((stride * j) + 1) <- Plane3.a p;
  flat.((stride * j) + 2) <- Plane3.b p;
  flat.((stride * j) + 3) <- Plane3.c p

(* Triangle top edges, labelled with the triangle's payload: input for
   the worst-case Seg_tree locator. *)
let top_edges items =
  let out = ref [] in
  Array.iter
    (fun ((corners : Geom.Point2.t array), payload) ->
      for e = 0 to 2 do
        let a = corners.(e) and b = corners.((e + 1) mod 3) in
        let o = corners.((e + 2) mod 3) in
        let dx = Geom.Point2.x b -. Geom.Point2.x a in
        if Float.abs dx > 1e-7 then begin
          let slope = (Geom.Point2.y b -. Geom.Point2.y a) /. dx in
          let at_o =
            (slope *. (Geom.Point2.x o -. Geom.Point2.x a)) +. Geom.Point2.y a
          in
          (* keep the edge when the triangle lies strictly below it *)
          if at_o > Geom.Point2.y o +. Geom.Eps.eps then
            out := (a, b, payload) :: !out
        end
      done)
    items;
  Array.of_list !out

let build_layer ~stats ~block_size ~cache_blocks ~clip ~planes ~order
    ~sample_size ~use_segtree =
  match Envelope3.build ~planes ~order ~sample_size ~clip with
  | exception Invalid_argument _ -> None
  | env ->
      let store =
        Emio.Store.create ~stats ~block_size:(stride * block_size)
          ~cache_blocks ~codec:Emio.Codec.float ()
      in
      let kids = ref [] (* conflict plane ids, reversed *) in
      let pos = ref 0 in
      let items =
        Array.map
          (fun (tr : Envelope3.triangle) ->
            let klen = Array.length tr.conflicts in
            let kstart = !pos in
            Array.iter (fun g -> kids := g :: !kids) tr.conflicts;
            pos := !pos + klen;
            let p = planes.(tr.plane) in
            ( tr.corners,
              {
                plane_id = tr.plane;
                pa = Plane3.a p;
                pb = Plane3.b p;
                pc = Plane3.c p;
                kstart;
                klen;
              } ))
          env.Envelope3.triangles
      in
      let conflicts =
        let ids = Array.of_list (List.rev !kids) in
        let flat = Array.make (stride * Array.length ids) 0. in
        Array.iteri (fun j id -> put_item flat j planes id) ids;
        Emio.Run.of_array store flat
      in
      let locator =
        if use_segtree then
          Segtree
            (Pointloc.Seg_tree.create ~stats ~block_size ~cache_blocks
               ~segments:(top_edges items) ())
        else
          Grid
            (Pointloc.Grid.create ~stats ~block_size ~cache_blocks ~clip
               ~items ())
      in
      Some { sample_size; locator; conflicts }

let log_base b x = log x /. log b

let compute_beta ~block_size n_points =
  let nb = float_of_int (max 1 ((n_points + block_size - 1) / block_size)) in
  let b = float_of_int block_size in
  max 1 (int_of_float (ceil (b *. max 1. (log_base b nb))))

let payload_codec =
  Emio.Codec.map
    ~decode:(fun ((plane_id, kstart, klen), (pa, pb, pc)) ->
      { plane_id; pa; pb; pc; kstart; klen })
    ~encode:(fun p -> ((p.plane_id, p.kstart, p.klen), (p.pa, p.pb, p.pc)))
    Emio.Codec.(pair (triple int int int) (triple float float float))

let build ~stats ~block_size ?(cache_blocks = 0) ?(seed = 0) ?(copies = 3)
    ?(clip = (-1000., -1000., 1000., 1000.)) ?(use_segtree = false) planes =
  if copies < 1 then invalid_arg "Lowest_planes.build: need copies >= 1";
  (let x0, y0, x1, y1 = clip in
   if not (x0 < x1 && y0 < y1) then
     invalid_arg "Lowest_planes.build: empty clip box");
  let n = Array.length planes in
  let store =
    Emio.Store.create ~stats ~block_size:(stride * block_size) ~cache_blocks
      ~codec:Emio.Codec.float ()
  in
  let all_planes =
    let flat = Array.make (stride * n) 0. in
    for id = 0 to n - 1 do
      put_item flat id planes id
    done;
    Emio.Run.of_array store flat
  in
  let beta = compute_beta ~block_size n in
  let max_i =
    (* sample sizes 4·2^i for i < max_i.  Queries clamp k to beta, so
       the largest sample ever requested is ~ N/(2 beta) (§4.1 defines
       R_i only up to i = log2(N/beta)); also never exceed n/2. *)
    let cap = min (n / 2) (max 4 (n / max 1 beta)) in
    let rec go i = if 4 * (1 lsl (i + 1)) <= cap then go (i + 1) else i + 1 in
    if cap < 4 then 0 else go 0
  in
  let copies_arr =
    Array.init copies (fun c ->
        let rng = Random.State.make [| seed; c; n; 0x3d |] in
        let order = Array.init n Fun.id in
        shuffle rng order;
        {
          layers =
            Array.init max_i (fun i ->
                build_layer ~stats ~block_size ~cache_blocks ~clip ~planes
                  ~order ~sample_size:(4 * (1 lsl i)) ~use_segtree);
        })
  in
  { n; beta; copies = copies_arr; all_planes; clip; fallback_count = 0 }

(* -- query scratch ------------------------------------------------- *)

(* Per-domain candidate buffer: the single charged pass over a conflict
   list (or the full-scan fallback) lands plane ids and heights in
   these parallel arrays.  Parallel int/float arrays rather than an
   (id, height) tuple array because float array elements stay unboxed —
   a tuple would cost five words per candidate, which at N = 8192 was
   the bulk of the 39k words/query the old pipeline allocated.
   Domain-local ({!Emio.Tls}) so parallel batches never share or race
   on a buffer. *)
type scratch = {
  mutable sids : int array;
  mutable shts : float array;
  mutable slen : int;
}

let scratch_key : scratch Emio.Tls.key =
  Emio.Tls.new_key (fun () ->
      { sids = Array.make 256 0; shts = Array.make 256 0.; slen = 0 })

(* Growth never blits: the buffer is refilled from scratch on every
   select, so stale contents are dead. *)
let scratch_reserve sc n =
  if Array.length sc.sids < n then begin
    let cap = ref (2 * Array.length sc.sids) in
    while !cap < n do
      cap := 2 * !cap
    done;
    sc.sids <- Array.make !cap 0;
    sc.shts <- Array.make !cap 0.
  end

(* Exact fallback: scan every plane, buffering (id, height) as we go.
   Explicit block loop rather than [iter_blocks] so no closure is built
   on the hot path; charges are identical (one read per block). *)
let load_all t sc ~x ~y ~ids =
  t.fallback_count <- t.fallback_count + 1;
  scratch_reserve sc t.n;
  sc.slen <- 0;
  let nb = Emio.Run.block_count t.all_planes in
  (* the materializing scan this replaces ([Run.to_array]) sampled
     block 0 for an element witness before iterating, charging that
     block twice; the golden Table-1 rows pin those counts, so the
     fallback keeps the extra charge *)
  if nb > 0 then ignore (Emio.Run.read_block t.all_planes 0);
  for b = 0 to nb - 1 do
    let block = Emio.Run.read_block t.all_planes b in
    let nitems = Array.length block / stride in
    let base = sc.slen in
    if ids then
      for i = 0 to nitems - 1 do
        let f = stride * i in
        sc.sids.(base + i) <- int_of_float block.(f);
        sc.shts.(base + i) <-
          (block.(f + 1) *. x) +. (block.(f + 2) *. y) +. block.(f + 3)
      done
    else
      for i = 0 to nitems - 1 do
        let f = stride * i in
        sc.shts.(base + i) <-
          (block.(f + 1) *. x) +. (block.(f + 2) *. y) +. block.(f + 3)
      done;
    sc.slen <- base + nitems
  done

(* Buffer items [pos, pos+len) of a conflict run, evaluating each
   plane at (x, y) during the one charged scan — the zero-copy twin of
   the old [read_range]-then-map pipeline, reading exactly the same
   blocks.  The count of heights strictly below [cutoff] (the envelope
   height, for §4.1's below-test) accumulates in the same pass so the
   caller never walks the scratch a second time, and [ids = false]
   skips the id stores for count-only retrievals that will never read
   them. *)
let load_range sc run ~pos ~len ~x ~y ~ids ~cutoff =
  scratch_reserve sc len;
  sc.slen <- 0;
  let below = ref 0 in
  if len > 0 then begin
    (* [pos]/[len] count items; the flat run counts floats.  The store
       block size is stride*B, so item i's four slots live in block
       i/B — the same block index the boxed layout charged. *)
    let fb = Emio.Store.block_size (Emio.Run.store run) in
    let b = fb / stride in
    let first = pos / b and last = (pos + len - 1) / b in
    let out = ref 0 in
    for blk = first to last do
      let block = Emio.Run.read_block run blk in
      let block_lo = blk * b in
      let lo = max 0 (pos - block_lo) in
      let hi = min (Array.length block / stride) (pos + len - block_lo) in
      (* within one block the output slot is [o + i]: no per-item
         counter bump *)
      let o = !out - lo in
      (* the loop bounds prove every access in range: stride*hi <=
         Array.length block (hi is clamped to it) and scratch_reserve
         sized sids/shts for at least [len] >= o + hi slots, so the
         unchecked accesses below are safe — this loop is the single
         hottest scan in the repo and the bounds checks were ~a third
         of its time *)
      if ids then
        for i = lo to hi - 1 do
          let f = stride * i in
          Array.unsafe_set sc.sids (o + i)
            (int_of_float (Array.unsafe_get block f));
          let h =
            (Array.unsafe_get block (f + 1) *. x)
            +. (Array.unsafe_get block (f + 2) *. y)
            +. Array.unsafe_get block (f + 3)
          in
          Array.unsafe_set sc.shts (o + i) h;
          if h < cutoff then incr below
        done
      else
        for i = lo to hi - 1 do
          let f = stride * i in
          let h =
            (Array.unsafe_get block (f + 1) *. x)
            +. (Array.unsafe_get block (f + 2) *. y)
            +. Array.unsafe_get block (f + 3)
          in
          Array.unsafe_set sc.shts (o + i) h;
          if h < cutoff then incr below
        done;
      out := !out + (hi - lo)
    done;
    sc.slen <- !out
  end;
  !below

(* One invocation of TryLowestPlanes (§4.1) against a specific layer.
   On [Success] the scratch holds the conflict list K(Δ). *)
type try_result =
  | Success
  | Fail_threshold  (** |K| exceeded k/δ² — a smaller δ may help *)
  | Fail_below  (** fewer than k planes of K below the envelope: only a
                    smaller sample (shallower envelope) can help *)

let locate layer x y =
  match layer.locator with
  | Grid g -> Pointloc.Grid.locate g x y
  | Segtree st -> Pointloc.Seg_tree.locate_above st x y

let try_lowest layer sc ~x ~y ~k ~delta ~ids =
  match locate layer x y with
  | None -> Fail_threshold (* locator miss: treat as a generic failure *)
  | Some payload ->
      let threshold = int_of_float (float_of_int k /. (delta *. delta)) in
      if payload.klen > threshold then Fail_threshold
      else begin
        let envelope_z = (payload.pa *. x) +. (payload.pb *. y) +. payload.pc in
        let below =
          load_range sc layer.conflicts ~pos:payload.kstart ~len:payload.klen
            ~x ~y ~ids ~cutoff:envelope_z
        in
        if below < k then Fail_below else Success
      end

let inside_clip t x y =
  let xmin, ymin, xmax, ymax = t.clip in
  x > xmin && x < xmax && y > ymin && y < ymax

(* Run §4.1's retry protocol, leaving the candidate set in [sc] —
   either a successful conflict list or the full plane set — and
   returning the retrieval count min(k, n).  The layer choice, copy
   order, and fallback conditions mirror the legacy array path
   exactly, so the blocks read (and hence every I/O charge) are
   bit-identical to it. *)
let select t sc ~x ~y ~k ~ids =
  let k = min k t.n in
  (* §4.1's layers are tuned for k >= beta; a smaller request is
     answered by retrieving the beta lowest and truncating, which
     stays within O(log_B n + k/B) because beta/B = O(log_B n). *)
  let k_eff = min t.n (max k t.beta) in
  let n_layers = layer_count t in
  (* for k = Ω(N) the full scan is already within the O(k/B) output
     term — and the retry protocol could not beat it anyway *)
  if
    n_layers = 0
    || (not (inside_clip t x y))
    || k_eff >= t.n
    || 4 * k_eff >= t.n
  then begin
    load_all t sc ~x ~y ~ids;
    k
  end
  else begin
    (* delta = 2^-attempt; layer index for sample size ~ delta n / k *)
    let rec attempt a =
      let delta = Float.pow 2. (-.float_of_int a) in
      if delta *. float_of_int t.n < 1. then begin
        load_all t sc ~x ~y ~ids;
        k
      end
      else begin
        let target = delta *. float_of_int t.n /. float_of_int k_eff in
        let rho =
          (* sample size 2^(i+2): i = round(log2 target) - 2 *)
          let i = int_of_float (Float.round (log target /. log 2.)) - 2 in
          max 0 (min (n_layers - 1) i)
        in
        let success = ref false in
        let all_below_failures = ref true in
        let nc = Array.length t.copies in
        let ci = ref 0 in
        while (not !success) && !ci < nc do
          (match t.copies.(!ci).layers.(rho) with
          | None -> all_below_failures := false
          | Some layer -> (
              match try_lowest layer sc ~x ~y ~k:k_eff ~delta ~ids with
              | Success -> success := true
              | Fail_below -> ()
              | Fail_threshold -> all_below_failures := false));
          incr ci
        done;
        if !success then k
        else if
          (* at the smallest sample, "fewer than k of K below the
             envelope" cannot improve with smaller delta: scan *)
          rho = 0 && !all_below_failures
        then begin
          load_all t sc ~x ~y ~ids;
          k
        end
        else attempt (a + 1)
      end
    in
    attempt 1
  end

(* Materializing compat path (knn, oracles): sort the candidate set by
   height and keep the k lowest.  The candidates arrive in run order —
   the same order the old pipeline sorted — so ties break
   identically. *)
let k_lowest_arr t ~x ~y ~k =
  if k <= 0 then [||]
  else begin
    let k = min k t.n in
    let sc = Emio.Tls.get scratch_key in
    let k_ret = select t sc ~x ~y ~k ~ids:true in
    let withh = Array.init sc.slen (fun i -> (sc.sids.(i), sc.shts.(i))) in
    Array.sort (fun (_, a) (_, b) -> Float.compare a b) withh;
    Array.sub withh 0 (min k_ret (Array.length withh))
  end

let k_lowest t ~x ~y ~k = Array.to_list (k_lowest_arr t ~x ~y ~k)

(* How many of the candidate set lie at or below [threshold].  Capped
   at the retrieval count k this equals the count over the k lowest:
   if fewer than k candidates clear the threshold they all belong to
   every k-lowest selection, and otherwise the k lowest all clear it —
   either way no sort (hence no allocation) is needed, and the answer
   does not depend on how ties were ordered. *)
let count_below sc ~threshold =
  let cb = ref 0 in
  for i = 0 to sc.slen - 1 do
    if sc.shts.(i) <= threshold then incr cb
  done;
  !cb

(* Reporting sink for the §4.2 doubling protocol: push the ids whose
   height is at most [threshold] (the caller folds its epsilon in) and
   tell the caller how many were pushed out of how many retrieved, so
   it can decide whether the answer is complete without rebuilding
   lists.  Ids are pushed in candidate-scan order; in the terminating
   case of the protocol (pushed < retrieved) the pushed set is exactly
   every plane at or below the threshold, so the reported set is
   independent of tie order. *)
let k_lowest_into t ~x ~y ~k ~threshold r =
  if k <= 0 then (0, 0)
  else begin
    let sc = Emio.Tls.get scratch_key in
    let k_ret = select t sc ~x ~y ~k ~ids:true in
    let pushed = min (count_below sc ~threshold) k_ret in
    let left = ref pushed in
    let i = ref 0 in
    while !left > 0 do
      if sc.shts.(!i) <= threshold then begin
        Emio.Reporter.add r sc.sids.(!i);
        decr left
      end;
      incr i
    done;
    (pushed, k_ret)
  end

(* Count-only twin of {!k_lowest_into} for the count query paths: same
   probe sequence, same charges, no reporter, zero allocation. *)
let k_lowest_count t ~x ~y ~k ~threshold =
  if k <= 0 then (0, 0)
  else begin
    let sc = Emio.Tls.get scratch_key in
    let k_ret = select t sc ~x ~y ~k ~ids:false in
    (min (count_below sc ~threshold) k_ret, k_ret)
  end

(* -- persistence -------------------------------------------------- *)

(* The portable form of a layer embeds everything: the locator
   portable and the conflicts run with its private store's blocks. *)
type layer_p = {
  lp_sample_size : int;
  lp_locator : locator_p;
  lp_conflicts : float Emio.Run.stored;
}

and locator_p =
  | Grid_p of payload Pointloc.Grid.portable
  | Seg_p of payload Pointloc.Seg_tree.portable

type portable = {
  pt_n : int;
  pt_beta : int;
  pt_clip : float * float * float * float;
  pt_copies : layer_p option array array;
  pt_all : int array * int;
  (* Some: the all-planes store's blocks ride inside this portable
     (the embedded case, e.g. a tradeoff leaf).  None: they are the
     enclosing snapshot's payload, revived from its backend. *)
  pt_all_blocks : float array array option;
  pt_all_block_size : int;
  pt_all_cache : int;
}

let to_portable ?(embed_payload = true) t =
  let all_store = Emio.Run.store t.all_planes in
  {
    pt_n = t.n;
    pt_beta = t.beta;
    pt_clip = t.clip;
    pt_copies =
      Array.map
        (fun c ->
          Array.map
            (Option.map (fun l ->
                 {
                   lp_sample_size = l.sample_size;
                   lp_locator =
                     (match l.locator with
                     | Grid g -> Grid_p (Pointloc.Grid.to_portable g)
                     | Segtree st -> Seg_p (Pointloc.Seg_tree.to_portable st));
                   lp_conflicts = Emio.Run.to_stored l.conflicts;
                 }))
            c.layers)
        t.copies;
    pt_all = Emio.Run.to_portable t.all_planes;
    pt_all_blocks =
      (if embed_payload then Some (Emio.Store.to_blocks all_store) else None);
    pt_all_block_size = Emio.Store.block_size all_store;
    pt_all_cache = Emio.Store.cache_blocks all_store;
  }

let of_portable ~stats ?backend p =
  let all_store =
    match (p.pt_all_blocks, backend) with
    | Some blocks, _ ->
        Emio.Store.of_blocks ~stats ~block_size:p.pt_all_block_size
          ~cache_blocks:p.pt_all_cache ~codec:Emio.Codec.float blocks
    | None, Some backend ->
        Emio.Store.of_backend ~stats ~block_size:p.pt_all_block_size
          ~cache_blocks:p.pt_all_cache ~codec:Emio.Codec.float backend
    | None, None ->
        invalid_arg "Lowest_planes.of_portable: payload not embedded, need backend"
  in
  {
    n = p.pt_n;
    beta = p.pt_beta;
    clip = p.pt_clip;
    copies =
      Array.map
        (fun layers ->
          {
            layers =
              Array.map
                (Option.map (fun l ->
                     {
                       sample_size = l.lp_sample_size;
                       locator =
                         (match l.lp_locator with
                         | Grid_p g -> Grid (Pointloc.Grid.of_portable ~stats g)
                         | Seg_p st ->
                             Segtree (Pointloc.Seg_tree.of_portable ~stats st));
                       conflicts = Emio.Run.of_stored ~stats l.lp_conflicts;
                     }))
                layers;
          })
        p.pt_copies;
    all_planes = Emio.Run.of_portable all_store p.pt_all;
    fallback_count = 0;
  }

let portable_codec =
  let open Emio.Codec in
  let locator_codec =
    custom
      ~write:(fun buf -> function
        | Grid_p g ->
            write_u8 buf 0;
            write (Pointloc.Grid.portable_codec payload_codec) buf g
        | Seg_p st ->
            write_u8 buf 1;
            write (Pointloc.Seg_tree.portable_codec payload_codec) buf st)
      ~read:(fun b pos ->
        match read_u8 b pos with
        | 0 -> Grid_p (read (Pointloc.Grid.portable_codec payload_codec) b pos)
        | 1 ->
            Seg_p (read (Pointloc.Seg_tree.portable_codec payload_codec) b pos)
        | t -> raise (Decode (Printf.sprintf "bad locator tag %d" t)))
  in
  let layer_codec =
    map
      ~decode:(fun (lp_sample_size, lp_locator, lp_conflicts) ->
        { lp_sample_size; lp_locator; lp_conflicts })
      ~encode:(fun l -> (l.lp_sample_size, l.lp_locator, l.lp_conflicts))
      (triple int locator_codec (Emio.Run.stored_codec float))
  in
  map
    ~decode:(fun ((pt_n, pt_beta, pt_clip), (pt_copies, pt_all),
                  (pt_all_blocks, pt_all_block_size, pt_all_cache)) ->
      { pt_n; pt_beta; pt_clip; pt_copies; pt_all; pt_all_blocks;
        pt_all_block_size; pt_all_cache })
    ~encode:(fun p ->
      ( (p.pt_n, p.pt_beta, p.pt_clip),
        (p.pt_copies, p.pt_all),
        (p.pt_all_blocks, p.pt_all_block_size, p.pt_all_cache) ))
    (triple
       (triple int int (quad float float float float))
       (pair (array (array (option layer_codec))) Emio.Run.portable_codec)
       (triple (option (array (array float))) int int))

let export_payload t = Emio.Store.export_bytes (Emio.Run.store t.all_planes)
let payload_block_size t = Emio.Store.block_size (Emio.Run.store t.all_planes)
