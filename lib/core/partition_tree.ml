open Partition

type kind = Kd | Simplicial | Shallow

type node_ref = Leaf of int | Node of int

type child = { cell : Cells.cell; sub : node_ref }

type item = { coords : Cells.point; pid : int }

type t = {
  leaves : item Emio.Store.t;
  internals : child Emio.Store.t;
  root : node_ref option;
  length : int;
  dim : int;
  mutable visited : int;
}

let length t = t.length
let dim t = t.dim
let last_visited_nodes t = t.visited

let space_blocks t =
  Emio.Store.blocks_used t.leaves + Emio.Store.blocks_used t.internals

let partition_of = function
  | Kd -> Partitioner.kd
  | Simplicial -> Partitioner.simplicial
  | Shallow -> Partitioner.shallow

let item_codec =
  Emio.Codec.map
    ~decode:(fun (coords, pid) -> { coords; pid })
    ~encode:(fun it -> (it.coords, it.pid))
    Emio.Codec.(pair Cells.point_codec int)

let node_ref_codec =
  Emio.Codec.map
    ~decode:(fun (tag, id) ->
      match tag with
      | 0 -> Leaf id
      | 1 -> Node id
      | t -> raise (Emio.Codec.Decode (Printf.sprintf "bad node_ref tag %d" t)))
    ~encode:(function Leaf id -> (0, id) | Node id -> (1, id))
    Emio.Codec.(pair u8 int)

let child_codec =
  Emio.Codec.map
    ~decode:(fun (cell, sub) -> { cell; sub })
    ~encode:(fun c -> (c.cell, c.sub))
    Emio.Codec.(pair Cells.cell_codec node_ref_codec)

let build ~stats ~block_size ?(cache_blocks = 0) ?backend ?(partitioner = Kd)
    ~dim points =
  Array.iter
    (fun p ->
      if Array.length p <> dim then
        invalid_arg "Partition_tree.build: wrong point dimension")
    points;
  let leaves =
    Emio.Store.create ~stats ~block_size ~cache_blocks ~codec:item_codec
      ?backend ()
  in
  let internals = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let partition = partition_of partitioner in
  let rec build_node (items : item array) =
    let nv = Array.length items in
    if nv <= block_size then Leaf (Emio.Store.alloc leaves items)
    else begin
      let n_blocks = (nv + block_size - 1) / block_size in
      let r = max 2 (min block_size (2 * n_blocks)) in
      let coords = Array.map (fun it -> it.coords) items in
      let parts = partition ~points:coords ~r in
      (* degenerate guard (all points equal): fall back to arbitrary
         halving so the recursion always terminates *)
      let parts =
        if Array.length parts >= 2 then
          Array.map
            (fun (cell, idxs) ->
              (cell, Array.map (fun i -> items.(i)) idxs))
            parts
        else begin
          let half = nv / 2 in
          let a = Array.sub items 0 half
          and b = Array.sub items half (nv - half) in
          Array.map
            (fun group ->
              ( Cells.bounding_box (Array.map (fun it -> it.coords) group),
                group ))
            [| a; b |]
        end
      in
      let children =
        Array.map
          (fun (cell, group) -> { cell; sub = build_node group })
          parts
      in
      Node (Emio.Store.alloc internals children)
    end
  in
  let items = Array.mapi (fun i p -> { coords = p; pid = i }) points in
  let root = if Array.length items = 0 then None else Some (build_node items) in
  { leaves; internals; root; length = Array.length points; dim; visited = 0 }

(* Report every point of a subtree: O(subtree blocks) I/Os.  Explicit
   for-loops, not Array.iter: the iteration closures were an
   allocation per node visited, which is what separates a ~30 and a
   ~60 words/query batch engine. *)
let rec report_subtree t ~report = function
  | Leaf id ->
      let items = Emio.Store.read t.leaves id in
      for i = 0 to Array.length items - 1 do
        report items.(i).pid
      done
  | Node id ->
      let children = Emio.Store.read t.internals id in
      for i = 0 to Array.length children - 1 do
        report_subtree t ~report children.(i).sub
      done

(* The shared traversal: every reported pid goes through [report], so
   the reporter-sink, list and pure-counting entry points all run the
   same (I/O-identical) walk without materializing anything. *)
let query_with t ~classify_cell ~keep_point ~report =
  t.visited <- 0;
  let rec go ~depth = function
    | Leaf id ->
        t.visited <- t.visited + 1;
        if Emio.Cost_ctx.tracing () then
          Emio.Cost_ctx.emit (Node { label = "ptree"; depth });
        let items = Emio.Store.read t.leaves id in
        for i = 0 to Array.length items - 1 do
          let it = items.(i) in
          if keep_point it.coords then report it.pid
        done
    | Node id ->
        t.visited <- t.visited + 1;
        if Emio.Cost_ctx.tracing () then
          Emio.Cost_ctx.emit (Node { label = "ptree"; depth });
        let children = Emio.Store.read t.internals id in
        for i = 0 to Array.length children - 1 do
          let child = children.(i) in
          match classify_cell child.cell with
          | Cells.R_inside -> report_subtree t ~report child.sub
          | Cells.R_disjoint -> ()
          | Cells.R_crossing -> go ~depth:(depth + 1) child.sub
        done
  in
  match t.root with None -> () | Some root -> go ~depth:0 root

let simplex_classify constrs cell = Cells.classify_region cell constrs

let simplex_keep constrs p =
  List.for_all (fun c -> Cells.satisfies c p) constrs

let query_simplex_iter t constrs report =
  query_with t ~classify_cell:(simplex_classify constrs)
    ~keep_point:(simplex_keep constrs) ~report

let query_simplex_into t constrs r =
  query_with t ~classify_cell:(simplex_classify constrs)
    ~keep_point:(simplex_keep constrs)
    ~report:(Emio.Reporter.add r)

let query_simplex_count t constrs =
  let n = ref 0 in
  query_with t ~classify_cell:(simplex_classify constrs)
    ~keep_point:(simplex_keep constrs)
    ~report:(fun _ -> incr n);
  !n

let query_simplex t constrs =
  let acc = ref [] in
  query_with t ~classify_cell:(simplex_classify constrs)
    ~keep_point:(simplex_keep constrs)
    ~report:(fun pid -> acc := pid :: !acc);
  !acc

let halfspace_constr t ~a0 ~a =
  Cells.constr_of_halfspace ~dim:t.dim ~a0 ~a

(* Halfspace queries are the paper's (and the batch engine's) hot
   path, so they bypass the constraint-list machinery: one constr,
   classified and tested directly.  The closures below are the only
   per-query allocations — nothing is allocated per child or per
   point, where the list path paid a closure ([simplex_keep]) per
   candidate point and ref cells ([classify_region]) per cell. *)
let halfspace_classify c cell =
  match Cells.classify cell c with
  | Cells.Inside -> Cells.R_inside
  | Cells.Outside -> Cells.R_disjoint
  | Cells.Crossing -> Cells.R_crossing

let query_halfspace_with t ~a0 ~a ~report =
  let c = halfspace_constr t ~a0 ~a in
  query_with t ~classify_cell:(halfspace_classify c)
    ~keep_point:(Cells.satisfies c) ~report

let query_halfspace t ~a0 ~a =
  let acc = ref [] in
  query_halfspace_with t ~a0 ~a ~report:(fun pid -> acc := pid :: !acc);
  !acc

let query_halfspace_into t ~a0 ~a r =
  query_halfspace_with t ~a0 ~a ~report:(Emio.Reporter.add r)

let query_halfspace_iter t ~a0 ~a report =
  query_halfspace_with t ~a0 ~a ~report

let query_halfspace_count t ~a0 ~a =
  let n = ref 0 in
  query_halfspace_with t ~a0 ~a ~report:(fun _ -> incr n);
  !n

let points t =
  let out = Array.make t.length [||] in
  for i = 0 to Emio.Store.blocks_used t.leaves - 1 do
    Array.iter (fun it -> out.(it.pid) <- it.coords) (Emio.Store.read t.leaves i)
  done;
  out

(* -- persistence: leaves are the payload, internals ride in the
   skeleton (or everything is embedded, for secondary trees) --------- *)

type portable = {
  tp_internal_blocks : child array array;
  tp_root : node_ref option;
  tp_length : int;
  tp_dim : int;
  tp_block_size : int;
  tp_cache_blocks : int;
  tp_leaf_blocks : item array array option;
}

let to_portable ?(embed_payload = true) t =
  {
    tp_internal_blocks = Emio.Store.to_blocks t.internals;
    tp_root = t.root;
    tp_length = t.length;
    tp_dim = t.dim;
    tp_block_size = Emio.Store.block_size t.leaves;
    tp_cache_blocks = Emio.Store.cache_blocks t.leaves;
    tp_leaf_blocks =
      (if embed_payload then Some (Emio.Store.to_blocks t.leaves) else None);
  }

let of_portable ~stats ?backend p =
  let block_size = p.tp_block_size and cache_blocks = p.tp_cache_blocks in
  let leaves =
    match (p.tp_leaf_blocks, backend) with
    | Some blocks, _ ->
        Emio.Store.of_blocks ~stats ~block_size ~cache_blocks
          ~codec:item_codec blocks
    | None, Some backend ->
        Emio.Store.of_backend ~stats ~block_size ~cache_blocks
          ~codec:item_codec backend
    | None, None ->
        invalid_arg
          "Partition_tree.of_portable: payload not embedded, need backend"
  in
  {
    leaves;
    internals =
      Emio.Store.of_blocks ~stats ~block_size ~cache_blocks
        p.tp_internal_blocks;
    root = p.tp_root;
    length = p.tp_length;
    dim = p.tp_dim;
    visited = 0;
  }

let portable_codec =
  let open Emio.Codec in
  map
    ~decode:(fun ((ib, root), (len, dim, bs), (cb, lb)) ->
      { tp_internal_blocks = ib; tp_root = root; tp_length = len;
        tp_dim = dim; tp_block_size = bs; tp_cache_blocks = cb;
        tp_leaf_blocks = lb })
    ~encode:(fun p ->
      ( (p.tp_internal_blocks, p.tp_root),
        (p.tp_length, p.tp_dim, p.tp_block_size),
        (p.tp_cache_blocks, p.tp_leaf_blocks) ))
    (triple
       (pair (array (array child_codec)) (option node_ref_codec))
       (triple int int int)
       (pair int (option (array (array item_codec)))))

let snapshot_kind = "lcsearch.ptree"

let skeleton_codec =
  Emio.Codec.versioned ~magic:snapshot_kind ~version:1 portable_codec

let save_snapshot t ~path ?meta ?page_size () =
  Diskstore.Snapshot.save ~path ~kind:snapshot_kind ?meta ?page_size
    ~block_size:(Emio.Store.block_size t.leaves)
    ~payload:(Emio.Store.export_bytes t.leaves)
    ~skeleton:
      (Emio.Codec.encode skeleton_codec (to_portable ~embed_payload:false t))
    ()

let of_snapshot ~stats ?policy ?cache_pages path =
  match
    Diskstore.Snapshot.load ~path ~stats ?policy ?cache_pages
      ~expect_kind:snapshot_kind ()
  with
  | Error _ as e -> e
  | Ok opened ->
      let result =
        match
          Diskstore.Snapshot.decode_skeleton skeleton_codec
            opened.Diskstore.Snapshot.skeleton
        with
        | Error _ as e -> e
        | Ok p ->
            Diskstore.Snapshot.reconstruct (fun () ->
                ( of_portable ~stats
                    ~backend:opened.Diskstore.Snapshot.backend p,
                  opened.Diskstore.Snapshot.info ))
      in
      (match result with
      | Error _ -> Diskstore.Snapshot.close opened
      | Ok _ -> ());
      result
