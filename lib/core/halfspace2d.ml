open Geom

(* One dual line with the data points it represents (duplicates of the
   same point share an entry).  [id] is the line's index in the initial
   deduplicated arrangement — dense in [0, distinct), stable across
   layers — so query-time dedup is an array stamp instead of hashing
   the (slope, icept) key. *)
type entry = { id : int; slope : float; icept : float; points : Point2.t array }

type layer =
  | Clustered of {
      lambda : int;
      clusters : entry Emio.Run.t array;
      (* maps a query abscissa to the relevant cluster: the B-tree
         T_i of §3.2 over the boundary points *)
      btree : (float, int) Xbtree.Btree.t;
    }
  | Scan of entry Emio.Run.t
      (* final layer, |H_m| = O(beta): a plain O(log_B n)-block scan *)

type t = {
  store : entry Emio.Store.t;
  layer_list : layer array;
  length : int;
  block_size : int;
  beta : int;
  (* diagnostic gauges for the last query; racy under concurrent
     queries, which is fine for a "last query" counter *)
  mutable last_clusters_visited : int;
  mutable last_layers_visited : int;
  distinct : int; (* scratch slots a query needs: distinct dual lines *)
}

(* Query-time dedup scratch, one slot per distinct dual line: a line
   is "marked" when its slot holds the current epoch, so resetting a
   mark set is one counter bump, and the hot loops never hash or
   allocate.  The scratch lives in domain-local storage ({!Emio.Tls}),
   not in [t]: the batch engine fans queries against one shared [t]
   out across domains, and epoch marks are exactly the state that
   must not be shared between concurrently running queries.  One
   scratch per domain, grown to the largest structure it has served. *)
type scratch = {
  mutable reported_at : int array;
  mutable above_at : int array;
  mutable epoch : int;
}

let scratch_key : scratch Emio.Tls.key =
  Emio.Tls.new_key (fun () ->
      { reported_at = [||]; above_at = [||]; epoch = 0 })

let scratch_for t =
  let sc = Emio.Tls.get scratch_key in
  if Array.length sc.reported_at < t.distinct then begin
    (* fresh zeroed arrays: epoch restarts above 0, so no stale marks *)
    sc.reported_at <- Array.make t.distinct 0;
    sc.above_at <- Array.make t.distinct 0;
    sc.epoch <- 0
  end;
  sc

let length t = t.length
let block_size t = t.block_size
let layers t = Array.length t.layer_list
let last_clusters_visited t = t.last_clusters_visited
let last_layers_visited t = t.last_layers_visited

let lambdas t =
  Array.map
    (function Clustered { lambda; _ } -> lambda | Scan _ -> 0)
    t.layer_list

let space_blocks t =
  Emio.Store.blocks_used t.store
  + Array.fold_left
      (fun acc -> function
        | Clustered { btree; _ } -> acc + Xbtree.Btree.space_blocks btree
        | Scan _ -> acc)
      0 t.layer_list

let log_base b x = log x /. log b

(* beta = B log_B n, at least 1 (paper §3.2). *)
let compute_beta ~block_size n_points =
  let n = float_of_int (max 1 ((n_points + block_size - 1) / block_size)) in
  let b = float_of_int block_size in
  max 1 (int_of_float (ceil (b *. max 1. (log_base b n))))

let dedupe points =
  let tbl = Hashtbl.create (2 * Array.length points) in
  Array.iter
    (fun p ->
      let key = (Point2.x p, Point2.y p) in
      match Hashtbl.find_opt tbl key with
      | Some l -> Hashtbl.replace tbl key (p :: l)
      | None -> Hashtbl.add tbl key [ p ])
    points;
  Hashtbl.fold
    (fun _ ps acc ->
      match ps with
      | [] -> acc
      | first :: _ ->
          {
            id = 0;
            slope = Line2.slope (Dual2.line_of_point first);
            icept = Line2.icept (Dual2.line_of_point first);
            points = Array.of_list ps;
          }
          :: acc)
    tbl []
  |> Array.of_list
  |> Array.mapi (fun id e -> { e with id })

let entry_codec =
  Emio.Codec.map
    ~decode:(fun ((id, slope, icept), points) -> { id; slope; icept; points })
    ~encode:(fun e -> ((e.id, e.slope, e.icept), e.points))
    Emio.Codec.(pair (triple int float float) (array Point2.codec))

let build ~stats ~block_size ?(cache_blocks = 0) ?backend ?(seed = 0) points =
  let store =
    Emio.Store.create ~stats ~block_size ~cache_blocks ~codec:entry_codec
      ?backend ()
  in
  let beta = compute_beta ~block_size (Array.length points) in
  let rng = Random.State.make [| seed; 0x2d; Array.length points |] in
  let deduped = dedupe points in
  let distinct = Array.length deduped in
  let remaining = ref deduped in
  let built = ref [] in
  let finished = ref false in
  while not !finished do
    let entries = !remaining in
    let m = Array.length entries in
    if m <= 4 * beta then begin
      (* last layer: small enough to scan within the O(log_B n) budget *)
      if m > 0 then built := Scan (Emio.Run.of_array store entries) :: !built;
      finished := true
    end
    else begin
      let lambda = beta + Random.State.int rng (beta + 1) in
      let lines =
        Array.map (fun e -> Line2.make ~slope:e.slope ~icept:e.icept) entries
      in
      let clustering = Arrangement.Clustering.greedy ~lines ~k:lambda in
      let runs =
        Array.map
          (fun (c : Arrangement.Clustering.cluster) ->
            Emio.Run.of_array store
              (Array.map (fun id -> entries.(id)) c.lines))
          clustering.clusters
      in
      let btree =
        Xbtree.Btree.bulk_load ~stats ~block_size ~cache_blocks ~cmp:compare
          (Array.mapi (fun i x -> (x, i)) clustering.boundaries)
      in
      built := Clustered { lambda; clusters = runs; btree } :: !built;
      (* L_i = lines appearing in some cluster; H_{i+1} = H_i \ L_i *)
      let in_layer = Hashtbl.create (2 * m) in
      List.iter
        (fun id -> Hashtbl.replace in_layer id ())
        (Arrangement.Clustering.member_union clustering);
      let rest =
        Array.of_list
          (List.filteri
             (fun id _ -> not (Hashtbl.mem in_layer id))
             (Array.to_list entries))
      in
      if Array.length rest = m then
        (* degenerate guard: no progress would loop forever *)
        invalid_arg "Halfspace2d.build: clustering made no progress";
      remaining := rest;
      if Array.length rest = 0 then finished := true
    end
  done;
  {
    store;
    layer_list = Array.of_list (List.rev !built);
    length = Array.length points;
    block_size;
    beta;
    last_clusters_visited = 0;
    last_layers_visited = 0;
    distinct = max 1 distinct;
  }

(* Is the dual line below (or through) the dual query point (px,py)? *)
let below_query ~px ~py e = (e.slope *. px) +. e.icept <= py +. Eps.eps

(* Query one clustered layer, passing each distinct entry of L_i below
   the query point to [report].  Returns whether the overall query may
   halt here (Lemma 3.1) and the number of clusters visited (the
   r - l + 1 of Lemma 3.4).  Dedup stays (the same line appears in
   several overlapping clusters) but runs on the domain's epoch-stamped
   scratch arrays — the former per-layer hash tables keyed by boxed
   (slope, icept) tuples dominated the query's CPU profile. *)
let query_clustered sc ~px ~py ~lambda ~clusters ~btree ~report =
  let u = Array.length clusters in
  let relevant =
    match Xbtree.Btree.predecessor btree px with
    | Some (_, idx) -> idx + 1
    | None -> 0
  in
  let reported_at = sc.reported_at and qe = sc.epoch in
  let report e =
    if reported_at.(e.id) <> qe then begin
      reported_at.(e.id) <- qe;
      report e
    end
  in
  (* scan the relevant cluster, counting lines below the query point *)
  let below_relevant = ref 0 in
  Emio.Run.iter
    (fun e ->
      if below_query ~px ~py e then begin
        incr below_relevant;
        report e
      end)
    clusters.(relevant);
  if !below_relevant < lambda then (true, 1)
  else begin
    (* walk right, then left, per Lemma 3.4: stop once more than
       lambda distinct lines of the walked union lie above the query *)
    let visited = ref 1 in
    let walk step =
      sc.epoch <- sc.epoch + 1;
      let above_at = sc.above_at and we = sc.epoch in
      let above = ref 0 in
      let k = ref (relevant + step) in
      let stop = ref false in
      while (not !stop) && !k >= 0 && !k < u do
        incr visited;
        Emio.Run.iter
          (fun e ->
            if below_query ~px ~py e then report e
            else if above_at.(e.id) <> we then begin
              above_at.(e.id) <- we;
              incr above
            end)
          clusters.(!k);
        if !above > lambda then stop := true else k := !k + step
      done
    in
    walk 1;
    walk (-1);
    (false, !visited)
  end

(* The shared traversal: every distinct answering entry goes through
   [report], so list, point-visitor and counting callers run the
   identical (I/O-identical) layer walk. *)
let iter_entries t ~slope ~icept report =
  let px = slope and py = icept in
  let halted = ref false in
  let i = ref 0 in
  let sc = scratch_for t in
  sc.epoch <- sc.epoch + 1;
  t.last_clusters_visited <- 0;
  while (not !halted) && !i < Array.length t.layer_list do
    if Emio.Cost_ctx.tracing () then
      Emio.Cost_ctx.emit (Level { label = "h2"; index = !i });
    (match t.layer_list.(!i) with
    | Scan run ->
        Emio.Run.iter
          (fun e -> if below_query ~px ~py e then report e)
          run;
        halted := true
    | Clustered { lambda; clusters; btree } ->
        let stop, visited =
          query_clustered sc ~px ~py ~lambda ~clusters ~btree ~report
        in
        t.last_clusters_visited <- t.last_clusters_visited + visited;
        if stop then halted := true);
    incr i
  done;
  t.last_layers_visited <- !i

let query_iter t ~slope ~icept f =
  iter_entries t ~slope ~icept (fun e -> Array.iter f e.points)

let query t ~slope ~icept =
  let acc = ref [] in
  iter_entries t ~slope ~icept (fun e ->
      Array.iter (fun p -> acc := p :: !acc) e.points);
  !acc

let query_count t ~slope ~icept =
  let n = ref 0 in
  iter_entries t ~slope ~icept (fun e -> n := !n + Array.length e.points);
  !n

(* Persistence: the entry store is the snapshot payload; layer lists
   and the per-layer boundary B-trees ride in the skeleton as a
   closure-free record (runs become block ids, B-trees their portable
   form — the key comparator is [compare], reapplied at load). *)

let snapshot_kind = "lcsearch.h2"

type layer_p =
  | Clustered_p of {
      cp_lambda : int;
      cp_clusters : (int array * int) array;
      cp_btree : (float, int) Xbtree.Btree.portable;
    }
  | Scan_p of (int array * int)

type skeleton = {
  sk_layers : layer_p array;
  sk_length : int;
  sk_block_size : int;
  sk_cache_blocks : int;
  sk_beta : int;
  sk_scratch : int;
}

let skeleton_codec =
  let open Emio.Codec in
  let layer_codec =
    custom
      ~write:(fun buf -> function
        | Clustered_p { cp_lambda; cp_clusters; cp_btree } ->
            write_u8 buf 0;
            write int buf cp_lambda;
            write (array Emio.Run.portable_codec) buf cp_clusters;
            write (Xbtree.Btree.portable_codec float int) buf cp_btree
        | Scan_p run ->
            write_u8 buf 1;
            write Emio.Run.portable_codec buf run)
      ~read:(fun b pos ->
        match read_u8 b pos with
        | 0 ->
            let cp_lambda = read int b pos in
            let cp_clusters = read (array Emio.Run.portable_codec) b pos in
            let cp_btree = read (Xbtree.Btree.portable_codec float int) b pos in
            Clustered_p { cp_lambda; cp_clusters; cp_btree }
        | 1 -> Scan_p (read Emio.Run.portable_codec b pos)
        | t -> raise (Decode (Printf.sprintf "bad h2 layer tag %d" t)))
  in
  versioned ~magic:snapshot_kind ~version:1
    (map
       ~decode:(fun (sk_layers, (sk_length, sk_block_size, sk_cache_blocks),
                     (sk_beta, sk_scratch)) ->
         { sk_layers; sk_length; sk_block_size; sk_cache_blocks; sk_beta;
           sk_scratch })
       ~encode:(fun sk ->
         ( sk.sk_layers,
           (sk.sk_length, sk.sk_block_size, sk.sk_cache_blocks),
           (sk.sk_beta, sk.sk_scratch) ))
       (triple (array layer_codec) (triple int int int) (pair int int)))

let to_skeleton t =
  {
    sk_layers =
      Array.map
        (function
          | Clustered { lambda; clusters; btree } ->
              Clustered_p
                {
                  cp_lambda = lambda;
                  cp_clusters = Array.map Emio.Run.to_portable clusters;
                  cp_btree = Xbtree.Btree.to_portable btree;
                }
          | Scan run -> Scan_p (Emio.Run.to_portable run))
        t.layer_list;
    sk_length = t.length;
    sk_block_size = t.block_size;
    sk_cache_blocks = Emio.Store.cache_blocks t.store;
    sk_beta = t.beta;
    sk_scratch = t.distinct;
  }

let of_skeleton ~stats ~backend sk =
  let store =
    Emio.Store.of_backend ~stats ~block_size:sk.sk_block_size
      ~cache_blocks:sk.sk_cache_blocks ~codec:entry_codec backend
  in
  {
    store;
    layer_list =
      Array.map
        (function
          | Clustered_p { cp_lambda; cp_clusters; cp_btree } ->
              Clustered
                {
                  lambda = cp_lambda;
                  clusters =
                    Array.map (Emio.Run.of_portable store) cp_clusters;
                  btree =
                    Xbtree.Btree.of_portable ~stats ~cmp:compare cp_btree;
                }
          | Scan_p run -> Scan (Emio.Run.of_portable store run))
        sk.sk_layers;
    length = sk.sk_length;
    block_size = sk.sk_block_size;
    beta = sk.sk_beta;
    last_clusters_visited = 0;
    last_layers_visited = 0;
    distinct = max 1 sk.sk_scratch;
  }

let save_snapshot t ~path ?meta ?page_size () =
  Diskstore.Snapshot.save ~path ~kind:snapshot_kind ?meta ?page_size
    ~block_size:t.block_size
    ~payload:(Emio.Store.export_bytes t.store)
    ~skeleton:(Emio.Codec.encode skeleton_codec (to_skeleton t))
    ()

let of_snapshot ~stats ?policy ?cache_pages path =
  match
    Diskstore.Snapshot.load ~path ~stats ?policy ?cache_pages
      ~expect_kind:snapshot_kind ()
  with
  | Error _ as e -> e
  | Ok opened ->
      let result =
        match
          Diskstore.Snapshot.decode_skeleton skeleton_codec
            opened.Diskstore.Snapshot.skeleton
        with
        | Error _ as e -> e
        | Ok sk ->
            Diskstore.Snapshot.reconstruct (fun () ->
                let t =
                  of_skeleton ~stats ~backend:opened.Diskstore.Snapshot.backend
                    sk
                in
                (t, opened.Diskstore.Snapshot.info))
      in
      (match result with
      | Error _ -> Diskstore.Snapshot.close opened
      | Ok _ -> ());
      result
