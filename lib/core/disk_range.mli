(** Circular range reporting via the lifting map — the reporting twin
    of Theorem 4.3.

    A point p lies within distance r of a center c iff p's lifted
    plane (z = |p|² - 2 p·(x,y)) passes below the point
    (c, r² - |c|²), so "report all points in a disk" is exactly the
    halfspace reporting problem of §4 on the lifted planes:
    O(n log₂ n) expected blocks, O(log_B n + t) expected I/Os. *)

type t

val build :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  ?seed:int ->
  ?copies:int ->
  ?clip:float * float * float * float ->
  Geom.Point2.t array ->
  t

val query : t -> center:Geom.Point2.t -> radius:float -> Geom.Point2.t list
(** All input points within (closed) distance [radius] of [center]. *)

val query_count : t -> center:Geom.Point2.t -> radius:float -> int
(** Same doubling protocol, counting only (no result materialized). *)

val query_ids_into :
  t -> center:Geom.Point2.t -> radius:float -> Emio.Reporter.t -> unit
(** Appends the ids (indices into the build-time array) of the points
    inside the disk to a reusable {!Emio.Reporter}; failed doubling
    attempts roll back via {!Emio.Reporter.mark}/{!Emio.Reporter.truncate}. *)

val length : t -> int
val space_blocks : t -> int
