open Geom
open Partition

type node_ref = Leaf of int | Node of int

(* A child entry: the kd cell, plus the positions of the child's lower
   and upper hull certificates in the shared certificate run (len 0
   means no certificate: classify by cell only). *)
type child = {
  cell : Cells.cell;
  sub : node_ref;
  lo_start : int;
  lo_len : int;
  up_start : int;
  up_len : int;
}

type item = { px : float; py : float; pz : float; pid : int }

(* Certificate vertices are stored FLAT: the certificate run is a
   [float Emio.Run.t] holding three floats per vertex — x, y, z — in
   stride-3 slots, and its store's block size is 3B floats so each
   block holds exactly B vertices and every block boundary (hence
   every I/O charge) is identical to the boxed one-point-per-item
   layout this replaces.  The gap scans then read unboxed floats
   sequentially instead of calling boxed Point3 accessors per vertex,
   which is where most of the cert query allocation went (child
   [lo_start]/[up_start] positions count vertices, not floats). *)
let cert_stride = 3

type t = {
  leaves : item Emio.Store.t;
  internals : child Emio.Store.t;
  certs : float Emio.Run.t; (* stride-3 flat vertices *)
  root : node_ref option;
  length : int;
  cert_items : int;
  mutable visited : int;
}

let length t = t.length
let last_visited_nodes t = t.visited
let certificate_items t = t.cert_items

let space_blocks t =
  Emio.Store.blocks_used t.leaves
  + Emio.Store.blocks_used t.internals
  + Emio.Run.block_count t.certs

let point3_of it = Point3.make it.px it.py it.pz

let item_codec =
  Emio.Codec.map
    ~decode:(fun ((px, py, pz), pid) -> { px; py; pz; pid })
    ~encode:(fun it -> ((it.px, it.py, it.pz), it.pid))
    Emio.Codec.(pair (triple float float float) int)

let node_ref_codec =
  Emio.Codec.map
    ~decode:(fun (tag, id) ->
      match tag with
      | 0 -> Leaf id
      | 1 -> Node id
      | t -> raise (Emio.Codec.Decode (Printf.sprintf "bad node_ref tag %d" t)))
    ~encode:(function Leaf id -> (0, id) | Node id -> (1, id))
    Emio.Codec.(pair u8 int)

let child_codec =
  Emio.Codec.map
    ~decode:(fun ((cell, sub), (lo_start, lo_len), (up_start, up_len)) ->
      { cell; sub; lo_start; lo_len; up_start; up_len })
    ~encode:(fun c ->
      ((c.cell, c.sub), (c.lo_start, c.lo_len), (c.up_start, c.up_len)))
    Emio.Codec.(
      triple
        (pair Cells.cell_codec node_ref_codec)
        (pair int int) (pair int int))

(* Lower and upper hull vertex sets of a point set, or the whole set
   when it is small, or None when the hulls exceed the cap. *)
let certificates ~cert_cap (items : item array) =
  let nv = Array.length items in
  if nv <= cert_cap then
    let all = Array.map point3_of items in
    Some (all, all)
  else begin
    let points = Array.map point3_of items in
    let order = Array.init nv Fun.id in
    match Hull3.build ~points ~order ~sample_size:nv with
    | exception Invalid_argument _ -> None
    | hull ->
        let collect keep =
          let seen = Hashtbl.create 32 in
          Array.iter
            (fun (f : Hull3.facet) ->
              if keep f then
                List.iter
                  (fun v -> Hashtbl.replace seen v ())
                  [ f.a; f.b; f.c ])
            (Hull3.facets hull);
          Array.of_list
            (Hashtbl.fold (fun v () acc -> points.(v) :: acc) seen [])
        in
        let lower =
          collect (fun f -> Point3.z f.Hull3.normal < 0.)
        in
        let upper = collect (fun f -> Point3.z f.Hull3.normal > 0.) in
        if
          Array.length lower <= cert_cap
          && Array.length upper <= cert_cap
          && Array.length lower > 0
          && Array.length upper > 0
        then Some (lower, upper)
        else None
  end

let build ~stats ~block_size ?(cache_blocks = 0) ?cert_cap points =
  let cert_cap =
    match cert_cap with
    | Some c when c < 0 -> invalid_arg "Cert_tree.build: need cert_cap >= 0"
    | Some c -> max 4 c
    | None -> 2 * block_size
  in
  let leaves =
    Emio.Store.create ~stats ~block_size ~cache_blocks ~codec:item_codec ()
  in
  let internals = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let cert_store =
    Emio.Store.create ~stats ~block_size:(cert_stride * block_size)
      ~cache_blocks ~codec:Emio.Codec.float ()
  in
  let cert_buffer : Point3.t list ref = ref [] in
  let cert_pos = ref 0 in
  let push_certs arr =
    let start = !cert_pos in
    Array.iter (fun p -> cert_buffer := p :: !cert_buffer) arr;
    cert_pos := !cert_pos + Array.length arr;
    (start, Array.length arr)
  in
  let rec build_node (items : item array) =
    let nv = Array.length items in
    if nv <= block_size then Leaf (Emio.Store.alloc leaves items)
    else begin
      let n_blocks = (nv + block_size - 1) / block_size in
      let r = max 2 (min block_size (2 * n_blocks)) in
      let coords = Array.map (fun it -> [| it.px; it.py; it.pz |]) items in
      let parts = Partitioner.kd ~points:coords ~r in
      let children =
        Array.map
          (fun (cell, idxs) ->
            let group = Array.map (fun i -> items.(i)) idxs in
            let lo_start, lo_len, up_start, up_len =
              match certificates ~cert_cap group with
              | None -> (0, 0, 0, 0)
              | Some (lower, upper) ->
                  let ls, ll = push_certs lower in
                  let us, ul = push_certs upper in
                  (ls, ll, us, ul)
            in
            { cell; sub = build_node group; lo_start; lo_len; up_start; up_len })
          parts
      in
      Node (Emio.Store.alloc internals children)
    end
  in
  let items =
    Array.mapi
      (fun i p -> { px = Point3.x p; py = Point3.y p; pz = Point3.z p; pid = i })
      points
  in
  let root = if Array.length items = 0 then None else Some (build_node items) in
  let certs =
    (* flatten the collected vertices into stride-3 slots; blocks of
       3B floats hold exactly B vertices, so of_array charges the same
       ⌈items/B⌉ writes as the boxed layout did *)
    let flat = Array.make (cert_stride * !cert_pos) 0. in
    List.iteri
      (fun i p ->
        let f = cert_stride * (!cert_pos - 1 - i) in
        flat.(f) <- Point3.x p;
        flat.(f + 1) <- Point3.y p;
        flat.(f + 2) <- Point3.z p)
      !cert_buffer;
    Emio.Run.of_array cert_store flat
  in
  {
    leaves;
    internals;
    certs;
    root;
    length = Array.length points;
    cert_items = !cert_pos;
    visited = 0;
  }

let rec report_subtree t ~report = function
  | Leaf id ->
      let block = Emio.Store.read t.leaves id in
      for i = 0 to Array.length block - 1 do
        report block.(i).pid
      done
  | Node id ->
      let children = Emio.Store.read t.internals id in
      for i = 0 to Array.length children - 1 do
        report_subtree t ~report children.(i).sub
      done

(* Single-field all-float record: mutating it updates the unboxed
   float in place, where a [float ref] would box a fresh float per
   assignment on the certificate scans. *)
type fbox = { mutable fv : float }

(* Minimum ([want_min]) or maximum of the affine gap
   z - ax·x - ay·y - a0 over certificate vertices [start, start+len)
   of the flat stride-3 run: the certificate store's block size is 3B
   floats, so vertex i's slots live in block i/B — the same block
   index (and the same read charges) the boxed scan paid.  Explicit
   indexed loops on the unboxed float blocks: no closure, no Point3
   accessor boxing — this scan ran per crossing child and was the bulk
   of the ~10k words/query the old pipeline allocated. *)
let gap_extreme certs ~ax ~ay ~a0 ~start ~len ~want_min =
  let acc = { fv = (if want_min then infinity else neg_infinity) } in
  let b = Emio.Store.block_size (Emio.Run.store certs) / cert_stride in
  let first = start / b and last = (start + len - 1) / b in
  for blk = first to last do
    let block = Emio.Run.read_block certs blk in
    let block_lo = blk * b in
    let lo = max 0 (start - block_lo) in
    let hi = min (Array.length block / cert_stride) (start + len - block_lo) in
    (* the loop bounds prove every access in range: cert_stride*hi <=
       Array.length block (hi is clamped to it) *)
    if want_min then
      for i = lo to hi - 1 do
        let f = cert_stride * i in
        let g =
          Array.unsafe_get block (f + 2)
          -. (ax *. Array.unsafe_get block f)
          -. (ay *. Array.unsafe_get block (f + 1))
          -. a0
        in
        if g < acc.fv then acc.fv <- g
      done
    else
      for i = lo to hi - 1 do
        let f = cert_stride * i in
        let g =
          Array.unsafe_get block (f + 2)
          -. (ax *. Array.unsafe_get block f)
          -. (ay *. Array.unsafe_get block (f + 1))
          -. a0
        in
        if g > acc.fv then acc.fv <- g
      done
  done;
  acc.fv

(* The shared traversal: each reported pid goes through [report], so
   list, reporter-sink and counting callers run identical I/Os. *)
let query_iter t ~a0 ~a report =
  if Array.length a <> 2 then
    invalid_arg "Cert_tree.query_ids: need 2 slope coefficients";
  let constr = Cells.constr_of_halfspace ~dim:3 ~a0 ~a in
  let ax = a.(0) and ay = a.(1) in
  t.visited <- 0;
  let rec go = function
    | Leaf id ->
        t.visited <- t.visited + 1;
        let block = Emio.Store.read t.leaves id in
        for i = 0 to Array.length block - 1 do
          let it = block.(i) in
          if it.pz -. (ax *. it.px) -. (ay *. it.py) -. a0 <= Eps.eps then
            report it.pid
        done
    | Node id ->
        t.visited <- t.visited + 1;
        let children = Emio.Store.read t.internals id in
        for ci = 0 to Array.length children - 1 do
          let child = children.(ci) in
          match Cells.classify child.cell constr with
          | Cells.Inside -> report_subtree t ~report child.sub
          | Cells.Outside -> ()
          | Cells.Crossing ->
              if child.lo_len = 0 then go child.sub
              else begin
                (* exact point-set classification via the hulls *)
                let min_gap =
                  gap_extreme t.certs ~ax ~ay ~a0 ~start:child.lo_start
                    ~len:child.lo_len ~want_min:true
                in
                if min_gap > Eps.eps then () (* no point below *)
                else begin
                  let max_gap =
                    gap_extreme t.certs ~ax ~ay ~a0 ~start:child.up_start
                      ~len:child.up_len ~want_min:false
                  in
                  if max_gap <= Eps.eps then report_subtree t ~report child.sub
                  else go child.sub
                end
              end
        done
  in
  match t.root with None -> () | Some root -> go root

let query_ids t ~a0 ~a =
  let acc = ref [] in
  query_iter t ~a0 ~a (fun pid -> acc := pid :: !acc);
  !acc

let query_ids_into t ~a0 ~a r = query_iter t ~a0 ~a (Emio.Reporter.add r)

let query_count t ~a0 ~a =
  let n = ref 0 in
  query_iter t ~a0 ~a (fun _ -> incr n);
  !n

let points t =
  let out = Array.make t.length (Point3.make 0. 0. 0.) in
  for i = 0 to Emio.Store.blocks_used t.leaves - 1 do
    Array.iter
      (fun it -> out.(it.pid) <- point3_of it)
      (Emio.Store.read t.leaves i)
  done;
  out

(* -- persistence: leaves are the payload; internals and the
   certificate run (fully embedded, its store is private) ride in the
   skeleton ---------------------------------------------------------- *)

type portable = {
  cp_internal_blocks : child array array;
  cp_certs : float Emio.Run.stored; (* stride-3 flat vertices *)
  cp_root : node_ref option;
  cp_length : int;
  cp_cert_items : int;
  cp_block_size : int;
  cp_cache_blocks : int;
}

let to_portable t =
  {
    cp_internal_blocks = Emio.Store.to_blocks t.internals;
    cp_certs = Emio.Run.to_stored t.certs;
    cp_root = t.root;
    cp_length = t.length;
    cp_cert_items = t.cert_items;
    cp_block_size = Emio.Store.block_size t.leaves;
    cp_cache_blocks = Emio.Store.cache_blocks t.leaves;
  }

let of_portable ~stats ~backend p =
  let block_size = p.cp_block_size and cache_blocks = p.cp_cache_blocks in
  {
    leaves =
      Emio.Store.of_backend ~stats ~block_size ~cache_blocks ~codec:item_codec
        backend;
    internals =
      Emio.Store.of_blocks ~stats ~block_size ~cache_blocks
        p.cp_internal_blocks;
    certs = Emio.Run.of_stored ~stats p.cp_certs;
    root = p.cp_root;
    length = p.cp_length;
    cert_items = p.cp_cert_items;
    visited = 0;
  }

let portable_codec =
  let open Emio.Codec in
  map
    ~decode:(fun ((ib, certs), (root, len, ci), (bs, cb)) ->
      { cp_internal_blocks = ib; cp_certs = certs; cp_root = root;
        cp_length = len; cp_cert_items = ci; cp_block_size = bs;
        cp_cache_blocks = cb })
    ~encode:(fun p ->
      ( (p.cp_internal_blocks, p.cp_certs),
        (p.cp_root, p.cp_length, p.cp_cert_items),
        (p.cp_block_size, p.cp_cache_blocks) ))
    (triple
       (pair
          (array (array child_codec))
          (Emio.Run.stored_codec Emio.Codec.float))
       (triple (option node_ref_codec) int int)
       (pair int int))

let snapshot_kind = "lcsearch.cert"

(* v2: the certificate run went flat (stride-3 floats in 3B-float
   blocks) — the stored blocks changed element type, so v1 skeletons
   are rejected with a clear version error rather than misdecoded. *)
let skeleton_codec =
  Emio.Codec.versioned ~magic:snapshot_kind ~version:2 portable_codec

let save_snapshot t ~path ?meta ?page_size () =
  Diskstore.Snapshot.save ~path ~kind:snapshot_kind ?meta ?page_size
    ~block_size:(Emio.Store.block_size t.leaves)
    ~payload:(Emio.Store.export_bytes t.leaves)
    ~skeleton:(Emio.Codec.encode skeleton_codec (to_portable t))
    ()

let of_snapshot ~stats ?policy ?cache_pages path =
  match
    Diskstore.Snapshot.load ~path ~stats ?policy ?cache_pages
      ~expect_kind:snapshot_kind ()
  with
  | Error _ as e -> e
  | Ok opened ->
      let result =
        match
          Diskstore.Snapshot.decode_skeleton skeleton_codec
            opened.Diskstore.Snapshot.skeleton
        with
        | Error _ as e -> e
        | Ok p ->
            Diskstore.Snapshot.reconstruct (fun () ->
                ( of_portable ~stats
                    ~backend:opened.Diskstore.Snapshot.backend p,
                  opened.Diskstore.Snapshot.info ))
      in
      (match result with
      | Error _ -> Diskstore.Snapshot.close opened
      | Ok _ -> ());
      result
