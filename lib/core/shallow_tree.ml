open Partition

type node_ref = Leaf of int | Node of int

type child = { cell : Cells.cell; sub : node_ref }

type item = { coords : Cells.point; pid : int }

type t = {
  leaves : item Emio.Store.t;
  internals : child Emio.Store.t;
  (* node id -> secondary §5 structure over the same subtree points *)
  secondaries : (int, Partition_tree.t * int array) Hashtbl.t;
  root : node_ref option;
  length : int;
  dim : int;
  shallow_factor : float;
  mutable secondary_uses : int;
}

let length t = t.length
let dim t = t.dim
let last_secondary_uses t = t.secondary_uses

let space_blocks t =
  Emio.Store.blocks_used t.leaves
  + Emio.Store.blocks_used t.internals
  + Hashtbl.fold
      (fun _ (pt, _) acc -> acc + Partition_tree.space_blocks pt)
      t.secondaries 0

let item_codec =
  Emio.Codec.map
    ~decode:(fun (coords, pid) -> { coords; pid })
    ~encode:(fun it -> (it.coords, it.pid))
    Emio.Codec.(pair Cells.point_codec int)

let node_ref_codec =
  Emio.Codec.map
    ~decode:(fun (tag, id) ->
      match tag with
      | 0 -> Leaf id
      | 1 -> Node id
      | t -> raise (Emio.Codec.Decode (Printf.sprintf "bad node_ref tag %d" t)))
    ~encode:(function Leaf id -> (0, id) | Node id -> (1, id))
    Emio.Codec.(pair u8 int)

let child_codec =
  Emio.Codec.map
    ~decode:(fun (cell, sub) -> { cell; sub })
    ~encode:(fun c -> (c.cell, c.sub))
    Emio.Codec.(pair Cells.cell_codec node_ref_codec)

let build ~stats ~block_size ?(cache_blocks = 0) ?backend
    ?(shallow_factor = 2.0) ~dim points =
  if not (shallow_factor > 0.) then
    invalid_arg "Shallow_tree.build: need shallow_factor > 0";
  Array.iter
    (fun p ->
      if Array.length p <> dim then
        invalid_arg "Shallow_tree.build: wrong point dimension")
    points;
  let leaves =
    Emio.Store.create ~stats ~block_size ~cache_blocks ~codec:item_codec
      ?backend ()
  in
  let internals = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let secondaries = Hashtbl.create 64 in
  let rec build_node (items : item array) =
    let nv = Array.length items in
    if nv <= block_size then Leaf (Emio.Store.alloc leaves items)
    else begin
      let n_blocks = (nv + block_size - 1) / block_size in
      let r = max 2 (min block_size (2 * n_blocks)) in
      let coords = Array.map (fun it -> it.coords) items in
      let parts = Partitioner.shallow ~points:coords ~r in
      let parts =
        if Array.length parts >= 2 then
          Array.map
            (fun (cell, idxs) -> (cell, Array.map (fun i -> items.(i)) idxs))
            parts
        else begin
          let half = nv / 2 in
          let a = Array.sub items 0 half
          and b = Array.sub items half (nv - half) in
          Array.map
            (fun group ->
              ( Cells.bounding_box (Array.map (fun it -> it.coords) group),
                group ))
            [| a; b |]
        end
      in
      let children =
        Array.map (fun (cell, group) -> { cell; sub = build_node group }) parts
      in
      let id = Emio.Store.alloc internals children in
      let secondary =
        Partition_tree.build ~stats ~block_size ~cache_blocks
          ~partitioner:Partition_tree.Kd ~dim coords
      in
      Hashtbl.add secondaries id (secondary, Array.map (fun it -> it.pid) items);
      Node id
    end
  in
  let items = Array.mapi (fun i p -> { coords = p; pid = i }) points in
  let root = if Array.length items = 0 then None else Some (build_node items) in
  {
    leaves;
    internals;
    secondaries;
    root;
    length = Array.length points;
    dim;
    shallow_factor;
    secondary_uses = 0;
  }

(* Explicit for-loops, not Array.iter: the iteration closures were an
   allocation per node visited, which the zero-allocation batch path
   cannot afford. *)
let rec report_subtree t ~report = function
  | Leaf id ->
      let items = Emio.Store.read t.leaves id in
      for i = 0 to Array.length items - 1 do
        report items.(i).pid
      done
  | Node id ->
      let children = Emio.Store.read t.internals id in
      for i = 0 to Array.length children - 1 do
        report_subtree t ~report children.(i).sub
      done

(* The shared traversal behind every query entry point: each reported
   pid goes through [report], so reporter-sink, list and counting
   callers run the identical (I/O-identical) walk. *)
let query_halfspace_iter t ~a0 ~a report =
  let c = Cells.constr_of_halfspace ~dim:t.dim ~a0 ~a in
  t.secondary_uses <- 0;
  let rec go = function
    | Leaf id ->
        let items = Emio.Store.read t.leaves id in
        for i = 0 to Array.length items - 1 do
          let it = items.(i) in
          if Cells.satisfies c it.coords then report it.pid
        done
    | Node id ->
        let children = Emio.Store.read t.internals id in
        let crossing = ref 0 in
        for i = 0 to Array.length children - 1 do
          match Cells.classify children.(i).cell c with
          | Cells.Crossing -> incr crossing
          | Cells.Inside | Cells.Outside -> ()
        done;
        let threshold =
          t.shallow_factor
          *. (log (float_of_int (max 2 (Array.length children))) /. log 2.)
        in
        if float_of_int !crossing > threshold then begin
          (* not shallow at this node: delegate to the §5 secondary
             structure (its output term dominates, §6) *)
          t.secondary_uses <- t.secondary_uses + 1;
          let secondary, pids = Hashtbl.find t.secondaries id in
          Partition_tree.query_halfspace_iter secondary ~a0 ~a (fun i ->
              report pids.(i))
        end
        else
          for i = 0 to Array.length children - 1 do
            let child = children.(i) in
            match Cells.classify child.cell c with
            | Cells.Inside -> report_subtree t ~report child.sub
            | Cells.Outside -> ()
            | Cells.Crossing -> go child.sub
          done
  in
  match t.root with None -> () | Some root -> go root

let query_halfspace t ~a0 ~a =
  let acc = ref [] in
  query_halfspace_iter t ~a0 ~a (fun pid -> acc := pid :: !acc);
  !acc

let query_halfspace_into t ~a0 ~a r =
  query_halfspace_iter t ~a0 ~a (Emio.Reporter.add r)

let query_halfspace_count t ~a0 ~a =
  let n = ref 0 in
  query_halfspace_iter t ~a0 ~a (fun _ -> incr n);
  !n

let points t =
  let out = Array.make t.length [||] in
  for i = 0 to Emio.Store.blocks_used t.leaves - 1 do
    Array.iter (fun it -> out.(it.pid) <- it.coords) (Emio.Store.read t.leaves i)
  done;
  out

(* -- persistence: leaves are the payload; internals and the per-node
   secondary §5 trees (fully embedded) ride in the skeleton ---------- *)

type portable = {
  sp_internal_blocks : child array array;
  sp_secondaries : (int * (Partition_tree.portable * int array)) array;
  sp_root : node_ref option;
  sp_length : int;
  sp_dim : int;
  sp_shallow_factor : float;
  sp_block_size : int;
  sp_cache_blocks : int;
}

let to_portable t =
  {
    sp_internal_blocks = Emio.Store.to_blocks t.internals;
    sp_secondaries =
      Hashtbl.fold
        (fun id (pt, pids) acc ->
          (id, (Partition_tree.to_portable pt, pids)) :: acc)
        t.secondaries []
      |> List.sort compare |> Array.of_list;
    sp_root = t.root;
    sp_length = t.length;
    sp_dim = t.dim;
    sp_shallow_factor = t.shallow_factor;
    sp_block_size = Emio.Store.block_size t.leaves;
    sp_cache_blocks = Emio.Store.cache_blocks t.leaves;
  }

let of_portable ~stats ~backend p =
  let block_size = p.sp_block_size and cache_blocks = p.sp_cache_blocks in
  let secondaries = Hashtbl.create 64 in
  Array.iter
    (fun (id, (pt, pids)) ->
      Hashtbl.add secondaries id (Partition_tree.of_portable ~stats pt, pids))
    p.sp_secondaries;
  {
    leaves =
      Emio.Store.of_backend ~stats ~block_size ~cache_blocks ~codec:item_codec
        backend;
    internals =
      Emio.Store.of_blocks ~stats ~block_size ~cache_blocks
        p.sp_internal_blocks;
    secondaries;
    root = p.sp_root;
    length = p.sp_length;
    dim = p.sp_dim;
    shallow_factor = p.sp_shallow_factor;
    secondary_uses = 0;
  }

let snapshot_kind = "lcsearch.shallow"

let skeleton_codec =
  let open Emio.Codec in
  versioned ~magic:snapshot_kind ~version:1
    (map
       ~decode:(fun ((ib, secs), (root, len, dim), (sf, bs, cb)) ->
         { sp_internal_blocks = ib; sp_secondaries = secs; sp_root = root;
           sp_length = len; sp_dim = dim; sp_shallow_factor = sf;
           sp_block_size = bs; sp_cache_blocks = cb })
       ~encode:(fun p ->
         ( (p.sp_internal_blocks, p.sp_secondaries),
           (p.sp_root, p.sp_length, p.sp_dim),
           (p.sp_shallow_factor, p.sp_block_size, p.sp_cache_blocks) ))
       (triple
          (pair
             (array (array child_codec))
             (array
                (pair int (pair Partition_tree.portable_codec (array int)))))
          (triple (option node_ref_codec) int int)
          (triple float int int)))

let save_snapshot t ~path ?meta ?page_size () =
  Diskstore.Snapshot.save ~path ~kind:snapshot_kind ?meta ?page_size
    ~block_size:(Emio.Store.block_size t.leaves)
    ~payload:(Emio.Store.export_bytes t.leaves)
    ~skeleton:(Emio.Codec.encode skeleton_codec (to_portable t))
    ()

let of_snapshot ~stats ?policy ?cache_pages path =
  match
    Diskstore.Snapshot.load ~path ~stats ?policy ?cache_pages
      ~expect_kind:snapshot_kind ()
  with
  | Error _ as e -> e
  | Ok opened ->
      let result =
        match
          Diskstore.Snapshot.decode_skeleton skeleton_codec
            opened.Diskstore.Snapshot.skeleton
        with
        | Error _ as e -> e
        | Ok p ->
            Diskstore.Snapshot.reconstruct (fun () ->
                ( of_portable ~stats
                    ~backend:opened.Diskstore.Snapshot.backend p,
                  opened.Diskstore.Snapshot.info ))
      in
      (match result with
      | Error _ -> Diskstore.Snapshot.close opened
      | Ok _ -> ());
      result
