open Partition

type node_ref = Leaf of int | Node of int

type child = { cell : Cells.cell; sub : node_ref }

type item = { coords : Cells.point; pid : int }

type t = {
  leaves : item Emio.Store.t;
  internals : child Emio.Store.t;
  (* node id -> secondary §5 structure over the same subtree points *)
  secondaries : (int, Partition_tree.t * int array) Hashtbl.t;
  root : node_ref option;
  length : int;
  dim : int;
  shallow_factor : float;
  mutable secondary_uses : int;
}

let length t = t.length
let dim t = t.dim
let last_secondary_uses t = t.secondary_uses

let space_blocks t =
  Emio.Store.blocks_used t.leaves
  + Emio.Store.blocks_used t.internals
  + Hashtbl.fold
      (fun _ (pt, _) acc -> acc + Partition_tree.space_blocks pt)
      t.secondaries 0

let build ~stats ~block_size ?(cache_blocks = 0) ?backend
    ?(shallow_factor = 2.0) ~dim points =
  if not (shallow_factor > 0.) then
    invalid_arg "Shallow_tree.build: need shallow_factor > 0";
  Array.iter
    (fun p ->
      if Array.length p <> dim then
        invalid_arg "Shallow_tree.build: wrong point dimension")
    points;
  let leaves = Emio.Store.create ~stats ~block_size ~cache_blocks ?backend () in
  let internals = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let secondaries = Hashtbl.create 64 in
  let rec build_node (items : item array) =
    let nv = Array.length items in
    if nv <= block_size then Leaf (Emio.Store.alloc leaves items)
    else begin
      let n_blocks = (nv + block_size - 1) / block_size in
      let r = max 2 (min block_size (2 * n_blocks)) in
      let coords = Array.map (fun it -> it.coords) items in
      let parts = Partitioner.shallow ~points:coords ~r in
      let parts =
        if Array.length parts >= 2 then
          Array.map
            (fun (cell, idxs) -> (cell, Array.map (fun i -> items.(i)) idxs))
            parts
        else begin
          let half = nv / 2 in
          let a = Array.sub items 0 half
          and b = Array.sub items half (nv - half) in
          Array.map
            (fun group ->
              ( Cells.bounding_box (Array.map (fun it -> it.coords) group),
                group ))
            [| a; b |]
        end
      in
      let children =
        Array.map (fun (cell, group) -> { cell; sub = build_node group }) parts
      in
      let id = Emio.Store.alloc internals children in
      let secondary =
        Partition_tree.build ~stats ~block_size ~cache_blocks
          ~partitioner:Partition_tree.Kd ~dim coords
      in
      Hashtbl.add secondaries id (secondary, Array.map (fun it -> it.pid) items);
      Node id
    end
  in
  let items = Array.mapi (fun i p -> { coords = p; pid = i }) points in
  let root = if Array.length items = 0 then None else Some (build_node items) in
  {
    leaves;
    internals;
    secondaries;
    root;
    length = Array.length points;
    dim;
    shallow_factor;
    secondary_uses = 0;
  }

let rec report_subtree t ~report = function
  | Leaf id ->
      Array.iter (fun it -> report it.pid) (Emio.Store.read t.leaves id)
  | Node id ->
      Array.iter
        (fun child -> report_subtree t ~report child.sub)
        (Emio.Store.read t.internals id)

(* The shared traversal behind every query entry point: each reported
   pid goes through [report], so reporter-sink, list and counting
   callers run the identical (I/O-identical) walk. *)
let query_halfspace_iter t ~a0 ~a report =
  let c = Cells.constr_of_halfspace ~dim:t.dim ~a0 ~a in
  t.secondary_uses <- 0;
  let rec go = function
    | Leaf id ->
        Array.iter
          (fun it -> if Cells.satisfies c it.coords then report it.pid)
          (Emio.Store.read t.leaves id)
    | Node id ->
        let children = Emio.Store.read t.internals id in
        let crossing =
          Array.fold_left
            (fun n child ->
              if Cells.classify child.cell c = Cells.Crossing then n + 1
              else n)
            0 children
        in
        let threshold =
          t.shallow_factor
          *. (log (float_of_int (max 2 (Array.length children))) /. log 2.)
        in
        if float_of_int crossing > threshold then begin
          (* not shallow at this node: delegate to the §5 secondary
             structure (its output term dominates, §6) *)
          t.secondary_uses <- t.secondary_uses + 1;
          let secondary, pids = Hashtbl.find t.secondaries id in
          Partition_tree.query_halfspace_iter secondary ~a0 ~a (fun i ->
              report pids.(i))
        end
        else
          Array.iter
            (fun child ->
              match Cells.classify child.cell c with
              | Cells.Inside -> report_subtree t ~report child.sub
              | Cells.Outside -> ()
              | Cells.Crossing -> go child.sub)
            children
  in
  match t.root with None -> () | Some root -> go root

let query_halfspace t ~a0 ~a =
  let acc = ref [] in
  query_halfspace_iter t ~a0 ~a (fun pid -> acc := pid :: !acc);
  !acc

let query_halfspace_into t ~a0 ~a r =
  query_halfspace_iter t ~a0 ~a (Emio.Reporter.add r)

let query_halfspace_count t ~a0 ~a =
  let n = ref 0 in
  query_halfspace_iter t ~a0 ~a (fun _ -> incr n);
  !n
