(** Three-dimensional halfspace range reporting (§4.2, Theorem 4.4):
    O(n log2 n) expected blocks, O(log_B n + t) expected I/Os.

    Preprocess N points of R^3; a query is a closed halfspace
    [z <= a x + b y + c] and reports every point inside it.  In the
    dual, the points become planes and the query a point p; the T
    planes below p are found by asking the {!Lowest_planes} structure
    for the k lowest planes along the vertical line through p for
    k = β, 2β, 4β, ..., halting as soon as one of the k retrieved
    planes lies above p (§4.2). *)

type t

val build :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  ?seed:int ->
  ?copies:int ->
  ?clip:float * float * float * float ->
  Geom.Point3.t array ->
  t
(** [clip] bounds the (a, b) coefficient region of the query
    halfspaces; queries outside fall back to an exact O(n) scan. *)

val query : t -> a:float -> b:float -> c:float -> Geom.Point3.t list
(** All points with [z <= a x + b y + c] (within {!Geom.Eps}). *)

val query_count : t -> a:float -> b:float -> c:float -> int

val query_ids : t -> a:float -> b:float -> c:float -> int list
(** Indices into the build-time point array ({!Tradeoff3d} composes on
    these). *)

val query_ids_into : t -> a:float -> b:float -> c:float -> Emio.Reporter.t -> unit
(** Same protocol as {!query_ids}, appending ids to a reusable
    {!Emio.Reporter}; failed doubling attempts roll back via
    {!Emio.Reporter.mark}/{!Emio.Reporter.truncate}, so queries build
    no intermediate lists. *)

val length : t -> int
val space_blocks : t -> int

val fallbacks : t -> int
(** Queries that used the exact full-scan fallback. *)

val points : t -> Geom.Point3.t array
(** The build-time point array ([query_ids] indices point into it). *)

(** {2 Persistence} *)

type portable

val to_portable : ?embed_payload:bool -> t -> portable
(** Plain-data form; with [~embed_payload:false] (the snapshot case)
    the all-planes payload must come back through [of_portable]'s
    [backend]. *)

val of_portable :
  stats:Emio.Io_stats.t ->
  ?backend:Emio.Store_intf.backend ->
  portable ->
  t

val portable_codec : portable Emio.Codec.t

val snapshot_kind : string
(** ["lcsearch.h3"]. *)

val save_snapshot :
  t -> path:string -> ?meta:string -> ?page_size:int -> unit -> unit

val of_snapshot :
  stats:Emio.Io_stats.t ->
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  string ->
  (t * Diskstore.Snapshot.info, Diskstore.Snapshot.error) result
