open Geom

type t = {
  lp : Lowest_planes.t;
  points : Point2.t array;
  beta : int;
}

let length t = Array.length t.points
let space_blocks t = Lowest_planes.space_blocks t.lp

let log_base b x = log x /. log b

let compute_beta ~block_size n_points =
  let n = float_of_int (max 1 ((n_points + block_size - 1) / block_size)) in
  let b = float_of_int block_size in
  max 1 (int_of_float (ceil (b *. max 1. (log_base b n))))

let build ~stats ~block_size ?(cache_blocks = 0) ?(seed = 0) ?(copies = 3)
    ?clip points =
  let planes = Array.map Plane3.lift points in
  let lp =
    Lowest_planes.build ~stats ~block_size ~cache_blocks ~seed ~copies ?clip
      planes
  in
  { lp; points; beta = compute_beta ~block_size (Array.length points) }

(* Same doubling protocol as §4.2: fetch the k lowest lifted planes
   along the vertical line at the center until one of them exceeds the
   lifted threshold r^2 - |c|^2.  Failed attempts roll back to the
   reporter mark, so retries build no intermediate lists. *)
let query_ids_into t ~center ~radius r =
  let n = Array.length t.points in
  if n = 0 then ()
  else begin
    let x = Point2.x center and y = Point2.y center in
    let threshold = (radius *. radius) -. (x *. x) -. (y *. y) +. Eps.eps in
    let rec go k =
      let k = min k n in
      let m = Emio.Reporter.mark r in
      let pushed, retrieved =
        Lowest_planes.k_lowest_into t.lp ~x ~y ~k ~threshold r
      in
      if pushed < retrieved || k >= n then ()
      else begin
        Emio.Reporter.truncate r m;
        go (2 * k)
      end
    in
    go t.beta
  end

let query_ids t ~center ~radius =
  let r = Emio.Reporter.create () in
  query_ids_into t ~center ~radius r;
  Emio.Reporter.to_list r

let query t ~center ~radius =
  List.map (fun id -> t.points.(id)) (query_ids t ~center ~radius)

let query_count t ~center ~radius =
  let n = Array.length t.points in
  if n = 0 then 0
  else begin
    let x = Point2.x center and y = Point2.y center in
    let threshold = (radius *. radius) -. (x *. x) -. (y *. y) +. Eps.eps in
    let rec go k =
      let k = min k n in
      let inside, retrieved =
        Lowest_planes.k_lowest_count t.lp ~x ~y ~k ~threshold
      in
      if inside < retrieved || k >= n then inside else go (2 * k)
    in
    go t.beta
  end
