(** k-nearest-neighbor searching in the plane via the lifting map
    (Theorem 4.3): O(n log2 n) expected blocks, O(log_B n + k/B)
    expected I/Os per query.

    Each point (a, b) lifts to the plane z = a² + b² - 2a x - 2b y;
    the vertical order of the lifted planes at (x, y) is the order of
    distance from (x, y), so the k nearest neighbors are the k lowest
    planes along the vertical line through the query
    ({!Lowest_planes}). *)

type t

val build :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  ?seed:int ->
  ?copies:int ->
  ?clip:float * float * float * float ->
  Geom.Point2.t array ->
  t
(** [clip] bounds the query region; default (-1000,-1000,1000,1000). *)

val nearest : t -> Geom.Point2.t -> k:int -> (Geom.Point2.t * float) list
(** The [min k N] nearest input points, with their distances, ordered
    by increasing distance. *)

val nearest_into : t -> Geom.Point2.t -> k:int -> Emio.Reporter.t -> unit
(** Appends the ids (indices into the build-time array) of the
    [min k N] nearest points to a reusable {!Emio.Reporter}, nearest
    first — the distances are recomputable from the points, so the hot
    path allocates nothing per result. *)

val length : t -> int
val space_blocks : t -> int
