(** The optimal two-dimensional halfspace range reporting structure of
    §3 (Theorem 3.5): O(n) blocks of space, O(log_B n + t) I/Os per
    query, where n = N/B and t = T/B.

    Preprocess N points of the plane; a query is a closed halfplane
    [y <= a x + b] and reports every point inside it.

    The structure works in the dual (§2.1): the points become lines,
    the query becomes a point, and reporting points below the query
    line becomes reporting lines below the query point.  The lines are
    partitioned into layers L_1, L_2, ..., each stored as the greedy
    3λ-clustering of a random level λ_i ∈ [β, 2β] of the remaining
    arrangement, β = B log_B n.  A query walks the layers in order and
    stops at the first layer where fewer than λ_i lines of the relevant
    cluster lie below the query point — by Lemma 3.1 that cluster then
    contains every remaining answer. *)

type t

val build :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  ?backend:Emio.Store_intf.backend ->
  ?seed:int ->
  Geom.Point2.t array ->
  t
(** Duplicate points are stored once with multiplicity.  [seed] drives
    the random level choices (λ_i); default 0 makes builds
    deterministic.  [backend] places the entry store on an external
    (file) backend instead of the in-memory simulator. *)

val query : t -> slope:float -> icept:float -> Geom.Point2.t list
(** All input points (with multiplicity) satisfying
    [y <= slope * x + icept], up to the {!Geom.Eps} tolerance. *)

val query_count : t -> slope:float -> icept:float -> int
(** [List.length (query ...)], without materializing the list. *)

val query_iter :
  t -> slope:float -> icept:float -> (Geom.Point2.t -> unit) -> unit
(** Visitor form: calls the callback once per answering point (with
    multiplicity), running the identical layer walk as {!query} without
    materializing results — the structure reports points, not ids, so
    the zero-allocation sink here is a point callback. *)

val length : t -> int
(** Number of points stored. *)

val layers : t -> int
(** Number of layers m (paper: m <= n / log_B n). *)

val lambdas : t -> int array
(** The random level λ_i used by each layer (the last entry is 0 for
    the final plain-scan layer, if present). *)

val space_blocks : t -> int
(** Disk blocks used — Theorem 3.5 promises O(n). *)

val block_size : t -> int

val last_clusters_visited : t -> int
(** Total clusters scanned by the most recent query, summed over the
    layers it visited — Lemma 3.4 bounds this by O(T_i/λ_i + 1) per
    layer; the Figure 5 bench audits it. *)

val last_layers_visited : t -> int
(** Layers the most recent query visited before halting. *)

val snapshot_kind : string
(** Kind tag stored in this structure's snapshot headers. *)

val save_snapshot :
  t -> path:string -> ?meta:string -> ?page_size:int -> unit -> unit
(** Persist the structure: entry blocks become checksummed payload
    pages, layers and boundary B-trees become the skeleton.  See
    {!Diskstore.Snapshot}. *)

val of_snapshot :
  stats:Emio.Io_stats.t ->
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  string ->
  (t * Diskstore.Snapshot.info, Diskstore.Snapshot.error) result
(** Reopen a snapshot for querying: entry blocks are served from the
    file through a buffer pool; corruption (bad magic, bad CRC,
    truncation) is returned as a typed error. *)
