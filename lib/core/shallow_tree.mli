(** The shallow partition tree of §6 (Theorem 6.3 and the d-dimensional
    remark): O(n log_B n) blocks; 3-dimensional halfspace queries in
    O(n^ε + t) I/Os, d-dimensional ones in O(n^{1-1/⌊d/2⌋+ε} + t).

    Every node carries a shallow partition (Theorem 6.2, realized by
    the heuristic {!Partition.Partitioner.shallow} — DESIGN.md
    substitution 6) and, as a secondary structure, an ordinary
    partition tree (§5) over the same points.  A query counts how many
    child cells its hyperplane crosses: more than β log2 r of them
    certifies the query is not (N_v/r)-shallow at this node, and the
    whole subquery is handed to the secondary tree, whose
    O(n_v^{1-1/d} + t_v) cost is then dominated by the output term. *)

type t

val build :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  ?backend:Emio.Store_intf.backend ->
  ?shallow_factor:float ->
  dim:int ->
  Partition.Cells.point array ->
  t
(** [shallow_factor] scales the β log2 r crossing threshold
    (default 2.0). *)

val query_halfspace : t -> a0:float -> a:float array -> int list
(** Points satisfying [x_d <= a0 + Σ a_i x_i]. *)

val query_halfspace_into :
  t -> a0:float -> a:float array -> Emio.Reporter.t -> unit
(** Same traversal (I/O-identical), appending ids to a reusable
    {!Emio.Reporter} instead of building a list. *)

val query_halfspace_count : t -> a0:float -> a:float array -> int
(** Same traversal, counting only — allocation-free reporting. *)

val query_halfspace_iter :
  t -> a0:float -> a:float array -> (int -> unit) -> unit
(** Visitor form underlying the variants above. *)

val length : t -> int
val dim : t -> int
val space_blocks : t -> int

val last_secondary_uses : t -> int
(** How many nodes of the most recent query bailed out to their
    secondary structure — the benches report it to show shallow
    queries stay on the shallow path. *)

val points : t -> Partition.Cells.point array
(** The build-time points, re-read from the leaf blocks in pid order. *)

(** {2 Persistence} *)

val snapshot_kind : string
(** ["lcsearch.shallow"]. *)

val save_snapshot :
  t -> path:string -> ?meta:string -> ?page_size:int -> unit -> unit

val of_snapshot :
  stats:Emio.Io_stats.t ->
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  string ->
  (t * Diskstore.Snapshot.info, Diskstore.Snapshot.error) result
