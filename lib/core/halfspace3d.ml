open Geom

type t = {
  lp : Lowest_planes.t;
  points : Point3.t array; (* id -> original point, for reporting *)
  beta : int;
}

let length t = Array.length t.points
let space_blocks t = Lowest_planes.space_blocks t.lp
let fallbacks t = Lowest_planes.fallbacks t.lp

let log_base b x = log x /. log b

let compute_beta ~block_size n_points =
  let n = float_of_int (max 1 ((n_points + block_size - 1) / block_size)) in
  let b = float_of_int block_size in
  max 1 (int_of_float (ceil (b *. max 1. (log_base b n))))

let build ~stats ~block_size ?(cache_blocks = 0) ?(seed = 0) ?(copies = 3)
    ?clip points =
  let planes = Array.map Plane3.dual_plane_of_point points in
  let lp =
    Lowest_planes.build ~stats ~block_size ~cache_blocks ~seed ~copies ?clip
      planes
  in
  { lp; points; beta = compute_beta ~block_size (Array.length points) }

(* §4.2: probe k = beta, 2 beta, 4 beta, ... until one of the k lowest
   dual planes along the vertical line through the dual query point
   lies strictly above it.  The reporter sink absorbs the speculative
   retries: each attempt reports straight into [r] and a failed attempt
   rolls back to the mark, so no intermediate lists are built. *)
let query_ids_into t ~a ~b ~c r =
  let n = Array.length t.points in
  if n = 0 then ()
  else begin
    let threshold = c +. Eps.eps in
    let rec go k =
      let k = min k n in
      let m = Emio.Reporter.mark r in
      let pushed, retrieved =
        Lowest_planes.k_lowest_into t.lp ~x:a ~y:b ~k ~threshold r
      in
      if pushed < retrieved || k >= n then ()
      else begin
        Emio.Reporter.truncate r m;
        go (2 * k)
      end
    in
    go t.beta
  end

let query_ids t ~a ~b ~c =
  let r = Emio.Reporter.create () in
  query_ids_into t ~a ~b ~c r;
  Emio.Reporter.to_list r

let query t ~a ~b ~c =
  List.map (fun id -> t.points.(id)) (query_ids t ~a ~b ~c)

let query_count t ~a ~b ~c =
  let n = Array.length t.points in
  if n = 0 then 0
  else begin
    let threshold = c +. Eps.eps in
    let rec go k =
      let k = min k n in
      let below, retrieved =
        Lowest_planes.k_lowest_count t.lp ~x:a ~y:b ~k ~threshold
      in
      if below < retrieved || k >= n then below else go (2 * k)
    in
    go t.beta
  end

let points t = t.points

(* -- persistence -------------------------------------------------- *)

type portable = {
  hp_lp : Lowest_planes.portable;
  hp_points : Point3.t array;
  hp_beta : int;
}

let to_portable ?(embed_payload = true) t =
  {
    hp_lp = Lowest_planes.to_portable ~embed_payload t.lp;
    hp_points = t.points;
    hp_beta = t.beta;
  }

let of_portable ~stats ?backend p =
  {
    lp = Lowest_planes.of_portable ~stats ?backend p.hp_lp;
    points = p.hp_points;
    beta = p.hp_beta;
  }

let portable_codec =
  Emio.Codec.map
    ~decode:(fun (hp_lp, hp_points, hp_beta) -> { hp_lp; hp_points; hp_beta })
    ~encode:(fun p -> (p.hp_lp, p.hp_points, p.hp_beta))
    Emio.Codec.(
      triple Lowest_planes.portable_codec (array Point3.codec) int)

let snapshot_kind = "lcsearch.h3"

let skeleton_codec =
  Emio.Codec.versioned ~magic:snapshot_kind ~version:2 portable_codec

let save_snapshot t ~path ?meta ?page_size () =
  Diskstore.Snapshot.save ~path ~kind:snapshot_kind ?meta ?page_size
    ~block_size:(Lowest_planes.payload_block_size t.lp)
    ~payload:(Lowest_planes.export_payload t.lp)
    ~skeleton:
      (Emio.Codec.encode skeleton_codec (to_portable ~embed_payload:false t))
    ()

let of_snapshot ~stats ?policy ?cache_pages path =
  match
    Diskstore.Snapshot.load ~path ~stats ?policy ?cache_pages
      ~expect_kind:snapshot_kind ()
  with
  | Error _ as e -> e
  | Ok opened ->
      let result =
        match
          Diskstore.Snapshot.decode_skeleton skeleton_codec
            opened.Diskstore.Snapshot.skeleton
        with
        | Error _ as e -> e
        | Ok p ->
            Diskstore.Snapshot.reconstruct (fun () ->
                ( of_portable ~stats
                    ~backend:opened.Diskstore.Snapshot.backend p,
                  opened.Diskstore.Snapshot.info ))
      in
      (match result with
      | Error _ -> Diskstore.Snapshot.close opened
      | Ok _ -> ());
      result
