(** A certificate-enhanced 3-D partition tree: the upgrade path noted
    in DESIGN.md §7 for Table 1 row 3.

    The §5/§6 trees classify children by their *cells*, so a halfspace
    whose boundary slices a cell forces a recursion even when none of
    the child's points is below it.  Here every child also carries two
    certificates — the vertices of its points' lower and upper convex
    hulls — so the query can decide "no point below" (skip) and "all
    points below" (report the subtree) exactly:

    - the minimum of the affine gap z - a x - b y - a0 over a point set
      is attained at a lower-hull vertex (the z-coefficient is +1), and
      the maximum at an upper-hull vertex;
    - a child is recursed into only when the query plane genuinely
      separates its points, and separated children each contribute at
      least one output point, so a query visits
      O((T + 1) · depth) nodes — an output-sensitive bound: near-empty
      queries cost O(log_B n) I/Os instead of O(n^{2/3}).

    Certificates are stored in blocked runs and read only when the
    bounding box is inconclusive; children whose hulls would exceed the
    certificate cap fall back to plain cell classification, so space
    stays O(n) up to the (empirically small) hull sizes.  The EXT4
    bench compares this tree with the §5 and §6 structures. *)

type t

val build :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  ?cert_cap:int ->
  Geom.Point3.t array ->
  t
(** [cert_cap] (default 2·B) bounds each stored certificate; larger
    hulls are dropped rather than truncated (truncation would be
    unsound). *)

val query_ids : t -> a0:float -> a:float array -> int list
(** Indices of the points with [z <= a0 + a.(0) x + a.(1) y]. *)

val query_count : t -> a0:float -> a:float array -> int
(** Same traversal as {!query_ids}, counting only (allocation-free). *)

val query_ids_into : t -> a0:float -> a:float array -> Emio.Reporter.t -> unit
(** Same traversal, appending ids to a reusable {!Emio.Reporter}. *)

val length : t -> int
val space_blocks : t -> int

val last_visited_nodes : t -> int
(** Nodes the most recent query recursed into — the benches verify the
    output-sensitive O((T+1) · depth) visit bound with it. *)

val certificate_items : t -> int
(** Total certificate points stored (the space overhead beyond the
    plain §5 tree). *)

val points : t -> Geom.Point3.t array
(** The build-time points, re-read from the leaf blocks in pid order. *)

(** {2 Persistence} *)

val snapshot_kind : string
(** ["lcsearch.cert"]. *)

val save_snapshot :
  t -> path:string -> ?meta:string -> ?page_size:int -> unit -> unit

val of_snapshot :
  stats:Emio.Io_stats.t ->
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  string ->
  (t * Diskstore.Snapshot.info, Diskstore.Snapshot.error) result
