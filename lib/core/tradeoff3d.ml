open Geom
open Partition

(* The space/query tradeoff of §6 (Theorem 6.1): a §5 partition tree
   whose recursion stops at subsets of size B^a, each stored in a §4
   structure.  Space O(n log2 B) blocks; queries cost
   O((n / B^{a-1})^{2/3+eps} + t) expected I/Os. *)

type leaf = {
  hs : Halfspace3d.t; (* §4 structure over the leaf's points *)
  run : int Emio.Run.t; (* pids, for whole-leaf reporting *)
  pids : int array;
}

type node_ref = Leaf of int | Node of int

type child = { cell : Cells.cell; sub : node_ref }

type t = {
  internals : child Emio.Store.t;
  pid_store : int Emio.Store.t;
  leaves : leaf Vec.t;
  root : node_ref option;
  length : int;
  leaf_capacity : int;
  exponent : float;
  mutable secondary_queries : int;
}

let length t = t.length
let leaf_capacity t = t.leaf_capacity
let exponent t = t.exponent
let last_secondary_queries t = t.secondary_queries

let space_blocks t =
  let acc = ref (Emio.Store.blocks_used t.internals) in
  Vec.iter
    (fun l ->
      acc := !acc + Halfspace3d.space_blocks l.hs + Emio.Run.block_count l.run)
    t.leaves;
  !acc

let coords_of_point3 p = [| Point3.x p; Point3.y p; Point3.z p |]

let build ~stats ~block_size ?(cache_blocks = 0) ?(seed = 0) ?(a = 1.5) ?clip
    ?(copies = 3) points =
  if a <= 1. then invalid_arg "Tradeoff3d.build: need a > 1";
  if copies < 1 then invalid_arg "Tradeoff3d.build: need copies >= 1";
  let leaf_capacity =
    max (4 * block_size)
      (int_of_float (Float.pow (float_of_int block_size) a))
  in
  let internals = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let pid_store =
    Emio.Store.create ~stats ~block_size ~cache_blocks ~codec:Emio.Codec.int ()
  in
  let leaves : leaf Vec.t = Vec.create () in
  let make_leaf (items : (Point3.t * int) array) =
    let pts = Array.map fst items in
    let pids = Array.map snd items in
    let hs =
      Halfspace3d.build ~stats ~block_size ~cache_blocks ~seed ~copies ?clip
        pts
    in
    Leaf
      (Vec.push_idx leaves
         { hs; run = Emio.Run.of_array pid_store pids; pids })
  in
  let rec build_node (items : (Point3.t * int) array) =
    let nv = Array.length items in
    if nv <= leaf_capacity then make_leaf items
    else begin
      let n_blocks = (nv + block_size - 1) / block_size in
      (* cap the fan-out so children stay around B^a points: otherwise
         one Θ(B)-way split overshoots the leaf capacity entirely and
         every choice of [a] would produce the same tree *)
      let r_target = (nv + leaf_capacity - 1) / leaf_capacity in
      let r = max 2 (min (min block_size (2 * n_blocks)) r_target) in
      let coords = Array.map (fun (p, _) -> coords_of_point3 p) items in
      let parts = Partitioner.kd ~points:coords ~r in
      let children =
        Array.map
          (fun (cell, idxs) ->
            { cell; sub = build_node (Array.map (fun i -> items.(i)) idxs) })
          parts
      in
      Node (Emio.Store.alloc internals children)
    end
  in
  let items = Array.mapi (fun i p -> (p, i)) points in
  let root = if Array.length items = 0 then None else Some (build_node items) in
  {
    internals;
    pid_store;
    leaves;
    root;
    length = Array.length points;
    leaf_capacity;
    exponent = a;
    secondary_queries = 0;
  }

let rec report_subtree t ~report = function
  | Leaf li ->
      let l = Vec.get t.leaves li in
      Emio.Run.iter report l.run
  | Node id ->
      Array.iter
        (fun child -> report_subtree t ~report child.sub)
        (Emio.Store.read t.internals id)

(* The shared traversal: leaves delegate to the §4 structure through
   the reporter (its doubling retries need mark/truncate rollback, so
   a plain callback will not do), then the local ids are remapped to
   global pids in place. *)
let query_ids_into t ~a ~b ~c r =
  t.secondary_queries <- 0;
  let constr = Cells.constr_of_halfspace ~dim:3 ~a0:c ~a:[| a; b |] in
  let report pid = Emio.Reporter.add r pid in
  let rec go = function
    | Leaf li ->
        t.secondary_queries <- t.secondary_queries + 1;
        let l = Vec.get t.leaves li in
        let m = Emio.Reporter.mark r in
        Halfspace3d.query_ids_into l.hs ~a ~b ~c r;
        Emio.Reporter.rewrite_from r m (fun i -> l.pids.(i))
    | Node id ->
        Array.iter
          (fun child ->
            match Cells.classify child.cell constr with
            | Cells.Inside -> report_subtree t ~report child.sub
            | Cells.Outside -> ()
            | Cells.Crossing -> go child.sub)
          (Emio.Store.read t.internals id)
  in
  match t.root with None -> () | Some root -> go root

let query_ids t ~a ~b ~c =
  let r = Emio.Reporter.create () in
  query_ids_into t ~a ~b ~c r;
  Emio.Reporter.to_list r

let query t ~a ~b ~c = query_ids t ~a ~b ~c

let query_count t ~a ~b ~c =
  t.secondary_queries <- 0;
  let constr = Cells.constr_of_halfspace ~dim:3 ~a0:c ~a:[| a; b |] in
  let n = ref 0 in
  let report _pid = incr n in
  let rec go = function
    | Leaf li ->
        t.secondary_queries <- t.secondary_queries + 1;
        let l = Vec.get t.leaves li in
        n := !n + Halfspace3d.query_count l.hs ~a ~b ~c
    | Node id ->
        Array.iter
          (fun child ->
            match Cells.classify child.cell constr with
            | Cells.Inside -> report_subtree t ~report child.sub
            | Cells.Outside -> ()
            | Cells.Crossing -> go child.sub)
          (Emio.Store.read t.internals id)
  in
  (match t.root with None -> () | Some root -> go root);
  !n

let points t =
  let out = Array.make t.length (Point3.make 0. 0. 0.) in
  Vec.iter
    (fun l ->
      Array.iteri
        (fun i p -> out.(l.pids.(i)) <- p)
        (Halfspace3d.points l.hs))
    t.leaves;
  out

(* -- persistence: the shared pid store is the payload; internals,
   the per-leaf §4 structures (fully embedded, since their payload
   stores are private to each leaf) and the pid runs ride in the
   skeleton ---------------------------------------------------------- *)

let node_ref_codec =
  Emio.Codec.map
    ~decode:(fun (tag, id) ->
      match tag with
      | 0 -> Leaf id
      | 1 -> Node id
      | t -> raise (Emio.Codec.Decode (Printf.sprintf "bad node_ref tag %d" t)))
    ~encode:(function Leaf id -> (0, id) | Node id -> (1, id))
    Emio.Codec.(pair u8 int)

let child_codec =
  Emio.Codec.map
    ~decode:(fun (cell, sub) -> { cell; sub })
    ~encode:(fun c -> (c.cell, c.sub))
    Emio.Codec.(pair Cells.cell_codec node_ref_codec)

type leaf_p = {
  lp_hs : Halfspace3d.portable;
  lp_run : int array * int;
  lp_pids : int array;
}

type portable = {
  op_internal_blocks : child array array;
  op_leaves : leaf_p array;
  op_root : node_ref option;
  op_length : int;
  op_leaf_capacity : int;
  op_exponent : float;
  op_block_size : int;
  op_cache_blocks : int;
}

let to_portable t =
  {
    op_internal_blocks = Emio.Store.to_blocks t.internals;
    op_leaves =
      Array.map
        (fun l ->
          { lp_hs = Halfspace3d.to_portable l.hs;
            lp_run = Emio.Run.to_portable l.run;
            lp_pids = l.pids })
        (Vec.to_array t.leaves);
    op_root = t.root;
    op_length = t.length;
    op_leaf_capacity = t.leaf_capacity;
    op_exponent = t.exponent;
    op_block_size = Emio.Store.block_size t.pid_store;
    op_cache_blocks = Emio.Store.cache_blocks t.pid_store;
  }

let of_portable ~stats ~backend p =
  let block_size = p.op_block_size and cache_blocks = p.op_cache_blocks in
  let pid_store =
    Emio.Store.of_backend ~stats ~block_size ~cache_blocks
      ~codec:Emio.Codec.int backend
  in
  let leaves : leaf Vec.t = Vec.create () in
  Array.iter
    (fun lp ->
      ignore
        (Vec.push_idx leaves
           { hs = Halfspace3d.of_portable ~stats lp.lp_hs;
             run = Emio.Run.of_portable pid_store lp.lp_run;
             pids = lp.lp_pids }))
    p.op_leaves;
  {
    internals =
      Emio.Store.of_blocks ~stats ~block_size ~cache_blocks
        p.op_internal_blocks;
    pid_store;
    leaves;
    root = p.op_root;
    length = p.op_length;
    leaf_capacity = p.op_leaf_capacity;
    exponent = p.op_exponent;
    secondary_queries = 0;
  }

let portable_codec =
  let open Emio.Codec in
  let leaf_p_codec =
    map
      ~decode:(fun (hs, run, pids) ->
        { lp_hs = hs; lp_run = run; lp_pids = pids })
      ~encode:(fun l -> (l.lp_hs, l.lp_run, l.lp_pids))
      (triple Halfspace3d.portable_codec Emio.Run.portable_codec (array int))
  in
  map
    ~decode:(fun ((ib, ls), (root, len, cap), (ex, bs, cb)) ->
      { op_internal_blocks = ib; op_leaves = ls; op_root = root;
        op_length = len; op_leaf_capacity = cap; op_exponent = ex;
        op_block_size = bs; op_cache_blocks = cb })
    ~encode:(fun p ->
      ( (p.op_internal_blocks, p.op_leaves),
        (p.op_root, p.op_length, p.op_leaf_capacity),
        (p.op_exponent, p.op_block_size, p.op_cache_blocks) ))
    (triple
       (pair (array (array child_codec)) (array leaf_p_codec))
       (triple (option node_ref_codec) int int)
       (triple float int int))

let snapshot_kind = "lcsearch.tradeoff"

let skeleton_codec =
  Emio.Codec.versioned ~magic:snapshot_kind ~version:2 portable_codec

let save_snapshot t ~path ?meta ?page_size () =
  Diskstore.Snapshot.save ~path ~kind:snapshot_kind ?meta ?page_size
    ~block_size:(Emio.Store.block_size t.pid_store)
    ~payload:(Emio.Store.export_bytes t.pid_store)
    ~skeleton:(Emio.Codec.encode skeleton_codec (to_portable t))
    ()

let of_snapshot ~stats ?policy ?cache_pages path =
  match
    Diskstore.Snapshot.load ~path ~stats ?policy ?cache_pages
      ~expect_kind:snapshot_kind ()
  with
  | Error _ as e -> e
  | Ok opened ->
      let result =
        match
          Diskstore.Snapshot.decode_skeleton skeleton_codec
            opened.Diskstore.Snapshot.skeleton
        with
        | Error _ as e -> e
        | Ok p ->
            Diskstore.Snapshot.reconstruct (fun () ->
                ( of_portable ~stats
                    ~backend:opened.Diskstore.Snapshot.backend p,
                  opened.Diskstore.Snapshot.info ))
      in
      (match result with
      | Error _ -> Diskstore.Snapshot.close opened
      | Ok _ -> ());
      result
