open Geom

type t = { lp : Lowest_planes.t; points : Point2.t array }

let length t = Array.length t.points
let space_blocks t = Lowest_planes.space_blocks t.lp

let build ~stats ~block_size ?(cache_blocks = 0) ?(seed = 0) ?(copies = 3)
    ?clip points =
  let planes = Array.map Plane3.lift points in
  let lp =
    Lowest_planes.build ~stats ~block_size ~cache_blocks ~seed ~copies ?clip
      planes
  in
  { lp; points }

let nearest t q ~k =
  let x = Point2.x q and y = Point2.y q in
  let lowest = Lowest_planes.k_lowest t.lp ~x ~y ~k in
  (* the lifted height at (x,y) is |p - q|^2 - |q|^2 *)
  let norm_q = (x *. x) +. (y *. y) in
  List.map
    (fun (id, h) -> (t.points.(id), sqrt (max 0. (h +. norm_q))))
    lowest

let nearest_into t q ~k r =
  let x = Point2.x q and y = Point2.y q in
  let lowest = Lowest_planes.k_lowest_arr t.lp ~x ~y ~k in
  Array.iter (fun (id, _) -> Emio.Reporter.add r id) lowest
