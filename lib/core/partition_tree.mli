(** The linear-size d-dimensional partition tree of §5 (Theorem 5.2):
    O(n) blocks, O(n^{1-1/d+ε} + t) I/Os per halfspace query — and the
    same bound for simplex queries (§5 remark (i)).

    Every node v holds a balanced partition (Theorem 5.1, realized by
    the {!Partition.Partitioner}s — DESIGN.md substitution 5) of its
    points into r_v = min(B, 2 n_v) parts, each pair (cell, child)
    stored in one disk block.  A query classifies every child cell:
    cells fully inside the query report their whole subtree in
    O(output/B) I/Os, cells fully outside are skipped, and crossing
    cells — at most O(r^{1-1/d}) of them — are visited recursively. *)

type t

type kind = Kd | Simplicial | Shallow

val build :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  ?backend:Emio.Store_intf.backend ->
  ?partitioner:kind ->
  dim:int ->
  Partition.Cells.point array ->
  t
(** [partitioner] defaults to [Kd].  All points must have [dim]
    coordinates. *)

val query_halfspace : t -> a0:float -> a:float array -> int list
(** Indices (into the build-time array) of the points satisfying
    [x_d <= a0 + Σ a_i x_i]. *)

val query_simplex : t -> Partition.Cells.constr list -> int list
(** Points satisfying every constraint (a simplex, or any convex
    polytope, as an intersection of halfspaces). *)

(** {2 Zero-allocation reporting}

    The [_into] variants append the answer ids to an {!Emio.Reporter}
    instead of building a list, and the [_count] variants just count —
    both run the identical traversal (same I/Os charged, same
    [last_visited_nodes]) without materializing results. *)

val query_halfspace_into :
  t -> a0:float -> a:float array -> Emio.Reporter.t -> unit

val query_halfspace_count : t -> a0:float -> a:float array -> int
val query_simplex_into : t -> Partition.Cells.constr list -> Emio.Reporter.t -> unit
val query_simplex_count : t -> Partition.Cells.constr list -> int

val query_halfspace_iter : t -> a0:float -> a:float array -> (int -> unit) -> unit
(** Visitor form: calls the callback once per reported id, in
    traversal order — the primitive the [_into]/[_count] variants and
    delegating structures ({!Shallow_tree}) are built on. *)

val query_simplex_iter : t -> Partition.Cells.constr list -> (int -> unit) -> unit

val length : t -> int
val dim : t -> int
val space_blocks : t -> int

val last_visited_nodes : t -> int
(** Number of tree nodes the most recent query recursed into (the μ of
    the Theorem 5.2 analysis) — benches use it to verify the
    O(n^{1-1/d}) recursion bound independently of I/O counts. *)

val points : t -> Partition.Cells.point array
(** The build-time points, re-read from the leaf blocks in pid order —
    O(n/B) I/Os (used when reviving dependent state from a snapshot). *)

(** {2 Persistence} *)

type portable

val to_portable : ?embed_payload:bool -> t -> portable
(** Plain-data form.  [embed_payload] (default [true]) also embeds the
    leaf blocks — needed when the tree is a component of another
    structure; the standalone snapshot keeps leaves as the payload
    section instead. *)

val of_portable :
  stats:Emio.Io_stats.t ->
  ?backend:Emio.Store_intf.backend ->
  portable ->
  t

val portable_codec : portable Emio.Codec.t

val snapshot_kind : string
(** ["lcsearch.ptree"]. *)

val save_snapshot :
  t -> path:string -> ?meta:string -> ?page_size:int -> unit -> unit

val of_snapshot :
  stats:Emio.Io_stats.t ->
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  string ->
  (t * Diskstore.Snapshot.info, Diskstore.Snapshot.error) result
