(** The space/query-time tradeoff structure of §6 (Theorem 6.1): a §5
    partition tree whose recursion stops at subsets of B^a points, each
    preprocessed into a §4 structure.  Space O(n log2 B) blocks; a
    3-dimensional halfspace query costs O((n/B^{a-1})^{2/3+ε} + t)
    expected I/Os. *)

type t

val build :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  ?seed:int ->
  ?a:float ->
  ?clip:float * float * float * float ->
  ?copies:int ->
  Geom.Point3.t array ->
  t
(** [a] (default 1.5) sets the leaf capacity B^a; requires [a > 1].
    [clip] is forwarded to the §4 leaf structures. *)

val query_ids : t -> a:float -> b:float -> c:float -> int list
(** Indices of the points with [z <= a x + b y + c]. *)

val query : t -> a:float -> b:float -> c:float -> int list
(** Alias of {!query_ids}. *)

val query_count : t -> a:float -> b:float -> c:float -> int
(** Same traversal, counting only — no result list is materialized
    (the §4 leaf structures are asked to count too). *)

val query_ids_into :
  t -> a:float -> b:float -> c:float -> Emio.Reporter.t -> unit
(** Same traversal as {!query_ids}, appending the answer ids to a
    reusable {!Emio.Reporter}; §4 leaf answers are remapped to global
    ids in place via {!Emio.Reporter.rewrite_from}. *)

val length : t -> int
val leaf_capacity : t -> int
val space_blocks : t -> int

val last_secondary_queries : t -> int
(** §4 leaf structures consulted by the most recent query. *)

val points : t -> Geom.Point3.t array
(** The build-time points, reassembled from the §4 leaf structures in
    pid order. *)

val exponent : t -> float
(** The [a] the structure was built with (leaf capacity B^a). *)

(** {2 Persistence} *)

val snapshot_kind : string
(** ["lcsearch.tradeoff"]. *)

val save_snapshot :
  t -> path:string -> ?meta:string -> ?page_size:int -> unit -> unit

val of_snapshot :
  stats:Emio.Io_stats.t ->
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  string ->
  (t * Diskstore.Snapshot.info, Diskstore.Snapshot.error) result
