(** Deterministic workload generators for the experiments.

    Every generator takes an explicit seed, so bench runs are
    reproducible.  Coordinates stay within moderate ranges (the
    geometric kernels are tuned for them, see {!Geom.Eps}). *)

type rng = Random.State.t

val rng : int -> rng

(** {1 Two-dimensional point sets} *)

val uniform2 : rng -> n:int -> range:float -> Geom.Point2.t array
(** i.i.d. uniform in the square [-range, range]^2. *)

val clusters2 :
  rng -> n:int -> clusters:int -> sigma:float -> range:float ->
  Geom.Point2.t array
(** Gaussian clusters with centers uniform in the square. *)

val diagonal2 : rng -> n:int -> jitter:float -> range:float -> Geom.Point2.t array
(** The §1.2 adversary: points within [jitter] of the diagonal y = x.
    Heuristic structures degrade to Θ(n) I/Os on halfplane queries
    bounded by a slightly perturbed diagonal. *)

(** {1 Three-dimensional point sets} *)

val uniform3 : rng -> n:int -> range:float -> Geom.Point3.t array

val diagonal3 : rng -> n:int -> jitter:float -> range:float -> Geom.Point3.t array
(** 3-d analogue of {!diagonal2}: points within [jitter] of the space
    diagonal y = z = x, same jitter convention (uniform in
    [-jitter, jitter) around the line). *)

val clusters3 :
  rng -> n:int -> clusters:int -> sigma:float -> range:float ->
  Geom.Point3.t array

(** {1 d-dimensional point sets} *)

val uniform_d : rng -> n:int -> dim:int -> range:float -> Partition.Cells.point array

(** {1 Queries with controlled selectivity} *)

val halfplane_with_selectivity :
  rng -> Geom.Point2.t array -> fraction:float -> float * float
(** A halfplane [y <= slope x + icept] with a random slope whose
    intercept is chosen so that ~[fraction] of the points satisfy it —
    this is how the benches sweep the output size t. *)

val halfspace3_with_selectivity :
  rng -> Geom.Point3.t array -> fraction:float -> float * float * float
(** Same for [z <= a x + b y + c]. *)

val halfspace_d_with_selectivity :
  rng -> Partition.Cells.point array -> fraction:float -> float * float array
(** Same in d dimensions: returns (a0, a). *)
