open Geom

type rng = Random.State.t

let rng seed = Random.State.make [| seed; 0x5eed |]

let uniform rng range = Random.State.float rng (2. *. range) -. range

let gaussian rng =
  (* Box–Muller *)
  let u1 = max 1e-12 (Random.State.float rng 1.) in
  let u2 = Random.State.float rng 1. in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let uniform2 rng ~n ~range =
  Array.init n (fun _ -> Point2.make (uniform rng range) (uniform rng range))

let clusters2 rng ~n ~clusters ~sigma ~range =
  let centers =
    Array.init (max 1 clusters) (fun _ ->
        (uniform rng range, uniform rng range))
  in
  Array.init n (fun _ ->
      let cx, cy = centers.(Random.State.int rng (Array.length centers)) in
      Point2.make (cx +. (sigma *. gaussian rng)) (cy +. (sigma *. gaussian rng)))

let diagonal2 rng ~n ~jitter ~range =
  Array.init n (fun _ ->
      let x = uniform rng range in
      Point2.make x (x +. (uniform rng 1. *. jitter)))

let diagonal3 rng ~n ~jitter ~range =
  Array.init n (fun _ ->
      let x = uniform rng range in
      Point3.make x
        (x +. (uniform rng 1. *. jitter))
        (x +. (uniform rng 1. *. jitter)))

let uniform3 rng ~n ~range =
  Array.init n (fun _ ->
      Point3.make (uniform rng range) (uniform rng range) (uniform rng range))

let clusters3 rng ~n ~clusters ~sigma ~range =
  let centers =
    Array.init (max 1 clusters) (fun _ ->
        (uniform rng range, uniform rng range, uniform rng range))
  in
  Array.init n (fun _ ->
      let cx, cy, cz = centers.(Random.State.int rng (Array.length centers)) in
      Point3.make
        (cx +. (sigma *. gaussian rng))
        (cy +. (sigma *. gaussian rng))
        (cz +. (sigma *. gaussian rng)))

let uniform_d rng ~n ~dim ~range =
  Array.init n (fun _ -> Array.init dim (fun _ -> uniform rng range))

(* Pick the intercept as the [fraction]-quantile of the residuals so
   the query reports ~fraction * N points. *)
let quantile values fraction =
  let v = Array.copy values in
  Array.sort Float.compare v;
  let n = Array.length v in
  if n = 0 then 0.
  else begin
    let i = min (n - 1) (max 0 (int_of_float (fraction *. float_of_int n))) in
    v.(i)
  end

let halfplane_with_selectivity rng points ~fraction =
  let slope = uniform rng 1.5 in
  let residuals =
    Array.map (fun p -> Point2.y p -. (slope *. Point2.x p)) points
  in
  (slope, quantile residuals fraction)

let halfspace3_with_selectivity rng points ~fraction =
  let a = uniform rng 1.5 and b = uniform rng 1.5 in
  let residuals =
    Array.map
      (fun p -> Point3.z p -. (a *. Point3.x p) -. (b *. Point3.y p))
      points
  in
  (a, b, quantile residuals fraction)

let halfspace_d_with_selectivity rng points ~fraction =
  if Array.length points = 0 then (0., [||])
  else begin
    let d = Array.length points.(0) in
    let a = Array.init (d - 1) (fun _ -> uniform rng 1.5) in
    let residuals =
      Array.map
        (fun p ->
          let s = ref p.(d - 1) in
          Array.iteri (fun i ai -> s := !s -. (ai *. p.(i))) a;
          !s)
        points
    in
    (quantile residuals fraction, a)
  end
