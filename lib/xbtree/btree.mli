(** An external-memory B+-tree over a {!Emio.Store}.

    Each node occupies one disk block and has fan-out Θ(B), so a search
    costs O(log_B n) I/Os and a range report costs O(log_B n + t) I/Os
    — the classical bounds the paper cites as the one-dimensional
    optimum (§1.2).  The tree is bulk-loaded from sorted data; the
    paper's structures are static, so no dynamic updates are needed
    (a dynamic variant is an explicit open problem, §7).

    Used as: the boundary-point tree T_i and slope tree T* of §3, the
    one-dimensional baseline of the benchmarks, and a building block of
    the kd-B-tree baseline. *)

type ('k, 'v) t

val bulk_load :
  stats:Emio.Io_stats.t ->
  block_size:int ->
  ?cache_blocks:int ->
  cmp:('k -> 'k -> int) ->
  ('k * 'v) array ->
  ('k, 'v) t
(** Builds the tree from key–value pairs sorted by key ([cmp]); raises
    [Invalid_argument] if they are not sorted.  Equal keys are allowed
    and preserved.  O(n) block writes. *)

val length : ('k, 'v) t -> int
val height : ('k, 'v) t -> int

val space_blocks : ('k, 'v) t -> int
(** Total blocks occupied (leaves + internal nodes). *)

val stats : ('k, 'v) t -> Emio.Io_stats.t

val relink_stats : ('k, 'v) t -> Emio.Io_stats.t -> unit
(** Repoint both node stores at a fresh stats sink (used when a tree
    is revived from a snapshot skeleton in a new process). *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Some value with exactly this key, if any.  O(log_B n) I/Os. *)

val predecessor : ('k, 'v) t -> 'k -> ('k * 'v) option
(** Greatest entry with key <= the probe.  O(log_B n) I/Os. *)

val range : ('k, 'v) t -> lo:'k -> hi:'k -> ('k * 'v) list
(** All entries with lo <= key <= hi, in key order.
    O(log_B n + t) I/Os. *)

val iter_range : ('k, 'v) t -> lo:'k -> hi:'k -> ('k -> 'v -> unit) -> unit

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Full scan in key order, O(n) I/Os. *)

(** {2 Persistence}

    The on-disk form of a B-tree is everything except its comparator:
    node blocks, root pointer, and shape parameters.  The reopening
    side supplies [cmp] again — reconstructed from persisted build
    parameters, never serialized. *)

type ('k, 'v) portable

val to_portable : ('k, 'v) t -> ('k, 'v) portable
(** @raise Invalid_argument if the tree's stores are external. *)

val of_portable :
  stats:Emio.Io_stats.t -> cmp:('k -> 'k -> int) -> ('k, 'v) portable -> ('k, 'v) t

val portable_codec :
  'k Emio.Codec.t -> 'v Emio.Codec.t -> ('k, 'v) portable Emio.Codec.t
