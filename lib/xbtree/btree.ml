type root = Leaf_root of int | Node_root of int

type ('k, 'v) t = {
  leaves : ('k * 'v) Emio.Store.t;
  internals : ('k * int) Emio.Store.t;
  root : root;
  height : int;
  length : int;
  n_leaves : int;
  cmp : 'k -> 'k -> int;
}

let length t = t.length
let height t = t.height
let stats t = Emio.Store.stats t.leaves

let relink_stats t stats =
  Emio.Store.set_stats t.leaves stats;
  Emio.Store.set_stats t.internals stats

let space_blocks t =
  Emio.Store.blocks_used t.leaves + Emio.Store.blocks_used t.internals

let chunk ~size arr =
  let n = Array.length arr in
  let n_chunks = max 1 ((n + size - 1) / size) in
  Array.init n_chunks (fun i ->
      let lo = i * size in
      Array.sub arr lo (min size (n - lo)))

let bulk_load ~stats ~block_size ?(cache_blocks = 0) ~cmp entries =
  let n = Array.length entries in
  for i = 1 to n - 1 do
    if cmp (fst entries.(i - 1)) (fst entries.(i)) > 0 then
      invalid_arg "Btree.bulk_load: entries not sorted"
  done;
  let leaves = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let internals = Emio.Store.create ~stats ~block_size ~cache_blocks () in
  let leaf_blocks = chunk ~size:block_size entries in
  Array.iter (fun block -> ignore (Emio.Store.alloc leaves block)) leaf_blocks;
  let n_leaves = Array.length leaf_blocks in
  (* Build the internal levels bottom-up.  Each routing entry carries
     the minimum key of its child's subtree. *)
  let min_key_of_leaf i =
    let block = leaf_blocks.(i) in
    if Array.length block = 0 then None else Some (fst block.(0))
  in
  if n = 0 || n_leaves = 1 then
    {
      leaves;
      internals;
      root = Leaf_root 0;
      height = 1;
      length = n;
      n_leaves;
      cmp;
    }
  else begin
    let level =
      ref
        (Array.init n_leaves (fun i ->
             match min_key_of_leaf i with
             | Some k -> (k, i)
             | None -> assert false))
    in
    let height = ref 1 in
    while Array.length !level > 1 do
      let parents = chunk ~size:block_size !level in
      level :=
        Array.map
          (fun block ->
            let id = Emio.Store.alloc internals block in
            (fst block.(0), id))
          parents;
      incr height
    done;
    let _, root_id = (!level).(0) in
    {
      leaves;
      internals;
      root = Node_root root_id;
      height = !height;
      length = n;
      n_leaves;
      cmp;
    }
  end

(* Index of the last entry in [block] whose key (via [key_of]) is <= x,
   or -1 if none. *)
let last_leq cmp key_of block x =
  let lo = ref (-1) and hi = ref (Array.length block - 1) in
  (* invariant: entries <= lo satisfy key <= x; entries > hi don't *)
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if cmp (key_of block.(mid)) x <= 0 then lo := mid else hi := mid - 1
  done;
  !lo

(* Descend from the root to the leaf that may contain the predecessor
   of [x]; returns the leaf block id. *)
let descend t x =
  match t.root with
  | Leaf_root id -> id
  | Node_root root_id ->
      let rec go node_id depth =
        let block = Emio.Store.read t.internals node_id in
        let idx = last_leq t.cmp fst block x in
        let idx = max idx 0 (* x below everything: take leftmost path *) in
        let _, child = block.(idx) in
        if depth = 2 then child else go child (depth - 1)
      in
      go root_id t.height

let predecessor t x =
  if t.length = 0 then None
  else begin
    let leaf_id = ref (descend t x) in
    let result = ref None in
    (* the predecessor is in this leaf unless x precedes all its keys,
       in which case it is the last entry of some previous leaf *)
    let continue_search = ref true in
    while !continue_search do
      let block = Emio.Store.read t.leaves !leaf_id in
      let idx = last_leq t.cmp fst block x in
      if idx >= 0 then begin
        result := Some block.(idx);
        continue_search := false
      end
      else if !leaf_id = 0 then continue_search := false
      else leaf_id := !leaf_id - 1
    done;
    !result
  end

let find t x =
  match predecessor t x with
  | Some (k, v) when t.cmp k x = 0 -> Some v
  | _ -> None

let iter_range t ~lo ~hi f =
  if t.length > 0 && t.cmp lo hi <= 0 then begin
    let leaf_id = ref (descend t lo) in
    (* duplicates equal to [lo] may spill into earlier leaves *)
    let stepping_back = ref true in
    while !stepping_back && !leaf_id > 0 do
      let prev = Emio.Store.read t.leaves (!leaf_id - 1) in
      let len = Array.length prev in
      if len > 0 && t.cmp (fst prev.(len - 1)) lo >= 0 then
        leaf_id := !leaf_id - 1
      else stepping_back := false
    done;
    let finished = ref false in
    while not !finished do
      let block = Emio.Store.read t.leaves !leaf_id in
      Array.iter
        (fun (k, v) ->
          if t.cmp k hi > 0 then finished := true
          else if t.cmp lo k <= 0 then f k v)
        block;
      incr leaf_id;
      if !leaf_id >= t.n_leaves then finished := true
    done
  end

let range t ~lo ~hi =
  let acc = ref [] in
  iter_range t ~lo ~hi (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let to_list t =
  let acc = ref [] in
  for i = t.n_leaves - 1 downto 0 do
    let block = Emio.Store.read t.leaves i in
    for j = Array.length block - 1 downto 0 do
      acc := block.(j) :: !acc
    done
  done;
  !acc

(* -- persistence: the tree minus its comparator ------------------- *)

type ('k, 'v) portable = {
  p_leaf_blocks : ('k * 'v) array array;
  p_internal_blocks : ('k * int) array array;
  p_root : root;
  p_height : int;
  p_length : int;
  p_n_leaves : int;
  p_block_size : int;
  p_cache_blocks : int;
}

let to_portable t =
  {
    p_leaf_blocks = Emio.Store.to_blocks t.leaves;
    p_internal_blocks = Emio.Store.to_blocks t.internals;
    p_root = t.root;
    p_height = t.height;
    p_length = t.length;
    p_n_leaves = t.n_leaves;
    p_block_size = Emio.Store.block_size t.leaves;
    p_cache_blocks = Emio.Store.cache_blocks t.leaves;
  }

let of_portable ~stats ~cmp p =
  let block_size = p.p_block_size and cache_blocks = p.p_cache_blocks in
  {
    leaves = Emio.Store.of_blocks ~stats ~block_size ~cache_blocks p.p_leaf_blocks;
    internals =
      Emio.Store.of_blocks ~stats ~block_size ~cache_blocks p.p_internal_blocks;
    root = p.p_root;
    height = p.p_height;
    length = p.p_length;
    n_leaves = p.p_n_leaves;
    cmp;
  }

let portable_codec key value =
  let open Emio.Codec in
  let root_codec =
    map
      ~decode:(fun (tag, id) ->
        match tag with
        | 0 -> Leaf_root id
        | 1 -> Node_root id
        | t -> raise (Decode (Printf.sprintf "bad btree root tag %d" t)))
      ~encode:(function Leaf_root id -> (0, id) | Node_root id -> (1, id))
      (pair u8 int)
  in
  map
    ~decode:(fun ((lb, ib, root), (h, len, nl), (bs, cb)) ->
      {
        p_leaf_blocks = lb;
        p_internal_blocks = ib;
        p_root = root;
        p_height = h;
        p_length = len;
        p_n_leaves = nl;
        p_block_size = bs;
        p_cache_blocks = cb;
      })
    ~encode:(fun p ->
      ( (p.p_leaf_blocks, p.p_internal_blocks, p.p_root),
        (p.p_height, p.p_length, p.p_n_leaves),
        (p.p_block_size, p.p_cache_blocks) ))
    (triple
       (triple
          (array (array (pair key value)))
          (array (array (pair key int)))
          root_codec)
       (triple int int int)
       (pair int int))
