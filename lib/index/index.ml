(* The structure-agnostic query layer: one first-class-module
   signature that every Table-1 structure and every baseline
   implements, so benches, the CLI, and the tests can treat "an index"
   as a value.  See DESIGN.md "The Index signature". *)

type dataset =
  | Pts2 of Geom.Point2.t array
  | Pts3 of Geom.Point3.t array
  | PtsD of Partition.Cells.point array
      (** d-dimensional points; the dimension is the row length. *)

let dataset_dim = function
  | Pts2 _ -> 2
  | Pts3 _ -> 3
  | PtsD [||] -> invalid_arg "Index.dataset_dim: empty d-dimensional dataset"
  | PtsD pts -> Array.length pts.(0)

let dataset_length = function
  | Pts2 pts -> Array.length pts
  | Pts3 pts -> Array.length pts
  | PtsD pts -> Array.length pts

(* Every structure in the repo answers the paper's query form
   x_d <= a0 + sum_i a_i x_i  (a has d-1 coefficients): a halfplane
   below a line (d=2), a halfspace below a plane (d=3), and so on. *)
type query = { a0 : float; a : float array }

let query_dim q = Array.length q.a + 1

type query_kind = Halfspace | Window

let query_kind_name = function Halfspace -> "halfspace" | Window -> "window"

(* Structure-independent build parameters.  Structure-specific knobs
   (the tradeoff exponent a, the quadtree depth cap, ...) travel in
   [extra]; adapters validate their keys and raise Invalid_argument on
   unknown ones. *)
type build_params = {
  block_size : int;
  cache_blocks : int;
  seed : int;
  extra : (string * float) list;
}

let default_params = { block_size = 64; cache_blocks = 0; seed = 0; extra = [] }

(* Validate [params.extra] against the adapter's [allowed] keys and
   return a lookup function. *)
let extra_lookup ~name ~allowed params =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then
        invalid_arg
          (Printf.sprintf "%s.build: unknown parameter %S (allowed: %s)" name k
             (if allowed = [] then "none" else String.concat ", " allowed)))
    params.extra;
  fun key -> List.assoc_opt key params.extra

type 'a snapshot_ops = {
  snapshot_kind : string;
  save : 'a -> path:string -> meta:string -> page_size:int option -> unit;
  load :
    stats:Emio.Io_stats.t ->
    policy:Diskstore.Buffer_pool.policy ->
    cache_pages:int ->
    string ->
    ('a * Diskstore.Snapshot.info, Diskstore.Snapshot.error) result;
}

(* Optional dynamic-update capability.  Static structures leave it
   [None]; the Lsm wrapper provides it for any inner structure via the
   logarithmic method.  Handles are monotonically increasing ints,
   stable across snapshot save/reopen. *)
type 'a update_ops = {
  insert : 'a -> float array -> int;
      (** Add one point (a coordinate row of the build dimension);
          returns a fresh handle usable with [delete].  Raises
          [Invalid_argument] on a wrong-length row. *)
  delete : 'a -> int -> bool;
      (** Tombstone a handle; [false] if unknown or already dead. *)
  live : 'a -> int;  (** Number of live (inserted minus deleted) points. *)
}

module type S = sig
  type t

  val name : string
  (** Registry key, e.g. ["h2"]. *)

  val description : string
  (** One line: which paper section / reference the structure realizes. *)

  val dims : int list
  (** Dimensions the structure accepts. *)

  val kinds : query_kind list
  (** Query kinds the native structure supports.  The generic [query]
      entry point always drives [Halfspace]. *)

  val space_bound : string
  (** Table-1 space bound, e.g. ["O(n)"]. *)

  val query_bound : string
  (** Table-1 query bound, e.g. ["O(log_B n + t)"]. *)

  val preferred : dim:int -> [ `Pts2 | `Pts3 | `PtsD ]
  (** Which dataset variant the benches should generate for this
      structure at dimension [dim]. *)

  val build : params:build_params -> stats:Emio.Io_stats.t -> dataset -> t
  (** Error convention (uniform across every registered structure):
      malformed build parameters — unsupported dimension, unknown or
      out-of-range [extra] key, non-positive sizes — raise
      [Invalid_argument] with a ["Structure.build: reason"] message,
      never [Failure].  [Failure] is reserved for I/O-level damage
      (e.g. a corrupt backend read). *)

  val query : t -> query -> float array list
  (** Reported points as coordinate rows (length = dim).  Raises
      [Invalid_argument] if [query_dim] does not match the build
      dimension. *)

  val query_count : t -> query -> int
  (** [List.length (query t q)] without materializing coordinates. *)

  val reports_ids : bool
  (** Whether the native structure reports point {e ids} (indices into
      the build-time array) — [true] for the id-reporting trees
      (ptree, shallow, tradeoff, cert, h3), [false] for the
      point-reporting structures (h2, the baselines), whose natural
      zero-allocation sink is a point callback. *)

  val batch_plane_sorted : bool
  (** Whether the structure benefits from plane-sorted batched
      execution ({!Query_engine.run_batch_sorted}): [true] for the 3-D
      structures whose per-query traversal is expensive enough that
      sorting a batch by query plane and sharing one traversal per
      group of identical constraints pays off (h3, tradeoff, cert).
      [false] makes the batched entry point fall back to the ordinary
      per-query engine, so 2-D structures and wrappers stay
      transparent. *)

  val query_into : t -> query -> Emio.Reporter.t -> int
  (** Run the query on the zero-allocation path, returning the result
      count.  When [reports_ids] is [true] the answer ids are appended
      to the reporter (same traversal and I/O charge as [query]); when
      [false] the reporter is left untouched and this is exactly
      [query_count] — the serve layer keys off [reports_ids] to decide
      whether a response can carry ids. *)

  val estimate : t -> query -> float
  (** Rough predicted query cost in I/Os from the structure's Table-1
      bound (the non-output term, with epsilon ~ 0.1): a planning hint,
      not a promise. *)

  val space_blocks : t -> int

  val counters : t -> (string * int) list
  (** Structure-specific diagnostic gauges (fallbacks, last-query node
      visits, ...) for the benches to print generically. *)

  val snapshot : t snapshot_ops option
  (** Persistence capability; [None] if the structure has no snapshot
      format. *)

  val update : t update_ops option
  (** Dynamic-update capability; [None] for the static structures.
      {!Lsm.make} dynamizes any of them behind this same surface. *)
end

(* A built structure packed with its module: the registry's currency. *)
type instance = Instance : (module S with type t = 'a) * 'a -> instance

let build (module M : S) ~params ~stats ds =
  Instance ((module M), M.build ~params ~stats ds)

let structure (Instance ((module M), _)) = (module M : S)
let name (Instance ((module M), _)) = M.name
let query (Instance ((module M), t)) q = M.query t q
let query_count (Instance ((module M), t)) q = M.query_count t q
let query_into (Instance ((module M), t)) q r = M.query_into t q r
let reports_ids (Instance ((module M), _)) = M.reports_ids
let batch_plane_sorted (Instance ((module M), _)) = M.batch_plane_sorted
let estimate (Instance ((module M), t)) q = M.estimate t q
let space_blocks (Instance ((module M), t)) = M.space_blocks t
let counters (Instance ((module M), t)) = M.counters t
let updatable (Instance ((module M), _)) = Option.is_some M.update

(* The update capability of a packed instance, with the existential
   closed over: what the CLI's insert/delete/churn verbs drive. *)
type updater = {
  u_insert : float array -> int;
  u_delete : int -> bool;
  u_live : unit -> int;
}

let updater (Instance ((module M), t)) =
  Option.map
    (fun ops ->
      {
        u_insert = (fun row -> ops.insert t row);
        u_delete = (fun h -> ops.delete t h);
        u_live = (fun () -> ops.live t);
      })
    M.update

let snapshot_save (Instance ((module M), t)) ~path ~meta ~page_size =
  match M.snapshot with
  | None -> invalid_arg (M.name ^ ": no snapshot capability")
  | Some ops -> ops.save t ~path ~meta ~page_size
