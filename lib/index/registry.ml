(* The central structure registry.  Benches, the CLI and the
   conformance tests iterate this instead of hard-coding per-structure
   dispatch.  It is seeded statically from Builtin.all — a plain value
   reference, so the linker can never drop an adapter. *)

let table : (string, (module Index.S)) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []

let register (module M : Index.S) =
  if Hashtbl.mem table M.name then
    invalid_arg (Printf.sprintf "Registry.register: duplicate name %S" M.name);
  Hashtbl.add table M.name (module M : Index.S);
  order := M.name :: !order

let () = List.iter register Builtin.all
let names () = List.rev !order
let find name = Hashtbl.find_opt table name

let find_exn name =
  match find name with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Registry: unknown structure %S (known: %s)" name
           (String.concat ", " (names ())))

let all () = List.map (fun n -> Hashtbl.find table n) (names ())

(* Structures registered for dimension [dim]. *)
let for_dim dim =
  List.filter (fun (module M : Index.S) -> List.mem dim M.dims) (all ())

(* Capability surface of a registered module, mirrored here so the CLI
   and benches can enumerate what each kind supports without matching
   on the module themselves. *)
type capability = {
  cap_snapshot : string option;
  cap_reports_ids : bool;
  cap_batch_sorted : bool;
  cap_updatable : bool;
}

let capabilities (module M : Index.S) =
  {
    cap_snapshot =
      Option.map (fun ops -> ops.Index.snapshot_kind) M.snapshot;
    cap_reports_ids = M.reports_ids;
    cap_batch_sorted = M.batch_plane_sorted;
    cap_updatable = Option.is_some M.update;
  }

(* The module owning a snapshot [kind] tag, for generic reopening. *)
let find_by_snapshot_kind kind =
  List.find_opt
    (fun (module M : Index.S) ->
      match M.snapshot with
      | Some ops -> String.equal ops.Index.snapshot_kind kind
      | None -> false)
    (all ())
