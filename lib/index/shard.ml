(* Sharded scatter-gather layer.  See shard.mli for the contract; the
   two invariants everything below preserves are

   - bit-equality: for any K and either partitioner, query results
     (counts, ids, rows-as-sets) equal the unsharded structure's,
     because every point lands in exactly one shard and pruning only
     skips shards whose bounding tile provably misses the halfspace
     (with a safety margin well above summation rounding);

   - deterministic accounting: shard builds run under private
     Io_stats sinks folded into the caller's in shard order, and
     queries visit shards in shard order on the calling domain, so
     summed Cost_ctx I/Os are identical across runs and domain
     counts. *)

type partition = Str | Hash

let partition_name = function Str -> "str" | Hash -> "hash"

let partition_of_string = function
  | "str" -> Some Str
  | "hash" -> Some Hash
  | _ -> None

let sharded_kind = "lcsearch.sharded"

(* Margin added to the tile-pruning test over the structures' keep
   predicate f(p) <= Eps.eps: the box minimum of the linear form is
   computed in a different summation order than any structure's f, so
   give rounding ~1e-12 at workload magnitudes a wide berth. *)
let prune_margin = 1e-6

(* ------------------------------------------------------------------ *)
(* Dataset partitioning *)

let coord ds i j =
  match ds with
  | Index.Pts2 pts ->
      if j = 0 then Geom.Point2.x pts.(i) else Geom.Point2.y pts.(i)
  | Index.Pts3 pts ->
      if j = 0 then Geom.Point3.x pts.(i)
      else if j = 1 then Geom.Point3.y pts.(i)
      else Geom.Point3.z pts.(i)
  | Index.PtsD pts -> pts.(i).(j)

let subset ds idxs =
  match ds with
  | Index.Pts2 pts -> Index.Pts2 (Array.map (fun i -> pts.(i)) idxs)
  | Index.Pts3 pts -> Index.Pts3 (Array.map (fun i -> pts.(i)) idxs)
  | Index.PtsD pts -> Index.PtsD (Array.map (fun i -> pts.(i)) idxs)

let bbox ds idxs dim =
  let lo = Array.make dim infinity and hi = Array.make dim neg_infinity in
  Array.iter
    (fun i ->
      for j = 0 to dim - 1 do
        let c = coord ds i j in
        if c < lo.(j) then lo.(j) <- c;
        if c > hi.(j) then hi.(j) <- c
      done)
    idxs;
  (lo, hi)

(* Sort-tile-recursive over the first two coordinates, exactly the
   rtree packing discipline but cutting into K tiles of points instead
   of leaf blocks: ~sqrt(K) slices by x, each slice cut by y.  Tile
   counts per slice differ by at most one and point counts follow the
   tile shares, so with K <= n every tile is non-empty. *)
let str_groups ds ~n ~k =
  let by_coord j idxs =
    Array.sort
      (fun a b ->
        let c = Float.compare (coord ds a j) (coord ds b j) in
        if c <> 0 then c else Int.compare a b)
      idxs
  in
  let order = Array.init n (fun i -> i) in
  by_coord 0 order;
  let slices = max 1 (int_of_float (Float.ceil (sqrt (float_of_int k)))) in
  let slices = min slices k in
  let base = k / slices and rem = k mod slices in
  let groups = ref [] in
  let tiles_before = ref 0 in
  for s = 0 to slices - 1 do
    let tiles = base + if s < rem then 1 else 0 in
    let p0 = n * !tiles_before / k and p1 = n * (!tiles_before + tiles) / k in
    let slice = Array.sub order p0 (p1 - p0) in
    by_coord 1 slice;
    let m = Array.length slice in
    for t = 0 to tiles - 1 do
      let q0 = m * t / tiles and q1 = m * (t + 1) / tiles in
      groups := Array.sub slice q0 (q1 - q0) :: !groups
    done;
    tiles_before := !tiles_before + tiles
  done;
  Array.of_list (List.rev !groups)

(* SplitMix64 finalizer over the global index: a deterministic,
   architecture-independent hash (no Hashtbl.hash dependence). *)
let mix i =
  let open Int64 in
  let z = add (of_int i) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (logxor z (shift_right_logical z 31)) land Stdlib.max_int

let hash_groups ~n ~k =
  let assign = Array.init n (fun i -> mix i mod k) in
  let sizes = Array.make k 0 in
  Array.iter (fun s -> sizes.(s) <- sizes.(s) + 1) assign;
  (* K <= n guarantees a non-empty assignment exists; if the hash left
     some class empty (only plausible at tiny n), fall back to the
     round-robin hash i mod k, which never does. *)
  if Array.exists (fun c -> c = 0) sizes then begin
    Array.fill sizes 0 k 0;
    for i = 0 to n - 1 do
      assign.(i) <- i mod k;
      sizes.(i mod k) <- sizes.(i mod k) + 1
    done
  end;
  let groups = Array.init k (fun s -> Array.make sizes.(s) 0) in
  let fill = Array.make k 0 in
  for i = 0 to n - 1 do
    let s = assign.(i) in
    groups.(s).(fill.(s)) <- i;
    fill.(s) <- fill.(s) + 1
  done;
  groups

(* ------------------------------------------------------------------ *)
(* Manifest *)

type entry = {
  file : string;
  kind : string;
  crc : int;
  lo : float array;
  hi : float array;
  gids : int array;
}

type manifest = {
  inner_kind : string;
  partition : partition;
  shards : int;
  dim : int;
  total : int;
  meta : string;
  entries : entry array;
}

let entry_codec =
  let open Emio.Codec in
  map
    ~decode:(fun ((file, kind, crc), (lo, hi, gids)) ->
      { file; kind; crc; lo; hi; gids })
    ~encode:(fun e -> ((e.file, e.kind, e.crc), (e.lo, e.hi, e.gids)))
    (pair
       (triple string string u32)
       (triple (array float) (array float) (array int)))

let manifest_codec =
  let open Emio.Codec in
  versioned ~magic:sharded_kind ~version:1
    (map
       ~decode:(fun ((inner_kind, part, shards, dim), (total, meta, entries)) ->
         let partition =
           match part with
           | 0 -> Str
           | 1 -> Hash
           | t ->
               raise
                 (Decode (Printf.sprintf "bad shard partition tag %d" t))
         in
         if shards < 1 || Array.length entries <> shards then
           raise (Decode "shard manifest entry count mismatch");
         { inner_kind; partition; shards; dim; total; meta; entries })
       ~encode:(fun m ->
         ( ( m.inner_kind,
             (match m.partition with Str -> 0 | Hash -> 1),
             m.shards,
             m.dim ),
           (m.total, m.meta, m.entries) ))
       (pair (quad string u8 u32 u32) (triple int string (array entry_codec))))

let file_crc = Manifest_dir.file_crc
let write_manifest dir m = Manifest_dir.write_manifest dir manifest_codec m

(* A sharded directory is one whose MANIFEST carries the sharded
   magic; an Lsm directory (same MANIFEST layout, different magic) is
   not.  A MANIFEST too damaged to expose a magic still counts as
   sharded here so the CLI routes it to [read_manifest], which then
   reports the precise corruption instead of "no such structure". *)
let is_sharded_path path =
  Manifest_dir.is_kind path ~kind:sharded_kind
  || Sys.file_exists path
     && Sys.is_directory path
     && Sys.file_exists (Filename.concat path Manifest_dir.manifest_file)
     && Manifest_dir.magic path = None

let read_manifest dir = Manifest_dir.read_manifest dir manifest_codec

(* ------------------------------------------------------------------ *)
(* The Index.S wrapper *)

let make ?build_domains ~inner:(module M : Index.S) ~shards ~partition () :
    (module Index.S) =
  if shards < 1 then invalid_arg "Shard.make: shards must be >= 1";
  (module struct
    type shard = {
      inner : M.t;
      gids : int array;
      lo : float array;
      hi : float array;
    }

    type t = {
      shards : shard array;
      dim : int;
      part : partition;
      mutable last_pruned : int;
    }

    (* Same name (and dims/kinds/preferred) as the inner structure, so
       registry-driven consumers — benches, serve, the conformance
       suite, loadgen's meta replay — treat a sharded instance exactly
       like the structure it wraps. *)
    let name = M.name
    let description = M.description ^ " (sharded scatter-gather)"
    let dims = M.dims
    let kinds = M.kinds
    let space_bound = M.space_bound
    let query_bound = M.query_bound
    let preferred = M.preferred

    let build ~(params : Index.build_params) ~stats ds =
      let dim = Index.dataset_dim ds in
      let n = Index.dataset_length ds in
      let k = max 1 (min shards (max 1 n)) in
      let groups =
        match partition with
        | Str -> str_groups ds ~n ~k
        | Hash -> hash_groups ~n ~k
      in
      (* Per-shard cache budget: K structures model the same total
         main memory as one unsharded structure. *)
      let inner_params =
        {
          params with
          Index.cache_blocks =
            (if params.Index.cache_blocks = 0 then 0
             else max 1 (params.Index.cache_blocks / k));
        }
      in
      let per_stats = Array.init k (fun _ -> Emio.Io_stats.create ()) in
      let built = Array.make k None in
      let domains =
        match build_domains with
        | Some d -> max 1 (min d k)
        | None -> min (Par.default_domains ()) k
      in
      (* One shard per pool task.  Worker domains never see the
         caller's Cost_ctx stack (it is thread-local), which is why
         each build charges a private sink, folded into the caller's
         afterwards — in shard order, so the totals are bit-equal
         whatever [domains] was. *)
      Emio.Cost_ctx.unscoped (fun () ->
          Par.run ~domains ~n:k ~chunk:1 (fun lo hi ->
              for s = lo to hi - 1 do
                built.(s) <-
                  Some
                    (M.build ~params:inner_params ~stats:per_stats.(s)
                       (subset ds groups.(s)))
              done));
      Array.iter (fun src -> Emio.Io_stats.merge_into ~src stats) per_stats;
      let shards =
        Array.init k (fun s ->
            let lo, hi = bbox ds groups.(s) dim in
            { inner = Option.get built.(s); gids = groups.(s); lo; hi })
      in
      { shards; dim; part = partition; last_pruned = 0 }

    (* Tile-pruning: the minimum over the shard's bounding box of
       f(p) = p_d - a0 - sum_i a_i p_i is attained at a corner; if even
       that exceeds the keep threshold (plus margin), no point of the
       shard can satisfy the halfspace.  An empty box (lo = +inf)
       prunes trivially. *)
    let pruned sh (q : Index.query) =
      let d = Array.length sh.lo in
      d > 0
      && begin
           let s = ref (sh.lo.(d - 1) -. q.a0) in
           for i = 0 to d - 2 do
             let ai = q.a.(i) in
             s := !s -. Float.max (ai *. sh.lo.(i)) (ai *. sh.hi.(i))
           done;
           !s > Geom.Eps.eps +. prune_margin
         end

    let scatter t q ~f =
      t.last_pruned <- 0;
      let acc = ref 0 in
      Array.iter
        (fun sh ->
          if pruned sh q then t.last_pruned <- t.last_pruned + 1
          else acc := !acc + f sh)
        t.shards;
      !acc

    let query t q =
      t.last_pruned <- 0;
      let rows = ref [] in
      for s = Array.length t.shards - 1 downto 0 do
        let sh = t.shards.(s) in
        if pruned sh q then t.last_pruned <- t.last_pruned + 1
        else rows := M.query sh.inner q :: !rows
      done;
      List.concat !rows

    let query_count t q = scatter t q ~f:(fun sh -> M.query_count sh.inner q)
    let reports_ids = M.reports_ids

    (* scatter-gather over K inner queries still shares the inner
       structure's traversal cost profile, so the capability passes
       through: a plane-sorted batch executes each group once per
       sharded instance, exactly as it would on the inner structure *)
    let batch_plane_sorted = M.batch_plane_sorted

    let query_into t q r =
      scatter t q ~f:(fun sh ->
          if reports_ids then begin
            let m = Emio.Reporter.mark r in
            let c = M.query_into sh.inner q r in
            let gids = sh.gids in
            Emio.Reporter.rewrite_from r m (fun local -> gids.(local));
            c
          end
          else M.query_into sh.inner q r)

    let estimate t q =
      t.last_pruned <- 0;
      Array.fold_left
        (fun acc sh ->
          if pruned sh q then begin
            t.last_pruned <- t.last_pruned + 1;
            acc
          end
          else acc +. M.estimate sh.inner q)
        0. t.shards

    let space_blocks t =
      Array.fold_left (fun acc sh -> acc + M.space_blocks sh.inner) 0 t.shards

    let counters t =
      (* inner gauges summed across shards, first-seen key order *)
      let merged = ref [] in
      Array.iter
        (fun sh ->
          List.iter
            (fun (key, v) ->
              match List.assoc_opt key !merged with
              | Some _ ->
                  merged :=
                    List.map
                      (fun (k', v') ->
                        if String.equal k' key then (k', v' + v) else (k', v'))
                      !merged
              | None -> merged := !merged @ [ (key, v) ])
            (M.counters sh.inner))
        t.shards;
      ("shards", Array.length t.shards)
      :: ("last_pruned", t.last_pruned)
      :: !merged

    (* Shard tiles are immutable by design (the STR tiling is fixed at
       build time, and inner handle spaces would collide across
       shards), so the update capability does not pass through the
       wrapper.  To update a sharded structure, compose the other way:
       [Lsm.make ~inner:(Shard.make ...)] keeps every level sharded
       while the Lsm layer owns the handle space. *)
    let update = None
    let shard_file s = Printf.sprintf "shard-%03d.snap" s

    let snapshot =
      match M.snapshot with
      | None -> None
      | Some inner_ops ->
          Some
            {
              Index.snapshot_kind = sharded_kind;
              save =
                (fun t ~path ~meta ~page_size ->
                  if Sys.file_exists path then begin
                    if not (Sys.is_directory path) then
                      invalid_arg
                        (Printf.sprintf
                           "Shard.save: %s exists and is not a directory" path)
                  end
                  else Sys.mkdir path 0o755;
                  Array.iteri
                    (fun s sh ->
                      inner_ops.Index.save sh.inner
                        ~path:(Filename.concat path (shard_file s))
                        ~meta ~page_size)
                    t.shards;
                  let entries =
                    Array.mapi
                      (fun s sh ->
                        {
                          file = shard_file s;
                          kind = inner_ops.Index.snapshot_kind;
                          crc = file_crc (Filename.concat path (shard_file s));
                          lo = sh.lo;
                          hi = sh.hi;
                          gids = (if reports_ids then sh.gids else [||]);
                        })
                      t.shards
                  in
                  write_manifest path
                    {
                      inner_kind = inner_ops.Index.snapshot_kind;
                      partition = t.part;
                      shards = Array.length t.shards;
                      dim = t.dim;
                      total =
                        Array.fold_left
                          (fun acc sh -> acc + Array.length sh.gids)
                          0 t.shards;
                      meta;
                      entries;
                    });
              load =
                (fun ~stats ~policy ~cache_pages path ->
                  let ( let* ) = Result.bind in
                  let* m = read_manifest path in
                  let* () =
                    if String.equal m.inner_kind inner_ops.Index.snapshot_kind
                    then Ok ()
                    else
                      Error
                        (Diskstore.Snapshot.Kind_mismatch
                           {
                             expected = inner_ops.Index.snapshot_kind;
                             got = m.inner_kind;
                           })
                  in
                  let per_pages = max 1 (cache_pages / m.shards) in
                  let rec load_shards s acc =
                    if s = m.shards then Ok (List.rev acc)
                    else begin
                      let e = m.entries.(s) in
                      let p = Filename.concat path e.file in
                      if not (Sys.file_exists p) then
                        Error
                          (Diskstore.Snapshot.Bad_header
                             (Printf.sprintf "missing shard file %s" e.file))
                      else if file_crc p <> e.crc then
                        Error
                          (Diskstore.Snapshot.Bad_section_crc
                             { section = e.file })
                      else
                        let* inner, info =
                          inner_ops.Index.load ~stats ~policy
                            ~cache_pages:per_pages p
                        in
                        load_shards (s + 1) ((e, inner, info) :: acc)
                    end
                  in
                  let* loaded = load_shards 0 [] in
                  let shards =
                    Array.of_list
                      (List.map
                         (fun ((e : entry), inner, _) ->
                           { inner; gids = e.gids; lo = e.lo; hi = e.hi })
                         loaded)
                  in
                  let info =
                    let first =
                      match loaded with
                      | (_, _, i) :: _ -> i
                      | [] -> assert false (* shards >= 1 by codec check *)
                    in
                    {
                      Diskstore.Snapshot.kind = sharded_kind;
                      meta = m.meta;
                      version = first.Diskstore.Snapshot.version;
                      page_size = first.Diskstore.Snapshot.page_size;
                      block_size = first.Diskstore.Snapshot.block_size;
                      n_blocks =
                        List.fold_left
                          (fun acc (_, _, i) ->
                            acc + i.Diskstore.Snapshot.n_blocks)
                          0 loaded;
                      total_pages =
                        List.fold_left
                          (fun acc (_, _, i) ->
                            acc + i.Diskstore.Snapshot.total_pages)
                          0 loaded;
                    }
                  in
                  Ok
                    ( { shards; dim = m.dim; part = m.partition; last_pruned = 0 },
                      info ));
            }
  end)

let open_snapshot ?(policy = Diskstore.Buffer_pool.Lru) ?(cache_pages = 64)
    ~stats path =
  let ( let* ) = Result.bind in
  let* m = read_manifest path in
  let* (module Inner : Index.S) =
    match Registry.find_by_snapshot_kind m.inner_kind with
    | Some im -> Ok im
    | None ->
        Error
          (Diskstore.Snapshot.Bad_header
             (Printf.sprintf "no registered structure owns snapshot kind %S"
                m.inner_kind))
  in
  let (module Sh : Index.S) =
    make ~inner:(module Inner) ~shards:m.shards ~partition:m.partition ()
  in
  let ops = Option.get Sh.snapshot in
  let* t, info = ops.Index.load ~stats ~policy ~cache_pages path in
  Ok (Index.Instance ((module Sh), t), info, m)
