(** Sharded scatter-gather layer: partition a dataset into K
    independent sub-datasets, build one inner structure per shard (in
    parallel on the {!Par} domain pool), and expose the result as an
    ordinary {!Index.S} instance whose queries scatter across the
    shards and gather ids/rows back — with spatial tile-pruning for
    the STR partitioner, exact summed {!Emio.Cost_ctx} accounting, and
    a CRC-checked directory snapshot format over K per-shard snapshot
    files.

    Shards are the unit of parallel builds and, later, of background
    merges for an LSM-style dynamic index (Nekrich's composition of
    immutable static structures) and of multi-node serving — see
    ROADMAP.md. *)

type partition =
  | Str
      (** Sort-tile-recursive spatial tiles over the first two
          coordinates (the rtree packing discipline): queries skip
          shards whose bounding tile provably misses the halfspace. *)
  | Hash  (** Deterministic hash of the global point index. *)

val partition_name : partition -> string
val partition_of_string : string -> partition option

val sharded_kind : string
(** The snapshot [kind] tag of the sharded manifest format,
    ["lcsearch.sharded"]. *)

val make :
  ?build_domains:int ->
  inner:(module Index.S) ->
  shards:int ->
  partition:partition ->
  unit ->
  (module Index.S)
(** [make ~inner ~shards ~partition ()] is an {!Index.S} that builds
    [shards] independent copies of [inner] (one per partition class;
    the effective count is clamped to the dataset size so no shard is
    empty) and scatter-gathers queries over them.  [query_into]
    translates each shard's local ids to global dataset ids via
    {!Emio.Reporter.rewrite_from}; [query_count], [space_blocks] and
    [estimate] sum over (non-pruned) shards.  Each inner structure is
    built with a per-shard cache budget of [cache_blocks / K].

    [build_domains] caps the build fan-out (default
    {!Par.default_domains}); builds run one shard per pool task under
    private {!Emio.Io_stats} sinks that are folded into the caller's
    sink in shard order afterwards, so build accounting is bit-equal
    across domain counts.

    The instance reuses [inner]'s [name]/[dims]/[kinds]/[preferred],
    so every registry-driven consumer (benches, serve, conformance)
    treats it exactly like the unsharded structure.

    @raise Invalid_argument if [shards < 1]. *)

(** {2 Sharded snapshots}

    A sharded snapshot is a {e directory} holding one inner-format
    snapshot file per shard plus a [MANIFEST]: a CRC-32-guarded
    {!Emio.Codec.versioned} section recording the inner kind, the
    partitioner, K, the dimension, the builder meta string, and one
    entry per shard (file name, kind, whole-file CRC-32, bounding-tile
    corners, and the local-to-global id map when the inner structure
    reports ids). *)

type entry = {
  file : string;  (** shard snapshot file, relative to the directory *)
  kind : string;
  crc : int;  (** CRC-32 of the shard snapshot file's bytes *)
  lo : float array;  (** bounding-tile corner, one value per dimension *)
  hi : float array;
  gids : int array;
      (** local id -> global dataset id; [[||]] when the inner
          structure reports points rather than ids *)
}

type manifest = {
  inner_kind : string;
  partition : partition;
  shards : int;
  dim : int;
  total : int;  (** dataset size n across all shards *)
  meta : string;
  entries : entry array;
}

val is_sharded_path : string -> bool
(** Does [path] look like a sharded snapshot (a directory containing a
    [MANIFEST])?  The CLI and the serve layer use this to dispatch
    between single-file and sharded snapshots. *)

val read_manifest : string -> (manifest, Diskstore.Snapshot.error) result
(** Read and verify (CRC, magic, version) the manifest of a sharded
    snapshot directory.  Damage maps onto the standard snapshot
    errors: a missing or short manifest is [Bad_header]/[Truncated], a
    CRC mismatch is [Bad_section_crc], undecodable bytes are
    [Bad_payload]. *)

val open_snapshot :
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  stats:Emio.Io_stats.t ->
  string ->
  ( Index.instance * Diskstore.Snapshot.info * manifest,
    Diskstore.Snapshot.error )
  result
(** Reopen a sharded snapshot directory generically: read the
    manifest, look the inner structure up by snapshot kind in the
    {!Registry}, {!make} a sharded wrapper with the manifest's K and
    partitioner, and load every shard (each shard's buffer pool gets
    [cache_pages / K] pages, min 1).  Shard files are CRC-checked
    against their manifest entries before loading; a missing shard
    file is rejected with [Bad_header].  The returned info aggregates
    the per-shard infos ([n_blocks]/[total_pages] summed) under kind
    {!sharded_kind}. *)
