(** The central structure registry: every {!Index.S} implementation in
    the repo, keyed by name, in registration (Table-1 presentation)
    order.  Seeded from {!Builtin.all} at module initialization. *)

val register : (module Index.S) -> unit
(** Raises [Invalid_argument] on a duplicate name. *)

val names : unit -> string list
val find : string -> (module Index.S) option

val find_exn : string -> (module Index.S)
(** Raises [Invalid_argument] naming the known structures. *)

val all : unit -> (module Index.S) list
val for_dim : int -> (module Index.S) list

val find_by_snapshot_kind : string -> (module Index.S) option
(** The registered module whose snapshot capability owns [kind]. *)

type capability = {
  cap_snapshot : string option;  (** snapshot kind, if persistable *)
  cap_reports_ids : bool;
  cap_batch_sorted : bool;  (** plane-sorted batched execution pays off *)
  cap_updatable : bool;  (** native insert/delete (see {!Lsm.make}) *)
}

val capabilities : (module Index.S) -> capability
(** The optional-surface summary [lcsearch list] prints per kind. *)
