(* A log-bucketed (HDR-style) histogram of non-negative int samples —
   the latency accounting primitive behind `lcsearch loadgen` and the
   serve-side tail statistics.

   Layout: one fixed preallocated bucket array, no allocation per
   {!record}.  Values below [sub_count] land in unit-width buckets;
   every octave above that is split into [sub_count / 2] equal buckets,
   so the relative quantization error is bounded by
   [2 / sub_count] (< 0.8% at sub_bits = 8) at every magnitude — the
   usual HDR trade: fixed memory, bounded relative error, O(1) record,
   O(buckets) percentile extraction.

   This deliberately does NOT replace {!Query_engine.percentile} for
   I/O-count samples: those are small exact samples whose nearest-rank
   percentiles are pinned by the golden tests, so they stay on the
   sorted-array path.  The histogram is for high-volume wall-clock
   samples (nanoseconds across millions of requests), where keeping
   every sample is the thing that does not scale. *)

let sub_bits = 8
let sub_count = 1 lsl sub_bits (* 256: width-1 buckets below this *)
let half = sub_count / 2

(* Values are clamped into [0, max_value]; 2^62 - 1 is the largest
   magnitude a 63-bit OCaml int can always hold. *)
let max_value = (1 lsl 62) - 1

let significant_bits v =
  (* number of bits needed for v >= 1, e.g. 256 -> 9 *)
  let rec go bits v = if v = 0 then bits else go (bits + 1) (v lsr 1) in
  go 0 v

let n_buckets =
  let top_k = significant_bits max_value - sub_bits in
  sub_count + (top_k * half)

let bucket_index v =
  let v = if v < 0 then 0 else if v > max_value then max_value else v in
  if v < sub_count then v
  else
    let k = significant_bits v - sub_bits in
    sub_count + ((k - 1) * half) + ((v lsr k) - half)

let bucket_lo i =
  if i < 0 || i >= n_buckets then invalid_arg "Histogram.bucket_lo";
  if i < sub_count then i
  else
    let j = i - sub_count in
    let k = (j / half) + 1 in
    (half + (j mod half)) lsl k

let bucket_hi i =
  if i < sub_count then i
  else
    let j = i - sub_count in
    let k = (j / half) + 1 in
    (((half + (j mod half) + 1) lsl k) - 1) |> Stdlib.min max_value

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable max_seen : int;  (* exact, so the top percentile never
                              over-reports past the true maximum *)
  mutable min_seen : int;
}

let create () =
  {
    counts = Array.make n_buckets 0;
    total = 0;
    sum = 0;
    max_seen = 0;
    min_seen = max_int;
  }

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.total <- 0;
  t.sum <- 0;
  t.max_seen <- 0;
  t.min_seen <- max_int

let record t v =
  let v = if v < 0 then 0 else if v > max_value then max_value else v in
  let i = bucket_index v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v > t.max_seen then t.max_seen <- v;
  if v < t.min_seen then t.min_seen <- v

let count t = t.total
let max_recorded t = t.max_seen
let min_recorded t = if t.total = 0 then 0 else t.min_seen
let mean t = if t.total = 0 then 0. else float_of_int t.sum /. float_of_int t.total

let merge_into ~src ~dst =
  for i = 0 to n_buckets - 1 do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum + src.sum;
  if src.total > 0 then begin
    if src.max_seen > dst.max_seen then dst.max_seen <- src.max_seen;
    if src.min_seen < dst.min_seen then dst.min_seen <- src.min_seen
  end

(* Nearest-rank percentile over the bucket counts; the reported value
   is the bucket's inclusive upper bound (clamped to the exact maximum
   seen), so a reported p99 is always >= the true p99 sample and never
   exceeds the true maximum. *)
let percentile t p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Histogram.percentile: p must be in [0, 1]";
  if t.total = 0 then invalid_arg "Histogram.percentile: empty histogram";
  let rank =
    let r = int_of_float (ceil (p *. float_of_int t.total)) in
    Stdlib.min t.total (Stdlib.max 1 r)
  in
  let rec go i cum =
    let cum = cum + t.counts.(i) in
    if cum >= rank then Stdlib.min (bucket_hi i) t.max_seen
    else go (i + 1) cum
  in
  go 0 0
