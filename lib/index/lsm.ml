(* LSM dynamization layer.  See lsm.mli for the contract; the
   invariants everything below preserves are

   - decomposability: a halfspace query's answer over the whole point
     set is the disjoint union of the answers over the memtable and
     each level, minus tombstoned points — so fanning the existing
     Index.S query paths out across the levels and censoring dead ids
     reproduces the static structure's answer bit-for-bit;

   - the binary counter: slot i holds at most cap * 2^i points, a
     spill carries occupied low slots into the first free one, so at
     most O(log N) levels exist and every point is rebuilt O(log N)
     times over its lifetime (the logarithmic method's amortized
     charge);

   - deterministic accounting: every level (re)build runs as a task on
     the PR-5 domain pool under a private Io_stats sink that is folded
     into the caller's exactly once, after the pool joins — so summed
     I/O totals are bit-equal whatever the pool's domain count. *)

let lsm_kind = "lcsearch.lsm"
let default_memtable_cap = 64

(* ------------------------------------------------------------------ *)
(* Manifest *)

type level_entry = {
  slot : int;
  file : string;
  crc : int;
  handles : int array;  (* local id -> handle, build order *)
  rows : float array array;  (* local id -> coordinate row *)
  dead : int array;  (* tombstoned local ids, ascending *)
}

type manifest = {
  inner_kind : string;
  dim : int;
  cap : int;
  next_handle : int;
  merges : int;
  params : Index.build_params;
  meta : string;
  mem : (int * float array) array;  (* live memtable entries, handle order *)
  levels : level_entry array;
}

let entry_codec =
  let open Emio.Codec in
  map
    ~decode:(fun ((slot, file, crc), (handles, rows, dead)) ->
      let n = Array.length handles in
      if Array.length rows <> n then
        raise (Decode "lsm level handles/rows length mismatch");
      if Array.exists (fun j -> j < 0 || j >= n) dead then
        raise (Decode "lsm level tombstone id out of range");
      { slot; file; crc; handles; rows; dead })
    ~encode:(fun e -> ((e.slot, e.file, e.crc), (e.handles, e.rows, e.dead)))
    (pair
       (triple u32 string u32)
       (triple (array int) (array (array float)) (array int)))

let params_codec =
  let open Emio.Codec in
  map
    ~decode:(fun (block_size, cache_blocks, seed, extra) ->
      { Index.block_size; cache_blocks; seed; extra })
    ~encode:(fun (p : Index.build_params) ->
      (p.block_size, p.cache_blocks, p.seed, p.extra))
    (quad u32 u32 int (list (pair string float)))

let manifest_codec =
  let open Emio.Codec in
  versioned ~magic:lsm_kind ~version:1
    (map
       ~decode:(fun
           ((inner_kind, dim, cap, next_handle), (merges, params, meta), (mem, levels))
         ->
         if cap < 1 then raise (Decode "lsm memtable cap must be >= 1");
         if Array.length mem > cap then
           raise (Decode "lsm memtable log exceeds its capacity");
         Array.iteri
           (fun i e ->
             if i > 0 && e.slot <= levels.(i - 1).slot then
               raise (Decode "lsm level slots not strictly ascending"))
           levels;
         { inner_kind; dim; cap; next_handle; merges; params; meta; mem; levels })
       ~encode:(fun m ->
         ( (m.inner_kind, m.dim, m.cap, m.next_handle),
           (m.merges, m.params, m.meta),
           (m.mem, m.levels) ))
       (triple
          (quad string u32 u32 int)
          (triple u32 params_codec string)
          (pair (array (pair int (array float))) (array entry_codec))))

let is_lsm_path path = Manifest_dir.is_kind path ~kind:lsm_kind
let read_manifest dir = Manifest_dir.read_manifest dir manifest_codec

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p

(* A level snapshot is normally one file, CRC'd whole; a sharded inner
   saves a directory, whose integrity the shard manifest already
   guards per file — record crc 0 and skip the outer check. *)
let level_crc path = if Sys.is_directory path then 0 else Manifest_dir.file_crc path

let level_crc_ok path expected =
  if Sys.is_directory path then expected = 0
  else Manifest_dir.file_crc path = expected

(* Live (handle, row) pairs recorded by a manifest, ascending by
   handle: what a rebuild-from-live oracle is built from. *)
let manifest_live_rows m =
  let acc = ref [] in
  Array.iter
    (fun e ->
      let dead = Array.make (Array.length e.handles) false in
      Array.iter (fun j -> dead.(j) <- true) e.dead;
      Array.iteri
        (fun j h -> if not dead.(j) then acc := (h, e.rows.(j)) :: !acc)
        e.handles)
    m.levels;
  Array.iter (fun (h, row) -> acc := (h, row) :: !acc) m.mem;
  let out = Array.of_list !acc in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) out;
  out

(* ------------------------------------------------------------------ *)
(* The Index.S wrapper *)

let make ?(memtable_cap = default_memtable_cap) ?build_domains
    ~inner:(module M : Index.S) () : (module Index.S) =
  if memtable_cap < 1 then invalid_arg "Lsm.make: memtable_cap must be >= 1";
  (module struct
    type level = {
      inner : M.t;
      handles : int array;  (* local id -> handle *)
      rows : float array array;  (* local id -> row, inner build order *)
      dead : Bytes.t;  (* local id -> '\001' once tombstoned *)
      mutable dead_count : int;
      mutable dead_ids : int list;
    }

    type loc = Mem of int | Lev of int * int

    type t = {
      stats : Emio.Io_stats.t;
      params : Index.build_params;
      dim : int;
      cap : int;
      mem_handles : int array;
      mem_rows : float array array;
      mem_dead : Bytes.t;
      mutable mem_len : int;
      mutable mem_dead_count : int;
      mutable slots : level option array;  (* slot i <= cap * 2^i points *)
      mutable next_handle : int;
      mutable live_count : int;
      mutable merges : int;
      loc : (int, loc) Hashtbl.t;  (* live handle -> where it lives *)
    }

    (* Same name (and dims/kinds/preferred/bounds) as the inner
       structure, so registry-driven consumers — benches, serve, the
       conformance suite — treat a dynamized instance exactly like the
       structure it wraps. *)
    let name = M.name
    let description = M.description ^ " (LSM dynamized)"
    let dims = M.dims
    let kinds = M.kinds
    let space_bound = M.space_bound
    let query_bound = M.query_bound
    let preferred = M.preferred
    let reports_ids = M.reports_ids
    let batch_plane_sorted = M.batch_plane_sorted

    let row_of ds i =
      match ds with
      | Index.Pts2 pts ->
          [| Geom.Point2.x pts.(i); Geom.Point2.y pts.(i) |]
      | Index.Pts3 pts ->
          [|
            Geom.Point3.x pts.(i); Geom.Point3.y pts.(i); Geom.Point3.z pts.(i);
          |]
      | Index.PtsD pts -> Array.copy pts.(i)

    let dataset_of_rows ~dim rows =
      match M.preferred ~dim with
      | `Pts2 -> Index.Pts2 (Array.map (fun r -> Geom.Point2.make r.(0) r.(1)) rows)
      | `Pts3 ->
          Index.Pts3
            (Array.map (fun r -> Geom.Point3.make r.(0) r.(1) r.(2)) rows)
      | `PtsD -> Index.PtsD (Array.map Array.copy rows)

    (* The keep predicate f(p) = p_d - a0 - sum_i a_i p_i <= eps, the
       same threshold form (and the same eps = 1e-9) every structure in
       the repo tests, so memtable scans and tombstone subtraction
       agree with the levels on generated workloads. *)
    let satisfies row (q : Index.query) =
      let d = Array.length row in
      let s = ref (row.(d - 1) -. q.a0) in
      for i = 0 to d - 2 do
        s := !s -. (q.a.(i) *. row.(i))
      done;
      !s <= Geom.Eps.eps

    let check_query t (q : Index.query) =
      if Index.query_dim q <> t.dim then
        invalid_arg
          (Printf.sprintf "%s(lsm): %d-d query against a %d-d index" M.name
             (Index.query_dim q) t.dim)

    let slot_for cap n =
      let rec go i = if cap * (1 lsl i) >= n then i else go (i + 1) in
      go 0

    (* Build one level's inner structure as a task on the domain pool,
       charging a private sink folded into [t.stats] after the pool
       joins — exactly once, so accounting is deterministic across
       domain counts. *)
    let build_level t handles rows =
      t.merges <- t.merges + 1;
      let ds = dataset_of_rows ~dim:t.dim rows in
      let per = Emio.Io_stats.create () in
      let built = ref None in
      let domains = match build_domains with Some d -> max 1 d | None -> 1 in
      Emio.Cost_ctx.unscoped (fun () ->
          Par.run ~domains ~n:1 ~chunk:1 (fun lo hi ->
              for _ = lo to hi - 1 do
                built := Some (M.build ~params:t.params ~stats:per ds)
              done));
      Emio.Io_stats.merge_into ~src:per t.stats;
      {
        inner = Option.get !built;
        handles;
        rows;
        dead = Bytes.make (Array.length handles) '\000';
        dead_count = 0;
        dead_ids = [];
      }

    let ensure_slot t i =
      if i >= Array.length t.slots then begin
        let bigger = Array.make (2 * (i + 1)) None in
        Array.blit t.slots 0 bigger 0 (Array.length t.slots);
        t.slots <- bigger
      end

    let install t i lvl =
      ensure_slot t i;
      t.slots.(i) <- Some lvl;
      Array.iteri
        (fun j h ->
          if Bytes.get lvl.dead j = '\000' then Hashtbl.replace t.loc h (Lev (i, j)))
        lvl.handles

    let tombstones t =
      Array.fold_left
        (fun acc -> function Some l -> acc + l.dead_count | None -> acc)
        t.mem_dead_count t.slots

    (* Gather the live contents of the memtable (clearing it), sorted
       ascending by handle at the end by the caller. *)
    let drain_mem t acc =
      for i = t.mem_len - 1 downto 0 do
        if Bytes.get t.mem_dead i = '\000' then
          acc := (t.mem_handles.(i), t.mem_rows.(i)) :: !acc
      done;
      t.mem_len <- 0;
      t.mem_dead_count <- 0

    let drain_level t s lvl acc =
      for j = Array.length lvl.handles - 1 downto 0 do
        if Bytes.get lvl.dead j = '\000' then
          acc := (lvl.handles.(j), lvl.rows.(j)) :: !acc
      done;
      t.slots.(s) <- None

    let place_gathered t slot acc =
      let gathered = Array.of_list !acc in
      Array.sort (fun (a, _) (b, _) -> Int.compare a b) gathered;
      if Array.length gathered > 0 then
        install t slot
          (build_level t (Array.map fst gathered) (Array.map snd gathered))

    (* Binary-counter carry: merge the memtable and every occupied low
       slot into the first free one.  The gathered count is at most
       cap + sum_{j<i} cap*2^j = cap*2^i, so the invariant holds;
       tombstoned points are dropped here, never copied forward. *)
    let spill t =
      if t.mem_len > 0 then begin
        let acc = ref [] in
        drain_mem t acc;
        let slot = ref 0 in
        let carrying = ref true in
        while !carrying do
          ensure_slot t !slot;
          match t.slots.(!slot) with
          | None -> carrying := false
          | Some lvl ->
              drain_level t !slot lvl acc;
              incr slot
        done;
        place_gathered t !slot acc
      end

    (* Full compaction: once tombstones outnumber live points, rebuild
       everything into a single level and forget the dead. *)
    let compact t =
      let acc = ref [] in
      drain_mem t acc;
      Array.iteri
        (fun s -> function None -> () | Some lvl -> drain_level t s lvl acc)
        t.slots;
      let n = List.length !acc in
      if n > 0 then place_gathered t (slot_for t.cap n) acc

    let insert t row =
      if Array.length row <> t.dim then
        invalid_arg
          (Printf.sprintf "%s(lsm).insert: expected %d coordinates, got %d"
             M.name t.dim (Array.length row));
      let h = t.next_handle in
      t.next_handle <- h + 1;
      let i = t.mem_len in
      t.mem_handles.(i) <- h;
      t.mem_rows.(i) <- Array.copy row;
      Bytes.set t.mem_dead i '\000';
      t.mem_len <- i + 1;
      t.live_count <- t.live_count + 1;
      Hashtbl.replace t.loc h (Mem i);
      if t.mem_len >= t.cap then spill t;
      h

    let delete t h =
      match Hashtbl.find_opt t.loc h with
      | None -> false
      | Some where ->
          (match where with
          | Mem i ->
              Bytes.set t.mem_dead i '\001';
              t.mem_dead_count <- t.mem_dead_count + 1
          | Lev (s, j) ->
              let lvl = Option.get t.slots.(s) in
              Bytes.set lvl.dead j '\001';
              lvl.dead_count <- lvl.dead_count + 1;
              lvl.dead_ids <- j :: lvl.dead_ids);
          Hashtbl.remove t.loc h;
          t.live_count <- t.live_count - 1;
          if tombstones t > max 8 t.live_count then compact t;
          true

    let update =
      Some
        {
          Index.insert;
          delete;
          live = (fun t -> t.live_count);
        }

    let build ~(params : Index.build_params) ~stats ds =
      let dim = Index.dataset_dim ds in
      let n = Index.dataset_length ds in
      let t =
        {
          stats;
          params;
          dim;
          cap = memtable_cap;
          mem_handles = Array.make memtable_cap 0;
          mem_rows = Array.make memtable_cap [||];
          mem_dead = Bytes.make memtable_cap '\000';
          mem_len = 0;
          mem_dead_count = 0;
          slots = Array.make 4 None;
          next_handle = n;
          live_count = n;
          merges = 0;
          loc = Hashtbl.create (max 64 (2 * n));
        }
      in
      if n > 0 then begin
        let handles = Array.init n (fun i -> i) in
        let rows = Array.init n (row_of ds) in
        install t (slot_for memtable_cap n) (build_level t handles rows)
      end;
      t

    (* -------------------------------------------------------------- *)
    (* Queries: fan out over levels in slot order, then the memtable. *)

    (* Per-domain scratch reporter for censoring an id-reporting
       inner's answers on the count-only paths. *)
    let scratch : Emio.Reporter.t Emio.Tls.key =
      Emio.Tls.new_key (fun () -> Emio.Reporter.create ())

    let level_count lvl q =
      if lvl.dead_count = 0 then M.query_count lvl.inner q
      else if M.reports_ids then begin
        let r = Emio.Tls.get scratch in
        Emio.Reporter.clear r;
        ignore (M.query_into lvl.inner q r);
        Emio.Reporter.fold
          (fun acc j -> if Bytes.get lvl.dead j = '\000' then acc + 1 else acc)
          0 r
      end
      else begin
        (* a point-reporting inner counts its whole level; subtract the
           tombstoned rows that satisfy the query *)
        let dead_sat =
          List.fold_left
            (fun acc j -> if satisfies lvl.rows.(j) q then acc + 1 else acc)
            0 lvl.dead_ids
        in
        M.query_count lvl.inner q - dead_sat
      end

    let mem_count t q =
      let c = ref 0 in
      for i = 0 to t.mem_len - 1 do
        if Bytes.get t.mem_dead i = '\000' && satisfies t.mem_rows.(i) q then
          incr c
      done;
      !c

    let query_count t q =
      check_query t q;
      let total = ref (mem_count t q) in
      Array.iter
        (function None -> () | Some lvl -> total := !total + level_count lvl q)
        t.slots;
      !total

    let query t q =
      check_query t q;
      let out = ref [] in
      for i = t.mem_len - 1 downto 0 do
        if Bytes.get t.mem_dead i = '\000' && satisfies t.mem_rows.(i) q then
          out := Array.copy t.mem_rows.(i) :: !out
      done;
      for s = Array.length t.slots - 1 downto 0 do
        match t.slots.(s) with
        | None -> ()
        | Some lvl ->
            if M.reports_ids then begin
              let r = Emio.Tls.get scratch in
              Emio.Reporter.clear r;
              ignore (M.query_into lvl.inner q r);
              out :=
                Emio.Reporter.fold
                  (fun acc j ->
                    if Bytes.get lvl.dead j = '\000' then
                      Array.copy lvl.rows.(j) :: acc
                    else acc)
                  !out r
            end
            else begin
              let rows = M.query lvl.inner q in
              if lvl.dead_count = 0 then
                out := List.rev_append rows !out
              else begin
                (* multiset-subtract the tombstoned rows satisfying the
                   query; identical-coordinate rows are interchangeable,
                   so which copy is dropped does not matter *)
                let sub = Hashtbl.create 16 in
                List.iter
                  (fun j ->
                    if satisfies lvl.rows.(j) q then
                      Hashtbl.replace sub lvl.rows.(j)
                        (1
                        + Option.value ~default:0
                            (Hashtbl.find_opt sub lvl.rows.(j))))
                  lvl.dead_ids;
                List.iter
                  (fun row ->
                    match Hashtbl.find_opt sub row with
                    | Some c when c > 0 -> Hashtbl.replace sub row (c - 1)
                    | _ -> out := row :: !out)
                  rows
              end
            end
      done;
      !out

    let query_into t q r =
      check_query t q;
      if not M.reports_ids then query_count t q
      else begin
        let total = ref 0 in
        for s = 0 to Array.length t.slots - 1 do
          match t.slots.(s) with
          | None -> ()
          | Some lvl ->
              let m = Emio.Reporter.mark r in
              ignore (M.query_into lvl.inner q r);
              if lvl.dead_count > 0 then
                Emio.Reporter.filter_from r m (fun j ->
                    Bytes.get lvl.dead j = '\000');
              let handles = lvl.handles in
              Emio.Reporter.rewrite_from r m (fun j -> handles.(j));
              total := !total + (Emio.Reporter.length r - m)
        done;
        for i = 0 to t.mem_len - 1 do
          if Bytes.get t.mem_dead i = '\000' && satisfies t.mem_rows.(i) q then begin
            Emio.Reporter.add r t.mem_handles.(i);
            incr total
          end
        done;
        !total
      end

    let estimate t q =
      Array.fold_left
        (fun acc -> function
          | None -> acc
          | Some lvl -> acc +. M.estimate lvl.inner q)
        0. t.slots

    let space_blocks t =
      Array.fold_left
        (fun acc -> function
          | None -> acc
          | Some lvl -> acc + M.space_blocks lvl.inner)
        0 t.slots

    let counters t =
      let levels =
        Array.fold_left
          (fun acc -> function Some _ -> acc + 1 | None -> acc)
          0 t.slots
      in
      (* inner gauges summed across levels, first-seen key order *)
      let merged = ref [] in
      Array.iter
        (function
          | None -> ()
          | Some lvl ->
              List.iter
                (fun (key, v) ->
                  match List.assoc_opt key !merged with
                  | Some _ ->
                      merged :=
                        List.map
                          (fun (k', v') ->
                            if String.equal k' key then (k', v' + v)
                            else (k', v'))
                          !merged
                  | None -> merged := !merged @ [ (key, v) ])
                (M.counters lvl.inner))
        t.slots;
      ("levels", levels)
      :: ("memtable", t.mem_len - t.mem_dead_count)
      :: ("tombstones", tombstones t)
      :: ("merges", t.merges)
      :: ("live", t.live_count)
      :: !merged

    (* -------------------------------------------------------------- *)
    (* Snapshots: a directory holding one inner snapshot per level
       plus a CRC-guarded MANIFEST recording handles, tombstones and
       the memtable log. *)

    let level_file slot = Printf.sprintf "level-%02d.snap" slot

    let snapshot =
      match M.snapshot with
      | None -> None
      | Some inner_ops ->
          Some
            {
              Index.snapshot_kind = lsm_kind;
              save =
                (fun t ~path ~meta ~page_size ->
                  if Sys.file_exists path then begin
                    if not (Sys.is_directory path) then
                      invalid_arg
                        (Printf.sprintf
                           "Lsm.save: %s exists and is not a directory" path)
                  end
                  else Sys.mkdir path 0o755;
                  let entries = ref [] in
                  Array.iteri
                    (fun s lvl_opt ->
                      match lvl_opt with
                      | None -> ()
                      | Some lvl ->
                          let f = level_file s in
                          let dst = Filename.concat path f in
                          (* write-then-rename: the level being saved
                             may be backed by the file it replaces *)
                          let tmp = dst ^ ".tmp" in
                          rm_rf tmp;
                          inner_ops.Index.save lvl.inner ~path:tmp ~meta
                            ~page_size;
                          if Sys.file_exists dst && Sys.is_directory dst then
                            rm_rf dst;
                          Sys.rename tmp dst;
                          let dead =
                            Array.of_list (List.sort Int.compare lvl.dead_ids)
                          in
                          entries :=
                            {
                              slot = s;
                              file = f;
                              crc = level_crc dst;
                              handles = lvl.handles;
                              rows = lvl.rows;
                              dead;
                            }
                            :: !entries)
                    t.slots;
                  let entries = Array.of_list (List.rev !entries) in
                  (* drop level files from earlier saves whose slot is
                     now empty *)
                  Array.iter
                    (fun f ->
                      if
                        String.length f >= 6
                        && String.sub f 0 6 = "level-"
                        && Filename.check_suffix f ".snap"
                        && not
                             (Array.exists
                                (fun e -> String.equal e.file f)
                                entries)
                      then rm_rf (Filename.concat path f))
                    (Sys.readdir path);
                  let mem = ref [] in
                  for i = t.mem_len - 1 downto 0 do
                    if Bytes.get t.mem_dead i = '\000' then
                      mem := (t.mem_handles.(i), t.mem_rows.(i)) :: !mem
                  done;
                  Manifest_dir.write_manifest path manifest_codec
                    {
                      inner_kind = inner_ops.Index.snapshot_kind;
                      dim = t.dim;
                      cap = t.cap;
                      next_handle = t.next_handle;
                      merges = t.merges;
                      params = t.params;
                      meta;
                      mem = Array.of_list !mem;
                      levels = entries;
                    });
              load =
                (fun ~stats ~policy ~cache_pages path ->
                  let ( let* ) = Result.bind in
                  let* m = read_manifest path in
                  let* () =
                    if String.equal m.inner_kind inner_ops.Index.snapshot_kind
                    then Ok ()
                    else
                      Error
                        (Diskstore.Snapshot.Kind_mismatch
                           {
                             expected = inner_ops.Index.snapshot_kind;
                             got = m.inner_kind;
                           })
                  in
                  let k = Array.length m.levels in
                  let per_pages = max 1 (cache_pages / max 1 k) in
                  let rec load_levels i acc =
                    if i = k then Ok (List.rev acc)
                    else begin
                      let e = m.levels.(i) in
                      let p = Filename.concat path e.file in
                      if not (Sys.file_exists p) then
                        Error
                          (Diskstore.Snapshot.Bad_header
                             (Printf.sprintf "missing level file %s" e.file))
                      else if not (level_crc_ok p e.crc) then
                        Error
                          (Diskstore.Snapshot.Bad_section_crc
                             { section = e.file })
                      else
                        let* inner, info =
                          inner_ops.Index.load ~stats ~policy
                            ~cache_pages:per_pages p
                        in
                        load_levels (i + 1) ((e, inner, info) :: acc)
                    end
                  in
                  let* loaded = load_levels 0 [] in
                  let t =
                    {
                      stats;
                      params = m.params;
                      dim = m.dim;
                      cap = m.cap;
                      mem_handles = Array.make m.cap 0;
                      mem_rows = Array.make m.cap [||];
                      mem_dead = Bytes.make m.cap '\000';
                      mem_len = Array.length m.mem;
                      mem_dead_count = 0;
                      slots = Array.make 4 None;
                      next_handle = m.next_handle;
                      live_count = 0;
                      merges = m.merges;
                      loc = Hashtbl.create 64;
                    }
                  in
                  Array.iteri
                    (fun i (h, row) ->
                      t.mem_handles.(i) <- h;
                      t.mem_rows.(i) <- row;
                      t.live_count <- t.live_count + 1;
                      Hashtbl.replace t.loc h (Mem i))
                    m.mem;
                  List.iter
                    (fun ((e : level_entry), inner, _) ->
                      let n = Array.length e.handles in
                      let lvl =
                        {
                          inner;
                          handles = e.handles;
                          rows = e.rows;
                          dead = Bytes.make n '\000';
                          dead_count = Array.length e.dead;
                          dead_ids = Array.to_list e.dead;
                        }
                      in
                      Array.iter (fun j -> Bytes.set lvl.dead j '\001') e.dead;
                      install t e.slot lvl;
                      t.live_count <- t.live_count + n - lvl.dead_count)
                    loaded;
                  let info =
                    let version, page_size, block_size =
                      match loaded with
                      | (_, _, i) :: _ ->
                          Diskstore.Snapshot.
                            (i.version, i.page_size, i.block_size)
                      | [] -> (1, 0, m.params.Index.block_size)
                    in
                    {
                      Diskstore.Snapshot.kind = lsm_kind;
                      meta = m.meta;
                      version;
                      page_size;
                      block_size;
                      n_blocks =
                        List.fold_left
                          (fun acc (_, _, i) ->
                            acc + i.Diskstore.Snapshot.n_blocks)
                          0 loaded;
                      total_pages =
                        List.fold_left
                          (fun acc (_, _, i) ->
                            acc + i.Diskstore.Snapshot.total_pages)
                          0 loaded;
                    }
                  in
                  Ok (t, info));
            }
  end)

(* The registry-owned kind at the bottom of the wrapper stack: the
   inner kind itself, or — when the inner is the sharded wrapper — the
   kind its shard manifests record.  Consumers that replay the build
   workload (CLI oracles, the load generator's query pool) resolve
   the base module through this. *)
let base_kind path (m : manifest) =
  if not (String.equal m.inner_kind Shard.sharded_kind) then Ok m.inner_kind
  else if Array.length m.levels = 0 then
    Error
      (Diskstore.Snapshot.Bad_header
         "lsm over a sharded inner needs at least one level to reopen")
  else
    Result.map
      (fun sm -> sm.Shard.inner_kind)
      (Shard.read_manifest (Filename.concat path m.levels.(0).file))

let open_snapshot ?(policy = Diskstore.Buffer_pool.Lru) ?(cache_pages = 64)
    ?build_domains ~stats path =
  let ( let* ) = Result.bind in
  let* m = read_manifest path in
  let registered kind =
    match Registry.find_by_snapshot_kind kind with
    | Some im -> Ok im
    | None ->
        Error
          (Diskstore.Snapshot.Bad_header
             (Printf.sprintf "no registered structure owns snapshot kind %S"
                kind))
  in
  let* (module Inner : Index.S) =
    (* An Lsm over a sharded structure stores one sharded directory per
       level; recover the shard configuration from the first level's
       own manifest, since the Shard wrapper is not registry-owned. *)
    if String.equal m.inner_kind Shard.sharded_kind then
      if Array.length m.levels = 0 then
        Error
          (Diskstore.Snapshot.Bad_header
             "lsm over a sharded inner needs at least one level to reopen")
      else
        let* sm =
          Shard.read_manifest (Filename.concat path m.levels.(0).file)
        in
        let* (module I : Index.S) = registered sm.Shard.inner_kind in
        Ok
          (Shard.make ~inner:(module I) ~shards:sm.Shard.shards
             ~partition:sm.Shard.partition ())
    else registered m.inner_kind
  in
  let (module L : Index.S) =
    make ~memtable_cap:m.cap ?build_domains ~inner:(module Inner) ()
  in
  let ops = Option.get L.snapshot in
  let* t, info = ops.Index.load ~stats ~policy ~cache_pages path in
  Ok (Index.Instance ((module L), t), info, m)
