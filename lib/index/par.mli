(** Build-time-selected parallel execution: OCaml 5 runs work on a
    persistent pool of [Domain]s, 4.14 falls back to sequential loops.
    The {!Query_engine} batch runner is the only intended caller —
    queries against the registered structures are read-only and keep
    their per-query accounting in domain-local {!Emio.Cost_ctx}s,
    which is what makes the fan-out safe.

    The pool is lazily created on the first parallel {!run}: worker
    domains are spawned once per process, parked on a condition
    variable between jobs, and reused across batches (spawning a
    domain costs hundreds of microseconds — more than a whole 256
    query h2 batch — which is why the per-batch [Domain.spawn] of the
    first engine was a slowdown).  The pool grows to the largest
    [domains] ever requested and is joined by an [at_exit] hook (or an
    explicit {!shutdown}).

    Not re-entrant: {!run} and {!map} must be called from the main
    domain only, never from inside a running job. *)

val available : bool
(** [true] iff this build can actually run on multiple domains. *)

val default_domains : unit -> int
(** The fan-out to use when the caller expressed no preference:
    [Domain.recommended_domain_count () - 1] (leaving a core for the
    main domain's share of the work), clamped to [\[1, 8\]].  Always
    [1] on 4.14 builds. *)

val run : domains:int -> n:int -> ?chunk:int -> (int -> int -> unit) -> unit
(** [run ~domains ~n ~chunk body] executes [body lo hi] over disjoint
    index ranges covering [\[0, n)].  Ranges are claimed from a shared
    atomic index in [chunk]-sized steps (default
    [max 1 (n / (8 * domains))]), so uneven work balances across
    domains without paying one fetch-and-add per item.  At most
    [domains] domains participate; the calling domain is one of them.
    The first exception any worker raises is re-raised after the job
    completes.  With [domains <= 1] (or on 4.14 builds) this is
    exactly [body 0 n] on the calling domain. *)

val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] applies [f] to every element, preserving
    order — the boxed convenience wrapper over {!run} (chunk size 1,
    per-element claiming) used by the trace-mode batch path, where
    per-query cost dwarfs claim traffic.  With [domains <= 1], on
    empty input, or when {!available} is [false], this is
    [Array.map f xs]. *)

val pool_size : unit -> int
(** Worker domains currently parked in the pool (0 before the first
    parallel {!run} and always 0 on 4.14 builds).  The calling domain
    is not counted. *)

val shutdown : unit -> unit
(** Join every pooled worker domain.  Idempotent; registered
    [at_exit].  A later {!run} simply respawns the pool, so this is
    safe to call between batches (tests do, to pin pool reuse). *)

val try_acquire : unit -> bool
(** Claim the pool lease.  The pool has a single job slot, so {!run}
    with [domains > 1] must only ever have one caller at a time; a
    concurrent caller (a serve dispatcher) that fails to win the
    lease must run its batch with [~domains:1] instead — same
    answers, same per-query costs, just no fan-out.  Non-blocking;
    returns [false] when another holder has it. *)

val release : unit -> unit
(** Give the lease back.  Only the holder may call this. *)
