(** Build-time-selected parallel map: OCaml 5 runs it on [Domain]s
    with a shared work index, 4.14 falls back to [Array.map].  The
    {!Query_engine} batch runner is the only intended caller — queries
    against the registered structures are read-only and keep their
    per-query accounting in domain-local {!Emio.Cost_ctx}s, which is
    what makes the fan-out safe. *)

val available : bool
(** [true] iff this build can actually run on multiple domains. *)

val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] applies [f] to every element, preserving
    order.  Work is pulled from a shared index so uneven queries
    balance across domains; at most [domains] domains run (the calling
    domain is one of them).  The first exception any worker raises is
    re-raised after all domains join.  With [domains <= 1], on empty
    input, or when {!available} is [false], this is [Array.map f xs]. *)
