(* Shared plumbing for directory snapshots (Shard, Lsm): a MANIFEST
   file holding a CRC-prefixed [Emio.Codec.versioned] payload next to
   the inner snapshot files it describes.  The versioned magic string
   doubles as the directory's format tag, so [Shard.is_sharded_path]
   and [Lsm.is_lsm_path] can tell each other's directories apart by
   peeking at the first few bytes instead of decoding a manifest. *)

let manifest_file = "MANIFEST"

let read_file_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

let file_crc path = Diskstore.Crc32.digest (read_file_bytes path)

let write_manifest dir codec m =
  let payload = Emio.Codec.encode codec m in
  let buf = Buffer.create (Bytes.length payload + 4) in
  Emio.Codec.write_u32 buf (Diskstore.Crc32.digest payload);
  Buffer.add_bytes buf payload;
  let path = Filename.concat dir manifest_file in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf)

let read_manifest dir codec =
  let path = Filename.concat dir manifest_file in
  if not (Sys.file_exists path) then
    Error (Diskstore.Snapshot.Bad_header "missing MANIFEST")
  else
    match read_file_bytes path with
    | exception Sys_error msg -> Error (Diskstore.Snapshot.Bad_header msg)
    | raw ->
        if Bytes.length raw < 4 then
          Error
            (Diskstore.Snapshot.Truncated
               { expected_bytes = 4; actual_bytes = Bytes.length raw })
        else begin
          let pos = ref 0 in
          let crc = Emio.Codec.read_u32 raw pos in
          let payload = Bytes.sub raw 4 (Bytes.length raw - 4) in
          if Diskstore.Crc32.digest payload <> crc then
            Error (Diskstore.Snapshot.Bad_section_crc { section = "manifest" })
          else
            match Emio.Codec.decode codec payload with
            | m -> Ok m
            | exception Emio.Codec.Decode msg ->
                Error (Diskstore.Snapshot.Bad_payload msg)
        end

(* The versioned magic of the directory's MANIFEST payload, read
   without CRC verification or decoding: wire layout is
   [u32 crc][u8 magic_len][magic][u32 version][...]. *)
let magic dir =
  let path = Filename.concat dir manifest_file in
  if not (Sys.file_exists path) then None
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let hdr = Bytes.create 5 in
          really_input ic hdr 0 5;
          let len = Char.code (Bytes.get hdr 4) in
          let m = Bytes.create len in
          really_input ic m 0 len;
          Bytes.to_string m)
    with
    | m -> Some m
    | exception (End_of_file | Sys_error _) -> None

let is_kind dir ~kind =
  Sys.file_exists dir && Sys.is_directory dir
  && (match magic dir with Some m -> String.equal m kind | None -> false)
