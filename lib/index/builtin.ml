(* One Index.S adapter per structure in the repo.  These are the only
   places that know native build/query signatures; everything above
   (registry, benches, CLI, conformance tests) is structure-agnostic.

   Conventions shared by every adapter:
   - malformed build parameters raise [Invalid_argument] with a
     "name.build: reason" message (the Index signature's contract);
   - [query]/[query_count] accept the unified {a0; a} form and check
     its dimension;
   - id-returning natives keep the build-time coordinate rows so
     [query] can report points, while [query_count] stays on the
     native counting path (same I/O pattern as the native API). *)

open Geom

let clip3 = (-10., -10., 10., 10.)
(* Coefficient clip box shared by every 3-D structure build: the bench
   query generators clamp (a, b) to ±9.9, safely inside. *)

let pt2_row p = [| Point2.x p; Point2.y p |]
let pt3_row p = [| Point3.x p; Point3.y p; Point3.z p |]

let rows_of_dataset = function
  | Index.Pts2 pts -> Array.map pt2_row pts
  | Index.Pts3 pts -> Array.map pt3_row pts
  | Index.PtsD pts -> pts

let check_dims ~name ~dims ds =
  let d = Index.dataset_dim ds in
  if not (List.mem d dims) then
    invalid_arg
      (Printf.sprintf "%s.build: unsupported dimension %d (supports %s)" name d
         (String.concat ", " (List.map string_of_int dims)));
  d

let as_pts2 ~name ds =
  match ds with
  | Index.Pts2 pts -> pts
  | Index.PtsD pts when Index.dataset_dim ds = 2 ->
      Array.map (fun r -> Point2.make r.(0) r.(1)) pts
  | _ ->
      invalid_arg
        (Printf.sprintf "%s.build: unsupported dimension %d (supports 2)" name
           (Index.dataset_dim ds))

let as_pts3 ~name ds =
  match ds with
  | Index.Pts3 pts -> pts
  | Index.PtsD pts when Index.dataset_dim ds = 3 ->
      Array.map (fun r -> Point3.make r.(0) r.(1) r.(2)) pts
  | _ ->
      invalid_arg
        (Printf.sprintf "%s.build: unsupported dimension %d (supports 3)" name
           (Index.dataset_dim ds))

let q2 ~name (q : Index.query) =
  if Index.query_dim q <> 2 then
    invalid_arg (name ^ ".query: expected a 2-d halfplane");
  (q.a.(0), q.a0)

let q3 ~name (q : Index.query) =
  if Index.query_dim q <> 3 then
    invalid_arg (name ^ ".query: expected a 3-d halfspace");
  (q.a.(0), q.a.(1), q.a0)

let qd ~name ~dim (q : Index.query) =
  if Index.query_dim q <> dim then
    invalid_arg
      (Printf.sprintf "%s.query: expected a %d-d halfspace" name dim);
  (q.a0, q.a)

(* Positive-int extra parameter, validated. *)
let extra_int ~name ~key lookup =
  match lookup key with
  | None -> None
  | Some v ->
      let i = int_of_float v in
      if float_of_int i <> v || i < 1 then
        invalid_arg
          (Printf.sprintf "%s.build: %s must be a positive integer" name key)
      else Some i

let blocks_of ~n ~bs = max 1 ((n + bs - 1) / bs)

(* log_B n for the Table-1 estimates; clamped away from the degenerate
   bases/arguments so the hint is always finite and >= 1. *)
let logb ~bs n =
  let b = float_of_int (max 2 bs) and x = float_of_int (max 2 n) in
  Stdlib.max 1. (log x /. log b)

let eps = 0.1
(* The ε of the n^{..+ε} Table-1 bounds, as the estimates realize it. *)

module H2 = struct
  type t = { s : Core.Halfspace2d.t; n : int; bs : int }

  let name = "h2"
  let description = "§3 layered 2-d halfspace structure (Theorem 3.5)"
  let dims = [ 2 ]
  let kinds = [ Index.Halfspace ]
  let space_bound = "O(n)"
  let query_bound = "O(log_B n + t)"
  let preferred ~dim:_ = `Pts2

  let build ~(params : Index.build_params) ~stats ds =
    ignore (Index.extra_lookup ~name ~allowed:[] params : string -> float option);
    let pts = as_pts2 ~name ds in
    let s =
      Core.Halfspace2d.build ~stats ~block_size:params.block_size
        ~cache_blocks:params.cache_blocks ~seed:params.seed pts
    in
    { s; n = Array.length pts; bs = params.block_size }

  let query t q =
    let slope, icept = q2 ~name q in
    List.map pt2_row (Core.Halfspace2d.query t.s ~slope ~icept)

  let query_count t q =
    let slope, icept = q2 ~name q in
    Core.Halfspace2d.query_count t.s ~slope ~icept

  let reports_ids = false
  let batch_plane_sorted = false
  let query_into t q _r = query_count t q
  let estimate t _q = logb ~bs:t.bs (blocks_of ~n:t.n ~bs:t.bs)
  let space_blocks t = Core.Halfspace2d.space_blocks t.s

  let counters t =
    [
      ("layers", Core.Halfspace2d.layers t.s);
      ("last_clusters_visited", Core.Halfspace2d.last_clusters_visited t.s);
      ("last_layers_visited", Core.Halfspace2d.last_layers_visited t.s);
    ]

  let update = None

  let snapshot =
    Some
      {
        Index.snapshot_kind = Core.Halfspace2d.snapshot_kind;
        save =
          (fun t ~path ~meta ~page_size ->
            Core.Halfspace2d.save_snapshot t.s ~path ~meta ?page_size ());
        load =
          (fun ~stats ~policy ~cache_pages path ->
            match
              Core.Halfspace2d.of_snapshot ~stats ~policy ~cache_pages path
            with
            | Error _ as e -> e
            | Ok (s, info) ->
                Ok
                  ( {
                      s;
                      n = Core.Halfspace2d.length s;
                      bs = info.Diskstore.Snapshot.block_size;
                    },
                    info ));
      }
end

module H3 = struct
  type t = { s : Core.Halfspace3d.t; n : int; bs : int }

  let name = "h3"
  let description = "§4.2 3-d halfspace structure over k-lowest-planes"
  let dims = [ 3 ]
  let kinds = [ Index.Halfspace ]
  let space_bound = "O(n log2 n)"
  let query_bound = "O(log_B n + t) expected"
  let preferred ~dim:_ = `Pts3

  let build ~(params : Index.build_params) ~stats ds =
    let lookup = Index.extra_lookup ~name ~allowed:[ "copies" ] params in
    let copies = extra_int ~name ~key:"copies" lookup in
    let pts = as_pts3 ~name ds in
    let s =
      Core.Halfspace3d.build ~stats ~block_size:params.block_size
        ~cache_blocks:params.cache_blocks ~seed:params.seed ?copies ~clip:clip3
        pts
    in
    { s; n = Array.length pts; bs = params.block_size }

  let query t q =
    let a, b, c = q3 ~name q in
    List.map pt3_row (Core.Halfspace3d.query t.s ~a ~b ~c)

  let query_count t q =
    let a, b, c = q3 ~name q in
    Core.Halfspace3d.query_count t.s ~a ~b ~c

  let reports_ids = true
  let batch_plane_sorted = true

  let query_into t q r =
    let a, b, c = q3 ~name q in
    let m = Emio.Reporter.mark r in
    Core.Halfspace3d.query_ids_into t.s ~a ~b ~c r;
    Emio.Reporter.length r - m

  let estimate t _q = logb ~bs:t.bs (blocks_of ~n:t.n ~bs:t.bs)
  let space_blocks t = Core.Halfspace3d.space_blocks t.s
  let counters t = [ ("fallbacks", Core.Halfspace3d.fallbacks t.s) ]

  let update = None

  let snapshot =
    Some
      {
        Index.snapshot_kind = Core.Halfspace3d.snapshot_kind;
        save =
          (fun t ~path ~meta ~page_size ->
            Core.Halfspace3d.save_snapshot t.s ~path ~meta ?page_size ());
        load =
          (fun ~stats ~policy ~cache_pages path ->
            match
              Core.Halfspace3d.of_snapshot ~stats ~policy ~cache_pages path
            with
            | Error _ as e -> e
            | Ok (s, info) ->
                Ok
                  ( {
                      s;
                      n = Core.Halfspace3d.length s;
                      bs = info.Diskstore.Snapshot.block_size;
                    },
                    info ));
      }
end

module Ptree = struct
  type t = {
    s : Core.Partition_tree.t;
    pts : Partition.Cells.point array;
    bs : int;
  }

  let name = "ptree"
  let description = "§5 linear-size d-dimensional partition tree"
  let dims = [ 2; 3; 4 ]
  let kinds = [ Index.Halfspace ]
  let space_bound = "O(n)"
  let query_bound = "O(n^{1-1/d+e} + t)"
  let preferred ~dim:_ = `PtsD

  let build ~(params : Index.build_params) ~stats ds =
    ignore (Index.extra_lookup ~name ~allowed:[] params : string -> float option);
    let dim = check_dims ~name ~dims ds in
    let pts = rows_of_dataset ds in
    let s =
      Core.Partition_tree.build ~stats ~block_size:params.block_size
        ~cache_blocks:params.cache_blocks ~dim pts
    in
    { s; pts; bs = params.block_size }

  let ids t q =
    let a0, a = qd ~name ~dim:(Core.Partition_tree.dim t.s) q in
    Core.Partition_tree.query_halfspace t.s ~a0 ~a

  let query t q = List.map (fun i -> t.pts.(i)) (ids t q)

  let query_count t q =
    let a0, a = qd ~name ~dim:(Core.Partition_tree.dim t.s) q in
    Core.Partition_tree.query_halfspace_count t.s ~a0 ~a

  let reports_ids = true
  let batch_plane_sorted = false

  let query_into t q r =
    let a0, a = qd ~name ~dim:(Core.Partition_tree.dim t.s) q in
    let m = Emio.Reporter.mark r in
    Core.Partition_tree.query_halfspace_into t.s ~a0 ~a r;
    Emio.Reporter.length r - m

  let estimate t _q =
    let d = float_of_int (Core.Partition_tree.dim t.s) in
    let n = blocks_of ~n:(Array.length t.pts) ~bs:t.bs in
    float_of_int n ** (1. -. (1. /. d) +. eps)

  let space_blocks t = Core.Partition_tree.space_blocks t.s

  let counters t =
    [ ("last_visited_nodes", Core.Partition_tree.last_visited_nodes t.s) ]

  let update = None

  let snapshot =
    Some
      {
        Index.snapshot_kind = Core.Partition_tree.snapshot_kind;
        save =
          (fun t ~path ~meta ~page_size ->
            Core.Partition_tree.save_snapshot t.s ~path ~meta ?page_size ());
        load =
          (fun ~stats ~policy ~cache_pages path ->
            match
              Core.Partition_tree.of_snapshot ~stats ~policy ~cache_pages path
            with
            | Error _ as e -> e
            | Ok (s, info) ->
                Ok
                  ( {
                      s;
                      pts = Core.Partition_tree.points s;
                      bs = info.Diskstore.Snapshot.block_size;
                    },
                    info ));
      }
end

module Shallow = struct
  type t = {
    s : Core.Shallow_tree.t;
    pts : Partition.Cells.point array;
    bs : int;
  }

  let name = "shallow"
  let description = "§6 shallow partition tree (Theorem 6.3)"
  let dims = [ 2; 3; 4 ]
  let kinds = [ Index.Halfspace ]
  let space_bound = "O(n log_B n)"
  let query_bound = "O(n^{1-1/⌊d/2⌋+e} + t)"
  let preferred ~dim:_ = `PtsD

  let build ~(params : Index.build_params) ~stats ds =
    let lookup = Index.extra_lookup ~name ~allowed:[ "shallow_factor" ] params in
    let shallow_factor =
      match lookup "shallow_factor" with
      | None -> None
      | Some f when f > 0. -> Some f
      | Some _ -> invalid_arg (name ^ ".build: shallow_factor must be > 0")
    in
    let dim = check_dims ~name ~dims ds in
    let pts = rows_of_dataset ds in
    let s =
      Core.Shallow_tree.build ~stats ~block_size:params.block_size
        ~cache_blocks:params.cache_blocks ?shallow_factor ~dim pts
    in
    { s; pts; bs = params.block_size }

  let ids t q =
    let a0, a = qd ~name ~dim:(Core.Shallow_tree.dim t.s) q in
    Core.Shallow_tree.query_halfspace t.s ~a0 ~a

  let query t q = List.map (fun i -> t.pts.(i)) (ids t q)

  let query_count t q =
    let a0, a = qd ~name ~dim:(Core.Shallow_tree.dim t.s) q in
    Core.Shallow_tree.query_halfspace_count t.s ~a0 ~a

  let reports_ids = true
  let batch_plane_sorted = false

  let query_into t q r =
    let a0, a = qd ~name ~dim:(Core.Shallow_tree.dim t.s) q in
    let m = Emio.Reporter.mark r in
    Core.Shallow_tree.query_halfspace_into t.s ~a0 ~a r;
    Emio.Reporter.length r - m

  let estimate t _q =
    let d = Core.Shallow_tree.dim t.s in
    let n = blocks_of ~n:(Array.length t.pts) ~bs:t.bs in
    let expo = 1. -. (1. /. float_of_int (max 1 (d / 2))) +. eps in
    float_of_int n ** Stdlib.max eps expo

  let space_blocks t = Core.Shallow_tree.space_blocks t.s

  let counters t =
    [ ("last_secondary_uses", Core.Shallow_tree.last_secondary_uses t.s) ]

  let update = None

  let snapshot =
    Some
      {
        Index.snapshot_kind = Core.Shallow_tree.snapshot_kind;
        save =
          (fun t ~path ~meta ~page_size ->
            Core.Shallow_tree.save_snapshot t.s ~path ~meta ?page_size ());
        load =
          (fun ~stats ~policy ~cache_pages path ->
            match
              Core.Shallow_tree.of_snapshot ~stats ~policy ~cache_pages path
            with
            | Error _ as e -> e
            | Ok (s, info) ->
                Ok
                  ( {
                      s;
                      pts = Core.Shallow_tree.points s;
                      bs = info.Diskstore.Snapshot.block_size;
                    },
                    info ));
      }
end

module Tradeoff = struct
  type t = {
    s : Core.Tradeoff3d.t;
    pts : Point3.t array;
    bs : int;
    a : float;
  }

  let name = "tradeoff"
  let description = "§6 space/query tradeoff (Theorem 6.1), B^a leaves"
  let dims = [ 3 ]
  let kinds = [ Index.Halfspace ]
  let space_bound = "O(n log2 B)"
  let query_bound = "O((n/B^{a-1})^{2/3+e} + t) expected"
  let preferred ~dim:_ = `Pts3

  let build ~(params : Index.build_params) ~stats ds =
    let lookup = Index.extra_lookup ~name ~allowed:[ "a" ] params in
    let a = match lookup "a" with None -> 1.5 | Some a -> a in
    if a <= 1. then invalid_arg (name ^ ".build: exponent a must be > 1");
    let pts = as_pts3 ~name ds in
    let s =
      Core.Tradeoff3d.build ~stats ~block_size:params.block_size
        ~cache_blocks:params.cache_blocks ~seed:params.seed ~a ~clip:clip3 pts
    in
    { s; pts; bs = params.block_size; a }

  let query t q =
    let a, b, c = q3 ~name q in
    List.map
      (fun i -> pt3_row t.pts.(i))
      (Core.Tradeoff3d.query_ids t.s ~a ~b ~c)

  let query_count t q =
    let a, b, c = q3 ~name q in
    Core.Tradeoff3d.query_count t.s ~a ~b ~c

  let reports_ids = true
  let batch_plane_sorted = true

  let query_into t q r =
    let a, b, c = q3 ~name q in
    let m = Emio.Reporter.mark r in
    Core.Tradeoff3d.query_ids_into t.s ~a ~b ~c r;
    Emio.Reporter.length r - m

  let estimate t _q =
    let n = float_of_int (blocks_of ~n:(Array.length t.pts) ~bs:t.bs) in
    let b = float_of_int (max 2 t.bs) in
    Stdlib.max 1. ((n /. (b ** (t.a -. 1.))) ** ((2. /. 3.) +. eps))

  let space_blocks t = Core.Tradeoff3d.space_blocks t.s

  let counters t =
    [
      ("leaf_capacity", Core.Tradeoff3d.leaf_capacity t.s);
      ("last_secondary_queries", Core.Tradeoff3d.last_secondary_queries t.s);
    ]

  let update = None

  let snapshot =
    Some
      {
        Index.snapshot_kind = Core.Tradeoff3d.snapshot_kind;
        save =
          (fun t ~path ~meta ~page_size ->
            Core.Tradeoff3d.save_snapshot t.s ~path ~meta ?page_size ());
        load =
          (fun ~stats ~policy ~cache_pages path ->
            match
              Core.Tradeoff3d.of_snapshot ~stats ~policy ~cache_pages path
            with
            | Error _ as e -> e
            | Ok (s, info) ->
                Ok
                  ( {
                      s;
                      pts = Core.Tradeoff3d.points s;
                      bs = info.Diskstore.Snapshot.block_size;
                      a = Core.Tradeoff3d.exponent s;
                    },
                    info ));
      }
end

module Cert = struct
  type t = { s : Core.Cert_tree.t; pts : Point3.t array; bs : int }

  let name = "cert"
  let description = "certificate-enhanced 3-d partition tree (DESIGN.md §7)"
  let dims = [ 3 ]
  let kinds = [ Index.Halfspace ]
  let space_bound = "O(n) + certificates"
  let query_bound = "O((T+1) · depth) node visits"
  let preferred ~dim:_ = `Pts3

  let build ~(params : Index.build_params) ~stats ds =
    let lookup = Index.extra_lookup ~name ~allowed:[ "cert_cap" ] params in
    let cert_cap = extra_int ~name ~key:"cert_cap" lookup in
    let pts = as_pts3 ~name ds in
    let s =
      Core.Cert_tree.build ~stats ~block_size:params.block_size
        ~cache_blocks:params.cache_blocks ?cert_cap pts
    in
    { s; pts; bs = params.block_size }

  let qc ~name (q : Index.query) =
    if Index.query_dim q <> 3 then
      invalid_arg (name ^ ".query: expected a 3-d halfspace");
    (q.a0, q.a)

  let query t q =
    let a0, a = qc ~name q in
    List.map (fun i -> pt3_row t.pts.(i)) (Core.Cert_tree.query_ids t.s ~a0 ~a)

  let query_count t q =
    let a0, a = qc ~name q in
    Core.Cert_tree.query_count t.s ~a0 ~a

  let reports_ids = true
  let batch_plane_sorted = true

  let query_into t q r =
    let a0, a = qc ~name q in
    let m = Emio.Reporter.mark r in
    Core.Cert_tree.query_ids_into t.s ~a0 ~a r;
    Emio.Reporter.length r - m

  let estimate t _q = logb ~bs:t.bs (blocks_of ~n:(Array.length t.pts) ~bs:t.bs)
  let space_blocks t = Core.Cert_tree.space_blocks t.s

  let counters t =
    [
      ("last_visited_nodes", Core.Cert_tree.last_visited_nodes t.s);
      ("certificate_items", Core.Cert_tree.certificate_items t.s);
    ]

  let update = None

  let snapshot =
    Some
      {
        Index.snapshot_kind = Core.Cert_tree.snapshot_kind;
        save =
          (fun t ~path ~meta ~page_size ->
            Core.Cert_tree.save_snapshot t.s ~path ~meta ?page_size ());
        load =
          (fun ~stats ~policy ~cache_pages path ->
            match
              Core.Cert_tree.of_snapshot ~stats ~policy ~cache_pages path
            with
            | Error _ as e -> e
            | Ok (s, info) ->
                Ok
                  ( {
                      s;
                      pts = Core.Cert_tree.points s;
                      bs = info.Diskstore.Snapshot.block_size;
                    },
                    info ));
      }
end

(* The two R-tree packings share everything but the name and the
   [packing] flag; each stamps its own snapshot kind
   ("lcsearch." ^ name) so the kind → module mapping stays
   injective. *)
module type RTREE_VARIANT = sig
  val name : string
  val description : string
  val packing : Baselines.Rtree.packing
end

module Make_rtree (V : RTREE_VARIANT) = struct
  type t = { s : Baselines.Rtree.t; n : int; bs : int }

  let name = V.name
  let description = V.description
  let dims = [ 2 ]
  let kinds = [ Index.Halfspace; Index.Window ]
  let space_bound = "O(n)"
  let query_bound = "O(√n + t) typical, Θ(n) adversarial (§1.2)"
  let preferred ~dim:_ = `Pts2

  let build ~(params : Index.build_params) ~stats ds =
    ignore (Index.extra_lookup ~name ~allowed:[] params : string -> float option);
    let pts = as_pts2 ~name ds in
    let s =
      Baselines.Rtree.build ~stats ~block_size:params.block_size
        ~cache_blocks:params.cache_blocks ~packing:V.packing pts
    in
    { s; n = Array.length pts; bs = params.block_size }

  let query t q =
    let slope, icept = q2 ~name q in
    List.map pt2_row (Baselines.Rtree.query_halfplane t.s ~slope ~icept)

  let query_count t q =
    let slope, icept = q2 ~name q in
    Baselines.Rtree.query_count t.s ~slope ~icept

  let reports_ids = false
  let batch_plane_sorted = false
  let query_into t q _r = query_count t q
  let estimate t _q = sqrt (float_of_int (blocks_of ~n:t.n ~bs:t.bs))
  let space_blocks t = Baselines.Rtree.space_blocks t.s
  let counters t = [ ("height", Baselines.Rtree.height t.s) ]

  let update = None

  let snapshot =
    let kind = "lcsearch." ^ V.name in
    Some
      {
        Index.snapshot_kind = kind;
        save =
          (fun t ~path ~meta ~page_size ->
            Baselines.Rtree.save_snapshot t.s ~path ~kind ~meta ?page_size ());
        load =
          (fun ~stats ~policy ~cache_pages path ->
            match
              Baselines.Rtree.of_snapshot ~stats ~policy ~cache_pages ~kind
                path
            with
            | Error _ as e -> e
            | Ok (s, info) ->
                Ok
                  ( {
                      s;
                      n = Baselines.Rtree.length s;
                      bs = info.Diskstore.Snapshot.block_size;
                    },
                    info ));
      }
end

module Rtree = Make_rtree (struct
  let name = "rtree"
  let description = "STR-packed R-tree baseline (§1.2 refs 29, 9)"
  let packing = Baselines.Rtree.Str
end)

module Rtree_hilbert = Make_rtree (struct
  let name = "rtree-hilbert"
  let description = "Hilbert-packed R-tree baseline (§1.2 ref 33)"
  let packing = Baselines.Rtree.Hilbert
end)

module Quadtree = struct
  type t = { s : Baselines.Quadtree.t; n : int; bs : int }

  let name = "quadtree"
  let description = "bucket PR quadtree baseline (§1.2 refs 46, 47)"
  let dims = [ 2 ]
  let kinds = [ Index.Halfspace ]
  let space_bound = "O(n) typical"
  let query_bound = "O(√n + t) uniform, Θ(n) adversarial (§1.2)"
  let preferred ~dim:_ = `Pts2

  let build ~(params : Index.build_params) ~stats ds =
    let lookup = Index.extra_lookup ~name ~allowed:[ "max_depth" ] params in
    let max_depth = extra_int ~name ~key:"max_depth" lookup in
    let pts = as_pts2 ~name ds in
    let s =
      Baselines.Quadtree.build ~stats ~block_size:params.block_size
        ~cache_blocks:params.cache_blocks ?max_depth pts
    in
    { s; n = Array.length pts; bs = params.block_size }

  let query t q =
    let slope, icept = q2 ~name q in
    List.map pt2_row (Baselines.Quadtree.query_halfplane t.s ~slope ~icept)

  let query_count t q =
    let slope, icept = q2 ~name q in
    Baselines.Quadtree.query_count t.s ~slope ~icept

  let reports_ids = false
  let batch_plane_sorted = false
  let query_into t q _r = query_count t q
  let estimate t _q = sqrt (float_of_int (blocks_of ~n:t.n ~bs:t.bs))
  let space_blocks t = Baselines.Quadtree.space_blocks t.s
  let counters t = [ ("depth", Baselines.Quadtree.depth t.s) ]

  let update = None

  let snapshot =
    Some
      {
        Index.snapshot_kind = Baselines.Quadtree.snapshot_kind;
        save =
          (fun t ~path ~meta ~page_size ->
            Baselines.Quadtree.save_snapshot t.s ~path ~meta ?page_size ());
        load =
          (fun ~stats ~policy ~cache_pages path ->
            match
              Baselines.Quadtree.of_snapshot ~stats ~policy ~cache_pages path
            with
            | Error _ as e -> e
            | Ok (s, info) ->
                Ok
                  ( {
                      s;
                      n = Baselines.Quadtree.length s;
                      bs = info.Diskstore.Snapshot.block_size;
                    },
                    info ));
      }
end

module Gridfile = struct
  type t = { s : Baselines.Grid_file.t; n : int; bs : int }

  let name = "gridfile"
  let description = "grid file baseline (§1.2 ref 41)"
  let dims = [ 2 ]
  let kinds = [ Index.Halfspace; Index.Window ]
  let space_bound = "O(n) typical"
  let query_bound = "O(√n + t) uniform, Θ(n) adversarial (§1.2)"
  let preferred ~dim:_ = `Pts2

  let build ~(params : Index.build_params) ~stats ds =
    ignore (Index.extra_lookup ~name ~allowed:[] params : string -> float option);
    let pts = as_pts2 ~name ds in
    let s =
      Baselines.Grid_file.build ~stats ~block_size:params.block_size
        ~cache_blocks:params.cache_blocks pts
    in
    { s; n = Array.length pts; bs = params.block_size }

  let query t q =
    let slope, icept = q2 ~name q in
    List.map pt2_row (Baselines.Grid_file.query_halfplane t.s ~slope ~icept)

  let query_count t q =
    let slope, icept = q2 ~name q in
    Baselines.Grid_file.query_count t.s ~slope ~icept

  let reports_ids = false
  let batch_plane_sorted = false
  let query_into t q _r = query_count t q
  let estimate t _q = sqrt (float_of_int (blocks_of ~n:t.n ~bs:t.bs))
  let space_blocks t = Baselines.Grid_file.space_blocks t.s
  let counters t = [ ("side", Baselines.Grid_file.side t.s) ]

  let update = None

  let snapshot =
    Some
      {
        Index.snapshot_kind = Baselines.Grid_file.snapshot_kind;
        save =
          (fun t ~path ~meta ~page_size ->
            Baselines.Grid_file.save_snapshot t.s ~path ~meta ?page_size ());
        load =
          (fun ~stats ~policy ~cache_pages path ->
            match
              Baselines.Grid_file.of_snapshot ~stats ~policy ~cache_pages path
            with
            | Error _ as e -> e
            | Ok (s, info) ->
                Ok
                  ( {
                      s;
                      n = Baselines.Grid_file.length s;
                      bs = info.Diskstore.Snapshot.block_size;
                    },
                    info ));
      }
end

module Scan = struct
  type which = S2 of Baselines.Linear_scan.t | Sd of Baselines.Linear_scan.d
  type t = { s : which; n : int; bs : int }

  let name = "scan"
  let description = "linear scan oracle: Θ(n) I/Os, always exact"
  let dims = [ 2; 3; 4 ]
  let kinds = [ Index.Halfspace ]
  let space_bound = "O(n)"
  let query_bound = "Θ(n)"
  let preferred ~dim = if dim = 2 then `Pts2 else `PtsD

  let build ~(params : Index.build_params) ~stats ds =
    ignore (Index.extra_lookup ~name ~allowed:[] params : string -> float option);
    let dim = check_dims ~name ~dims ds in
    let s =
      match ds with
      | Index.Pts2 pts ->
          S2
            (Baselines.Linear_scan.build ~stats ~block_size:params.block_size
               ~cache_blocks:params.cache_blocks pts)
      | _ ->
          Sd
            (Baselines.Linear_scan.build_d ~stats
               ~block_size:params.block_size
               ~cache_blocks:params.cache_blocks ~dim (rows_of_dataset ds))
    in
    { s; n = Index.dataset_length ds; bs = params.block_size }

  let query t q =
    match t.s with
    | S2 s ->
        let slope, icept = q2 ~name q in
        List.map pt2_row (Baselines.Linear_scan.query_halfplane s ~slope ~icept)
    | Sd s ->
        let a0, a = qd ~name ~dim:(Baselines.Linear_scan.dim_d s) q in
        Baselines.Linear_scan.query_halfspace_d s ~a0 ~a

  let query_count t q =
    match t.s with
    | S2 s ->
        let slope, icept = q2 ~name q in
        Baselines.Linear_scan.query_count s ~slope ~icept
    | Sd s ->
        let a0, a = qd ~name ~dim:(Baselines.Linear_scan.dim_d s) q in
        Baselines.Linear_scan.query_count_d s ~a0 ~a

  let reports_ids = false
  let batch_plane_sorted = false
  let query_into t q _r = query_count t q
  let estimate t _q = float_of_int (blocks_of ~n:t.n ~bs:t.bs)

  let space_blocks t =
    match t.s with
    | S2 s -> Baselines.Linear_scan.space_blocks s
    | Sd s -> Baselines.Linear_scan.space_blocks_d s

  let counters _t = []

  let update = None

  let snapshot =
    Some
      {
        Index.snapshot_kind = Baselines.Linear_scan.snapshot_kind;
        save =
          (fun t ~path ~meta ~page_size ->
            match t.s with
            | S2 s ->
                Baselines.Linear_scan.save_snapshot s ~path ~meta ?page_size ()
            | Sd s ->
                Baselines.Linear_scan.save_snapshot_d s ~path ~meta ?page_size
                  ());
        load =
          (fun ~stats ~policy ~cache_pages path ->
            match
              Baselines.Linear_scan.of_snapshot ~stats ~policy ~cache_pages
                path
            with
            | Error _ as e -> e
            | Ok (any, info) ->
                let s, n =
                  match any with
                  | Baselines.Linear_scan.T2 s ->
                      (S2 s, Baselines.Linear_scan.length s)
                  | Baselines.Linear_scan.Td s ->
                      (Sd s, Baselines.Linear_scan.length_d s)
                in
                Ok
                  ({ s; n; bs = info.Diskstore.Snapshot.block_size }, info));
      }
end

(* The registry seeds itself from this list (a static reference, so no
   -linkall tricks are needed to keep the adapters linked).  Order is
   the Table-1 presentation order: paper structures, then baselines. *)
let all : (module Index.S) list =
  [
    (module H2);
    (module H3);
    (module Shallow);
    (module Tradeoff);
    (module Ptree);
    (module Cert);
    (module Rtree);
    (module Rtree_hilbert);
    (module Quadtree);
    (module Gridfile);
    (module Scan);
  ]
