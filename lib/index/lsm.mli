(** The LSM dynamization layer: §5 remark (iii) / §7 open problem 1,
    generalized to every registered structure.

    The paper notes that the standard partial-reconstruction method
    [Mehlhorn, ref. 39] dynamizes the §5 structure at
    O((log₂ n) log_B n) amortized I/Os per update.  Halfspace
    reporting is a decomposable query, so we keep the classic
    logarithmic method: O(log N) static structures of geometrically
    growing sizes, rebuilt by merging on insertion; deletions
    tombstone points and trigger a global rebuild once half the
    structure is dead.  Queries ask every level and filter tombstones,
    adding an O(log₂ n) factor to the query bound, exactly as the
    remark trades.  Nekrich, {e Dynamic Range Reporting in External
    Memory} (PAPERS.md), obtains O(log_B² N + k/B) dynamic 3-D
    reporting from this same static-to-dynamic reduction.

    [Lsm.make ~inner] wraps any {!Index.S} structure:

    - a small sorted-run {b memtable} (capacity [memtable_cap])
      absorbs [insert]/[delete]; deletes of spilled points become
      per-level tombstones;
    - {b levels} follow a binary counter: slot [i] holds at most
      [cap·2^i] points as one immutable built copy of the inner
      structure; a spill carries the occupied low slots into the first
      free one, rebuilding on the PR-5 domain pool with a private
      [Io_stats] sink folded into the caller's exactly once
      (deterministic accounting across domain counts);
    - {b queries} fan out across memtable + levels through the
      existing [Index.S] paths; tombstoned ids are censored with
      {!Emio.Reporter.filter_from} (id-reporting inners) or
      multiset-subtracted (point-reporting inners);
    - {b snapshots} are versioned directories: a CRC-guarded MANIFEST
      (inner kind, build params, handle maps, tombstones, memtable
      log) plus one inner snapshot file per level, reopened through
      {!Registry.find_by_snapshot_kind}.

    The wrapper keeps the inner structure's [name], so registry-driven
    consumers treat a dynamized instance like the structure it wraps;
    its update capability is exposed through [Index.S.update]. *)

val lsm_kind : string
(** The snapshot kind tag ["lcsearch.lsm"] owned by every Lsm
    directory regardless of inner structure. *)

val default_memtable_cap : int

val make :
  ?memtable_cap:int ->
  ?build_domains:int ->
  inner:(module Index.S) ->
  unit ->
  (module Index.S)
(** Dynamize [inner].  [memtable_cap] (default
    {!default_memtable_cap}) bounds the memtable; smaller caps mean
    more, smaller levels.  [build_domains] sizes the pool used for
    level rebuilds (accounting is identical for any value).  Raises
    [Invalid_argument] if [memtable_cap < 1]. *)

(** {2 Directory snapshots} *)

type level_entry = {
  slot : int;
  file : string;
  crc : int;
  handles : int array;  (** local id -> handle, inner build order *)
  rows : float array array;  (** local id -> coordinate row *)
  dead : int array;  (** tombstoned local ids, ascending *)
}

type manifest = {
  inner_kind : string;
  dim : int;
  cap : int;
  next_handle : int;
  merges : int;
  params : Index.build_params;
  meta : string;
  mem : (int * float array) array;
      (** live memtable entries (handle, row), handle order *)
  levels : level_entry array;
}

val is_lsm_path : string -> bool
(** Whether [path] is a directory whose MANIFEST carries the Lsm
    magic (cheap peek; no CRC verification). *)

val read_manifest : string -> (manifest, Diskstore.Snapshot.error) result

val manifest_live_rows : manifest -> (int * float array) array
(** Live (handle, row) pairs recorded by a manifest, ascending by
    handle: what a rebuild-from-live conformance oracle is built
    from. *)

val base_kind : string -> manifest -> (string, Diskstore.Snapshot.error) result
(** The registry-owned snapshot kind at the bottom of the wrapper
    stack rooted at the directory [path]: [inner_kind] itself, or —
    when the inner is the sharded wrapper — the kind recorded by the
    first level's shard manifest.  Workload replay resolves its module
    through this (the wrappers' [preferred] is a passthrough). *)

val open_snapshot :
  ?policy:Diskstore.Buffer_pool.policy ->
  ?cache_pages:int ->
  ?build_domains:int ->
  stats:Emio.Io_stats.t ->
  string ->
  ( Index.instance * Diskstore.Snapshot.info * manifest,
    Diskstore.Snapshot.error )
  result
(** Reopen an Lsm directory: read the manifest, resolve the inner
    structure by snapshot kind through {!Registry}, CRC-check and load
    each level, and replay the memtable log.  Handles (and therefore
    future [insert] handles) are stable across save/reopen. *)
