(* Shared workload recipes for the benches and the conformance suite.
   One place fixes the dataset ranges and query generation, so every
   registry-driven consumer measures the same distributions the legacy
   benches did (2-d range 100, 3-d/d-dim range 50, 3-d coefficients
   clamped to ±9.9 inside the builders' clip box). *)

type kind = Uniform | Clusters | Diagonal

let kind_name = function
  | Uniform -> "uniform"
  | Clusters -> "clusters"
  | Diagonal -> "diagonal"

let range2 = 100.
let range3 = 50.
let coeff_clamp = 9.9

(* A dataset of [n] points in dimension [dim], drawn from [kind], in
   the point representation [m] prefers. *)
let dataset rng ~kind ~dim ~n (module M : Index.S) =
  match M.preferred ~dim with
  | `Pts2 ->
      if dim <> 2 then
        invalid_arg "Workloads.dataset: 2-d representation at dim <> 2";
      Index.Pts2
        (match kind with
        | Uniform -> Workload.uniform2 rng ~n ~range:range2
        | Clusters ->
            Workload.clusters2 rng ~n ~clusters:10 ~sigma:3. ~range:range2
        | Diagonal -> Workload.diagonal2 rng ~n ~jitter:0.01 ~range:range2)
  | `Pts3 ->
      if dim <> 3 then
        invalid_arg "Workloads.dataset: 3-d representation at dim <> 3";
      Index.Pts3
        (match kind with
        | Uniform -> Workload.uniform3 rng ~n ~range:range3
        | Clusters ->
            Workload.clusters3 rng ~n ~clusters:10 ~sigma:3. ~range:range3
        | Diagonal -> Workload.diagonal3 rng ~n ~jitter:0.01 ~range:range3)
  | `PtsD -> Index.PtsD (Workload.uniform_d rng ~n ~dim ~range:range3)

let clamp v = Float.max (-.coeff_clamp) (Float.min coeff_clamp v)

(* One halfspace query with ~[fraction] selectivity over [ds], in the
   unified {a0; a} form.  Consumes the rng exactly like the legacy
   per-variant generators did. *)
let query rng ds ~fraction : Index.query =
  match ds with
  | Index.Pts2 pts ->
      let slope, icept = Workload.halfplane_with_selectivity rng pts ~fraction in
      { a0 = icept; a = [| slope |] }
  | Index.Pts3 pts ->
      let a, b, c = Workload.halfspace3_with_selectivity rng pts ~fraction in
      { a0 = c; a = [| clamp a; clamp b |] }
  | Index.PtsD pts ->
      let a0, a = Workload.halfspace_d_with_selectivity rng pts ~fraction in
      { a0; a }

let queries rng ds ~fraction ~count =
  (* Explicit left-to-right loop: rng consumption order is part of the
     reproducibility contract (List.init's order is unspecified). *)
  let rec go i acc =
    if i = count then List.rev acc
    else go (i + 1) (query rng ds ~fraction :: acc)
  in
  go 0 []
