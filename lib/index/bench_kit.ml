(* The registry-generic measurement harness behind the Table-1 bench,
   the CLI `run` command and the golden tests.

   Protocol (kept bit-identical to the legacy per-structure benches so
   historical numbers stay comparable): one rng seeded seed_base + n
   generates the dataset and then all query parameters eagerly; builds
   use the structure's defaults (3-d builders clipped to ±10); each
   query is charged in its own Cost_ctx and its read count recorded —
   the scoped equivalent of the old reset-stats-per-query loop. *)

(* Latency accounting for high-volume wall-clock measurements (serve,
   loadgen): a fixed-bucket log histogram.  Small exact I/O-count
   samples (q_reads below) stay on Query_engine.percentile — their
   nearest-rank values are pinned by the golden tests. *)
module Histogram = Histogram

type result = {
  name : string;
  kind : Workloads.kind;
  dim : int;
  n_points : int;
  build_ios : int;  (** reads + writes charged during build *)
  space : int;  (** blocks occupied *)
  q_count : int;
  q_reads : int list;  (** per-query charged reads, in execution order *)
  q_reads_total : int;
  q_results_total : int;  (** points reported, summed over queries *)
  estimate : float;  (** Table-1 cost hint for the last query *)
  counters : (string * int) list;
}

let q_reads_p50 r = Query_engine.percentile 0.5 r.q_reads
let q_reads_p95 r = Query_engine.percentile 0.95 r.q_reads

let measure ?(kind = Workloads.Uniform) ?(queries = 25) ?(fraction = 0.02)
    ?(params = Index.default_params) ?(seed_base = 100) (module M : Index.S)
    ~dim ~n =
  let rng = Workload.rng (seed_base + n) in
  let ds = Workloads.dataset rng ~kind ~dim ~n (module M) in
  let qs = Workloads.queries rng ds ~fraction ~count:queries in
  let stats = Emio.Io_stats.create () in
  let bctx = Emio.Cost_ctx.create () in
  let inst =
    Emio.Cost_ctx.with_ctx bctx (fun () ->
        Index.build (module M : Index.S) ~params ~stats ds)
  in
  let costs = Query_engine.run_batch inst qs in
  let q_reads = List.map (fun c -> c.Query_engine.reads) costs in
  let estimate =
    match qs with [] -> 0. | q :: _ -> Index.estimate inst q
  in
  {
    name = M.name;
    kind;
    dim;
    n_points = n;
    build_ios = Emio.Cost_ctx.total bctx;
    space = Index.space_blocks inst;
    q_count = queries;
    q_reads;
    q_reads_total = List.fold_left ( + ) 0 q_reads;
    q_results_total =
      List.fold_left (fun acc c -> acc + c.Query_engine.result) 0 costs;
    estimate;
    counters = Index.counters inst;
  }

(* {2 Reporting} *)

let pp_row ppf r =
  Format.fprintf ppf
    "%-14s d=%d N=%-6d build=%-6d space=%-6d q_reads(total/p50/p95)=%d/%d/%d \
     results=%d"
    r.name r.dim r.n_points r.build_ios r.space r.q_reads_total
    (q_reads_p50 r) (q_reads_p95 r) r.q_results_total

(* Hand-rolled JSON (the repo deliberately has no JSON dependency). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_result r =
  let counters =
    String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v)
         r.counters)
  in
  String.concat ""
    [
      "{";
      Printf.sprintf "\"structure\": \"%s\", " (json_escape r.name);
      Printf.sprintf "\"workload\": \"%s\", "
        (json_escape (Workloads.kind_name r.kind));
      Printf.sprintf "\"dim\": %d, " r.dim;
      Printf.sprintf "\"n_points\": %d, " r.n_points;
      Printf.sprintf "\"build_ios\": %d, " r.build_ios;
      Printf.sprintf "\"space_blocks\": %d, " r.space;
      Printf.sprintf "\"queries\": %d, " r.q_count;
      Printf.sprintf "\"query_reads_total\": %d, " r.q_reads_total;
      Printf.sprintf "\"query_reads_p50\": %d, " (q_reads_p50 r);
      Printf.sprintf "\"query_reads_p95\": %d, " (q_reads_p95 r);
      Printf.sprintf "\"results_total\": %d, " r.q_results_total;
      Printf.sprintf "\"estimate\": %.3f, " r.estimate;
      Printf.sprintf "\"counters\": {%s}" counters;
      "}";
    ]

let json_of_results rs =
  "[\n  " ^ String.concat ",\n  " (List.map json_of_result rs) ^ "\n]\n"

let write_json ~path rs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json_of_results rs))
