(* Generic query execution with per-query cost records.  Each query
   runs inside its own Emio.Cost_ctx, so the I/O charge is scoped to
   the query without resetting the structure's ambient Io_stats — the
   reset-free replacement for the benches' old
   "reset stats; query; read stats" dance. *)

type cost = {
  reads : int;
  writes : int;
  hits : int;
  result : int;  (** points reported *)
  events : Emio.Cost_ctx.event list;  (** trace, oldest first; [] untraced *)
}

let run_query ?(trace = false) inst q =
  let events = ref [] in
  let ctx =
    if trace then
      Emio.Cost_ctx.create ~trace:(fun ev -> events := ev :: !events) ()
    else Emio.Cost_ctx.create ()
  in
  let result =
    Emio.Cost_ctx.with_ctx ctx (fun () -> Index.query_count inst q)
  in
  {
    reads = Emio.Cost_ctx.reads ctx;
    writes = Emio.Cost_ctx.writes ctx;
    hits = Emio.Cost_ctx.hits ctx;
    result;
    events = List.rev !events;
  }

let run_batch ?trace inst qs = List.map (run_query ?trace inst) qs

(* Nearest-rank percentile of an int sample, p in [0, 1]. *)
let percentile p xs =
  match xs with
  | [] -> invalid_arg "Query_engine.percentile: empty sample"
  | _ ->
      let sorted = List.sort compare xs in
      let n = List.length sorted in
      let rank =
        let r = int_of_float (ceil (p *. float_of_int n)) in
        Stdlib.min n (Stdlib.max 1 r)
      in
      List.nth sorted (rank - 1)
