(* Generic query execution with per-query cost records.  Each query
   runs inside an Emio.Cost_ctx, so the I/O charge is scoped to the
   query without resetting the structure's ambient Io_stats — the
   reset-free replacement for the benches' old
   "reset stats; query; read stats" dance. *)

type cost = {
  reads : int;
  writes : int;
  hits : int;
  result : int;  (** points reported *)
  events : Emio.Cost_ctx.event list;  (** trace, oldest first; [] untraced *)
}

let run_query ?(trace = false) inst q =
  let events = ref [] in
  let ctx =
    if trace then
      Emio.Cost_ctx.create ~trace:(fun ev -> events := ev :: !events) ()
    else Emio.Cost_ctx.create ()
  in
  let result =
    Emio.Cost_ctx.with_ctx ctx (fun () -> Index.query_count inst q)
  in
  {
    reads = Emio.Cost_ctx.reads ctx;
    writes = Emio.Cost_ctx.writes ctx;
    hits = Emio.Cost_ctx.hits ctx;
    result;
    events = List.rev !events;
  }

(* {2 The batch fast path}

   Costs are written into preallocated unboxed int arrays (one slot
   per query) instead of per-query [cost] allocations, and each domain
   charges one long-lived scratch context — resolved from domain-local
   storage once per claimed chunk, installed once per chunk, and
   [reset] between queries, which reports exactly what a fresh context
   would.  The scratch keys below are per-domain ({!Emio.Tls}:
   [Domain.DLS] on OCaml 5, a plain ref on 4.14), so the steady-state
   engine overhead per query is four int stores and a context reset —
   no allocation, no per-query DLS traffic, no context-stack churn. *)

type scratch = { ctx : Emio.Cost_ctx.t; reporter : Emio.Reporter.t }

let scratch_key : scratch Emio.Tls.key =
  Emio.Tls.new_key (fun () ->
      { ctx = Emio.Cost_ctx.create (); reporter = Emio.Reporter.create () })

let domain_reporter () = (Emio.Tls.get scratch_key).reporter

let run_cost_chunk inst qs ~reads ~writes ~hits ~results lo hi =
  let ctx = (Emio.Tls.get scratch_key).ctx in
  Emio.Cost_ctx.with_ctx ctx (fun () ->
      for i = lo to hi - 1 do
        Emio.Cost_ctx.reset ctx;
        results.(i) <- Index.query_count inst qs.(i);
        reads.(i) <- Emio.Cost_ctx.reads ctx;
        writes.(i) <- Emio.Cost_ctx.writes ctx;
        hits.(i) <- Emio.Cost_ctx.hits ctx
      done)

(* Batch execution.  [domains > 1] fans the queries out over the
   persistent OCaml 5 domain pool (Par.run; a no-op request on 4.14
   builds, where Par.available is false) in chunks of
   ~n/(8*domains) queries, so a microsecond-scale query is not
   dominated by claim traffic.  Safe because queries are read-only,
   per-query accounting lives in domain-local scratch contexts, and
   block caches are per-domain (Emio.Store) — the ambient Io_stats
   totals may interleave across domains but per-query costs stay
   exact.  Tracing callers take the boxed per-query path: event lists
   are inherently per-query allocations. *)
let run_batch_array ?(trace = false) ?(domains = 1) inst qs =
  if trace then
    if domains <= 1 || not Par.available then
      Array.map (run_query ~trace inst) qs
    else Par.map ~domains (run_query ~trace inst) qs
  else begin
    let n = Array.length qs in
    let reads = Array.make n 0 in
    let writes = Array.make n 0 in
    let hits = Array.make n 0 in
    let results = Array.make n 0 in
    let body = run_cost_chunk inst qs ~reads ~writes ~hits ~results in
    if domains <= 1 || not Par.available then body 0 n
    else
      Emio.Store.with_cache_split ~domains (fun () ->
          Par.run ~domains ~n body);
    Array.init n (fun i ->
        {
          reads = reads.(i);
          writes = writes.(i);
          hits = hits.(i);
          result = results.(i);
          events = [];
        })
  end

let run_batch ?trace ?domains inst qs =
  Array.to_list (run_batch_array ?trace ?domains inst (Array.of_list qs))

(* {2 Plane-sorted batched execution}

   For the expensive 3-D structures (Index.batch_plane_sorted), a
   batch often repeats constraints — hot planes in serve traffic,
   replayed workloads, scatter benchmarks.  Sorting the batch by query
   plane (the dual point (a0, a)) groups identical constraints
   adjacently; each group then runs ONE shared traversal and the cost
   record and result count are demuxed to every member.  This is the
   cross-query amortization of Afshani–Nekrich–Staals (convexity helps
   iterated search): queries about the same plane share all their
   structure.

   Determinism: queries are read-only, the representative runs the
   same reset-install-query sequence as the per-query engine, and
   group members receive its exact cost record — so on the default
   cache-free configuration the output is bit-identical to
   [run_batch_array] on the same batch (test_batch_sorted pins this
   across kinds, workloads, and domain counts).  With block caches
   enabled, executing one traversal per distinct plane is the whole
   point and per-query hit counts legitimately differ from the
   unsorted order.

   Structures without the capability — and tracing callers, whose
   event lists are inherently per-query — fall back to
   [run_batch_array] transparently. *)

let compare_queries (a : Index.query) (b : Index.query) =
  let c = Float.compare a.Index.a0 b.Index.a0 in
  if c <> 0 then c
  else begin
    let la = Array.length a.Index.a and lb = Array.length b.Index.a in
    let c = Int.compare la lb in
    if c <> 0 then c
    else begin
      let rec go i =
        if i >= la then 0
        else begin
          let c = Float.compare a.Index.a.(i) b.Index.a.(i) in
          if c <> 0 then c else go (i + 1)
        end
      in
      go 0
    end
  end

let run_batch_sorted ?(trace = false) ?(domains = 1) inst qs =
  if trace || not (Index.batch_plane_sorted inst) then
    run_batch_array ~trace ~domains inst qs
  else begin
    let n = Array.length qs in
    let order = Array.init n (fun i -> i) in
    (* sort query indices by plane, index-stable, so grouping (and
       hence which query represents a group) is deterministic *)
    Array.sort
      (fun i j ->
        let c = compare_queries qs.(i) qs.(j) in
        if c <> 0 then c else Int.compare i j)
      order;
    (* group starts: maximal runs of exactly-equal planes *)
    let starts = Array.make (n + 1) 0 in
    let ngroups = ref 0 in
    for oi = 0 to n - 1 do
      if oi = 0 || compare_queries qs.(order.(oi - 1)) qs.(order.(oi)) <> 0
      then begin
        starts.(!ngroups) <- oi;
        incr ngroups
      end
    done;
    let ngroups = !ngroups in
    starts.(ngroups) <- n;
    let reads = Array.make n 0 in
    let writes = Array.make n 0 in
    let hits = Array.make n 0 in
    let results = Array.make n 0 in
    let reports_ids = Index.reports_ids inst in
    let run_groups glo ghi =
      let sc = Emio.Tls.get scratch_key in
      Emio.Cost_ctx.with_ctx sc.ctx (fun () ->
          for g = glo to ghi - 1 do
            let s = starts.(g) and e = starts.(g + 1) in
            let q = qs.(order.(s)) in
            Emio.Cost_ctx.reset sc.ctx;
            let result =
              if reports_ids then begin
                (* id-reporting structures run the query_into path —
                   the shared traversal produces the ids every group
                   member would report, demuxed here as count-only
                   through mark/truncate (query_into charges are
                   pinned identical to query_count by the run_one
                   equivalence suite) *)
                let m = Emio.Reporter.mark sc.reporter in
                let c = Index.query_into inst q sc.reporter in
                Emio.Reporter.truncate sc.reporter m;
                c
              end
              else Index.query_count inst q
            in
            let rd = Emio.Cost_ctx.reads sc.ctx in
            let wr = Emio.Cost_ctx.writes sc.ctx in
            let ht = Emio.Cost_ctx.hits sc.ctx in
            for oi = s to e - 1 do
              let i = order.(oi) in
              results.(i) <- result;
              reads.(i) <- rd;
              writes.(i) <- wr;
              hits.(i) <- ht
            done
          done)
    in
    if domains <= 1 || not Par.available then run_groups 0 ngroups
    else
      Emio.Store.with_cache_split ~domains (fun () ->
          Par.run ~domains ~n:ngroups run_groups);
    Array.init n (fun i ->
        {
          reads = reads.(i);
          writes = writes.(i);
          hits = hits.(i);
          result = results.(i);
          events = [];
        })
  end

(* Single-query entry point on the batch engine's scratch state, for
   callers (the serve dispatcher) that handle requests one at a time
   and must not pay the batch fan-out setup per request.  The charging
   protocol is the same reset-install-run sequence as one iteration of
   [run_cost_chunk], so the cost record is bit-identical to what the
   query would report inside a batch (test_query_engine pins this).

   With [?reporter] the query runs on the {!Index.query_into} path:
   ids (for id-reporting structures) are appended to the caller's
   reporter — typically {!domain_reporter} — and [result] is still the
   count.  Not thread-safe against concurrent engine calls on the same
   domain: the scratch context is domain-local, exactly like the batch
   path. *)
let run_one ?reporter inst q =
  let ctx = (Emio.Tls.get scratch_key).ctx in
  Emio.Cost_ctx.reset ctx;
  let result =
    Emio.Cost_ctx.with_ctx ctx (fun () ->
        match reporter with
        | None -> Index.query_count inst q
        | Some r -> Index.query_into inst q r)
  in
  {
    reads = Emio.Cost_ctx.reads ctx;
    writes = Emio.Cost_ctx.writes ctx;
    hits = Emio.Cost_ctx.hits ctx;
    result;
    events = [];
  }

(* Nearest-rank percentile of an int sample, p in [0, 1]: sort once
   into an array and index the rank directly (the old implementation
   walked a sorted list with List.nth per call). *)
let percentile p xs =
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Query_engine.percentile: p must be in [0, 1]";
  match xs with
  | [] -> invalid_arg "Query_engine.percentile: empty sample"
  | _ ->
      let sorted = Array.of_list xs in
      Array.sort Int.compare sorted;
      let n = Array.length sorted in
      let rank =
        let r = int_of_float (ceil (p *. float_of_int n)) in
        Stdlib.min n (Stdlib.max 1 r)
      in
      sorted.(rank - 1)
