(* Generic query execution with per-query cost records.  Each query
   runs inside its own Emio.Cost_ctx, so the I/O charge is scoped to
   the query without resetting the structure's ambient Io_stats — the
   reset-free replacement for the benches' old
   "reset stats; query; read stats" dance. *)

type cost = {
  reads : int;
  writes : int;
  hits : int;
  result : int;  (** points reported *)
  events : Emio.Cost_ctx.event list;  (** trace, oldest first; [] untraced *)
}

let run_query ?(trace = false) inst q =
  let events = ref [] in
  let ctx =
    if trace then
      Emio.Cost_ctx.create ~trace:(fun ev -> events := ev :: !events) ()
    else Emio.Cost_ctx.create ()
  in
  let result =
    Emio.Cost_ctx.with_ctx ctx (fun () -> Index.query_count inst q)
  in
  {
    reads = Emio.Cost_ctx.reads ctx;
    writes = Emio.Cost_ctx.writes ctx;
    hits = Emio.Cost_ctx.hits ctx;
    result;
    events = List.rev !events;
  }

(* Batch execution.  [domains > 1] fans the queries out over OCaml 5
   domains (Par.map; a no-op request on 4.14 builds, where
   Par.available is false).  Safe because queries are read-only, the
   per-query Cost_ctx lives in domain-local storage, and the default
   cold-cache stores never mutate shared LRU state; the ambient
   Io_stats totals may interleave across domains but per-query costs
   stay exact. *)
let run_batch_array ?trace ?(domains = 1) inst qs =
  if domains <= 1 || not Par.available then
    Array.map (run_query ?trace inst) qs
  else Par.map ~domains (run_query ?trace inst) qs

let run_batch ?trace ?domains inst qs =
  Array.to_list (run_batch_array ?trace ?domains inst (Array.of_list qs))

(* Nearest-rank percentile of an int sample, p in [0, 1]: sort once
   into an array and index the rank directly (the old implementation
   walked a sorted list with List.nth per call). *)
let percentile p xs =
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Query_engine.percentile: p must be in [0, 1]";
  match xs with
  | [] -> invalid_arg "Query_engine.percentile: empty sample"
  | _ ->
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let rank =
        let r = int_of_float (ceil (p *. float_of_int n)) in
        Stdlib.min n (Stdlib.max 1 r)
      in
      sorted.(rank - 1)
