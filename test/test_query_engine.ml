(* Satellites of the zero-allocation-reporting PR: Reporter semantics,
   the decoded-block cache on external backends, the codec requirements
   of byte-level stores, nearest-rank percentile edge cases, and
   sequential / parallel batch equivalence across every registered
   structure. *)

module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads
module Query_engine = Lcsearch_index.Query_engine
module Par = Lcsearch_index.Par

let check = Alcotest.(check int)

(* ---- Reporter: the reusable reporting sink ---- *)

let test_reporter_basics () =
  let r = Emio.Reporter.create ~capacity:2 () in
  check "fresh is empty" 0 (Emio.Reporter.length r);
  (* push past the initial capacity to exercise growth *)
  for i = 0 to 99 do
    Emio.Reporter.add r i
  done;
  check "length" 100 (Emio.Reporter.length r);
  check "get 0" 0 (Emio.Reporter.get r 0);
  check "get 99" 99 (Emio.Reporter.get r 99);
  Alcotest.(check (list int))
    "to_list insertion order"
    (List.init 100 Fun.id)
    (Emio.Reporter.to_list r);
  check "fold sums" (99 * 100 / 2) (Emio.Reporter.fold ( + ) 0 r);
  Emio.Reporter.clear r;
  check "clear empties" 0 (Emio.Reporter.length r);
  (match Emio.Reporter.get r 0 with
  | _ -> Alcotest.fail "get past length must raise"
  | exception Invalid_argument _ -> ());
  Emio.Reporter.add r 7;
  Alcotest.(check (array int)) "reusable after clear" [| 7 |]
    (Emio.Reporter.to_array r)

(* mark / truncate / rewrite_from are the doubling-protocol and
   id-translation primitives. *)
let test_reporter_mark_truncate_rewrite () =
  let r = Emio.Reporter.create () in
  Emio.Reporter.add r 10;
  let m = Emio.Reporter.mark r in
  Emio.Reporter.add r 20;
  Emio.Reporter.add r 30;
  Emio.Reporter.truncate r m;
  Alcotest.(check (list int)) "truncate rolls back to mark" [ 10 ]
    (Emio.Reporter.to_list r);
  (* a failed doubling round retries: report again after rollback *)
  Emio.Reporter.add r 21;
  Emio.Reporter.add r 31;
  Emio.Reporter.rewrite_from r m (fun id -> id * 100);
  Alcotest.(check (list int))
    "rewrite_from maps only ids since the mark" [ 10; 2100; 3100 ]
    (Emio.Reporter.to_list r);
  (match Emio.Reporter.truncate r (Emio.Reporter.length r + 1) with
  | () -> Alcotest.fail "truncate past length must raise"
  | exception Invalid_argument _ -> ())

(* ---- decoded-block cache over an external backend ---- *)

(* A byte backend that stores payloads in memory and counts the
   physical reads it serves, so tests can observe exactly when the
   Store's decoded cache short-circuits the backend. *)
module Counting_backend = struct
  type t = {
    blocks : (int, bytes) Hashtbl.t;
    mutable next : int;
    mutable phys_reads : int;
  }

  let name _ = "test:counting"

  let alloc t payload =
    let id = t.next in
    t.next <- id + 1;
    Hashtbl.replace t.blocks id (Bytes.copy payload);
    id

  let read t id =
    t.phys_reads <- t.phys_reads + 1;
    match Hashtbl.find_opt t.blocks id with
    | Some b -> Bytes.copy b
    | None -> failwith "Counting_backend: unknown block"

  let write t id payload = Hashtbl.replace t.blocks id (Bytes.copy payload)
  let blocks_used t = Hashtbl.length t.blocks
  let drop_cache _ = ()
  let flush _ = ()
  let close _ = ()
end

let counting_store ~cache_blocks =
  let b =
    { Counting_backend.blocks = Hashtbl.create 16; next = 0; phys_reads = 0 }
  in
  let store =
    Emio.Store.create
      ~stats:(Emio.Io_stats.create ())
      ~block_size:4 ~cache_blocks ~codec:Emio.Codec.int
      ~backend:(Emio.Store_intf.Backend ((module Counting_backend), b))
      ()
  in
  (store, b)

let test_decoded_cache_hits () =
  let store, b = counting_store ~cache_blocks:2 in
  let id0 = Emio.Store.alloc store [| 1; 2 |] in
  let id1 = Emio.Store.alloc store [| 3; 4 |] in
  Alcotest.(check (array int)) "first read decodes" [| 1; 2 |]
    (Emio.Store.read store id0);
  let after_first = b.Counting_backend.phys_reads in
  Alcotest.(check (array int)) "second read" [| 1; 2 |]
    (Emio.Store.read store id0);
  check "re-read served from decoded cache" after_first
    b.Counting_backend.phys_reads;
  (* reading a second block fits alongside (capacity 2) *)
  ignore (Emio.Store.read store id1);
  let before = b.Counting_backend.phys_reads in
  ignore (Emio.Store.read store id0);
  ignore (Emio.Store.read store id1);
  check "both resident, no backend traffic" before
    b.Counting_backend.phys_reads

let test_decoded_cache_eviction () =
  let store, b = counting_store ~cache_blocks:1 in
  let id0 = Emio.Store.alloc store [| 1 |] in
  let id1 = Emio.Store.alloc store [| 2 |] in
  ignore (Emio.Store.read store id0);
  ignore (Emio.Store.read store id1);
  (* capacity 1: id1 evicted id0 *)
  let before = b.Counting_backend.phys_reads in
  Alcotest.(check (array int)) "evicted block decodes again" [| 1 |]
    (Emio.Store.read store id0);
  check "eviction forces a backend read" (before + 1)
    b.Counting_backend.phys_reads

let test_decoded_cache_write_invalidates () =
  let store, b = counting_store ~cache_blocks:2 in
  let id = Emio.Store.alloc store [| 1; 2 |] in
  ignore (Emio.Store.read store id);
  Emio.Store.write store id [| 9; 8 |];
  let before = b.Counting_backend.phys_reads in
  Alcotest.(check (array int)) "read after write sees new payload" [| 9; 8 |]
    (Emio.Store.read store id);
  check "write invalidated the decoded copy" (before + 1)
    b.Counting_backend.phys_reads;
  (* and the caller's array was not aliased into the cache *)
  let a = [| 5; 6 |] in
  Emio.Store.write store id a;
  a.(0) <- 42;
  Alcotest.(check (array int)) "no aliasing of the written array" [| 5; 6 |]
    (Emio.Store.read store id)

let test_decoded_cache_drop () =
  let store, b = counting_store ~cache_blocks:4 in
  let id = Emio.Store.alloc store [| 1 |] in
  ignore (Emio.Store.read store id);
  ignore (Emio.Store.read store id);
  Emio.Store.drop_cache store;
  let before = b.Counting_backend.phys_reads in
  ignore (Emio.Store.read store id);
  check "drop_cache forgets decoded payloads" (before + 1)
    b.Counting_backend.phys_reads

let test_decoded_cache_disabled () =
  (* cache_blocks = 0 (the golden-table configuration): every read
     reaches the backend. *)
  let store, b = counting_store ~cache_blocks:0 in
  let id = Emio.Store.alloc store [| 1 |] in
  ignore (Emio.Store.read store id);
  ignore (Emio.Store.read store id);
  ignore (Emio.Store.read store id);
  check "cold cache: one backend read per Store.read" 3
    b.Counting_backend.phys_reads

(* ---- codec requirements: anything that touches bytes needs the
   element codec; the pure simulator path never does ---- *)

let test_backend_requires_codec () =
  let b =
    { Counting_backend.blocks = Hashtbl.create 16; next = 0; phys_reads = 0 }
  in
  match
    Emio.Store.create
      ~stats:(Emio.Io_stats.create ())
      ~block_size:4
      ~backend:(Emio.Store_intf.Backend ((module Counting_backend), b))
      ()
  with
  | (_ : int Emio.Store.t) ->
      Alcotest.fail "external backend without a codec must be rejected"
  | exception Invalid_argument _ -> ()

let test_export_requires_codec () =
  let store = Emio.Store.create ~stats:(Emio.Io_stats.create ())
      ~block_size:4 ()
  in
  ignore (Emio.Store.alloc store [| 1; 2 |]);
  (match Emio.Store.export_bytes store with
  | _ -> Alcotest.fail "export_bytes without a codec must raise"
  | exception Invalid_argument _ -> ());
  (* to_blocks is the codec-free skeleton-embedding path and still works *)
  check "to_blocks still available" 1
    (Array.length (Emio.Store.to_blocks store))

let test_to_blocks_external_rejected () =
  let store, _ = counting_store ~cache_blocks:0 in
  ignore (Emio.Store.alloc store [| 1 |]);
  match Emio.Store.to_blocks store with
  | _ -> Alcotest.fail "to_blocks on an external store must raise"
  | exception Invalid_argument _ -> ()

let test_of_blocks_roundtrip () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:4 () in
  let id0 = Emio.Store.alloc store [| 1; 2; 3 |] in
  let id1 = Emio.Store.alloc store [| 4 |] in
  let revived =
    Emio.Store.of_blocks ~stats ~block_size:4 (Emio.Store.to_blocks store)
  in
  Alcotest.(check (array int)) "block 0 revived" [| 1; 2; 3 |]
    (Emio.Store.read revived id0);
  Alcotest.(check (array int)) "block 1 revived" [| 4 |]
    (Emio.Store.read revived id1);
  check "blocks_used preserved" 2 (Emio.Store.blocks_used revived)

(* ---- percentile: nearest-rank edge cases ---- *)

let test_percentile () =
  check "singleton p=0" 7 (Query_engine.percentile 0. [ 7 ]);
  check "singleton p=1" 7 (Query_engine.percentile 1. [ 7 ]);
  check "singleton p=0.5" 7 (Query_engine.percentile 0.5 [ 7 ]);
  let xs = [ 5; 1; 4; 2; 3 ] in
  check "p=0 is the minimum" 1 (Query_engine.percentile 0. xs);
  check "p=1 is the maximum" 5 (Query_engine.percentile 1. xs);
  check "median of five" 3 (Query_engine.percentile 0.5 xs);
  (* nearest rank: ceil(0.9 * 5) = 5th of the sorted sample *)
  check "p=0.9 of five" 5 (Query_engine.percentile 0.9 xs);
  check "p=0.2 of five" 1 (Query_engine.percentile 0.2 xs);
  (match Query_engine.percentile 0.5 [] with
  | _ -> Alcotest.fail "empty sample must raise"
  | exception Invalid_argument _ -> ());
  (match Query_engine.percentile 1.5 [ 1 ] with
  | _ -> Alcotest.fail "p > 1 must raise"
  | exception Invalid_argument _ -> ());
  match Query_engine.percentile (-0.1) [ 1 ] with
  | _ -> Alcotest.fail "p < 0 must raise"
  | exception Invalid_argument _ -> ()

(* ties: nearest rank picks the value at the rank, duplicates and
   all — no interpolation, no dedup *)
let test_percentile_ties () =
  let xs = [ 3; 1; 3; 2; 3; 2 ] in
  (* sorted: 1 2 2 3 3 3 *)
  check "p=0 is the minimum with ties" 1 (Query_engine.percentile 0. xs);
  check "p=1 is the maximum with ties" 3 (Query_engine.percentile 1. xs);
  check "p=0.5 lands inside a tie run" 2 (Query_engine.percentile 0.5 xs);
  check "p=0.51 crosses into the next run" 3
    (Query_engine.percentile 0.51 xs);
  check "p=2/3 boundary rank" 3 (Query_engine.percentile (2. /. 3.) xs);
  let flat = [ 5; 5; 5; 5 ] in
  List.iter
    (fun p ->
      check
        (Printf.sprintf "all-equal sample at p=%g" p)
        5
        (Query_engine.percentile p flat))
    [ 0.; 0.25; 0.5; 0.75; 1. ]

(* ---- the persistent domain pool ---- *)

let count_covered ~domains ?chunk n =
  let hits = Array.make (max 1 n) 0 in
  Par.run ~domains ~n ?chunk (fun lo hi ->
      for i = lo to hi - 1 do
        (* each index must be claimed by exactly one chunk, so plain
           non-atomic increments are safe *)
        hits.(i) <- hits.(i) + 1
      done);
  Array.for_all (fun c -> c = 1) (Array.sub hits 0 n)

let test_pool_covers_range () =
  List.iter
    (fun (domains, n, chunk) ->
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d n=%d covered exactly once" domains n)
        true
        (count_covered ~domains ?chunk n))
    [ (1, 100, None); (2, 100, None); (4, 7, None); (4, 1000, Some 1);
      (8, 64, Some 64); (3, 0, None) ]

let test_pool_reuse () =
  if Par.available then begin
    Par.shutdown ();
    check "shutdown empties the pool" 0 (Par.pool_size ());
    Alcotest.(check bool) "first batch after shutdown" true
      (count_covered ~domains:4 64);
    let size = Par.pool_size () in
    check "run ~domains:4 spawns three helpers" 3 size;
    Alcotest.(check bool) "second batch" true (count_covered ~domains:4 64);
    check "consecutive batch reuses the pool" size (Par.pool_size ());
    Alcotest.(check bool) "smaller fan-out reuses too" true
      (count_covered ~domains:2 64);
    check "no shrink on smaller fan-out" size (Par.pool_size ())
  end

exception Poisoned of int

let test_pool_exception () =
  (match
     Par.run ~domains:4 ~n:100 ~chunk:1 (fun lo _ ->
         if lo = 37 then raise (Poisoned lo))
   with
  | () -> Alcotest.fail "poisoned chunk must propagate its exception"
  | exception Poisoned 37 -> ());
  (* the pool survives a poisoned job *)
  Alcotest.(check bool) "pool usable after an exception" true
    (count_covered ~domains:4 64)

let test_batch_poisoned_query () =
  let module M = (val Registry.find_exn "h2") in
  let rng = Workload.rng 4242 in
  let ds =
    Workloads.dataset rng ~kind:Workloads.Uniform ~dim:2 ~n:256
      (module M : Index.S)
  in
  let qs =
    Array.of_list (Workloads.queries rng ds ~fraction:0.05 ~count:8)
  in
  let stats = Emio.Io_stats.create () in
  let t = Index.build (module M) ~params:Index.default_params ~stats ds in
  (* a d=3 query against a d=2 structure: the adapter rejects it *)
  qs.(5) <- { Index.a0 = 0.; a = [| 1.; 2. |] };
  match Query_engine.run_batch_array ~domains:4 t qs with
  | _ -> Alcotest.fail "poisoned query must raise out of the batch"
  | exception Invalid_argument _ -> ()

(* ---- batch execution: parallel runs must report the exact
   sequential per-query costs (reads, writes, hits, result) ---- *)

let batch_equivalence_case (module M : Index.S) () =
  let dim = List.hd M.dims in
  let rng = Workload.rng (300 + Hashtbl.hash M.name mod 89) in
  let ds = Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n:512
      (module M : Index.S)
  in
  let qs = Array.of_list
      (Workloads.queries rng ds ~fraction:0.05 ~count:8)
  in
  let stats = Emio.Io_stats.create () in
  let t = Index.build (module M) ~params:Index.default_params ~stats ds in
  let seq = Query_engine.run_batch_array t qs in
  check "one cost record per query" (Array.length qs) (Array.length seq);
  if not Par.available then
    (* 4.14 build: ~domains is a documented no-op; just make sure the
       request is accepted. *)
    Alcotest.(check bool)
      "domains request accepted on a sequential build" true
      (Query_engine.run_batch_array ~domains:4 t qs = seq)
  else begin
    let par = Query_engine.run_batch_array ~domains:4 t qs in
    Array.iteri
      (fun i (c : Query_engine.cost) ->
        let p = par.(i) in
        check (Printf.sprintf "%s query %d: reads" M.name i) c.reads p.reads;
        check (Printf.sprintf "%s query %d: writes" M.name i) c.writes
          p.writes;
        check (Printf.sprintf "%s query %d: hits" M.name i) c.hits p.hits;
        check (Printf.sprintf "%s query %d: result" M.name i) c.result
          p.result)
      seq
  end

(* Fan-out sweep on the three structures the perf work targets: every
   domain count must reproduce the sequential costs bit-for-bit. *)
let multi_domain_case name () =
  let module M = (val Registry.find_exn name : Index.S) in
  let dim = List.hd M.dims in
  let rng = Workload.rng 7700 in
  let ds =
    Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n:1024
      (module M : Index.S)
  in
  let qs =
    Array.of_list (Workloads.queries rng ds ~fraction:0.03 ~count:32)
  in
  let stats = Emio.Io_stats.create () in
  let t = Index.build (module M) ~params:Index.default_params ~stats ds in
  let seq = Query_engine.run_batch_array t qs in
  List.iter
    (fun domains ->
      let par = Query_engine.run_batch_array ~domains t qs in
      Array.iteri
        (fun i (c : Query_engine.cost) ->
          let p = par.(i) in
          let label field =
            Printf.sprintf "%s @%d domains, query %d: %s" name domains i field
          in
          check (label "reads") c.reads p.reads;
          check (label "writes") c.writes p.writes;
          check (label "hits") c.hits p.hits;
          check (label "result") c.result p.result)
        seq)
    [ 1; 2; 4; 8 ]

let multi_domain_tests =
  List.map
    (fun name ->
      Alcotest.test_case
        (Printf.sprintf "%s @ domains 1/2/4/8" name)
        `Quick (multi_domain_case name))
    [ "h2"; "shallow"; "ptree" ]

(* ---- run_one: the serve dispatcher's single-query path must report
   costs bit-identical to the same query inside a batch ---- *)

let run_one_equivalence_case (module M : Index.S) () =
  let dim = List.hd M.dims in
  let rng = Workload.rng (500 + Hashtbl.hash M.name mod 89) in
  let ds =
    Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n:512
      (module M : Index.S)
  in
  let qs = Array.of_list (Workloads.queries rng ds ~fraction:0.05 ~count:8) in
  let stats = Emio.Io_stats.create () in
  let t = Index.build (module M) ~params:Index.default_params ~stats ds in
  let batch = Query_engine.run_batch_array t qs in
  Array.iteri
    (fun i q ->
      let one = Query_engine.run_one t q in
      let b = batch.(i) in
      let label field = Printf.sprintf "%s query %d: %s" M.name i field in
      check (label "reads") b.Query_engine.reads one.Query_engine.reads;
      check (label "writes") b.Query_engine.writes one.Query_engine.writes;
      check (label "hits") b.Query_engine.hits one.Query_engine.hits;
      check (label "result") b.Query_engine.result one.Query_engine.result)
    qs;
  (* interleaving with batch runs must not perturb run_one: the scratch
     context is reset per call *)
  ignore (Query_engine.run_batch_array t qs);
  let again = Query_engine.run_one t qs.(0) in
  check (M.name ^ ": run_one stable across batches") batch.(0).Query_engine.reads
    again.Query_engine.reads;
  (* reporter mode returns the same count, and for id-reporting
     structures fills the reporter with exactly [count] ids *)
  Array.iteri
    (fun i q ->
      let r = Query_engine.domain_reporter () in
      Emio.Reporter.clear r;
      let one = Query_engine.run_one ~reporter:r t q in
      let label field = Printf.sprintf "%s query %d: %s" M.name i field in
      check (label "reporter-mode count") batch.(i).Query_engine.result
        one.Query_engine.result;
      if Index.reports_ids t then
        check (label "ids reported") one.Query_engine.result
          (Emio.Reporter.length r)
      else check (label "no ids for count-only") 0 (Emio.Reporter.length r))
    qs

let run_one_tests =
  List.map
    (fun (module M : Index.S) ->
      Alcotest.test_case
        (Printf.sprintf "%s: run_one = batch costs" M.name)
        `Quick
        (run_one_equivalence_case (module M : Index.S)))
    (Registry.all ())

let batch_equivalence_tests =
  List.map
    (fun (module M : Index.S) ->
      Alcotest.test_case
        (Printf.sprintf "%s: parallel costs = sequential" M.name)
        `Quick
        (batch_equivalence_case (module M : Index.S)))
    (Registry.all ())

let () =
  Alcotest.run "query_engine"
    [
      ( "reporter",
        [
          Alcotest.test_case "basics" `Quick test_reporter_basics;
          Alcotest.test_case "mark/truncate/rewrite" `Quick
            test_reporter_mark_truncate_rewrite;
        ] );
      ( "decoded cache",
        [
          Alcotest.test_case "re-read hits" `Quick test_decoded_cache_hits;
          Alcotest.test_case "eviction" `Quick test_decoded_cache_eviction;
          Alcotest.test_case "write invalidates" `Quick
            test_decoded_cache_write_invalidates;
          Alcotest.test_case "drop_cache" `Quick test_decoded_cache_drop;
          Alcotest.test_case "disabled at 0" `Quick
            test_decoded_cache_disabled;
        ] );
      ( "codec guard",
        [
          Alcotest.test_case "backend requires codec" `Quick
            test_backend_requires_codec;
          Alcotest.test_case "export_bytes requires codec" `Quick
            test_export_requires_codec;
          Alcotest.test_case "to_blocks rejects external" `Quick
            test_to_blocks_external_rejected;
          Alcotest.test_case "of_blocks roundtrip" `Quick
            test_of_blocks_roundtrip;
        ] );
      ( "percentile",
        [
          Alcotest.test_case "nearest rank" `Quick test_percentile;
          Alcotest.test_case "ties" `Quick test_percentile_ties;
        ] );
      ( "pool",
        [
          Alcotest.test_case "range covered exactly once" `Quick
            test_pool_covers_range;
          Alcotest.test_case "reused across consecutive batches" `Quick
            test_pool_reuse;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
          Alcotest.test_case "poisoned query in a batch" `Quick
            test_batch_poisoned_query;
        ] );
      ("batch", batch_equivalence_tests);
      ("run_one", run_one_tests);
      ("batch fan-out", multi_domain_tests);
    ]
