(* The sequential fallback must satisfy Par's contract without
   domains: the full index range is covered exactly once, in order,
   regardless of the requested fan-out. *)

let () =
  assert (not Par_fallback.available);
  assert (Par_fallback.default_domains () = 1);
  assert (Par_fallback.pool_size () = 0);
  let hits = Array.make 64 0 in
  Par_fallback.run ~domains:4 ~n:64 (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  assert (Array.for_all (fun c -> c = 1) hits);
  Par_fallback.run ~domains:2 ~n:17 ~chunk:3 (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  assert (Array.for_all (fun c -> c = 2) (Array.sub hits 0 17));
  (* n = 0: the body must not run at all *)
  Par_fallback.run ~domains:8 ~n:0 (fun _ _ -> assert false);
  assert (Par_fallback.map ~domains:8 (fun x -> x * x) [| 1; 2; 3 |]
          = [| 1; 4; 9 |]);
  assert (Par_fallback.map ~domains:2 succ [||] = [||]);
  Par_fallback.shutdown ();
  print_endline "par fallback: ok"
