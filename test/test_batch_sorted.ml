(* The plane-sorted batch path: run_batch_sorted must reproduce the
   sequential per-query oracle (run_batch_array) bit-for-bit — result
   counts and cost records — across the 3-D kinds, the workload
   shapes, and domain counts 1/2/4/8, on duplicate-heavy batches where
   grouping actually kicks in; sharded wrappers pass the capability
   through; 2-D structures fall back to the per-query engine. *)

module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads
module Query_engine = Lcsearch_index.Query_engine
module Shard = Lcsearch_index.Shard

let check = Alcotest.(check int)

(* A duplicate-heavy batch: [count] slots drawn from [distinct]
   planes, interleaved so equal queries are NOT adjacent before the
   engine sorts them. *)
let hot_batch rng ds ~distinct ~count =
  let base =
    Array.of_list (Workloads.queries rng ds ~fraction:0.05 ~count:distinct)
  in
  Array.init count (fun i -> base.(i mod distinct))

let check_costs ~label (want : Query_engine.cost array)
    (got : Query_engine.cost array) =
  check (label ^ ": record count") (Array.length want) (Array.length got);
  Array.iteri
    (fun i (w : Query_engine.cost) ->
      let g = got.(i) in
      let f field = Printf.sprintf "%s q%d: %s" label i field in
      check (f "reads") w.reads g.reads;
      check (f "writes") w.writes g.writes;
      check (f "hits") w.hits g.hits;
      check (f "result") w.result g.result)
    want

let build_instance ~name ~kind ~n =
  let module M = (val Registry.find_exn name : Index.S) in
  let dim = List.hd (List.rev M.dims) in
  let rng =
    Workload.rng (8800 + Hashtbl.hash (name, Workloads.kind_name kind))
  in
  let ds = Workloads.dataset rng ~kind ~dim ~n (module M : Index.S) in
  let stats = Emio.Io_stats.create () in
  let t = Index.build (module M) ~params:Index.default_params ~stats ds in
  (t, rng, ds)

(* ---- equivalence: every 3-D kind × workload × domain count ---- *)

let equivalence_case ~name ~kind () =
  let t, rng, ds = build_instance ~name ~kind ~n:384 in
  Alcotest.(check bool)
    (name ^ " advertises the capability")
    true
    (Index.batch_plane_sorted t);
  let qs = hot_batch rng ds ~distinct:7 ~count:24 in
  let oracle = Query_engine.run_batch_array t qs in
  List.iter
    (fun domains ->
      let got = Query_engine.run_batch_sorted ~domains t qs in
      check_costs
        ~label:
          (Printf.sprintf "%s %s @%d domains" name (Workloads.kind_name kind)
             domains)
        oracle got)
    [ 1; 2; 4; 8 ]

(* ---- all-distinct batch: grouping must degrade gracefully to one
   group per query and still match ---- *)

let distinct_case ~name () =
  let t, rng, ds = build_instance ~name ~kind:Workloads.Uniform ~n:384 in
  let qs =
    Array.of_list (Workloads.queries rng ds ~fraction:0.05 ~count:16)
  in
  let oracle = Query_engine.run_batch_array t qs in
  check_costs ~label:(name ^ " all-distinct")
    oracle
    (Query_engine.run_batch_sorted ~domains:4 t qs)

(* ---- fallback: a 2-D structure without the capability takes the
   per-query engine verbatim ---- *)

let fallback_case () =
  let t, rng, ds = build_instance ~name:"h2" ~kind:Workloads.Uniform ~n:384 in
  Alcotest.(check bool)
    "h2 does not advertise the capability" false
    (Index.batch_plane_sorted t);
  let qs = hot_batch rng ds ~distinct:5 ~count:20 in
  check_costs ~label:"h2 fallback"
    (Query_engine.run_batch_array t qs)
    (Query_engine.run_batch_sorted ~domains:4 t qs)

(* ---- trace mode: events are per-query, so tracing falls back ---- *)

let trace_fallback_case () =
  let t, rng, ds = build_instance ~name:"h3" ~kind:Workloads.Uniform ~n:256 in
  let qs = hot_batch rng ds ~distinct:3 ~count:6 in
  let want = Query_engine.run_batch_array ~trace:true t qs in
  let got = Query_engine.run_batch_sorted ~trace:true t qs in
  check_costs ~label:"traced" want got;
  Array.iteri
    (fun i (g : Query_engine.cost) ->
      Alcotest.(check bool)
        (Printf.sprintf "traced q%d has events" i)
        true
        (g.events <> [] = (want.(i).Query_engine.events <> [])))
    got

(* ---- sharded wrappers: capability passes through and the sorted
   path still matches the per-query oracle on the sharded instance ---- *)

let sharded_case ~partition () =
  let module M = (val Registry.find_exn "h3" : Index.S) in
  let rng = Workload.rng 9900 in
  let ds =
    Workloads.dataset rng ~kind:Workloads.Uniform ~dim:3 ~n:384
      (module M : Index.S)
  in
  let (module Sh : Index.S) =
    Shard.make ~inner:(module M) ~shards:3 ~partition ()
  in
  Alcotest.(check bool)
    "sharded wrapper inherits the capability" true Sh.batch_plane_sorted;
  let stats = Emio.Io_stats.create () in
  let t = Index.build (module Sh) ~params:Index.default_params ~stats ds in
  let qs = hot_batch rng ds ~distinct:6 ~count:18 in
  check_costs
    ~label:(Printf.sprintf "sharded h3 (%s)" (Shard.partition_name partition))
    (Query_engine.run_batch_array t qs)
    (Query_engine.run_batch_sorted ~domains:4 t qs)

let () =
  let kinds = [ Workloads.Uniform; Workloads.Clusters; Workloads.Diagonal ] in
  let names = [ "h3"; "tradeoff"; "cert" ] in
  Alcotest.run "batch_sorted"
    [
      ( "equivalence",
        List.concat_map
          (fun name ->
            List.map
              (fun kind ->
                Alcotest.test_case
                  (Printf.sprintf "%s %s @ domains 1/2/4/8" name
                     (Workloads.kind_name kind))
                  `Quick
                  (equivalence_case ~name ~kind))
              kinds)
          names );
      ( "degenerate",
        List.map
          (fun name ->
            Alcotest.test_case (name ^ " all-distinct batch") `Quick
              (distinct_case ~name))
          names );
      ( "fallback",
        [
          Alcotest.test_case "2-D structure falls back" `Quick fallback_case;
          Alcotest.test_case "trace mode falls back" `Quick
            trace_fallback_case;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "str partition" `Quick
            (sharded_case ~partition:Shard.Str);
          Alcotest.test_case "hash partition" `Quick
            (sharded_case ~partition:Shard.Hash);
        ] );
    ]
